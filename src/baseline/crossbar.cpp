#include "baseline/crossbar.hpp"

#include <stdexcept>

namespace rasoc::baseline {

using noc::NodeId;

IdealCrossbar::IdealCrossbar(std::string name, noc::MeshShape shape)
    : Module(std::move(name)), shape_(shape) {
  shape_.validate();
  queues_.resize(static_cast<std::size_t>(shape_.nodes()));
  dstBusyUntilFlits_.assign(static_cast<std::size_t>(shape_.nodes()), -1);
}

void IdealCrossbar::send(NodeId src, NodeId dst, int flits) {
  if (!shape_.contains(src) || !shape_.contains(dst))
    throw std::invalid_argument("node off the crossbar");
  if (src == dst) throw std::invalid_argument("self-addressed transfer");
  if (flits < 1) throw std::invalid_argument("empty transfer");

  noc::PacketRecord record;
  record.src = src;
  record.dst = dst;
  record.createdCycle = cycle_;
  record.flits = flits;
  ledger_.onQueued(record);
  queues_[static_cast<std::size_t>(shape_.indexOf(src))].push_back(
      Transaction{src, dst, flits, 0, false});
}

void IdealCrossbar::attachTraffic(const noc::TrafficConfig& traffic) {
  if (trafficAttached_) throw std::logic_error("traffic already attached");
  trafficAttached_ = true;
  traffic_ = traffic;
  packetProbability_ =
      traffic.offeredLoad / static_cast<double>(traffic.packetFlits());
  rngs_.clear();
  for (int i = 0; i < shape_.nodes(); ++i)
    rngs_.emplace_back(traffic.seed * 7919 + static_cast<std::uint64_t>(i) +
                       1);
}

bool IdealCrossbar::idle() const {
  for (const auto& q : queues_)
    if (!q.empty()) return false;
  return true;
}

void IdealCrossbar::onReset() {
  for (auto& q : queues_) q.clear();
  dstBusyUntilFlits_.assign(static_cast<std::size_t>(shape_.nodes()), -1);
  cycle_ = 0;
  for (std::size_t i = 0; i < rngs_.size(); ++i)
    rngs_[i] = sim::Xoshiro256(traffic_.seed * 7919 + i + 1);
}

void IdealCrossbar::generateTraffic() {
  if (!trafficAttached_) return;
  for (int i = 0; i < shape_.nodes(); ++i) {
    auto& rng = rngs_[static_cast<std::size_t>(i)];
    if (!rng.chance(packetProbability_)) continue;
    if (queues_[static_cast<std::size_t>(i)].size() >=
        traffic_.maxQueuedPackets)
      continue;
    const NodeId src = shape_.nodeAt(i);
    const NodeId dst =
        noc::destinationFor(traffic_.pattern, src, shape_, rng, traffic_);
    if (dst == src) continue;
    send(src, dst, traffic_.packetFlits());
  }
}

void IdealCrossbar::clockEdge() {
  generateTraffic();
  // Destination locks: -1 = free, otherwise the source index holding it.
  std::vector<int>& locks = dstBusyUntilFlits_;
  const int nodes = shape_.nodes();
  // Rotate the scan start for long-run fairness.
  const int start = static_cast<int>(cycle_ % static_cast<std::uint64_t>(
                                                  nodes == 0 ? 1 : nodes));
  for (int k = 0; k < nodes; ++k) {
    const int i = (start + k) % nodes;
    auto& queue = queues_[static_cast<std::size_t>(i)];
    if (queue.empty()) continue;
    Transaction& t = queue.front();
    const auto dstIdx = static_cast<std::size_t>(shape_.indexOf(t.dst));
    if (!t.started) {
      if (locks[dstIdx] != -1) continue;  // sink busy with another packet
      locks[dstIdx] = i;
      t.started = true;
      ledger_.onHeaderInjected(t.src, t.dst, cycle_);
    }
    ++t.sent;
    if (t.sent == t.flits) {
      ledger_.onDelivered(t.src, t.dst, cycle_);
      locks[dstIdx] = -1;
      queue.pop_front();
    }
  }
  ++cycle_;
}

}  // namespace rasoc::baseline
