#include "baseline/spin.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasoc::baseline {

SpinFatTree::SpinFatTree(std::string name, int terminals)
    : Module(std::move(name)), terminals_(terminals) {
  if (terminals_ < 4 || terminals_ % 4 != 0 || terminals_ > 64)
    throw std::invalid_argument(
        "SPIN model supports 4..64 terminals in multiples of 4");
  groups_ = terminals_ / 4;
  roots_ = groups_;  // full-bisection 2-level fat tree
  upTerminal_.assign(static_cast<std::size_t>(terminals_), 0);
  downTerminal_.assign(static_cast<std::size_t>(terminals_), 0);
  upTree_.assign(static_cast<std::size_t>(groups_ * roots_), 0);
  downTree_.assign(static_cast<std::size_t>(groups_ * roots_), 0);
  queued_.assign(static_cast<std::size_t>(terminals_), 0);
}

void SpinFatTree::onReset() {
  std::fill(upTerminal_.begin(), upTerminal_.end(), 0);
  std::fill(downTerminal_.begin(), downTerminal_.end(), 0);
  std::fill(upTree_.begin(), upTree_.end(), 0);
  std::fill(downTree_.begin(), downTree_.end(), 0);
  std::fill(queued_.begin(), queued_.end(), 0);
  while (!scheduled_.empty()) scheduled_.pop();
  cycle_ = 0;
  for (std::size_t i = 0; i < rngs_.size(); ++i)
    rngs_[i] = sim::Xoshiro256(traffic_.seed * 7919 + i + 1);
}

std::uint64_t SpinFatTree::reserve(std::vector<std::uint64_t>& calendar,
                                   int index, std::uint64_t earliest,
                                   int flits) {
  auto& busyUntil = calendar[static_cast<std::size_t>(index)];
  const std::uint64_t start = std::max(earliest, busyUntil);
  busyUntil = start + static_cast<std::uint64_t>(flits);
  return start;
}

void SpinFatTree::send(int src, int dst, int flits) {
  if (src < 0 || src >= terminals_ || dst < 0 || dst >= terminals_)
    throw std::invalid_argument("terminal out of range");
  if (src == dst) throw std::invalid_argument("self-addressed transfer");
  if (flits < 1) throw std::invalid_argument("empty transfer");

  noc::PacketRecord record;
  record.src = nodeOf(src);
  record.dst = nodeOf(dst);
  record.createdCycle = cycle_;
  record.flits = flits;
  ledger_.onQueued(record);

  // Cut-through schedule across the path's links.
  std::uint64_t start =
      reserve(upTerminal_, src, cycle_ + 1, flits);  // inject next cycle
  const std::uint64_t injected = start;
  const int srcGroup = groupOf(src);
  const int dstGroup = groupOf(dst);
  if (srcGroup != dstGroup) {
    // Adaptive up-routing: pick the least-loaded root.
    int bestRoot = 0;
    std::uint64_t bestBusy = ~0ull;
    for (int r = 0; r < roots_; ++r) {
      const std::uint64_t busy =
          upTree_[static_cast<std::size_t>(srcGroup * roots_ + r)];
      if (busy < bestBusy) {
        bestBusy = busy;
        bestRoot = r;
      }
    }
    start = reserve(upTree_, srcGroup * roots_ + bestRoot, start + 1, flits);
    start =
        reserve(downTree_, bestRoot * groups_ + dstGroup, start + 1, flits);
  }
  start = reserve(downTerminal_, dst, start + 1, flits);

  ledger_.onHeaderInjected(nodeOf(src), nodeOf(dst), injected);
  scheduled_.push(Delivery{start + static_cast<std::uint64_t>(flits), src,
                           dst});
  ++queued_[static_cast<std::size_t>(src)];
}

void SpinFatTree::attachTraffic(const noc::TrafficConfig& traffic,
                                noc::MeshShape logicalShape) {
  if (trafficAttached_) throw std::logic_error("traffic already attached");
  if (logicalShape.nodes() != terminals_)
    throw std::invalid_argument("logical shape must match terminal count");
  trafficAttached_ = true;
  traffic_ = traffic;
  logicalShape_ = logicalShape;
  packetProbability_ =
      traffic.offeredLoad / static_cast<double>(traffic.packetFlits());
  rngs_.clear();
  for (int i = 0; i < terminals_; ++i)
    rngs_.emplace_back(traffic.seed * 7919 + static_cast<std::uint64_t>(i) +
                       1);
}

void SpinFatTree::generateTraffic() {
  if (!trafficAttached_) return;
  for (int i = 0; i < terminals_; ++i) {
    auto& rng = rngs_[static_cast<std::size_t>(i)];
    if (!rng.chance(packetProbability_)) continue;
    if (queued_[static_cast<std::size_t>(i)] >= traffic_.maxQueuedPackets)
      continue;
    const noc::NodeId src = nodeOf(i);
    const noc::NodeId dst = noc::destinationFor(traffic_.pattern, src,
                                                logicalShape_, rng, traffic_);
    if (dst == src) continue;
    send(i, logicalShape_.indexOf(dst), traffic_.packetFlits());
  }
}

void SpinFatTree::clockEdge() {
  generateTraffic();
  while (!scheduled_.empty() && scheduled_.top().cycle <= cycle_) {
    const Delivery d = scheduled_.top();
    scheduled_.pop();
    ledger_.onDelivered(nodeOf(d.src), nodeOf(d.dst), cycle_);
    --queued_[static_cast<std::size_t>(d.src)];
  }
  ++cycle_;
}

}  // namespace rasoc::baseline
