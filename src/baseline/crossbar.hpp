// Ideal-crossbar reference: an upper bound on interconnect performance.
//
// Every source can talk to every destination through a non-blocking
// crossbar with zero switch latency; the only contention is at the
// endpoints (one packet sent per source and one received per destination
// at a time, one flit per cycle).  No real interconnect beats this, so the
// mesh benches report it as the headroom line.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/module.hpp"
#include "sim/rng.hpp"

#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"

namespace rasoc::baseline {

class IdealCrossbar : public sim::Module {
 public:
  IdealCrossbar(std::string name, noc::MeshShape shape);

  void send(noc::NodeId src, noc::NodeId dst, int flits);
  void attachTraffic(const noc::TrafficConfig& traffic);

  noc::DeliveryLedger& ledger() { return ledger_; }
  std::uint64_t cycle() const { return cycle_; }
  bool idle() const;

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  struct Transaction {
    noc::NodeId src;
    noc::NodeId dst;
    int flits = 0;
    int sent = 0;
    bool started = false;
  };

  void generateTraffic();

  noc::MeshShape shape_;
  noc::DeliveryLedger ledger_;
  std::vector<std::deque<Transaction>> queues_;  // per source
  std::vector<int> dstBusyUntilFlits_;           // flits left at each sink

  bool trafficAttached_ = false;
  noc::TrafficConfig traffic_;
  std::vector<sim::Xoshiro256> rngs_;
  double packetProbability_ = 0.0;

  std::uint64_t cycle_ = 0;
};

}  // namespace rasoc::baseline
