#include "baseline/bus.hpp"

#include <stdexcept>

namespace rasoc::baseline {

using noc::NodeId;

SharedBus::SharedBus(std::string name, BusConfig config)
    : Module(std::move(name)), config_(config) {
  config_.shape.validate();
  if (config_.arbitrationCycles < 0 || config_.addressCycles < 0)
    throw std::invalid_argument("overhead cycles must be >= 0");
  queues_.resize(static_cast<std::size_t>(config_.shape.nodes()));
}

void SharedBus::send(NodeId src, NodeId dst, int flits) {
  if (!config_.shape.contains(src) || !config_.shape.contains(dst))
    throw std::invalid_argument("node off the bus");
  if (src == dst) throw std::invalid_argument("self-addressed transfer");
  if (flits < 1) throw std::invalid_argument("empty transfer");

  noc::PacketRecord record;
  record.src = src;
  record.dst = dst;
  record.createdCycle = cycle_;
  record.flits = flits;
  ledger_.onQueued(record);
  queues_[static_cast<std::size_t>(config_.shape.indexOf(src))].push_back(
      Transaction{src, dst, flits});
}

void SharedBus::attachTraffic(const noc::TrafficConfig& traffic) {
  if (trafficAttached_) throw std::logic_error("traffic already attached");
  trafficAttached_ = true;
  traffic_ = traffic;
  packetProbability_ =
      traffic.offeredLoad / static_cast<double>(traffic.packetFlits());
  rngs_.clear();
  for (int i = 0; i < config_.shape.nodes(); ++i)
    rngs_.emplace_back(traffic.seed * 7919 + static_cast<std::uint64_t>(i) +
                       1);
}

bool SharedBus::idle() const {
  if (busy_) return false;
  for (const auto& q : queues_)
    if (!q.empty()) return false;
  return true;
}

double SharedBus::busUtilization() const {
  return cycle_ == 0 ? 0.0
                     : static_cast<double>(dataCycles_) /
                           static_cast<double>(cycle_);
}

void SharedBus::onReset() {
  for (auto& q : queues_) q.clear();
  rrPtr_ = 0;
  busy_ = false;
  remainingCycles_ = 0;
  overheadCycles_ = 0;
  cycle_ = 0;
  dataCycles_ = 0;
  for (std::size_t i = 0; i < rngs_.size(); ++i)
    rngs_[i] = sim::Xoshiro256(traffic_.seed * 7919 + i + 1);
}

void SharedBus::generateTraffic() {
  if (!trafficAttached_) return;
  for (int i = 0; i < config_.shape.nodes(); ++i) {
    auto& rng = rngs_[static_cast<std::size_t>(i)];
    if (!rng.chance(packetProbability_)) continue;
    if (queues_[static_cast<std::size_t>(i)].size() >=
        traffic_.maxQueuedPackets)
      continue;
    const NodeId src = config_.shape.nodeAt(i);
    const NodeId dst = noc::destinationFor(traffic_.pattern, src,
                                           config_.shape, rng, traffic_);
    if (dst == src) continue;
    send(src, dst, traffic_.packetFlits());
  }
}

void SharedBus::arbitrate() {
  const int nodes = config_.shape.nodes();
  for (int k = 1; k <= nodes; ++k) {
    const int i = (rrPtr_ + k) % nodes;
    auto& queue = queues_[static_cast<std::size_t>(i)];
    if (queue.empty()) continue;
    current_ = queue.front();
    queue.pop_front();
    busy_ = true;
    overheadCycles_ = config_.arbitrationCycles + config_.addressCycles;
    remainingCycles_ = current_.flits;
    rrPtr_ = i;
    if (overheadCycles_ == 0)
      ledger_.onHeaderInjected(current_.src, current_.dst, cycle_);
    return;
  }
}

void SharedBus::clockEdge() {
  generateTraffic();
  if (busy_) {
    if (overheadCycles_ > 0) {
      --overheadCycles_;
      if (overheadCycles_ == 0)
        ledger_.onHeaderInjected(current_.src, current_.dst, cycle_);
    } else {
      ++dataCycles_;
      --remainingCycles_;
      if (remainingCycles_ == 0) {
        ledger_.onDelivered(current_.src, current_.dst, cycle_);
        busy_ = false;
      }
    }
  }
  if (!busy_) arbitrate();
  ++cycle_;
}

}  // namespace rasoc::baseline
