// PI-Bus-style shared bus baseline.
//
// The paper's conclusion announces a comparison of RASoC-based NoCs
// "with the ones of SPIN [2] and PI-Bus [8], by using the methodology
// applied in [9]".  This module provides the PI-Bus side: a single shared
// interconnect where one master at a time owns the bus, modelled at
// transaction level with cycle resolution:
//
//   * nodes share one n-bit data path; a packet occupies the bus for
//     (arbitration + address phase + one cycle per flit) cycles;
//   * round-robin arbitration among nodes with pending packets;
//   * the same traffic patterns, packet format accounting and latency
//     bookkeeping as the mesh, so load sweeps are directly comparable.
//
// The shared medium saturates at ~1 flit/cycle aggregate, while a W x H
// mesh scales with bisection bandwidth - the crossover the NoC literature
// (and the paper's motivation) predicts.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/module.hpp"
#include "sim/rng.hpp"

#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"

namespace rasoc::baseline {

struct BusConfig {
  noc::MeshShape shape{4, 4};  // logical node grid (for traffic patterns)
  int arbitrationCycles = 1;   // grant decision
  int addressCycles = 1;       // PI-Bus address/select phase per transfer
};

class SharedBus : public sim::Module {
 public:
  SharedBus(std::string name, BusConfig config);

  // Queues a packet of `flits` link flits from src to dst.
  void send(noc::NodeId src, noc::NodeId dst, int flits);

  // Attaches Bernoulli traffic with the same config semantics as the mesh.
  void attachTraffic(const noc::TrafficConfig& traffic);

  noc::DeliveryLedger& ledger() { return ledger_; }
  std::uint64_t cycle() const { return cycle_; }
  bool idle() const;

  // Fraction of cycles the data path carried a flit.
  double busUtilization() const;

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  struct Transaction {
    noc::NodeId src;
    noc::NodeId dst;
    int flits = 0;
  };

  void generateTraffic();
  void arbitrate();

  BusConfig config_;
  noc::DeliveryLedger ledger_;

  std::vector<std::deque<Transaction>> queues_;  // per master
  int rrPtr_ = 0;

  // Bus occupancy state.
  bool busy_ = false;
  Transaction current_;
  int remainingCycles_ = 0;   // cycles left in the current transaction
  int overheadCycles_ = 0;    // non-data cycles left (arb + address)

  // Traffic generation.
  bool trafficAttached_ = false;
  noc::TrafficConfig traffic_;
  std::vector<sim::Xoshiro256> rngs_;
  double packetProbability_ = 0.0;

  std::uint64_t cycle_ = 0;
  std::uint64_t dataCycles_ = 0;
};

}  // namespace rasoc::baseline
