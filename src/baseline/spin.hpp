// SPIN-like fat-tree baseline.
//
// The paper's conclusion announces a performance comparison of RASoC-based
// NoCs "with the ones of SPIN [2] and PI-Bus [8]".  SPIN (Guerrier &
// Greiner, DATE 2000) is a 4-ary fat-tree of packet-switched routers:
// every level-1 router serves four terminals and reaches four level-2
// routers, giving full bisection bandwidth for 16 terminals.
//
// Model (transaction level, cycle resolution): each unidirectional link is
// a calendar resource carrying one flit per cycle.  A packet cuts through:
// on each successive link it starts one cycle after it started on the
// previous one, or when the link frees, whichever is later, and holds the
// link for `flits` cycles.  Up-route picks the least-loaded level-2 root
// (SPIN's adaptive up-routing).  Backpressure between links is not
// modelled (buffers are assumed deep enough), which makes this a slightly
// optimistic baseline - documented in DESIGN.md.
//
// Paths: within a level-1 group, terminal -> L1 -> terminal (one router,
// two links); across groups, terminal -> L1 -> L2 -> L1' -> terminal
// (three routers, four links).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/module.hpp"
#include "sim/rng.hpp"

#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"

namespace rasoc::baseline {

class SpinFatTree : public sim::Module {
 public:
  // `terminals` must be a multiple of 4 (4-ary level-1 routers), max 64.
  SpinFatTree(std::string name, int terminals);

  void send(int src, int dst, int flits);
  void attachTraffic(const noc::TrafficConfig& traffic,
                     noc::MeshShape logicalShape);

  noc::DeliveryLedger& ledger() { return ledger_; }
  std::uint64_t cycle() const { return cycle_; }
  int terminals() const { return terminals_; }
  bool idle() const { return scheduled_.empty(); }

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  struct Delivery {
    std::uint64_t cycle;
    int src;
    int dst;
    bool operator>(const Delivery& o) const { return cycle > o.cycle; }
  };

  // Link calendars.  Terminal links are indexed by terminal; L1<->L2 links
  // by (l1 * roots + l2).
  int groupOf(int terminal) const { return terminal / 4; }

  void generateTraffic();
  std::uint64_t reserve(std::vector<std::uint64_t>& calendar, int index,
                        std::uint64_t earliest, int flits);

  noc::NodeId nodeOf(int terminal) const {
    return logicalShape_.nodeAt(terminal);
  }

  int terminals_;
  int groups_;
  int roots_;
  noc::DeliveryLedger ledger_;
  noc::MeshShape logicalShape_{4, 4};

  std::vector<std::uint64_t> upTerminal_;    // terminal -> L1
  std::vector<std::uint64_t> downTerminal_;  // L1 -> terminal
  std::vector<std::uint64_t> upTree_;        // L1 -> L2
  std::vector<std::uint64_t> downTree_;      // L2 -> L1

  std::priority_queue<Delivery, std::vector<Delivery>, std::greater<>>
      scheduled_;

  bool trafficAttached_ = false;
  noc::TrafficConfig traffic_;
  std::vector<sim::Xoshiro256> rngs_;
  double packetProbability_ = 0.0;
  std::vector<std::size_t> queued_;  // per-terminal in-flight cap

  std::uint64_t cycle_ = 0;
};

}  // namespace rasoc::baseline
