#include "femtojava/femtojava.hpp"

#include <stdexcept>

#include "softcore/elaborate.hpp"
#include "tech/mapper.hpp"

namespace rasoc::femtojava {

ReferenceCost referenceFor(int dataWidthBits) {
  switch (dataWidthBits) {
    case 8: return kFemtoJava8;
    case 16: return kFemtoJava16;
    default:
      throw std::invalid_argument(
          "FemtoJava reference exists for 8 and 16 bit only");
  }
}

double rasocToFemtoJavaRatio(const router::RouterParams& params) {
  const tech::Flex10keMapper mapper;
  const softcore::Entity router = softcore::elaborateRouter(params);
  const tech::Cost cost = router.totalCost(mapper);
  const ReferenceCost reference = referenceFor(params.n);
  return static_cast<double>(cost.lc) /
         static_cast<double>(reference.logicCells);
}

std::vector<RatioRow> comparisonSweep(int dataWidthBits,
                                      const std::vector<int>& depths) {
  const tech::Flex10keMapper mapper;
  std::vector<RatioRow> rows;
  for (router::FifoImpl impl :
       {router::FifoImpl::FlipFlop, router::FifoImpl::Eab}) {
    for (int p : depths) {
      router::RouterParams params;
      params.n = dataWidthBits;
      params.p = p;
      params.fifoImpl = impl;
      const softcore::Entity router = softcore::elaborateRouter(params);
      const int lc = router.totalCost(mapper).lc;
      const ReferenceCost reference = referenceFor(dataWidthBits);
      rows.push_back(RatioRow{
          params, lc, reference.logicCells,
          static_cast<double>(lc) /
              static_cast<double>(reference.logicCells)});
    }
  }
  return rows;
}

}  // namespace rasoc::femtojava
