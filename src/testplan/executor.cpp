#include "testplan/executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasoc::testplan {

TestPortDriver::TestPortDriver(std::string name, noc::NetworkInterface& ni,
                               std::vector<Job> jobs)
    : Module(std::move(name)), ni_(&ni), jobs_(std::move(jobs)) {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) { return a.start < b.start; });
}

void TestPortDriver::onReset() {
  next_ = 0;
  cycle_ = 0;
}

void TestPortDriver::clockEdge() {
  while (next_ < jobs_.size() && jobs_[next_].start <= cycle_) {
    const Job& job = jobs_[next_];
    for (int packet = 0; packet < job.packets; ++packet) {
      std::vector<std::uint32_t> payload(
          static_cast<std::size_t>(job.payloadFlits));
      for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint32_t>(packet * 31 + i);
      ni_->send(job.dst, payload);
    }
    ++next_;
  }
  ++cycle_;
}

BistMonitor::BistMonitor(std::string name, const noc::NetworkInterface& ni,
                         int packetsExpected, int bistCycles)
    : Module(std::move(name)),
      ni_(&ni),
      packetsExpected_(packetsExpected),
      bistCycles_(bistCycles) {}

void BistMonitor::onReset() {
  delivered_ = false;
  doneAt_ = 0;
  cycle_ = 0;
}

void BistMonitor::clockEdge() {
  ++cycle_;
  if (!delivered_ &&
      ni_->packetsReceived() >=
          static_cast<std::uint64_t>(packetsExpected_)) {
    delivered_ = true;
    doneAt_ = cycle_ + static_cast<std::uint64_t>(bistCycles_);
  }
}

ExecutionResult runSchedule(noc::Network& network,
                            const std::vector<CoreTestSpec>& cores,
                            const TestSchedule& schedule,
                            const TestPlanConfig& config,
                            std::uint64_t maxCycles) {
  if (schedule.entries.size() != cores.size())
    throw std::invalid_argument("schedule does not cover every core");

  // Group jobs per port.
  std::vector<std::vector<TestPortDriver::Job>> jobs(
      config.accessPorts.size());
  for (const ScheduleEntry& entry : schedule.entries) {
    const CoreTestSpec& core = cores[static_cast<std::size_t>(entry.core)];
    jobs[static_cast<std::size_t>(entry.port)].push_back(
        TestPortDriver::Job{entry.start, core.location, core.testPackets,
                            core.payloadFlits});
  }

  std::vector<std::unique_ptr<TestPortDriver>> drivers;
  for (std::size_t p = 0; p < jobs.size(); ++p) {
    if (jobs[p].empty()) continue;
    auto driver = std::make_unique<TestPortDriver>(
        "ate" + std::to_string(p), network.ni(config.accessPorts[p]),
        std::move(jobs[p]));
    network.simulator().add(*driver);
    drivers.push_back(std::move(driver));
  }

  std::vector<std::unique_ptr<BistMonitor>> monitors;
  for (const CoreTestSpec& core : cores) {
    auto monitor = std::make_unique<BistMonitor>(
        "bist:" + core.name, network.ni(core.location), core.testPackets,
        core.bistCycles);
    network.simulator().add(*monitor);
    monitors.push_back(std::move(monitor));
  }

  ExecutionResult result;
  result.completed = network.simulator().runUntil(
      [&] {
        for (const auto& monitor : monitors)
          if (!monitor->done()) return false;
        return true;
      },
      maxCycles);
  result.healthy = network.healthy();
  for (const auto& monitor : monitors) {
    result.coreDoneCycle.push_back(monitor->doneCycle());
    result.measuredMakespan =
        std::max(result.measuredMakespan, monitor->doneCycle());
  }
  return result;
}

}  // namespace rasoc::testplan
