#include "testplan/testplan.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rasoc::testplan {

const ScheduleEntry& TestSchedule::entryForCore(int core) const {
  for (const ScheduleEntry& entry : entries) {
    if (entry.core == core) return entry;
  }
  throw std::out_of_range("core not in schedule");
}

TestPlanner::TestPlanner(TestPlanConfig config) : config_(std::move(config)) {
  if (config_.accessPorts.empty())
    throw std::invalid_argument("test plan needs at least one access port");
  if (config_.powerBudget <= 0.0)
    throw std::invalid_argument("power budget must be positive");
  config_.params.validate();
}

std::uint64_t TestPlanner::deliveryCycles(const CoreTestSpec& core) const {
  return static_cast<std::uint64_t>(core.testPackets) *
         static_cast<std::uint64_t>(core.packetFlits());
}

std::uint64_t TestPlanner::transitCycles(const CoreTestSpec& core,
                                         int port) const {
  const noc::NodeId from =
      config_.accessPorts[static_cast<std::size_t>(port)];
  // Header pipeline latency: ~3 cycles per router on the path (buffer
  // write, arbitration, switch), see the zero-load measurements in
  // tests/noc/mesh_test.cpp.  With a topology configured the routed hop
  // count is used, so wrap links shorten the estimate.
  if (config_.topology)
    return 3ull * static_cast<std::uint64_t>(
                      config_.topology->hops(from, core.location));
  return 3ull * static_cast<std::uint64_t>(noc::xyHops(from, core.location));
}

std::uint64_t TestPlanner::sessionCycles(const CoreTestSpec& core,
                                         int port) const {
  return deliveryCycles(core) + transitCycles(core, port) +
         static_cast<std::uint64_t>(core.bistCycles);
}

void TestPlanner::validate(const std::vector<CoreTestSpec>& cores) const {
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = i + 1; j < cores.size(); ++j) {
      if (cores[i].location == cores[j].location)
        throw std::invalid_argument("two cores share node (" +
                                    cores[i].name + ", " + cores[j].name +
                                    ")");
    }
  }
  for (const CoreTestSpec& core : cores) {
    if (core.testPackets < 1 || core.payloadFlits < 1 ||
        core.bistCycles < 0)
      throw std::invalid_argument("malformed core test spec: " + core.name);
    if (core.power <= 0.0 || core.power > config_.powerBudget)
      throw std::invalid_argument("core power cannot fit the budget: " +
                                  core.name);
    for (const noc::NodeId& port : config_.accessPorts) {
      if (port == core.location)
        throw std::invalid_argument(
            "core shares a node with a test port (self-addressed): " +
            core.name);
    }
  }
}

TestSchedule TestPlanner::plan(const std::vector<CoreTestSpec>& cores) const {
  validate(cores);

  // Longest processing time first (LPT), using the port-independent part
  // of the session for the ordering.
  std::vector<int> order(cores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const auto& ca = cores[static_cast<std::size_t>(a)];
    const auto& cb = cores[static_cast<std::size_t>(b)];
    return deliveryCycles(ca) + static_cast<std::uint64_t>(ca.bistCycles) >
           deliveryCycles(cb) + static_cast<std::uint64_t>(cb.bistCycles);
  });

  std::vector<std::uint64_t> portFree(config_.accessPorts.size(), 0);
  TestSchedule schedule;

  // Concurrent-power peak over [start, end) given already-placed entries.
  auto peakPower = [&](std::uint64_t start, std::uint64_t end,
                       const std::vector<CoreTestSpec>& specs) {
    double peak = 0.0;
    // Evaluate at interval starts: power is piecewise constant with
    // breakpoints at entry starts/dones.
    std::vector<std::uint64_t> points{start};
    for (const ScheduleEntry& e : schedule.entries) {
      if (e.start > start && e.start < end) points.push_back(e.start);
    }
    for (std::uint64_t t : points) {
      double sum = 0.0;
      for (const ScheduleEntry& e : schedule.entries) {
        if (e.start <= t && t < e.done)
          sum += specs[static_cast<std::size_t>(e.core)].power;
      }
      peak = std::max(peak, sum);
    }
    return peak;
  };

  for (int coreIdx : order) {
    const CoreTestSpec& core = cores[static_cast<std::size_t>(coreIdx)];
    // Earliest-available port (ties: lowest index).
    int bestPort = 0;
    for (std::size_t p = 1; p < portFree.size(); ++p) {
      if (portFree[p] < portFree[static_cast<std::size_t>(bestPort)])
        bestPort = static_cast<int>(p);
    }

    const std::uint64_t session = sessionCycles(core, bestPort);
    std::uint64_t start = portFree[static_cast<std::size_t>(bestPort)];
    // Delay the start until the power budget holds across the session.
    for (;;) {
      if (peakPower(start, start + session, cores) + core.power <=
          config_.powerBudget)
        break;
      // Jump to the next completion event after `start`.
      std::uint64_t next = ~0ull;
      for (const ScheduleEntry& e : schedule.entries) {
        if (e.done > start) next = std::min(next, e.done);
      }
      if (next == ~0ull)
        throw std::logic_error("power budget unsatisfiable");
      start = next;
    }

    ScheduleEntry entry;
    entry.core = coreIdx;
    entry.port = bestPort;
    entry.start = start;
    entry.portBusyUntil = start + deliveryCycles(core);
    entry.done = start + session;
    portFree[static_cast<std::size_t>(bestPort)] = entry.portBusyUntil;
    schedule.entries.push_back(entry);
    schedule.makespan = std::max(schedule.makespan, entry.done);
  }
  return schedule;
}

TestSchedule TestPlanner::sequentialBaseline(
    const std::vector<CoreTestSpec>& cores) const {
  validate(cores);
  TestSchedule schedule;
  std::uint64_t clock = 0;
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const CoreTestSpec& core = cores[i];
    ScheduleEntry entry;
    entry.core = static_cast<int>(i);
    entry.port = 0;
    entry.start = clock;
    entry.portBusyUntil = clock + deliveryCycles(core);
    entry.done = clock + sessionCycles(core, 0);
    // Strictly serial: the next core waits for this one to finish
    // completely (delivery + BIST), as a dedicated serial TAM would.
    clock = entry.done;
    schedule.entries.push_back(entry);
    schedule.makespan = std::max(schedule.makespan, entry.done);
  }
  return schedule;
}

}  // namespace rasoc::testplan
