// Schedule execution on the cycle-accurate RASoC network: test-port driver
// modules stream each core's stimuli packets at the planned start cycles,
// BIST monitors track per-core completion, and the measured makespan
// validates the planner's analytical estimate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/module.hpp"

#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "testplan/testplan.hpp"

namespace rasoc::testplan {

// Streams scheduled stimuli from one access port's NI.
class TestPortDriver : public sim::Module {
 public:
  struct Job {
    std::uint64_t start = 0;
    noc::NodeId dst;
    int packets = 1;
    int payloadFlits = 8;
  };

  TestPortDriver(std::string name, noc::NetworkInterface& ni,
                 std::vector<Job> jobs);

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  noc::NetworkInterface* ni_;
  std::vector<Job> jobs_;  // sorted by start
  std::size_t next_ = 0;
  std::uint64_t cycle_ = 0;
};

// Watches one core's NI: test done when every stimuli packet arrived and
// the BIST tail has elapsed.
class BistMonitor : public sim::Module {
 public:
  BistMonitor(std::string name, const noc::NetworkInterface& ni,
              int packetsExpected, int bistCycles);

  bool done() const { return delivered_ && cycle_ >= doneAt_; }
  std::uint64_t doneCycle() const { return doneAt_; }
  bool stimuliDelivered() const { return delivered_; }

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  const noc::NetworkInterface* ni_;
  int packetsExpected_;
  int bistCycles_;
  bool delivered_ = false;
  std::uint64_t doneAt_ = 0;
  std::uint64_t cycle_ = 0;
};

struct ExecutionResult {
  bool completed = false;  // every core finished within the cycle budget
  bool healthy = false;    // network invariants held
  std::uint64_t measuredMakespan = 0;
  std::vector<std::uint64_t> coreDoneCycle;  // per spec index
};

// Replays `schedule` on `network` (which must match config.params/topology
// and have no other traffic attached).  Runs until done or maxCycles.
ExecutionResult runSchedule(noc::Network& network,
                            const std::vector<CoreTestSpec>& cores,
                            const TestSchedule& schedule,
                            const TestPlanConfig& config,
                            std::uint64_t maxCycles = 1'000'000);

}  // namespace rasoc::testplan
