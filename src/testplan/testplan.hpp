// SoC test planning over the NoC - the second application the paper
// reports for RASoC ("researches targeting different issues in the NoC
// domain: design methodologies and SoC test planning", following the
// group's work on test-time minimization for NoC-based systems).
//
// Model: after manufacturing, every BISTed core must receive its test
// stimuli through the NoC from an external test port (an ATE channel
// attached to one node's Local port), then run its BIST session.  The test
// session of a core occupies its assigned port for the stimuli-delivery
// time; the BIST tail runs inside the core and only delays that core's
// completion.  Planning minimizes total test time (makespan) subject to:
//
//   * each test port streams to one core at a time,
//   * optional power budget: the summed power of cores concurrently under
//     test must stay below a cap (the classic constraint of the test-
//     scheduling literature).
//
// The planner estimates session lengths analytically from the RASoC mesh
// parameters; src/testplan/executor.hpp replays a schedule on the
// cycle-accurate mesh to validate the estimate.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "noc/topology.hpp"
#include "router/params.hpp"

namespace rasoc::testplan {

struct CoreTestSpec {
  std::string name;
  noc::NodeId location;
  int testPackets = 1;    // stimuli packets delivered through the NoC
  int payloadFlits = 8;   // payload words per stimuli packet
  int bistCycles = 0;     // BIST run after the last stimuli packet lands
  double power = 1.0;     // normalized power while under test

  // Link flits per stimuli packet (header + source index + payload).
  int packetFlits() const { return payloadFlits + 2; }
};

struct TestPlanConfig {
  std::vector<noc::NodeId> accessPorts;  // ATE attachment nodes
  double powerBudget = std::numeric_limits<double>::infinity();
  router::RouterParams params{};  // the network's router configuration
  // Topology of the target network; transit estimates use its routed hop
  // counts (so torus/ring wrap links shorten sessions).  Null keeps the
  // historical 2D-mesh XY-distance estimate.
  std::shared_ptr<const noc::Topology> topology;
};

struct ScheduleEntry {
  int core = 0;              // index into the spec list
  int port = 0;              // index into config.accessPorts
  std::uint64_t start = 0;   // first cycle the port streams for this core
  std::uint64_t portBusyUntil = 0;  // port released (stimuli delivered)
  std::uint64_t done = 0;    // core test complete (delivery + BIST tail)
};

struct TestSchedule {
  std::vector<ScheduleEntry> entries;
  std::uint64_t makespan = 0;

  const ScheduleEntry& entryForCore(int core) const;
};

class TestPlanner {
 public:
  explicit TestPlanner(TestPlanConfig config);

  // Cycles the port is occupied delivering one core's stimuli: the port
  // serializes packets back to back at one flit per cycle.
  std::uint64_t deliveryCycles(const CoreTestSpec& core) const;

  // Pipeline latency from port to core for the last flit (XY hops).
  std::uint64_t transitCycles(const CoreTestSpec& core, int port) const;

  // Complete session length as seen by the core (delivery + transit +
  // BIST).
  std::uint64_t sessionCycles(const CoreTestSpec& core, int port) const;

  // Longest-processing-time-first assignment onto the access ports,
  // honouring the power budget by delaying starts when necessary.
  TestSchedule plan(const std::vector<CoreTestSpec>& cores) const;

  // Baseline: a single port testing every core back to back in spec order
  // (what a dedicated serial TAM would do).
  TestSchedule sequentialBaseline(
      const std::vector<CoreTestSpec>& cores) const;

  const TestPlanConfig& config() const { return config_; }

 private:
  void validate(const std::vector<CoreTestSpec>& cores) const;

  TestPlanConfig config_;
};

}  // namespace rasoc::testplan
