// Target device database.
//
// The paper synthesizes RASoC on an Altera FLEX 10KE, device
// EPF10K200SFC672-1: "a 200-Kgate FPGA with 9,984 LCs and 96 Kbits of RAM
// included in 24 EABs (each one capable to synthesize a 4-Kbit memory)".
#pragma once

#include <string_view>

namespace rasoc::tech {

struct Device {
  std::string_view name;
  int logicCells;    // 4-input LUT + flip-flop each
  int memoryBits;    // total embedded RAM bits
  int eabs;          // number of embedded array blocks
  int eabBits;       // bits per EAB
  int eabMaxWidth;   // widest EAB data-port configuration
};

inline constexpr Device kEpf10k200e{
    .name = "EPF10K200SFC672-1",
    .logicCells = 9984,
    .memoryBits = 96 * 1024,
    .eabs = 24,
    .eabBits = 4096,
    .eabMaxWidth = 16,
};

// The FLEX 10K device used for the FemtoJava reference synthesis [6].
inline constexpr Device kFlex10k{
    .name = "FLEX 10K (FemtoJava reference)",
    .logicCells = 4992,
    .memoryBits = 24 * 1024,
    .eabs = 12,
    .eabBits = 2048,
    .eabMaxWidth = 8,
};

}  // namespace rasoc::tech
