#include "tech/mapper.hpp"

#include <stdexcept>

namespace rasoc::tech {

int Flex10keMapper::muxLutsPerBit(int inputs) {
  if (inputs < 1) throw std::invalid_argument("mux needs >= 1 input");
  // A balanced tree of 2:1 muxes has inputs-1 nodes; each 2:1 mux (two data
  // inputs + one select = 3 pins) fits one 4-input LUT.  Matches the
  // paper's Figure 8: a 4x1 multiplexer costs 3 LUTs per bit.
  return inputs - 1;
}

int Flex10keMapper::gateLuts(int inputs) {
  if (inputs <= 1) return 0;
  if (inputs <= 4) return 1;
  // First LUT absorbs 4 inputs; each extra LUT merges its predecessor's
  // output with up to 3 new inputs.
  return 1 + (inputs - 4 + 2) / 3;
}

Cost Flex10keMapper::map(const hw::Primitive& p) const {
  Cost cost;
  if (const auto* mux = std::get_if<hw::Mux>(&p)) {
    cost.lc = muxLutsPerBit(mux->inputs) * mux->width * mux->count;
  } else if (const auto* reg = std::get_if<hw::Register>(&p)) {
    const int ffs = reg->width * reg->count;
    cost.reg = ffs;
    // Packed flip-flops share the cell of the LUT driving them, which the
    // Gate/Mux primitives already paid for; unpacked ones claim fresh cells.
    cost.lc = reg->packed ? 0 : ffs;
  } else if (const auto* gate = std::get_if<hw::Gate>(&p)) {
    cost.lc = gateLuts(gate->inputs) * gate->count;
  } else if (const auto* mem = std::get_if<hw::Memory>(&p)) {
    cost.mem = mem->words * mem->width * mem->count;
  }
  return cost;
}

Cost Flex10keMapper::map(const hw::Netlist& netlist) const {
  Cost total;
  for (const hw::Primitive& p : netlist.items()) total += map(p);
  return total;
}

int Flex10keMapper::eabsFor(int words, int width) const {
  if (words <= 0 || width <= 0) return 0;
  const int slices = (width + device_.eabMaxWidth - 1) / device_.eabMaxWidth;
  const int wordsPerEab = device_.eabBits / device_.eabMaxWidth;
  const int depthBlocks = (words + wordsPerEab - 1) / wordsPerEab;
  return slices * depthBlocks;
}

}  // namespace rasoc::tech
