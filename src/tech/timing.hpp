// Critical-path / fmax estimation for FLEX 10KE (-1 speed grade).
//
// The paper reports three operating-frequency data points for the 5-port
// router:
//   * FF-based FIFOs, 2 flits deep:  ~64 MHz
//   * FF-based FIFOs, 4 flits deep:  ~55.8 MHz ("due to the multiplexer at
//     the outputs of the buffers")
//   * EAB-based FIFOs (average over configurations): ~56.7 MHz
//
// We model the register-to-register critical path as a number of 4-LUT
// levels (each level = LUT delay + local interconnect) plus fixed clk-to-out
// and setup overhead:
//
//   period_ns = kFixedNs + levels * kLevelNs
//   fmax_MHz  = 1000 / period_ns
//
// The constants are calibrated so the three published points are
// reproduced by the structural level counts:
//   FF p=2:  base(5) + log2(2)=1 mux level -> 6.0 levels -> 64.1 MHz
//   FF p=4:  base(5) + log2(4)=2 mux levels -> 7.0 levels -> 56.0 MHz
//   EAB:     base(5) + 1.9 levels (synchronous EAB read is slower than a
//            LUT) -> 6.9 levels -> 56.7 MHz
//
// The base path is the flit-forwarding path: FIFO head -> input controller
// request decode -> grant-qualified read switch -> output data switch ->
// handshake gate, five LUT levels for the 5-port router.
#pragma once

#include "hw/netlist.hpp"

namespace rasoc::tech {

struct TimingModel {
  double fixedNs = 2.4;   // register clk-to-out + setup + clock skew
  double levelNs = 2.2;   // one 4-LUT + local routing
  double eabReadLevels = 1.9;  // EAB synchronous read, in LUT-level units
  double baseRouterLevels = 5.0;

  double periodNs(double levels) const { return fixedNs + levels * levelNs; }
  double fmaxMhz(double levels) const { return 1000.0 / periodNs(levels); }
};

enum class FifoImpl;  // forward declaration trick is not used; see router/params.hpp

// Critical-path levels contributed by the input-buffer read path.
// `ffBased`: true for the shift-register FIFO (output mux tree grows with
// depth), false for the EAB FIFO (constant memory-read delay).
double fifoReadLevels(const TimingModel& model, bool ffBased, int depth);

// Router fmax for a given FIFO implementation and depth.
double routerFmaxMhz(const TimingModel& model, bool ffBased, int depth);

}  // namespace rasoc::tech
