// Plain-text report helpers shared by the benchmark harnesses: aligned
// tables (rendering the same rows as the paper's Tables 1-4) and device
// utilization summaries.
#pragma once

#include <string>
#include <vector>

#include "tech/cost.hpp"
#include "tech/device.hpp"

namespace rasoc::tech {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);

  // Renders with column alignment; throws if a row is ragged.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "x uses N% of resource R on <device>" summary lines for a cost triple.
std::string utilizationSummary(const Device& device, const Cost& cost);

// Percentage with one decimal, e.g. "48.6%".
std::string percent(double numerator, double denominator);

}  // namespace rasoc::tech
