// FLEX 10KE technology mapper.
//
// Maps a technology-independent primitive netlist (src/hw) onto Altera
// FLEX 10KE resources.  The mapping rules mirror what the paper describes
// for Quartus synthesis on this family:
//
//  * Logic cells contain one 4-input LUT and one flip-flop.
//  * There are no internal tri-states, so k:1 multiplexers are LUT trees of
//    2:1 muxes — (k-1) LUTs per bit (Figure 8 shows the 4:1 case: 3 LUTs).
//  * A generic k-input logic function costs 1 LUT for k <= 4, then one more
//    LUT per 3 further inputs (each added LUT merges 3 new inputs with the
//    previous partial result).
//  * A flip-flop whose D input is computed by a LUT packs into that LUT's
//    cell (counts toward Reg only); a flip-flop fed directly from a
//    neighbouring Q (shift-register data bits) occupies a cell whose LUT is
//    unused (counts toward both LC and Reg).
//  * Memory primitives consume EAB bits: words x width, padded to the EAB
//    port geometry when computing block usage.
#pragma once

#include "hw/netlist.hpp"
#include "tech/cost.hpp"
#include "tech/device.hpp"

namespace rasoc::tech {

class Flex10keMapper {
 public:
  explicit Flex10keMapper(Device device = kEpf10k200e) : device_(device) {}

  const Device& device() const { return device_; }

  // LUTs needed for one bit of a k:1 multiplexer (tree of 2:1 muxes).
  static int muxLutsPerBit(int inputs);

  // LUTs needed for a k-input single-output logic function.
  static int gateLuts(int inputs);

  Cost map(const hw::Primitive& p) const;
  Cost map(const hw::Netlist& netlist) const;

  // Number of EABs a words x width memory occupies (widths above the EAB
  // port limit are split across blocks).
  int eabsFor(int words, int width) const;

 private:
  Device device_;
};

}  // namespace rasoc::tech
