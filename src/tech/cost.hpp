// Area cost triple used throughout the evaluation, matching the columns of
// the paper's Tables 1-3: logic cells (LC), flip-flops (Reg) and embedded
// memory bits (Mem).
#pragma once

#include <compare>

namespace rasoc::tech {

struct Cost {
  int lc = 0;
  int reg = 0;
  int mem = 0;

  Cost& operator+=(const Cost& o) {
    lc += o.lc;
    reg += o.reg;
    mem += o.mem;
    return *this;
  }

  friend Cost operator+(Cost a, const Cost& b) { return a += b; }

  Cost operator*(int k) const { return {lc * k, reg * k, mem * k}; }

  bool operator==(const Cost&) const = default;
};

}  // namespace rasoc::tech
