#include "tech/timing.hpp"

#include <cmath>
#include <stdexcept>

namespace rasoc::tech {

double fifoReadLevels(const TimingModel& model, bool ffBased, int depth) {
  if (depth < 1) throw std::invalid_argument("FIFO depth must be >= 1");
  if (!ffBased) return model.eabReadLevels;
  // Shift-register FIFO: the head is selected by a depth:1 mux tree,
  // ceil(log2(depth)) 2:1-mux levels deep.
  if (depth == 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(depth)));
}

double routerFmaxMhz(const TimingModel& model, bool ffBased, int depth) {
  const double levels =
      model.baseRouterLevels + fifoReadLevels(model, ffBased, depth);
  return model.fmaxMhz(levels);
}

}  // namespace rasoc::tech
