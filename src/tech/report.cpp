#include "tech/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rasoc::tech {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs headers");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table row width does not match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size())
        out << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    out << '\n';
  };
  emitRow(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emitRow(row);
  return out.str();
}

std::string percent(double numerator, double denominator) {
  char buf[32];
  const double value =
      denominator == 0.0 ? 0.0 : 100.0 * numerator / denominator;
  std::snprintf(buf, sizeof buf, "%.1f%%", value);
  return buf;
}

std::string utilizationSummary(const Device& device, const Cost& cost) {
  std::ostringstream out;
  out << "device " << device.name << ": " << cost.lc << " LC ("
      << percent(cost.lc, device.logicCells) << "), " << cost.reg << " Reg, "
      << cost.mem << " Mem bits ("
      << percent(cost.mem, device.memoryBits) << " of "
      << device.memoryBits << ")";
  return out.str();
}

}  // namespace rasoc::tech
