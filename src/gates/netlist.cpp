#include "gates/netlist.hpp"

#include <stdexcept>

namespace rasoc::gates {

void GateNetlist::checkExisting(NodeId id) const {
  if (id == kNone) return;
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
    throw std::out_of_range("gate netlist: unknown node");
}

GateNetlist::NodeId GateNetlist::addInput(std::string name) {
  Node node;
  node.kind = Kind::Input;
  nodes_.push_back(node);
  const NodeId id = static_cast<NodeId>(nodes_.size()) - 1;
  outputs_.emplace("in:" + std::move(name), id);
  return id;
}

GateNetlist::NodeId GateNetlist::addConst(bool value) {
  Node node;
  node.kind = Kind::Const;
  node.value = value;
  nodes_.push_back(node);
  return static_cast<NodeId>(nodes_.size()) - 1;
}

GateNetlist::NodeId GateNetlist::addLut(std::array<NodeId, 4> inputs,
                                        std::uint16_t truth) {
  for (NodeId in : inputs) checkExisting(in);
  Node node;
  node.kind = Kind::Lut;
  node.inputs = inputs;
  node.truth = truth;
  nodes_.push_back(node);
  ++lutCount_;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

GateNetlist::NodeId GateNetlist::addDff(bool resetValue) {
  Node node;
  node.kind = Kind::Dff;
  node.resetValue = resetValue;
  node.value = resetValue;
  nodes_.push_back(node);
  ++dffCount_;
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void GateNetlist::connectDff(NodeId q, NodeId d) {
  checkExisting(q);
  checkExisting(d);
  Node& node = nodes_[static_cast<std::size_t>(q)];
  if (node.kind != Kind::Dff)
    throw std::invalid_argument("connectDff target is not a flip-flop");
  node.d = d;
}

void GateNetlist::markOutput(std::string name, NodeId node) {
  checkExisting(node);
  outputs_[std::move(name)] = node;
}

// Truth tables are indexed by (in3 in2 in1 in0); unused inputs read 0.
GateNetlist::NodeId GateNetlist::notGate(NodeId a) {
  return addLut({a, kNone, kNone, kNone}, 0b01);
}

GateNetlist::NodeId GateNetlist::andGate(NodeId a, NodeId b) {
  return addLut({a, b, kNone, kNone}, 0b1000);
}

GateNetlist::NodeId GateNetlist::orGate(NodeId a, NodeId b) {
  return addLut({a, b, kNone, kNone}, 0b1110);
}

GateNetlist::NodeId GateNetlist::xorGate(NodeId a, NodeId b) {
  return addLut({a, b, kNone, kNone}, 0b0110);
}

GateNetlist::NodeId GateNetlist::and3(NodeId a, NodeId b, NodeId c) {
  return addLut({a, b, c, kNone}, 0b10000000);
}

GateNetlist::NodeId GateNetlist::or3(NodeId a, NodeId b, NodeId c) {
  return addLut({a, b, c, kNone}, 0b11111110);
}

GateNetlist::NodeId GateNetlist::or4(NodeId a, NodeId b, NodeId c,
                                     NodeId d) {
  return addLut({a, b, c, d}, 0xfffe);
}

GateNetlist::NodeId GateNetlist::mux2(NodeId sel, NodeId a, NodeId b) {
  // inputs: in0=sel, in1=a, in2=b -> out = sel ? b : a.
  // Enumerate patterns (in2 in1 in0): out=1 for 010(a,!sel), 011? no:
  //   sel=0 -> out=a: patterns x1 0 -> 010=2, 110=6
  //   sel=1 -> out=b: patterns 1x 1 -> 101=5, 111=7
  return addLut({sel, a, b, kNone},
                static_cast<std::uint16_t>((1u << 2) | (1u << 6) |
                                           (1u << 5) | (1u << 7)));
}

void GateNetlist::reset() {
  for (Node& node : nodes_) {
    if (node.kind == Kind::Dff) node.value = node.resetValue;
  }
  evaluate();
}

void GateNetlist::setInput(NodeId input, bool value) {
  checkExisting(input);
  Node& node = nodes_[static_cast<std::size_t>(input)];
  if (node.kind != Kind::Input)
    throw std::invalid_argument("setInput target is not an input");
  node.value = value;
}

void GateNetlist::evaluate() {
  for (Node& node : nodes_) {
    if (node.kind != Kind::Lut) continue;
    unsigned pattern = 0;
    for (int i = 0; i < 4; ++i) {
      const NodeId in = node.inputs[static_cast<std::size_t>(i)];
      const bool bit =
          in == kNone ? false : nodes_[static_cast<std::size_t>(in)].value;
      pattern |= (bit ? 1u : 0u) << i;
    }
    node.value = (node.truth >> pattern) & 1u;
  }
}

void GateNetlist::clockEdge() {
  // Sample every D first, then commit (all DFFs share one clock).
  std::vector<bool> next(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.kind != Kind::Dff) continue;
    if (node.d == kNone)
      throw std::logic_error("flip-flop with unconnected D input");
    next[i] = nodes_[static_cast<std::size_t>(node.d)].value;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == Kind::Dff) nodes_[i].value = next[i];
  }
}

void GateNetlist::step() {
  evaluate();
  clockEdge();
}

bool GateNetlist::value(NodeId node) const {
  checkExisting(node);
  return nodes_[static_cast<std::size_t>(node)].value;
}

bool GateNetlist::output(const std::string& name) const {
  const auto it = outputs_.find(name);
  if (it == outputs_.end())
    throw std::out_of_range("gate netlist: unknown output '" + name + "'");
  return value(it->second);
}

}  // namespace rasoc::gates
