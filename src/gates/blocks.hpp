// Gate-level builders for the router's control structures.
//
// Each builder constructs, out of 4-input LUTs and DFFs, the exact
// structure the technology mapper charges for (Figure 8 mux trees, pointer
// counters, the replicated-decode round-robin arbiter, the XY routing
// cone), so that
//   * behaviour can be cross-checked against the behavioural blocks
//     (tests/gates/equivalence_test.cpp), and
//   * LUT counts can be cross-checked against Flex10keMapper
//     (tests/gates/cost_consistency_test.cpp).
#pragma once

#include <array>
#include <vector>

#include "gates/netlist.hpp"

namespace rasoc::gates {

using NodeId = GateNetlist::NodeId;

// K:1 multiplexer over equal-width input buses, binary select (LSB first).
// Built as the Figure 8 tree of 2:1 muxes: (k-1) LUTs per bit.
std::vector<NodeId> buildMuxTree(GateNetlist& nl,
                                 const std::vector<std::vector<NodeId>>& in,
                                 const std::vector<NodeId>& sel);

// Up/down counter, `bits` wide, wrapping; counts +1 on (inc & !dec), -1 on
// (dec & !inc).  Returns the Q nodes, LSB first.
struct UpDownCounter {
  std::vector<NodeId> bits;
};
UpDownCounter buildUpDownCounter(GateNetlist& nl, int bits, NodeId inc,
                                 NodeId dec);

// Equality compare of a bus against a constant (1 LUT per 4 bus bits,
// AND-combined).
NodeId buildEqualsConst(GateNetlist& nl, const std::vector<NodeId>& bus,
                        unsigned value);

// FIFO control for a p-deep buffer: occupancy counter + wok/rok status +
// write/read guards, matching InputBuffer's semantics (write-while-full
// legal only with a simultaneous read).
struct FifoControl {
  NodeId wok = GateNetlist::kNone;
  NodeId rok = GateNetlist::kNone;
  NodeId doWrite = GateNetlist::kNone;
  NodeId doRead = GateNetlist::kNone;
  std::vector<NodeId> occupancy;  // LSB first
};
FifoControl buildFifoControl(GateNetlist& nl, int depth, NodeId wr,
                             NodeId rd);

// Round-robin output controller over four candidate inputs, with the
// wormhole connection hold and trailer teardown - the gate-level twin of
// router::OutputController (one-hot grant state, replicated rotating
// priority decode muxed by the 2-bit pointer).
struct RoundRobinArbiter {
  NodeId connected = GateNetlist::kNone;
  std::array<NodeId, 4> gnt{GateNetlist::kNone, GateNetlist::kNone,
                            GateNetlist::kNone, GateNetlist::kNone};
};
RoundRobinArbiter buildRoundRobinArbiter(GateNetlist& nl,
                                         const std::array<NodeId, 4>& req,
                                         NodeId eop, NodeId rok, NodeId rd);

// The "optimized controller" of the paper's announced future work: binary
// selection state (2 bits) with combinationally decoded grants instead of
// one-hot grant registers.  Externally indistinguishable from
// buildRoundRobinArbiter (asserted by tests/gates/equivalence_test.cpp)
// with two fewer flip-flops.
RoundRobinArbiter buildBinaryArbiter(GateNetlist& nl,
                                     const std::array<NodeId, 4>& req,
                                     NodeId eop, NodeId rok, NodeId rd);

// XY routing cone for an m-bit RIB (m/2 bits per axis, signed-magnitude):
// request lines for the five outputs plus the hop-decremented RIB - the
// gate-level twin of router::InputController's decision logic.
struct RouteLogic {
  std::array<NodeId, 5> req{};        // indexed by router::Port
  std::vector<NodeId> updatedRib;     // m bits, LSB first
};
RouteLogic buildXYRouteLogic(GateNetlist& nl,
                             const std::vector<NodeId>& rib, NodeId bop,
                             NodeId rok);

// A complete five-port RASoC router at gate level: FIFO storage cells,
// pointer/occupancy counters, routing cones, round-robin arbiters and
// one-hot AND-OR output switches, all from 4-LUTs and DFFs.  Handshake
// flow control, EAB-style ring buffers, p must be a power of two.
// Cross-checked flit for flit against router::Rasoc in
// tests/gates/router_equivalence_test.cpp.
struct GateRouter {
  struct InPort {
    std::vector<NodeId> data;  // n bits, LSB first (inputs)
    NodeId bop = GateNetlist::kNone;
    NodeId eop = GateNetlist::kNone;
    NodeId val = GateNetlist::kNone;
    NodeId ack = GateNetlist::kNone;  // output
  };
  struct OutPort {
    std::vector<NodeId> data;  // outputs
    NodeId bop = GateNetlist::kNone;
    NodeId eop = GateNetlist::kNone;
    NodeId val = GateNetlist::kNone;
    NodeId ack = GateNetlist::kNone;  // input
  };
  std::array<InPort, 5> in;
  std::array<OutPort, 5> out;
};
GateRouter buildGateRouter(GateNetlist& nl, int n, int m, int p);

}  // namespace rasoc::gates
