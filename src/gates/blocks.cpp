#include "gates/blocks.hpp"

#include <stdexcept>

#include "router/params.hpp"

namespace rasoc::gates {

std::vector<NodeId> buildMuxTree(GateNetlist& nl,
                                 const std::vector<std::vector<NodeId>>& in,
                                 const std::vector<NodeId>& sel) {
  if (in.empty()) throw std::invalid_argument("mux needs inputs");
  const std::size_t width = in.front().size();
  for (const auto& bus : in) {
    if (bus.size() != width)
      throw std::invalid_argument("mux input buses must share a width");
  }
  if ((1u << sel.size()) < in.size())
    throw std::invalid_argument("not enough select bits");

  // Reduce pairwise per select bit, LSB select first (balanced tree).
  std::vector<std::vector<NodeId>> level = in;
  for (std::size_t s = 0; s < sel.size() && level.size() > 1; ++s) {
    std::vector<std::vector<NodeId>> next;
    for (std::size_t pair = 0; pair < level.size(); pair += 2) {
      if (pair + 1 == level.size()) {
        next.push_back(level[pair]);  // odd leftover passes through
        continue;
      }
      std::vector<NodeId> merged(width);
      for (std::size_t bit = 0; bit < width; ++bit) {
        merged[bit] =
            nl.mux2(sel[s], level[pair][bit], level[pair + 1][bit]);
      }
      next.push_back(std::move(merged));
    }
    level = std::move(next);
  }
  return level.front();
}

UpDownCounter buildUpDownCounter(GateNetlist& nl, int bits, NodeId inc,
                                 NodeId dec) {
  if (bits < 1) throw std::invalid_argument("counter needs >= 1 bit");
  UpDownCounter counter;
  for (int i = 0; i < bits; ++i) counter.bits.push_back(nl.addDff(false));

  // enable = inc XOR dec; direction = dec (borrow instead of carry).
  const NodeId enable = nl.xorGate(inc, dec);
  // Carry chain: flip bit i when the chain reaches it; the chain
  // propagates through bits equal to 1 (increment) or 0 (decrement),
  // i.e. through (bit XOR dec).
  NodeId chain = enable;
  for (int i = 0; i < bits; ++i) {
    const NodeId q = counter.bits[static_cast<std::size_t>(i)];
    const NodeId next = nl.xorGate(q, chain);
    nl.connectDff(q, next);
    if (i + 1 < bits) {
      const NodeId propagate = nl.xorGate(q, dec);
      chain = nl.andGate(chain, propagate);
    }
  }
  return counter;
}

NodeId buildEqualsConst(GateNetlist& nl, const std::vector<NodeId>& bus,
                        unsigned value) {
  if (bus.empty()) throw std::invalid_argument("empty bus");
  std::vector<NodeId> terms;
  for (std::size_t chunk = 0; chunk < bus.size(); chunk += 4) {
    const std::size_t width = std::min<std::size_t>(4, bus.size() - chunk);
    std::array<NodeId, 4> ins{GateNetlist::kNone, GateNetlist::kNone,
                              GateNetlist::kNone, GateNetlist::kNone};
    std::uint16_t truth = 0;
    const unsigned want = (value >> chunk) & ((1u << width) - 1u);
    for (unsigned pattern = 0; pattern < 16; ++pattern) {
      if ((pattern & ((1u << width) - 1u)) == want)
        truth |= static_cast<std::uint16_t>(1u << pattern);
    }
    for (std::size_t i = 0; i < width; ++i) ins[i] = bus[chunk + i];
    // Unused LUT inputs read 0, so only patterns with those bits clear
    // occur; the truth table above already covers them.
    terms.push_back(nl.addLut(ins, truth));
  }
  NodeId result = terms.front();
  for (std::size_t i = 1; i < terms.size(); ++i)
    result = nl.andGate(result, terms[i]);
  return result;
}

FifoControl buildFifoControl(GateNetlist& nl, int depth, NodeId wr,
                             NodeId rd) {
  if (depth < 1) throw std::invalid_argument("depth must be >= 1");
  int occBits = 1;
  while ((1 << occBits) < depth + 1) ++occBits;

  FifoControl control;
  // Occupancy counter with guarded strobes; the guards need the counter's
  // current value, so create the DFFs first (sources), guards next, and
  // connect the counter D inputs through a manual chain (the generic
  // builder wants the strobes at construction time, so inline the same
  // carry-chain here).
  std::vector<NodeId> occ;
  for (int i = 0; i < occBits; ++i) occ.push_back(nl.addDff(false));

  const NodeId full = buildEqualsConst(nl, occ, static_cast<unsigned>(depth));
  const NodeId empty = buildEqualsConst(nl, occ, 0u);
  control.wok = nl.notGate(full);
  control.rok = nl.notGate(empty);

  control.doRead = nl.andGate(rd, control.rok);
  // write legal when not full, or when a simultaneous read frees the slot.
  const NodeId freeing = nl.orGate(control.wok, control.doRead);
  control.doWrite = nl.andGate(wr, freeing);

  const NodeId enable = nl.xorGate(control.doWrite, control.doRead);
  NodeId chain = enable;
  for (int i = 0; i < occBits; ++i) {
    const NodeId q = occ[static_cast<std::size_t>(i)];
    nl.connectDff(q, nl.xorGate(q, chain));
    if (i + 1 < occBits) {
      chain = nl.andGate(chain, nl.xorGate(q, control.doRead));
    }
  }
  control.occupancy = occ;
  return control;
}

// The arbitration cone shared by the one-hot and binary-encoded arbiters:
// rotating-priority pick lines plus the hold/grant control terms.
struct ArbiterCone {
  std::array<NodeId, 4> pick{};
  NodeId holding = GateNetlist::kNone;
  NodeId granting = GateNetlist::kNone;
  NodeId pickIdx0 = GateNetlist::kNone;
  NodeId pickIdx1 = GateNetlist::kNone;
};

static ArbiterCone buildArbiterCone(GateNetlist& nl,
                                    const std::array<NodeId, 4>& req,
                                    NodeId eop, NodeId rok, NodeId rd,
                                    NodeId connected, NodeId ptr0,
                                    NodeId ptr1);

// Builds the arbiter's combinational cone and connects the (pre-created)
// state flip-flops - split out so the full gate router can create all its
// DFF sources before any cross-referencing logic.
static void buildArbiterLogic(GateNetlist& nl,
                              const std::array<NodeId, 4>& req, NodeId eop,
                              NodeId rok, NodeId rd,
                              const std::array<NodeId, 4>& gnt,
                              NodeId connected, NodeId ptr0, NodeId ptr1) {
  const ArbiterCone cone =
      buildArbiterCone(nl, req, eop, rok, rd, connected, ptr0, ptr1);
  for (int i = 0; i < 4; ++i) {
    const NodeId hold =
        nl.andGate(cone.holding, gnt[static_cast<std::size_t>(i)]);
    const NodeId take =
        nl.andGate(cone.granting, cone.pick[static_cast<std::size_t>(i)]);
    nl.connectDff(gnt[static_cast<std::size_t>(i)], nl.orGate(hold, take));
  }
  nl.connectDff(connected, nl.orGate(cone.holding, cone.granting));
  nl.connectDff(ptr0, nl.mux2(cone.granting, ptr0, cone.pickIdx0));
  nl.connectDff(ptr1, nl.mux2(cone.granting, ptr1, cone.pickIdx1));
}

static ArbiterCone buildArbiterCone(GateNetlist& nl,
                                    const std::array<NodeId, 4>& req,
                                    NodeId eop, NodeId rok, NodeId rd,
                                    NodeId connected, NodeId ptr0,
                                    NodeId ptr1) {
  ArbiterCone cone;
  const NodeId anyReq = nl.or4(req[0], req[1], req[2], req[3]);
  const NodeId teardown = nl.and3(eop, rok, rd);
  cone.holding = nl.andGate(connected, nl.notGate(teardown));
  cone.granting = nl.andGate(nl.notGate(connected), anyReq);

  // Replicated fixed-priority chains, one per pointer value P: priority
  // order P+1, P+2, P+3, P (mod 4).
  std::array<std::array<NodeId, 4>, 4> chainGnt{};
  for (int p = 0; p < 4; ++p) {
    NodeId blocked = nl.addConst(false);  // some earlier candidate requested
    for (int k = 1; k <= 4; ++k) {
      const int candidate = (p + k) % 4;
      chainGnt[static_cast<std::size_t>(p)][static_cast<std::size_t>(
          candidate)] =
          nl.andGate(req[static_cast<std::size_t>(candidate)],
                     nl.notGate(blocked));
      blocked = nl.orGate(blocked, req[static_cast<std::size_t>(candidate)]);
    }
  }

  // Mux the four chains by the pointer, per grant line.
  for (int i = 0; i < 4; ++i) {
    std::vector<std::vector<NodeId>> options;
    for (int p = 0; p < 4; ++p)
      options.push_back({chainGnt[static_cast<std::size_t>(p)]
                                 [static_cast<std::size_t>(i)]});
    cone.pick[static_cast<std::size_t>(i)] =
        buildMuxTree(nl, options, {ptr0, ptr1}).front();
  }

  // Binary encode of the one-hot pick (the granted candidate's index).
  cone.pickIdx0 = nl.orGate(cone.pick[1], cone.pick[3]);
  cone.pickIdx1 = nl.orGate(cone.pick[2], cone.pick[3]);
  return cone;
}

RoundRobinArbiter buildRoundRobinArbiter(GateNetlist& nl,
                                         const std::array<NodeId, 4>& req,
                                         NodeId eop, NodeId rok, NodeId rd) {
  RoundRobinArbiter arbiter;
  std::array<NodeId, 4> gnt{};
  for (auto& g : gnt) g = nl.addDff(false);
  const NodeId connected = nl.addDff(false);
  const NodeId ptr0 = nl.addDff(false);
  const NodeId ptr1 = nl.addDff(false);
  buildArbiterLogic(nl, req, eop, rok, rd, gnt, connected, ptr0, ptr1);
  arbiter.connected = connected;
  arbiter.gnt = gnt;
  return arbiter;
}

RoundRobinArbiter buildBinaryArbiter(GateNetlist& nl,
                                     const std::array<NodeId, 4>& req,
                                     NodeId eop, NodeId rok, NodeId rd) {
  // Binary state: two selection bits + connected + pointer (5 DFFs vs the
  // one-hot version's 7); grants are decoded combinationally.
  const NodeId sel0 = nl.addDff(false);
  const NodeId sel1 = nl.addDff(false);
  const NodeId connected = nl.addDff(false);
  const NodeId ptr0 = nl.addDff(false);
  const NodeId ptr1 = nl.addDff(false);

  const ArbiterCone cone =
      buildArbiterCone(nl, req, eop, rok, rd, connected, ptr0, ptr1);

  nl.connectDff(sel0, nl.mux2(cone.granting, sel0, cone.pickIdx0));
  nl.connectDff(sel1, nl.mux2(cone.granting, sel1, cone.pickIdx1));
  nl.connectDff(connected, nl.orGate(cone.holding, cone.granting));
  nl.connectDff(ptr0, nl.mux2(cone.granting, ptr0, cone.pickIdx0));
  nl.connectDff(ptr1, nl.mux2(cone.granting, ptr1, cone.pickIdx1));

  RoundRobinArbiter arbiter;
  arbiter.connected = connected;
  for (unsigned i = 0; i < 4; ++i) {
    const NodeId match =
        buildEqualsConst(nl, std::vector<NodeId>{sel0, sel1}, i);
    arbiter.gnt[i] = nl.andGate(connected, match);
  }
  return arbiter;
}

RouteLogic buildXYRouteLogic(GateNetlist& nl,
                             const std::vector<NodeId>& rib, NodeId bop,
                             NodeId rok) {
  const int m = static_cast<int>(rib.size());
  if (m < 4 || m % 2 != 0)
    throw std::invalid_argument("RIB must be even and >= 4 bits");
  const int axis = m / 2;
  const int mag = axis - 1;

  auto sliceMag = [&](int base) {
    std::vector<NodeId> bits;
    for (int i = 0; i < mag; ++i)
      bits.push_back(rib[static_cast<std::size_t>(base + i)]);
    return bits;
  };
  const std::vector<NodeId> xmag = sliceMag(0);
  const NodeId xsign = rib[static_cast<std::size_t>(axis - 1)];
  const std::vector<NodeId> ymag = sliceMag(axis);
  const NodeId ysign = rib[static_cast<std::size_t>(m - 1)];

  const NodeId xzero = buildEqualsConst(nl, xmag, 0);
  const NodeId yzero = buildEqualsConst(nl, ymag, 0);
  const NodeId header = nl.andGate(rok, bop);

  RouteLogic logic;
  using router::Port;
  const NodeId xActive = nl.andGate(header, nl.notGate(xzero));
  const NodeId yActive = nl.and3(header, xzero, nl.notGate(yzero));
  logic.req[router::index(Port::East)] =
      nl.andGate(xActive, nl.notGate(xsign));
  logic.req[router::index(Port::West)] = nl.andGate(xActive, xsign);
  logic.req[router::index(Port::North)] =
      nl.andGate(yActive, nl.notGate(ysign));
  logic.req[router::index(Port::South)] = nl.andGate(yActive, ysign);
  logic.req[router::index(Port::Local)] = nl.and3(header, xzero, yzero);

  // Decrement-by-one borrow chains for each magnitude.
  auto decrement = [&](const std::vector<NodeId>& bits) {
    std::vector<NodeId> result;
    NodeId borrow = nl.addConst(true);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      result.push_back(nl.xorGate(bits[i], borrow));
      if (i + 1 < bits.size())
        borrow = nl.andGate(borrow, nl.notGate(bits[i]));
    }
    return result;
  };
  const std::vector<NodeId> xdec = decrement(xmag);
  const std::vector<NodeId> ydec = decrement(ymag);

  // Select which axis (if any) is consumed this hop.
  const NodeId consumeX = xActive;
  const NodeId consumeY = yActive;
  logic.updatedRib.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < mag; ++i) {
    logic.updatedRib[static_cast<std::size_t>(i)] =
        nl.mux2(consumeX, xmag[static_cast<std::size_t>(i)],
                xdec[static_cast<std::size_t>(i)]);
    logic.updatedRib[static_cast<std::size_t>(axis + i)] =
        nl.mux2(consumeY, ymag[static_cast<std::size_t>(i)],
                ydec[static_cast<std::size_t>(i)]);
  }
  // Canonical encoding: the sign clears when the last hop of an axis is
  // consumed (magnitude 1 -> 0), matching encodeRib's normalization.
  const NodeId xLastHop =
      nl.andGate(consumeX, buildEqualsConst(nl, xmag, 1));
  const NodeId yLastHop =
      nl.andGate(consumeY, buildEqualsConst(nl, ymag, 1));
  logic.updatedRib[static_cast<std::size_t>(axis - 1)] =
      nl.andGate(xsign, nl.notGate(xLastHop));
  logic.updatedRib[static_cast<std::size_t>(m - 1)] =
      nl.andGate(ysign, nl.notGate(yLastHop));
  return logic;
}

namespace {

// Wrapping counter connect: q += inc - dec (chain logic over pre-created
// DFFs, LSB first).  Width must wrap naturally (power-of-two range).
void connectCounter(GateNetlist& nl, const std::vector<NodeId>& bits,
                    NodeId inc, NodeId dec) {
  const NodeId enable = nl.xorGate(inc, dec);
  NodeId chain = enable;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    nl.connectDff(bits[i], nl.xorGate(bits[i], chain));
    if (i + 1 < bits.size())
      chain = nl.andGate(chain, nl.xorGate(bits[i], dec));
  }
}

int log2Exact(int value) {
  int bits = 0;
  while ((1 << bits) < value) ++bits;
  if ((1 << bits) != value) return -1;
  return bits;
}

}  // namespace

GateRouter buildGateRouter(GateNetlist& nl, int n, int m, int p) {
  if (n < m || m < 4 || m % 2 != 0)
    throw std::invalid_argument("need n >= m, m even and >= 4");
  const int ptrBits = log2Exact(p);
  if (p < 2 || ptrBits < 0)
    throw std::invalid_argument("p must be a power of two >= 2");
  int occBits = 1;
  while ((1 << occBits) < p + 1) ++occBits;
  const int width = n + 2;  // bits 0..n-1 data, n = eop, n+1 = bop

  GateRouter router;

  // ---- phase 0: external pins --------------------------------------------
  for (int i = 0; i < 5; ++i) {
    auto& in = router.in[static_cast<std::size_t>(i)];
    for (int b = 0; b < n; ++b)
      in.data.push_back(nl.addInput("in" + std::to_string(i) + "_d" +
                                    std::to_string(b)));
    in.bop = nl.addInput("in" + std::to_string(i) + "_bop");
    in.eop = nl.addInput("in" + std::to_string(i) + "_eop");
    in.val = nl.addInput("in" + std::to_string(i) + "_val");
    router.out[static_cast<std::size_t>(i)].ack =
        nl.addInput("out" + std::to_string(i) + "_ack");
  }

  // ---- phase 1: every flip-flop (sources for all later logic) -------------
  struct InputState {
    std::vector<std::vector<NodeId>> cells;  // [slot][bit]
    std::vector<NodeId> wptr, rptr, occ;
  };
  struct OutputState {
    std::array<NodeId, 4> gnt{};
    NodeId connected = GateNetlist::kNone;
    NodeId ptr0 = GateNetlist::kNone, ptr1 = GateNetlist::kNone;
  };
  std::array<InputState, 5> ins;
  std::array<OutputState, 5> outs;
  for (int i = 0; i < 5; ++i) {
    InputState& s = ins[static_cast<std::size_t>(i)];
    s.cells.resize(static_cast<std::size_t>(p));
    for (auto& slot : s.cells)
      for (int b = 0; b < width; ++b) slot.push_back(nl.addDff(false));
    for (int b = 0; b < ptrBits; ++b) {
      s.wptr.push_back(nl.addDff(false));
      s.rptr.push_back(nl.addDff(false));
    }
    for (int b = 0; b < occBits; ++b) s.occ.push_back(nl.addDff(false));
    OutputState& o = outs[static_cast<std::size_t>(i)];
    for (auto& g : o.gnt) g = nl.addDff(false);
    o.connected = nl.addDff(false);
    o.ptr0 = nl.addDff(false);
    o.ptr1 = nl.addDff(false);
  }

  // Candidate order for output o: input ports != o, ascending.
  auto candidates = [](int o) {
    std::array<int, 4> c{};
    int k = 0;
    for (int i = 0; i < 5; ++i)
      if (i != o) c[static_cast<std::size_t>(k++)] = i;
    return c;
  };

  // ---- phase 2: per-input status, read port, routing cone ------------------
  struct InputComb {
    NodeId wok = GateNetlist::kNone, rok = GateNetlist::kNone;
    std::vector<NodeId> xdout;  // width bits (RIB-updated header copy)
    std::array<NodeId, 5> req{};
  };
  std::array<InputComb, 5> comb;
  for (int i = 0; i < 5; ++i) {
    const InputState& s = ins[static_cast<std::size_t>(i)];
    InputComb& c = comb[static_cast<std::size_t>(i)];
    const NodeId full =
        buildEqualsConst(nl, s.occ, static_cast<unsigned>(p));
    const NodeId empty = buildEqualsConst(nl, s.occ, 0u);
    c.wok = nl.notGate(full);
    c.rok = nl.notGate(empty);

    // FIFO head: p:1 mux over the slots by rptr (Figure 8 trees).
    std::vector<NodeId> dout =
        buildMuxTree(nl, s.cells, s.rptr);

    // Routing cone over the head's RIB.
    std::vector<NodeId> rib(dout.begin(), dout.begin() + m);
    const NodeId bop = dout[static_cast<std::size_t>(n + 1)];
    const RouteLogic route = buildXYRouteLogic(nl, rib, bop, c.rok);
    c.req = route.req;

    // x_dout: updated RIB bits, raw upper data bits, framing.
    c.xdout.resize(static_cast<std::size_t>(width));
    for (int b = 0; b < m; ++b)
      c.xdout[static_cast<std::size_t>(b)] =
          route.updatedRib[static_cast<std::size_t>(b)];
    for (int b = m; b < width; ++b)
      c.xdout[static_cast<std::size_t>(b)] =
          dout[static_cast<std::size_t>(b)];
  }

  // ---- phase 3: per-output switches and handshake ---------------------------
  std::array<NodeId, 5> xrd{};
  std::array<NodeId, 5> eopSel{}, rokSel{};
  for (int o = 0; o < 5; ++o) {
    const auto cand = candidates(o);
    const OutputState& st = outs[static_cast<std::size_t>(o)];
    auto& out = router.out[static_cast<std::size_t>(o)];

    // One-hot AND-OR switches over the four candidates.
    auto muxed = [&](auto&& fieldOf) {
      std::array<NodeId, 4> terms{};
      for (int k = 0; k < 4; ++k)
        terms[static_cast<std::size_t>(k)] =
            nl.andGate(st.gnt[static_cast<std::size_t>(k)],
                       fieldOf(cand[static_cast<std::size_t>(k)]));
      return nl.or4(terms[0], terms[1], terms[2], terms[3]);
    };
    out.data.resize(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b)
      out.data[static_cast<std::size_t>(b)] = muxed([&](int i) {
        return comb[static_cast<std::size_t>(i)]
            .xdout[static_cast<std::size_t>(b)];
      });
    out.eop = muxed([&](int i) {
      return comb[static_cast<std::size_t>(i)]
          .xdout[static_cast<std::size_t>(n)];
    });
    out.bop = muxed([&](int i) {
      return comb[static_cast<std::size_t>(i)]
          .xdout[static_cast<std::size_t>(n + 1)];
    });
    rokSel[static_cast<std::size_t>(o)] =
        muxed([&](int i) { return comb[static_cast<std::size_t>(i)].rok; });
    eopSel[static_cast<std::size_t>(o)] = out.eop;
    out.val = rokSel[static_cast<std::size_t>(o)];
    xrd[static_cast<std::size_t>(o)] = out.ack;  // handshake OFC = wires
  }

  // ---- phase 4: per-input read switches and flow control --------------------
  std::array<NodeId, 5> doWrite{}, doRead{};
  for (int i = 0; i < 5; ++i) {
    // rd = OR over outputs of (this input's grant AND that output's rd).
    std::array<NodeId, 4> terms{};
    int k = 0;
    for (int o = 0; o < 5; ++o) {
      if (o == i) continue;
      const auto cand = candidates(o);
      int myIndex = -1;
      for (int c = 0; c < 4; ++c)
        if (cand[static_cast<std::size_t>(c)] == i) myIndex = c;
      terms[static_cast<std::size_t>(k++)] = nl.andGate(
          outs[static_cast<std::size_t>(o)].gnt[static_cast<std::size_t>(
              myIndex)],
          xrd[static_cast<std::size_t>(o)]);
    }
    const NodeId rd = nl.or4(terms[0], terms[1], terms[2], terms[3]);
    InputComb& c = comb[static_cast<std::size_t>(i)];
    doRead[static_cast<std::size_t>(i)] = nl.andGate(rd, c.rok);
    // IFC: handshake acceptance (val & wok) doubles as the write strobe.
    const NodeId wr =
        nl.andGate(router.in[static_cast<std::size_t>(i)].val, c.wok);
    router.in[static_cast<std::size_t>(i)].ack = wr;
    doWrite[static_cast<std::size_t>(i)] = wr;
  }

  // ---- phase 5: connect every flip-flop -------------------------------------
  for (int i = 0; i < 5; ++i) {
    const InputState& s = ins[static_cast<std::size_t>(i)];
    const auto& in = router.in[static_cast<std::size_t>(i)];
    // Storage cells: write-enable decode from wptr.
    for (int slot = 0; slot < p; ++slot) {
      const NodeId slotSelected =
          buildEqualsConst(nl, s.wptr, static_cast<unsigned>(slot));
      const NodeId we =
          nl.andGate(doWrite[static_cast<std::size_t>(i)], slotSelected);
      for (int b = 0; b < width; ++b) {
        NodeId din;
        if (b < n) {
          din = in.data[static_cast<std::size_t>(b)];
        } else if (b == n) {
          din = in.eop;
        } else {
          din = in.bop;
        }
        const NodeId q =
            s.cells[static_cast<std::size_t>(slot)][static_cast<std::size_t>(
                b)];
        nl.connectDff(q, nl.mux2(we, q, din));
      }
    }
    const NodeId zero = nl.addConst(false);
    connectCounter(nl, s.wptr, doWrite[static_cast<std::size_t>(i)], zero);
    connectCounter(nl, s.rptr, doRead[static_cast<std::size_t>(i)], zero);
    connectCounter(nl, s.occ, doWrite[static_cast<std::size_t>(i)],
                   doRead[static_cast<std::size_t>(i)]);
  }
  for (int o = 0; o < 5; ++o) {
    const auto cand = candidates(o);
    std::array<NodeId, 4> req{};
    for (int k = 0; k < 4; ++k)
      req[static_cast<std::size_t>(k)] =
          comb[static_cast<std::size_t>(cand[static_cast<std::size_t>(k)])]
              .req[static_cast<std::size_t>(o)];
    const OutputState& st = outs[static_cast<std::size_t>(o)];
    buildArbiterLogic(nl, req, eopSel[static_cast<std::size_t>(o)],
                      rokSel[static_cast<std::size_t>(o)],
                      xrd[static_cast<std::size_t>(o)], st.gnt,
                      st.connected, st.ptr0, st.ptr1);
  }
  return router;
}

}  // namespace rasoc::gates
