// Gate-level netlist simulator: 4-input LUTs + D flip-flops, the exact
// primitive set of the FLEX 10KE logic cell.
//
// This is the fidelity bridge between the behavioural router model
// (src/router) and the analytical cost model (src/tech): the control
// structures the mapper charges for - LUT-tree multiplexers, pointer
// counters, the round-robin arbiter - are *built* here out of LUTs and
// FFs, simulated bit-accurately, and cross-checked against the
// behavioural blocks (tests/gates).  LUT counts of the built structures
// must match what Flex10keMapper charges, closing the loop on Tables 1-3.
//
// Model: nodes are created in topological order (a LUT may only read
// nodes created before it; flip-flop Q outputs are sources).  evaluate()
// propagates combinationally in creation order; clockEdge() latches every
// DFF from its D node.  This levelized discipline makes combinational
// loops unrepresentable by construction.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rasoc::gates {

class GateNetlist {
 public:
  using NodeId = int;
  static constexpr NodeId kNone = -1;

  // --- construction -------------------------------------------------------

  // External input pin.
  NodeId addInput(std::string name);

  // Constant driver.
  NodeId addConst(bool value);

  // 4-input LUT.  `inputs` entries may be kNone (treated as 0); every real
  // input must be an already-created node.  `truth` bit i gives the output
  // for input pattern i (in0 = bit 0 of i ... in3 = bit 3 of i).
  NodeId addLut(std::array<NodeId, 4> inputs, std::uint16_t truth);

  // D flip-flop: Q is a source node; connect its D input afterwards (this
  // is what allows feedback through registered state only).
  NodeId addDff(bool resetValue = false);
  void connectDff(NodeId q, NodeId d);

  void markOutput(std::string name, NodeId node);

  // --- convenience gates (each one LUT) ------------------------------------

  NodeId notGate(NodeId a);
  NodeId andGate(NodeId a, NodeId b);
  NodeId orGate(NodeId a, NodeId b);
  NodeId xorGate(NodeId a, NodeId b);
  NodeId and3(NodeId a, NodeId b, NodeId c);
  NodeId or3(NodeId a, NodeId b, NodeId c);
  NodeId or4(NodeId a, NodeId b, NodeId c, NodeId d);
  // 2:1 multiplexer: sel ? b : a.
  NodeId mux2(NodeId sel, NodeId a, NodeId b);

  // --- simulation ----------------------------------------------------------

  void reset();
  void setInput(NodeId input, bool value);
  // Propagates all combinational nodes; idempotent.
  void evaluate();
  // Latches every DFF (call after evaluate()).
  void clockEdge();
  // evaluate + clockEdge.
  void step();

  bool value(NodeId node) const;
  bool output(const std::string& name) const;

  // --- accounting -----------------------------------------------------------

  int lutCount() const { return lutCount_; }
  int dffCount() const { return dffCount_; }
  std::size_t nodeCount() const { return nodes_.size(); }

 private:
  enum class Kind { Input, Const, Lut, Dff };

  struct Node {
    Kind kind;
    bool value = false;
    // LUT fields.
    std::array<NodeId, 4> inputs{kNone, kNone, kNone, kNone};
    std::uint16_t truth = 0;
    // DFF fields.
    NodeId d = kNone;
    bool resetValue = false;
  };

  void checkExisting(NodeId id) const;

  std::vector<Node> nodes_;
  std::map<std::string, NodeId> outputs_;
  int lutCount_ = 0;
  int dffCount_ = 0;
};

}  // namespace rasoc::gates
