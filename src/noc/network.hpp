/// \file
/// Network builder: instantiates one RASoC router per topology node with
/// that node's pruned port set, wires every adjacent port pair with a link,
/// attaches one network interface per Local port, and optionally one
/// traffic generator per node.  All geometry comes from the Topology
/// instance — the builder itself contains no grid arithmetic.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

#include "noc/fault.hpp"
#include "noc/flow_trace.hpp"
#include "noc/ni.hpp"
#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "noc/traffic.hpp"
#include "router/faulty_link.hpp"
#include "router/link.hpp"
#include "router/rasoc.hpp"

namespace rasoc::noc {

/// Everything a Network needs beyond its Topology.
struct NetworkConfig {
  /// Router geometry (flit width n, RIB width m, FIFO depth p, flow
  /// control, routing algorithm); per-node port masks are filled in from
  /// the topology.
  router::RouterParams params{};
  router::ArbiterKind arbiter = router::ArbiterKind::RoundRobin;

  /// Settle kernel for the network's simulator.  Compiled lowers the
  /// elaborated network to a word-packed state arena plus a levelized op
  /// tape (see sim/compile.hpp) and is the default; EventDriven evaluates
  /// only modules whose inputs changed; Naive is the reference fixpoint
  /// kernel the equivalence suite A/Bs against.  All four are proven
  /// bit-identical by noc_kernel_trichotomy_test.
  sim::Simulator::Kernel kernel = sim::Simulator::Kernel::Compiled;

  /// Worker threads for Kernel::ParallelEventDriven (ignored by the other
  /// kernels).  The topology is split into this many contiguous node blocks
  /// (Topology::partition); each node's router, NI, traffic generator and
  /// outgoing links land in that node's domain, and links crossing a cut
  /// become the kernel's frontier modules.
  int threads = 1;

  /// HLP parity in every NI (paper Section 2 extension); costs one data bit
  /// per flit.
  bool hlpParity = false;

  /// End-to-end NI retransmission protocol (noc/reliable.hpp).  Default-off:
  /// runs without it are bit-identical to the unprotected network.
  ReliabilityConfig reliability;

  /// Per-flit probability of a single payload-bit flip on each inter-router
  /// link (0 = ideal links, plain Link modules).  Uniform background noise;
  /// for windowed faults use `faultPlan`.
  double linkFaultRate = 0.0;
  std::uint64_t faultSeed = 0xfa17;

  /// Scheduled fault campaign (noc/fault.hpp): links named by the plan are
  /// built as FaultyLink with the plan's corruption / stuck-ack /
  /// link-down windows.  Stall and outage windows require handshake flow
  /// control (the builder throws otherwise).
  FaultPlan faultPlan;
};

/// A complete simulated NoC: routers, links, NIs and (optionally) traffic
/// generators over a Topology, plus the delivery ledger and telemetry
/// plumbing shared by benches and tests.
class Network {
 public:
  Network(std::shared_ptr<const Topology> topology, NetworkConfig config);

  /// Adds one traffic generator per node (seeded per node from config.seed).
  void attachTraffic(const TrafficConfig& traffic);

  /// Mixed-class workloads: one generator per (flow, node) pair, flow-major
  /// so flow 0's generators keep the single-flow names and seeds (and
  /// generator(NodeId) keeps returning flow 0's generator at each node).
  /// Flow f > 0 offsets every node seed by f * 104729 so flows draw
  /// independent streams.  Typically paired with RouterParams::qosClasses —
  /// each FlowSpec tags its packets with a TrafficClass — but legal on any
  /// network (classes are ignored without QoS).
  void attachTraffic(const std::vector<FlowSpec>& flows);

  const NetworkConfig& config() const { return config_; }
  const Topology& topology() const { return *topology_; }
  std::shared_ptr<const Topology> topologyPtr() const { return topology_; }

  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }
  router::Rasoc& router(NodeId n);
  NetworkInterface& ni(NodeId n);
  /// Flow 0's generator at `n` (the only flow for single-config traffic).
  TrafficGenerator& generator(NodeId n);
  /// Generator of flow `flow` at `n` (attachTraffic(vector<FlowSpec>)).
  TrafficGenerator& generator(NodeId n, std::size_t flow);
  /// Flows attached per node (0 before attachTraffic).
  std::size_t trafficFlows() const { return trafficFlows_; }

  /// Pauses (or resumes) every attached traffic generator, so sweeps can
  /// close the measurement window and drain() without racing generators
  /// that never go idle.  No-op when no traffic is attached.
  void pauseTraffic(bool paused);
  DeliveryLedger& ledger() { return ledger_; }
  const DeliveryLedger& ledger() const { return ledger_; }

  /// Opt-in observability: attaches the standard per-channel series of every
  /// router and NI to `registry` (naming convention in telemetry/metrics.hpp
  /// and noc/observe.hpp) and registers a per-cycle sampler for network-level
  /// gauges.  Call once, before running; the registry must outlive the
  /// network.
  void enableTelemetry(telemetry::MetricsRegistry& registry);
  const telemetry::MetricsRegistry* metrics() const { return metrics_; }

  /// Opt-in flit-level lifecycle tracing (noc/flow_trace.hpp): hooks every
  /// NI and registers the reconstruction tick listener.  Zero cost when not
  /// called — no router or NI carries trace code on its hot path.  Must run
  /// before the first cycle and before any packet is queued (the tracer's
  /// shadow queues start aligned with the empty network); throws
  /// std::logic_error otherwise or when called twice.
  FlowTracer& enableTracing(TraceConfig config = {});
  FlowTracer* tracer() { return tracer_.get(); }
  const FlowTracer* tracer() const { return tracer_.get(); }

  /// Stall forensics for watchdog snapshots: for every currently blocked
  /// link, its name followed by the last `perLink` retained trace events
  /// touching either endpoint.  Empty when tracing is off.
  std::vector<std::string> blockedLinkTraceDump(std::size_t perLink = 8) const;

  /// Fault-injecting links with their topology ids (empty on ideal links).
  const std::vector<std::pair<LinkId, router::FaultyLink*>>& faultyLinks()
      const {
    return faultyLinks_;
  }

  void reset();
  void run(std::uint64_t cycles);

  /// Runs until every send queue is empty, every queued packet has been
  /// delivered and (under reliability) every frame is acknowledged, or
  /// maxCycles elapse.  Returns true when fully drained.
  bool drain(std::uint64_t maxCycles);

  /// No misroutes, buffer overflows or misdeliveries anywhere.
  bool healthy() const;

  /// Mean / peak utilization over the inter-router links.
  double meanLinkUtilization() const;
  double maxLinkUtilization() const;
  std::size_t linkCount() const { return links_.size(); }

  /// Measured utilization of the directed link leaving `from` through
  /// `port` (throws for links that do not exist on this network).
  double linkUtilization(NodeId from, router::Port port) const;

  /// numVCs > 1 only (throws otherwise): flits currently buffered on
  /// virtual channel `v`, per node in row-major node order, summed over
  /// each node's input ports.  Occupancy heatmaps and credit-conservation
  /// checks read this between cycles.
  std::vector<int> vcOccupancy(int v) const;

  /// Fault-injection / HLP diagnostics aggregated over links and NIs.
  std::uint64_t flitsCorrupted() const;
  std::uint64_t flitsDropped() const;
  std::uint64_t faultStallCycles() const;
  std::uint64_t parityErrorsDetected() const;
  std::uint64_t unattributedPackets() const;

  /// Reliability protocol counters summed over every NI (all-zero when the
  /// protocol is disabled).
  ReliabilityStats reliabilityStats() const;

  /// Names of links currently offering a flit the far side is not
  /// accepting, in deterministic (node, port) order.  Feed to a Watchdog as
  /// its diagnostics callback so stall reports name the wedged links.
  std::vector<std::string> blockedLinkNames() const;

 private:
  std::size_t indexOf(NodeId n) const;

  std::shared_ptr<const Topology> topology_;
  NetworkConfig config_;
  std::vector<int> nodeDomains_;  // parallel kernel only; else empty
  sim::Simulator sim_;
  DeliveryLedger ledger_;
  std::vector<std::unique_ptr<router::Rasoc>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<router::Link>> links_;
  std::map<std::pair<int, int>, router::Link*> linkIndex_;  // (node, port)
  // Views into links_, with the topology-level id for metric naming.
  std::vector<std::pair<LinkId, router::FaultyLink*>> faultyLinks_;
  // Flow-major: generators_[f * nodes + i] is flow f's generator at node i.
  std::vector<std::unique_ptr<TrafficGenerator>> generators_;
  std::size_t trafficFlows_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<FlowTracer> tracer_;
};

}  // namespace rasoc::noc
