#include "noc/reliable.hpp"

#include <algorithm>
#include <stdexcept>

#include "router/flit.hpp"

namespace rasoc::noc {

void ReliabilityConfig::validate(int payloadBits) const {
  if (seqBits < 2 || seqBits > 20)
    throw std::invalid_argument("reliability: seqBits must be 2..20");
  if (window < 1)
    throw std::invalid_argument("reliability: window must be >= 1");
  if (static_cast<std::uint32_t>(window) > (1u << (seqBits - 1)))
    throw std::invalid_argument(
        "reliability: window must be at most half the sequence space "
        "(selective repeat cannot distinguish old from new otherwise)");
  if (seqBits + 2 > payloadBits)
    throw std::invalid_argument(
        "reliability: control word (seqBits + 2 type bits) does not fit "
        "the flit payload");
  if (rtoInitial == 0)
    throw std::invalid_argument("reliability: rtoInitial must be >= 1");
  if (rtoMax < rtoInitial)
    throw std::invalid_argument("reliability: rtoMax < rtoInitial");
  if (maxRetries < 0)
    throw std::invalid_argument("reliability: negative maxRetries");
}

ReliabilityStats& ReliabilityStats::operator+=(const ReliabilityStats& o) {
  dataFramesSent += o.dataFramesSent;
  retransmissions += o.retransmissions;
  timeouts += o.timeouts;
  acksSent += o.acksSent;
  nacksSent += o.nacksSent;
  acksReceived += o.acksReceived;
  nacksReceived += o.nacksReceived;
  duplicatesDropped += o.duplicatesDropped;
  outOfOrderBuffered += o.outOfOrderBuffered;
  malformedFrames += o.malformedFrames;
  payloadsDelivered += o.payloadsDelivered;
  abandoned += o.abandoned;
  return *this;
}

std::uint32_t seqMask(int seqBits) {
  return seqBits >= 32 ? 0xffffffffu : ((1u << seqBits) - 1u);
}

std::uint32_t seqDistance(std::uint32_t from, std::uint32_t to, int seqBits) {
  return (to - from) & seqMask(seqBits);
}

bool seqLess(std::uint32_t a, std::uint32_t b, int seqBits) {
  const std::uint32_t d = seqDistance(a, b, seqBits);
  return d != 0 && d < (1u << (seqBits - 1));
}

bool seqLessEq(std::uint32_t a, std::uint32_t b, int seqBits) {
  return seqDistance(a, b, seqBits) < (1u << (seqBits - 1)) ||
         ((a ^ b) & seqMask(seqBits)) == 0;
}

ReliableTransport::ReliableTransport(ReliabilityConfig config,
                                     std::shared_ptr<const Topology> topology,
                                     NodeId self, int payloadBits)
    : config_(config),
      topology_(std::move(topology)),
      self_(self),
      payloadBits_(payloadBits),
      typeShift_(payloadBits - 2),
      selfIndex_(static_cast<std::uint32_t>(topology_->indexOf(self))) {
  config_.validate(payloadBits_);
}

void ReliableTransport::reset() {
  sendFlows_.clear();
  recvFlows_.clear();
  frameFlow_.clear();
  pendingFrames_.clear();
  pendingDeliveries_.clear();
  stats_ = ReliabilityStats{};
  nextFrameId_ = 1;
}

std::uint32_t ReliableTransport::checksum(
    std::uint32_t first, const std::vector<std::uint32_t>& rest) const {
  std::uint32_t sum = first;
  for (std::uint32_t w : rest) sum += w;
  return sum & router::dataMask(payloadBits_);
}

void ReliableTransport::submit(NodeId dst,
                               const std::vector<std::uint32_t>& payload,
                               router::TrafficClass cls) {
  const int dstIndex = topology_->indexOf(dst);
  SendFlow& flow = sendFlows_[dstIndex];
  if (flow.unacked.size() < static_cast<std::size_t>(config_.window)) {
    transmit(dstIndex, flow, payload, cls);
  } else {
    flow.backlog.push_back({payload, cls});
  }
}

void ReliableTransport::transmit(int dstIndex, SendFlow& flow,
                                 std::vector<std::uint32_t> payload,
                                 router::TrafficClass cls) {
  Outstanding frame;
  frame.seq = flow.nextSeq;
  flow.nextSeq = (flow.nextSeq + 1) & seqMask(config_.seqBits);
  frame.payload = std::move(payload);
  frame.cls = cls;
  frame.frameId = nextFrameId_++;
  frame.rto = config_.rtoInitial;

  const std::uint32_t control =
      (static_cast<std::uint32_t>(FrameType::Data)
       << static_cast<std::uint32_t>(typeShift_)) |
      (classFieldFits()
           ? static_cast<std::uint32_t>(cls) << config_.seqBits
           : 0u) |
      frame.seq;
  std::vector<std::uint32_t> words;
  words.reserve(frame.payload.size() + 2);
  words.push_back(control);
  words.insert(words.end(), frame.payload.begin(), frame.payload.end());
  words.push_back(checksum(selfIndex_, words));

  frameFlow_[frame.frameId] = dstIndex;
  pendingFrames_.push_back({topology_->nodeAt(dstIndex), std::move(words),
                            frame.frameId, true, FrameType::Data, cls});
  ++stats_.dataFramesSent;
  flow.unacked.push_back(std::move(frame));
}

void ReliableTransport::retransmit(int dstIndex, Outstanding& frame) {
  frameFlow_.erase(frame.frameId);
  frame.frameId = nextFrameId_++;
  frame.deadline = 0;  // re-armed when the NI finishes streaming it

  // The control word keeps the ORIGINAL submission class (end-to-end
  // identity); only the header tag below is reclassified for routing.
  const std::uint32_t control =
      (static_cast<std::uint32_t>(FrameType::Data)
       << static_cast<std::uint32_t>(typeShift_)) |
      (classFieldFits()
           ? static_cast<std::uint32_t>(frame.cls) << config_.seqBits
           : 0u) |
      frame.seq;
  std::vector<std::uint32_t> words;
  words.reserve(frame.payload.size() + 2);
  words.push_back(control);
  words.insert(words.end(), frame.payload.begin(), frame.payload.end());
  words.push_back(checksum(selfIndex_, words));

  frameFlow_[frame.frameId] = dstIndex;
  // Recovery traffic rides the isolated reliability class, not the class of
  // the original submission — the whole point is to keep retransmissions
  // out of the congestion that delayed the first copy.
  pendingFrames_.push_back({topology_->nodeAt(dstIndex), std::move(words),
                            frame.frameId, false, FrameType::Data,
                            config_.trafficClass});
  ++stats_.retransmissions;
}

void ReliableTransport::emitControl(int dstIndex, FrameType type,
                                    std::uint32_t seq) {
  const std::uint32_t control =
      (static_cast<std::uint32_t>(type)
       << static_cast<std::uint32_t>(typeShift_)) |
      seq;
  std::vector<std::uint32_t> words;
  words.push_back(control);
  words.push_back(checksum(selfIndex_, words));
  pendingFrames_.push_back({topology_->nodeAt(dstIndex), std::move(words),
                            /*frameId=*/0, /*firstTransmission=*/false,
                            type, config_.trafficClass});
  if (type == FrameType::Ack) ++stats_.acksSent;
  if (type == FrameType::Nack) ++stats_.nacksSent;
}

void ReliableTransport::promote(int dstIndex, SendFlow& flow) {
  while (flow.unacked.size() < static_cast<std::size_t>(config_.window) &&
         !flow.backlog.empty()) {
    Backlogged next = std::move(flow.backlog.front());
    flow.backlog.pop_front();
    transmit(dstIndex, flow, std::move(next.payload), next.cls);
  }
}

void ReliableTransport::onFrameSent(std::uint64_t frameId,
                                    std::uint64_t cycle) {
  const auto it = frameFlow_.find(frameId);
  if (it == frameFlow_.end()) return;  // already acknowledged in transit
  SendFlow& flow = sendFlows_[it->second];
  for (Outstanding& frame : flow.unacked) {
    if (frame.frameId == frameId) {
      frame.deadline = cycle + frame.rto;
      break;
    }
  }
}

void ReliableTransport::onCycle(std::uint64_t cycle) {
  for (auto& [dstIndex, flow] : sendFlows_) {
    for (auto it = flow.unacked.begin(); it != flow.unacked.end();) {
      Outstanding& frame = *it;
      if (frame.deadline == 0 || cycle < frame.deadline) {
        ++it;
        continue;
      }
      ++stats_.timeouts;
      ++frame.timeouts;
      if (config_.maxRetries > 0 && frame.timeouts > config_.maxRetries) {
        ++stats_.abandoned;
        frameFlow_.erase(frame.frameId);
        it = flow.unacked.erase(it);
        continue;
      }
      frame.rto = std::min(frame.rto * 2, config_.rtoMax);
      retransmit(dstIndex, frame);
      ++it;
    }
    promote(dstIndex, flow);
  }
}

void ReliableTransport::popAcked(SendFlow& flow, std::uint32_t upTo,
                                 bool inclusive) {
  while (!flow.unacked.empty()) {
    const std::uint32_t seq = flow.unacked.front().seq;
    const bool acked = inclusive ? seqLessEq(seq, upTo, config_.seqBits)
                                 : seqLess(seq, upTo, config_.seqBits);
    if (!acked) break;
    frameFlow_.erase(flow.unacked.front().frameId);
    flow.unacked.pop_front();
  }
}

void ReliableTransport::handleAck(int srcIndex, std::uint32_t seq) {
  ++stats_.acksReceived;
  const auto it = sendFlows_.find(srcIndex);
  if (it == sendFlows_.end()) return;
  popAcked(it->second, seq, /*inclusive=*/true);
  promote(srcIndex, it->second);
}

void ReliableTransport::handleNack(int srcIndex, std::uint32_t seq) {
  ++stats_.nacksReceived;
  const auto it = sendFlows_.find(srcIndex);
  if (it == sendFlows_.end()) return;
  SendFlow& flow = it->second;
  // A NACK for `seq` implicitly acknowledges everything before it.
  popAcked(flow, seq, /*inclusive=*/false);
  for (Outstanding& frame : flow.unacked) {
    if (frame.seq != seq) continue;
    // Fast retransmit, but only when the previous copy fully left the NI
    // (deadline armed); otherwise a burst of NACKs would duplicate it.
    if (frame.deadline != 0) retransmit(srcIndex, frame);
    break;
  }
  promote(srcIndex, flow);
}

void ReliableTransport::handleData(int srcIndex, std::uint32_t seq,
                                   std::vector<std::uint32_t> payload,
                                   std::uint64_t cycle,
                                   router::TrafficClass cls) {
  RecvFlow& flow = recvFlows_[srcIndex];
  const std::uint32_t dist =
      seqDistance(flow.expected, seq, config_.seqBits);
  const std::uint32_t mask = seqMask(config_.seqBits);
  if (dist == 0) {
    // In order: deliver, then release any buffered successors.
    pendingDeliveries_.push_back(
        {topology_->nodeAt(srcIndex), std::move(payload), cls});
    ++stats_.payloadsDelivered;
    flow.expected = (flow.expected + 1) & mask;
    for (auto it = flow.buffered.find(flow.expected);
         it != flow.buffered.end(); it = flow.buffered.find(flow.expected)) {
      pendingDeliveries_.push_back({topology_->nodeAt(srcIndex),
                                    std::move(it->second.payload),
                                    it->second.cls});
      ++stats_.payloadsDelivered;
      flow.buffered.erase(it);
      flow.expected = (flow.expected + 1) & mask;
    }
    flow.nackPending = false;
    emitControl(srcIndex, FrameType::Ack, (flow.expected - 1) & mask);
  } else if (dist < static_cast<std::uint32_t>(config_.window)) {
    // Ahead of the expected frame: hold for reordering and ask for the gap.
    const auto [it, inserted] =
        flow.buffered.emplace(seq, Buffered{std::move(payload), cls});
    (void)it;
    if (inserted) {
      ++stats_.outOfOrderBuffered;
    } else {
      ++stats_.duplicatesDropped;
    }
    if (!flow.nackPending || flow.nackSeq != flow.expected ||
        cycle - flow.nackCycle >= config_.nackMinInterval) {
      emitControl(srcIndex, FrameType::Nack, flow.expected);
      flow.nackPending = true;
      flow.nackSeq = flow.expected;
      flow.nackCycle = cycle;
    }
  } else {
    // Behind the window: a duplicate of something already delivered.  The
    // sender evidently missed our ACK, so repeat it.
    ++stats_.duplicatesDropped;
    emitControl(srcIndex, FrameType::Ack, (flow.expected - 1) & mask);
  }
}

void ReliableTransport::onWireWords(const std::vector<std::uint32_t>& words,
                                    std::uint64_t cycle) {
  if (words.size() < 3) {
    ++stats_.malformedFrames;
    return;
  }
  const std::uint32_t mask = router::dataMask(payloadBits_);
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < words.size(); ++i) sum += words[i] & mask;
  if ((sum & mask) != (words.back() & mask)) {
    ++stats_.malformedFrames;
    return;
  }
  const std::uint32_t srcWord = words[0] & mask;
  if (srcWord >= static_cast<std::uint32_t>(topology_->nodes())) {
    ++stats_.malformedFrames;
    return;
  }
  const std::uint32_t control = words[1] & mask;
  const std::uint32_t type =
      control >> static_cast<std::uint32_t>(typeShift_);
  const std::uint32_t seq = control & seqMask(config_.seqBits);
  // Bits between the class field (DATA only) and the type field must be
  // clear; ACK/NACK control words carry no class.
  const bool isData = type == static_cast<std::uint32_t>(FrameType::Data);
  const std::uint32_t clsField =
      isData && classFieldFits()
          ? 3u << static_cast<std::uint32_t>(config_.seqBits)
          : 0u;
  const std::uint32_t valid =
      (3u << static_cast<std::uint32_t>(typeShift_)) | clsField |
      seqMask(config_.seqBits);
  if ((control & ~valid & mask) != 0 || type > 2) {
    ++stats_.malformedFrames;
    return;
  }
  const auto cls = static_cast<router::TrafficClass>(
      clsField ? (control >> config_.seqBits) & 3u : 0u);
  const int srcIndex = static_cast<int>(srcWord);
  switch (static_cast<FrameType>(type)) {
    case FrameType::Data: {
      std::vector<std::uint32_t> payload;
      for (std::size_t i = 2; i + 1 < words.size(); ++i)
        payload.push_back(words[i] & mask);
      handleData(srcIndex, seq, std::move(payload), cycle, cls);
      break;
    }
    case FrameType::Ack:
      if (words.size() != 3) {
        ++stats_.malformedFrames;
        return;
      }
      handleAck(srcIndex, seq);
      break;
    case FrameType::Nack:
      if (words.size() != 3) {
        ++stats_.malformedFrames;
        return;
      }
      handleNack(srcIndex, seq);
      break;
  }
}

std::vector<ReliableTransport::WireFrame> ReliableTransport::takeFrames() {
  std::vector<WireFrame> out;
  out.swap(pendingFrames_);
  return out;
}

std::vector<ReliableTransport::Delivery>
ReliableTransport::takeDeliveries() {
  std::vector<Delivery> out;
  out.swap(pendingDeliveries_);
  return out;
}

bool ReliableTransport::idle() const {
  if (!pendingFrames_.empty() || !pendingDeliveries_.empty()) return false;
  for (const auto& [dst, flow] : sendFlows_) {
    (void)dst;
    if (!flow.unacked.empty() || !flow.backlog.empty()) return false;
  }
  return true;
}

std::size_t ReliableTransport::backlogFrames() const {
  std::size_t total = 0;
  for (const auto& [dst, flow] : sendFlows_) {
    (void)dst;
    total += flow.backlog.size();
  }
  return total;
}

std::size_t ReliableTransport::unackedFrames() const {
  std::size_t total = 0;
  for (const auto& [dst, flow] : sendFlows_) {
    (void)dst;
    total += flow.unacked.size();
  }
  return total;
}

std::uint64_t ReliableTransport::currentRto(NodeId dst) const {
  const auto it = sendFlows_.find(topology_->indexOf(dst));
  if (it == sendFlows_.end() || it->second.unacked.empty())
    return config_.rtoInitial;
  return it->second.unacked.front().rto;
}

}  // namespace rasoc::noc
