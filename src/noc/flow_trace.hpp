/// \file
/// Flow tracer: reconstructs every traced packet's flit-level lifecycle —
/// NI queueing, header injection, per-hop FIFO residency, arbitration,
/// link traversal (including fault events), reliable-transport overhead
/// frames and ejection — without instrumenting a single router block.
///
/// How it stays zero-cost when disabled: the router pipeline carries no
/// trace code at all.  The tracer is a Simulator tick listener that runs
/// *between* cycles, after every clock edge, when two complementary views
/// of the machine are simultaneously visible:
///
///   * wires still hold the settled pre-edge values (val/ack handshakes,
///     FIFO read strobes, crossbar requests, arbitration nets), and
///   * lifetime counters (InputChannel::flitsAccepted,
///     OutputChannel::flitsSent, FaultyLink fault counters) and registered
///     arbiter state are already post-edge.
///
/// Counter deltas say *what* moved this edge; pre-edge wires say *where*
/// and *which way*; and a set of shadow FIFO queues — one per router input
/// buffer, fed at the source by the NI enqueue hook (the one active hook,
/// noc/ni.cpp) — says *which packet* it was.  Determinism is inherited:
/// the scan iterates nodes and ports in fixed order and reads only values
/// every kernel computes identically, so the event stream is byte-stable
/// across the naive, event-driven and parallel kernels and across thread
/// counts.  A desynchronized shadow queue (impossible unless the
/// reconstruction rules are wrong) throws immediately rather than
/// producing a silently misattributed trace.
///
/// Outputs: a bounded TraceSink ring (telemetry/trace_event.hpp), a
/// Chrome/Perfetto JSON export (one track per router port, one per
/// traced flow), a per-flow latency decomposition (source queueing / hop
/// minimum / hop blocked / drain) whose components sum *exactly* to the
/// traced end-to-end latency, and a `trace` RunReport section.  Kernel
/// profiling data (evaluations per cycle, frontier, domain imbalance,
/// hottest modules) is a property of the *kernel*, not of the simulated
/// machine, so it is kept strictly outside the traced event stream: it
/// exports through the separate kernelProfileJson() sidecar and the
/// `kernel_profile` report section, keeping perfettoJson() and the
/// `trace` section byte-identical across every kernel even with
/// profiling enabled.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/report.hpp"
#include "telemetry/trace_event.hpp"

#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "router/params.hpp"

namespace rasoc::router {
class InputChannel;
class OutputChannel;
class FaultyLink;
}  // namespace rasoc::router

namespace rasoc::noc {

class Network;

/// Knobs for Network::enableTracing.
struct TraceConfig {
  /// TraceSink ring capacity (events retained; older ones are overwritten).
  std::size_t capacity = 65536;

  /// Flow sampling: a packet is traced iff its flow satisfies
  /// (srcIndex * nodes + dstIndex) % sampleEvery == 0.  1 traces
  /// everything.  Untraced packets still occupy shadow-queue slots (the
  /// reconstruction needs every flit accounted for) but record no events,
  /// so the ring and the JSON shrink roughly by the factor.
  std::uint64_t sampleEvery = 1;

  /// Also profile the settle kernel: per-module evaluate() counts
  /// (Simulator::enableProfiling) plus a per-cycle evaluation/frontier/
  /// domain-imbalance timeline.  Profile data never touches the traced
  /// event stream — it exports through kernelProfileJson() and the
  /// `kernel_profile` report section — so enabling this does not perturb
  /// cross-kernel byte-identity of perfettoJson().
  bool profileKernel = true;

  /// Completed per-packet spans retained for the Perfetto flow tracks and
  /// the decomposition detail; the latency statistics keep accumulating
  /// past this bound.
  std::size_t maxFlowSpans = 8192;
};

/// See the file comment.  Construct through Network::enableTracing — the
/// tracer must attach before the first cycle and before any packet is
/// queued, so its shadow state starts aligned with the empty network.
class FlowTracer {
 public:
  FlowTracer(Network& network, TraceConfig config);

  /// Per-flow latency decomposition over completed traced packets, in
  /// cycles.  The identity
  ///   end_to_end = source_queue + hop_min + hop_blocked + drain
  /// holds exactly per packet: source_queue is NI queue wait (queued ->
  /// header on the wire), hop_min is the router count on the path (one
  /// cycle minimum per hop), hop_blocked is every extra cycle the header
  /// spent waiting in input buffers, and drain is the tail serialization
  /// after the header reached the destination NI.
  struct Decomposition {
    LatencyStats endToEnd;
    LatencyStats sourceQueue;
    LatencyStats hopMin;
    LatencyStats hopBlocked;
    LatencyStats drain;
  };

  /// One completed traced packet (Perfetto flow-track span).
  struct FlowSpan {
    std::uint64_t id = 0;
    std::int32_t src = 0;
    std::int32_t dst = 0;
    telemetry::TraceEventKind kind = telemetry::TraceEventKind::PacketQueued;
    std::uint64_t queuedCycle = 0;
    std::uint64_t injectCycle = 0;
    std::uint64_t headerEjectCycle = 0;
    std::uint64_t ejectCycle = 0;
    std::uint32_t hops = 0;
    std::uint64_t blockedCycles = 0;
  };

  // --- hooks -------------------------------------------------------------

  /// NI enqueue hook: a wire packet (application data, retransmission or
  /// control frame — `kind` says which) entered `src`'s send queue for
  /// `dst`.  Returns the assigned packet id, or 0 when the flow is not
  /// sampled.  The event itself is staged and recorded at the next tick.
  std::uint64_t onPacketQueued(NodeId src, NodeId dst,
                               telemetry::TraceEventKind kind, int flits);

  /// Tick listener body: reconstructs and records this edge's events.
  void onTick();

  /// Forgets all trace state and re-synchronizes the counter snapshots
  /// against the (freshly reset) network.
  void clear();

  // --- results -----------------------------------------------------------

  const TraceConfig& config() const { return config_; }
  const telemetry::TraceSink& sink() const { return sink_; }
  const Decomposition& decomposition() const { return decomp_; }
  const std::vector<FlowSpan>& flowSpans() const { return spans_; }

  /// Wire packets assigned a (sampled) trace id / completed end to end.
  std::uint64_t packetsTraced() const { return packetsTraced_; }
  std::uint64_t packetsCompleted() const { return packetsCompleted_; }

  /// Chrome/Perfetto trace_events JSON of everything currently retained
  /// (loadable in ui.perfetto.dev).  Deterministic for a seeded run and
  /// byte-identical across settle kernels, with or without profiling.
  std::string perfettoJson() const;

  /// Chrome/Perfetto JSON of the kernel-profile counter tracks
  /// (evaluations / frontier / per-domain per cycle).  Kernel-dependent
  /// by nature — keep it a sidecar next to the machine trace, never
  /// merged into it.  Empty-trace JSON when profileKernel is off or no
  /// samples were taken.
  std::string kernelProfileJson() const;

  /// Fills the `trace` section of a RunReport (ring occupancy, packet
  /// counts, per-component latency percentiles — kernel-independent) and,
  /// when profiling, a separate `kernel_profile` section (hottest
  /// modules, sample count).  Deterministic.
  void writeReport(telemetry::RunReport& report) const;

  /// Human-readable per-component latency table (examples, logs).
  std::string decompositionTable() const;

  /// The most recent <= n retained events touching the directed link
  /// leaving `from` through `port` (either endpoint's channel), oldest
  /// first.  Feed through telemetry::describe for watchdog stall dumps.
  std::vector<telemetry::TraceEvent> recentLinkEvents(NodeId from,
                                                      router::Port port,
                                                      std::size_t n) const;

 private:
  struct FifoEntry {
    std::uint64_t id = 0;        // 0 = untraced filler, keeps alignment
    std::uint64_t enqCycle = 0;
    bool bop = false;
  };
  struct NiEntry {
    std::uint64_t id = 0;
    std::int32_t flits = 0;
    std::int32_t next = 0;
  };
  struct Staged {
    std::uint64_t id = 0;
    telemetry::TraceEventKind kind = telemetry::TraceEventKind::PacketQueued;
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t flits = 0;
  };
  struct PacketMeta {
    std::int32_t src = 0;
    std::int32_t dst = 0;
    std::int32_t flits = 0;
    telemetry::TraceEventKind kind = telemetry::TraceEventKind::PacketQueued;
    std::uint64_t queuedCycle = 0;
    std::uint64_t headerInjectCycle = 0;
    std::uint64_t headerEjectCycle = 0;
    std::uint32_t hops = 0;
    std::uint64_t hopBlocked = 0;
  };
  struct KernelSample {
    std::uint64_t cycle = 0;
    std::uint64_t evals = 0;
    std::uint64_t frontier = 0;
    std::vector<std::uint64_t> domains;
  };
  struct FaultyView {
    std::size_t slot = 0;  // (fromNode, fromPort)
    const router::FaultyLink* link = nullptr;
    std::uint64_t prevCorrupted = 0;
    std::uint64_t prevDropped = 0;
    std::uint64_t prevStalls = 0;
  };

  std::size_t slot(int node, int port) const {
    return static_cast<std::size_t>(node) * router::kNumPorts +
           static_cast<std::size_t>(port);
  }
  PacketMeta* meta(std::uint64_t id);
  void emit(telemetry::TraceEventKind kind, std::uint64_t cycle,
            std::uint64_t id, const PacketMeta& m, int node, int port,
            std::int32_t value);
  void resyncCounters();
  void completePacket(std::uint64_t id, const PacketMeta& m,
                      std::uint64_t ejectCycle);
  [[noreturn]] void desync(const char* where, int node, int port) const;

  Network* net_;
  TraceConfig config_;
  telemetry::TraceSink sink_;

  int nodes_ = 0;
  // Per-(node, port) cached views; null where the port is pruned.
  std::vector<const router::InputChannel*> inputs_;
  std::vector<const router::OutputChannel*> outputs_;
  std::vector<int> upstream_;  // receiving slot -> sending slot (-1 = none)
  std::vector<FaultyView> faulty_;

  // Shadow state (see file comment).
  std::vector<std::deque<FifoEntry>> fifo_;   // one per (node, in-port)
  std::vector<std::deque<NiEntry>> niStream_;  // one per node
  std::vector<Staged> staged_;
  std::unordered_map<std::uint64_t, PacketMeta> metas_;

  // Previous lifetime counters, for per-edge deltas.
  std::vector<std::uint64_t> prevAccepted_;
  std::vector<std::uint64_t> prevSent_;

  // Per-tick scratch: which id was read out of each input buffer this edge,
  // and which id left each (node, out-port) over its link.
  std::vector<std::uint64_t> popped_;
  std::vector<char> poppedValid_;
  std::vector<std::uint64_t> transferId_;
  std::vector<char> transferValid_;

  Decomposition decomp_;
  std::vector<FlowSpan> spans_;
  std::uint64_t spanOverflow_ = 0;

  std::deque<KernelSample> kernelSamples_;  // bounded by config_.capacity
  std::uint64_t prevEvals_ = 0;
  std::uint64_t prevFrontier_ = 0;
  std::vector<std::uint64_t> prevDomains_;

  std::uint64_t nextId_ = 1;
  std::uint64_t packetsTraced_ = 0;
  std::uint64_t packetsCompleted_ = 0;
};

}  // namespace rasoc::noc
