#include "noc/ni.hpp"

#include <bit>
#include <stdexcept>

#include "noc/flow_trace.hpp"
#include "sim/compile.hpp"

namespace rasoc::noc {

using router::Flit;
using router::FlowControl;

NetworkInterface::NetworkInterface(std::string name,
                                   const router::RouterParams& params,
                                   std::shared_ptr<const Topology> topology,
                                   NodeId self, router::ChannelWires& toRouter,
                                   router::ChannelWires& fromRouter,
                                   DeliveryLedger& ledger, NiOptions options)
    : Module(std::move(name)),
      params_(params),
      options_(options),
      flowControl_(params.flowControl),
      topology_(std::move(topology)),
      self_(self),
      toRouter_(&toRouter),
      fromRouter_(&fromRouter),
      ledger_(&ledger) {
  if (!topology_) throw std::invalid_argument("NI needs a topology");
  topology_->indexOf(self_);  // bounds-check our own address
  if (static_cast<std::uint64_t>(topology_->nodes()) >
      static_cast<std::uint64_t>(router::dataMask(payloadBits())) + 1)
    throw std::invalid_argument(
        "node index must fit in one payload flit; shrink the network or "
        "widen n");
  if (options_.reliability.enabled) {
    options_.reliability.validate(payloadBits());
    transport_ = std::make_unique<ReliableTransport>(
        options_.reliability, topology_, self_, payloadBits());
  }
  if (params_.qosClasses) {
    if (options_.escapeVCs < 1 || options_.escapeVCs >= params_.numVCs)
      throw std::invalid_argument(
          "qosClasses: NI escapeVCs outside [1, numVCs)");
    // The in-band class field of the reliability control word must not
    // overlap the type bits, or recovered payloads lose their class and
    // the per-class delivery ledger can never close them.
    if (options_.reliability.enabled &&
        options_.reliability.seqBits + 4 > payloadBits())
      throw std::invalid_argument(
          "qosClasses + reliability: control word (seqBits + 2 class + 2 "
          "type bits) does not fit the flit payload");
  }
  // The send side of evaluate() streams from the registered queue/credit
  // state; the receive side echoes the router's val into ack.
  declareSequential();
  sensitive(fromRouter.val);
  if (vcMode()) {
    if (options_.injectVc < 0 || options_.injectVc >= params_.numVCs)
      throw std::invalid_argument("NI injectVc outside [0, numVCs)");
    sensitive(fromRouter.vc);
    if (!creditMode()) {
      if (params_.qosClasses) {
        // Every class inject VC is adaptive (>= escapeVCs); the scheduler
        // watches each one's space advertisement.
        for (int v = options_.escapeVCs; v < params_.numVCs; ++v)
          sensitive(toRouter.vcFree[static_cast<std::size_t>(v)]);
      } else {
        sensitive(
            toRouter.vcFree[static_cast<std::size_t>(options_.injectVc)]);
      }
    }
  }
}

NetworkInterface::NetworkInterface(std::string name,
                                   const router::RouterParams& params,
                                   MeshShape shape, NodeId self,
                                   router::ChannelWires& toRouter,
                                   router::ChannelWires& fromRouter,
                                   DeliveryLedger& ledger, NiOptions options)
    : NetworkInterface(std::move(name), params,
                       std::make_shared<MeshTopology>(shape), self, toRouter,
                       fromRouter, ledger, options) {}

int NetworkInterface::payloadBits() const {
  return options_.hlpParity ? params_.n - 1 : params_.n;
}

int NetworkInterface::injectVcFor(router::TrafficClass cls) const {
  if (!params_.qosClasses) return vcMode() ? options_.injectVc : 0;
  return router::qosInjectVc(cls, params_.numVCs, options_.escapeVCs);
}

std::deque<NetworkInterface::OutPacket>& NetworkInterface::queueFor(int vc) {
  return params_.qosClasses ? vcSendQueue_[static_cast<std::size_t>(vc)]
                            : sendQueue_;
}

const std::deque<NetworkInterface::OutPacket>& NetworkInterface::queueFor(
    int vc) const {
  return params_.qosClasses ? vcSendQueue_[static_cast<std::size_t>(vc)]
                            : sendQueue_;
}

std::size_t NetworkInterface::sendQueuePackets() const {
  std::size_t total = sendQueue_.size();
  if (params_.qosClasses) {
    for (int v = 0; v < params_.numVCs; ++v)
      total += vcSendQueue_[static_cast<std::size_t>(v)].size();
  }
  return total + (transport_ ? transport_->backlogFrames() : 0);
}

std::size_t NetworkInterface::sendQueuePackets(
    router::TrafficClass cls) const {
  return queueFor(injectVcFor(cls)).size();
}

bool NetworkInterface::idle() const {
  if (!sendQueue_.empty()) return false;
  for (const auto& q : vcSendQueue_)
    if (!q.empty()) return false;
  return !transport_ || transport_->idle();
}

int NetworkInterface::scheduledInjectVc() const {
  // Strict priority, work-conserving: the class→VC map puts higher classes
  // on higher VCs, so the highest non-empty, non-blocked inject queue wins.
  for (int v = params_.numVCs - 1; v >= 0; --v) {
    if (vcSendQueue_[static_cast<std::size_t>(v)].empty()) continue;
    const bool space =
        creditMode() ? vcCredits_[static_cast<std::size_t>(v)] > 0
                     : toRouter_->vcFree[static_cast<std::size_t>(v)].get();
    if (space) return v;
  }
  return -1;
}

std::uint32_t NetworkInterface::parityProtect(std::uint32_t word) const {
  const std::uint32_t payload = word & router::dataMask(payloadBits());
  const bool odd = (std::popcount(payload) & 1) != 0;
  // Even parity over the full n-bit word: set the HLP bit to cancel odd
  // payload parity.
  return payload | (odd ? (1u << payloadBits()) : 0u);
}

bool NetworkInterface::parityOk(std::uint32_t word) const {
  return (std::popcount(word & router::dataMask(params_.n)) & 1) == 0;
}

void NetworkInterface::attachMetrics(const NiMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
}

void NetworkInterface::onReset() {
  sendQueue_.clear();
  for (auto& q : vcSendQueue_) q.clear();
  sendQueueFlits_ = 0;
  credits_ = params_.p;
  vcCredits_.fill(params_.p);
  for (auto& buf : rxVc_) buf.clear();
  rxFlits_.clear();
  received_.clear();
  cycle_ = 0;
  packetsSent_ = 0;
  packetsReceived_ = 0;
  parityErrors_ = 0;
  unattributed_ = 0;
  misdelivery_ = false;
  if (transport_) transport_->reset();
  lastMetricStats_ = ReliabilityStats{};
}

void NetworkInterface::send(NodeId dst,
                            const std::vector<std::uint32_t>& payload,
                            router::TrafficClass cls) {
  if (dst == self_)
    throw std::invalid_argument(
        "self-addressed packets are not routable (own-port request)");
  if (!topology_->contains(dst))
    throw std::invalid_argument("dst outside network");
  if (!params_.qosClasses) cls = router::TrafficClass::BestEffort;
  const int ledgerClass =
      params_.qosClasses ? static_cast<int>(cls) : -1;

  if (transport_) {
    // The ledger tracks the application packet once, at submission; frames
    // (first transmissions, retransmissions, ACKs) are protocol overhead.
    // `flits` uses the unprotected wire size so goodput numbers stay
    // comparable with reliability on and off.
    PacketRecord record;
    record.src = self_;
    record.dst = dst;
    record.createdCycle = cycle_;
    record.flits = static_cast<int>(payload.size()) + 2;
    record.trafficClass = ledgerClass;
    ledger_->onQueued(record);
    transport_->submit(dst, payload, cls);
    pumpTransport();
    markDirty();
    return;
  }

  // Wire format: header + source-index flit + payload (last flit = eop).
  std::vector<std::uint32_t> words;
  words.reserve(payload.size() + 1);
  words.push_back(static_cast<std::uint32_t>(topology_->indexOf(self_)));
  words.insert(words.end(), payload.begin(), payload.end());
  if (options_.hlpParity) {
    for (std::uint32_t& word : words) word = parityProtect(word);
  }

  const int vc = vcMode() ? injectVcFor(cls) : 0;
  OutPacket packet;
  packet.dst = dst;
  packet.ledgerClass = ledgerClass;
  packet.flits =
      router::makePacket(topology_->ribFor(self_, dst, params_.numVCs), words,
                         params_, vc);
  if (params_.qosClasses)
    packet.flits[0].data =
        router::encodeTrafficClass(packet.flits[0].data, cls, params_.m);

  PacketRecord record;
  record.src = self_;
  record.dst = dst;
  record.createdCycle = cycle_;
  record.flits = static_cast<int>(packet.flits.size());
  record.trafficClass = ledgerClass;
  ledger_->onQueued(record);

  if (tracer_)
    tracer_->onPacketQueued(self_, dst, telemetry::TraceEventKind::PacketQueued,
                            static_cast<int>(packet.flits.size()));

  sendQueueFlits_ += packet.flits.size();
  queueFor(vc).push_back(std::move(packet));
  // A queue push changes what evaluate() drives; wake the event-driven
  // kernel even when the push happens between cycles (testbench sends).
  markDirty();
}

void NetworkInterface::evaluate() {
  // Send side: present the next flit whenever one is pending and the flow
  // control permits it.  numVCs == 1: a credit (credit mode) or always
  // (handshake, the ack completes the transfer).  numVCs > 1: the inject
  // VC's advertised space (on/off level) or an in-hand per-VC credit — the
  // transfer is then unconditional.  Under qosClasses the inject VC is
  // picked per cycle by strict class priority over the per-VC queues.
  const OutPacket* pending = nullptr;
  int injectVc = vcMode() ? options_.injectVc : 0;
  if (params_.qosClasses) {
    const int v = scheduledInjectVc();
    injectVc = v >= 0 ? v : 0;
    if (v >= 0) pending = &vcSendQueue_[static_cast<std::size_t>(v)].front();
  } else {
    bool canSend = !sendQueue_.empty();
    if (vcMode()) {
      canSend =
          canSend &&
          (creditMode()
               ? vcCredits_[static_cast<std::size_t>(injectVc)] > 0
               : toRouter_->vcFree[static_cast<std::size_t>(injectVc)].get());
    } else if (creditMode()) {
      canSend = canSend && credits_ > 0;
    }
    if (canSend) pending = &sendQueue_.front();
  }
  if (pending) {
    const Flit& flit = pending->flits[pending->next];
    toRouter_->flit.data.set(flit.data);
    toRouter_->flit.bop.set(flit.bop);
    toRouter_->flit.eop.set(flit.eop);
    toRouter_->val.set(true);
  } else {
    toRouter_->flit.data.set(0);
    toRouter_->flit.bop.set(false);
    toRouter_->flit.eop.set(false);
    toRouter_->val.set(false);
  }
  if (vcMode()) toRouter_->vc.set(pending ? injectVc : 0);

  // Receive side: always ready.
  if (vcMode()) {
    // Every VC has unbounded reassembly space here, so all vcFree levels
    // stay up; in credit mode the flit is consumed the cycle it lands, so
    // its credit returns immediately on the arriving VC's vcAck line.
    for (int v = 0; v < params_.numVCs; ++v) {
      fromRouter_->vcFree[static_cast<std::size_t>(v)].set(true);
      if (creditMode())
        fromRouter_->vcAck[static_cast<std::size_t>(v)].set(
            fromRouter_->val.get() && fromRouter_->vc.get() == v);
    }
    return;
  }
  // In handshake mode this acknowledges the incoming flit; in credit mode
  // the same pulse returns the credit.
  fromRouter_->ack.set(fromRouter_->val.get());
}

void NetworkInterface::clockEdge() {
  // --- send side ---------------------------------------------------------
  const bool presented = toRouter_->val.get();
  // With VCs a presented flit always lands (evaluate() only raises val
  // against advertised space or a credit in hand).
  const bool sent =
      presented && (vcMode() || creditMode() || toRouter_->ack.get());
  if (sent) {
    const int sentVc = vcMode() ? toRouter_->vc.get() : 0;
    std::deque<OutPacket>& queue = queueFor(sentVc);
    OutPacket& packet = queue.front();
    const Flit& flit = packet.flits[packet.next];
    if (flit.bop && packet.tracked)
      ledger_->onHeaderInjected(self_, packet.dst, cycle_,
                                packet.ledgerClass);
    ++packet.next;
    --sendQueueFlits_;
    if (packet.next == packet.flits.size()) {
      ++packetsSent_;
      // The frame is fully on the wire: arm its retransmission timer.
      if (transport_ && packet.frameId != 0)
        transport_->onFrameSent(packet.frameId, cycle_);
      queue.pop_front();
    }
  }
  if (creditMode()) {
    if (vcMode()) {
      if (params_.qosClasses) {
        // Credits return on whichever VC each flit entered; every class
        // inject VC keeps its own pool.
        const int sentVc = sent ? toRouter_->vc.get() : -1;
        for (int v = 0; v < params_.numVCs; ++v) {
          const auto vi = static_cast<std::size_t>(v);
          vcCredits_[vi] += (toRouter_->vcAck[vi].get() ? 1 : 0) -
                            (v == sentVc ? 1 : 0);
        }
      } else {
        const auto v = static_cast<std::size_t>(options_.injectVc);
        vcCredits_[v] += (toRouter_->vcAck[v].get() ? 1 : 0) - (sent ? 1 : 0);
      }
    } else {
      credits_ += (toRouter_->ack.get() ? 1 : 0) - (sent ? 1 : 0);
    }
  }

  if (metricsAttached_) {
    if (metrics_.flitsInjected && sent) metrics_.flitsInjected->inc();
    if (metrics_.backpressureCycles && sendQueueFlits_ > 0 && !sent)
      metrics_.backpressureCycles->inc();
    if (metrics_.sendQueueFlits)
      metrics_.sendQueueFlits->observe(static_cast<double>(sendQueueFlits_));
  }

  // --- receive side ------------------------------------------------------
  const bool gotFlit = fromRouter_->val.get();
  if (metricsAttached_ && metrics_.flitsEjected && gotFlit)
    metrics_.flitsEjected->inc();
  if (gotFlit) {
    Flit flit;
    flit.data = fromRouter_->flit.data.get();
    flit.bop = fromRouter_->flit.bop.get();
    flit.eop = fromRouter_->flit.eop.get();
    // Packets on different VCs interleave flit-by-flit on the physical
    // link, so each VC reassembles in its own buffer.
    std::vector<Flit>& buf =
        vcMode() ? rxVc_[static_cast<std::size_t>(fromRouter_->vc.get())]
                 : rxFlits_;
    acceptRxFlit(flit, buf);
  }

  if (transport_) {
    transport_->onCycle(cycle_);
    pumpTransport();
    if (metricsAttached_) {
      const ReliabilityStats& s = transport_->stats();
      if (metrics_.retransmits)
        metrics_.retransmits->inc(s.retransmissions -
                                  lastMetricStats_.retransmissions);
      if (metrics_.timeouts)
        metrics_.timeouts->inc(s.timeouts - lastMetricStats_.timeouts);
      if (metrics_.duplicatesDropped)
        metrics_.duplicatesDropped->inc(s.duplicatesDropped -
                                        lastMetricStats_.duplicatesDropped);
      lastMetricStats_ = s;
    }
  }

  ++cycle_;
}

void NetworkInterface::acceptRxFlit(const Flit& flit,
                                    std::vector<Flit>& buf) {
  if (flit.bop) buf.clear();
  buf.push_back(flit);
  if (!flit.eop) return;
  if (buf.size() < 2 || !buf.front().bop) {
    misdelivery_ = true;
  } else {
    // Residual RIB must be zero: routing consumed the whole offset.
    const router::Rib residual = router::decodeRib(buf.front().data, params_.m);
    if (residual != router::Rib{0, 0}) misdelivery_ = true;
    bool parityBad = false;
    if (options_.hlpParity) {
      for (std::size_t i = 1; i < buf.size(); ++i) {
        if (!parityOk(buf[i].data)) {
          ++parityErrors_;
          parityBad = true;
        }
      }
    }
    const std::uint32_t mask = router::dataMask(payloadBits());
    if (transport_) {
      // Reliability path: hand the checksummed frame to the transport,
      // which validates it, dedups, reorders and ACKs.  Deliveries are
      // collected in the pump below.  Parity-flagged frames never reach
      // the transport: parity catches any single-bit flip per flit
      // (strictly stronger than the frame checksum, whose additive sum
      // can cancel across two corrupted flits), and dropping here turns
      // detection into recovery — the sender retransmits whatever is
      // never acknowledged.
      if (!parityBad) {
        std::vector<std::uint32_t> words;
        words.reserve(buf.size() - 1);
        for (std::size_t i = 1; i < buf.size(); ++i)
          words.push_back(buf[i].data & mask);
        transport_->onWireWords(words, cycle_);
      }
    } else {
      const auto srcIndex = static_cast<int>(buf[1].data & mask);
      // Under fault injection the decoded source index can be garbage;
      // count that as unattributed rather than tripping the bounds check.
      if (srcIndex < 0 || srcIndex >= topology_->nodes()) {
        ++unattributed_;
      } else {
        const NodeId src = topology_->nodeAt(srcIndex);
        // The ledger flows are per class on a QoS network (priority
        // scheduling reorders classes); the header carries the tag.
        const int cls =
            params_.qosClasses
                ? static_cast<int>(
                      router::decodeTrafficClass(buf.front().data, params_.m))
                : -1;
        if (!ledger_->tryDeliver(src, self_, cycle_, cls)) ++unattributed_;
      }
      ++packetsReceived_;
      std::vector<std::uint32_t> payload;
      for (std::size_t i = 2; i < buf.size(); ++i)
        payload.push_back(buf[i].data & mask);
      received_.push_back(std::move(payload));
    }
  }
  buf.clear();
}

void NetworkInterface::enqueueFrame(ReliableTransport::WireFrame&& frame) {
  std::vector<std::uint32_t> words;
  words.reserve(frame.words.size() + 1);
  words.push_back(static_cast<std::uint32_t>(topology_->indexOf(self_)));
  words.insert(words.end(), frame.words.begin(), frame.words.end());
  if (options_.hlpParity) {
    for (std::uint32_t& word : words) word = parityProtect(word);
  }
  // The transport picked the frame's class: the submitter's on first DATA
  // transmissions, the reliability class on retransmissions and ACK/NACKs
  // — so recovery traffic rides its own isolated channel.
  const int vc = vcMode() ? injectVcFor(frame.cls) : 0;
  OutPacket packet;
  packet.dst = frame.dst;
  packet.frameId = frame.frameId;
  packet.tracked = frame.firstTransmission;
  if (params_.qosClasses && packet.tracked)
    packet.ledgerClass = static_cast<int>(frame.cls);
  packet.flits = router::makePacket(
      topology_->ribFor(self_, frame.dst, params_.numVCs), words, params_,
      vc);
  if (params_.qosClasses)
    packet.flits[0].data = router::encodeTrafficClass(packet.flits[0].data,
                                                      frame.cls, params_.m);
  if (tracer_) {
    using telemetry::TraceEventKind;
    TraceEventKind kind = TraceEventKind::PacketQueued;
    if (frame.type == FrameType::Ack)
      kind = TraceEventKind::AckQueued;
    else if (frame.type == FrameType::Nack)
      kind = TraceEventKind::NackQueued;
    else if (!frame.firstTransmission)
      kind = TraceEventKind::RetransmitQueued;
    tracer_->onPacketQueued(self_, frame.dst, kind,
                            static_cast<int>(packet.flits.size()));
  }
  sendQueueFlits_ += packet.flits.size();
  queueFor(vc).push_back(std::move(packet));
  markDirty();
}

void NetworkInterface::pumpTransport() {
  for (auto& frame : transport_->takeFrames())
    enqueueFrame(std::move(frame));
  for (auto& delivery : transport_->takeDeliveries()) {
    // Attribution is checksum-verified, so a failed ledger close would mean
    // a protocol bug rather than wire noise; count it like the unprotected
    // path does.  The delivery carries the submitter's class (recovered
    // from the DATA control word) so the per-class flow key matches even
    // when the payload arrived via a reclassified retransmission.
    const int cls =
        params_.qosClasses ? static_cast<int>(delivery.cls) : -1;
    if (!ledger_->tryDeliver(delivery.src, self_, cycle_, cls))
      ++unattributed_;
    ++packetsReceived_;
    received_.push_back(std::move(delivery.payload));
  }
}

bool NetworkInterface::describe(sim::Lowering& lw) {
  if (vcMode()) {
    std::vector<const sim::WireBase*> reads = {&fromRouter_->val,
                                               &fromRouter_->vc};
    std::vector<const sim::WireBase*> writes = {
        &toRouter_->flit.data, &toRouter_->flit.bop, &toRouter_->flit.eop,
        &toRouter_->val, &toRouter_->vc};
    if (!creditMode()) {
      // QoS injects on any adaptive VC, so evaluate() reads them all;
      // otherwise only the fixed inject VC's level matters.
      if (params_.qosClasses) {
        for (int v = options_.escapeVCs; v < params_.numVCs; ++v)
          reads.push_back(&toRouter_->vcFree[static_cast<std::size_t>(v)]);
      } else {
        reads.push_back(
            &toRouter_->vcFree[static_cast<std::size_t>(options_.injectVc)]);
      }
    }
    for (int v = 0; v < params_.numVCs; ++v) {
      writes.push_back(&fromRouter_->vcFree[static_cast<std::size_t>(v)]);
      if (creditMode())
        writes.push_back(&fromRouter_->vcAck[static_cast<std::size_t>(v)]);
    }
    lw.thunkDeclared(*this, std::move(reads), std::move(writes));
    lw.edgeCall(*this);
    return true;
  }
  lw.thunkDeclared(*this, {&fromRouter_->val},
                   {&toRouter_->flit.data, &toRouter_->flit.bop,
                    &toRouter_->flit.eop, &toRouter_->val,
                    &fromRouter_->ack});
  lw.edgeCall(*this);
  return true;
}

}  // namespace rasoc::noc
