#include "noc/ni.hpp"

#include <bit>
#include <stdexcept>

#include "noc/flow_trace.hpp"
#include "sim/compile.hpp"

namespace rasoc::noc {

using router::Flit;
using router::FlowControl;

NetworkInterface::NetworkInterface(std::string name,
                                   const router::RouterParams& params,
                                   std::shared_ptr<const Topology> topology,
                                   NodeId self, router::ChannelWires& toRouter,
                                   router::ChannelWires& fromRouter,
                                   DeliveryLedger& ledger, NiOptions options)
    : Module(std::move(name)),
      params_(params),
      options_(options),
      flowControl_(params.flowControl),
      topology_(std::move(topology)),
      self_(self),
      toRouter_(&toRouter),
      fromRouter_(&fromRouter),
      ledger_(&ledger) {
  if (!topology_) throw std::invalid_argument("NI needs a topology");
  topology_->indexOf(self_);  // bounds-check our own address
  if (static_cast<std::uint64_t>(topology_->nodes()) >
      static_cast<std::uint64_t>(router::dataMask(payloadBits())) + 1)
    throw std::invalid_argument(
        "node index must fit in one payload flit; shrink the network or "
        "widen n");
  if (options_.reliability.enabled) {
    options_.reliability.validate(payloadBits());
    transport_ = std::make_unique<ReliableTransport>(
        options_.reliability, topology_, self_, payloadBits());
  }
  // The send side of evaluate() streams from the registered queue/credit
  // state; the receive side echoes the router's val into ack.
  declareSequential();
  sensitive(fromRouter.val);
}

NetworkInterface::NetworkInterface(std::string name,
                                   const router::RouterParams& params,
                                   MeshShape shape, NodeId self,
                                   router::ChannelWires& toRouter,
                                   router::ChannelWires& fromRouter,
                                   DeliveryLedger& ledger, NiOptions options)
    : NetworkInterface(std::move(name), params,
                       std::make_shared<MeshTopology>(shape), self, toRouter,
                       fromRouter, ledger, options) {}

int NetworkInterface::payloadBits() const {
  return options_.hlpParity ? params_.n - 1 : params_.n;
}

std::uint32_t NetworkInterface::parityProtect(std::uint32_t word) const {
  const std::uint32_t payload = word & router::dataMask(payloadBits());
  const bool odd = (std::popcount(payload) & 1) != 0;
  // Even parity over the full n-bit word: set the HLP bit to cancel odd
  // payload parity.
  return payload | (odd ? (1u << payloadBits()) : 0u);
}

bool NetworkInterface::parityOk(std::uint32_t word) const {
  return (std::popcount(word & router::dataMask(params_.n)) & 1) == 0;
}

void NetworkInterface::attachMetrics(const NiMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
}

void NetworkInterface::onReset() {
  sendQueue_.clear();
  sendQueueFlits_ = 0;
  credits_ = params_.p;
  rxFlits_.clear();
  received_.clear();
  cycle_ = 0;
  packetsSent_ = 0;
  packetsReceived_ = 0;
  parityErrors_ = 0;
  unattributed_ = 0;
  misdelivery_ = false;
  if (transport_) transport_->reset();
  lastMetricStats_ = ReliabilityStats{};
}

void NetworkInterface::send(NodeId dst,
                            const std::vector<std::uint32_t>& payload) {
  if (dst == self_)
    throw std::invalid_argument(
        "self-addressed packets are not routable (own-port request)");
  if (!topology_->contains(dst))
    throw std::invalid_argument("dst outside network");

  if (transport_) {
    // The ledger tracks the application packet once, at submission; frames
    // (first transmissions, retransmissions, ACKs) are protocol overhead.
    // `flits` uses the unprotected wire size so goodput numbers stay
    // comparable with reliability on and off.
    PacketRecord record;
    record.src = self_;
    record.dst = dst;
    record.createdCycle = cycle_;
    record.flits = static_cast<int>(payload.size()) + 2;
    ledger_->onQueued(record);
    transport_->submit(dst, payload);
    pumpTransport();
    markDirty();
    return;
  }

  // Wire format: header + source-index flit + payload (last flit = eop).
  std::vector<std::uint32_t> words;
  words.reserve(payload.size() + 1);
  words.push_back(static_cast<std::uint32_t>(topology_->indexOf(self_)));
  words.insert(words.end(), payload.begin(), payload.end());
  if (options_.hlpParity) {
    for (std::uint32_t& word : words) word = parityProtect(word);
  }

  OutPacket packet;
  packet.dst = dst;
  packet.flits =
      router::makePacket(topology_->rib(self_, dst), words, params_);

  PacketRecord record;
  record.src = self_;
  record.dst = dst;
  record.createdCycle = cycle_;
  record.flits = static_cast<int>(packet.flits.size());
  ledger_->onQueued(record);

  if (tracer_)
    tracer_->onPacketQueued(self_, dst, telemetry::TraceEventKind::PacketQueued,
                            static_cast<int>(packet.flits.size()));

  sendQueueFlits_ += packet.flits.size();
  sendQueue_.push_back(std::move(packet));
  // A queue push changes what evaluate() drives; wake the event-driven
  // kernel even when the push happens between cycles (testbench sends).
  markDirty();
}

void NetworkInterface::evaluate() {
  // Send side: present the next flit whenever one is pending (and, under
  // credit flow control, a buffer slot is guaranteed downstream).
  const bool havePending = !sendQueue_.empty();
  const bool canSend = havePending && (!creditMode() || credits_ > 0);
  if (canSend) {
    const OutPacket& packet = sendQueue_.front();
    const Flit& flit = packet.flits[packet.next];
    toRouter_->flit.data.set(flit.data);
    toRouter_->flit.bop.set(flit.bop);
    toRouter_->flit.eop.set(flit.eop);
    toRouter_->val.set(true);
  } else {
    toRouter_->flit.data.set(0);
    toRouter_->flit.bop.set(false);
    toRouter_->flit.eop.set(false);
    toRouter_->val.set(false);
  }

  // Receive side: always ready.  In handshake mode this acknowledges the
  // incoming flit; in credit mode the same pulse returns the credit.
  fromRouter_->ack.set(fromRouter_->val.get());
}

void NetworkInterface::clockEdge() {
  // --- send side ---------------------------------------------------------
  const bool presented = toRouter_->val.get();
  const bool sent = presented && (creditMode() || toRouter_->ack.get());
  if (sent) {
    OutPacket& packet = sendQueue_.front();
    const Flit& flit = packet.flits[packet.next];
    if (flit.bop && packet.tracked)
      ledger_->onHeaderInjected(self_, packet.dst, cycle_);
    ++packet.next;
    --sendQueueFlits_;
    if (packet.next == packet.flits.size()) {
      ++packetsSent_;
      // The frame is fully on the wire: arm its retransmission timer.
      if (transport_ && packet.frameId != 0)
        transport_->onFrameSent(packet.frameId, cycle_);
      sendQueue_.pop_front();
    }
  }
  if (creditMode()) {
    credits_ += (toRouter_->ack.get() ? 1 : 0) - (sent ? 1 : 0);
  }

  if (metricsAttached_) {
    if (metrics_.flitsInjected && sent) metrics_.flitsInjected->inc();
    if (metrics_.backpressureCycles && !sendQueue_.empty() && !sent)
      metrics_.backpressureCycles->inc();
    if (metrics_.sendQueueFlits)
      metrics_.sendQueueFlits->observe(static_cast<double>(sendQueueFlits_));
  }

  // --- receive side ------------------------------------------------------
  const bool gotFlit = fromRouter_->val.get();
  if (metricsAttached_ && metrics_.flitsEjected && gotFlit)
    metrics_.flitsEjected->inc();
  if (gotFlit) {
    Flit flit;
    flit.data = fromRouter_->flit.data.get();
    flit.bop = fromRouter_->flit.bop.get();
    flit.eop = fromRouter_->flit.eop.get();
    if (flit.bop) rxFlits_.clear();
    rxFlits_.push_back(flit);
    if (flit.eop) {
      if (rxFlits_.size() < 2 || !rxFlits_.front().bop) {
        misdelivery_ = true;
      } else {
        // Residual RIB must be zero: routing consumed the whole offset.
        const router::Rib residual =
            router::decodeRib(rxFlits_.front().data, params_.m);
        if (residual != router::Rib{0, 0}) misdelivery_ = true;
        bool parityBad = false;
        if (options_.hlpParity) {
          for (std::size_t i = 1; i < rxFlits_.size(); ++i) {
            if (!parityOk(rxFlits_[i].data)) {
              ++parityErrors_;
              parityBad = true;
            }
          }
        }
        const std::uint32_t mask = router::dataMask(payloadBits());
        if (transport_) {
          // Reliability path: hand the checksummed frame to the transport,
          // which validates it, dedups, reorders and ACKs.  Deliveries are
          // collected in the pump below.  Parity-flagged frames never reach
          // the transport: parity catches any single-bit flip per flit
          // (strictly stronger than the frame checksum, whose additive sum
          // can cancel across two corrupted flits), and dropping here turns
          // detection into recovery — the sender retransmits whatever is
          // never acknowledged.
          if (!parityBad) {
            std::vector<std::uint32_t> words;
            words.reserve(rxFlits_.size() - 1);
            for (std::size_t i = 1; i < rxFlits_.size(); ++i)
              words.push_back(rxFlits_[i].data & mask);
            transport_->onWireWords(words, cycle_);
          }
        } else {
          const auto srcIndex = static_cast<int>(rxFlits_[1].data & mask);
          // Under fault injection the decoded source index can be garbage;
          // count that as unattributed rather than tripping the bounds
          // check.
          if (srcIndex < 0 || srcIndex >= topology_->nodes()) {
            ++unattributed_;
          } else {
            const NodeId src = topology_->nodeAt(srcIndex);
            if (!ledger_->tryDeliver(src, self_, cycle_)) ++unattributed_;
          }
          ++packetsReceived_;
          std::vector<std::uint32_t> payload;
          for (std::size_t i = 2; i < rxFlits_.size(); ++i)
            payload.push_back(rxFlits_[i].data & mask);
          received_.push_back(std::move(payload));
        }
      }
      rxFlits_.clear();
    }
  }

  if (transport_) {
    transport_->onCycle(cycle_);
    pumpTransport();
    if (metricsAttached_) {
      const ReliabilityStats& s = transport_->stats();
      if (metrics_.retransmits)
        metrics_.retransmits->inc(s.retransmissions -
                                  lastMetricStats_.retransmissions);
      if (metrics_.timeouts)
        metrics_.timeouts->inc(s.timeouts - lastMetricStats_.timeouts);
      if (metrics_.duplicatesDropped)
        metrics_.duplicatesDropped->inc(s.duplicatesDropped -
                                        lastMetricStats_.duplicatesDropped);
      lastMetricStats_ = s;
    }
  }

  ++cycle_;
}

void NetworkInterface::enqueueFrame(ReliableTransport::WireFrame&& frame) {
  std::vector<std::uint32_t> words;
  words.reserve(frame.words.size() + 1);
  words.push_back(static_cast<std::uint32_t>(topology_->indexOf(self_)));
  words.insert(words.end(), frame.words.begin(), frame.words.end());
  if (options_.hlpParity) {
    for (std::uint32_t& word : words) word = parityProtect(word);
  }
  OutPacket packet;
  packet.dst = frame.dst;
  packet.frameId = frame.frameId;
  packet.tracked = frame.firstTransmission;
  packet.flits =
      router::makePacket(topology_->rib(self_, frame.dst), words, params_);
  if (tracer_) {
    using telemetry::TraceEventKind;
    TraceEventKind kind = TraceEventKind::PacketQueued;
    if (frame.type == FrameType::Ack)
      kind = TraceEventKind::AckQueued;
    else if (frame.type == FrameType::Nack)
      kind = TraceEventKind::NackQueued;
    else if (!frame.firstTransmission)
      kind = TraceEventKind::RetransmitQueued;
    tracer_->onPacketQueued(self_, frame.dst, kind,
                            static_cast<int>(packet.flits.size()));
  }
  sendQueueFlits_ += packet.flits.size();
  sendQueue_.push_back(std::move(packet));
  markDirty();
}

void NetworkInterface::pumpTransport() {
  for (auto& frame : transport_->takeFrames())
    enqueueFrame(std::move(frame));
  for (auto& delivery : transport_->takeDeliveries()) {
    // Attribution is checksum-verified, so a failed ledger close would mean
    // a protocol bug rather than wire noise; count it like the unprotected
    // path does.
    if (!ledger_->tryDeliver(delivery.src, self_, cycle_)) ++unattributed_;
    ++packetsReceived_;
    received_.push_back(std::move(delivery.payload));
  }
}

bool NetworkInterface::describe(sim::Lowering& lw) {
  lw.thunkDeclared(*this, {&fromRouter_->val},
                   {&toRouter_->flit.data, &toRouter_->flit.bop,
                    &toRouter_->flit.eop, &toRouter_->val,
                    &fromRouter_->ack});
  lw.edgeCall(*this);
  return true;
}

}  // namespace rasoc::noc
