#include "noc/observe.hpp"

#include <string>

namespace rasoc::noc {

namespace {

std::string coord(NodeId n) {
  return std::to_string(n.x) + "," + std::to_string(n.y);
}

double safeRate(std::uint64_t count, double denominator) {
  return denominator > 0.0 ? static_cast<double>(count) / denominator : 0.0;
}

}  // namespace

std::string routerMetricPrefix(NodeId n) { return "r" + coord(n); }

std::string niMetricPrefix(NodeId n) { return "ni" + coord(n); }

telemetry::MeshHeatmap throughputHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  telemetry::MeshHeatmap map(shape.width, shape.height, "flits_per_cycle");
  for (int i = 0; i < shape.nodes(); ++i) {
    const NodeId n = shape.nodeAt(i);
    map.set(n.x, n.y,
            safeRate(registry.counterValue(routerMetricPrefix(n) +
                                           ".flits_routed"),
                     static_cast<double>(cycles)));
  }
  return map;
}

telemetry::MeshHeatmap congestionHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  telemetry::MeshHeatmap map(shape.width, shape.height, "congestion");
  for (int i = 0; i < shape.nodes(); ++i) {
    const NodeId n = shape.nodeAt(i);
    const std::string prefix = routerMetricPrefix(n) + ".";
    std::uint64_t lost = 0;
    int channels = 0;
    for (router::Port p : router::kAllPorts) {
      if (((portMaskFor(shape, n) >> router::index(p)) & 1u) == 0) continue;
      const std::string port(router::name(p));
      lost += registry.counterValue(prefix + port + "in.full_cycles");
      lost += registry.counterValue(prefix + port + "in.stall_cycles");
      lost += registry.counterValue(prefix + port + "out.conflict_cycles");
      ++channels;
    }
    map.set(n.x, n.y,
            safeRate(lost, static_cast<double>(cycles) * channels));
  }
  return map;
}

telemetry::MeshHeatmap backpressureHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  telemetry::MeshHeatmap map(shape.width, shape.height, "ni_backpressure");
  for (int i = 0; i < shape.nodes(); ++i) {
    const NodeId n = shape.nodeAt(i);
    map.set(n.x, n.y,
            safeRate(registry.counterValue(niMetricPrefix(n) +
                                           ".backpressure_cycles"),
                     static_cast<double>(cycles)));
  }
  return map;
}

telemetry::RunReport buildRunReport(std::string name, const Mesh& mesh,
                                    const Watchdog* watchdog) {
  telemetry::RunReport report(std::move(name));
  const MeshConfig& config = mesh.config();
  const std::uint64_t cycles = mesh.simulator().cycle();

  report.set("run", "mesh", std::to_string(config.shape.width) + "x" +
                                std::to_string(config.shape.height));
  report.set("run", "n", config.params.n);
  report.set("run", "m", config.params.m);
  report.set("run", "p", config.params.p);
  report.set("run", "fifo", std::string(router::name(config.params.fifoImpl)));
  report.set("run", "flow_control",
             config.params.flowControl == router::FlowControl::Handshake
                 ? "handshake"
                 : "credit");
  report.set("run", "routing", std::string(router::name(config.params.routing)));
  report.set("run", "cycles", cycles);
  report.set("run", "links", static_cast<std::uint64_t>(mesh.linkCount()));

  report.set("health", "healthy", mesh.healthy());
  report.set("health", "flits_corrupted", mesh.flitsCorrupted());
  report.set("health", "parity_errors", mesh.parityErrorsDetected());
  report.set("health", "unattributed_packets", mesh.unattributedPackets());

  const DeliveryLedger& ledger = mesh.ledger();
  report.set("ledger", "queued", ledger.queued());
  report.set("ledger", "delivered", ledger.delivered());
  report.set("ledger", "in_flight", ledger.inFlight());
  report.set("ledger", "flits_delivered", ledger.flitsDelivered());
  const LatencyStats& packet = ledger.packetLatency();
  report.set("ledger", "packet_latency_samples",
             static_cast<std::uint64_t>(packet.count()));
  report.set("ledger", "packet_latency_mean", packet.mean());
  report.set("ledger", "packet_latency_min", packet.min());
  report.set("ledger", "packet_latency_max", packet.max());
  if (packet.count() > 0) {
    report.set("ledger", "packet_latency_p50", packet.percentile(0.5));
    report.set("ledger", "packet_latency_p99", packet.percentile(0.99));
  }
  const LatencyStats& network = ledger.networkLatency();
  report.set("ledger", "network_latency_mean", network.mean());
  if (network.count() > 0)
    report.set("ledger", "network_latency_p99", network.percentile(0.99));

  report.set("links", "mean_utilization", mesh.meanLinkUtilization());
  report.set("links", "max_utilization", mesh.maxLinkUtilization());

  if (watchdog) {
    const WatchdogSnapshot& snapshot = watchdog->snapshot();
    report.set("watchdog", "stalled", snapshot.stalled);
    report.set("watchdog", "longest_stall", snapshot.longestStall);
    report.set("watchdog", "last_delivery_cycle",
               snapshot.lastDeliveryCycle);
    report.set("watchdog", "stall_cycle", snapshot.stallCycle);
    report.set("watchdog", "in_flight_at_stall", snapshot.inFlightAtStall);
  }

  if (mesh.metrics()) report.attachRegistry(*mesh.metrics());
  return report;
}

}  // namespace rasoc::noc
