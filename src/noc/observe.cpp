#include "noc/observe.hpp"

#include <string>

namespace rasoc::noc {

namespace {

std::string coord(NodeId n) {
  return std::to_string(n.x) + "," + std::to_string(n.y);
}

double safeRate(std::uint64_t count, double denominator) {
  return denominator > 0.0 ? static_cast<double>(count) / denominator : 0.0;
}

}  // namespace

std::string routerMetricPrefix(NodeId n) { return "r" + coord(n); }

std::string niMetricPrefix(NodeId n) { return "ni" + coord(n); }

telemetry::MeshHeatmap throughputHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles) {
  const Extent extent = topology.extent();
  telemetry::MeshHeatmap map(extent.width, extent.height, "flits_per_cycle");
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId n = topology.nodeAt(i);
    map.set(n.x, n.y,
            safeRate(registry.counterValue(routerMetricPrefix(n) +
                                           ".flits_routed"),
                     static_cast<double>(cycles)));
  }
  return map;
}

telemetry::MeshHeatmap throughputHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  return throughputHeatmap(registry, MeshTopology(shape), cycles);
}

telemetry::MeshHeatmap congestionHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles) {
  const Extent extent = topology.extent();
  telemetry::MeshHeatmap map(extent.width, extent.height, "congestion");
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId n = topology.nodeAt(i);
    const std::string prefix = routerMetricPrefix(n) + ".";
    const unsigned mask = topology.portMask(n);
    std::uint64_t lost = 0;
    int channels = 0;
    for (router::Port p : router::kAllPorts) {
      if (((mask >> router::index(p)) & 1u) == 0) continue;
      const std::string port(router::name(p));
      lost += registry.counterValue(prefix + port + "in.full_cycles");
      lost += registry.counterValue(prefix + port + "in.stall_cycles");
      lost += registry.counterValue(prefix + port + "out.conflict_cycles");
      ++channels;
    }
    map.set(n.x, n.y,
            safeRate(lost, static_cast<double>(cycles) * channels));
  }
  return map;
}

telemetry::MeshHeatmap congestionHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  return congestionHeatmap(registry, MeshTopology(shape), cycles);
}

telemetry::MeshHeatmap backpressureHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles) {
  const Extent extent = topology.extent();
  telemetry::MeshHeatmap map(extent.width, extent.height, "ni_backpressure");
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId n = topology.nodeAt(i);
    map.set(n.x, n.y,
            safeRate(registry.counterValue(niMetricPrefix(n) +
                                           ".backpressure_cycles"),
                     static_cast<double>(cycles)));
  }
  return map;
}

telemetry::MeshHeatmap backpressureHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  return backpressureHeatmap(registry, MeshTopology(shape), cycles);
}

telemetry::RunReport buildRunReport(std::string name, const Network& network,
                                    const Watchdog* watchdog) {
  telemetry::RunReport report(std::move(name));
  const NetworkConfig& config = network.config();
  const Extent extent = network.topology().extent();
  const std::uint64_t cycles = network.simulator().cycle();

  report.set("run", "mesh", std::to_string(extent.width) + "x" +
                                std::to_string(extent.height));
  report.set("run", "topology", network.topology().describe());
  report.set("run", "n", config.params.n);
  report.set("run", "m", config.params.m);
  report.set("run", "p", config.params.p);
  report.set("run", "fifo", std::string(router::name(config.params.fifoImpl)));
  report.set("run", "flow_control",
             config.params.flowControl == router::FlowControl::Handshake
                 ? "handshake"
                 : "credit");
  report.set("run", "routing", std::string(router::name(config.params.routing)));
  report.set("run", "cycles", cycles);
  report.set("run", "links", static_cast<std::uint64_t>(network.linkCount()));

  report.set("health", "healthy", network.healthy());
  report.set("health", "flits_corrupted", network.flitsCorrupted());
  report.set("health", "parity_errors", network.parityErrorsDetected());
  report.set("health", "unattributed_packets", network.unattributedPackets());

  const DeliveryLedger& ledger = network.ledger();
  report.set("ledger", "queued", ledger.queued());
  report.set("ledger", "delivered", ledger.delivered());
  report.set("ledger", "in_flight", ledger.inFlight());
  report.set("ledger", "flits_delivered", ledger.flitsDelivered());
  const LatencyStats& packet = ledger.packetLatency();
  report.set("ledger", "packet_latency_samples",
             static_cast<std::uint64_t>(packet.count()));
  report.set("ledger", "packet_latency_mean", packet.mean());
  report.set("ledger", "packet_latency_min", packet.min());
  report.set("ledger", "packet_latency_max", packet.max());
  if (packet.count() > 0) {
    report.set("ledger", "packet_latency_p50", packet.percentile(0.5));
    report.set("ledger", "packet_latency_p99", packet.percentile(0.99));
  }
  const LatencyStats& networkLatency = ledger.networkLatency();
  report.set("ledger", "network_latency_mean", networkLatency.mean());
  if (networkLatency.count() > 0)
    report.set("ledger", "network_latency_p99",
               networkLatency.percentile(0.99));

  report.set("links", "mean_utilization", network.meanLinkUtilization());
  report.set("links", "max_utilization", network.maxLinkUtilization());

  if (watchdog) {
    const WatchdogSnapshot& snapshot = watchdog->snapshot();
    report.set("watchdog", "stalled", snapshot.stalled);
    report.set("watchdog", "longest_stall", snapshot.longestStall);
    report.set("watchdog", "last_delivery_cycle",
               snapshot.lastDeliveryCycle);
    report.set("watchdog", "stall_cycle", snapshot.stallCycle);
    report.set("watchdog", "in_flight_at_stall", snapshot.inFlightAtStall);
  }

  if (network.metrics()) report.attachRegistry(*network.metrics());
  return report;
}

}  // namespace rasoc::noc
