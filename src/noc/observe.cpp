#include "noc/observe.hpp"

#include <string>

namespace rasoc::noc {

namespace {

std::string coord(NodeId n) {
  return std::to_string(n.x) + "," + std::to_string(n.y);
}

double safeRate(std::uint64_t count, double denominator) {
  return denominator > 0.0 ? static_cast<double>(count) / denominator : 0.0;
}

}  // namespace

std::string routerMetricPrefix(NodeId n) { return "r" + coord(n); }

std::string niMetricPrefix(NodeId n) { return "ni" + coord(n); }

std::string linkMetricPrefix(const LinkId& l) {
  return "link" + coord(l.from) + std::string(router::name(l.port));
}

telemetry::MeshHeatmap throughputHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles) {
  const Extent extent = topology.extent();
  telemetry::MeshHeatmap map(extent.width, extent.height, "flits_per_cycle");
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId n = topology.nodeAt(i);
    map.set(n.x, n.y,
            safeRate(registry.counterValue(routerMetricPrefix(n) +
                                           ".flits_routed"),
                     static_cast<double>(cycles)));
  }
  return map;
}

telemetry::MeshHeatmap throughputHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  return throughputHeatmap(registry, MeshTopology(shape), cycles);
}

telemetry::MeshHeatmap congestionHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles) {
  const Extent extent = topology.extent();
  telemetry::MeshHeatmap map(extent.width, extent.height, "congestion");
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId n = topology.nodeAt(i);
    const std::string prefix = routerMetricPrefix(n) + ".";
    const unsigned mask = topology.portMask(n);
    std::uint64_t lost = 0;
    int channels = 0;
    for (router::Port p : router::kAllPorts) {
      if (((mask >> router::index(p)) & 1u) == 0) continue;
      const std::string port(router::name(p));
      lost += registry.counterValue(prefix + port + "in.full_cycles");
      lost += registry.counterValue(prefix + port + "in.stall_cycles");
      lost += registry.counterValue(prefix + port + "out.conflict_cycles");
      ++channels;
    }
    map.set(n.x, n.y,
            safeRate(lost, static_cast<double>(cycles) * channels));
  }
  return map;
}

telemetry::MeshHeatmap congestionHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  return congestionHeatmap(registry, MeshTopology(shape), cycles);
}

telemetry::MeshHeatmap backpressureHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles) {
  const Extent extent = topology.extent();
  telemetry::MeshHeatmap map(extent.width, extent.height, "ni_backpressure");
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId n = topology.nodeAt(i);
    map.set(n.x, n.y,
            safeRate(registry.counterValue(niMetricPrefix(n) +
                                           ".backpressure_cycles"),
                     static_cast<double>(cycles)));
  }
  return map;
}

telemetry::MeshHeatmap backpressureHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles) {
  return backpressureHeatmap(registry, MeshTopology(shape), cycles);
}

telemetry::MeshHeatmap faultHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles) {
  const Extent extent = topology.extent();
  telemetry::MeshHeatmap map(extent.width, extent.height, "link_faults");
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId n = topology.nodeAt(i);
    std::uint64_t events = 0;
    for (router::Port p : router::kAllPorts) {
      if (p == router::Port::Local) continue;
      if (!topology.neighbor(n, p)) continue;
      const std::string prefix = linkMetricPrefix({n, p}) + ".";
      events += registry.counterValue(prefix + "flits_corrupted");
      events += registry.counterValue(prefix + "flits_dropped");
      events += registry.counterValue(prefix + "stall_cycles");
    }
    map.set(n.x, n.y, safeRate(events, static_cast<double>(cycles)));
  }
  return map;
}

telemetry::RunReport buildRunReport(std::string name, const Network& network,
                                    const Watchdog* watchdog) {
  telemetry::RunReport report(std::move(name));
  const NetworkConfig& config = network.config();
  const Extent extent = network.topology().extent();
  const std::uint64_t cycles = network.simulator().cycle();

  report.set("run", "mesh", std::to_string(extent.width) + "x" +
                                std::to_string(extent.height));
  report.set("run", "topology", network.topology().describe());
  report.set("run", "n", config.params.n);
  report.set("run", "m", config.params.m);
  report.set("run", "p", config.params.p);
  report.set("run", "fifo", std::string(router::name(config.params.fifoImpl)));
  report.set("run", "flow_control",
             config.params.flowControl == router::FlowControl::Handshake
                 ? "handshake"
                 : "credit");
  report.set("run", "routing", std::string(router::name(config.params.routing)));
  report.set("run", "cycles", cycles);
  report.set("run", "links", static_cast<std::uint64_t>(network.linkCount()));

  report.set("health", "healthy", network.healthy());
  report.set("health", "flits_corrupted", network.flitsCorrupted());
  report.set("health", "flits_dropped", network.flitsDropped());
  report.set("health", "fault_stall_cycles", network.faultStallCycles());
  report.set("health", "parity_errors", network.parityErrorsDetected());
  report.set("health", "unattributed_packets", network.unattributedPackets());

  if (config.reliability.enabled) {
    const ReliabilityStats rs = network.reliabilityStats();
    report.set("reliability", "data_frames", rs.dataFramesSent);
    report.set("reliability", "retransmissions", rs.retransmissions);
    report.set("reliability", "timeouts", rs.timeouts);
    report.set("reliability", "acks_sent", rs.acksSent);
    report.set("reliability", "nacks_sent", rs.nacksSent);
    report.set("reliability", "duplicates_dropped", rs.duplicatesDropped);
    report.set("reliability", "out_of_order_buffered", rs.outOfOrderBuffered);
    report.set("reliability", "malformed_frames", rs.malformedFrames);
    report.set("reliability", "payloads_delivered", rs.payloadsDelivered);
    report.set("reliability", "abandoned", rs.abandoned);
  }

  const DeliveryLedger& ledger = network.ledger();
  report.set("ledger", "queued", ledger.queued());
  report.set("ledger", "delivered", ledger.delivered());
  report.set("ledger", "in_flight", ledger.inFlight());
  report.set("ledger", "flits_delivered", ledger.flitsDelivered());
  const LatencyStats& packet = ledger.packetLatency();
  report.set("ledger", "packet_latency_samples",
             static_cast<std::uint64_t>(packet.count()));
  report.set("ledger", "packet_latency_mean", packet.mean());
  report.set("ledger", "packet_latency_min", packet.min());
  report.set("ledger", "packet_latency_max", packet.max());
  if (packet.count() > 0) {
    report.set("ledger", "packet_latency_p50", packet.percentile(0.5));
    report.set("ledger", "packet_latency_p99", packet.percentile(0.99));
  }
  const LatencyStats& networkLatency = ledger.networkLatency();
  report.set("ledger", "network_latency_mean", networkLatency.mean());
  if (networkLatency.count() > 0)
    report.set("ledger", "network_latency_p99",
               networkLatency.percentile(0.99));

  if (config.params.qosClasses) {
    // Per-class delivery and latency breakdown (the isolation story's
    // measured form: compare control's p99 against bulk's under load).
    for (int c = 0; c < router::kNumTrafficClasses; ++c) {
      const auto cls = static_cast<router::TrafficClass>(c);
      const std::string key(router::name(cls));
      report.set("qos", key + "_queued", ledger.queued(cls));
      report.set("qos", key + "_delivered", ledger.delivered(cls));
      const LatencyStats& lat = ledger.packetLatency(cls);
      if (lat.count() > 0) {
        report.set("qos", key + "_latency_mean", lat.mean());
        report.set("qos", key + "_latency_p50", lat.percentile(0.5));
        report.set("qos", key + "_latency_p99", lat.percentile(0.99));
        report.set("qos", key + "_latency_max", lat.max());
      }
      const LatencyStats& net = ledger.networkLatency(cls);
      if (net.count() > 0)
        report.set("qos", key + "_network_latency_p99",
                   net.percentile(0.99));
    }
  }

  report.set("links", "mean_utilization", network.meanLinkUtilization());
  report.set("links", "max_utilization", network.maxLinkUtilization());

  if (const FlowTracer* tracer = network.tracer()) tracer->writeReport(report);

  if (watchdog) {
    const WatchdogSnapshot& snapshot = watchdog->snapshot();
    report.set("watchdog", "stalled", snapshot.stalled);
    report.set("watchdog", "longest_stall", snapshot.longestStall);
    report.set("watchdog", "last_delivery_cycle",
               snapshot.lastDeliveryCycle);
    report.set("watchdog", "stall_cycle", snapshot.stallCycle);
    report.set("watchdog", "in_flight_at_stall", snapshot.inFlightAtStall);
    report.set("watchdog", "blocked_links",
               static_cast<std::uint64_t>(snapshot.blockedLinks.size()));
    std::string joined;
    for (std::size_t i = 0;
         i < snapshot.blockedLinks.size() && i < 8; ++i) {
      if (!joined.empty()) joined += ",";
      joined += snapshot.blockedLinks[i];
    }
    if (snapshot.blockedLinks.size() > 8) joined += ",...";
    report.set("watchdog", "blocked_link_names", joined);
    report.set("watchdog", "recent_trace_events",
               static_cast<std::uint64_t>(snapshot.recentEvents.size()));
    std::string recent;
    for (std::size_t i = 0; i < snapshot.recentEvents.size() && i < 12; ++i) {
      if (!recent.empty()) recent += " | ";
      recent += snapshot.recentEvents[i];
    }
    if (snapshot.recentEvents.size() > 12) recent += " | ...";
    if (!recent.empty())
      report.set("watchdog", "recent_trace_lines", recent);
  }

  if (network.metrics()) report.attachRegistry(*network.metrics());
  return report;
}

}  // namespace rasoc::noc
