/// \file
/// End-to-end NI reliability protocol: sequence numbers, checksums,
/// ACK/NACK control frames, timeout-driven retransmission with bounded
/// exponential backoff, and an exactly-once reorder buffer.
///
/// The protocol lives entirely in the network interfaces — the cycle-exact
/// router blocks are untouched — and is opt-in via
/// NetworkConfig::reliability, so default runs stay bit-identical to the
/// unprotected network.  DESIGN.md §9 documents the frame format, the
/// sender/receiver state machines and the exactly-once argument.
///
/// Wire format (payload words of a packet, after the RIB header flit):
///
///   word 0  source node index (as in the unprotected format)
///   word 1  control word: [type:2 | 0… | cls:2 | seq:seqBits]
///   word 2… application payload (DATA frames only)
///   last    checksum over all preceding payload words
///
/// The 2-bit `cls` field (DATA frames; zero when it would overlap the type
/// bits) carries the submitter's TrafficClass in-band: a retransmission's
/// header flit is deliberately re-tagged with the reliability class for
/// routing isolation, so the receiver recovers the original class from the
/// control word, not the header.  Zero (BestEffort) on non-QoS networks,
/// which keeps the format bit-identical to the pre-QoS protocol.
///
/// DATA frames carry one application packet each; ACK frames acknowledge
/// every sequence number up to and including `seq` (cumulative); NACK
/// frames name the receiver's next expected sequence number and double as
/// a cumulative ACK for everything before it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "noc/topology.hpp"
#include "router/params.hpp"

namespace rasoc::noc {

/// Tuning knobs for the NI reliability protocol.
struct ReliabilityConfig {
  /// Master switch.  Off (the default) keeps the NI wire format and cycle
  /// behavior bit-identical to the unprotected network.
  bool enabled = false;

  /// Sequence number width.  The space must be at least twice the window
  /// (selective-repeat correctness; validate() enforces it).
  int seqBits = 8;

  /// Maximum unacknowledged DATA frames per destination; further sends
  /// queue in a per-flow backlog.
  int window = 8;

  /// Initial retransmission timeout in cycles, measured from the moment a
  /// frame's last flit leaves the NI.
  std::uint64_t rtoInitial = 64;

  /// Backoff ceiling: each timeout doubles a frame's RTO up to this bound.
  std::uint64_t rtoMax = 2048;

  /// Minimum cycles between NACKs for the same missing sequence number
  /// (suppresses NACK storms while a retransmission is in flight).
  std::uint64_t nackMinInterval = 32;

  /// Timeouts after which a frame is abandoned (0 = retry forever).
  /// Abandoning sacrifices the delivery guarantee; it exists so bounded
  /// campaigns can report losses instead of hanging.
  int maxRetries = 0;

  /// Traffic class protocol overhead rides on QoS networks
  /// (RouterParams::qosClasses): retransmissions and ACK/NACK control
  /// frames are tagged with it, so recovery traffic stays on an isolated
  /// channel instead of queueing behind the bulk flood that delayed the
  /// original frame.  First transmissions keep the submitter's class.
  /// Ignored on non-QoS networks.
  router::TrafficClass trafficClass = router::TrafficClass::Control;

  /// Throws std::invalid_argument for inconsistent knobs or a control word
  /// that does not fit `payloadBits` (needs seqBits + 2 bits).
  void validate(int payloadBits) const;
};

/// Lifetime counters kept by a ReliableTransport.
struct ReliabilityStats {
  std::uint64_t dataFramesSent = 0;  ///< first transmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acksSent = 0;
  std::uint64_t nacksSent = 0;
  std::uint64_t acksReceived = 0;
  std::uint64_t nacksReceived = 0;
  std::uint64_t duplicatesDropped = 0;   ///< already-seen DATA frames
  std::uint64_t outOfOrderBuffered = 0;  ///< held for reordering
  std::uint64_t malformedFrames = 0;     ///< checksum/parse failures
  std::uint64_t payloadsDelivered = 0;   ///< in-order app deliveries
  std::uint64_t abandoned = 0;           ///< gave up after maxRetries

  ReliabilityStats& operator+=(const ReliabilityStats& o);
};

/// Masks a sequence number to `seqBits`.
std::uint32_t seqMask(int seqBits);

/// (to - from) mod 2^seqBits: how far `to` is ahead of `from`.
std::uint32_t seqDistance(std::uint32_t from, std::uint32_t to, int seqBits);

/// Serial-number order: a comes strictly before b (within half the space).
bool seqLess(std::uint32_t a, std::uint32_t b, int seqBits);

/// Serial-number order: a == b or a comes before b.
bool seqLessEq(std::uint32_t a, std::uint32_t b, int seqBits);

/// Frame types carried in the control word's top two bits.
enum class FrameType : std::uint32_t { Data = 0, Ack = 1, Nack = 2 };

/// Per-NI protocol engine.  The owning NetworkInterface feeds it
/// application sends and received wire words, drains the frames it wants
/// transmitted, and delivers the in-order payloads it releases.  The
/// engine itself is pure bookkeeping — no wires, no simulator coupling —
/// which keeps it unit-testable without a network.
class ReliableTransport {
 public:
  /// A frame the NI should put on the wire.  `words` excludes the source
  /// index word (the NI prepends it, as for unprotected packets).
  /// `frameId` is nonzero for DATA frames: the NI reports it back through
  /// onFrameSent() when the last flit leaves, which arms the
  /// retransmission timer.  `firstTransmission` marks frames the delivery
  /// ledger should track (retransmissions and control frames are protocol
  /// overhead, invisible to the ledger).  `type` is the frame's protocol
  /// role; combined with `firstTransmission` it tells the flow tracer
  /// whether this wire packet is a first DATA send, a retransmission, or
  /// ACK/NACK overhead.
  struct WireFrame {
    NodeId dst;
    std::vector<std::uint32_t> words;
    std::uint64_t frameId = 0;
    bool firstTransmission = false;
    FrameType type = FrameType::Data;
    /// Traffic class the NI tags the wire packet with (QoS networks): the
    /// submitter's class on first DATA transmissions, the config's
    /// `trafficClass` on retransmissions and ACK/NACK frames.
    router::TrafficClass cls = router::TrafficClass::BestEffort;
  };

  /// An application payload released in order, exactly once.
  struct Delivery {
    NodeId src;
    std::vector<std::uint32_t> payload;
    /// The submitter's class, recovered from the control word's in-band
    /// field (BestEffort on non-QoS networks).
    router::TrafficClass cls = router::TrafficClass::BestEffort;
  };

  ReliableTransport(ReliabilityConfig config,
                    std::shared_ptr<const Topology> topology, NodeId self,
                    int payloadBits);

  void reset();

  /// Sender: accepts an application payload for `dst`.  Transmits
  /// immediately when the flow's window has room, else backlogs.  `cls`
  /// tags the first transmission on QoS networks (retransmissions ride
  /// the config's `trafficClass`).
  void submit(NodeId dst, const std::vector<std::uint32_t>& payload,
              router::TrafficClass cls = router::TrafficClass::BestEffort);

  /// The NI finished streaming the frame with this id; arms its timer.
  void onFrameSent(std::uint64_t frameId, std::uint64_t cycle);

  /// Per-cycle timeout scan; expired frames are re-queued with doubled RTO.
  void onCycle(std::uint64_t cycle);

  /// Receiver: a complete, well-framed packet arrived.  `words` are all
  /// payload words including the leading source index, masked to
  /// payloadBits.  Malformed frames are counted and dropped.  The header
  /// flit's class tag is irrelevant here — the submitter's class travels
  /// in-band in the control word.
  void onWireWords(const std::vector<std::uint32_t>& words,
                   std::uint64_t cycle);

  /// Drains frames queued for the wire since the last call.
  std::vector<WireFrame> takeFrames();

  /// Drains payloads released for delivery since the last call.
  std::vector<Delivery> takeDeliveries();

  /// No unacknowledged frames, no backlog, nothing queued for the wire.
  bool idle() const;

  std::size_t backlogFrames() const;
  std::size_t unackedFrames() const;

  /// Current RTO of the oldest unacknowledged frame for `dst`
  /// (rtoInitial when the flow has none) — exposed for backoff tests.
  std::uint64_t currentRto(NodeId dst) const;

  const ReliabilityStats& stats() const { return stats_; }

 private:
  struct Outstanding {
    std::uint32_t seq = 0;
    std::vector<std::uint32_t> payload;
    router::TrafficClass cls = router::TrafficClass::BestEffort;
    std::uint64_t frameId = 0;   // latest transmission's id
    std::uint64_t deadline = 0;  // 0 = timer unarmed (still streaming out)
    std::uint64_t rto = 0;
    int timeouts = 0;
  };
  struct Backlogged {
    std::vector<std::uint32_t> payload;
    router::TrafficClass cls = router::TrafficClass::BestEffort;
  };
  struct SendFlow {
    std::uint32_t nextSeq = 0;
    std::deque<Outstanding> unacked;
    std::deque<Backlogged> backlog;
  };
  struct Buffered {
    std::vector<std::uint32_t> payload;
    router::TrafficClass cls = router::TrafficClass::BestEffort;
  };
  struct RecvFlow {
    std::uint32_t expected = 0;
    std::map<std::uint32_t, Buffered> buffered;
    bool nackPending = false;      // a NACK for `expected` was sent
    std::uint32_t nackSeq = 0;
    std::uint64_t nackCycle = 0;
  };

  // The in-band class field fits only when it does not overlap the type
  // bits; a too-tight control word degrades to classless (all BestEffort).
  bool classFieldFits() const { return config_.seqBits + 2 <= typeShift_; }

  std::uint32_t checksum(std::uint32_t first,
                         const std::vector<std::uint32_t>& rest) const;
  void transmit(int dstIndex, SendFlow& flow,
                std::vector<std::uint32_t> payload, router::TrafficClass cls);
  void retransmit(int dstIndex, Outstanding& frame);
  void emitControl(int dstIndex, FrameType type, std::uint32_t seq);
  void promote(int dstIndex, SendFlow& flow);
  void handleData(int srcIndex, std::uint32_t seq,
                  std::vector<std::uint32_t> payload, std::uint64_t cycle,
                  router::TrafficClass cls);
  void handleAck(int srcIndex, std::uint32_t seq);
  void handleNack(int srcIndex, std::uint32_t seq);
  void popAcked(SendFlow& flow, std::uint32_t upTo, bool inclusive);

  ReliabilityConfig config_;
  std::shared_ptr<const Topology> topology_;
  NodeId self_;
  int payloadBits_;
  int typeShift_;
  std::uint32_t selfIndex_;

  std::map<int, SendFlow> sendFlows_;  // keyed by destination node index
  std::map<int, RecvFlow> recvFlows_;  // keyed by source node index
  std::map<std::uint64_t, int> frameFlow_;  // frameId -> dst node index
  std::vector<WireFrame> pendingFrames_;
  std::vector<Delivery> pendingDeliveries_;
  ReliabilityStats stats_;
  std::uint64_t nextFrameId_ = 1;
};

}  // namespace rasoc::noc
