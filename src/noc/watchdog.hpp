/// \file
/// Progress watchdog: detects global stalls (deadlock/livelock symptoms).
///
/// XY routing on a mesh is provably deadlock-free, so a healthy RASoC NoC
/// must keep delivering packets whenever any are in flight.  The watchdog
/// observes the delivery ledger each cycle and raises a sticky flag if no
/// packet completes for `timeout` consecutive cycles while at least one is
/// outstanding — the invariant saturation tests assert.
///
/// Beyond the sticky flag it captures a diagnostic snapshot for run
/// reports: the cycle of the last observed delivery, the cycle the stall
/// flag was raised, how many packets were in flight at that moment, and —
/// when a diagnostics callback is supplied — the names of the links
/// blocked at that instant (wire Network::blockedLinkNames in), so a
/// fault-campaign hang names the wedged link instead of just the cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/module.hpp"

#include "noc/stats.hpp"

namespace rasoc::noc {

struct WatchdogSnapshot {
  bool stalled = false;
  std::uint64_t longestStall = 0;
  /// Watchdog-local cycle of the last delivery it observed (0 when none).
  std::uint64_t lastDeliveryCycle = 0;
  /// State captured when the stall flag was first raised; zero until then.
  std::uint64_t stallCycle = 0;
  std::uint64_t inFlightAtStall = 0;
  /// Links offering a flit nobody accepted, at the stall instant (empty
  /// without a diagnostics callback).
  std::vector<std::string> blockedLinks;
  /// With a trace-dump callback: for each blocked link, the last few flit
  /// lifecycle events that touched it, rendered one per line (wire
  /// Network::blockedLinkTraceDump in).  Shows *what* each wedged link was
  /// doing when the network stopped, not just its name.
  std::vector<std::string> recentEvents;
};

class Watchdog : public sim::Module {
 public:
  /// Invoked once, at the cycle the stall flag rises, to capture what is
  /// blocked; e.g. `[&net] { return net.blockedLinkNames(); }`.
  using Diagnostics = std::function<std::vector<std::string>()>;

  /// Invoked once alongside Diagnostics to capture the trace history of the
  /// blocked links; e.g. `[&net] { return net.blockedLinkTraceDump(); }`.
  using TraceDump = std::function<std::vector<std::string>()>;

  Watchdog(std::string name, const DeliveryLedger& ledger,
           std::uint64_t timeout, Diagnostics diagnostics = {},
           TraceDump traceDump = {})
      : Module(std::move(name)),
        ledger_(&ledger),
        timeout_(timeout),
        diagnostics_(std::move(diagnostics)),
        traceDump_(std::move(traceDump)) {}

  bool stallDetected() const { return snapshot_.stalled; }
  std::uint64_t longestStall() const { return snapshot_.longestStall; }
  const WatchdogSnapshot& snapshot() const { return snapshot_; }

 protected:
  void onReset() override {
    lastDelivered_ = 0;
    idleCycles_ = 0;
    cycle_ = 0;
    snapshot_ = {};
  }

  void clockEdge() override {
    ++cycle_;
    const std::uint64_t delivered = ledger_->delivered();
    if (delivered != lastDelivered_ || ledger_->inFlight() == 0) {
      if (delivered != lastDelivered_) snapshot_.lastDeliveryCycle = cycle_;
      lastDelivered_ = delivered;
      idleCycles_ = 0;
      return;
    }
    ++idleCycles_;
    if (idleCycles_ > snapshot_.longestStall)
      snapshot_.longestStall = idleCycles_;
    if (idleCycles_ >= timeout_ && !snapshot_.stalled) {
      snapshot_.stalled = true;
      snapshot_.stallCycle = cycle_;
      snapshot_.inFlightAtStall = ledger_->inFlight();
      if (diagnostics_) snapshot_.blockedLinks = diagnostics_();
      if (traceDump_) snapshot_.recentEvents = traceDump_();
    }
  }

 private:
  const DeliveryLedger* ledger_;
  std::uint64_t timeout_;
  Diagnostics diagnostics_;
  TraceDump traceDump_;
  std::uint64_t lastDelivered_ = 0;
  std::uint64_t idleCycles_ = 0;
  std::uint64_t cycle_ = 0;
  WatchdogSnapshot snapshot_;
};

}  // namespace rasoc::noc
