// Progress watchdog: detects global stalls (deadlock/livelock symptoms).
//
// XY routing on a mesh is provably deadlock-free, so a healthy RASoC NoC
// must keep delivering packets whenever any are in flight.  The watchdog
// observes the delivery ledger each cycle and raises a sticky flag if no
// packet completes for `timeout` consecutive cycles while at least one is
// outstanding - the invariant saturation tests assert.
#pragma once

#include <cstdint>

#include "sim/module.hpp"

#include "noc/stats.hpp"

namespace rasoc::noc {

class Watchdog : public sim::Module {
 public:
  Watchdog(std::string name, const DeliveryLedger& ledger,
           std::uint64_t timeout)
      : Module(std::move(name)), ledger_(&ledger), timeout_(timeout) {}

  bool stallDetected() const { return stalled_; }
  std::uint64_t longestStall() const { return longestStall_; }

 protected:
  void onReset() override {
    lastDelivered_ = 0;
    idleCycles_ = 0;
    longestStall_ = 0;
    stalled_ = false;
  }

  void clockEdge() override {
    const std::uint64_t delivered = ledger_->delivered();
    if (delivered != lastDelivered_ || ledger_->inFlight() == 0) {
      lastDelivered_ = delivered;
      idleCycles_ = 0;
      return;
    }
    ++idleCycles_;
    if (idleCycles_ > longestStall_) longestStall_ = idleCycles_;
    if (idleCycles_ >= timeout_) stalled_ = true;
  }

 private:
  const DeliveryLedger* ledger_;
  std::uint64_t timeout_;
  std::uint64_t lastDelivered_ = 0;
  std::uint64_t idleCycles_ = 0;
  std::uint64_t longestStall_ = 0;
  bool stalled_ = false;
};

}  // namespace rasoc::noc
