#include "noc/flow_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "noc/network.hpp"
#include "router/faulty_link.hpp"
#include "router/input_channel.hpp"
#include "router/output_channel.hpp"

namespace rasoc::noc {

using router::Port;
using router::kAllPorts;
using router::kNumPorts;
using telemetry::TraceEvent;
using telemetry::TraceEventKind;

namespace {

// Perfetto track-id plan.  Process 0 is the settle kernel's counter group;
// routers get one process each (tids 1..5 = input ports, 11..15 = output
// ports in Port order); flows group by source node.
constexpr int kKernelPid = 0;
constexpr int kRouterPidBase = 100;
constexpr int kFlowPidBase = 10000;

bool queuedKind(TraceEventKind kind) {
  return kind == TraceEventKind::PacketQueued ||
         kind == TraceEventKind::RetransmitQueued ||
         kind == TraceEventKind::AckQueued ||
         kind == TraceEventKind::NackQueued;
}

std::string pktName(std::uint64_t id) { return "pkt" + std::to_string(id); }

std::string flowName(std::int32_t src, std::int32_t dst) {
  return std::to_string(src) + "->" + std::to_string(dst);
}

}  // namespace

FlowTracer::FlowTracer(Network& network, TraceConfig config)
    : net_(&network), config_(config), sink_(config.capacity) {
  const Topology& topo = net_->topology();
  nodes_ = topo.nodes();
  const std::size_t slots = static_cast<std::size_t>(nodes_) * kNumPorts;
  inputs_.assign(slots, nullptr);
  outputs_.assign(slots, nullptr);
  upstream_.assign(slots, -1);
  fifo_.assign(slots, {});
  niStream_.assign(static_cast<std::size_t>(nodes_), {});
  prevAccepted_.assign(slots, 0);
  prevSent_.assign(slots, 0);
  popped_.assign(slots, 0);
  poppedValid_.assign(slots, 0);
  transferId_.assign(slots, 0);
  transferValid_.assign(slots, 0);

  for (int n = 0; n < nodes_; ++n) {
    const NodeId node = topo.nodeAt(n);
    const router::Rasoc& r = net_->router(node);
    for (Port p : kAllPorts) {
      if (!r.params().hasPort(p)) continue;
      const std::size_t s = slot(n, router::index(p));
      inputs_[s] = &r.inputChannel(p);
      outputs_[s] = &r.outputChannel(p);
      if (p == Port::Local) continue;
      if (const std::optional<NodeId> nb = topo.neighbor(node, p)) {
        const std::size_t in =
            slot(topo.indexOf(*nb), router::index(router::opposite(p)));
        upstream_[in] = static_cast<int>(s);
      }
    }
  }
  for (const auto& [id, link] : net_->faultyLinks()) {
    FaultyView view;
    view.slot = slot(topo.indexOf(id.from), router::index(id.port));
    view.link = link;
    faulty_.push_back(view);
  }
  resyncCounters();
}

FlowTracer::PacketMeta* FlowTracer::meta(std::uint64_t id) {
  if (id == 0) return nullptr;
  const auto it = metas_.find(id);
  return it == metas_.end() ? nullptr : &it->second;
}

void FlowTracer::emit(TraceEventKind kind, std::uint64_t cycle,
                      std::uint64_t id, const PacketMeta& m, int node,
                      int port, std::int32_t value) {
  TraceEvent ev;
  ev.cycle = cycle;
  ev.packet = id;
  ev.node = node;
  ev.src = m.src;
  ev.dst = m.dst;
  ev.value = value;
  ev.port = static_cast<std::int8_t>(port);
  ev.kind = kind;
  sink_.record(ev);
}

std::uint64_t FlowTracer::onPacketQueued(NodeId src, NodeId dst,
                                         TraceEventKind kind, int flits) {
  const Topology& topo = net_->topology();
  const int s = topo.indexOf(src);
  const int d = topo.indexOf(dst);
  const std::uint64_t id = nextId_++;
  const bool sampled =
      config_.sampleEvery <= 1 ||
      (static_cast<std::uint64_t>(s) * static_cast<std::uint64_t>(nodes_) +
       static_cast<std::uint64_t>(d)) %
              config_.sampleEvery ==
          0;
  Staged staged;
  staged.kind = kind;
  staged.src = s;
  staged.dst = d;
  staged.flits = flits;
  if (sampled) {
    PacketMeta m;
    m.src = s;
    m.dst = d;
    m.flits = flits;
    m.kind = kind;
    metas_.emplace(id, m);
    ++packetsTraced_;
    staged.id = id;
    staged_.push_back(staged);
    return id;
  }
  // Unsampled packets still occupy a shadow stream/FIFO slot (id 0) so the
  // per-flit accounting stays aligned with the hardware queues.
  staged.id = 0;
  staged_.push_back(staged);
  return 0;
}

void FlowTracer::desync(const char* where, int node, int port) const {
  std::ostringstream os;
  os << "flow tracer shadow state desynchronized (" << where << ") at node "
     << node << " port " << port
     << ": enableTracing must run before the first cycle and before any "
        "packet is queued";
  throw std::logic_error(os.str());
}

void FlowTracer::onTick() {
  const std::uint64_t cycle = net_->simulator().cycle();

  // 1. Flush NI enqueues staged since the previous edge into the shadow
  //    per-NI stream queues (order matches the hardware sendQueue_).
  for (const Staged& s : staged_) {
    NiEntry entry;
    entry.id = s.id;
    entry.flits = s.flits;
    niStream_[static_cast<std::size_t>(s.src)].push_back(entry);
    if (PacketMeta* m = meta(s.id)) {
      m->queuedCycle = cycle;
      emit(s.kind, cycle, s.id, *m, s.src, router::index(Port::Local),
           s.flits);
    }
  }
  staged_.clear();

  // 2. Input-buffer reads: the rd && rok strobes were settled pre-edge, so
  //    the head of each shadow FIFO is exactly the flit that left.
  for (int n = 0; n < nodes_; ++n) {
    for (Port p : kAllPorts) {
      const std::size_t s = slot(n, router::index(p));
      poppedValid_[s] = 0;
      const router::InputChannel* ic = inputs_[s];
      if (!ic || !ic->dequeueFired()) continue;
      auto& q = fifo_[s];
      if (q.empty()) desync("buffer read", n, router::index(p));
      const FifoEntry e = q.front();
      q.pop_front();
      popped_[s] = e.id;
      poppedValid_[s] = 1;
      if (PacketMeta* m = meta(e.id)) {
        const std::uint64_t residency = cycle - e.enqCycle;
        if (e.bop) {
          ++m->hops;
          m->hopBlocked += residency - 1;
        }
        emit(TraceEventKind::FifoDequeue, cycle, e.id, *m, n,
             router::index(p), static_cast<std::int32_t>(residency));
      }
    }
  }

  // 3. Output channels: arbitration (grants fire when the registered
  //    connection appears at this edge; every other pre-edge requester
  //    waited) and flit transfers (flitsSent deltas; the source input is
  //    the pre-edge selection).
  for (int n = 0; n < nodes_; ++n) {
    for (Port p : kAllPorts) {
      const std::size_t s = slot(n, router::index(p));
      transferValid_[s] = 0;
      const router::OutputChannel* oc = outputs_[s];
      if (!oc) continue;
      const std::uint64_t sent = oc->flitsSent();
      const bool transferred = sent != prevSent_[s];
      prevSent_[s] = sent;

      const bool preConn = oc->connectedWire();
      const int preSel = oc->selWire();
      const int own = router::index(p);
      const auto& xbar = oc->xbarWires();
      const bool grantFired = !preConn && oc->controller().isConnected();
      const int granted = router::index(oc->controller().selectedInput());
      for (int i = 0; i < kNumPorts; ++i) {
        if (i == own || !xbar[static_cast<std::size_t>(i)].req[
                            static_cast<std::size_t>(own)].get())
          continue;
        if (preConn && preSel == i) continue;  // already being served
        const auto& q = fifo_[slot(n, i)];
        const std::uint64_t id = q.empty() ? 0 : q.front().id;
        if (PacketMeta* m = meta(id)) {
          const bool won = grantFired && granted == i;
          emit(won ? TraceEventKind::ArbGrant : TraceEventKind::ArbConflict,
               cycle, id, *m, n, own, i);
        }
      }

      if (!transferred) continue;
      const std::size_t from = slot(n, preSel);
      if (!poppedValid_[from]) desync("transfer source", n, own);
      const std::uint64_t id = popped_[from];
      if (p == Port::Local) {
        const auto& w = oc->outWires();
        if (PacketMeta* m = meta(id)) {
          if (w.flit.bop.get()) {
            m->headerEjectCycle = cycle;
            emit(TraceEventKind::HeaderEjected, cycle, id, *m, n, own, 0);
          }
          if (w.flit.eop.get()) {
            emit(TraceEventKind::PacketEjected, cycle, id, *m, n, own, 0);
            completePacket(id, *m, cycle);
          }
        }
      } else {
        if (PacketMeta* m = meta(id))
          emit(TraceEventKind::LinkTransfer, cycle, id, *m, n, own, 0);
        transferId_[s] = id;
        transferValid_[s] = 1;
      }
    }
  }

  // 4. Faulty links, attributed via this edge's transfer (corrupt/drop act
  //    on the transferred flit) or the blocked input's head (stalls).
  for (FaultyView& f : faulty_) {
    const int n = static_cast<int>(f.slot / kNumPorts);
    const int p = static_cast<int>(f.slot % kNumPorts);
    const std::uint64_t corrupted = f.link->flitsCorrupted();
    if (corrupted != f.prevCorrupted) {
      f.prevCorrupted = corrupted;
      if (transferValid_[f.slot]) {
        if (PacketMeta* m = meta(transferId_[f.slot]))
          emit(TraceEventKind::LinkCorrupt, cycle, transferId_[f.slot], *m, n,
               p, 0);
      }
    }
    const std::uint64_t dropped = f.link->flitsDropped();
    if (dropped != f.prevDropped) {
      f.prevDropped = dropped;
      if (transferValid_[f.slot]) {
        if (PacketMeta* m = meta(transferId_[f.slot]))
          emit(TraceEventKind::LinkDrop, cycle, transferId_[f.slot], *m, n, p,
               0);
        // The flit was consumed by the link; it never reaches the far side.
        transferValid_[f.slot] = 0;
      }
    }
    const std::uint64_t stalls = f.link->stallCycles();
    if (stalls != f.prevStalls) {
      f.prevStalls = stalls;
      const router::OutputChannel* oc = outputs_[f.slot];
      if (oc && oc->connectedWire()) {
        const auto& q = fifo_[slot(n, oc->selWire())];
        if (!q.empty()) {
          if (PacketMeta* m = meta(q.front().id))
            emit(TraceEventKind::LinkStall, cycle, q.front().id, *m, n, p, 0);
        }
      }
    }
  }

  // 5. Input-buffer writes (flitsAccepted deltas).  Local ports consume
  //    the NI shadow stream; the other ports take this edge's transfer on
  //    the upstream link.
  for (int n = 0; n < nodes_; ++n) {
    for (Port p : kAllPorts) {
      const std::size_t s = slot(n, router::index(p));
      const router::InputChannel* ic = inputs_[s];
      if (!ic) continue;
      const std::uint64_t accepted = ic->flitsAccepted();
      if (accepted == prevAccepted_[s]) continue;
      prevAccepted_[s] = accepted;
      const bool bop = ic->inWires().flit.bop.get();
      std::uint64_t id = 0;
      if (p == Port::Local) {
        auto& stream = niStream_[static_cast<std::size_t>(n)];
        if (stream.empty()) desync("NI stream", n, router::index(p));
        NiEntry& e = stream.front();
        id = e.id;
        const std::int32_t seq = e.next++;
        if (PacketMeta* m = meta(id)) {
          emit(TraceEventKind::FlitInjected, cycle, id, *m, n,
               router::index(p), seq);
          if (bop) {
            m->headerInjectCycle = cycle;
            emit(TraceEventKind::HeaderInjected, cycle, id, *m, n,
                 router::index(p), 0);
          }
        }
        if (e.next == e.flits) stream.pop_front();
      } else {
        const int up = upstream_[s];
        if (up < 0 || !transferValid_[static_cast<std::size_t>(up)])
          desync("link push", n, router::index(p));
        id = transferId_[static_cast<std::size_t>(up)];
        if (PacketMeta* m = meta(id))
          emit(TraceEventKind::FifoEnqueue, cycle, id, *m, n,
               router::index(p), 0);
      }
      FifoEntry e;
      e.id = id;
      e.enqCycle = cycle;
      e.bop = bop;
      fifo_[s].push_back(e);
    }
  }

  // 6. Settle-kernel timeline sample (per-cycle work deltas).
  if (config_.profileKernel) {
    sim::Simulator& sim = net_->simulator();
    KernelSample ks;
    ks.cycle = cycle;
    const std::uint64_t evals = sim.evaluateCalls();
    ks.evals = evals - prevEvals_;
    prevEvals_ = evals;
    if (sim.kernel() == sim::Simulator::Kernel::ParallelEventDriven) {
      const auto& ps = sim.parallelStats();
      ks.frontier = ps.frontierEvaluations - prevFrontier_;
      prevFrontier_ = ps.frontierEvaluations;
      if (prevDomains_.size() != ps.domainEvaluations.size())
        prevDomains_.assign(ps.domainEvaluations.size(), 0);
      ks.domains.resize(ps.domainEvaluations.size());
      for (std::size_t d = 0; d < ks.domains.size(); ++d) {
        ks.domains[d] = ps.domainEvaluations[d] - prevDomains_[d];
        prevDomains_[d] = ps.domainEvaluations[d];
      }
    }
    kernelSamples_.push_back(std::move(ks));
    if (kernelSamples_.size() > config_.capacity) kernelSamples_.pop_front();
  }
}

void FlowTracer::completePacket(std::uint64_t id, const PacketMeta& m,
                                std::uint64_t ejectCycle) {
  const PacketMeta done = m;  // metas_.erase below invalidates the reference
  decomp_.endToEnd.record(static_cast<double>(ejectCycle - done.queuedCycle));
  decomp_.sourceQueue.record(
      static_cast<double>(done.headerInjectCycle - done.queuedCycle));
  decomp_.hopMin.record(static_cast<double>(done.hops));
  decomp_.hopBlocked.record(static_cast<double>(done.hopBlocked));
  decomp_.drain.record(
      static_cast<double>(ejectCycle - done.headerEjectCycle));
  ++packetsCompleted_;
  if (spans_.size() < config_.maxFlowSpans) {
    FlowSpan span;
    span.id = id;
    span.src = done.src;
    span.dst = done.dst;
    span.kind = done.kind;
    span.queuedCycle = done.queuedCycle;
    span.injectCycle = done.headerInjectCycle;
    span.headerEjectCycle = done.headerEjectCycle;
    span.ejectCycle = ejectCycle;
    span.hops = done.hops;
    span.blockedCycles = done.hopBlocked;
    spans_.push_back(span);
  } else {
    ++spanOverflow_;
  }
  metas_.erase(id);
}

void FlowTracer::resyncCounters() {
  const std::size_t slots = static_cast<std::size_t>(nodes_) * kNumPorts;
  for (std::size_t s = 0; s < slots; ++s) {
    prevAccepted_[s] = inputs_[s] ? inputs_[s]->flitsAccepted() : 0;
    prevSent_[s] = outputs_[s] ? outputs_[s]->flitsSent() : 0;
  }
  for (FaultyView& f : faulty_) {
    f.prevCorrupted = f.link->flitsCorrupted();
    f.prevDropped = f.link->flitsDropped();
    f.prevStalls = f.link->stallCycles();
  }
  const sim::Simulator& sim = net_->simulator();
  prevEvals_ = sim.evaluateCalls();
  const auto& ps = sim.parallelStats();
  prevFrontier_ = ps.frontierEvaluations;
  prevDomains_ = ps.domainEvaluations;
}

void FlowTracer::clear() {
  sink_.clear();
  staged_.clear();
  metas_.clear();
  for (auto& q : fifo_) q.clear();
  for (auto& q : niStream_) q.clear();
  decomp_ = Decomposition{};
  spans_.clear();
  spanOverflow_ = 0;
  kernelSamples_.clear();
  nextId_ = 1;
  packetsTraced_ = 0;
  packetsCompleted_ = 0;
  resyncCounters();
}

std::string FlowTracer::perfettoJson() const {
  telemetry::PerfettoWriter w;
  const Topology& topo = net_->topology();

  // Metadata: one process per router (tracks per port), one process per
  // flow source (tracks per destination).  Kernel-profile counters are
  // deliberately absent — they live in kernelProfileJson() so this export
  // stays byte-identical across settle kernels even with profiling on.
  for (int n = 0; n < nodes_; ++n) {
    const NodeId node = topo.nodeAt(n);
    w.processName(kRouterPidBase + n,
                  "r" + std::to_string(n) + " (" + std::to_string(node.x) +
                      "," + std::to_string(node.y) + ")");
    for (Port p : kAllPorts) {
      if (!inputs_[slot(n, router::index(p))]) continue;
      const std::string letter(router::name(p));
      w.threadName(kRouterPidBase + n, 1 + router::index(p), "in." + letter);
      w.threadName(kRouterPidBase + n, 11 + router::index(p),
                   "out." + letter);
    }
  }
  std::set<std::pair<std::int32_t, std::int32_t>> flows;
  for (const FlowSpan& span : spans_) flows.insert({span.src, span.dst});
  for (std::size_t i = 0; i < sink_.size(); ++i) {
    const TraceEvent& ev = sink_.at(i);
    if (queuedKind(ev.kind)) flows.insert({ev.src, ev.dst});
  }
  std::set<std::int32_t> flowSrcs;
  for (const auto& [src, dst] : flows) {
    if (flowSrcs.insert(src).second)
      w.processName(kFlowPidBase + src, "flows from " + std::to_string(src));
    w.threadName(kFlowPidBase + src, dst + 1, "to " + std::to_string(dst));
  }

  // One span per completed packet on its flow track.
  for (const FlowSpan& span : spans_) {
    w.complete(kFlowPidBase + span.src, span.dst + 1, span.queuedCycle,
               span.ejectCycle - span.queuedCycle, pktName(span.id),
               {{"kind", std::string(telemetry::name(span.kind))},
                {"hops", std::to_string(span.hops)},
                {"blocked", std::to_string(span.blockedCycles)},
                {"inject", std::to_string(span.injectCycle)}});
  }

  // Port-level events from the ring.  FifoDequeue events carry the flit's
  // buffer residency, so each becomes a complete span without needing its
  // (possibly overwritten) matching enqueue; FlitInjected and FifoEnqueue
  // are redundant with those spans and stay ring-only.
  for (std::size_t i = 0; i < sink_.size(); ++i) {
    const TraceEvent& ev = sink_.at(i);
    const int pid = kRouterPidBase + ev.node;
    const int inTid = 1 + ev.port;
    const int outTid = 11 + ev.port;
    switch (ev.kind) {
      case TraceEventKind::PacketQueued:
      case TraceEventKind::RetransmitQueued:
      case TraceEventKind::AckQueued:
      case TraceEventKind::NackQueued:
        w.instant(kFlowPidBase + ev.src, ev.dst + 1, ev.cycle,
                  std::string(telemetry::name(ev.kind)) + " " +
                      pktName(ev.packet));
        break;
      case TraceEventKind::FlitInjected:
      case TraceEventKind::FifoEnqueue:
        break;
      case TraceEventKind::HeaderInjected:
        w.instant(pid, inTid, ev.cycle, "inject " + pktName(ev.packet));
        break;
      case TraceEventKind::FifoDequeue:
        w.complete(pid, inTid, ev.cycle - static_cast<std::uint64_t>(ev.value),
                   static_cast<std::uint64_t>(ev.value), pktName(ev.packet),
                   {{"flow", flowName(ev.src, ev.dst)}});
        break;
      case TraceEventKind::ArbGrant:
        w.instant(pid, outTid, ev.cycle,
                  "grant " +
                      std::string(router::name(
                          static_cast<Port>(ev.value))) +
                      " " + pktName(ev.packet));
        break;
      case TraceEventKind::ArbConflict:
        w.instant(pid, outTid, ev.cycle,
                  "wait " +
                      std::string(router::name(
                          static_cast<Port>(ev.value))) +
                      " " + pktName(ev.packet));
        break;
      case TraceEventKind::LinkTransfer:
        w.instant(pid, outTid, ev.cycle, "xfer " + pktName(ev.packet));
        break;
      case TraceEventKind::LinkCorrupt:
        w.instant(pid, outTid, ev.cycle, "fault:corrupt " + pktName(ev.packet));
        break;
      case TraceEventKind::LinkDrop:
        w.instant(pid, outTid, ev.cycle, "fault:drop " + pktName(ev.packet));
        break;
      case TraceEventKind::LinkStall:
        w.instant(pid, outTid, ev.cycle, "fault:stall " + pktName(ev.packet));
        break;
      case TraceEventKind::HeaderEjected:
        w.instant(pid, outTid, ev.cycle, "eject-head " + pktName(ev.packet));
        break;
      case TraceEventKind::PacketEjected:
        w.instant(pid, outTid, ev.cycle, "eject " + pktName(ev.packet));
        break;
    }
  }
  return w.toJson();
}

std::string FlowTracer::kernelProfileJson() const {
  telemetry::PerfettoWriter w;
  if (config_.profileKernel && !kernelSamples_.empty()) {
    w.processName(kKernelPid, "settle kernel");
    for (const KernelSample& ks : kernelSamples_) {
      w.counter(kKernelPid, ks.cycle, "evals/cycle",
                {{"evals", static_cast<double>(ks.evals)}});
      if (!ks.domains.empty()) {
        std::vector<std::pair<std::string, double>> series;
        series.reserve(ks.domains.size());
        for (std::size_t d = 0; d < ks.domains.size(); ++d)
          series.emplace_back("d" + std::to_string(d),
                              static_cast<double>(ks.domains[d]));
        w.counter(kKernelPid, ks.cycle, "domain evals/cycle", series);
        w.counter(kKernelPid, ks.cycle, "frontier evals/cycle",
                  {{"frontier", static_cast<double>(ks.frontier)}});
      }
    }
  }
  return w.toJson();
}

namespace {

void statRow(telemetry::RunReport& report, const std::string& key,
             const LatencyStats& stats) {
  report.set("trace", key + "_count",
             static_cast<std::uint64_t>(stats.count()));
  if (stats.count() == 0) return;
  report.set("trace", key + "_mean", stats.mean());
  report.set("trace", key + "_p50", stats.percentile(0.50));
  report.set("trace", key + "_p95", stats.percentile(0.95));
  report.set("trace", key + "_p99", stats.percentile(0.99));
}

}  // namespace

void FlowTracer::writeReport(telemetry::RunReport& report) const {
  report.set("trace", "sample_every", config_.sampleEvery);
  report.set("trace", "packets_traced", packetsTraced_);
  report.set("trace", "packets_completed", packetsCompleted_);
  report.set("trace", "events_recorded", sink_.recorded());
  report.set("trace", "events_retained",
             static_cast<std::uint64_t>(sink_.size()));
  report.set("trace", "events_dropped", sink_.dropped());
  statRow(report, "end_to_end", decomp_.endToEnd);
  statRow(report, "source_queue", decomp_.sourceQueue);
  statRow(report, "hop_min", decomp_.hopMin);
  statRow(report, "hop_blocked", decomp_.hopBlocked);
  statRow(report, "drain", decomp_.drain);
  // Kernel-dependent numbers go in their own section so the `trace`
  // section compares byte-equal across kernels.
  if (config_.profileKernel && net_->simulator().profilingEnabled()) {
    const auto hottest = net_->simulator().hottestModules(5);
    report.set("kernel_profile", "profiled_modules",
               static_cast<std::uint64_t>(
                   net_->simulator().profileCounts().size()));
    report.set("kernel_profile", "samples",
               static_cast<std::uint64_t>(kernelSamples_.size()));
    for (std::size_t i = 0; i < hottest.size(); ++i)
      report.set("kernel_profile", "hot_module_" + std::to_string(i),
                 hottest[i].first + "=" + std::to_string(hottest[i].second));
  }
}

std::string FlowTracer::decompositionTable() const {
  std::ostringstream os;
  os << "component     count      mean       p50       p95       p99\n";
  const auto row = [&os](const char* label, const LatencyStats& stats) {
    os << label;
    for (std::size_t i = std::string(label).size(); i < 14; ++i) os << ' ';
    if (stats.count() == 0) {
      os << "    0\n";
      return;
    }
    const auto cell = [&os](double v) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", v);
      const std::string t = buf;
      for (std::size_t i = t.size(); i < 10; ++i) os << ' ';
      os << t;
    };
    const std::string count = std::to_string(stats.count());
    for (std::size_t i = count.size(); i < 5; ++i) os << ' ';
    os << count;
    cell(stats.mean());
    cell(stats.percentile(0.50));
    cell(stats.percentile(0.95));
    cell(stats.percentile(0.99));
    os << '\n';
  };
  row("end_to_end", decomp_.endToEnd);
  row("source_queue", decomp_.sourceQueue);
  row("hop_min", decomp_.hopMin);
  row("hop_blocked", decomp_.hopBlocked);
  row("drain", decomp_.drain);
  return os.str();
}

std::vector<TraceEvent> FlowTracer::recentLinkEvents(NodeId from, Port port,
                                                     std::size_t n) const {
  const Topology& topo = net_->topology();
  const int fromIdx = topo.indexOf(from);
  const int outPort = router::index(port);
  int toIdx = -1;
  int inPort = -1;
  if (port != Port::Local) {
    if (const std::optional<NodeId> nb = topo.neighbor(from, port)) {
      toIdx = topo.indexOf(*nb);
      inPort = router::index(router::opposite(port));
    }
  }
  std::vector<TraceEvent> out;
  for (std::size_t i = sink_.size(); i > 0 && out.size() < n; --i) {
    const TraceEvent& ev = sink_.at(i - 1);
    const bool sender = ev.node == fromIdx && ev.port == outPort;
    const bool receiver = toIdx >= 0 && ev.node == toIdx && ev.port == inPort;
    if (sender || receiver) out.push_back(ev);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace rasoc::noc
