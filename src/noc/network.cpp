#include "noc/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "noc/observe.hpp"

namespace rasoc::noc {

using router::Port;

namespace {

std::string nodeName(const char* prefix, NodeId n) {
  return std::string(prefix) + "(" + std::to_string(n.x) + "," +
         std::to_string(n.y) + ")";
}

// Previous lifetime counters, so the parallel-kernel tick sampler can emit
// per-cycle deltas.
struct ParallelSample {
  std::uint64_t frontier = 0;
  std::vector<std::uint64_t> domains;
};

}  // namespace

Network::Network(std::shared_ptr<const Topology> topology,
                 NetworkConfig config)
    : topology_(std::move(topology)), config_(config) {
  if (!topology_) throw std::invalid_argument("network needs a topology");
  topology_->validate();
  topology_->checkAdjacency();

  if (topology_->maxRibOffset() > router::ribMaxOffset(config_.params.m))
    throw std::invalid_argument(
        "topology offsets exceed the RIB range; increase m");

  if (!config_.faultPlan.empty()) {
    config_.faultPlan.validate(*topology_);
    // With VCs every window kind is legal under either flow control: the
    // faulted link masks the per-VC vcFree levels instead of the ack wire
    // (router/faulty_link.hpp).
    if (config_.params.flowControl != router::FlowControl::Handshake &&
        config_.params.numVCs == 1) {
      for (const FaultEvent& e : config_.faultPlan.events) {
        if (e.kind != FaultKind::Corrupt)
          throw std::invalid_argument(
              "fault plan: stall/drop windows require handshake flow "
              "control (the credit-based ack wire carries credit returns)");
      }
    }
  }

  // Parallel kernel: one partition domain per worker thread, each node's
  // modules hinted into the domain Topology::partition assigns to it.
  if (config_.kernel == sim::Simulator::Kernel::ParallelEventDriven) {
    config_.threads = std::max(config_.threads, 1);
    nodeDomains_ = topology_->partition(config_.threads);
    sim_.setThreads(config_.threads);
  }

  // Wrap probe: a West (resp. South) link out of node (0,0) only exists on
  // a wrapping axis.  Feeds each router's VcGeometry so escape-VC dateline
  // classes are computed locally, and picks the NI injection VC (the first
  // adaptive one, keeping escape VCs clear for in-flight traffic).
  const Extent ext = topology_->extent();
  const NodeId origin = topology_->nodeAt(0);
  const bool wrapX =
      ext.width > 1 && topology_->neighbor(origin, Port::West).has_value();
  const bool wrapY =
      ext.height > 1 && topology_->neighbor(origin, Port::South).has_value();
  const int escapeVCs = (wrapX || wrapY) ? 2 : 1;
  const int injectVc =
      config_.params.numVCs > escapeVCs ? escapeVCs : 0;

  // QoS isolation needs at least two adaptive VCs above the escape layer so
  // Control gets a lane Bulk never enters (router::qosVcMask).  The params
  // check covers the mesh escape layer; wrapping topologies reserve one
  // more escape VC, which only the builder knows.
  if (config_.params.qosClasses &&
      config_.params.numVCs - escapeVCs < 2)
    throw std::invalid_argument(
        "qosClasses on " + topology_->describe() + " needs numVCs >= " +
        std::to_string(escapeVCs + 2) + " (" + std::to_string(escapeVCs) +
        " escape VCs + two adaptive VCs for class separation)");

  // Routers and NIs, with the per-node port set the topology prescribes.
  for (int i = 0; i < topology_->nodes(); ++i) {
    const NodeId n = topology_->nodeAt(i);
    router::RouterParams params = config_.params;
    params.portMask = topology_->portMask(n);
    const router::VcGeometry geometry{n.x,        n.y,  ext.width,
                                      ext.height, wrapX, wrapY};
    auto r = std::make_unique<router::Rasoc>(nodeName("r", n), params,
                                             config_.arbiter, geometry);
    NiOptions niOptions;
    niOptions.hlpParity = config_.hlpParity;
    niOptions.reliability = config_.reliability;
    niOptions.injectVc = injectVc;
    niOptions.escapeVCs = escapeVCs;
    auto ni = std::make_unique<NetworkInterface>(
        nodeName("ni", n), params, topology_, n, r->in(Port::Local),
        r->out(Port::Local), ledger_, niOptions);
    if (!nodeDomains_.empty()) {
      r->setPartitionHint(nodeDomains_[static_cast<std::size_t>(i)]);
      ni->setPartitionHint(nodeDomains_[static_cast<std::size_t>(i)]);
    }
    sim_.add(*r);
    sim_.add(*ni);
    routers_.push_back(std::move(r));
    nis_.push_back(std::move(ni));
  }

  // One directed link per (node, outgoing port) pair of the adjacency
  // relation; fault-injecting when requested.  Enumerating every node's
  // outgoing ports covers both directions of every physical connection.
  for (int i = 0; i < topology_->nodes(); ++i) {
    const NodeId from = topology_->nodeAt(i);
    for (Port out : router::kAllPorts) {
      if (out == Port::Local) continue;
      const std::optional<NodeId> to = topology_->neighbor(from, out);
      if (!to) continue;
      const std::string linkName =
          nodeName("link", from) + std::string(router::name(out));
      const LinkId linkId{from, out};
      std::vector<router::FaultWindow> windows =
          config_.faultPlan.windowsFor(linkId);
      std::unique_ptr<router::Link> link;
      if (config_.linkFaultRate > 0.0 || !windows.empty()) {
        auto faulty = std::make_unique<router::FaultyLink>(
            linkName, routers_[indexOf(from)]->out(out),
            routers_[indexOf(*to)]->in(router::opposite(out)),
            config_.params.n, config_.linkFaultRate,
            config_.faultSeed + links_.size() * 131 + 7,
            config_.params.flowControl, config_.params.numVCs);
        faulty->setWindows(std::move(windows));
        faultyLinks_.emplace_back(linkId, faulty.get());
        link = std::move(faulty);
      } else {
        link = std::make_unique<router::Link>(
            linkName, routers_[indexOf(from)]->out(out),
            routers_[indexOf(*to)]->in(router::opposite(out)),
            config_.params.flowControl, config_.params.numVCs);
      }
      // A link inherits its source node's domain; when the destination
      // lives in another domain the partition classifies it frontier.
      if (!nodeDomains_.empty())
        link->setPartitionHint(nodeDomains_[static_cast<std::size_t>(i)]);
      sim_.add(*link);
      linkIndex_[{topology_->indexOf(from), router::index(out)}] = link.get();
      links_.push_back(std::move(link));
    }
  }

  // Worst-case combinational propagation spans the network diameter; give
  // the naive settle loop generous headroom (the event-driven kernel
  // derives its evaluation bound from the same knob).
  const Extent extent = topology_->extent();
  sim_.setMaxSettleIterations(32 + 8 * (extent.width + extent.height));
  sim_.setKernel(config_.kernel);
  sim_.reset();
}

void Network::attachTraffic(const TrafficConfig& traffic) {
  FlowSpec flow;
  flow.trafficClass = traffic.trafficClass;
  flow.traffic = traffic;
  attachTraffic(std::vector<FlowSpec>{flow});
}

void Network::attachTraffic(const std::vector<FlowSpec>& flows) {
  if (!generators_.empty())
    throw std::logic_error("traffic generators already attached");
  if (flows.empty())
    throw std::invalid_argument("attachTraffic: empty flow list");
  for (const FlowSpec& flow : flows)
    validatePattern(flow.traffic.pattern, *topology_, flow.traffic);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    // Flow 0 keeps the legacy names and per-node seeds so single-flow
    // attachTraffic(TrafficConfig) callers see bit-identical runs.
    const std::string prefix =
        f == 0 ? std::string("tg") : "tg" + std::to_string(f) + ".";
    for (int i = 0; i < topology_->nodes(); ++i) {
      const NodeId n = topology_->nodeAt(i);
      TrafficConfig cfg = flows[f].traffic;
      cfg.trafficClass = flows[f].trafficClass;
      cfg.seed = flows[f].traffic.seed * 7919 + static_cast<std::uint64_t>(i) +
                 1 + f * 104729;
      auto gen = std::make_unique<TrafficGenerator>(
          nodeName(prefix.c_str(), n), topology_, n,
          *nis_[static_cast<std::size_t>(i)], cfg);
      if (!nodeDomains_.empty())
        gen->setPartitionHint(nodeDomains_[static_cast<std::size_t>(i)]);
      sim_.add(*gen);
      generators_.push_back(std::move(gen));
    }
  }
  trafficFlows_ = flows.size();
}

void Network::pauseTraffic(bool paused) {
  for (auto& gen : generators_) gen->setPaused(paused);
}

void Network::enableTelemetry(telemetry::MetricsRegistry& registry) {
  if (metrics_) throw std::logic_error("telemetry already enabled");
  metrics_ = &registry;
  for (int i = 0; i < topology_->nodes(); ++i) {
    const NodeId n = topology_->nodeAt(i);
    routers_[static_cast<std::size_t>(i)]->attachMetrics(
        registry, routerMetricPrefix(n));
    const std::string prefix = niMetricPrefix(n) + ".";
    NiMetrics nm;
    nm.flitsInjected = &registry.counter(prefix + "flits_injected");
    nm.flitsEjected = &registry.counter(prefix + "flits_ejected");
    nm.backpressureCycles = &registry.counter(prefix + "backpressure_cycles");
    nm.sendQueueFlits =
        &registry.histogram(prefix + "send_queue_flits",
                            telemetry::Histogram::linearBounds(16));
    if (config_.reliability.enabled) {
      nm.retransmits = &registry.counter(prefix + "retransmits");
      nm.timeouts = &registry.counter(prefix + "timeouts");
      nm.duplicatesDropped =
          &registry.counter(prefix + "duplicates_dropped");
    }
    nis_[static_cast<std::size_t>(i)]->attachMetrics(nm);
  }
  // Per-link fault counters (only links that can actually fault).
  for (const auto& [id, link] : faultyLinks_) {
    const std::string prefix = linkMetricPrefix(id) + ".";
    router::FaultyLinkMetrics fm;
    fm.flitsCorrupted = &registry.counter(prefix + "flits_corrupted");
    fm.flitsDropped = &registry.counter(prefix + "flits_dropped");
    fm.stallCycles = &registry.counter(prefix + "stall_cycles");
    link->attachMetrics(fm);
  }
  // Per-VC buffered-flit gauges: the occupancy heatmap's time series.
  if (config_.params.numVCs > 1) {
    std::vector<telemetry::Gauge*> vcGauges;
    for (int v = 0; v < config_.params.numVCs; ++v)
      vcGauges.push_back(
          &registry.gauge("net.vc" + std::to_string(v) + ".buffered_flits"));
    sim_.addTickListener([this, vcGauges] {
      for (int v = 0; v < config_.params.numVCs; ++v) {
        long total = 0;
        for (int c : vcOccupancy(v)) total += c;
        vcGauges[static_cast<std::size_t>(v)]->sample(
            static_cast<double>(total));
      }
    });
  }
  // Per-class QoS gauges: injection-queue depth and delivered totals per
  // traffic class, so isolation regressions show up in time series (a
  // Control queue that grows under a Bulk flood is the failure signature).
  if (config_.params.qosClasses) {
    std::vector<telemetry::Gauge*> classQueued;
    std::vector<telemetry::Gauge*> classDelivered;
    for (int c = 0; c < router::kNumTrafficClasses; ++c) {
      const std::string prefix =
          "net.qos." +
          std::string(router::name(static_cast<router::TrafficClass>(c)));
      classQueued.push_back(&registry.gauge(prefix + ".queued_packets"));
      classDelivered.push_back(
          &registry.gauge(prefix + ".delivered_packets"));
    }
    sim_.addTickListener([this, classQueued, classDelivered] {
      for (int c = 0; c < router::kNumTrafficClasses; ++c) {
        const auto cls = static_cast<router::TrafficClass>(c);
        std::size_t queued = 0;
        for (const auto& ni : nis_) queued += ni->sendQueuePackets(cls);
        classQueued[static_cast<std::size_t>(c)]->sample(
            static_cast<double>(queued));
        classDelivered[static_cast<std::size_t>(c)]->sample(
            static_cast<double>(ledger_.delivered(cls)));
      }
    });
  }
  // Network-level gauges, sampled once per committed cycle through the
  // simulator tick hook.
  telemetry::Gauge* inFlight = &registry.gauge("mesh.in_flight_packets");
  telemetry::Gauge* queuedFlits = &registry.gauge("mesh.send_queue_flits");
  sim_.addTickListener([this, inFlight, queuedFlits] {
    inFlight->sample(static_cast<double>(ledger_.inFlight()));
    std::size_t total = 0;
    for (const auto& ni : nis_) total += ni->sendQueueFlits();
    queuedFlits->sample(static_cast<double>(total));
  });
  if (config_.reliability.enabled) {
    telemetry::Gauge* unacked =
        &registry.gauge("net.reliability.unacked_frames");
    telemetry::Gauge* backlog =
        &registry.gauge("net.reliability.backlog_frames");
    sim_.addTickListener([this, unacked, backlog] {
      std::size_t unackedTotal = 0;
      std::size_t backlogTotal = 0;
      for (const auto& ni : nis_) {
        if (const ReliableTransport* t = ni->transport()) {
          unackedTotal += t->unackedFrames();
          backlogTotal += t->backlogFrames();
        }
      }
      unacked->sample(static_cast<double>(unackedTotal));
      backlog->sample(static_cast<double>(backlogTotal));
    });
  }
  if (sim_.kernel() == sim::Simulator::Kernel::ParallelEventDriven) {
    // Parallel-kernel health: frontier (sequential) work per cycle, the
    // per-domain imbalance ratio (max/mean interior evaluations; 1.0 means
    // perfectly balanced), and the partition's frontier-module count.
    telemetry::Gauge* frontierEvals =
        &registry.gauge("sim.parallel.frontier_evals");
    telemetry::Gauge* imbalance =
        &registry.gauge("sim.parallel.domain_imbalance");
    telemetry::Gauge* frontierModules =
        &registry.gauge("sim.parallel.frontier_modules");
    auto last = std::make_shared<ParallelSample>();
    sim_.addTickListener(
        [this, frontierEvals, imbalance, frontierModules, last] {
          const auto& stats = sim_.parallelStats();
          frontierEvals->sample(
              static_cast<double>(stats.frontierEvaluations - last->frontier));
          last->frontier = stats.frontierEvaluations;
          last->domains.resize(stats.domainEvaluations.size(), 0);
          double sum = 0.0;
          double peak = 0.0;
          for (std::size_t d = 0; d < stats.domainEvaluations.size(); ++d) {
            const double delta = static_cast<double>(
                stats.domainEvaluations[d] - last->domains[d]);
            last->domains[d] = stats.domainEvaluations[d];
            sum += delta;
            peak = std::max(peak, delta);
          }
          const double mean =
              sum / static_cast<double>(
                        std::max<std::size_t>(stats.domainEvaluations.size(),
                                              1));
          imbalance->sample(mean > 0.0 ? peak / mean : 1.0);
          frontierModules->sample(
              static_cast<double>(stats.frontierModules));
        });
  }
}

std::size_t Network::indexOf(NodeId n) const {
  return static_cast<std::size_t>(topology_->indexOf(n));
}

router::Rasoc& Network::router(NodeId n) { return *routers_[indexOf(n)]; }

NetworkInterface& Network::ni(NodeId n) { return *nis_[indexOf(n)]; }

TrafficGenerator& Network::generator(NodeId n) {
  if (generators_.empty()) throw std::logic_error("no traffic attached");
  return *generators_[indexOf(n)];
}

TrafficGenerator& Network::generator(NodeId n, std::size_t flow) {
  if (flow >= trafficFlows_)
    throw std::out_of_range("generator: flow outside [0, trafficFlows)");
  return *generators_[flow * static_cast<std::size_t>(topology_->nodes()) +
                      indexOf(n)];
}

FlowTracer& Network::enableTracing(TraceConfig config) {
  if (tracer_) throw std::logic_error("tracing already enabled");
  if (config_.params.numVCs > 1)
    throw std::logic_error(
        "flow tracing does not support numVCs > 1 yet: the reconstruction "
        "contract (noc/flow_trace.hpp) assumes one FIFO per input port");
  if (sim_.cycle() != 0)
    throw std::logic_error(
        "enableTracing must be called before the first cycle");
  for (const auto& ni : nis_) {
    if (ni->sendQueuePackets() != 0)
      throw std::logic_error(
          "enableTracing must be called before any packet is queued");
  }
  tracer_ = std::make_unique<FlowTracer>(*this, config);
  for (auto& ni : nis_) ni->setTracer(tracer_.get());
  if (config.profileKernel) sim_.enableProfiling();
  sim_.addTickListener([this] { tracer_->onTick(); });
  return *tracer_;
}

std::vector<std::string> Network::blockedLinkTraceDump(
    std::size_t perLink) const {
  std::vector<std::string> lines;
  if (!tracer_) return lines;
  for (const auto& [key, link] : linkIndex_) {
    if (!link->blocked()) continue;
    lines.push_back(link->name() + ":");
    const auto events =
        tracer_->recentLinkEvents(topology_->nodeAt(key.first),
                                  static_cast<Port>(key.second), perLink);
    if (events.empty()) lines.push_back("  (no traced events)");
    for (const auto& ev : events)
      lines.push_back("  " + telemetry::describe(ev));
  }
  return lines;
}

void Network::reset() {
  sim_.reset();
  if (tracer_) tracer_->clear();
}

void Network::run(std::uint64_t cycles) { sim_.run(cycles); }

bool Network::drain(std::uint64_t maxCycles) {
  return sim_.runUntil(
      [&] {
        if (ledger_.inFlight() != 0) return false;
        for (const auto& ni : nis_)
          if (!ni->idle()) return false;
        return true;
      },
      maxCycles);
}

bool Network::healthy() const {
  for (const auto& r : routers_)
    if (r->misrouteDetected() || r->overflowDetected()) return false;
  for (const auto& ni : nis_)
    if (ni->misdeliveryDetected()) return false;
  return true;
}

double Network::meanLinkUtilization() const {
  if (links_.empty() || sim_.cycle() == 0) return 0.0;
  double sum = 0.0;
  for (const auto& link : links_) sum += link->utilization(sim_.cycle());
  return sum / static_cast<double>(links_.size());
}

double Network::linkUtilization(NodeId from, router::Port port) const {
  const auto it =
      linkIndex_.find({topology_->indexOf(from), router::index(port)});
  if (it == linkIndex_.end())
    throw std::out_of_range("no such link on this network");
  if (sim_.cycle() == 0) return 0.0;  // no cycles observed yet
  return it->second->utilization(sim_.cycle());
}

std::vector<int> Network::vcOccupancy(int v) const {
  if (config_.params.numVCs <= 1)
    throw std::logic_error("vcOccupancy requires numVCs > 1");
  if (v < 0 || v >= config_.params.numVCs)
    throw std::out_of_range("vcOccupancy: VC outside [0, numVCs)");
  std::vector<int> per(routers_.size(), 0);
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    const router::Rasoc& r = *routers_[i];
    for (Port p : router::kAllPorts) {
      if (!r.params().hasPort(p)) continue;
      per[i] += r.vcInputChannel(p).occupancy(v);
    }
  }
  return per;
}

std::uint64_t Network::flitsCorrupted() const {
  std::uint64_t total = 0;
  for (const auto& [id, link] : faultyLinks_) total += link->flitsCorrupted();
  return total;
}

std::uint64_t Network::flitsDropped() const {
  std::uint64_t total = 0;
  for (const auto& [id, link] : faultyLinks_) total += link->flitsDropped();
  return total;
}

std::uint64_t Network::faultStallCycles() const {
  std::uint64_t total = 0;
  for (const auto& [id, link] : faultyLinks_) total += link->stallCycles();
  return total;
}

ReliabilityStats Network::reliabilityStats() const {
  ReliabilityStats total;
  for (const auto& ni : nis_) {
    if (const ReliabilityStats* s = ni->reliabilityStats()) total += *s;
  }
  return total;
}

std::vector<std::string> Network::blockedLinkNames() const {
  std::vector<std::string> names;
  for (const auto& [key, link] : linkIndex_) {
    if (link->blocked()) names.push_back(link->name());
  }
  return names;
}

std::uint64_t Network::parityErrorsDetected() const {
  std::uint64_t total = 0;
  for (const auto& ni : nis_) total += ni->parityErrors();
  return total;
}

std::uint64_t Network::unattributedPackets() const {
  std::uint64_t total = 0;
  for (const auto& ni : nis_) total += ni->unattributedPackets();
  return total;
}

double Network::maxLinkUtilization() const {
  if (links_.empty() || sim_.cycle() == 0) return 0.0;
  double peak = 0.0;
  for (const auto& link : links_)
    peak = std::max(peak, link->utilization(sim_.cycle()));
  return peak;
}

}  // namespace rasoc::noc
