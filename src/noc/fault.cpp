#include "noc/fault.hpp"

#include <stdexcept>

#include "sim/rng.hpp"

namespace rasoc::noc {

namespace {

std::string linkName(const LinkId& link) {
  return "link(" + std::to_string(link.from.x) + "," +
         std::to_string(link.from.y) + ")" +
         std::string(router::name(link.port));
}

}  // namespace

std::string_view name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Corrupt:
      return "corrupt";
    case FaultKind::StuckAck:
      return "stuck_ack";
    case FaultKind::LinkDown:
      return "link_down";
  }
  return "?";
}

std::string describe(const FaultEvent& event) {
  std::string out = std::string(name(event.kind)) + " " +
                    linkName(event.link) + " [" +
                    std::to_string(event.start) + "," +
                    std::to_string(event.start + event.duration) + ")";
  if (event.kind == FaultKind::Corrupt)
    out += " rate=" + std::to_string(event.rate);
  return out;
}

bool FaultPlan::touches(const LinkId& link) const {
  for (const FaultEvent& e : events)
    if (e.link == link) return true;
  return false;
}

std::vector<router::FaultWindow> FaultPlan::windowsFor(
    const LinkId& link) const {
  std::vector<router::FaultWindow> windows;
  for (const FaultEvent& e : events) {
    if (!(e.link == link)) continue;
    router::FaultWindow w;
    switch (e.kind) {
      case FaultKind::Corrupt:
        w.kind = router::FaultWindow::Kind::Corrupt;
        break;
      case FaultKind::StuckAck:
        w.kind = router::FaultWindow::Kind::StuckAck;
        break;
      case FaultKind::LinkDown:
        w.kind = router::FaultWindow::Kind::LinkDown;
        break;
    }
    w.start = e.start;
    w.duration = e.duration;
    w.rate = e.rate;
    windows.push_back(w);
  }
  return windows;
}

std::size_t FaultPlan::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const FaultEvent& e : events)
    if (e.kind == kind) ++n;
  return n;
}

void FaultPlan::validate(const Topology& topology) const {
  for (const FaultEvent& e : events) {
    if (!topology.contains(e.link.from))
      throw std::invalid_argument("fault plan: " + describe(e) +
                                  " names a node outside the topology");
    if (e.link.port == router::Port::Local ||
        !topology.neighbor(e.link.from, e.link.port))
      throw std::invalid_argument("fault plan: " + describe(e) +
                                  " names a link the topology lacks");
    if (e.duration == 0)
      throw std::invalid_argument("fault plan: " + describe(e) +
                                  " has zero duration");
    if (e.rate < 0.0 || e.rate > 1.0)
      throw std::invalid_argument("fault plan: " + describe(e) +
                                  " rate outside [0,1]");
  }
}

std::vector<LinkId> allLinks(const Topology& topology) {
  std::vector<LinkId> links;
  for (int i = 0; i < topology.nodes(); ++i) {
    const NodeId from = topology.nodeAt(i);
    for (router::Port port : router::kAllPorts) {
      if (port == router::Port::Local) continue;
      if (topology.neighbor(from, port)) links.push_back({from, port});
    }
  }
  return links;
}

FaultPlan makeFaultPlan(const Topology& topology,
                        const CampaignConfig& config) {
  if (config.corruptRate < 0.0 || config.corruptRate > 1.0)
    throw std::invalid_argument("campaign: corruptRate outside [0,1]");
  if (config.corruptLinkFraction < 0.0 || config.corruptLinkFraction > 1.0)
    throw std::invalid_argument(
        "campaign: corruptLinkFraction outside [0,1]");
  if (config.stallEvents < 0 || config.dropEvents < 0)
    throw std::invalid_argument("campaign: negative event count");
  if (config.minDuration == 0 || config.maxDuration < config.minDuration)
    throw std::invalid_argument("campaign: bad duration bounds");
  if (config.horizon == 0)
    throw std::invalid_argument("campaign: zero horizon");

  const std::vector<LinkId> links = allLinks(topology);
  FaultPlan plan;
  sim::Xoshiro256 rng(config.seed);

  if (config.corruptRate > 0.0) {
    for (const LinkId& link : links) {
      if (!rng.chance(config.corruptLinkFraction)) continue;
      plan.events.push_back(
          {link, FaultKind::Corrupt, 0, config.horizon, config.corruptRate});
    }
  }

  const auto scatter = [&](FaultKind kind, int count) {
    for (int i = 0; i < count && !links.empty(); ++i) {
      const LinkId& link =
          links[static_cast<std::size_t>(rng.below(links.size()))];
      const std::uint64_t duration =
          config.minDuration +
          rng.below(config.maxDuration - config.minDuration + 1);
      const std::uint64_t span =
          config.horizon > duration ? config.horizon - duration : 1;
      plan.events.push_back({link, kind, rng.below(span), duration, 1.0});
    }
  };
  scatter(FaultKind::StuckAck, config.stallEvents);
  scatter(FaultKind::LinkDown, config.dropEvents);
  return plan;
}

}  // namespace rasoc::noc
