// 2D mesh geometry: node coordinates, port pruning for edge routers, and
// RIB computation for source-based XY routing.
//
// Coordinates: x grows East (column), y grows North (row).  Node (0,0) is
// the south-west corner.
#pragma once

#include <stdexcept>

#include "router/flit.hpp"
#include "router/params.hpp"

namespace rasoc::noc {

struct NodeId {
  int x = 0;
  int y = 0;

  bool operator==(const NodeId&) const = default;
};

struct MeshShape {
  int width = 4;   // columns (East-West extent)
  int height = 4;  // rows (North-South extent)

  int nodes() const { return width * height; }

  bool contains(NodeId n) const {
    return n.x >= 0 && n.x < width && n.y >= 0 && n.y < height;
  }

  int indexOf(NodeId n) const { return n.y * width + n.x; }

  NodeId nodeAt(int index) const {
    return NodeId{index % width, index / width};
  }

  void validate() const {
    if (width < 1 || height < 1)
      throw std::invalid_argument("mesh must be at least 1x1");
  }
};

// Ports a router needs at a given mesh position ("one or two of them need
// not be implemented, reducing the network area").
inline unsigned portMaskFor(MeshShape shape, NodeId n) {
  using router::Port;
  unsigned mask = 1u << router::index(Port::Local);
  if (n.y + 1 < shape.height) mask |= 1u << router::index(Port::North);
  if (n.y > 0) mask |= 1u << router::index(Port::South);
  if (n.x + 1 < shape.width) mask |= 1u << router::index(Port::East);
  if (n.x > 0) mask |= 1u << router::index(Port::West);
  return mask;
}

// Source-based XY routing information for a src -> dst packet.
inline router::Rib ribBetween(NodeId src, NodeId dst) {
  return router::Rib{dst.x - src.x, dst.y - src.y};
}

// Hop count of the XY path (router traversals, excluding the NIs).
inline int xyHops(NodeId src, NodeId dst) {
  const int dx = dst.x >= src.x ? dst.x - src.x : src.x - dst.x;
  const int dy = dst.y >= src.y ? dst.y - src.y : src.y - dst.y;
  return dx + dy + 1;  // +1: the destination router itself switches to L
}

}  // namespace rasoc::noc
