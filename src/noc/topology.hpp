/// \file
/// Network topology layer: node geometry, per-node port pruning, adjacency,
/// and source-route (RIB) computation.
///
/// RASoC itself is topology-agnostic - the router just follows the
/// signed-magnitude RIB in each header and prunes unused ports - so
/// everything grid-specific lives behind the Topology interface.  Instances
/// shipped here:
///
///   MeshTopology   - the paper's 2D mesh with pruned edge ports and XY
///                    source routing (deadlock-free by dimension order).
///   TorusTopology  - wraparound XY.  rib() (the numVCs == 1 route) stays
///                    inside the mesh sub-network, so no wrap link is ever
///                    a channel dependency; ribFor() with numVCs >= 2
///                    issues minimal possibly-wrapping routes, which the
///                    router's escape virtual channel makes deadlock-free
///                    (router/ic.hpp, escapeClass).
///   RingTopology   - bidirectional ring using only the L/E/W ports, the
///                    1D instance of the same scheme.
///
/// Coordinates: x grows East (column), y grows North (row).  Node (0,0) is
/// the south-west corner.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "router/flit.hpp"
#include "router/params.hpp"

namespace rasoc::noc {

struct NodeId {
  int x = 0;
  int y = 0;

  bool operator==(const NodeId&) const = default;
};

/// Bounding box of a topology's coordinates, used by heatmaps and pattern
/// generators that need the grid dimensions.
struct Extent {
  int width = 0;
  int height = 0;
};

/// A directed link: the channel leaving `from` through `port`.
struct LinkId {
  NodeId from;
  router::Port port = router::Port::East;

  bool operator<(const LinkId& o) const {
    if (from.y != o.from.y) return from.y < o.from.y;
    if (from.x != o.from.x) return from.x < o.from.x;
    return router::index(port) < router::index(o.port);
  }
  bool operator==(const LinkId&) const = default;
};

struct MeshShape {
  int width = 4;   // columns (East-West extent)
  int height = 4;  // rows (North-South extent)

  int nodes() const { return width * height; }

  bool contains(NodeId n) const {
    return n.x >= 0 && n.x < width && n.y >= 0 && n.y < height;
  }

  /// Throws std::out_of_range for nodes outside the shape: a silently
  /// wrapped index would alias a different node and corrupt whatever table
  /// it keys.
  int indexOf(NodeId n) const {
    if (!contains(n))
      throw std::out_of_range("node (" + std::to_string(n.x) + "," +
                              std::to_string(n.y) + ") outside " +
                              std::to_string(width) + "x" +
                              std::to_string(height) + " mesh");
    return n.y * width + n.x;
  }

  NodeId nodeAt(int index) const {
    if (index < 0 || index >= nodes())
      throw std::out_of_range("node index " + std::to_string(index) +
                              " outside " + std::to_string(nodes()) +
                              "-node mesh");
    return NodeId{index % width, index / width};
  }

  void validate() const {
    if (width < 1 || height < 1)
      throw std::invalid_argument("mesh must be at least 1x1");
  }
};

/// Ports a router needs at a given mesh position ("one or two of them need
/// not be implemented, reducing the network area").
inline unsigned portMaskFor(MeshShape shape, NodeId n) {
  using router::Port;
  unsigned mask = 1u << router::index(Port::Local);
  if (n.y + 1 < shape.height) mask |= 1u << router::index(Port::North);
  if (n.y > 0) mask |= 1u << router::index(Port::South);
  if (n.x + 1 < shape.width) mask |= 1u << router::index(Port::East);
  if (n.x > 0) mask |= 1u << router::index(Port::West);
  return mask;
}

/// Source-based XY routing information for a src -> dst packet on a mesh.
inline router::Rib ribBetween(NodeId src, NodeId dst) {
  return router::Rib{dst.x - src.x, dst.y - src.y};
}

/// Hop count of the mesh XY path (router traversals, excluding the NIs).
inline int xyHops(NodeId src, NodeId dst) {
  const int dx = dst.x >= src.x ? dst.x - src.x : src.x - dst.x;
  const int dy = dst.y >= src.y ? dst.y - src.y : src.y - dst.y;
  return dx + dy + 1;  // +1: the destination router itself switches to L
}

/// Abstract network topology.  An instance defines the node set, which
/// router ports each node instantiates, the links between them, and the RIB
/// a source NI writes into a header so the unmodified RASoC routing logic
/// delivers the packet.
///
/// Contracts:
///  * nodeAt/indexOf are inverse bijections over [0, nodes()) and throw
///    std::out_of_range outside it (never wrap silently).
///  * Adjacency is symmetric: neighbor(a, P) == b implies
///    neighbor(b, opposite(P)) == a (checkAdjacency() verifies).
///  * rib(src, dst) routes src -> dst along existing links for both XY and
///    YX dimension orders, and fully consumes the offset at dst (the NI's
///    residual-RIB-zero delivery invariant).
///  * deadlockFreedom() states why saturated wormhole traffic cannot
///    deadlock on this instance (or the routing restriction ensuring it).
class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::string_view kind() const = 0;  // "mesh" | "torus" | "ring"
  virtual int nodes() const = 0;
  virtual bool contains(NodeId n) const = 0;
  virtual NodeId nodeAt(int index) const = 0;
  virtual int indexOf(NodeId n) const = 0;
  virtual Extent extent() const = 0;
  virtual unsigned portMask(NodeId n) const = 0;
  virtual std::optional<NodeId> neighbor(NodeId n, router::Port port)
      const = 0;
  virtual router::Rib rib(NodeId src, NodeId dst) const = 0;
  virtual std::string_view deadlockFreedom() const = 0;
  virtual void validate() const = 0;

  /// The RIB a source NI should write when the network runs `numVCs`
  /// virtual channels.  The default forwards to rib(); wrapping topologies
  /// override it to issue minimal possibly-wrapping routes once an escape
  /// VC exists to make them safe (numVCs >= 2).  Ties between directions
  /// of equal length prefer the non-wrapping one.
  virtual router::Rib ribFor(NodeId src, NodeId dst, int numVCs) const {
    (void)numVCs;
    return rib(src, dst);
  }

  /// "mesh4x4", "torus8x8", "ring16" - stable id for reports and benches.
  std::string describe() const;

  /// Links traversed by a src -> dst packet under the given dimension
  /// order, derived by walking the adjacency with the router's own routing
  /// function (so predictions can never diverge from the hardware).  With
  /// numVCs > 1 this is the deterministic escape (dimension-order) path of
  /// the ribFor() route; adaptive VCs may deviate from it hop by hop.
  std::vector<LinkId> routePath(
      NodeId src, NodeId dst,
      router::RoutingAlgorithm algorithm = router::RoutingAlgorithm::XY,
      int numVCs = 1) const;

  /// Router traversals of the XY route including the delivering router.
  virtual int hops(NodeId src, NodeId dst) const;

  /// Largest per-axis RIB magnitude any route needs (checked against
  /// router::ribMaxOffset when a network is built).
  virtual int maxRibOffset() const;

  /// Assigns every node (by index) to one of `parts` domains for the
  /// parallel settle kernel (Simulator::Kernel::ParallelEventDriven).  The
  /// default splits the row-major node order into balanced contiguous
  /// blocks - horizontal strips on grids, arcs on rings - so each domain's
  /// frontier is a small number of cut links.  Throws for parts < 1; with
  /// more parts than nodes the surplus domains stay empty.
  virtual std::vector<int> partition(int parts) const;

  /// Throws std::logic_error if any link lacks its reverse or a port mask
  /// disagrees with the adjacency.
  void checkAdjacency() const;
};

/// The paper's 2D mesh: pruned edge ports, minimal XY source routing.
/// Deadlock-free: dimension-ordered routing on a mesh admits no cyclic
/// channel dependency (turns from Y back to X never occur).
class MeshTopology final : public Topology {
 public:
  explicit MeshTopology(MeshShape shape) : shape_(shape) {}
  MeshTopology(int width, int height) : shape_{width, height} {}

  MeshShape shape() const { return shape_; }

  std::string_view kind() const override { return "mesh"; }
  int nodes() const override { return shape_.nodes(); }
  bool contains(NodeId n) const override { return shape_.contains(n); }
  NodeId nodeAt(int index) const override { return shape_.nodeAt(index); }
  int indexOf(NodeId n) const override { return shape_.indexOf(n); }
  Extent extent() const override { return {shape_.width, shape_.height}; }
  unsigned portMask(NodeId n) const override;
  std::optional<NodeId> neighbor(NodeId n, router::Port port) const override;
  router::Rib rib(NodeId src, NodeId dst) const override;
  int hops(NodeId src, NodeId dst) const override;
  int maxRibOffset() const override;
  std::string_view deadlockFreedom() const override;
  void validate() const override { shape_.validate(); }

 private:
  MeshShape shape_;
};

/// 2D torus: every row and column closes into a ring, every router keeps
/// all five ports, and the source picks the wrap direction per axis.
///
/// Deadlock freedom: routing is dimension-ordered (X ring fully, then Y
/// ring), so cross-dimension cycles cannot form.  At numVCs == 1 (rib())
/// routes never wrap - the network is used as a mesh and no ring cycle can
/// close.  At numVCs >= 2 (ribFor()) routes are minimal and may wrap; the
/// escape virtual channel's dateline classes (router/ic.hpp, escapeClass)
/// then break each ring's channel-dependency cycle: a route holds escape
/// class 1 until it has taken its wrap hop and class 0 afterwards, and
/// class-1 channels are totally ordered before class-0 ones.
class TorusTopology final : public Topology {
 public:
  TorusTopology(int width, int height) : shape_{width, height} {}
  explicit TorusTopology(MeshShape shape) : shape_(shape) {}

  std::string_view kind() const override { return "torus"; }
  int nodes() const override { return shape_.nodes(); }
  bool contains(NodeId n) const override { return shape_.contains(n); }
  NodeId nodeAt(int index) const override { return shape_.nodeAt(index); }
  int indexOf(NodeId n) const override { return shape_.indexOf(n); }
  Extent extent() const override { return {shape_.width, shape_.height}; }
  unsigned portMask(NodeId n) const override;
  std::optional<NodeId> neighbor(NodeId n, router::Port port) const override;
  router::Rib rib(NodeId src, NodeId dst) const override;
  router::Rib ribFor(NodeId src, NodeId dst, int numVCs) const override;
  std::string_view deadlockFreedom() const override;
  void validate() const override { shape_.validate(); }

 private:
  MeshShape shape_;
};

/// Bidirectional ring of `count` nodes at (i, 0), the 1D torus: only the
/// L/E/W ports are instantiated (the port pruning the paper describes for
/// mesh edges, applied to a whole axis), East wraps i -> (i+1) mod N.
///
/// Deadlock freedom: the same scheme as TorusTopology on the single X
/// ring - non-wrapping routes at numVCs == 1, minimal routes protected by
/// the escape VC's dateline classes at numVCs >= 2.
class RingTopology final : public Topology {
 public:
  explicit RingTopology(int count) : count_(count) {}

  int count() const { return count_; }

  std::string_view kind() const override { return "ring"; }
  int nodes() const override { return count_; }
  bool contains(NodeId n) const override {
    return n.y == 0 && n.x >= 0 && n.x < count_;
  }
  NodeId nodeAt(int index) const override;
  int indexOf(NodeId n) const override;
  Extent extent() const override { return {count_, 1}; }
  unsigned portMask(NodeId n) const override;
  std::optional<NodeId> neighbor(NodeId n, router::Port port) const override;
  router::Rib rib(NodeId src, NodeId dst) const override;
  router::Rib ribFor(NodeId src, NodeId dst, int numVCs) const override;
  std::string_view deadlockFreedom() const override;
  void validate() const override {
    if (count_ < 1) throw std::invalid_argument("ring needs >= 1 node");
  }

 private:
  int count_;
};

/// Signed hop offset src -> dst along a ring of `size` nodes taking the
/// shorter way around: positive = increasing direction (East/North),
/// negative = decreasing.  Equal-length ties prefer the direct
/// (non-wrapping) direction.  Only safe with an escape VC (numVCs >= 2).
int minimalRingOffset(int src, int dst, int size);

/// Builds the topology named by `kind` ("mesh" | "torus" | "ring") over a
/// WxH extent (a ring uses width*height nodes).  Throws on unknown names.
std::shared_ptr<const Topology> makeTopology(std::string_view kind, int width,
                                             int height);

}  // namespace rasoc::noc
