// Measurement support: latency distributions and the delivery ledger that
// matches injected packets to delivered ones.
//
// Packets carry only n-bit payload words, so the simulator keeps timestamps
// out of band: each source NI registers a packet with the ledger when it is
// queued, stamps it when the header enters the network, and the destination
// NI closes it when the trailer arrives.  Deterministic XY routing +
// wormhole switching deliver each (src, dst) flow in FIFO order, so the
// front of the per-flow queue is always the packet being closed.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "noc/topology.hpp"
#include "router/params.hpp"

namespace rasoc::noc {

class LatencyStats {
 public:
  void record(double sample);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  // q in [0,1]; nearest-rank on the sorted samples.
  double percentile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

  // Text histogram: `bins` equal-width buckets between min and max, one
  // line each, bar lengths normalized to `barWidth` characters.
  std::string histogram(int bins = 10, int barWidth = 40) const;

 private:
  // Sorted view maintained incrementally: only samples recorded since the
  // last percentile() call are sorted and merged in, so interleaving
  // record() and percentile() costs O(new log new + n) per query instead of
  // re-sorting the whole vector.
  mutable std::vector<double> sorted_;
  mutable std::size_t sortedCount_ = 0;  // samples_ prefix already merged

  std::vector<double> samples_;
};

struct PacketRecord {
  NodeId src;
  NodeId dst;
  std::uint64_t createdCycle = 0;    // queued at the source NI
  std::uint64_t injectedCycle = 0;   // header flit entered the router
  bool injected = false;
  int flits = 0;                     // total flits including header
  // QoS traffic class the packet was tagged with, or -1 on non-QoS
  // networks.  Part of the flow key: priority scheduling deliberately
  // reorders classes within one (src, dst) pair, so only packets of one
  // class form a FIFO flow.
  int trafficClass = -1;
};

class DeliveryLedger {
 public:
  // Latency samples are only recorded for packets created at or after this
  // cycle (warm-up exclusion).
  void setWarmupCycles(std::uint64_t cycles) { warmup_ = cycles; }

  void onQueued(PacketRecord record);
  // `trafficClass` selects the flow (pass the record's value; -1 = untagged).
  void onHeaderInjected(NodeId src, NodeId dst, std::uint64_t cycle,
                        int trafficClass = -1);
  // Returns the closed record; throws if no packet of that flow is open.
  PacketRecord onDelivered(NodeId src, NodeId dst, std::uint64_t cycle,
                           int trafficClass = -1);
  // Non-throwing variant for receivers whose source attribution may be
  // corrupted (fault injection): returns false if no such flow is open.
  bool tryDeliver(NodeId src, NodeId dst, std::uint64_t cycle,
                  int trafficClass = -1);

  std::uint64_t queued() const { return queuedCount_; }
  std::uint64_t delivered() const { return deliveredCount_; }
  std::uint64_t flitsDelivered() const { return flitsDelivered_; }
  std::uint64_t inFlight() const { return queuedCount_ - deliveredCount_; }

  // End-to-end: creation to trailer delivery (includes source queueing).
  const LatencyStats& packetLatency() const { return packetLatency_; }
  // Network-only: header injection to trailer delivery.
  const LatencyStats& networkLatency() const { return networkLatency_; }

  // Per-class views (QoS networks; empty/zero for classes never tagged).
  const LatencyStats& packetLatency(router::TrafficClass cls) const {
    return classPacketLatency_[static_cast<std::size_t>(cls)];
  }
  const LatencyStats& networkLatency(router::TrafficClass cls) const {
    return classNetworkLatency_[static_cast<std::size_t>(cls)];
  }
  std::uint64_t delivered(router::TrafficClass cls) const {
    return classDelivered_[static_cast<std::size_t>(cls)];
  }
  std::uint64_t queued(router::TrafficClass cls) const {
    return classQueued_[static_cast<std::size_t>(cls)];
  }

  // Delivered flits per cycle per node over the measured window.
  double throughputFlitsPerCyclePerNode(std::uint64_t cycles,
                                        int nodes) const;

 private:
  // Flow keys are raw endpoint coordinates (so the ledger works for any
  // topology's node space without knowing its extent) plus the traffic
  // class (-1 when untagged).
  using FlowKey = std::tuple<int, int, int, int, int>;
  static FlowKey flowKey(NodeId src, NodeId dst, int trafficClass) {
    return {src.x, src.y, dst.x, dst.y, trafficClass};
  }
  std::map<FlowKey, std::deque<PacketRecord>> flows_;
  LatencyStats packetLatency_;
  LatencyStats networkLatency_;
  std::array<LatencyStats, router::kNumTrafficClasses> classPacketLatency_;
  std::array<LatencyStats, router::kNumTrafficClasses> classNetworkLatency_;
  std::array<std::uint64_t, router::kNumTrafficClasses> classDelivered_{};
  std::array<std::uint64_t, router::kNumTrafficClasses> classQueued_{};
  std::uint64_t warmup_ = 0;
  std::uint64_t queuedCount_ = 0;
  std::uint64_t deliveredCount_ = 0;
  std::uint64_t flitsDelivered_ = 0;
  std::uint64_t flitsDeliveredAfterWarmup_ = 0;
};

}  // namespace rasoc::noc
