// Application mapping - the "design methodologies" use of RASoC the paper
// reports ("Such architecture has been used in the building of
// networks-on-chip and in researches targeting different issues in the NoC
// domain: design methodologies and SoC test planning").
//
// Given an application core graph (cores + directed communication flows
// with bandwidth demands in flits/cycle), place the cores onto topology
// nodes so communication stays local:
//
//  * cost(placement) = sum over flows of bandwidth x routed hop count
//    (Topology::hops, so torus/ring wrap links shorten distances),
//  * link loads are predicted by walking each flow's deterministic route
//    (Topology::routePath) and accumulating demand per directed link,
//  * mapGreedy() seeds a placement by laying cores out in descending
//    total-traffic order around the extent centre; mapAnnealed() improves
//    it with swap-based simulated annealing.
//
// The prediction is validated against the cycle-accurate network by
// attachFlows(), which replays the core graph as per-flow Bernoulli
// traffic (see examples/app_mapping.cpp and tests/noc/appmap_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/rng.hpp"

#include "noc/topology.hpp"

namespace rasoc::noc {

struct CoreGraph {
  struct Core {
    std::string name;
  };
  struct Flow {
    int src = 0;
    int dst = 0;
    double bandwidth = 0.0;  // offered flits/cycle
  };

  std::vector<Core> cores;
  std::vector<Flow> flows;

  int addCore(std::string name);
  void addFlow(int src, int dst, double bandwidth);
  void validate() const;

  // Total bandwidth touching a core (in + out), used for placement order.
  double trafficOf(int core) const;
};

// LinkId (the channel leaving `from` through `port`) lives in
// noc/topology.hpp alongside the routing interface that produces it.

struct MappingResult {
  std::vector<NodeId> placement;  // core index -> topology node
  double hopBandwidth = 0.0;      // sum of bandwidth x hops
  double maxLinkLoad = 0.0;       // worst predicted link load (flits/cycle)
  std::map<LinkId, double> linkLoads;
};

// Replays a placed core graph on the cycle-accurate mesh: one module per
// core, emitting Bernoulli packet traffic per outgoing flow at its
// configured bandwidth.
class FlowReplayer : public sim::Module {
 public:
  struct OutFlow {
    NodeId dst;
    double bandwidth = 0.0;
  };

  FlowReplayer(std::string name, class NetworkInterface& ni,
               std::vector<OutFlow> flows, int payloadFlits,
               std::uint64_t seed);

  std::uint64_t packetsGenerated() const { return packetsGenerated_; }

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  NetworkInterface* ni_;
  std::vector<OutFlow> flows_;
  int payloadFlits_;
  std::uint64_t seed_;
  sim::Xoshiro256 rng_;
  std::uint64_t packetsGenerated_ = 0;
};

// Builds one FlowReplayer per core of a placed graph and registers them
// with the network's simulator.  The returned modules must outlive the
// runs.
std::vector<std::unique_ptr<FlowReplayer>> attachFlows(
    class Network& network, const CoreGraph& graph,
    const MappingResult& mapping, int payloadFlits = 6,
    std::uint64_t seed = 1);

class Mapper {
 public:
  // Places onto the nodes of `topology`, costing flows by its routed
  // distances; the topology must outlive the mapper.
  explicit Mapper(std::shared_ptr<const Topology> topology,
                  std::uint64_t seed = 1);

  // Convenience: a mapper over a standalone 2D mesh of `shape`.
  explicit Mapper(MeshShape shape, std::uint64_t seed = 1);

  // Traffic-descending placement spiralling out from the extent centre.
  MappingResult mapGreedy(const CoreGraph& graph) const;

  // Swap-based simulated annealing starting from the greedy placement.
  MappingResult mapAnnealed(const CoreGraph& graph, int iterations = 2000);

  // Scores an arbitrary placement (must be a permutation prefix of the
  // topology's nodes, one entry per core).
  MappingResult evaluate(const CoreGraph& graph,
                         std::vector<NodeId> placement) const;

  // The directed links an XY-routed packet src -> dst traverses on a plain
  // mesh (kept for callers reasoning about meshes without a topology).
  static std::vector<LinkId> xyPath(NodeId src, NodeId dst);

 private:
  double cost(const CoreGraph& graph,
              const std::vector<NodeId>& placement) const;

  std::shared_ptr<const Topology> topology_;
  sim::Xoshiro256 rng_;
};

}  // namespace rasoc::noc
