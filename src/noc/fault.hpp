/// \file
/// Fault-injection campaigns: seeded, reproducible schedules of link faults
/// driven across any Topology.
///
/// A FaultPlan is a flat list of FaultEvents — (link, kind, window, rate)
/// tuples — that the Network builder compiles into per-link
/// router::FaultWindow schedules on router::FaultyLink instances.  Plans
/// are plain data: build them by hand for targeted tests, or generate a
/// whole campaign with makeFaultPlan(), which scatters corruption windows,
/// stuck-ack stalls and link-down outages over the topology's links from a
/// single seed (same topology + same CampaignConfig ⇒ byte-identical plan).
///
/// Fault semantics live in router/faulty_link.hpp; the taxonomy and the
/// recovery protocol layered above it are documented in DESIGN.md §9.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noc/topology.hpp"
#include "router/faulty_link.hpp"

namespace rasoc::noc {

/// Kinds of link fault a campaign can schedule (see router::FaultWindow).
using FaultKind = router::FaultWindow::Kind;

/// Human-readable kind name ("corrupt" | "stuck_ack" | "link_down").
std::string_view name(FaultKind kind);

/// One scheduled fault on one directed link: active on cycles
/// [start, start + duration).  `rate` is the per-flit corruption
/// probability (Corrupt only; stall and outage windows ignore it).
struct FaultEvent {
  LinkId link;
  FaultKind kind = FaultKind::Corrupt;
  std::uint64_t start = 0;
  std::uint64_t duration = 0;
  double rate = 1.0;
};

/// "corrupt link(1,2)E [100,200) rate=0.05" — for logs and reports.
std::string describe(const FaultEvent& event);

/// A reproducible fault schedule over a topology's links.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// True when any event targets `link`.
  bool touches(const LinkId& link) const;

  /// The router-level window schedule for one link (possibly empty).
  std::vector<router::FaultWindow> windowsFor(const LinkId& link) const;

  /// Events of a given kind, in plan order.
  std::size_t count(FaultKind kind) const;

  /// Throws std::invalid_argument when an event names a link the topology
  /// does not have, has zero duration, or an out-of-range rate.
  void validate(const Topology& topology) const;
};

/// Knobs for makeFaultPlan().  The defaults describe an empty campaign;
/// raise corruptRate / stallEvents / dropEvents to afflict the network.
struct CampaignConfig {
  /// Cycles the generated windows may cover ([0, horizon)).
  std::uint64_t horizon = 10000;

  /// Per-flit corruption probability on afflicted links (0 = no corruption
  /// windows at all).
  double corruptRate = 0.0;

  /// Fraction of links (Bernoulli per link) given a whole-horizon
  /// corruption window at `corruptRate`.
  double corruptLinkFraction = 1.0;

  /// Total stuck-ack stall windows scattered over random links.
  int stallEvents = 0;

  /// Total link-down outage windows scattered over random links.
  int dropEvents = 0;

  /// Duration bounds (cycles, inclusive) for stall/outage windows.
  std::uint64_t minDuration = 16;
  std::uint64_t maxDuration = 128;

  std::uint64_t seed = 0xfa17;
};

/// Every directed inter-router link of `topology`, in deterministic
/// (node-index, port-index) order.
std::vector<LinkId> allLinks(const Topology& topology);

/// Generates a seeded campaign over the topology's links.  Deterministic:
/// the same topology and config always produce the same plan.
FaultPlan makeFaultPlan(const Topology& topology,
                        const CampaignConfig& config);

}  // namespace rasoc::noc
