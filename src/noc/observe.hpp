/// \file
/// Observability glue between the NoC layer and the telemetry subsystem:
/// the metric naming convention, heatmap extraction from an instrumented
/// network's registry, and the standard RunReport for bench/example output.
///
/// Network::enableTelemetry registers, per router at (x,y):
///   - `r<x>,<y>.flits_routed` — router-aggregate throughput
///   - `r<x>,<y>.<P>in.{flits,full_cycles,stall_cycles,occupancy}`
///   - `r<x>,<y>.<P>out.{flits,busy_cycles,grants,conflict_cycles}`
/// per network interface:
///   - `ni<x>,<y>.{flits_injected,flits_ejected,backpressure_cycles,
///     send_queue_flits}` plus, with reliability enabled,
///     `{retransmits,timeouts,duplicates_dropped}`
/// per fault-capable link (linkFaultRate > 0 or named by a FaultPlan):
///   - `link<x>,<y><P>.{flits_corrupted,flits_dropped,stall_cycles}`
/// and the network-level sampled gauges:
///   - `mesh.{in_flight_packets,send_queue_flits}` and, with reliability,
///     `net.reliability.{unacked_frames,backlog_frames}`
///   - with RouterParams::qosClasses,
///     `net.qos.<class>.{queued_packets,delivered_packets}` per traffic
///     class, plus a per-class `qos` section in buildRunReport
/// where <P> is a port letter (L,N,E,S,W); pruned-port series are absent.
///
/// Heatmaps are laid out over the topology extent, so a ring renders as a
/// single row.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/heatmap.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "noc/watchdog.hpp"

namespace rasoc::noc {

std::string routerMetricPrefix(NodeId n);      // "r<x>,<y>"
std::string niMetricPrefix(NodeId n);          // "ni<x>,<y>"
std::string linkMetricPrefix(const LinkId& l); // "link<x>,<y><P>"

// Per-router flits routed per cycle.
telemetry::MeshHeatmap throughputHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles);
telemetry::MeshHeatmap throughputHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles);

// Congestion score in [0,1]: channel-cycles lost to full buffers, stalled
// head flits and arbitration conflicts, normalized by the router's
// instantiated channel count and the observed cycles.
telemetry::MeshHeatmap congestionHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles);
telemetry::MeshHeatmap congestionHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles);

// Fraction of cycles the local NI was ready to inject but held back.
telemetry::MeshHeatmap backpressureHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles);
telemetry::MeshHeatmap backpressureHeatmap(
    const telemetry::MetricsRegistry& registry, MeshShape shape,
    std::uint64_t cycles);

// Fault events per cycle charged to each node's outgoing links: corrupted
// plus dropped flits plus stall cycles, summed over the node's fault-capable
// links (zero elsewhere).  Localizes which region of a campaign's faults
// actually bit.
telemetry::MeshHeatmap faultHeatmap(
    const telemetry::MetricsRegistry& registry, const Topology& topology,
    std::uint64_t cycles);

// The standard structured report: network configuration (the "mesh" key
// holds the extent for backward compatibility; "topology" names the
// instance), health flags, ledger statistics, optional watchdog snapshot,
// and - when the network was instrumented - the full metrics registry.
// Deterministic for a given seeded run.
telemetry::RunReport buildRunReport(std::string name, const Network& network,
                                    const Watchdog* watchdog = nullptr);

}  // namespace rasoc::noc
