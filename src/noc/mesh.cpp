#include "noc/mesh.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "noc/observe.hpp"

namespace rasoc::noc {

using router::Port;

namespace {

std::string nodeName(const char* prefix, NodeId n) {
  return std::string(prefix) + "(" + std::to_string(n.x) + "," +
         std::to_string(n.y) + ")";
}

}  // namespace

Mesh::Mesh(MeshConfig config) : config_(config) {
  config_.shape.validate();
  const MeshShape shape = config_.shape;

  const int maxOffset =
      std::max(shape.width, shape.height) - 1;
  if (maxOffset > router::ribMaxOffset(config_.params.m))
    throw std::invalid_argument(
        "mesh offsets exceed the RIB range; increase m");

  // Routers and NIs.
  for (int i = 0; i < shape.nodes(); ++i) {
    const NodeId n = shape.nodeAt(i);
    router::RouterParams params = config_.params;
    params.portMask = portMaskFor(shape, n);
    auto r = std::make_unique<router::Rasoc>(nodeName("r", n), params,
                                             config_.arbiter);
    NiOptions niOptions;
    niOptions.hlpParity = config_.hlpParity;
    auto ni = std::make_unique<NetworkInterface>(
        nodeName("ni", n), params, shape, n, r->in(Port::Local),
        r->out(Port::Local), ledger_, niOptions);
    sim_.add(*r);
    sim_.add(*ni);
    routers_.push_back(std::move(r));
    nis_.push_back(std::move(ni));
  }

  // Inter-router links, one per direction; fault-injecting when requested.
  auto connect = [&](NodeId from, Port out, NodeId to) {
    const std::string linkName =
        nodeName("link", from) + std::string(router::name(out));
    std::unique_ptr<router::Link> link;
    if (config_.linkFaultRate > 0.0) {
      auto faulty = std::make_unique<router::FaultyLink>(
          linkName, routers_[indexOf(from)]->out(out),
          routers_[indexOf(to)]->in(router::opposite(out)), config_.params.n,
          config_.linkFaultRate,
          config_.faultSeed + links_.size() * 131 + 7,
          config_.params.flowControl);
      faultyLinks_.push_back(faulty.get());
      link = std::move(faulty);
    } else {
      link = std::make_unique<router::Link>(
          linkName, routers_[indexOf(from)]->out(out),
          routers_[indexOf(to)]->in(router::opposite(out)),
          config_.params.flowControl);
    }
    sim_.add(*link);
    linkIndex_[{config_.shape.indexOf(from), router::index(out)}] =
        link.get();
    links_.push_back(std::move(link));
  };
  for (int y = 0; y < shape.height; ++y) {
    for (int x = 0; x < shape.width; ++x) {
      const NodeId n{x, y};
      if (x + 1 < shape.width) {
        connect(n, Port::East, NodeId{x + 1, y});
        connect(NodeId{x + 1, y}, Port::West, n);
      }
      if (y + 1 < shape.height) {
        connect(n, Port::North, NodeId{x, y + 1});
        connect(NodeId{x, y + 1}, Port::South, n);
      }
    }
  }

  // Worst-case combinational propagation spans the mesh diameter; give the
  // naive settle loop generous headroom (the event-driven kernel derives
  // its evaluation bound from the same knob).
  sim_.setMaxSettleIterations(32 + 8 * (shape.width + shape.height));
  sim_.setKernel(config_.kernel);
  sim_.reset();
}

void Mesh::attachTraffic(const TrafficConfig& traffic) {
  if (!generators_.empty())
    throw std::logic_error("traffic generators already attached");
  const MeshShape shape = config_.shape;
  for (int i = 0; i < shape.nodes(); ++i) {
    const NodeId n = shape.nodeAt(i);
    TrafficConfig cfg = traffic;
    cfg.seed = traffic.seed * 7919 + static_cast<std::uint64_t>(i) + 1;
    auto gen = std::make_unique<TrafficGenerator>(nodeName("tg", n), shape, n,
                                                  *nis_[indexOf(n)], cfg);
    sim_.add(*gen);
    generators_.push_back(std::move(gen));
  }
}

void Mesh::enableTelemetry(telemetry::MetricsRegistry& registry) {
  if (metrics_) throw std::logic_error("telemetry already enabled");
  metrics_ = &registry;
  const MeshShape shape = config_.shape;
  for (int i = 0; i < shape.nodes(); ++i) {
    const NodeId n = shape.nodeAt(i);
    routers_[static_cast<std::size_t>(i)]->attachMetrics(
        registry, routerMetricPrefix(n));
    const std::string prefix = niMetricPrefix(n) + ".";
    NiMetrics nm;
    nm.flitsInjected = &registry.counter(prefix + "flits_injected");
    nm.flitsEjected = &registry.counter(prefix + "flits_ejected");
    nm.backpressureCycles = &registry.counter(prefix + "backpressure_cycles");
    nm.sendQueueFlits =
        &registry.histogram(prefix + "send_queue_flits",
                            telemetry::Histogram::linearBounds(16));
    nis_[static_cast<std::size_t>(i)]->attachMetrics(nm);
  }
  // Mesh-level gauges, sampled once per committed cycle through the
  // simulator tick hook.
  telemetry::Gauge* inFlight = &registry.gauge("mesh.in_flight_packets");
  telemetry::Gauge* queuedFlits = &registry.gauge("mesh.send_queue_flits");
  sim_.addTickListener([this, inFlight, queuedFlits] {
    inFlight->sample(static_cast<double>(ledger_.inFlight()));
    std::size_t total = 0;
    for (const auto& ni : nis_) total += ni->sendQueueFlits();
    queuedFlits->sample(static_cast<double>(total));
  });
}

std::size_t Mesh::indexOf(NodeId n) const {
  if (!config_.shape.contains(n)) throw std::out_of_range("node off mesh");
  return static_cast<std::size_t>(config_.shape.indexOf(n));
}

router::Rasoc& Mesh::router(NodeId n) { return *routers_[indexOf(n)]; }

NetworkInterface& Mesh::ni(NodeId n) { return *nis_[indexOf(n)]; }

TrafficGenerator& Mesh::generator(NodeId n) {
  if (generators_.empty()) throw std::logic_error("no traffic attached");
  return *generators_[indexOf(n)];
}

void Mesh::reset() { sim_.reset(); }

void Mesh::run(std::uint64_t cycles) { sim_.run(cycles); }

bool Mesh::drain(std::uint64_t maxCycles) {
  return sim_.runUntil(
      [&] {
        if (ledger_.inFlight() != 0) return false;
        for (const auto& ni : nis_)
          if (!ni->idle()) return false;
        return true;
      },
      maxCycles);
}

bool Mesh::healthy() const {
  for (const auto& r : routers_)
    if (r->misrouteDetected() || r->overflowDetected()) return false;
  for (const auto& ni : nis_)
    if (ni->misdeliveryDetected()) return false;
  return true;
}

double Mesh::meanLinkUtilization() const {
  if (links_.empty() || sim_.cycle() == 0) return 0.0;
  double sum = 0.0;
  for (const auto& link : links_) sum += link->utilization(sim_.cycle());
  return sum / static_cast<double>(links_.size());
}

double Mesh::linkUtilization(NodeId from, router::Port port) const {
  const auto it =
      linkIndex_.find({config_.shape.indexOf(from), router::index(port)});
  if (it == linkIndex_.end())
    throw std::out_of_range("no such link on this mesh");
  if (sim_.cycle() == 0) return 0.0;  // no cycles observed yet
  return it->second->utilization(sim_.cycle());
}

std::uint64_t Mesh::flitsCorrupted() const {
  std::uint64_t total = 0;
  for (const router::FaultyLink* link : faultyLinks_)
    total += link->flitsCorrupted();
  return total;
}

std::uint64_t Mesh::parityErrorsDetected() const {
  std::uint64_t total = 0;
  for (const auto& ni : nis_) total += ni->parityErrors();
  return total;
}

std::uint64_t Mesh::unattributedPackets() const {
  std::uint64_t total = 0;
  for (const auto& ni : nis_) total += ni->unattributedPackets();
  return total;
}

double Mesh::maxLinkUtilization() const {
  if (links_.empty() || sim_.cycle() == 0) return 0.0;
  double peak = 0.0;
  for (const auto& link : links_)
    peak = std::max(peak, link->utilization(sim_.cycle()));
  return peak;
}

}  // namespace rasoc::noc
