#include "noc/traffic.hpp"

#include <stdexcept>
#include <string>

#include "sim/compile.hpp"

namespace rasoc::noc {

std::string_view name(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::UniformRandom: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "complement";
    case TrafficPattern::HotSpot: return "hotspot";
    case TrafficPattern::NearestNeighbor: return "neighbor";
  }
  return "?";
}

void validatePattern(TrafficPattern pattern, const Topology& topology,
                     const TrafficConfig& config) {
  const Extent extent = topology.extent();
  switch (pattern) {
    case TrafficPattern::UniformRandom:
      if (topology.nodes() < 2)
        throw std::invalid_argument("uniform traffic needs >= 2 nodes");
      return;
    case TrafficPattern::Transpose:
      if (extent.width != extent.height)
        throw std::invalid_argument(
            "transpose traffic needs a square extent, but " +
            topology.describe() + " is " + std::to_string(extent.width) +
            "x" + std::to_string(extent.height) +
            "; use BitComplement on rings");
      return;
    case TrafficPattern::BitComplement:
      return;  // the mirrored node exists in every extent
    case TrafficPattern::HotSpot:
      if (!topology.contains(config.hotspot))
        throw std::invalid_argument(
            "hotspot (" + std::to_string(config.hotspot.x) + "," +
            std::to_string(config.hotspot.y) + ") is not a node of " +
            topology.describe());
      if (topology.nodes() < 2)
        throw std::invalid_argument("hotspot traffic needs >= 2 nodes");
      return;
    case TrafficPattern::NearestNeighbor:
      return;  // the eastward wrap target exists in every extent
  }
  throw std::logic_error("unknown traffic pattern");
}

NodeId destinationFor(TrafficPattern pattern, NodeId src,
                      const Topology& topology, sim::Xoshiro256& rng,
                      const TrafficConfig& config) {
  const Extent extent = topology.extent();
  switch (pattern) {
    case TrafficPattern::UniformRandom: {
      if (topology.nodes() < 2)
        throw std::invalid_argument("uniform traffic needs >= 2 nodes");
      // Uniform over the other nodes: draw from nodes-1 and skip self.
      int pick = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(topology.nodes() - 1)));
      if (pick >= topology.indexOf(src)) ++pick;
      return topology.nodeAt(pick);
    }
    case TrafficPattern::Transpose:
      validatePattern(pattern, topology, config);
      return NodeId{src.y, src.x};
    case TrafficPattern::BitComplement:
      return NodeId{extent.width - 1 - src.x, extent.height - 1 - src.y};
    case TrafficPattern::HotSpot: {
      validatePattern(pattern, topology, config);
      if (rng.chance(config.hotspotFraction)) return config.hotspot;
      TrafficConfig uniform = config;
      return destinationFor(TrafficPattern::UniformRandom, src, topology, rng,
                            uniform);
    }
    case TrafficPattern::NearestNeighbor:
      return NodeId{(src.x + 1) % extent.width, src.y};
  }
  throw std::logic_error("unknown traffic pattern");
}

NodeId destinationFor(TrafficPattern pattern, NodeId src, MeshShape shape,
                      sim::Xoshiro256& rng, const TrafficConfig& config) {
  const MeshTopology topology(shape);
  return destinationFor(pattern, src, topology, rng, config);
}

TrafficGenerator::TrafficGenerator(std::string name,
                                   std::shared_ptr<const Topology> topology,
                                   NodeId self, NetworkInterface& ni,
                                   TrafficConfig config)
    : Module(std::move(name)),
      topology_(std::move(topology)),
      self_(self),
      ni_(&ni),
      config_(config),
      packetProbability_(config.offeredLoad /
                         static_cast<double>(config.packetFlits())),
      rng_(config.seed) {
  if (!topology_) throw std::invalid_argument("generator needs a topology");
  if (config_.offeredLoad < 0.0 || config_.offeredLoad > 1.0)
    throw std::invalid_argument("offered load must be in [0,1] flits/cycle");
  if (config_.payloadFlits < 1)
    throw std::invalid_argument("a packet needs at least one payload flit");
  topology_->indexOf(self_);  // bounds-check our own address
  validatePattern(config_.pattern, *topology_, config_);
}

TrafficGenerator::TrafficGenerator(std::string name, MeshShape shape,
                                   NodeId self, NetworkInterface& ni,
                                   TrafficConfig config)
    : TrafficGenerator(std::move(name), std::make_shared<MeshTopology>(shape),
                       self, ni, std::move(config)) {}

void TrafficGenerator::onReset() {
  rng_ = sim::Xoshiro256(config_.seed);
  packetsGenerated_ = 0;
  injectionsSkipped_ = 0;
  paused_ = false;
}

void TrafficGenerator::clockEdge() {
  if (paused_) return;
  if (!rng_.chance(packetProbability_)) return;
  // On a QoS network the throttle watches only this flow's class queue, so
  // a saturated Bulk queue cannot silence a Control generator on the same
  // NI — per-class injection isolation starts at the source.
  const std::size_t queued =
      ni_->qosEnabled() ? ni_->sendQueuePackets(config_.trafficClass)
                        : ni_->sendQueuePackets();
  if (queued >= config_.maxQueuedPackets) {
    ++injectionsSkipped_;
    return;
  }
  const NodeId dst = destinationFor(config_.pattern, self_, *topology_, rng_,
                                    config_);
  if (dst == self_) return;  // pattern fixed point: nothing to send
  std::vector<std::uint32_t> payload;
  payload.reserve(static_cast<std::size_t>(config_.payloadFlits));
  for (int i = 0; i < config_.payloadFlits; ++i)
    payload.push_back(static_cast<std::uint32_t>(rng_.next()));
  ni_->send(dst, payload, config_.trafficClass);
  ++packetsGenerated_;
}

bool TrafficGenerator::describe(sim::Lowering& lw) {
  lw.edgeCall(*this);
  return true;
}

}  // namespace rasoc::noc
