#include "noc/traffic.hpp"

#include <stdexcept>

namespace rasoc::noc {

std::string_view name(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::UniformRandom: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "complement";
    case TrafficPattern::HotSpot: return "hotspot";
    case TrafficPattern::NearestNeighbor: return "neighbor";
  }
  return "?";
}

NodeId destinationFor(TrafficPattern pattern, NodeId src, MeshShape shape,
                      sim::Xoshiro256& rng, const TrafficConfig& config) {
  switch (pattern) {
    case TrafficPattern::UniformRandom: {
      if (shape.nodes() < 2)
        throw std::invalid_argument("uniform traffic needs >= 2 nodes");
      // Uniform over the other nodes: draw from nodes-1 and skip self.
      int pick = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(shape.nodes() - 1)));
      if (pick >= shape.indexOf(src)) ++pick;
      return shape.nodeAt(pick);
    }
    case TrafficPattern::Transpose:
      if (shape.width != shape.height)
        throw std::invalid_argument("transpose traffic needs a square mesh");
      return NodeId{src.y, src.x};
    case TrafficPattern::BitComplement:
      return NodeId{shape.width - 1 - src.x, shape.height - 1 - src.y};
    case TrafficPattern::HotSpot: {
      if (rng.chance(config.hotspotFraction)) return config.hotspot;
      TrafficConfig uniform = config;
      return destinationFor(TrafficPattern::UniformRandom, src, shape, rng,
                            uniform);
    }
    case TrafficPattern::NearestNeighbor:
      return NodeId{(src.x + 1) % shape.width, src.y};
  }
  throw std::logic_error("unknown traffic pattern");
}

TrafficGenerator::TrafficGenerator(std::string name, MeshShape shape,
                                   NodeId self, NetworkInterface& ni,
                                   TrafficConfig config)
    : Module(std::move(name)),
      shape_(shape),
      self_(self),
      ni_(&ni),
      config_(config),
      packetProbability_(config.offeredLoad /
                         static_cast<double>(config.packetFlits())),
      rng_(config.seed) {
  if (config_.offeredLoad < 0.0 || config_.offeredLoad > 1.0)
    throw std::invalid_argument("offered load must be in [0,1] flits/cycle");
  if (config_.payloadFlits < 1)
    throw std::invalid_argument("a packet needs at least one payload flit");
}

void TrafficGenerator::onReset() {
  rng_ = sim::Xoshiro256(config_.seed);
  packetsGenerated_ = 0;
  injectionsSkipped_ = 0;
}

void TrafficGenerator::clockEdge() {
  if (!rng_.chance(packetProbability_)) return;
  if (ni_->sendQueuePackets() >= config_.maxQueuedPackets) {
    ++injectionsSkipped_;
    return;
  }
  const NodeId dst = destinationFor(config_.pattern, self_, shape_, rng_,
                                    config_);
  if (dst == self_) return;  // pattern fixed point: nothing to send
  std::vector<std::uint32_t> payload;
  payload.reserve(static_cast<std::size_t>(config_.payloadFlits));
  for (int i = 0; i < config_.payloadFlits; ++i)
    payload.push_back(static_cast<std::uint32_t>(rng_.next()));
  ni_->send(dst, payload);
  ++packetsGenerated_;
}

}  // namespace rasoc::noc
