/// \file
/// Network interface: the "processing core" side of a router's Local port.
///
/// Sending: packets are queued, then streamed flit by flit over the local
/// input channel, honouring the link flow control (handshake or credits).
/// The wire format is:
///   - flit 0: header, bop set, low m bits = RIB computed by the topology
///   - flit 1: source node index (lets the destination close the ledger
///     entry)
///   - flit 2..: payload words, the last one with eop set
///
/// Receiving: the NI is always ready (in_ack = in_val); flits are collected
/// until eop, the source index is decoded, and the delivery ledger is
/// closed.  A sticky misdelivery flag records any packet whose residual RIB
/// is nonzero on arrival — the invariant that routing consumed the whole
/// offset the source computed.
///
/// With NiOptions::reliability enabled the NI additionally runs the
/// end-to-end protocol in noc/reliable.hpp: application payloads flow
/// through a ReliableTransport that frames them with sequence numbers and
/// checksums, retransmits on timeout, and releases them in order exactly
/// once at the receiver.  The option is off by default and the default wire
/// format and cycle behavior are bit-identical to the unprotected NI.
///
/// With RouterParams::qosClasses the NI is the tagging point of the QoS
/// story (DESIGN.md §13): send() takes a TrafficClass, encodes it into the
/// header flit's class bits and queues the packet on the class's inject VC
/// (router::qosInjectVc).  The queues are per VC — classes sharing an
/// inject VC share a FIFO, which preserves wormhole framing on that VC —
/// and injection is strict-priority work-conserving: each cycle the
/// highest inject VC with a pending flit and space downstream sends.
/// Under reliability, first transmissions carry the submitter's class and
/// retransmissions/ACKs ride ReliabilityConfig::trafficClass.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/module.hpp"
#include "telemetry/metrics.hpp"

#include "noc/reliable.hpp"
#include "noc/stats.hpp"
#include "noc/topology.hpp"
#include "router/channel.hpp"
#include "router/flit.hpp"
#include "router/params.hpp"

namespace rasoc::noc {

class FlowTracer;

/// Optional NI behaviours beyond the base wire protocol.
struct NiOptions {
  /// Higher Level Protocol parity (paper Section 2: "the n data bits can be
  /// extended to include HLP signals, like the ones typically used for data
  /// integrity control").  The top data bit of every non-header flit
  /// carries even parity over the lower n-1 bits; the receiver checks it
  /// and counts violations.  Headers stay unprotected because their RIB is
  /// legitimately rewritten at every hop.
  bool hlpParity = false;

  /// End-to-end retransmission protocol (see noc/reliable.hpp).  Costs one
  /// control word and one checksum word per packet plus ACK/NACK traffic;
  /// leaves default runs untouched when disabled.
  ReliabilityConfig reliability;

  /// Virtual channel new packets are injected on (numVCs > 1 only; the
  /// network builder picks the first adaptive VC so escape VCs stay clear
  /// for in-flight traffic).  Ignored at numVCs == 1 and under
  /// RouterParams::qosClasses, where each class has its own inject VC.
  int injectVc = 0;

  /// Escape VCs of the attached router (1 on meshes, 2 on wrapping
  /// topologies); the QoS class→VC map needs it to compute per-class
  /// inject VCs.  Only read when RouterParams::qosClasses is set.
  int escapeVCs = 1;
};

/// Opt-in injection-side instrumentation (telemetry subsystem).
struct NiMetrics {
  telemetry::Counter* flitsInjected = nullptr;       ///< flits into the router
  telemetry::Counter* flitsEjected = nullptr;        ///< flits out of the router
  telemetry::Counter* backpressureCycles = nullptr;  ///< pending flit held back
  telemetry::Histogram* sendQueueFlits = nullptr;    ///< per-cycle queue depth
  // Reliability protocol counters (incremented only when it is enabled).
  telemetry::Counter* retransmits = nullptr;
  telemetry::Counter* timeouts = nullptr;
  telemetry::Counter* duplicatesDropped = nullptr;
};

/// One node's traffic endpoint: queues outbound packets, streams them into
/// the router's Local port, reassembles inbound flits and closes delivery
/// ledger entries.
class NetworkInterface : public sim::Module {
 public:
  /// The topology supplies the node indexing used by the source-index flit
  /// and the RIB written into every header; it must outlive the interface
  /// (the shared_ptr keeps it alive).
  NetworkInterface(std::string name, const router::RouterParams& params,
                   std::shared_ptr<const Topology> topology, NodeId self,
                   router::ChannelWires& toRouter,
                   router::ChannelWires& fromRouter, DeliveryLedger& ledger,
                   NiOptions options = {});

  /// Convenience: an interface on a standalone 2D mesh of `shape`.
  NetworkInterface(std::string name, const router::RouterParams& params,
                   MeshShape shape, NodeId self,
                   router::ChannelWires& toRouter,
                   router::ChannelWires& fromRouter, DeliveryLedger& ledger,
                   NiOptions options = {});

  /// Queues a packet of `payload` words for `dst` (throws on dst == self:
  /// an input channel may never request its own port).  With reliability
  /// enabled the payload is handed to the transport, which frames it and
  /// may delay it in a per-destination window backlog.  `cls` tags the
  /// packet on a QoS network (RouterParams::qosClasses); ignored otherwise.
  void send(NodeId dst, const std::vector<std::uint32_t>& payload,
            router::TrafficClass cls = router::TrafficClass::BestEffort);

  /// True when the attached router maps traffic classes onto VCs.
  bool qosEnabled() const { return params_.qosClasses; }

  /// Flits currently queued for the wire (all frame types).
  std::size_t sendQueueFlits() const { return sendQueueFlits_; }
  /// Packets queued for the wire plus, under reliability, backlogged
  /// payloads waiting for window space (traffic generators throttle on it).
  std::size_t sendQueuePackets() const;
  /// QoS networks: packets queued on `cls`'s inject VC (shared with any
  /// class mapping to the same VC).  Per-class generator throttling reads
  /// this instead of the aggregate so one class cannot stall another's
  /// injection.
  std::size_t sendQueuePackets(router::TrafficClass cls) const;
  /// Nothing queued and (under reliability) no frame awaiting an ACK.
  bool idle() const;

  std::uint64_t packetsSent() const { return packetsSent_; }
  std::uint64_t packetsReceived() const { return packetsReceived_; }
  bool misdeliveryDetected() const { return misdelivery_; }

  /// HLP parity diagnostics (always zero when hlpParity is off).
  std::uint64_t parityErrors() const { return parityErrors_; }
  /// Packets whose ledger entry could not be closed (source-index flit
  /// corrupted beyond attribution); only possible under fault injection.
  std::uint64_t unattributedPackets() const { return unattributed_; }

  /// Usable payload bits per flit (n, minus one when parity is enabled).
  int payloadBits() const;

  /// Sender-side credit counter for virtual channel `v` (meaningful under
  /// credit flow control with numVCs > 1; tests pair it with the local
  /// input channel's occupancy for the conservation invariant).
  int vcSendCredits(int v) const {
    return vcCredits_[static_cast<std::size_t>(v)];
  }

  /// Payload words of every received packet, in arrival order (the source
  /// index flit is stripped; under reliability, protocol framing too).
  /// Tests use this to check payload integrity.
  const std::vector<std::vector<std::uint32_t>>& received() const {
    return received_;
  }
  void clearReceived() { received_.clear(); }

  std::uint64_t cycle() const { return cycle_; }

  /// Reliability protocol counters, or nullptr when the protocol is off.
  const ReliabilityStats* reliabilityStats() const {
    return transport_ ? &transport_->stats() : nullptr;
  }
  /// The protocol engine, or nullptr when the protocol is off (tests).
  const ReliableTransport* transport() const { return transport_.get(); }

  /// Enables instrumentation; the metrics must outlive the interface.
  void attachMetrics(const NiMetrics& metrics);

  /// Attaches the flow tracer (Network::enableTracing).  The NI reports
  /// only wire-packet enqueues — everything downstream is reconstructed
  /// from wires and counters — but must do so before any packet is queued
  /// so the tracer's shadow stream stays aligned with sendQueue_.
  void setTracer(FlowTracer* tracer) { tracer_ = tracer; }

  /// Compiled-kernel lowering: the NI walks deque/transport state, so it
  /// stays behavioural — a declared thunk (skipping write discovery so the
  /// send queue is untouched at compile time) plus a clockEdge() call.
  bool describe(sim::Lowering& lw) override;

 protected:
  void onReset() override;
  void evaluate() override;
  void clockEdge() override;

 private:
  bool creditMode() const {
    return flowControl_ == router::FlowControl::CreditBased;
  }
  bool vcMode() const { return params_.numVCs > 1; }
  // Inject VC for a class under qosClasses (options_.injectVc otherwise).
  int injectVcFor(router::TrafficClass cls) const;
  // QoS: the inject VC evaluate() schedules this cycle, or -1.  Strict
  // priority: highest VC (= highest class) with a pending flit and
  // downstream space wins.
  int scheduledInjectVc() const;
  // Packet-completion step shared by the single-queue (numVCs == 1) and
  // per-VC reassembly paths.
  void acceptRxFlit(const router::Flit& flit, std::vector<router::Flit>& buf);

  // Even-parity protect / check over the payload word layout.
  std::uint32_t parityProtect(std::uint32_t word) const;
  bool parityOk(std::uint32_t word) const;

  void enqueueFrame(ReliableTransport::WireFrame&& frame);
  void pumpTransport();

  router::RouterParams params_;
  NiOptions options_;
  router::FlowControl flowControl_;
  std::shared_ptr<const Topology> topology_;
  NodeId self_;
  router::ChannelWires* toRouter_;
  router::ChannelWires* fromRouter_;
  DeliveryLedger* ledger_;
  std::unique_ptr<ReliableTransport> transport_;  // null when disabled

  // Send side.
  struct OutPacket {
    NodeId dst;
    std::vector<router::Flit> flits;
    std::size_t next = 0;
    // Reliability bookkeeping: `frameId` != 0 reports back to the
    // transport when fully streamed; `tracked` marks packets the delivery
    // ledger accounts (first transmissions — never ACKs/retransmissions).
    std::uint64_t frameId = 0;
    bool tracked = true;
    // Delivery-ledger flow class of a tracked packet (-1 off QoS).
    int ledgerClass = -1;
  };
  // The single queue when QoS is off; per-inject-VC queues under
  // qosClasses, so a backed-up Bulk queue never blocks a Control packet
  // behind it (queueFor() routes between them).
  std::deque<OutPacket> sendQueue_;
  std::array<std::deque<OutPacket>, router::kMaxVCs> vcSendQueue_;
  std::size_t sendQueueFlits_ = 0;
  int credits_ = 0;

  // The send queue feeding inject VC `vc`.
  std::deque<OutPacket>& queueFor(int vc);
  const std::deque<OutPacket>& queueFor(int vc) const;

  // Receive side.  numVCs == 1 reassembles in rxFlits_; with VCs, packets
  // on different virtual channels interleave flit-by-flit on the physical
  // link, so each VC reassembles independently in rxVc_.
  std::vector<router::Flit> rxFlits_;
  std::array<std::vector<router::Flit>, router::kMaxVCs> rxVc_;
  std::vector<std::vector<std::uint32_t>> received_;
  // Send-side per-VC credits (credit flow control with numVCs > 1).
  std::array<int, router::kMaxVCs> vcCredits_{};

  std::uint64_t cycle_ = 0;
  std::uint64_t packetsSent_ = 0;
  std::uint64_t packetsReceived_ = 0;
  std::uint64_t parityErrors_ = 0;
  std::uint64_t unattributed_ = 0;
  bool misdelivery_ = false;

  NiMetrics metrics_;
  bool metricsAttached_ = false;
  FlowTracer* tracer_ = nullptr;
  ReliabilityStats lastMetricStats_;  // previous totals for counter deltas
};

}  // namespace rasoc::noc
