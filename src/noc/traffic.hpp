// Synthetic traffic generation for NoC evaluation (the workloads used by
// the SPIN/CLICHE-era NoC literature the paper builds on).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/module.hpp"
#include "sim/rng.hpp"

#include "noc/ni.hpp"
#include "noc/topology.hpp"

namespace rasoc::noc {

enum class TrafficPattern {
  UniformRandom,   // destination uniform over all other nodes
  Transpose,       // (x,y) -> (y,x); requires a square mesh
  BitComplement,   // (x,y) -> (W-1-x, H-1-y)
  HotSpot,         // a fraction of traffic targets one hot node
  NearestNeighbor  // East neighbour with wrap to column 0
};

std::string_view name(TrafficPattern pattern);

struct TrafficConfig {
  TrafficPattern pattern = TrafficPattern::UniformRandom;
  // Offered load in flits per cycle per node (0..1: a link carries at most
  // one flit per cycle).
  double offeredLoad = 0.1;
  // Payload words per packet, excluding header and source-index flits.
  int payloadFlits = 6;
  // HotSpot only: the hot node and the probability of targeting it.
  NodeId hotspot{0, 0};
  double hotspotFraction = 0.5;
  std::uint64_t seed = 1;
  // Source-queue cap in packets; generation pauses when the NI is this far
  // behind (models finite-core injection and keeps saturation runs stable).
  std::size_t maxQueuedPackets = 4;
  // QoS class the generated packets are tagged with.  Only honoured on
  // networks built with RouterParams::qosClasses; ignored (and harmless)
  // otherwise.  On a QoS network the throttle above is per class: a Bulk
  // flood backing up its own inject queue must not silence a Control
  // generator sharing the same NI.
  router::TrafficClass trafficClass = router::TrafficClass::BestEffort;

  int packetFlits() const { return payloadFlits + 2; }
};

// One flow of a mixed-class workload: a traffic config plus the class its
// packets ride.  Network::attachTraffic(vector<FlowSpec>) builds one
// generator per (flow, node) pair, so e.g. a low-rate Control flow and a
// saturating Bulk flood can share every node.
struct FlowSpec {
  router::TrafficClass trafficClass = router::TrafficClass::BestEffort;
  TrafficConfig traffic;
};

// Throws std::invalid_argument when `pattern` cannot run on `topology`:
// Transpose needs a square extent, UniformRandom needs at least two nodes,
// and a HotSpot target must be a node of the topology.  Called by
// Network::attachTraffic and the TrafficGenerator constructor so bad
// configurations fail loudly before any packet is injected.
void validatePattern(TrafficPattern pattern, const Topology& topology,
                     const TrafficConfig& config);

// Destination for one packet from `src` under a pattern; may return src for
// patterns with fixed points (callers skip those injections).
NodeId destinationFor(TrafficPattern pattern, NodeId src,
                      const Topology& topology, sim::Xoshiro256& rng,
                      const TrafficConfig& config);

// Convenience for standalone 2D-mesh callers (delegates to the topology
// overload; same draws from `rng`, so destinations are identical).
NodeId destinationFor(TrafficPattern pattern, NodeId src, MeshShape shape,
                      sim::Xoshiro256& rng, const TrafficConfig& config);

// Bernoulli packet source attached to one NI.
class TrafficGenerator : public sim::Module {
 public:
  // The topology defines the destination space; it must outlive the
  // generator (the shared_ptr keeps it alive).
  TrafficGenerator(std::string name,
                   std::shared_ptr<const Topology> topology, NodeId self,
                   NetworkInterface& ni, TrafficConfig config);

  // Convenience: a generator on a standalone 2D mesh of `shape`.
  TrafficGenerator(std::string name, MeshShape shape, NodeId self,
                   NetworkInterface& ni, TrafficConfig config);

  std::uint64_t packetsGenerated() const { return packetsGenerated_; }
  std::uint64_t injectionsSkipped() const { return injectionsSkipped_; }

  // Stops offering load while paused (no injections, no RNG draws).  Lets
  // sweeps end the measurement window and drain the network instead of
  // racing generators that never go idle.  Cleared by reset.
  void setPaused(bool paused) { paused_ = paused; }
  bool paused() const { return paused_; }

  // Compiled-kernel lowering: purely sequential (no evaluate()), so the
  // module contributes only its clockEdge() to the edge tape.
  bool describe(sim::Lowering& lw) override;

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  std::shared_ptr<const Topology> topology_;
  NodeId self_;
  NetworkInterface* ni_;
  TrafficConfig config_;
  double packetProbability_;
  sim::Xoshiro256 rng_;
  std::uint64_t packetsGenerated_ = 0;
  std::uint64_t injectionsSkipped_ = 0;
  bool paused_ = false;
};

}  // namespace rasoc::noc
