#include "noc/appmap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "noc/network.hpp"
#include "noc/ni.hpp"

namespace rasoc::noc {

FlowReplayer::FlowReplayer(std::string name, NetworkInterface& ni,
                           std::vector<OutFlow> flows, int payloadFlits,
                           std::uint64_t seed)
    : Module(std::move(name)),
      ni_(&ni),
      flows_(std::move(flows)),
      payloadFlits_(payloadFlits),
      seed_(seed),
      rng_(seed) {
  if (payloadFlits_ < 1)
    throw std::invalid_argument("payloadFlits must be >= 1");
}

void FlowReplayer::onReset() {
  rng_ = sim::Xoshiro256(seed_);
  packetsGenerated_ = 0;
}

void FlowReplayer::clockEdge() {
  for (const OutFlow& flow : flows_) {
    const double packetProbability =
        flow.bandwidth / static_cast<double>(payloadFlits_ + 2);
    if (!rng_.chance(packetProbability)) continue;
    if (ni_->sendQueuePackets() >= 8) continue;  // finite injection queue
    std::vector<std::uint32_t> payload;
    payload.reserve(static_cast<std::size_t>(payloadFlits_));
    for (int i = 0; i < payloadFlits_; ++i)
      payload.push_back(static_cast<std::uint32_t>(rng_.next()));
    ni_->send(flow.dst, payload);
    ++packetsGenerated_;
  }
}

std::vector<std::unique_ptr<FlowReplayer>> attachFlows(
    Network& network, const CoreGraph& graph, const MappingResult& mapping,
    int payloadFlits, std::uint64_t seed) {
  graph.validate();
  if (mapping.placement.size() != graph.cores.size())
    throw std::invalid_argument("mapping does not cover every core");
  std::vector<std::unique_ptr<FlowReplayer>> replayers;
  for (std::size_t core = 0; core < graph.cores.size(); ++core) {
    std::vector<FlowReplayer::OutFlow> out;
    for (const CoreGraph::Flow& flow : graph.flows) {
      if (static_cast<std::size_t>(flow.src) != core) continue;
      out.push_back(FlowReplayer::OutFlow{
          mapping.placement[static_cast<std::size_t>(flow.dst)],
          flow.bandwidth});
    }
    if (out.empty()) continue;
    const NodeId at = mapping.placement[core];
    auto replayer = std::make_unique<FlowReplayer>(
        "flow:" + graph.cores[core].name, network.ni(at), std::move(out),
        payloadFlits, seed * 131 + core + 1);
    network.simulator().add(*replayer);
    replayers.push_back(std::move(replayer));
  }
  return replayers;
}

int CoreGraph::addCore(std::string name) {
  cores.push_back(Core{std::move(name)});
  return static_cast<int>(cores.size()) - 1;
}

void CoreGraph::addFlow(int src, int dst, double bandwidth) {
  flows.push_back(Flow{src, dst, bandwidth});
}

void CoreGraph::validate() const {
  const int n = static_cast<int>(cores.size());
  for (const Flow& flow : flows) {
    if (flow.src < 0 || flow.src >= n || flow.dst < 0 || flow.dst >= n)
      throw std::invalid_argument("flow references an unknown core");
    if (flow.src == flow.dst)
      throw std::invalid_argument("flow must connect two distinct cores");
    if (flow.bandwidth < 0.0 || flow.bandwidth > 1.0)
      throw std::invalid_argument("flow bandwidth must be in [0,1]");
  }
}

double CoreGraph::trafficOf(int core) const {
  double total = 0.0;
  for (const Flow& flow : flows) {
    if (flow.src == core || flow.dst == core) total += flow.bandwidth;
  }
  return total;
}

Mapper::Mapper(std::shared_ptr<const Topology> topology, std::uint64_t seed)
    : topology_(std::move(topology)), rng_(seed) {
  if (!topology_) throw std::invalid_argument("mapper needs a topology");
  topology_->validate();
}

Mapper::Mapper(MeshShape shape, std::uint64_t seed)
    : Mapper(std::make_shared<MeshTopology>(shape), seed) {}

std::vector<LinkId> Mapper::xyPath(NodeId src, NodeId dst) {
  std::vector<LinkId> path;
  NodeId at = src;
  while (at.x != dst.x) {
    const bool east = dst.x > at.x;
    path.push_back(LinkId{at, east ? router::Port::East : router::Port::West});
    at.x += east ? 1 : -1;
  }
  while (at.y != dst.y) {
    const bool north = dst.y > at.y;
    path.push_back(
        LinkId{at, north ? router::Port::North : router::Port::South});
    at.y += north ? 1 : -1;
  }
  return path;
}

double Mapper::cost(const CoreGraph& graph,
                    const std::vector<NodeId>& placement) const {
  double total = 0.0;
  for (const CoreGraph::Flow& flow : graph.flows) {
    const NodeId a = placement[static_cast<std::size_t>(flow.src)];
    const NodeId b = placement[static_cast<std::size_t>(flow.dst)];
    total += flow.bandwidth * static_cast<double>(topology_->hops(a, b));
  }
  return total;
}

MappingResult Mapper::evaluate(const CoreGraph& graph,
                               std::vector<NodeId> placement) const {
  graph.validate();
  if (placement.size() != graph.cores.size())
    throw std::invalid_argument("placement size must match core count");
  std::vector<int> used;
  for (NodeId n : placement) {
    if (!topology_->contains(n))
      throw std::invalid_argument("placement node outside the topology");
    used.push_back(topology_->indexOf(n));
  }
  std::sort(used.begin(), used.end());
  if (std::adjacent_find(used.begin(), used.end()) != used.end())
    throw std::invalid_argument("two cores mapped to the same node");

  MappingResult result;
  result.placement = std::move(placement);
  result.hopBandwidth = cost(graph, result.placement);
  for (const CoreGraph::Flow& flow : graph.flows) {
    const NodeId a = result.placement[static_cast<std::size_t>(flow.src)];
    const NodeId b = result.placement[static_cast<std::size_t>(flow.dst)];
    for (const LinkId& link : topology_->routePath(a, b))
      result.linkLoads[link] += flow.bandwidth;
  }
  for (const auto& [link, load] : result.linkLoads)
    result.maxLinkLoad = std::max(result.maxLinkLoad, load);
  return result;
}

MappingResult Mapper::mapGreedy(const CoreGraph& graph) const {
  graph.validate();
  const int coreCount = static_cast<int>(graph.cores.size());
  if (coreCount > topology_->nodes())
    throw std::invalid_argument("more cores than topology nodes");

  // Cores in descending traffic order.
  std::vector<int> order(static_cast<std::size_t>(coreCount));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return graph.trafficOf(a) > graph.trafficOf(b);
  });

  // Nodes in ascending distance from the extent centre, so the hottest
  // cores sit where average distance to everyone else is least (on a
  // torus/ring every node is equivalent; the ordering is then just a
  // deterministic tie-break).
  std::vector<NodeId> nodes;
  for (int i = 0; i < topology_->nodes(); ++i)
    nodes.push_back(topology_->nodeAt(i));
  const Extent extent = topology_->extent();
  const double cx = (extent.width - 1) / 2.0;
  const double cy = (extent.height - 1) / 2.0;
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    const double da = std::abs(a.x - cx) + std::abs(a.y - cy);
    const double db = std::abs(b.x - cx) + std::abs(b.y - cy);
    return da < db;
  });

  std::vector<NodeId> placement(static_cast<std::size_t>(coreCount));
  for (int i = 0; i < coreCount; ++i)
    placement[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        nodes[static_cast<std::size_t>(i)];
  return evaluate(graph, std::move(placement));
}

MappingResult Mapper::mapAnnealed(const CoreGraph& graph, int iterations) {
  MappingResult best = mapGreedy(graph);
  std::vector<NodeId> current = best.placement;
  double currentCost = best.hopBandwidth;

  // Candidate nodes: all of them, so cores can also move to empty slots.
  std::vector<NodeId> nodes;
  for (int i = 0; i < topology_->nodes(); ++i)
    nodes.push_back(topology_->nodeAt(i));

  const double startTemp = std::max(1.0, currentCost / 4.0);
  for (int iter = 0; iter < iterations; ++iter) {
    const double temp =
        startTemp * (1.0 - static_cast<double>(iter) / iterations) + 1e-6;

    std::vector<NodeId> candidate = current;
    const auto core = static_cast<std::size_t>(
        rng_.below(candidate.size()));
    const NodeId target =
        nodes[static_cast<std::size_t>(rng_.below(nodes.size()))];
    // If another core already sits there, swap; otherwise move.
    bool swapped = false;
    for (auto& node : candidate) {
      if (node == target) {
        std::swap(node, candidate[core]);
        swapped = true;
        break;
      }
    }
    if (!swapped) candidate[core] = target;

    const double candidateCost = cost(graph, candidate);
    const double delta = candidateCost - currentCost;
    if (delta <= 0.0 || rng_.chance(std::exp(-delta / temp))) {
      current = std::move(candidate);
      currentCost = candidateCost;
      if (currentCost < best.hopBandwidth) {
        best = evaluate(graph, current);
      }
    }
  }
  return best;
}

}  // namespace rasoc::noc
