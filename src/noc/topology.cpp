#include "noc/topology.hpp"

#include <algorithm>

namespace rasoc::noc {

using router::Port;

std::string Topology::describe() const {
  const Extent e = extent();
  if (kind() == "ring") return "ring" + std::to_string(nodes());
  return std::string(kind()) + std::to_string(e.width) + "x" +
         std::to_string(e.height);
}

std::vector<LinkId> Topology::routePath(NodeId src, NodeId dst,
                                        router::RoutingAlgorithm algorithm,
                                        int numVCs) const {
  indexOf(src);  // bounds-check both endpoints
  indexOf(dst);
  std::vector<LinkId> path;
  NodeId at = src;
  router::Rib remaining = ribFor(src, dst, numVCs);
  // Any sane route visits each node at most twice (once per dimension).
  int guard = 2 * nodes() + 4;
  while (remaining != router::Rib{0, 0}) {
    const Port out = router::route(algorithm, remaining);
    const std::optional<NodeId> next = neighbor(at, out);
    if (!next)
      throw std::logic_error(describe() + ": route " +
                             std::string(router::name(out)) +
                             " out of a node with no such link");
    path.push_back(LinkId{at, out});
    remaining = router::consumeHop(remaining, out);
    at = *next;
    if (--guard < 0)
      throw std::logic_error(describe() + ": route does not converge");
  }
  if (!(at == dst))
    throw std::logic_error(describe() + ": route missed its destination");
  return path;
}

int Topology::hops(NodeId src, NodeId dst) const {
  if (src == dst) return 1;
  return static_cast<int>(routePath(src, dst).size()) + 1;
}

int Topology::maxRibOffset() const {
  int worst = 0;
  for (int s = 0; s < nodes(); ++s) {
    for (int d = 0; d < nodes(); ++d) {
      const router::Rib r = rib(nodeAt(s), nodeAt(d));
      worst = std::max({worst, r.dx, -r.dx, r.dy, -r.dy});
    }
  }
  return worst;
}

std::vector<int> Topology::partition(int parts) const {
  if (parts < 1)
    throw std::invalid_argument("Topology::partition: need >= 1 part");
  const int count = nodes();
  std::vector<int> assignment(static_cast<std::size_t>(count), 0);
  // Balanced contiguous blocks of the row-major node order; block sizes
  // differ by at most one node.
  const int base = count / parts;
  const int extra = count % parts;
  int next = 0;
  for (int p = 0; p < parts && next < count; ++p) {
    const int size = base + (p < extra ? 1 : 0);
    for (int i = 0; i < size; ++i)
      assignment[static_cast<std::size_t>(next++)] = p;
  }
  return assignment;
}

void Topology::checkAdjacency() const {
  for (int i = 0; i < nodes(); ++i) {
    const NodeId n = nodeAt(i);
    const unsigned mask = portMask(n);
    if ((mask & (1u << router::index(Port::Local))) == 0)
      throw std::logic_error(describe() + ": node without a Local port");
    for (Port p : router::kAllPorts) {
      if (p == Port::Local) continue;
      const bool instantiated = (mask >> router::index(p)) & 1u;
      const std::optional<NodeId> nb = neighbor(n, p);
      if (instantiated != nb.has_value())
        throw std::logic_error(describe() +
                               ": port mask disagrees with adjacency");
      if (!nb) continue;
      if (!contains(*nb))
        throw std::logic_error(describe() + ": neighbor outside topology");
      const std::optional<NodeId> back = neighbor(*nb, router::opposite(p));
      if (!back || !(*back == n))
        throw std::logic_error(describe() + ": asymmetric adjacency");
    }
  }
}

// --- MeshTopology ----------------------------------------------------------

unsigned MeshTopology::portMask(NodeId n) const {
  indexOf(n);
  return portMaskFor(shape_, n);
}

std::optional<NodeId> MeshTopology::neighbor(NodeId n, Port port) const {
  indexOf(n);
  NodeId next = n;
  switch (port) {
    case Port::North: next.y += 1; break;
    case Port::South: next.y -= 1; break;
    case Port::East: next.x += 1; break;
    case Port::West: next.x -= 1; break;
    case Port::Local: return std::nullopt;
  }
  if (!shape_.contains(next)) return std::nullopt;
  return next;
}

router::Rib MeshTopology::rib(NodeId src, NodeId dst) const {
  indexOf(src);
  indexOf(dst);
  return ribBetween(src, dst);
}

int MeshTopology::hops(NodeId src, NodeId dst) const {
  return xyHops(src, dst);
}

int MeshTopology::maxRibOffset() const {
  return std::max(shape_.width, shape_.height) - 1;
}

std::string_view MeshTopology::deadlockFreedom() const {
  return "dimension-ordered (XY/YX) routing on a mesh permits no cyclic "
         "channel dependency";
}

// --- wrapping rings --------------------------------------------------------

int minimalRingOffset(int src, int dst, int size) {
  if (src == dst) return 0;
  const int up = (dst - src + size) % size;  // increasing-direction hops
  const int down = size - up;                // decreasing-direction hops
  if (up != down) return up < down ? up : -down;
  return src < dst ? up : -down;  // tie: prefer the non-wrapping path
}

// --- TorusTopology ---------------------------------------------------------

unsigned TorusTopology::portMask(NodeId n) const {
  indexOf(n);
  unsigned mask = 1u << router::index(Port::Local);
  if (shape_.width > 1) {
    mask |= 1u << router::index(Port::East);
    mask |= 1u << router::index(Port::West);
  }
  if (shape_.height > 1) {
    mask |= 1u << router::index(Port::North);
    mask |= 1u << router::index(Port::South);
  }
  return mask;
}

std::optional<NodeId> TorusTopology::neighbor(NodeId n, Port port) const {
  indexOf(n);
  const int w = shape_.width, h = shape_.height;
  switch (port) {
    case Port::North:
      if (h < 2) return std::nullopt;
      return NodeId{n.x, (n.y + 1) % h};
    case Port::South:
      if (h < 2) return std::nullopt;
      return NodeId{n.x, (n.y + h - 1) % h};
    case Port::East:
      if (w < 2) return std::nullopt;
      return NodeId{(n.x + 1) % w, n.y};
    case Port::West:
      if (w < 2) return std::nullopt;
      return NodeId{(n.x + w - 1) % w, n.y};
    case Port::Local: return std::nullopt;
  }
  return std::nullopt;
}

router::Rib TorusTopology::rib(NodeId src, NodeId dst) const {
  indexOf(src);
  indexOf(dst);
  // Without virtual channels routes stay inside the mesh sub-network: no
  // wrap link is ever used, so no ring cycle can close.
  return ribBetween(src, dst);
}

router::Rib TorusTopology::ribFor(NodeId src, NodeId dst, int numVCs) const {
  if (numVCs < 2) return rib(src, dst);
  indexOf(src);
  indexOf(dst);
  return router::Rib{minimalRingOffset(src.x, dst.x, shape_.width),
                     minimalRingOffset(src.y, dst.y, shape_.height)};
}

std::string_view TorusTopology::deadlockFreedom() const {
  return "dimension order breaks cross-axis cycles; numVCs == 1 routes "
         "never wrap (mesh sub-network), and numVCs >= 2 wrap routes ride "
         "the escape VC's dateline classes, which order every ring's "
         "channels acyclically";
}

// --- RingTopology ----------------------------------------------------------

NodeId RingTopology::nodeAt(int index) const {
  if (index < 0 || index >= count_)
    throw std::out_of_range("node index " + std::to_string(index) +
                            " outside " + std::to_string(count_) +
                            "-node ring");
  return NodeId{index, 0};
}

int RingTopology::indexOf(NodeId n) const {
  if (!contains(n))
    throw std::out_of_range("node (" + std::to_string(n.x) + "," +
                            std::to_string(n.y) + ") outside " +
                            std::to_string(count_) + "-node ring");
  return n.x;
}

unsigned RingTopology::portMask(NodeId n) const {
  indexOf(n);
  unsigned mask = 1u << router::index(Port::Local);
  if (count_ > 1) {
    mask |= 1u << router::index(Port::East);
    mask |= 1u << router::index(Port::West);
  }
  return mask;
}

std::optional<NodeId> RingTopology::neighbor(NodeId n, Port port) const {
  indexOf(n);
  if (count_ < 2) return std::nullopt;
  switch (port) {
    case Port::East: return NodeId{(n.x + 1) % count_, 0};
    case Port::West: return NodeId{(n.x + count_ - 1) % count_, 0};
    default: return std::nullopt;
  }
}

router::Rib RingTopology::rib(NodeId src, NodeId dst) const {
  indexOf(src);
  indexOf(dst);
  // Without virtual channels routes never wrap (see TorusTopology::rib).
  return router::Rib{dst.x - src.x, 0};
}

router::Rib RingTopology::ribFor(NodeId src, NodeId dst, int numVCs) const {
  if (numVCs < 2) return rib(src, dst);
  indexOf(src);
  indexOf(dst);
  return router::Rib{minimalRingOffset(src.x, dst.x, count_), 0};
}

std::string_view RingTopology::deadlockFreedom() const {
  return "numVCs == 1 routes never wrap (line sub-network); numVCs >= 2 "
         "wrap routes ride the escape VC's dateline classes, which order "
         "the East and West ring channels acyclically";
}

std::shared_ptr<const Topology> makeTopology(std::string_view kind, int width,
                                             int height) {
  if (kind == "mesh")
    return std::make_shared<MeshTopology>(MeshShape{width, height});
  if (kind == "torus")
    return std::make_shared<TorusTopology>(MeshShape{width, height});
  if (kind == "ring") return std::make_shared<RingTopology>(width * height);
  throw std::invalid_argument("unknown topology: " + std::string(kind));
}

}  // namespace rasoc::noc
