// Mesh compatibility layer over the topology-driven Network builder: a
// Mesh is a Network over a MeshTopology, configured with the historical
// MeshConfig (shape + router parameters).  New code targeting other
// topologies should construct a Network directly (see noc/network.hpp).
#pragma once

#include <memory>

#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace rasoc::noc {

struct MeshConfig {
  MeshShape shape{4, 4};
  router::RouterParams params{};
  router::ArbiterKind arbiter = router::ArbiterKind::RoundRobin;

  // Settle kernel for the mesh's simulator.  Compiled lowers the mesh to a
  // word-packed state arena plus a levelized op tape (see sim/compile.hpp)
  // and is the default; EventDriven evaluates only modules whose inputs
  // changed; Naive is the reference fixpoint kernel the equivalence suite
  // A/Bs against.
  sim::Simulator::Kernel kernel = sim::Simulator::Kernel::Compiled;

  // Worker threads for Kernel::ParallelEventDriven (see NetworkConfig).
  int threads = 1;

  // HLP parity in every NI (paper Section 2 extension); costs one data bit
  // per flit.
  bool hlpParity = false;

  // End-to-end NI retransmission protocol (see noc/reliable.hpp).
  ReliabilityConfig reliability;

  // Per-flit probability of a single payload-bit flip on each inter-router
  // link (0 = ideal links, plain Link modules).
  double linkFaultRate = 0.0;
  std::uint64_t faultSeed = 0xfa17;

  // Scheduled fault campaign (see noc/fault.hpp).
  FaultPlan faultPlan;

  // The topology-agnostic part of this configuration.
  NetworkConfig network() const {
    NetworkConfig cfg;
    cfg.params = params;
    cfg.arbiter = arbiter;
    cfg.kernel = kernel;
    cfg.threads = threads;
    cfg.hlpParity = hlpParity;
    cfg.reliability = reliability;
    cfg.linkFaultRate = linkFaultRate;
    cfg.faultSeed = faultSeed;
    cfg.faultPlan = faultPlan;
    return cfg;
  }
};

class Mesh : public Network {
 public:
  explicit Mesh(MeshConfig config)
      : Network(std::make_shared<MeshTopology>(config.shape),
                config.network()),
        meshConfig_(config) {}

  const MeshConfig& config() const { return meshConfig_; }
  MeshShape shape() const { return meshConfig_.shape; }

 private:
  MeshConfig meshConfig_;
};

}  // namespace rasoc::noc
