#include "noc/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rasoc::noc {

void LatencyStats::record(double sample) { samples_.push_back(sample); }

double LatencyStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyStats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double LatencyStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile q in [0,1]");
  if (sortedCount_ < samples_.size()) {
    const auto mergedEnd =
        static_cast<std::vector<double>::difference_type>(sorted_.size());
    sorted_.insert(sorted_.end(),
                   samples_.begin() +
                       static_cast<std::vector<double>::difference_type>(
                           sortedCount_),
                   samples_.end());
    std::sort(sorted_.begin() + mergedEnd, sorted_.end());
    std::inplace_merge(sorted_.begin(), sorted_.begin() + mergedEnd,
                       sorted_.end());
    sortedCount_ = samples_.size();
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::string LatencyStats::histogram(int bins, int barWidth) const {
  if (bins < 1 || barWidth < 1)
    throw std::invalid_argument("histogram needs >= 1 bin and bar width");
  std::ostringstream out;
  if (samples_.empty()) {
    out << "(no samples)\n";
    return out.str();
  }
  const double lo = min();
  const double hi = max();
  const double width = hi > lo ? (hi - lo) / bins : 1.0;
  std::vector<std::size_t> counts(static_cast<std::size_t>(bins), 0);
  for (double s : samples_) {
    auto bin = static_cast<std::size_t>((s - lo) / width);
    if (bin >= counts.size()) bin = counts.size() - 1;
    ++counts[bin];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  for (int b = 0; b < bins; ++b) {
    const double binLo = lo + b * width;
    const double binHi = binLo + width;
    const std::size_t count = counts[static_cast<std::size_t>(b)];
    const auto bar = static_cast<std::size_t>(
        peak == 0 ? 0
                  : (count * static_cast<std::size_t>(barWidth)) / peak);
    char label[64];
    std::snprintf(label, sizeof label, "[%8.1f, %8.1f) %8zu ", binLo, binHi,
                  count);
    out << label << std::string(bar, '#') << '\n';
  }
  return out.str();
}

void DeliveryLedger::onQueued(PacketRecord record) {
  const FlowKey key = flowKey(record.src, record.dst, record.trafficClass);
  flows_[key].push_back(record);
  ++queuedCount_;
  if (record.trafficClass >= 0)
    ++classQueued_[static_cast<std::size_t>(record.trafficClass)];
}

void DeliveryLedger::onHeaderInjected(NodeId src, NodeId dst,
                                      std::uint64_t cycle,
                                      int trafficClass) {
  const FlowKey key = flowKey(src, dst, trafficClass);
  auto it = flows_.find(key);
  if (it == flows_.end() || it->second.empty())
    throw std::logic_error("header injected for an unknown flow");
  for (PacketRecord& record : it->second) {
    if (!record.injected) {
      record.injected = true;
      record.injectedCycle = cycle;
      return;
    }
  }
  throw std::logic_error("header injected but every packet already in flight");
}

PacketRecord DeliveryLedger::onDelivered(NodeId src, NodeId dst,
                                         std::uint64_t cycle,
                                         int trafficClass) {
  const FlowKey key = flowKey(src, dst, trafficClass);
  auto it = flows_.find(key);
  if (it == flows_.end() || it->second.empty())
    throw std::logic_error("delivery for a flow with no open packets");
  PacketRecord record = it->second.front();
  it->second.pop_front();
  if (!record.injected)
    throw std::logic_error("packet delivered before its header was injected");
  ++deliveredCount_;
  flitsDelivered_ += static_cast<std::uint64_t>(record.flits);
  if (record.trafficClass >= 0)
    ++classDelivered_[static_cast<std::size_t>(record.trafficClass)];
  if (record.createdCycle >= warmup_) {
    const auto packetLat = static_cast<double>(cycle - record.createdCycle);
    const auto networkLat = static_cast<double>(cycle - record.injectedCycle);
    packetLatency_.record(packetLat);
    networkLatency_.record(networkLat);
    if (record.trafficClass >= 0) {
      const auto cls = static_cast<std::size_t>(record.trafficClass);
      classPacketLatency_[cls].record(packetLat);
      classNetworkLatency_[cls].record(networkLat);
    }
    flitsDeliveredAfterWarmup_ += static_cast<std::uint64_t>(record.flits);
  }
  return record;
}

bool DeliveryLedger::tryDeliver(NodeId src, NodeId dst, std::uint64_t cycle,
                                int trafficClass) {
  const FlowKey key = flowKey(src, dst, trafficClass);
  auto it = flows_.find(key);
  if (it == flows_.end() || it->second.empty() ||
      !it->second.front().injected)
    return false;
  onDelivered(src, dst, cycle, trafficClass);
  return true;
}

double DeliveryLedger::throughputFlitsPerCyclePerNode(std::uint64_t cycles,
                                                      int nodes) const {
  if (cycles == 0 || nodes == 0) return 0.0;
  return static_cast<double>(flitsDeliveredAfterWarmup_) /
         static_cast<double>(cycles) / static_cast<double>(nodes);
}

}  // namespace rasoc::noc
