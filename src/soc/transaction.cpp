#include "soc/transaction.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasoc::soc {

std::vector<std::uint32_t> TxnPacket::encode() const {
  return {txnId, static_cast<std::uint32_t>(kind), replyTo, addr, data};
}

TxnPacket TxnPacket::decode(const std::vector<std::uint32_t>& payload) {
  if (payload.size() != 5)
    throw std::invalid_argument("transaction payload must be 5 words");
  TxnPacket packet;
  packet.txnId = payload[0];
  packet.kind = static_cast<TxnKind>(payload[1]);
  packet.replyTo = payload[2];
  packet.addr = payload[3];
  packet.data = payload[4];
  return packet;
}

// --- MemoryTarget -----------------------------------------------------------

MemoryTarget::MemoryTarget(std::string name, noc::NetworkInterface& ni,
                           noc::MeshShape shape, int accessLatency,
                           std::size_t words)
    : Module(std::move(name)),
      ni_(&ni),
      shape_(shape),
      accessLatency_(accessLatency),
      mem_(words, 0) {
  if (accessLatency_ < 0) throw std::invalid_argument("negative latency");
  if (words == 0) throw std::invalid_argument("empty memory");
}

std::uint32_t MemoryTarget::peek(std::uint32_t addr) const {
  return mem_.at(addr);
}

void MemoryTarget::onReset() {
  std::fill(mem_.begin(), mem_.end(), 0u);
  consumed_ = 0;
  pending_.clear();
  cycle_ = 0;
  readsServed_ = 0;
  writesServed_ = 0;
}

void MemoryTarget::clockEdge() {
  // Accept newly arrived request packets into the access pipeline.
  const auto& received = ni_->received();
  while (consumed_ < received.size()) {
    const TxnPacket request = TxnPacket::decode(received[consumed_]);
    ++consumed_;
    pending_.push_back(Pending{
        cycle_ + static_cast<std::uint64_t>(accessLatency_), request});
  }

  // Serve at most one access per cycle (single-ported memory).
  if (!pending_.empty() && pending_.front().readyCycle <= cycle_) {
    const TxnPacket request = pending_.front().request;
    pending_.pop_front();
    TxnPacket response = request;
    if (request.addr >= mem_.size())
      throw std::out_of_range("memory access beyond the array");
    if (request.kind == TxnKind::Write) {
      mem_[request.addr] = request.data;
      response.kind = TxnKind::WriteResponse;
      ++writesServed_;
    } else if (request.kind == TxnKind::Read) {
      response.data = mem_[request.addr];
      response.kind = TxnKind::ReadResponse;
      ++readsServed_;
    } else {
      throw std::logic_error("target received a response packet");
    }
    ni_->send(shape_.nodeAt(static_cast<int>(request.replyTo)),
              response.encode());
  }
  ++cycle_;
}

// --- Initiator ----------------------------------------------------------------

Initiator::Initiator(std::string name, noc::NetworkInterface& ni,
                     noc::MeshShape shape, noc::NodeId self,
                     int maxOutstanding)
    : Module(std::move(name)),
      ni_(&ni),
      shape_(shape),
      self_(self),
      maxOutstanding_(maxOutstanding) {
  if (maxOutstanding_ < 1)
    throw std::invalid_argument("need at least one outstanding slot");
}

void Initiator::onReset() {
  // The script is testbench configuration and survives reset; dynamic
  // state does not.
  outstanding_.clear();
  shadow_.clear();
  consumed_ = 0;
  nextTxnId_ = 1;
  cycle_ = 0;
  completed_ = 0;
  dataErrors_ = 0;
}

void Initiator::clockEdge() {
  // Retire responses.
  const auto& received = ni_->received();
  while (consumed_ < received.size()) {
    const TxnPacket response = TxnPacket::decode(received[consumed_]);
    ++consumed_;
    const auto it = outstanding_.find(response.txnId);
    if (it == outstanding_.end())
      throw std::logic_error("response for an unknown transaction");
    const Outstanding& issued = it->second;
    if (response.kind == TxnKind::ReadResponse) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(shape_.indexOf(issued.op.target))
           << 32) |
          issued.op.addr;
      const auto expected = shadow_.find(key);
      if (expected != shadow_.end() && expected->second != response.data)
        ++dataErrors_;
    }
    roundTrip_.record(static_cast<double>(cycle_ - issued.issuedCycle));
    ++completed_;
    outstanding_.erase(it);
  }

  // Issue at most one new transaction per cycle.
  if (!script_.empty() &&
      outstanding_.size() < static_cast<std::size_t>(maxOutstanding_)) {
    const Op op = script_.front();
    script_.pop_front();
    TxnPacket request;
    request.txnId = nextTxnId_++;
    request.kind = op.write ? TxnKind::Write : TxnKind::Read;
    request.replyTo = static_cast<std::uint32_t>(shape_.indexOf(self_));
    request.addr = op.addr;
    request.data = op.data;
    ni_->send(op.target, request.encode());
    if (op.write) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(shape_.indexOf(op.target)) << 32) |
          op.addr;
      shadow_[key] = op.data;
    }
    outstanding_.emplace(request.txnId, Outstanding{op, cycle_});
  }
  ++cycle_;
}

}  // namespace rasoc::soc
