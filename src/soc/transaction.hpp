// Transaction layer: memory-mapped request/response traffic over the NoC.
//
// The paper's introduction frames the NoC as the interconnect for
// "processing cores ... (i.e. scalar processors, DSPs, controllers,
// memories, and others)"; this layer provides those endpoints for
// platform-level simulation (the CASS-style core-based co-simulation the
// paper cites as its evaluation vehicle):
//
//   * MemoryTarget  - a memory core behind an NI: serves read/write
//     request packets after a fixed access latency and returns response
//     packets;
//   * Initiator     - a CPU/DMA-style core: issues a scripted stream of
//     reads and writes with bounded outstanding transactions, matches
//     responses by transaction id, checks read data against a shadow
//     model, and records round-trip latencies.
//
// Wire format (payload words after the NI's source-index flit):
//   request :  txnId, kind (0 = read, 1 = write), replyTo, addr, data
//   response:  txnId, kind | 2, replyTo(target), addr, data
// All fields are single n-bit words, so n >= 8 supports 256-word address
// spaces per target and 256 outstanding ids; n = 16 is typical.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "noc/ni.hpp"
#include "noc/stats.hpp"
#include "noc/topology.hpp"

namespace rasoc::soc {

enum class TxnKind : std::uint32_t {
  Read = 0,
  Write = 1,
  ReadResponse = 2,
  WriteResponse = 3,
};

struct TxnPacket {
  std::uint32_t txnId = 0;
  TxnKind kind = TxnKind::Read;
  std::uint32_t replyTo = 0;  // node index to answer to
  std::uint32_t addr = 0;
  std::uint32_t data = 0;

  std::vector<std::uint32_t> encode() const;
  static TxnPacket decode(const std::vector<std::uint32_t>& payload);
};

// A memory core served through the NoC.
class MemoryTarget : public sim::Module {
 public:
  MemoryTarget(std::string name, noc::NetworkInterface& ni,
               noc::MeshShape shape, int accessLatency, std::size_t words);

  std::uint64_t readsServed() const { return readsServed_; }
  std::uint64_t writesServed() const { return writesServed_; }
  std::uint32_t peek(std::uint32_t addr) const;

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  struct Pending {
    std::uint64_t readyCycle;
    TxnPacket request;
  };

  noc::NetworkInterface* ni_;
  noc::MeshShape shape_;
  int accessLatency_;
  std::vector<std::uint32_t> mem_;
  std::size_t consumed_ = 0;  // packets taken from the NI's receive log
  std::deque<Pending> pending_;
  std::uint64_t cycle_ = 0;
  std::uint64_t readsServed_ = 0;
  std::uint64_t writesServed_ = 0;
};

// A scripted CPU/DMA-style initiator.
class Initiator : public sim::Module {
 public:
  struct Op {
    bool write = false;
    noc::NodeId target;
    std::uint32_t addr = 0;
    std::uint32_t data = 0;  // writes only
  };

  Initiator(std::string name, noc::NetworkInterface& ni,
            noc::MeshShape shape, noc::NodeId self, int maxOutstanding = 4);

  void queue(Op op) { script_.push_back(op); }

  bool done() const { return script_.empty() && outstanding_.empty(); }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t dataErrors() const { return dataErrors_; }
  const noc::LatencyStats& roundTrip() const { return roundTrip_; }

 protected:
  void onReset() override;
  void clockEdge() override;

 private:
  struct Outstanding {
    Op op;
    std::uint64_t issuedCycle;
  };

  noc::NetworkInterface* ni_;
  noc::MeshShape shape_;
  noc::NodeId self_;
  int maxOutstanding_;
  std::deque<Op> script_;
  std::map<std::uint32_t, Outstanding> outstanding_;
  std::map<std::uint64_t, std::uint32_t> shadow_;  // (targetIdx, addr) -> data
  std::size_t consumed_ = 0;
  std::uint32_t nextTxnId_ = 1;
  std::uint64_t cycle_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dataErrors_ = 0;
  noc::LatencyStats roundTrip_;
};

}  // namespace rasoc::soc
