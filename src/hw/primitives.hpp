// Technology-independent hardware primitives.
//
// The RASoC soft-core is elaborated (like the VHDL model under synthesis)
// into a netlist of these primitives; the technology layer (src/tech) then
// maps the netlist onto a target device's logic cells, flip-flops and
// embedded memory.  Keeping primitives technology-independent mirrors the
// paper's split between the parameterized VHDL model and the Altera
// synthesis backend.
#pragma once

#include <cstdint>
#include <variant>

namespace rasoc::hw {

// k:1 multiplexer, `width` bits wide.  The paper's Figure 8 shows the
// LUT-tree mapping used for these on Altera FPGAs (no internal tri-states).
struct Mux {
  int inputs = 2;
  int width = 1;
  int count = 1;

  bool operator==(const Mux&) const = default;
};

// Bank of D flip-flops, `width` bits.
//
// `packed` describes whether each flip-flop shares a logic cell with the
// LUT computing its D input (typical for counters and small FSM state) or
// occupies a cell whose LUT is unused (typical for shift-register data
// bits, whose D input is a direct neighbour-Q connection using the cell's
// cascade/clock-enable paths).
struct Register {
  int width = 1;
  bool packed = false;
  int count = 1;

  bool operator==(const Register&) const = default;
};

// Generic k-input single-output logic function (AND/OR/arbitrary LUT
// cluster input cone).
struct Gate {
  int inputs = 2;
  int count = 1;

  bool operator==(const Gate&) const = default;
};

// Embedded memory block: `words` x `width` bits, mapped onto EABs.
struct Memory {
  int words = 2;
  int width = 8;
  int count = 1;

  bool operator==(const Memory&) const = default;
};

using Primitive = std::variant<Mux, Register, Gate, Memory>;

}  // namespace rasoc::hw
