#include "hw/netlist.hpp"

namespace rasoc::hw {

void Netlist::addMux(int inputs, int width, int count) {
  if (inputs >= 2 && width > 0 && count > 0)
    items_.push_back(Mux{inputs, width, count});
}

void Netlist::addRegister(int width, bool packed, int count) {
  if (width > 0 && count > 0) items_.push_back(Register{width, packed, count});
}

void Netlist::addGate(int inputs, int count) {
  if (inputs >= 2 && count > 0) items_.push_back(Gate{inputs, count});
}

void Netlist::addMemory(int words, int width, int count) {
  if (words > 0 && width > 0 && count > 0)
    items_.push_back(Memory{words, width, count});
}

void Netlist::merge(const Netlist& other, int times) {
  for (int i = 0; i < times; ++i) {
    for (const Primitive& p : other.items_) items_.push_back(p);
  }
}

int Netlist::totalFlipFlops() const {
  int total = 0;
  for (const Primitive& p : items_) {
    if (const auto* reg = std::get_if<Register>(&p)) {
      total += reg->width * reg->count;
    }
  }
  return total;
}

int Netlist::totalMemoryBits() const {
  int total = 0;
  for (const Primitive& p : items_) {
    if (const auto* mem = std::get_if<Memory>(&p)) {
      total += mem->words * mem->width * mem->count;
    }
  }
  return total;
}

}  // namespace rasoc::hw
