// A bag of primitives describing one elaborated entity.
#pragma once

#include <vector>

#include "hw/primitives.hpp"

namespace rasoc::hw {

class Netlist {
 public:
  Netlist() = default;

  void add(Primitive p) { items_.push_back(p); }

  // Convenience builders.
  void addMux(int inputs, int width, int count = 1);
  void addRegister(int width, bool packed, int count = 1);
  void addGate(int inputs, int count = 1);
  void addMemory(int words, int width, int count = 1);

  // Appends every primitive of `other`, scaled by `times`.
  void merge(const Netlist& other, int times = 1);

  const std::vector<Primitive>& items() const { return items_; }
  bool empty() const { return items_.empty(); }

  // Totals across primitives (pre-technology-mapping sanity metrics).
  int totalFlipFlops() const;
  int totalMemoryBits() const;

 private:
  std::vector<Primitive> items_;
};

}  // namespace rasoc::hw
