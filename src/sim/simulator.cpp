#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/wire.hpp"

namespace rasoc::sim {

thread_local bool SettleContext::changed_ = false;
thread_local bool SettleContext::inSettle_ = false;

namespace {

// Marks the settle phase for Wire::force's poke-window check; exception
// safe so a combinational-loop throw doesn't leave the flag stuck.
class SettleGuard {
 public:
  SettleGuard() { SettleContext::enterSettle(); }
  ~SettleGuard() { SettleContext::exitSettle(); }
  SettleGuard(const SettleGuard&) = delete;
  SettleGuard& operator=(const SettleGuard&) = delete;
};

}  // namespace

void Simulator::ensureCollected() {
  if (!modulesStale_) return;
  modules_.clear();
  sequential_.clear();
  for (Module* top : tops_) {
    // Iterative preorder walk; mesh trees are shallow but wide.
    std::vector<Module*> stack{top};
    while (!stack.empty()) {
      Module* m = stack.back();
      stack.pop_back();
      m->bindScheduler(this);
      modules_.push_back(m);
      if (m->isSequential()) sequential_.push_back(m);
      const auto& children = m->children();
      for (auto it = children.rbegin(); it != children.rend(); ++it)
        stack.push_back(*it);
    }
  }
  modulesStale_ = false;
  // Newly collected modules have never been evaluated by this worklist:
  // seed everything once so the next settle starts from a known state.
  if (kernel_ == Kernel::EventDriven) seedAll();
}

void Simulator::seedAll() {
  worklist_.clear();
  for (Module* m : modules_) m->clearDirty();
  for (Module* m : modules_) m->markDirty();
}

void Simulator::setKernel(Kernel kernel) {
  if (kernel_ == kernel) return;
  kernel_ = kernel;
  if (kernel_ == Kernel::EventDriven) {
    ensureCollected();
    seedAll();
  } else {
    // The naive kernel ignores the worklist; drop any queued entries so a
    // later switch back starts from a clean seed.
    for (Module* m : worklist_) m->clearDirty();
    worklist_.clear();
  }
}

void Simulator::reset() {
  cycle_ = 0;
  ensureCollected();
  for (Module* m : tops_) m->resetAll();
  if (kernel_ == Kernel::EventDriven) seedAll();
  settle();
}

void Simulator::settle() {
  ensureCollected();
  SettleGuard guard;
  if (kernel_ == Kernel::Naive) {
    settleNaive();
  } else {
    settleEventDriven();
  }
}

void Simulator::settleNaive() {
  for (int iter = 0; iter < maxSettleIterations_; ++iter) {
    SettleContext::clearChanged();
    for (Module* m : tops_) m->evaluateAll();
    evaluateCalls_ += modules_.size();
    if (!SettleContext::changed()) return;
  }
  throw std::runtime_error(
      "Simulator::settle: no combinational fixpoint after " +
      std::to_string(maxSettleIterations_) +
      " passes (combinational loop?)");
}

void Simulator::settleEventDriven() {
  const std::uint64_t bound =
      static_cast<std::uint64_t>(std::max(maxSettleIterations_, 1)) *
      static_cast<std::uint64_t>(std::max<std::size_t>(modules_.size(), 1));
  std::uint64_t evals = 0;
  // The worklist grows while draining: evaluating a module may change wires
  // and wake their fanout.  Indexed iteration keeps appended entries live.
  for (std::size_t i = 0; i < worklist_.size(); ++i) {
    Module* m = worklist_[i];
    m->clearDirty();
    m->evaluateOne();
    if (++evals > bound) {
      for (std::size_t j = i + 1; j < worklist_.size(); ++j)
        worklist_[j]->clearDirty();
      worklist_.clear();
      evaluateCalls_ += evals;
      throw std::runtime_error(
          "Simulator::settle: event-driven worklist did not drain within " +
          std::to_string(bound) + " evaluations (combinational loop?)");
    }
  }
  worklist_.clear();
  evaluateCalls_ += evals;
}

void Simulator::tick() {
  ensureCollected();
  for (Module* m : tops_) m->clockEdgeAll();
  if (kernel_ == Kernel::EventDriven) {
    // Registered state changed: re-seed the modules whose evaluate()
    // depends on it.  Purely combinational modules wake through wire
    // fanout once these re-evaluate.
    for (Module* m : sequential_) m->markDirty();
  }
  ++cycle_;
  for (const auto& listener : tickListeners_) listener();
}

void Simulator::step() {
  settle();
  tick();
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::runUntil(const std::function<bool()>& pred,
                         std::uint64_t maxCycles) {
  for (std::uint64_t i = 0; i < maxCycles; ++i) {
    settle();
    if (pred()) return true;
    tick();
  }
  // Leave the network settled for post-mortem observation, but do not
  // check the predicate again: it is evaluated exactly maxCycles times.
  settle();
  return false;
}

}  // namespace rasoc::sim
