#include "sim/simulator.hpp"

#include <stdexcept>

#include "sim/wire.hpp"

namespace rasoc::sim {

thread_local bool SettleContext::changed_ = false;

void Simulator::reset() {
  cycle_ = 0;
  for (Module* m : tops_) m->resetAll();
  settle();
}

void Simulator::settle() {
  for (int iter = 0; iter < maxSettleIterations_; ++iter) {
    SettleContext::clearChanged();
    for (Module* m : tops_) m->evaluateAll();
    if (!SettleContext::changed()) return;
  }
  throw std::runtime_error(
      "Simulator::settle: no combinational fixpoint after " +
      std::to_string(maxSettleIterations_) +
      " passes (combinational loop?)");
}

void Simulator::tick() {
  for (Module* m : tops_) m->clockEdgeAll();
  ++cycle_;
  for (const auto& listener : tickListeners_) listener();
}

void Simulator::step() {
  settle();
  tick();
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::runUntil(const std::function<bool()>& pred,
                         std::uint64_t maxCycles) {
  for (std::uint64_t i = 0; i < maxCycles; ++i) {
    settle();
    if (pred()) return true;
    tick();
  }
  settle();
  return pred();
}

}  // namespace rasoc::sim
