#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/compile.hpp"
#include "sim/settle_pool.hpp"
#include "sim/wire.hpp"

namespace rasoc::sim {

thread_local bool SettleContext::changed_ = false;
thread_local bool SettleContext::inSettle_ = false;
thread_local std::vector<const WireBase*>* SettleContext::writeRecorder_ =
    nullptr;

thread_local Simulator::EnqueueRoute* Simulator::tlsRoute_ = nullptr;

namespace {

// Marks the settle phase for Wire::force's poke-window check; exception
// safe so a combinational-loop throw doesn't leave the flag stuck.
class SettleGuard {
 public:
  SettleGuard() { SettleContext::enterSettle(); }
  ~SettleGuard() { SettleContext::exitSettle(); }
  SettleGuard(const SettleGuard&) = delete;
  SettleGuard& operator=(const SettleGuard&) = delete;
};

// The in-settle flag is per-thread: pool workers arm it for their own
// sweep so Wire::force keeps throwing there too.  No-op when the flag is
// already set (inline sweeps on the simulating thread).
class ScopedSettleFlag {
 public:
  ScopedSettleFlag() : armed_(!SettleContext::inSettle()) {
    if (armed_) SettleContext::enterSettle();
  }
  ~ScopedSettleFlag() {
    if (armed_) SettleContext::exitSettle();
  }
  ScopedSettleFlag(const ScopedSettleFlag&) = delete;
  ScopedSettleFlag& operator=(const ScopedSettleFlag&) = delete;

 private:
  bool armed_;
};

#ifndef NDEBUG
// Re-records a parallel-phase evaluation so it can be checked against the
// module's discovered write set.
class WriteRecorderGuard {
 public:
  explicit WriteRecorderGuard(std::vector<const WireBase*>* recorder) {
    SettleContext::armWriteRecorder(recorder);
  }
  ~WriteRecorderGuard() { SettleContext::armWriteRecorder(nullptr); }
  WriteRecorderGuard(const WriteRecorderGuard&) = delete;
  WriteRecorderGuard& operator=(const WriteRecorderGuard&) = delete;
};
#endif

}  // namespace

// Swaps the thread-local enqueue route in and out, preserving any outer
// route (nested simulators on one thread).
class Simulator::RouteGuard {
 public:
  explicit RouteGuard(EnqueueRoute* route) : prev_(tlsRoute_) {
    tlsRoute_ = route;
  }
  ~RouteGuard() { tlsRoute_ = prev_; }
  RouteGuard(const RouteGuard&) = delete;
  RouteGuard& operator=(const RouteGuard&) = delete;

 private:
  EnqueueRoute* prev_;
};

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void Simulator::ensureCollected() {
  if (!modulesStale_) return;
  modules_.clear();
  hints_.clear();
  sequential_.clear();
  for (Module* top : tops_) {
    // Iterative preorder walk; mesh trees are shallow but wide.  Children
    // inherit the nearest hinted ancestor's partition hint.
    std::vector<std::pair<Module*, int>> stack{{top, -1}};
    while (!stack.empty()) {
      auto [m, inherited] = stack.back();
      stack.pop_back();
      const int hint =
          m->partitionHint() >= 0 ? m->partitionHint() : inherited;
      m->bindScheduler(this);
      m->setModuleIndex(modules_.size());
      modules_.push_back(m);
      hints_.push_back(hint);
      if (m->isSequential()) sequential_.push_back(m);
      const auto& children = m->children();
      for (auto it = children.rbegin(); it != children.rend(); ++it)
        stack.push_back({*it, hint});
    }
  }
  modulesStale_ = false;
  partitionStale_ = true;
  compiledStale_ = true;
  if (profileBase_) {
    // Late add()s (e.g. traffic generators attached after construction)
    // append to the flatten, so existing counts keep their slots; new
    // modules get zeroed ones.  Re-point the base: resize may reallocate.
    profileCounts_.resize(modules_.size(), 0);
    profileBase_ = profileCounts_.data();
  }
  // Newly collected modules have never been evaluated by this worklist:
  // seed everything once so the next settle starts from a known state.
  // (The parallel kernel seeds when it rebuilds its partition.)
  if (kernel_ == Kernel::EventDriven) seedAll();
}

void Simulator::seedAll() {
  worklist_.clear();
  for (Module* m : modules_) m->clearDirty();
  for (Module* m : modules_) m->markDirty();
}

void Simulator::setKernel(Kernel kernel) {
  if (kernel_ == kernel) return;
  if (cycle_ != 0)
    throw std::logic_error(
        "Simulator::setKernel: kernel switch at cycle " +
        std::to_string(cycle_) +
        " would hand the new kernel a stale worklist; select the kernel "
        "before the first cycle, or reset() first");
  if (kernel == Kernel::Compiled && threads_ > 1)
    throw std::logic_error(
        "Simulator::setKernel: Kernel::Compiled is single-threaded (its op "
        "tape runs on the calling thread); setThreads(1) first or use "
        "Kernel::ParallelEventDriven for multi-threaded settling");
  // Leaving the compiled kernel: detach the wires from the arena while
  // they are certainly alive, and drop the program.
  if (kernel_ == Kernel::Compiled) releaseProgram();
  kernel_ = kernel;
  switch (kernel_) {
    case Kernel::EventDriven:
      ensureCollected();
      seedAll();
      break;
    case Kernel::ParallelEventDriven:
      // Seeding happens when the partition is (re)built, on first settle.
      partitionStale_ = true;
      break;
    case Kernel::Naive:
      // The naive kernel ignores the worklist; drop any queued entries so
      // a later switch back starts from a clean seed.
      for (Module* m : worklist_) m->clearDirty();
      worklist_.clear();
      break;
    case Kernel::Compiled:
      // The program is built lazily on first settle; the worklist is
      // ignored (the full tape runs every settle, like the naive sweep).
      for (Module* m : worklist_) m->clearDirty();
      worklist_.clear();
      compiledStale_ = true;
      break;
  }
}

void Simulator::setThreads(int n) {
  if (n < 1)
    throw std::invalid_argument("Simulator::setThreads: need >= 1 thread");
  if (n == threads_) return;
  if (kernel_ == Kernel::Compiled && n > 1)
    throw std::logic_error(
        "Simulator::setThreads: Kernel::Compiled is single-threaded (its op "
        "tape runs on the calling thread); switch kernels before raising "
        "the thread count");
  if (cycle_ != 0)
    throw std::logic_error(
        "Simulator::setThreads: thread-count change at cycle " +
        std::to_string(cycle_) +
        " would repartition mid-run; set threads before the first cycle, "
        "or reset() first");
  threads_ = n;
  partitionStale_ = true;
}

const Partition& Simulator::partition() {
  if (kernel_ != Kernel::ParallelEventDriven)
    throw std::logic_error(
        "Simulator::partition: only Kernel::ParallelEventDriven partitions "
        "the module graph");
  ensurePartitionBuilt();
  return partition_;
}

void Simulator::reset() {
  cycle_ = 0;
  ensureCollected();
  for (Module* m : tops_) m->resetAll();
  // Registered state just changed wholesale (FIFO backing stores may even
  // have reallocated), so a compiled program's raw state pointers are
  // stale: recompile on the next settle.
  compiledStale_ = true;
  if (kernel_ != Kernel::Naive && kernel_ != Kernel::Compiled) seedAll();
  settle();
}

void Simulator::settle() {
  ensureCollected();
  SettleGuard guard;
  switch (kernel_) {
    case Kernel::Naive:
      settleNaive();
      break;
    case Kernel::EventDriven:
      settleEventDriven();
      break;
    case Kernel::ParallelEventDriven:
      settleParallel();
      break;
    case Kernel::Compiled:
      settleCompiled();
      break;
  }
}

void Simulator::settleNaive() {
  if (std::getenv("RASOC_SETTLE_DEBUG")) {
    // Convergence forensics: names every module still changing wires late
    // in the fixpoint sweep.  A module that appears alone over and over has
    // a non-idempotent evaluate() — typically a wire driven low and then
    // raised within one pass, which trips the change flag forever.
    for (int iter = 0; iter < maxSettleIterations_; ++iter) {
      bool any = false;
      for (Module* m : modules_) {
        SettleContext::clearChanged();
        m->evaluateOne();
        if (SettleContext::changed()) {
          any = true;
          if (iter > 5)
            std::fprintf(stderr, "settle iter %d: %s changed wires\n", iter,
                         m->name().c_str());
        }
      }
      if (!any) return;
    }
    throw std::runtime_error(
        "Simulator::settle: no combinational fixpoint (RASOC_SETTLE_DEBUG "
        "report above)");
  }
  for (int iter = 0; iter < maxSettleIterations_; ++iter) {
    SettleContext::clearChanged();
    if (profileBase_) {
      // modules_ is the preorder flatten of tops_, so this sweep evaluates
      // in exactly the order evaluateAll() would - it just goes module by
      // module so each evaluation can be attributed.
      for (Module* m : modules_) {
        m->evaluateOne();
        ++profileBase_[m->moduleIndex()];
      }
    } else {
      for (Module* m : tops_) m->evaluateAll();
    }
    evaluateCalls_ += modules_.size();
    if (!SettleContext::changed()) return;
  }
  throw std::runtime_error(
      "Simulator::settle: no combinational fixpoint after " +
      std::to_string(maxSettleIterations_) +
      " passes (combinational loop?)");
}

void Simulator::settleEventDriven() {
  const std::uint64_t bound =
      static_cast<std::uint64_t>(std::max(maxSettleIterations_, 1)) *
      static_cast<std::uint64_t>(std::max<std::size_t>(modules_.size(), 1));
  std::uint64_t evals = 0;
  // The worklist grows while draining: evaluating a module may change wires
  // and wake their fanout.  Indexed iteration keeps appended entries live.
  for (std::size_t i = 0; i < worklist_.size(); ++i) {
    Module* m = worklist_[i];
    m->clearDirty();
    m->evaluateOne();
    if (profileBase_) ++profileBase_[m->moduleIndex()];
    if (++evals > bound) {
      for (std::size_t j = i + 1; j < worklist_.size(); ++j)
        worklist_[j]->clearDirty();
      worklist_.clear();
      evaluateCalls_ += evals;
      throw std::runtime_error(
          "Simulator::settle: event-driven worklist did not drain within " +
          std::to_string(bound) + " evaluations (combinational loop?)");
    }
  }
  worklist_.clear();
  evaluateCalls_ += evals;
}

void Simulator::releaseProgram() {
  if (!program_) return;
  program_->unbindWires();
  program_.reset();
}

void Simulator::ensureProgramBuilt() {
  if (program_ && !compiledStale_) return;
  // Unbind the previous program's wires first: the build's write-set
  // discovery evaluates fallback modules, and those scratch writes must
  // not land in a dying arena.
  releaseProgram();
  program_ = CompiledProgram::build(tops_);
  // Discovery evaluations are settle work, same as the partition build.
  evaluateCalls_ += program_->discoveryEvaluations();
  compiledStale_ = false;
}

void Simulator::settleCompiled() {
  ensureProgramBuilt();
  // Pokes and clock-edge re-seeds are already reflected in the arena
  // (wires write through); the tape re-derives everything else.  Any
  // queued worklist entries are stale bookkeeping here.
  worklist_.clear();
  evaluateCalls_ += program_->settle(
      static_cast<std::uint64_t>(std::max(maxSettleIterations_, 1)),
      profileBase_);
}

void Simulator::ensurePartitionBuilt() {
  ensureCollected();
  if (!partitionStale_) return;
  // The build's write-set discovery evaluates every module once; those
  // calls count as settle work.  Values written are scratch: seedAll()
  // below re-marks everything and the next settle reaches the unique
  // fixpoint (evaluate() is idempotent).
  partition_ = buildPartition(modules_, hints_, threads_);
  evaluateCalls_ += modules_.size();
  if (profileBase_)
    for (std::size_t i = 0; i < modules_.size(); ++i) ++profileBase_[i];
  for (std::size_t i = 0; i < modules_.size(); ++i)
    modules_[i]->setPlacement(partition_.domainOf[i],
                              partition_.isFrontier[i] != 0, i);
  domains_.assign(static_cast<std::size_t>(threads_), DomainRun{});
  frontierRun_.clear();
  parallelStats_.domainEvaluations.resize(
      static_cast<std::size_t>(threads_), 0);
  parallelStats_.frontierModules = partition_.frontierModules;
  parallelStats_.domains = static_cast<std::size_t>(threads_);
  if (threads_ > 1) {
    if (!pool_ || pool_->workers() != threads_)
      pool_ = std::make_unique<SettlePool>(threads_);
  } else {
    pool_.reset();
  }
  partitionStale_ = false;
  seedAll();
}

void Simulator::settleParallel() {
  ensurePartitionBuilt();
  // Distribute the between-cycles worklist (clock-edge re-seeds, pokes,
  // external send() calls) onto the per-domain runlists; frontier modules
  // go straight to the sequential list.
  for (Module* m : worklist_) {
    if (m->isFrontier()) {
      frontierRun_.push_back(m);
    } else {
      domains_[static_cast<std::size_t>(m->partitionDomain())].run.push_back(
          m);
    }
  }
  worklist_.clear();
  for (DomainRun& d : domains_) {
    d.evals = 0;
    d.overBudget = false;
  }
  frontierEvalsThisSettle_ = 0;
  try {
    runParallelRounds();
  } catch (...) {
    // Leave no stale dirty flag behind so the simulator stays usable after
    // a combinational-loop (or contract-violation) throw.
    cleanupParallelLists();
    foldParallelCounters();
    throw;
  }
  foldParallelCounters();
}

void Simulator::runParallelRounds() {
  const std::uint64_t frontierBound =
      static_cast<std::uint64_t>(std::max(maxSettleIterations_, 1)) *
      static_cast<std::uint64_t>(
          std::max<std::size_t>(partition_.frontierModules, 1));
  while (true) {
    int busy = 0;
    for (const DomainRun& d : domains_)
      if (!d.run.empty()) ++busy;
    if (busy > 0) {
      ++parallelStats_.rounds;
      if (busy == 1 || !pool_) {
        // A single busy domain (or a one-thread configuration) needs no
        // handoff: sweep inline on this thread.
        for (int d = 0; d < threads_; ++d)
          if (!domains_[static_cast<std::size_t>(d)].run.empty())
            drainDomain(d);
      } else {
        pool_->run([this](int d) {
          if (!domains_[static_cast<std::size_t>(d)].run.empty())
            drainDomain(d);
        });
      }
      // Barrier passed.  Deterministic reduction: fold every domain's
      // deferred frontier wakes into the sequential runlist in fixed
      // domain order - never in thread-completion order.
      bool overBudget = false;
      for (DomainRun& d : domains_) {
        overBudget = overBudget || d.overBudget;
        frontierRun_.insert(frontierRun_.end(), d.deferred.begin(),
                            d.deferred.end());
        d.deferred.clear();
        d.run.clear();
      }
      if (overBudget)
        throw std::runtime_error(
            "Simulator::settle: a parallel domain worklist did not drain "
            "within its evaluation bound (combinational loop?)");
    }
    if (frontierRun_.empty()) break;
    {
      // Sequential frontier phase: drains cross-domain modules; interior
      // modules they wake are routed into their domain's next round.
      EnqueueRoute route{this, nullptr, &frontierRun_, true};
      RouteGuard guard(&route);
      for (std::size_t i = 0; i < frontierRun_.size(); ++i) {
        Module* m = frontierRun_[i];
        m->clearDirty();
        m->evaluateOne();
        if (profileBase_) ++profileBase_[m->moduleIndex()];
        if (++frontierEvalsThisSettle_ > frontierBound)
          throw std::runtime_error(
              "Simulator::settle: frontier worklist did not drain within " +
              std::to_string(frontierBound) +
              " evaluations (combinational loop?)");
      }
      frontierRun_.clear();
    }
    bool any = false;
    for (DomainRun& d : domains_) {
      d.run.swap(d.next);
      any = any || !d.run.empty();
    }
    if (!any) break;
  }
}

void Simulator::drainDomain(int d) {
  DomainRun& dr = domains_[static_cast<std::size_t>(d)];
  const std::uint64_t bound =
      static_cast<std::uint64_t>(std::max(maxSettleIterations_, 1)) *
      static_cast<std::uint64_t>(std::max<std::size_t>(
          partition_.domainModules[static_cast<std::size_t>(d)], 1));
  ScopedSettleFlag settleFlag;
  EnqueueRoute route{this, &dr.run, &dr.deferred, false};
  RouteGuard guard(&route);
#ifndef NDEBUG
  std::vector<const WireBase*> writes;
#endif
  // Same growing-worklist drain as settleEventDriven, restricted to this
  // domain's interior modules.
  for (std::size_t i = 0; i < dr.run.size(); ++i) {
    Module* m = dr.run[i];
    m->clearDirty();
#ifndef NDEBUG
    writes.clear();
    {
      WriteRecorderGuard recorder(&writes);
      m->evaluateOne();
    }
    validateWrites(m, writes);
#else
    m->evaluateOne();
#endif
    // Interior modules are evaluated only by their owning domain's thread,
    // so this slot has a single writer for the whole parallel phase.
    if (profileBase_) ++profileBase_[m->moduleIndex()];
    if (++dr.evals > bound) {
      // This domain's modules are touched by this thread only; clear the
      // undrained tail's flags here, flag the overrun, and let the main
      // thread throw after the barrier.
      for (std::size_t j = i + 1; j < dr.run.size(); ++j)
        dr.run[j]->clearDirty();
      dr.overBudget = true;
      return;
    }
  }
}

void Simulator::cleanupParallelLists() {
  const auto drop = [](std::vector<Module*>& list) {
    for (Module* m : list) m->clearDirty();
    list.clear();
  };
  for (DomainRun& d : domains_) {
    drop(d.run);
    drop(d.next);
    drop(d.deferred);
  }
  drop(frontierRun_);
  drop(worklist_);
}

void Simulator::foldParallelCounters() {
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    total += domains_[d].evals;
    parallelStats_.domainEvaluations[d] += domains_[d].evals;
    domains_[d].evals = 0;
  }
  total += frontierEvalsThisSettle_;
  parallelStats_.frontierEvaluations += frontierEvalsThisSettle_;
  frontierEvalsThisSettle_ = 0;
  evaluateCalls_ += total;
}

#ifndef NDEBUG
void Simulator::validateWrites(
    const Module* m, const std::vector<const WireBase*>& writes) const {
  const auto& allowed = partition_.writeSets[m->moduleIndex()];
  for (const WireBase* w : writes)
    if (!std::binary_search(allowed.begin(), allowed.end(), w,
                            std::less<const WireBase*>{}))
      throw std::logic_error(
          "parallel kernel: module '" + m->name() +
          "' drove a wire outside its discovered write set; evaluate() "
          "must drive the same wires on every call (see sim/partition.hpp)");
}
#endif

void Simulator::enableProfiling() {
  ensureCollected();
  if (profileBase_) return;
  profileCounts_.assign(modules_.size(), 0);
  profileBase_ = profileCounts_.data();
}

std::vector<std::pair<std::string, std::uint64_t>> Simulator::hottestModules(
    std::size_t n) {
  ensureCollected();
  std::vector<std::size_t> order(profileCounts_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (profileCounts_[a] != profileCounts_[b])
      return profileCounts_[a] > profileCounts_[b];
    return a < b;
  });
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(std::min(n, order.size()));
  for (std::size_t i = 0; i < order.size() && out.size() < n; ++i)
    out.emplace_back(modules_[order[i]]->name(), profileCounts_[order[i]]);
  return out;
}

void Simulator::enqueueDirty(Module* m) {
  switch (kernel_) {
    case Kernel::Naive:
    case Kernel::Compiled:
      // Both kernels re-derive every wire each settle; no worklist needed.
      return;
    case Kernel::EventDriven:
      worklist_.push_back(m);
      return;
    case Kernel::ParallelEventDriven:
      break;
  }
  EnqueueRoute* route = tlsRoute_;
  if (route == nullptr || route->owner != this) {
    // No settle phase active on this thread (clock-edge re-seeds,
    // testbench pokes, partition discovery) - or a different simulator's
    // settle is running here.  Queue onto the shared pending worklist.
    worklist_.push_back(m);
    return;
  }
  if (m->isFrontier()) {
    route->frontierSink->push_back(m);
  } else if (route->frontierPhase) {
    // The frontier phase wakes interior modules of any domain; they run in
    // that domain's next round.
    domains_[static_cast<std::size_t>(m->partitionDomain())].next.push_back(
        m);
  } else {
    route->interiorSink->push_back(m);
  }
}

void Simulator::tick() {
  ensureCollected();
  if (kernel_ == Kernel::Compiled && program_ && !compiledStale_) {
    // The edge tape replays clockEdgeAll() in preorder with fused edge ops
    // where modules lowered their edges.  A stale or missing program (tick
    // before any settle, or right after add()) falls through to the
    // behavioural walk, which is always exact.
    program_->edge();
  } else {
    for (Module* m : tops_) m->clockEdgeAll();
  }
  if (kernel_ == Kernel::EventDriven ||
      kernel_ == Kernel::ParallelEventDriven) {
    // Registered state changed: re-seed the modules whose evaluate()
    // depends on it.  Purely combinational modules wake through wire
    // fanout once these re-evaluate.
    for (Module* m : sequential_) m->markDirty();
  }
  ++cycle_;
  for (const auto& listener : tickListeners_) listener();
}

void Simulator::step() {
  settle();
  tick();
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::runUntil(const std::function<bool()>& pred,
                         std::uint64_t maxCycles) {
  for (std::uint64_t i = 0; i < maxCycles; ++i) {
    settle();
    if (pred()) return true;
    tick();
  }
  // Leave the network settled for post-mortem observation, but do not
  // check the predicate again: it is evaluated exactly maxCycles times.
  settle();
  return false;
}

}  // namespace rasoc::sim
