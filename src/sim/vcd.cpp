#include "sim/vcd.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

namespace rasoc::sim {

VcdWriter::VcdWriter(std::string topModule, std::string timescale)
    : topModule_(std::move(topModule)), timescale_(std::move(timescale)) {}

std::string VcdWriter::idFor(std::size_t index) {
  // Printable identifier codes: base-94 over '!'..'~'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

std::string VcdWriter::binary(std::uint64_t value, int width) {
  std::string bits(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i)
    bits[static_cast<std::size_t>(width - 1 - i)] =
        ((value >> i) & 1u) ? '1' : '0';
  return bits;
}

std::string VcdWriter::addSignal(std::string name, int width, Getter getter) {
  if (headerClosed_)
    throw std::logic_error("VcdWriter: cannot add signals after sampling");
  if (width < 1 || width > 64)
    throw std::invalid_argument("VcdWriter: width must be 1..64");
  Signal signal;
  signal.name = std::move(name);
  signal.width = width;
  signal.getter = std::move(getter);
  signal.id = idFor(signals_.size());
  signals_.push_back(std::move(signal));
  return signals_.back().id;
}

void VcdWriter::sample(std::uint64_t time) {
  headerClosed_ = true;
  std::ostringstream changes;
  for (Signal& signal : signals_) {
    const std::uint64_t value = signal.getter();
    if (signal.everSampled && value == signal.lastValue) continue;
    signal.everSampled = true;
    signal.lastValue = value;
    if (signal.width == 1) {
      changes << (value ? '1' : '0') << signal.id << '\n';
    } else {
      changes << 'b' << binary(value, signal.width) << ' ' << signal.id
              << '\n';
    }
  }
  const std::string text = changes.str();
  if (!text.empty()) {
    body_ += '#' + std::to_string(time) + '\n' + text;
  }
}

std::string VcdWriter::render() const {
  std::ostringstream out;
  out << "$date reproduction run $end\n";
  out << "$version RASoC C++ soft-core simulator $end\n";
  out << "$timescale " << timescale_ << " $end\n";
  out << "$scope module " << topModule_ << " $end\n";

  // Nested scopes from dotted names: group by prefix, one level deep is
  // enough for router.block.signal naming.
  std::map<std::string, std::vector<const Signal*>> scopes;
  std::vector<const Signal*> toplevel;
  for (const Signal& signal : signals_) {
    const auto dot = signal.name.find('.');
    if (dot == std::string::npos) {
      toplevel.push_back(&signal);
    } else {
      scopes[signal.name.substr(0, dot)].push_back(&signal);
    }
  }
  for (const Signal* signal : toplevel) {
    out << "$var wire " << signal->width << ' ' << signal->id << ' '
        << signal->name << " $end\n";
  }
  for (const auto& [scope, members] : scopes) {
    out << "$scope module " << scope << " $end\n";
    for (const Signal* signal : members) {
      out << "$var wire " << signal->width << ' ' << signal->id << ' '
          << signal->name.substr(scope.size() + 1) << " $end\n";
    }
    out << "$upscope $end\n";
  }
  out << "$upscope $end\n";
  out << "$enddefinitions $end\n";
  out << body_;
  return out.str();
}

}  // namespace rasoc::sim
