#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace rasoc::sim {

void Tracer::addProbe(std::string name, Probe probe) {
  channels_.push_back({std::move(name), std::move(probe)});
}

void Tracer::sample(std::uint64_t cycle) {
  Row row;
  row.cycle = cycle;
  row.values.reserve(channels_.size());
  for (const Channel& ch : channels_) row.values.push_back(ch.probe());
  rows_.push_back(std::move(row));
}

std::uint64_t Tracer::value(std::size_t row, const std::string& name) const {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (channels_[i].name == name) return rows_.at(row).values.at(i);
  }
  throw std::out_of_range("Tracer: unknown probe '" + name + "'");
}

std::string Tracer::render() const {
  std::ostringstream out;
  out << "cycle";
  for (const Channel& ch : channels_) out << '\t' << ch.name;
  out << '\n';
  for (const Row& row : rows_) {
    out << row.cycle;
    for (std::uint64_t v : row.values) out << '\t' << v;
    out << '\n';
  }
  return out.str();
}

}  // namespace rasoc::sim
