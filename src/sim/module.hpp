// Module base class for structural hardware models.
//
// A Module mirrors a VHDL entity: it has a name, optional child modules
// (structural composition), combinational behaviour (evaluate) and
// sequential behaviour (clockEdge).  The simulator drives the whole tree:
//
//   reset    -> onReset() on every module, once
//   settle   -> evaluate() until the combinational network is stable
//   tick     -> clockEdge() on every module, once per cycle
//
// evaluate() must be idempotent given unchanged inputs: it may be re-run
// any number of times until no Wire changes.  clockEdge() reads
// wires/registered state and commits the next registered state; it must not
// drive wires (drive them in evaluate() from registered state instead).
//
// Event-driven kernel contract (see Simulator::Kernel): a module declares
// at construction time which wires its evaluate() reads, via
// sensitive(wire).  A module whose evaluate() additionally depends on
// registered state (anything clockEdge() or an external call mutates) must
// call declareSequential(), which re-evaluates it after every clock edge.
// Modules that do neither are only evaluated when the whole network is
// seeded (reset / kernel switch), so an incomplete sensitivity list under
// the event-driven kernel silently reproduces stale outputs - the naive
// kernel needs no declarations and is the reference to A/B against.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rasoc::sim {

class Lowering;
class Module;
class WireBase;

// Worklist interface the event-driven kernel implements (Simulator).  Wires
// reach it through their fanout modules' scheduler backpointer, so several
// simulators can coexist on one thread without cross-talk.
class EvalScheduler {
 public:
  virtual void enqueueDirty(Module* m) = 0;

  // A module's lowering (Module::describe) depends on attached state, e.g.
  // telemetry hooks that change which edge path a channel takes.  Modules
  // call noteDescribeChanged() when that state changes; the compiled kernel
  // reacts by rebuilding its program before the next settle.  Default:
  // ignore (every other kernel re-reads the module each cycle anyway).
  virtual void describeChanged() {}

 protected:
  ~EvalScheduler() = default;
};

class Module {
 public:
  explicit Module(std::string name);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  // Drives this module and every child.  Called by the simulator.
  void resetAll();
  void evaluateAll();
  void clockEdgeAll();

  // Single-module evaluate, used by the event-driven kernel's worklist
  // (children are scheduled independently).
  void evaluateOne() { evaluate(); }

  // Single-module clock edge, used by the compiled kernel's edge tape when
  // a module keeps its behavioural clockEdge() (children are separate tape
  // entries, emitted in clockEdgeAll() preorder).
  void clockEdgeOne() { clockEdge(); }

  // --- compiled-kernel lowering hook (see sim/compile.hpp) --------------

  // Contributes word-level ops for this module (and, by covenant, its
  // entire subtree) to the compiled kernel's program.  Return true when the
  // subtree is covered by the emitted units; call Lowering::descendChildren
  // first if the children should still lower themselves.  Returning false
  // (the default) makes the compiler wrap this module's evaluate() in a
  // fallback thunk, append its clockEdge() to the edge tape, and recurse -
  // behaviourally exact, just slower, so migration is incremental.
  virtual bool describe(Lowering&) { return false; }

  const std::vector<Module*>& children() const { return children_; }

  // --- event-driven scheduling hooks (managed by Simulator and Wire) ----

  // Marks this module's inputs as changed.  Enqueues it exactly once into
  // the bound scheduler's worklist; without a scheduler only the flag is
  // set (harmless for standalone modules and the naive kernel).
  void markDirty() {
    if (dirty_) return;
    dirty_ = true;
    if (scheduler_) scheduler_->enqueueDirty(this);
  }
  void clearDirty() { dirty_ = false; }
  bool dirty() const { return dirty_; }

  // True when evaluate() depends on registered state: the simulator re-seeds
  // such modules after every clock edge.
  bool isSequential() const { return sequential_; }

  void bindScheduler(EvalScheduler* s) { scheduler_ = s; }

  // --- parallel-kernel placement (see sim/partition.hpp) ----------------

  // Domain hint for Kernel::ParallelEventDriven.  Children without a hint
  // inherit the nearest hinted ancestor's; unhinted modules fall into
  // domain 0.  Set before the first settle (noc::Network derives hints from
  // Topology::partition).
  void setPartitionHint(int domain) { partitionHint_ = domain; }
  int partitionHint() const { return partitionHint_; }

  // Resolved placement, written by the simulator when it (re)builds the
  // partition: owning domain, frontier classification, and this module's
  // index in the flattened module list.
  void setPlacement(int domain, bool frontier, std::size_t index) {
    domain_ = domain;
    frontier_ = frontier;
    moduleIndex_ = index;
  }
  int partitionDomain() const { return domain_; }
  bool isFrontier() const { return frontier_; }
  std::size_t moduleIndex() const { return moduleIndex_; }

  // Index in the simulator's flattened module list, written whenever the
  // list is (re)collected so every kernel - not just the parallel one,
  // whose setPlacement() also writes it - can attribute per-module work
  // (Simulator::enableProfiling).
  void setModuleIndex(std::size_t index) { moduleIndex_ = index; }

  // Wires declared via sensitive() - the read set the partition classifier
  // pairs with the discovered write sets.
  const std::vector<const WireBase*>& sensitivities() const { return reads_; }

 protected:
  virtual void onReset() {}
  virtual void evaluate() {}
  virtual void clockEdge() {}

  // Registers a structural child.  The child must outlive this module; the
  // usual pattern is member-object children registered in the constructor.
  void addChild(Module& child) { children_.push_back(&child); }

  // Declares that evaluate() reads `wire`: the event-driven kernel will
  // re-evaluate this module whenever the wire changes value.  Call from the
  // constructor, once per input wire.
  void sensitive(const WireBase& wire);

  // Declares that evaluate() depends on registered state (mutated by
  // clockEdge() or external calls such as a queue push).  Call from the
  // constructor.
  void declareSequential() { sequential_ = true; }

  // Tells the bound scheduler that this module's describe() output is no
  // longer valid (e.g. telemetry was attached after the first compile).
  void noteDescribeChanged() {
    if (scheduler_) scheduler_->describeChanged();
  }

 private:
  std::string name_;
  std::vector<Module*> children_;
  std::vector<const WireBase*> reads_;  // declared via sensitive()
  EvalScheduler* scheduler_ = nullptr;
  std::size_t moduleIndex_ = 0;
  int partitionHint_ = -1;
  int domain_ = 0;
  bool dirty_ = false;
  bool sequential_ = false;
  bool frontier_ = false;
};

}  // namespace rasoc::sim
