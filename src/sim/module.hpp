// Module base class for structural hardware models.
//
// A Module mirrors a VHDL entity: it has a name, optional child modules
// (structural composition), combinational behaviour (evaluate) and
// sequential behaviour (clockEdge).  The simulator drives the whole tree:
//
//   reset    -> onReset() on every module, once
//   settle   -> evaluate() on every module, repeated to fixpoint
//   tick     -> clockEdge() on every module, once per cycle
//
// evaluate() must be idempotent given unchanged inputs: it is re-run until
// no Wire changes.  clockEdge() reads wires/registered state and commits the
// next registered state; it must not drive wires (drive them in evaluate()
// from registered state instead).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rasoc::sim {

class Module {
 public:
  explicit Module(std::string name);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  // Drives this module and every child.  Called by the simulator.
  void resetAll();
  void evaluateAll();
  void clockEdgeAll();

  const std::vector<Module*>& children() const { return children_; }

 protected:
  virtual void onReset() {}
  virtual void evaluate() {}
  virtual void clockEdge() {}

  // Registers a structural child.  The child must outlive this module; the
  // usual pattern is member-object children registered in the constructor.
  void addChild(Module& child) { children_.push_back(&child); }

 private:
  std::string name_;
  std::vector<Module*> children_;
};

}  // namespace rasoc::sim
