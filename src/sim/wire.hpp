// Combinational nets for the two-phase clocked simulator.
//
// A Wire<T> models a combinational net: any module may drive it during the
// settle phase, and the simulator re-evaluates modules until no wire changes
// value (a fixpoint).  Two change-propagation mechanisms coexist:
//
//  * SettleContext carries a global (per-thread) "did this pass change
//    anything" flag for the naive fixpoint kernel;
//  * every wire additionally keeps a fanout list of modules registered as
//    sensitive to it (Module::sensitive), which the event-driven kernel uses
//    to re-evaluate only the modules whose inputs actually changed.
//
// Legal poke window: testbenches may set()/force() wires only *between*
// cycles - after step()/settle() returns and before the next settle phase
// begins.  A force() during the settle phase would bypass change tracking
// and leave a stale "fixpoint", so it throws std::logic_error.
#pragma once

#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/module.hpp"

namespace rasoc::sim {

// Global (per-thread) change flag used by the naive settle loop, plus the
// in-settle marker that guards the poke window.  The simulator is
// single-threaded by design; thread_locals keep independent simulators on
// different threads from interfering.
class SettleContext {
 public:
  static void clearChanged() { changed_ = false; }
  static void markChanged() { changed_ = true; }
  static bool changed() { return changed_; }

  static void enterSettle() { inSettle_ = true; }
  static void exitSettle() { inSettle_ = false; }
  static bool inSettle() { return inSettle_; }

  // Write-set recorder for the parallel kernel (see sim/partition.hpp):
  // while a recorder is armed on this thread, every Wire::set call is
  // appended to it - including value-unchanged calls, because partitioning
  // cares about the driving relation, not about signal activity.
  static void armWriteRecorder(std::vector<const WireBase*>* recorder) {
    writeRecorder_ = recorder;
  }
  static void recordWrite(const WireBase* wire) {
    if (writeRecorder_) writeRecorder_->push_back(wire);
  }

 private:
  static thread_local bool changed_;
  static thread_local bool inSettle_;
  static thread_local std::vector<const WireBase*>* writeRecorder_;
};

// Type-erased base: the fanout list of sensitive modules.  Registration is
// const (sensitivity is bookkeeping, not value state) so modules can
// subscribe to wires they only read.
class WireBase {
 public:
  // Called by Module::sensitive(); not meant for direct use.
  void addSensitive(Module* m) const { fanout_.push_back(m); }

  std::size_t fanoutSize() const { return fanout_.size(); }

  // The registered readers (Module::sensitive callers); the parallel
  // kernel's partition classifier walks this to find cross-domain fanout.
  const std::vector<Module*>& sensitiveModules() const { return fanout_; }

 protected:
  void notifySensitive() const {
    for (Module* m : fanout_) m->markDirty();
  }

 private:
  mutable std::vector<Module*> fanout_;
};

// A combinational net holding a value of type T.  T must be equality
// comparable.  set() records a change in the SettleContext (naive kernel)
// and wakes the fanout modules (event-driven kernel).
template <typename T>
class Wire : public WireBase {
 public:
  Wire() = default;
  explicit Wire(T initial) : value_(std::move(initial)) {}

  const T& get() const { return value_; }

  void set(const T& v) {
    SettleContext::recordWrite(this);
    if (!(value_ == v)) {
      value_ = v;
      SettleContext::markChanged();
      notifySensitive();
    }
  }

  // Forces a value without marking the settle context; used by testbenches
  // between cycles (the legal poke window, see the header comment).  The
  // fanout is still woken so the event-driven kernel re-evaluates readers
  // on the next settle.  Throws std::logic_error when called during a
  // settle phase: such a force would corrupt the fixpoint.
  void force(const T& v) {
    if (SettleContext::inSettle())
      throw std::logic_error(
          "Wire::force during the settle phase: poke wires only between "
          "cycles (after step()/settle() returns)");
    if (!(value_ == v)) {
      value_ = v;
      notifySensitive();
    }
  }

 private:
  T value_{};
};

}  // namespace rasoc::sim
