// Combinational nets for the two-phase clocked simulator.
//
// A Wire<T> models a combinational net: any module may drive it during the
// settle phase, and the simulator re-runs all evaluate() hooks until no wire
// changes value (a fixpoint).  Change detection is centralized in
// SettleContext so the simulator can cheaply test "did this pass change
// anything" without enumerating every net.
#pragma once

#include <utility>

namespace rasoc::sim {

// Global (per-thread) change flag used by the settle loop.  The simulator is
// single-threaded by design; a thread_local keeps independent simulators on
// different threads from interfering.
class SettleContext {
 public:
  static void clearChanged() { changed_ = false; }
  static void markChanged() { changed_ = true; }
  static bool changed() { return changed_; }

 private:
  static thread_local bool changed_;
};

// A combinational net holding a value of type T.  T must be equality
// comparable.  set() records a change in the SettleContext so the settle
// loop knows another evaluation pass is needed.
template <typename T>
class Wire {
 public:
  Wire() = default;
  explicit Wire(T initial) : value_(std::move(initial)) {}

  const T& get() const { return value_; }

  void set(const T& v) {
    if (!(value_ == v)) {
      value_ = v;
      SettleContext::markChanged();
    }
  }

  // Forces a value without marking the settle context; used by testbenches
  // between cycles (before the settle phase starts).
  void force(const T& v) { value_ = v; }

 private:
  T value_{};
};

}  // namespace rasoc::sim
