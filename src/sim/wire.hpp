// Combinational nets for the two-phase clocked simulator.
//
// A Wire<T> models a combinational net: any module may drive it during the
// settle phase, and the simulator re-evaluates modules until no wire changes
// value (a fixpoint).  Two change-propagation mechanisms coexist:
//
//  * SettleContext carries a global (per-thread) "did this pass change
//    anything" flag for the naive fixpoint kernel;
//  * every wire additionally keeps a fanout list of modules registered as
//    sensitive to it (Module::sensitive), which the event-driven kernel uses
//    to re-evaluate only the modules whose inputs actually changed.
//
// Legal poke window: testbenches may set()/force() wires only *between*
// cycles - after step()/settle() returns and before the next settle phase
// begins.  A force() during the settle phase would bypass change tracking
// and leave a stale "fixpoint", so it throws std::logic_error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/module.hpp"

namespace rasoc::sim {

// Global (per-thread) change flag used by the naive settle loop, plus the
// in-settle marker that guards the poke window.  The simulator is
// single-threaded by design; thread_locals keep independent simulators on
// different threads from interfering.
class SettleContext {
 public:
  static void clearChanged() { changed_ = false; }
  static void markChanged() { changed_ = true; }
  static bool changed() { return changed_; }

  static void enterSettle() { inSettle_ = true; }
  static void exitSettle() { inSettle_ = false; }
  static bool inSettle() { return inSettle_; }

  // Write-set recorder for the parallel kernel (see sim/partition.hpp):
  // while a recorder is armed on this thread, every Wire::set call is
  // appended to it - including value-unchanged calls, because partitioning
  // cares about the driving relation, not about signal activity.
  static void armWriteRecorder(std::vector<const WireBase*>* recorder) {
    writeRecorder_ = recorder;
  }
  static void recordWrite(const WireBase* wire) {
    if (writeRecorder_) writeRecorder_->push_back(wire);
  }

 private:
  static thread_local bool changed_;
  static thread_local bool inSettle_;
  static thread_local std::vector<const WireBase*>* writeRecorder_;
};

// Type-erased base: the fanout list of sensitive modules.  Registration is
// const (sensitivity is bookkeeping, not value state) so modules can
// subscribe to wires they only read.
class WireBase {
 public:
  // Called by Module::sensitive(); not meant for direct use.
  void addSensitive(Module* m) const { fanout_.push_back(m); }

  std::size_t fanoutSize() const { return fanout_.size(); }

  // The registered readers (Module::sensitive callers); the parallel
  // kernel's partition classifier walks this to find cross-domain fanout.
  const std::vector<Module*>& sensitiveModules() const { return fanout_; }

  // --- compiled-kernel arena binding (sim/compile.hpp) ---------------------
  //
  // Under Kernel::Compiled the wire's value is mirrored into a (word, shift)
  // slice of the word-packed state arena.  set()/force() write through to
  // the slice, so the arena never goes stale between settles even when a
  // testbench pokes wires or a fallback thunk drives them; reads refresh
  // from the slice (Wire::get), so settled op results are visible without
  // any flush pass.
  //
  // Binding is const for the same reason addSensitive() is: it is kernel
  // bookkeeping layered onto the net, not value state.  Lifetime contract
  // (mirrors the Module scheduler backpointer): the CompiledProgram unbinds
  // wires when it is rebuilt or the simulator leaves Kernel::Compiled; a
  // wire destroyed together with its simulator may keep a dangling binding,
  // which is only ever dereferenced by set()/force() on that wire.
  void bindArena(std::uint64_t* word, unsigned shift,
                 std::uint64_t mask) const {
    arenaWord_ = word;
    arenaShift_ = static_cast<std::uint8_t>(shift);
    arenaMask_ = mask;
  }
  void unbindArena() const { arenaWord_ = nullptr; }
  bool arenaBound() const { return arenaWord_ != nullptr; }

 protected:
  void notifySensitive() const {
    for (Module* m : fanout_) m->markDirty();
  }

  void storeArenaBits(std::uint64_t bits) const {
    *arenaWord_ = (*arenaWord_ & ~arenaMask_) |
                  ((bits << arenaShift_) & arenaMask_);
  }
  std::uint64_t loadArenaBits() const {
    return (*arenaWord_ & arenaMask_) >> arenaShift_;
  }

 private:
  mutable std::vector<Module*> fanout_;
  // Arena slice (null word pointer = unbound).  Mutable: see bindArena().
  mutable std::uint64_t* arenaWord_ = nullptr;
  mutable std::uint64_t arenaMask_ = 0;
  mutable std::uint8_t arenaShift_ = 0;
};

// A combinational net holding a value of type T.  T must be equality
// comparable.  set() records a change in the SettleContext (naive kernel)
// and wakes the fanout modules (event-driven kernel).
template <typename T>
class Wire : public WireBase {
 public:
  Wire() = default;
  explicit Wire(T initial) : value_(std::move(initial)) {}

  // Under Kernel::Compiled the arena is authoritative between settles; a
  // bound wire refreshes its cached value from its slice on every read, so
  // observers (thunks, tick listeners, telemetry, testbenches) see settled
  // state without the kernel ever flushing wires it computed.  Unbound
  // wires (the behavioural kernels) pay one predictable null check.
  const T& get() const {
    refreshFromArena();
    return value_;
  }

  void set(const T& v) {
    SettleContext::recordWrite(this);
    refreshFromArena();
    if (!(value_ == v)) {
      value_ = v;
      syncArena();
      SettleContext::markChanged();
      notifySensitive();
    }
  }

  // Forces a value without marking the settle context; used by testbenches
  // between cycles (the legal poke window, see the header comment).  The
  // fanout is still woken so the event-driven kernel re-evaluates readers
  // on the next settle.  Throws std::logic_error when called during a
  // settle phase: such a force would corrupt the fixpoint.
  void force(const T& v) {
    if (SettleContext::inSettle())
      throw std::logic_error(
          "Wire::force during the settle phase: poke wires only between "
          "cycles (after step()/settle() returns)");
    refreshFromArena();
    if (!(value_ == v)) {
      value_ = v;
      syncArena();
      notifySensitive();
    }
  }

  // Copies the current value into the bound arena slice (no-op when
  // unbound).  The compiled kernel calls this once per wire at program
  // build time; afterwards set()/force() keep the slice fresh.
  void syncArena() const {
    if constexpr (std::is_integral_v<T>) {
      if (arenaBound()) storeArenaBits(toBits(value_));
    }
  }

  // Raw pointer to the stored value, for the compiled kernel's
  // unbind-time materialization (which stores final arena bits directly
  // before detaching, so get() stays correct once the binding is gone).
  // Same bookkeeping-on-a-const-net rationale as bindArena().
  T* arenaValueSlot() const { return const_cast<T*>(&value_); }

 private:
  // Adopts the arena value when bound (no-op otherwise).  The fanout is
  // deliberately NOT woken: the compiled settle ignores the worklist (the
  // full tape runs every settle), and kernel switches are only legal at
  // cycle 0, where the new kernel re-seeds every module anyway.  Only
  // integral wires are ever bound.
  void refreshFromArena() const {
    if constexpr (std::is_integral_v<T>) {
      if (arenaBound()) value_ = fromBits(loadArenaBits());
    }
  }

  static std::uint64_t toBits(const T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      return v ? 1u : 0u;
    } else if constexpr (std::is_integral_v<T>) {
      // 32-bit slices store the zero-extended two's-complement pattern.
      return static_cast<std::uint32_t>(v);
    } else {
      return 0;
    }
  }
  static T fromBits(std::uint64_t bits) {
    if constexpr (std::is_same_v<T, bool>) {
      return bits != 0;
    } else if constexpr (std::is_integral_v<T>) {
      return static_cast<T>(static_cast<std::uint32_t>(bits));
    } else {
      return T{};
    }
  }

  // Mutable: a bound wire's authoritative state lives in the arena and
  // value_ is a read-through cache refreshed inside const get().
  mutable T value_{};
};

}  // namespace rasoc::sim
