#include "sim/settle_pool.hpp"

namespace rasoc::sim {

SettlePool::SettlePool(int workers) {
  errors_.resize(static_cast<std::size_t>(workers));
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this, i] { workerLoop(i); });
}

SettlePool::~SettlePool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void SettlePool::run(const std::function<void(int)>& job) {
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &job;
  for (std::exception_ptr& e : errors_) e = nullptr;
  remaining_ = workers();
  ++generation_;
  wake_.notify_all();
  done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  for (const std::exception_ptr& e : errors_)
    if (e) std::rethrow_exception(e);
}

void SettlePool::workerLoop(int index) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      errors_[static_cast<std::size_t>(index)] = error;
      if (--remaining_ == 0) done_.notify_one();
    }
  }
}

}  // namespace rasoc::sim
