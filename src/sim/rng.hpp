// Deterministic pseudo-random number generator for traffic generation and
// property tests.  xoshiro256** — fast, high quality, and reproducible
// across platforms (unlike std::default_random_engine distributions).
#pragma once

#include <cstdint>

namespace rasoc::sim {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace rasoc::sim
