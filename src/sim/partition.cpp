#include "sim/partition.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "sim/module.hpp"
#include "sim/wire.hpp"

namespace rasoc::sim {

namespace {

// Arms the per-thread write recorder for one discovery evaluation;
// exception safe so a throwing evaluate() cannot leave it stuck.
class DiscoveryGuard {
 public:
  explicit DiscoveryGuard(std::vector<const WireBase*>* recorder) {
    SettleContext::armWriteRecorder(recorder);
  }
  ~DiscoveryGuard() { SettleContext::armWriteRecorder(nullptr); }
  DiscoveryGuard(const DiscoveryGuard&) = delete;
  DiscoveryGuard& operator=(const DiscoveryGuard&) = delete;
};

// driverDomain sentinel: the wire is driven from more than one domain.
constexpr int kMultipleDomains = -2;

}  // namespace

Partition buildPartition(const std::vector<Module*>& modules,
                         const std::vector<int>& hints, int domains) {
  if (domains < 1)
    throw std::invalid_argument("buildPartition: need >= 1 domain");
  if (hints.size() != modules.size())
    throw std::logic_error("buildPartition: one hint per module required");

  const std::size_t count = modules.size();
  Partition part;
  part.domains = domains;
  part.domainOf.resize(count);
  part.isFrontier.assign(count, 0);
  part.writeSets.resize(count);
  part.domainModules.assign(static_cast<std::size_t>(domains), 0);

  std::unordered_map<const Module*, std::size_t> indexOf;
  indexOf.reserve(count);
  for (std::size_t i = 0; i < count; ++i) indexOf.emplace(modules[i], i);

  for (std::size_t i = 0; i < count; ++i) {
    const int d = hints[i] >= 0 ? hints[i] % domains : 0;
    part.domainOf[i] = d;
    ++part.domainModules[static_cast<std::size_t>(d)];
  }

  // Write-set discovery: one recorded evaluation per module (the kernel
  // contract - evaluate() drives the same wires on every call - makes one
  // call capture the whole set).  Values written here are scratch; the
  // caller re-seeds and settles to the unique fixpoint afterwards.
  std::unordered_map<const WireBase*, int> driverDomain;
  std::vector<const WireBase*> writes;
  for (std::size_t i = 0; i < count; ++i) {
    writes.clear();
    {
      DiscoveryGuard guard(&writes);
      modules[i]->evaluateOne();
    }
    std::sort(writes.begin(), writes.end(), std::less<const WireBase*>{});
    writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
    part.writeSets[i] = writes;
    for (const WireBase* w : writes) {
      const auto [it, inserted] = driverDomain.emplace(w, part.domainOf[i]);
      if (!inserted && it->second != part.domainOf[i])
        it->second = kMultipleDomains;
    }
  }

  // Classification per the interiority rule in the header comment.
  std::vector<std::pair<int, int>> edges;
  for (std::size_t i = 0; i < count; ++i) {
    const int d = part.domainOf[i];
    bool interior = true;
    for (const WireBase* w : part.writeSets[i]) {
      if (driverDomain.at(w) == kMultipleDomains) interior = false;
      for (Module* reader : w->sensitiveModules()) {
        const auto it = indexOf.find(reader);
        if (it == indexOf.end()) {
          // Reader registered with a different simulator: keep the write
          // out of the parallel phase.
          interior = false;
          continue;
        }
        const int readerDomain = part.domainOf[it->second];
        if (readerDomain != d) {
          interior = false;
          edges.emplace_back(d, readerDomain);
        }
      }
    }
    for (const WireBase* w : modules[i]->sensitivities()) {
      const auto it = driverDomain.find(w);
      if (it == driverDomain.end()) continue;  // undriven testbench input
      if (it->second == d) continue;
      interior = false;
      if (it->second >= 0) edges.emplace_back(it->second, d);
    }
    part.isFrontier[i] = interior ? 0 : 1;
    if (!interior) ++part.frontierModules;
  }

  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  part.frontierEdges = std::move(edges);
  return part;
}

}  // namespace rasoc::sim
