// Module-graph partitioning for Simulator::Kernel::ParallelEventDriven.
//
// The partition assigns every module to exactly one domain (one per worker
// thread) and classifies each module as interior or frontier:
//
//  * interior - every wire the module drives is read only inside its own
//    domain, and every wire its evaluate() reads (Module::sensitive) is
//    driven only inside its own domain (or by nothing at all).  Interior
//    modules are evaluated by their domain's thread during the parallel
//    phase with no synchronization whatsoever: by construction no other
//    thread ever touches the wires they access or the dirty flags they set.
//  * frontier - everything else: links crossing a partition cut, modules
//    reading cross-domain wires, wires with drivers in several domains.
//    Frontier modules are evaluated only in the sequential reduction phase
//    between parallel sweeps (deterministic, main thread).
//
// Write sets are discovered dynamically: each module is evaluated once with
// a write recorder armed (SettleContext::armWriteRecorder), capturing every
// Wire::set call whether or not the value changed.  This rests on an extra
// module contract, mirroring the hardware rule that a combinational block
// always drives its outputs: evaluate() must drive the same set of wires on
// every call.  Debug builds re-record every parallel-phase evaluation and
// throw std::logic_error on a containment violation; the ThreadSanitizer CI
// job backstops the contract at the memory level.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace rasoc::sim {

class Module;
class WireBase;

struct Partition {
  int domains = 1;

  // Per module (indexed like the simulator's flattened module list).
  std::vector<int> domainOf;
  std::vector<char> isFrontier;
  std::vector<std::vector<const WireBase*>> writeSets;  // sorted, deduped

  // Aggregates.
  std::vector<std::size_t> domainModules;  // module count per domain
  std::size_t frontierModules = 0;

  // Directed cross-domain dataflow: (driver domain, reader domain) pairs,
  // sorted and deduplicated.  A bidirectional cut appears as both (a,b)
  // and (b,a).
  std::vector<std::pair<int, int>> frontierEdges;
};

// Builds the partition.  hints[i] picks the domain for modules[i] (taken
// modulo `domains`; a negative hint means unhinted and lands in domain 0).
// Runs the write-set discovery pass: every module is evaluated exactly
// once, so the caller must treat wire values as scratch afterwards
// (re-seed and settle).  Readers registered on a driven wire but absent
// from `modules` (a different simulator's modules) conservatively make the
// driver frontier.
Partition buildPartition(const std::vector<Module*>& modules,
                         const std::vector<int>& hints, int domains);

}  // namespace rasoc::sim
