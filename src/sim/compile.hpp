// Compiled settle kernel: one-time lowering of the elaborated module tree
// into a word-packed state arena plus a levelized op tape.
//
// The behavioural kernels (Naive, EventDriven, ParallelEventDriven) pay a
// virtual evaluate() per module per settle round plus per-Wire fanout
// bookkeeping.  Kernel::Compiled instead runs a single lowering pass at
// elaboration time:
//
//  * every wire an op touches is assigned a (word, bit-offset) slice of a
//    contiguous std::uint64_t arena - bools are 1 bit, 32-bit values are a
//    32-bit slice, and a flit (data, bop, eop) trio shares one word so flit
//    moves are single masked word copies;
//  * every module contributes, via Module::describe(), either word-level
//    ops (plain function pointers over the arena, no virtual dispatch) or a
//    fallback thunk wrapping its behavioural evaluate() - so migration is
//    incremental and unported modules stay exact;
//  * the resulting units are levelized: Tarjan SCCs over the wire-level
//    driver/reader relation, scheduled in topological order.  Acyclic
//    stretches run exactly once per settle; genuine cycles (e.g. a fault
//    thunk handshaking with a lowered channel) iterate to a local fixpoint
//    bounded by Simulator::maxSettleIterations.
//
// The clock edge lowers the same way: an edge tape in clockEdgeAll()
// preorder whose entries are either word/member-level edge ops or
// clockEdgeOne() calls.  Edge ops mutate registered state and counters
// only, never wires, so tick listeners and FlowTracer observe the same
// pre-edge settled wires as under the behavioural kernels.
//
// Wire<->arena coherence: bound wires write through to their slice on
// set()/force() (the poke window keeps working) and read through on get()
// (Wire::refreshFromArena), so every reader of wire state - telemetry,
// tracers, testbenches - sees settled values with no kernel-specific code
// and the settle loop never pays a flush pass for wires nobody reads.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <cstring>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/wire.hpp"

namespace rasoc::sim {

// A bit-addressed view into the arena: word index plus bit offset, packed
// into four bytes ((word << 6) | shift, good to 64M words) so op context
// structs - the interpreter's main memory traffic - stay dense.
struct Slice {
  std::uint32_t packed = 0;

  Slice() = default;
  Slice(std::uint32_t word, unsigned shift)
      : packed((word << 6) | (shift & 63u)) {}
  std::uint32_t word() const { return packed >> 6; }
  unsigned shift() const { return packed & 63u; }
};

// Op functions are plain function pointers over the raw arena.  `ctx`
// points at a context struct owned by the describing module (slices,
// parameters, raw pointers to registered state); it must stay valid until
// the program is rebuilt, which the module guarantees by owning it.
using OpFn = void (*)(std::uint64_t* words, void* ctx);

// --- arena accessors for op functions --------------------------------------

inline bool opBit(const std::uint64_t* words, Slice s) {
  return ((words[s.word()] >> s.shift()) & 1u) != 0;
}
inline void opPutBit(std::uint64_t* words, Slice s, bool v) {
  const std::uint64_t m = std::uint64_t{1} << s.shift();
  words[s.word()] = (words[s.word()] & ~m) | (v ? m : 0);
}
inline std::uint32_t opWord32(const std::uint64_t* words, Slice s) {
  return static_cast<std::uint32_t>(words[s.word()] >> s.shift());
}
inline void opPutWord32(std::uint64_t* words, Slice s, std::uint32_t v) {
  const std::uint64_t m = std::uint64_t{0xffffffff} << s.shift();
  words[s.word()] =
      (words[s.word()] & ~m) | (static_cast<std::uint64_t>(v) << s.shift());
}

// Flit words: data in bits [0,32), bop at 32, eop at 33.  Allocated as a
// dedicated word per flit so a flit move is one masked copy.
inline constexpr unsigned kFlitBopShift = 32;
inline constexpr unsigned kFlitEopShift = 33;
inline constexpr std::uint64_t kFlitWordMask = 0x3ffffffffull;

inline std::uint32_t opFlitData(const std::uint64_t* words, std::uint32_t w) {
  return static_cast<std::uint32_t>(words[w]);
}
inline bool opFlitBop(const std::uint64_t* words, std::uint32_t w) {
  return ((words[w] >> kFlitBopShift) & 1u) != 0;
}
inline bool opFlitEop(const std::uint64_t* words, std::uint32_t w) {
  return ((words[w] >> kFlitEopShift) & 1u) != 0;
}
inline void opPutFlit(std::uint64_t* words, std::uint32_t w,
                      std::uint32_t data, bool bop, bool eop) {
  words[w] = (words[w] & ~kFlitWordMask) | data |
             (bop ? std::uint64_t{1} << kFlitBopShift : 0) |
             (eop ? std::uint64_t{1} << kFlitEopShift : 0);
}
inline void opCopyFlit(std::uint64_t* words, std::uint32_t dst,
                       std::uint32_t src) {
  words[dst] = (words[dst] & ~kFlitWordMask) | (words[src] & kFlitWordMask);
}

class CompiledProgram;

// The interface Module::describe() implementations program against.  All
// slice methods are idempotent per wire identity: the first caller
// allocates, later callers get the same slice, so producer and consumer
// modules agree on placement without coordination.
class Lowering {
 public:
  // --- slice allocation / lookup ---------------------------------------
  Slice bit(const Wire<bool>& w) { return slice(w, 1); }
  Slice word32(const Wire<std::uint32_t>& w) { return slice(w, 32); }
  Slice word32(const Wire<int>& w) { return slice(w, 32); }

  // Co-allocates a (data, bop, eop) trio in one fresh word (shifts 0 / 32 /
  // 33) and returns the word index.  Throws std::logic_error if any member
  // was previously placed with a different layout - describe()
  // implementations must route every flit through flitWord().
  std::uint32_t flitWord(const Wire<std::uint32_t>& data,
                         const Wire<bool>& bop, const Wire<bool>& eop);

  // --- settle-phase units -----------------------------------------------
  //
  // The read/write lists drive levelization only; they must name every
  // *wire* the op reads or writes through the arena.  Registered state read
  // through raw pointers needs no declaration (it only changes at edges).
  void op(OpFn fn, void* ctx, std::vector<const WireBase*> reads,
          std::vector<const WireBase*> writes);

  // Fallback thunk around m.evaluate().  Reads default to the module's
  // declared sensitivities; the write set is discovered by running
  // evaluate() once under the write recorder (same stable-write-set
  // contract the parallel kernel's partitioner relies on).
  void thunk(Module& m);

  // Thunk with an explicitly declared write set: skips discovery, so no
  // scratch evaluate() runs at compile time.
  void thunkDeclared(Module& m, std::vector<const WireBase*> reads,
                     std::vector<const WireBase*> writes);

  // --- edge tape --------------------------------------------------------
  //
  // Emitted in call order; the compiler walks the tree in clockEdgeAll()
  // preorder so fused edge ops land exactly where the behavioural
  // clockEdge() calls would.  Edge ops must not write wires or the arena's
  // combinational slices.
  void edgeOp(OpFn fn, void* ctx);
  void edgeCall(Module& m);

  // Requests recursion into the current module's children even though
  // describe() returns true (structural shells like the router top).
  void descendChildren() { descend_ = true; }

  // Copies a trivially-copyable op context into program-owned storage and
  // returns a stable pointer.  Contexts live exactly as long as the
  // program, so describe() implementations need not keep their own copy
  // alive; the contiguous arena also keeps the interpreter's context loads
  // prefetchable instead of scattering them across the heap.
  template <typename T>
  T* ctx(const T& proto) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    void* p = allocCtx(sizeof(T), alignof(T));
    std::memcpy(p, &proto, sizeof(T));
    return static_cast<T*>(p);
  }

 private:
  friend class CompiledProgram;
  explicit Lowering(CompiledProgram& prog) : prog_(prog) {}

  template <typename T>
  Slice slice(const Wire<T>& w, int width);
  void* allocCtx(std::size_t size, std::size_t align);
  bool descendRequested() const { return descend_; }
  void beginModule(Module& m);

  CompiledProgram& prog_;
  Module* current_ = nullptr;
  std::uint32_t currentIndex_ = 0;
  bool descend_ = false;
};

class CompiledProgram {
 public:
  // Lowers `tops` (the simulator's top-level modules, in collection order)
  // into a runnable program.  Module indices must be up to date
  // (Simulator::ensureCollected) because units carry them for profiling
  // attribution.
  static std::unique_ptr<CompiledProgram> build(
      const std::vector<Module*>& tops);

  ~CompiledProgram() = default;
  CompiledProgram(const CompiledProgram&) = delete;
  CompiledProgram& operator=(const CompiledProgram&) = delete;

  // One settle pass: runs the schedule, iterating cyclic segments to a
  // fixpoint bounded by maxIterationsPerSegment.  Returns the number of
  // units executed (ops + thunk evaluations, including iteration repeats).
  // When profileBase is non-null, each execution increments
  // profileBase[unit.moduleIndex].
  std::uint64_t settle(std::uint64_t maxIterationsPerSegment,
                       std::uint64_t* profileBase);

  // One clock edge: runs the edge tape (registered state and counters
  // only; wires are untouched, matching the clockEdge() contract).
  void edge();

  // Materializes every bound wire's final arena value into the wire, then
  // detaches it from the arena (get() reads the cached value once the
  // binding is gone).  Call before rebuilding or leaving Kernel::Compiled,
  // while the wires are still alive; the destructor deliberately does not
  // touch wires (they may already be gone when the simulator is torn down).
  void unbindWires() const;

  // --- introspection (tests, stats, docs) -------------------------------
  std::size_t wordCount() const { return wordCount_; }
  std::size_t unitCount() const { return units_.size(); }
  std::size_t opCount() const { return opCount_; }
  std::size_t thunkCount() const { return units_.size() - opCount_; }
  std::size_t edgeItemCount() const { return edges_.size(); }
  std::size_t segmentCount() const { return segments_.size(); }
  std::size_t iterateSegmentCount() const { return iterateSegments_; }
  std::uint64_t discoveryEvaluations() const { return discoveryEvals_; }

 private:
  friend class Lowering;
  CompiledProgram() = default;

  // A wire's slice plus the transfer machinery between the Wire object and
  // the arena.  `value` points at the wire's stored value (bool for
  // width-1 slices, a 4-byte integral otherwise), so the unbind-time
  // materialization is a direct store of the arena bits - no per-wire call.
  struct Binding {
    const WireBase* wire;
    void* value;                       // Wire<T>::arenaValueSlot()
    std::uint32_t word;
    std::uint8_t shift;
    std::uint8_t width;                // 1 or 32
    void (*store)(const WireBase*);    // wire -> arena (Wire::syncArena)
  };

  // Pre-schedule unit as emitted by Lowering.
  struct UnitDraft {
    OpFn fn = nullptr;
    void* ctx = nullptr;
    Module* thunk = nullptr;
    std::vector<const WireBase*> reads;
    std::vector<const WireBase*> writes;
    std::uint32_t moduleIndex = 0;
  };

  // Scheduled unit: op (fn != nullptr) or behavioural thunk (whose wire
  // reads refresh from the arena inside Wire::get, needing no pre-flush).
  struct ExecUnit {
    OpFn fn;
    void* ctx;
    Module* thunk;
    std::uint32_t moduleIndex;
  };

  // A run of scheduled units.  iterate=false: one pass (topologically
  // safe).  iterate=true: a genuine SCC; repeat until neither the watched
  // arena words nor any Wire changes.
  struct Segment {
    std::uint32_t begin;
    std::uint32_t end;
    std::uint32_t watchBegin;
    std::uint32_t watchEnd;
    bool iterate;
  };

  struct EdgeItem {
    OpFn fn;
    void* ctx;
    Module* call;
  };

  // Batched interpreter stream: a maximal stretch of identical-fn ops whose
  // packed contexts sit at a fixed stride (count == 1 covers everything
  // else, including thunks/calls with fn == nullptr).  The run loop hoists
  // the fn load and unit bookkeeping out of the hot call sequence; since
  // execution order is exactly the unit order, results are bit-identical.
  struct Run {
    OpFn fn;
    void* ctx;
    Module* behavioural;  // thunk (settle) or clockEdge target (edge tape)
    std::uint32_t stride;
    std::uint32_t count;
  };

  std::uint32_t newWord() { return wordCount_++; }
  void* allocCtx(std::size_t size, std::size_t align);
  void walk(Lowering& lw, Module& m);
  void finalize();
  void scheduleUnits();
  void runUnit(const ExecUnit& u, std::uint64_t* profileBase);
  [[noreturn]] void throwUnsettled(std::uint64_t bound) const;

  // Arena: the authoritative packed signal state while the program is
  // bound (wires read through to it, see wire.hpp).
  std::vector<std::uint64_t> cur_;
  std::uint32_t wordCount_ = 0;

  // Packing cursors for the slice allocator.
  std::int64_t bitWord_ = -1;
  unsigned bitUsed_ = 0;
  std::int64_t halfWord_ = -1;
  unsigned halfUsed_ = 0;

  std::vector<Binding> bindings_;
  std::unordered_map<const WireBase*, std::size_t> bindingIndex_;

  std::vector<UnitDraft> drafts_;
  std::vector<ExecUnit> units_;
  std::vector<Segment> segments_;
  std::vector<std::uint32_t> watchWords_;  // arena words (iterate segments)
  std::vector<std::uint64_t> watchScratch_;
  std::vector<EdgeItem> edges_;

  // Batched streams (see Run).  Linear segments execute runs_ via
  // segRuns_[segment] = [begin, end); profiling falls back to the per-unit
  // walk for attribution.  Iterate segments always walk units (they are
  // small and need per-pass change tracking anyway).
  std::vector<Run> runs_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> segRuns_;
  std::vector<Run> edgeRuns_;
  void buildRuns();

  // Op context arena (Lowering::ctx): chunked so pointers stay stable as
  // it grows; freed wholesale with the program.  After scheduling,
  // packContexts() re-copies each unit's context into execution order
  // (duplicating shared contexts - they are immutable at run time), so the
  // interpreter streams contexts sequentially instead of hopping through
  // describe-order allocations.
  std::vector<std::unique_ptr<unsigned char[]>> ctxChunks_;
  std::size_t ctxChunkUsed_ = 0;
  std::size_t ctxChunkCap_ = 0;
  std::unordered_map<const void*, std::uint32_t> ctxSize_;
  void packContexts();

  std::size_t opCount_ = 0;
  std::size_t iterateSegments_ = 0;
  std::uint64_t discoveryEvals_ = 0;
};

template <typename T>
Slice Lowering::slice(const Wire<T>& w, int width) {
  auto [it, inserted] =
      prog_.bindingIndex_.try_emplace(&w, prog_.bindings_.size());
  if (!inserted) {
    const CompiledProgram::Binding& b = prog_.bindings_[it->second];
    if (b.width != width)
      throw std::logic_error("Lowering: wire placed with conflicting widths");
    return {b.word, b.shift};
  }
  std::uint32_t word;
  std::uint8_t shift;
  if (width == 1) {
    if (prog_.bitWord_ < 0 || prog_.bitUsed_ == 64) {
      prog_.bitWord_ = prog_.newWord();
      prog_.bitUsed_ = 0;
    }
    word = static_cast<std::uint32_t>(prog_.bitWord_);
    shift = static_cast<std::uint8_t>(prog_.bitUsed_++);
  } else {
    if (prog_.halfWord_ < 0 || prog_.halfUsed_ == 2) {
      prog_.halfWord_ = prog_.newWord();
      prog_.halfUsed_ = 0;
    }
    word = static_cast<std::uint32_t>(prog_.halfWord_);
    shift = static_cast<std::uint8_t>(32 * prog_.halfUsed_++);
  }
  static_assert(std::is_same_v<T, bool> || sizeof(T) == 4,
                "flush tables store raw 4-byte integrals");
  prog_.bindings_.push_back(
      {&w, w.arenaValueSlot(), word, shift, static_cast<std::uint8_t>(width),
       [](const WireBase* wb) {
         static_cast<const Wire<T>*>(wb)->syncArena();
       }});
  return {word, shift};
}

}  // namespace rasoc::sim
