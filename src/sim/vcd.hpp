// Value Change Dump (IEEE 1364) writer - waveform output for the clocked
// simulator, so RASoC runs can be inspected in GTKWave just like the VHDL
// model under a commercial simulator.
//
// Usage:
//   VcdWriter vcd("rasoc");
//   vcd.addSignal("Lin.val", 1, [&] { return wires.val.get() ? 1u : 0u; });
//   ... per cycle, after settle():  vcd.sample(sim.cycle());
//   file << vcd.render();
//
// Signals wider than 1 bit are dumped in the binary vector form
// (`b1010 id`); scalars use the compact form (`1id`).  Only changed values
// are emitted per timestep, as the format requires.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rasoc::sim {

class VcdWriter {
 public:
  explicit VcdWriter(std::string topModule, std::string timescale = "1 ns");

  using Getter = std::function<std::uint64_t()>;

  // Registers a signal; `width` in bits (1..64).  Returns the identifier
  // code assigned to it.  Dots in `name` create scope hierarchy.
  std::string addSignal(std::string name, int width, Getter getter);

  // Samples every signal at `time` (usually the cycle number); emits value
  // changes for signals that differ from the previous sample.
  void sample(std::uint64_t time);

  // Complete VCD file contents (header + all sampled changes).
  std::string render() const;

  std::size_t signalCount() const { return signals_.size(); }

 private:
  struct Signal {
    std::string name;
    int width;
    Getter getter;
    std::string id;
    std::uint64_t lastValue = 0;
    bool everSampled = false;
  };

  static std::string idFor(std::size_t index);
  static std::string binary(std::uint64_t value, int width);

  std::string topModule_;
  std::string timescale_;
  std::vector<Signal> signals_;
  std::string body_;
  bool headerClosed_ = false;
};

}  // namespace rasoc::sim
