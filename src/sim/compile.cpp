#include "sim/compile.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "sim/module.hpp"

namespace rasoc::sim {

// --- Lowering ---------------------------------------------------------------

void Lowering::beginModule(Module& m) {
  current_ = &m;
  currentIndex_ = static_cast<std::uint32_t>(m.moduleIndex());
  descend_ = false;
}

std::uint32_t Lowering::flitWord(const Wire<std::uint32_t>& data,
                                 const Wire<bool>& bop,
                                 const Wire<bool>& eop) {
  auto it = prog_.bindingIndex_.find(&data);
  if (it != prog_.bindingIndex_.end()) {
    const CompiledProgram::Binding& d = prog_.bindings_[it->second];
    auto bIt = prog_.bindingIndex_.find(&bop);
    auto eIt = prog_.bindingIndex_.find(&eop);
    if (d.shift != 0 || bIt == prog_.bindingIndex_.end() ||
        eIt == prog_.bindingIndex_.end() ||
        prog_.bindings_[bIt->second].word != d.word ||
        prog_.bindings_[bIt->second].shift != kFlitBopShift ||
        prog_.bindings_[eIt->second].word != d.word ||
        prog_.bindings_[eIt->second].shift != kFlitEopShift)
      throw std::logic_error(
          "Lowering::flitWord: trio previously placed with a different "
          "layout");
    return d.word;
  }
  if (prog_.bindingIndex_.count(&bop) || prog_.bindingIndex_.count(&eop))
    throw std::logic_error(
        "Lowering::flitWord: bop/eop already placed outside a flit word");
  const std::uint32_t word = prog_.newWord();
  auto place = [&](const WireBase* w, void* value, std::uint8_t shift,
                   std::uint8_t width, void (*store)(const WireBase*)) {
    prog_.bindingIndex_.emplace(w, prog_.bindings_.size());
    prog_.bindings_.push_back({w, value, word, shift, width, store});
  };
  place(&data, data.arenaValueSlot(), 0, 32, [](const WireBase* wb) {
    static_cast<const Wire<std::uint32_t>*>(wb)->syncArena();
  });
  auto storeBool = [](const WireBase* wb) {
    static_cast<const Wire<bool>*>(wb)->syncArena();
  };
  place(&bop, bop.arenaValueSlot(), static_cast<std::uint8_t>(kFlitBopShift),
        1, storeBool);
  place(&eop, eop.arenaValueSlot(), static_cast<std::uint8_t>(kFlitEopShift),
        1, storeBool);
  return word;
}

void* Lowering::allocCtx(std::size_t size, std::size_t align) {
  return prog_.allocCtx(size, align);
}

void* CompiledProgram::allocCtx(std::size_t size, std::size_t align) {
  ctxChunkUsed_ = (ctxChunkUsed_ + align - 1) & ~(align - 1);
  if (ctxChunks_.empty() || ctxChunkUsed_ + size > ctxChunkCap_) {
    ctxChunkCap_ = std::max<std::size_t>(size, std::size_t{1} << 16);
    ctxChunks_.push_back(std::make_unique<unsigned char[]>(ctxChunkCap_));
    ctxChunkUsed_ = 0;
  }
  void* p = ctxChunks_.back().get() + ctxChunkUsed_;
  ctxChunkUsed_ += size;
  ctxSize_.emplace(p, static_cast<std::uint32_t>(size));
  return p;
}

void Lowering::op(OpFn fn, void* ctx, std::vector<const WireBase*> reads,
                  std::vector<const WireBase*> writes) {
  CompiledProgram::UnitDraft d;
  d.fn = fn;
  d.ctx = ctx;
  d.reads = std::move(reads);
  d.writes = std::move(writes);
  d.moduleIndex = currentIndex_;
  prog_.drafts_.push_back(std::move(d));
}

void Lowering::thunk(Module& m) {
  // Discover the write set by running evaluate() once under the write
  // recorder (stable-write-set contract, shared with the partitioner).
  std::vector<const WireBase*> writes;
  SettleContext::armWriteRecorder(&writes);
  m.evaluateOne();
  SettleContext::armWriteRecorder(nullptr);
  ++prog_.discoveryEvals_;
  std::sort(writes.begin(), writes.end());
  writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
  thunkDeclared(m, m.sensitivities(), std::move(writes));
}

void Lowering::thunkDeclared(Module& m, std::vector<const WireBase*> reads,
                             std::vector<const WireBase*> writes) {
  CompiledProgram::UnitDraft d;
  d.thunk = &m;
  d.reads = std::move(reads);
  d.writes = std::move(writes);
  d.moduleIndex = static_cast<std::uint32_t>(m.moduleIndex());
  prog_.drafts_.push_back(std::move(d));
}

void Lowering::edgeOp(OpFn fn, void* ctx) {
  prog_.edges_.push_back({fn, ctx, nullptr});
}

void Lowering::edgeCall(Module& m) {
  prog_.edges_.push_back({nullptr, nullptr, &m});
}

// --- build ------------------------------------------------------------------

void CompiledProgram::walk(Lowering& lw, Module& m) {
  lw.beginModule(m);
  const bool described = m.describe(lw);
  if (!described) {
    lw.thunk(m);
    lw.edgeCall(m);
    for (Module* child : m.children()) walk(lw, *child);
  } else if (lw.descendRequested()) {
    for (Module* child : m.children()) walk(lw, *child);
  }
}

std::unique_ptr<CompiledProgram> CompiledProgram::build(
    const std::vector<Module*>& tops) {
  std::unique_ptr<CompiledProgram> prog(new CompiledProgram());
  Lowering lw(*prog);
  for (Module* m : tops) prog->walk(lw, *m);
  prog->finalize();
  return prog;
}

void CompiledProgram::finalize() {
  cur_.assign(wordCount_, 0);
  // Point every wire at its slice and import the current wire values so
  // the arena starts coherent; write-through (set/force) and read-through
  // (get) keep the two views coherent from here on.
  for (const Binding& b : bindings_) {
    const std::uint64_t mask =
        (b.width == 1 ? std::uint64_t{1} : std::uint64_t{0xffffffff})
        << b.shift;
    b.wire->bindArena(&cur_[b.word], b.shift, mask);
    b.store(b.wire);
  }

  scheduleUnits();
  packContexts();
  buildRuns();
  drafts_.clear();
  drafts_.shrink_to_fit();
}

// Re-copies every unit's context into one arena laid out in execution
// order (settle tape first, then the edge tape).  Contexts are immutable
// once built, so shared contexts are simply duplicated; the win is that
// the interpreter's context loads become a sequential stream the hardware
// prefetcher covers, instead of describe-order hops.
void CompiledProgram::packContexts() {
  constexpr std::size_t kAlign = alignof(std::max_align_t);
  auto alignedSize = [&](std::uint32_t size) {
    return (static_cast<std::size_t>(size) + kAlign - 1) & ~(kAlign - 1);
  };
  std::size_t total = 0;
  auto measure = [&](void* ctx) {
    auto it = ctxSize_.find(ctx);
    if (it != ctxSize_.end()) total += alignedSize(it->second);
  };
  for (const ExecUnit& u : units_) measure(u.ctx);
  for (const EdgeItem& e : edges_) measure(e.ctx);

  std::vector<std::unique_ptr<unsigned char[]>> packed;
  packed.push_back(std::make_unique<unsigned char[]>(std::max<std::size_t>(
      total, 1)));
  unsigned char* base = packed.front().get();
  std::size_t used = 0;
  auto repack = [&](void*& ctx) {
    auto it = ctxSize_.find(ctx);
    if (it == ctxSize_.end()) return;
    std::memcpy(base + used, ctx, it->second);
    ctx = base + used;
    used += alignedSize(it->second);
  };
  for (ExecUnit& u : units_) repack(u.ctx);
  for (EdgeItem& e : edges_) repack(e.ctx);
  ctxChunks_ = std::move(packed);
  ctxChunkUsed_ = ctxChunkCap_ = 0;
  ctxSize_.clear();
}

// Collapse the unit and edge tapes into batched runs.  After packContexts()
// the contexts of a same-fn stretch sit at a constant positive stride, so
// the stretch executes as one hoisted-dispatch loop.  Detection is by raw
// pointer arithmetic — anything irregular just stays a count-1 run.
void CompiledProgram::buildRuns() {
  auto batch = [](std::vector<Run>& out, OpFn fn, void* ctx, Module* m) {
    if (fn != nullptr && !out.empty() && out.back().fn == fn) {
      Run& r = out.back();
      auto* prev = static_cast<unsigned char*>(r.ctx) +
                   static_cast<std::size_t>(r.stride) * (r.count - 1);
      const std::ptrdiff_t diff = static_cast<unsigned char*>(ctx) - prev;
      if (diff > 0 &&
          (r.count == 1 || diff == static_cast<std::ptrdiff_t>(r.stride))) {
        r.stride = static_cast<std::uint32_t>(diff);
        ++r.count;
        return;
      }
    }
    out.push_back({fn, ctx, m, 0, 1});
  };
  runs_.clear();
  segRuns_.clear();
  for (const Segment& s : segments_) {
    const std::uint32_t begin = static_cast<std::uint32_t>(runs_.size());
    if (!s.iterate)
      for (std::uint32_t i = s.begin; i != s.end; ++i)
        batch(runs_, units_[i].fn, units_[i].ctx, units_[i].thunk);
    segRuns_.emplace_back(begin, static_cast<std::uint32_t>(runs_.size()));
  }
  edgeRuns_.clear();
  for (const EdgeItem& e : edges_) batch(edgeRuns_, e.fn, e.ctx, e.call);
}

void CompiledProgram::scheduleUnits() {
  const std::uint32_t n = static_cast<std::uint32_t>(drafts_.size());

  // Wire -> writer units, then reader edges writer -> reader.
  std::unordered_map<const WireBase*, std::vector<std::uint32_t>> writers;
  for (std::uint32_t u = 0; u < n; ++u)
    for (const WireBase* w : drafts_[u].writes) writers[w].push_back(u);
  std::vector<std::vector<std::uint32_t>> succ(n);
  std::vector<bool> selfLoop(n, false);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (const WireBase* r : drafts_[u].reads) {
      auto it = writers.find(r);
      if (it == writers.end()) continue;
      for (std::uint32_t w : it->second) {
        if (w == u)
          selfLoop[u] = true;
        else
          succ[w].push_back(u);
      }
    }
  }
  for (auto& s : succ) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  // Iterative Tarjan.  Components are emitted sinks-first, so reading the
  // emission list backwards yields a topological order of the condensation.
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited), lowlink(n, 0);
  std::vector<bool> onStack(n, false);
  std::vector<std::uint32_t> stack;
  std::vector<std::vector<std::uint32_t>> comps;
  std::uint32_t nextIndex = 0;
  struct Frame {
    std::uint32_t v;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = nextIndex++;
    stack.push_back(root);
    onStack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < succ[f.v].size()) {
        const std::uint32_t w = succ[f.v][f.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = nextIndex++;
          stack.push_back(w);
          onStack[w] = true;
          frames.push_back({w, 0});
        } else if (onStack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const std::uint32_t v = f.v;
        frames.pop_back();
        if (!frames.empty())
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v],
                                              lowlink[v]);
        if (lowlink[v] == index[v]) {
          comps.emplace_back();
          for (;;) {
            const std::uint32_t w = stack.back();
            stack.pop_back();
            onStack[w] = false;
            comps.back().push_back(w);
            if (w == v) break;
          }
        }
      }
    }
  }

  // Dependency level per draft (longest path from a source), computed by
  // pushing levels forward in topological order of the condensation.
  // Members of a cyclic component share a level for scheduling purposes;
  // intra-component edges may bump it imprecisely, which is harmless
  // because iterate segments are never reordered.
  std::vector<std::uint32_t> level(n, 0);
  for (auto comp = comps.rbegin(); comp != comps.rend(); ++comp)
    for (std::uint32_t u : *comp)
      for (std::uint32_t s : succ[u])
        level[s] = std::max(level[s], level[u] + 1);
  std::vector<std::uint32_t> unitDraft;  // unit index -> draft index

  // Emit the schedule: singleton acyclic components extend the current
  // linear segment; genuine cycles get their own iterate segment.  Units
  // within a component run in emission (lowering) order, which tracks the
  // behavioural module walk and keeps the schedule deterministic.
  auto openSegment = [&](bool iterate) {
    Segment s;
    s.begin = s.end = static_cast<std::uint32_t>(units_.size());
    s.watchBegin = s.watchEnd = static_cast<std::uint32_t>(watchWords_.size());
    s.iterate = iterate;
    segments_.push_back(s);
  };
  auto appendUnit = [&](std::uint32_t u) {
    unitDraft.push_back(u);
    const UnitDraft& d = drafts_[u];
    ExecUnit e{};
    e.fn = d.fn;
    e.ctx = d.ctx;
    e.thunk = d.thunk;
    e.moduleIndex = d.moduleIndex;
    if (!d.thunk) ++opCount_;
    units_.push_back(e);
    segments_.back().end = static_cast<std::uint32_t>(units_.size());
    if (segments_.back().iterate) {
      // Watch the arena words this unit's op writes land in; thunk writes
      // are tracked through SettleContext instead.
      for (const WireBase* w : d.writes) {
        auto it = bindingIndex_.find(w);
        if (it != bindingIndex_.end())
          watchWords_.push_back(bindings_[it->second].word);
      }
    }
  };

  bool linearOpen = false;
  for (auto comp = comps.rbegin(); comp != comps.rend(); ++comp) {
    std::sort(comp->begin(), comp->end());
    const bool iterate = comp->size() > 1 || selfLoop[comp->front()];
    if (iterate) {
      openSegment(true);
      ++iterateSegments_;
      for (std::uint32_t u : *comp) appendUnit(u);
      auto& seg = segments_.back();
      std::sort(watchWords_.begin() + seg.watchBegin, watchWords_.end());
      watchWords_.erase(std::unique(watchWords_.begin() + seg.watchBegin,
                                    watchWords_.end()),
                        watchWords_.end());
      seg.watchEnd = static_cast<std::uint32_t>(watchWords_.size());
      linearOpen = false;
    } else {
      if (!linearOpen) {
        openSegment(false);
        linearOpen = true;
      }
      appendUnit(comp->front());
    }
  }
  // Level-sort each linear segment: any topological order of an acyclic
  // segment reaches the same fixpoint in a single pass, so we are free to
  // pick the order that interprets fastest — by dependency level, then by
  // op function.  Long same-target runs make the indirect calls perfectly
  // predicted and keep each op body hot in the I-cache; results are
  // bit-identical because level order respects every writer->reader edge.
  for (const Segment& s : segments_) {
    if (s.iterate || s.end - s.begin < 2) continue;
    std::vector<std::uint32_t> order(s.end - s.begin);
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = s.begin + i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       const std::uint32_t la = level[unitDraft[a]];
                       const std::uint32_t lb = level[unitDraft[b]];
                       if (la != lb) return la < lb;
                       return reinterpret_cast<std::uintptr_t>(units_[a].fn) <
                              reinterpret_cast<std::uintptr_t>(units_[b].fn);
                     });
    std::vector<ExecUnit> sorted(order.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
      sorted[i] = units_[order[i]];
    std::copy(sorted.begin(), sorted.end(),
              units_.begin() + s.begin);
  }

  std::size_t maxWatch = 0;
  for (const Segment& s : segments_)
    maxWatch = std::max<std::size_t>(maxWatch, s.watchEnd - s.watchBegin);
  watchScratch_.resize(maxWatch);
}

// --- run --------------------------------------------------------------------

inline void CompiledProgram::runUnit(const ExecUnit& u,
                                     std::uint64_t* profileBase) {
  if (u.fn)
    u.fn(cur_.data(), u.ctx);
  else
    u.thunk->evaluateOne();  // wire reads refresh from the arena in get()
  if (profileBase) ++profileBase[u.moduleIndex];
}

void CompiledProgram::throwUnsettled(std::uint64_t bound) const {
  throw std::runtime_error(
      "Kernel::Compiled: cyclic segment failed to settle within " +
      std::to_string(bound) +
      " iterations - combinational loop (raise "
      "Simulator::setMaxSettleIterations if the design is legitimately "
      "deep)");
}

std::uint64_t CompiledProgram::settle(std::uint64_t maxIterationsPerSegment,
                                      std::uint64_t* profileBase) {
  std::uint64_t executed = 0;
  for (std::size_t si = 0; si < segments_.size(); ++si) {
    const Segment& seg = segments_[si];
    if (!seg.iterate) {
      if (profileBase == nullptr) {
        // Batched fast path: identical order and calls as the per-unit
        // walk, with the dispatch hoisted out of each same-fn stretch.
        const auto [rb, re] = segRuns_[si];
        for (std::uint32_t ri = rb; ri != re; ++ri) {
          const Run& r = runs_[ri];
          if (r.fn == nullptr) {
            r.behavioural->evaluateOne();
            continue;
          }
          auto* c = static_cast<unsigned char*>(r.ctx);
          for (std::uint32_t k = 0; k != r.count; ++k) {
            r.fn(cur_.data(), c);
            c += r.stride;
          }
        }
      } else {
        for (std::uint32_t i = seg.begin; i != seg.end; ++i)
          runUnit(units_[i], profileBase);
      }
      executed += seg.end - seg.begin;
      continue;
    }
    const std::uint32_t nWatch = seg.watchEnd - seg.watchBegin;
    std::uint64_t iterations = 0;
    for (;;) {
      for (std::uint32_t k = 0; k < nWatch; ++k)
        watchScratch_[k] = cur_[watchWords_[seg.watchBegin + k]];
      SettleContext::clearChanged();
      for (std::uint32_t i = seg.begin; i != seg.end; ++i)
        runUnit(units_[i], profileBase);
      executed += seg.end - seg.begin;
      bool changed = SettleContext::changed();
      if (!changed) {
        for (std::uint32_t k = 0; k < nWatch; ++k) {
          if (watchScratch_[k] != cur_[watchWords_[seg.watchBegin + k]]) {
            changed = true;
            break;
          }
        }
      }
      if (!changed) break;
      if (++iterations >= maxIterationsPerSegment)
        throwUnsettled(maxIterationsPerSegment);
    }
  }
  return executed;
}

void CompiledProgram::edge() {
  for (const Run& r : edgeRuns_) {
    if (r.fn == nullptr) {
      r.behavioural->clockEdgeOne();
      continue;
    }
    auto* c = static_cast<unsigned char*>(r.ctx);
    for (std::uint32_t k = 0; k != r.count; ++k) {
      r.fn(cur_.data(), c);
      c += r.stride;
    }
  }
}

void CompiledProgram::unbindWires() const {
  // Materialize the final arena value into each wire before detaching:
  // once unbound, get() serves the cached value with no arena to consult.
  for (const Binding& b : bindings_) {
    const std::uint64_t bits = cur_[b.word] >> b.shift;
    if (b.width == 1) {
      *static_cast<bool*>(b.value) = (bits & 1) != 0;
    } else {
      const std::uint32_t v = static_cast<std::uint32_t>(bits);
      std::memcpy(b.value, &v, sizeof(v));
    }
    b.wire->unbindArena();
  }
}

}  // namespace rasoc::sim
