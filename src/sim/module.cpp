#include "sim/module.hpp"

#include "sim/wire.hpp"

namespace rasoc::sim {

Module::Module(std::string name) : name_(std::move(name)) {}

void Module::resetAll() {
  onReset();
  for (Module* child : children_) child->resetAll();
}

void Module::evaluateAll() {
  evaluate();
  for (Module* child : children_) child->evaluateAll();
}

void Module::clockEdgeAll() {
  clockEdge();
  for (Module* child : children_) child->clockEdgeAll();
}

void Module::sensitive(const WireBase& wire) {
  reads_.push_back(&wire);
  wire.addSensitive(this);
}

}  // namespace rasoc::sim
