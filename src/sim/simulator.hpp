// Two-phase clocked simulator.
//
// Each cycle:
//   1. settle(): bring the combinational network to a fixpoint (no Wire
//      changes value).  A bounded evaluation count guards against
//      combinational loops; exceeding it throws.
//   2. tick(): run every module's clockEdge() once (synchronous state
//      update), then increment the cycle counter.
//
// step() = settle() + tick().  Testbenches that poke inputs between cycles
// should: poke wires -> step() -> observe.  Poking (set/force) is legal
// only between cycles; Wire::force throws if called during a settle phase.
//
// Two settle kernels compute the same fixpoint:
//
//  * Kernel::Naive - re-runs every module's evaluate() in registration
//    order until a full pass changes no wire.  Requires nothing from the
//    modules beyond idempotent evaluate(); cost is
//    O(modules x propagation depth) per cycle.
//  * Kernel::EventDriven - keeps a dirty worklist seeded from sequential
//    modules after each clock edge and from wires poked between cycles,
//    and evaluates only modules whose declared inputs changed
//    (Module::sensitive / Module::declareSequential).  Cost is
//    proportional to actual signal activity.  Modules with incomplete
//    sensitivity annotations produce stale outputs under this kernel; the
//    naive kernel is the reference to A/B against (see
//    tests/noc/kernel_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/module.hpp"

namespace rasoc::sim {

class Simulator final : private EvalScheduler {
 public:
  enum class Kernel { Naive, EventDriven };

  Simulator() = default;

  // Registered modules keep a backpointer into this scheduler; moving or
  // copying the simulator would dangle them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Registers a top-level module (and, transitively, its children).
  // Non-owning; the module must outlive the simulator's use of it.
  void add(Module& m) {
    tops_.push_back(&m);
    modulesStale_ = true;
  }

  // Selects the settle kernel.  Switching to EventDriven re-seeds every
  // module so no stale state survives the transition.
  void setKernel(Kernel kernel);
  Kernel kernel() const { return kernel_; }

  // Resets registered state in every module and restarts the cycle count.
  void reset();

  // Runs evaluate() passes until the combinational network is stable.
  // Throws std::runtime_error if no fixpoint is reached within the
  // evaluation bound derived from maxSettleIterations() (combinational
  // loop).
  void settle();

  // Commits one clock edge.  Callers normally use step() instead.
  void tick();

  // One full cycle: settle + clock edge.
  void step();

  // Runs n full cycles.
  void run(std::uint64_t n);

  // Steps until pred() is true after a settle phase, or maxCycles elapsed.
  // Returns true if the predicate fired.  The predicate is evaluated at
  // most maxCycles times (once per cycle, post-settle); the cycle in which
  // it fires is *not* ticked, so registered state is left just before the
  // edge.  On timeout the network is left settled but the final state is
  // not checked - a predicate first true after exactly maxCycles ticks
  // reports failure, keeping the bound a bound.
  bool runUntil(const std::function<bool()>& pred, std::uint64_t maxCycles);

  // Registers a callback invoked after every committed clock edge (state
  // post-edge, cycle() already advanced).  Samplers - per-cycle telemetry
  // gauges, waveform capture - hook here without becoming modules.
  void addTickListener(std::function<void()> listener) {
    tickListeners_.push_back(std::move(listener));
  }

  std::uint64_t cycle() const { return cycle_; }

  // Naive kernel: maximum full evaluation passes per settle.  Event-driven
  // kernel: the per-settle evaluation bound is maxSettleIterations() x the
  // module count, so both kernels tolerate the same combinational depth.
  int maxSettleIterations() const { return maxSettleIterations_; }
  void setMaxSettleIterations(int n) { maxSettleIterations_ = n; }

  // Total evaluate() calls issued by settle() since construction - the
  // kernel-independent work metric bench_sim_speed reports.
  std::uint64_t evaluateCalls() const { return evaluateCalls_; }

  // Modules known to the simulator (tops plus transitive children).
  std::size_t moduleCount() {
    ensureCollected();
    return modules_.size();
  }

 private:
  void enqueueDirty(Module* m) override {
    if (kernel_ == Kernel::EventDriven) worklist_.push_back(m);
  }

  // Rebuilds the flattened module list (and scheduler backpointers) after
  // add(); re-seeds the worklist so new modules get an initial evaluation.
  void ensureCollected();
  void seedAll();
  void settleNaive();
  void settleEventDriven();

  std::vector<Module*> tops_;
  std::vector<Module*> modules_;     // flattened: tops + children
  std::vector<Module*> sequential_;  // subset re-seeded every tick
  std::vector<Module*> worklist_;    // dirty modules awaiting evaluation
  std::vector<std::function<void()>> tickListeners_;
  std::uint64_t cycle_ = 0;
  std::uint64_t evaluateCalls_ = 0;
  int maxSettleIterations_ = 64;
  Kernel kernel_ = Kernel::Naive;
  bool modulesStale_ = true;
};

}  // namespace rasoc::sim
