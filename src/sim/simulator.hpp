/// \file
/// Two-phase clocked simulator.
///
/// Each cycle:
///   1. settle(): bring the combinational network to a fixpoint (no Wire
///      changes value).  A bounded evaluation count guards against
///      combinational loops; exceeding it throws.
///   2. tick(): run every module's clockEdge() once (synchronous state
///      update), then increment the cycle counter.
///
/// step() = settle() + tick().  Testbenches that poke inputs between cycles
/// should: poke wires -> step() -> observe.  Poking (set/force) is legal
/// only between cycles; Wire::force throws if called during a settle phase.
///
/// Three settle kernels compute the same fixpoint:
///
///  * Kernel::Naive - re-runs every module's evaluate() in registration
///    order until a full pass changes no wire.  Requires nothing from the
///    modules beyond idempotent evaluate(); cost is
///    O(modules x propagation depth) per cycle.
///  * Kernel::EventDriven - keeps a dirty worklist seeded from sequential
///    modules after each clock edge and from wires poked between cycles,
///    and evaluates only modules whose declared inputs changed
///    (Module::sensitive / Module::declareSequential).  Cost is
///    proportional to actual signal activity.  Modules with incomplete
///    sensitivity annotations produce stale outputs under this kernel; the
///    naive kernel is the reference to A/B against (see
///    tests/noc/kernel_equivalence_test.cpp).
///  * Kernel::ParallelEventDriven - the event-driven worklist sharded into
///    setThreads() per-thread domains (placement guided by
///    Module::setPartitionHint, interior/frontier classification in
///    sim/partition.hpp).  A settle is a sequence of rounds: every domain
///    sweeps its private worklist in parallel, a barrier ends the round,
///    and the frontier modules whose wires cross domains are evaluated in
///    one deterministic sequential reduction before the next round.
///    Interior modules touch only single-domain wires, so the parallel
///    phase is race-free by construction (no atomics; DESIGN.md carries the
///    full argument), and because evaluate() is pure and idempotent the
///    fixpoint - and with it every simulation result - is bit-identical to
///    EventDriven for every thread count (tests/noc/kernel_trichotomy_test
///    and the differential fuzz suite enforce this).  Extra module
///    contract: evaluate() must drive the same wire set on every call;
///    write sets are discovered once at partition build, and debug builds
///    re-check every parallel evaluation against them.
///  * Kernel::Compiled - lowers the module tree once into a word-packed
///    state arena plus a levelized op tape (sim/compile.hpp) and settles by
///    interpreting the flat op arrays: no virtual dispatch, no per-wire
///    fanout scans, one topologically ordered pass (cyclic stretches, e.g.
///    fault thunks, iterate locally).  Modules lower themselves through
///    Module::describe(); undescribed modules run behaviourally as fallback
///    thunks, so the kernel is exact for arbitrary module soups.  Wires
///    write through to the arena on set()/force() (the poke window keeps
///    working) and settled words are flushed back, so all wire-level
///    observers behave as under the other kernels.  Single-threaded:
///    setThreads(>1) with this kernel throws.  The program is rebuilt
///    automatically after add(), reset(), or a telemetry attach.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/module.hpp"
#include "sim/partition.hpp"

namespace rasoc::sim {

class CompiledProgram;
class SettlePool;

class Simulator final : private EvalScheduler {
 public:
  enum class Kernel { Naive, EventDriven, ParallelEventDriven, Compiled };

  /// Lifetime work counters of the parallel kernel, folded in fixed domain
  /// order at the end of every settle (never in thread-completion order, so
  /// they are deterministic for a given thread count).
  struct ParallelKernelStats {
    std::uint64_t rounds = 0;  // barrier-delimited parallel phases
    std::uint64_t frontierEvaluations = 0;
    std::vector<std::uint64_t> domainEvaluations;  // one slot per domain
    std::size_t frontierModules = 0;  // of the current partition
    std::size_t domains = 1;
  };

  Simulator();
  ~Simulator();

  /// Registered modules keep a backpointer into this scheduler; moving or
  /// copying the simulator would dangle them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a top-level module (and, transitively, its children).
  /// Non-owning; the module must outlive the simulator's use of it.
  void add(Module& m) {
    tops_.push_back(&m);
    modulesStale_ = true;
    compiledStale_ = true;
  }

  /// Selects the settle kernel.  Legal only before the first cycle (or
  /// after reset()): a mid-run switch would hand the new kernel a stale
  /// worklist, so it throws std::logic_error once cycle() is nonzero.
  void setKernel(Kernel kernel);
  Kernel kernel() const { return kernel_; }

  /// Worker-thread count for Kernel::ParallelEventDriven (ignored by the
  /// other kernels; 1 runs the same sharded algorithm inline).  Changing it
  /// repartitions the module graph, so like setKernel it throws
  /// std::logic_error after the first cycle.
  void setThreads(int n);
  int threads() const { return threads_; }

  /// The parallel kernel's module partition, built on first use (the build
  /// evaluates every module once for write-set discovery).  Throws
  /// std::logic_error under the other kernels.
  const Partition& partition();

  const ParallelKernelStats& parallelStats() const { return parallelStats_; }

  /// The compiled kernel's current program, or nullptr when no program is
  /// built (other kernel active, or no settle yet).  Introspection only
  /// (unit/word/segment counts for tests and stats).
  const CompiledProgram* compiledProgram() const { return program_.get(); }

  /// Resets registered state in every module and restarts the cycle count.
  void reset();

  /// Runs evaluate() passes until the combinational network is stable.
  /// Throws std::runtime_error if no fixpoint is reached within the
  /// evaluation bound derived from maxSettleIterations() (combinational
  /// loop).
  void settle();

  /// Commits one clock edge.  Callers normally use step() instead.
  void tick();

  /// One full cycle: settle + clock edge.
  void step();

  /// Runs n full cycles.
  void run(std::uint64_t n);

  /// Steps until pred() is true after a settle phase, or maxCycles elapsed.
  /// Returns true if the predicate fired.  The predicate is evaluated at
  /// most maxCycles times (once per cycle, post-settle); the cycle in which
  /// it fires is *not* ticked, so registered state is left just before the
  /// edge.  On timeout the network is left settled but the final state is
  /// not checked - a predicate first true after exactly maxCycles ticks
  /// reports failure, keeping the bound a bound.
  bool runUntil(const std::function<bool()>& pred, std::uint64_t maxCycles);

  /// Registers a callback invoked after every committed clock edge (state
  /// post-edge, cycle() already advanced).  Samplers - per-cycle telemetry
  /// gauges, waveform capture - hook here without becoming modules.
  void addTickListener(std::function<void()> listener) {
    tickListeners_.push_back(std::move(listener));
  }

  std::uint64_t cycle() const { return cycle_; }

  /// Naive kernel: maximum full evaluation passes per settle.  Event-driven
  /// kernels: the per-settle evaluation bound is maxSettleIterations() x the
  /// module count (per domain and for the frontier, under the parallel
  /// kernel), so all kernels tolerate the same combinational depth.
  int maxSettleIterations() const { return maxSettleIterations_; }
  void setMaxSettleIterations(int n) { maxSettleIterations_ = n; }

  /// Total evaluate() calls issued by settle() since construction - the
  /// kernel-independent work metric bench_sim_speed reports.  Monotone
  /// non-decreasing and deterministic for a given kernel and thread count
  /// (the parallel kernel folds per-domain counts in fixed domain order);
  /// different thread counts partition differently and may report different
  /// totals for identical simulation results.
  std::uint64_t evaluateCalls() const { return evaluateCalls_; }

  /// Turns on per-module evaluate() attribution for whichever kernel is
  /// active.  Off by default: the settle loops then pay one null-pointer
  /// test per evaluation and write nothing, so unprofiled runs keep their
  /// exact behaviour.  Counts accumulate from the call onward and survive
  /// reset(); modules added later extend the table with zeroed slots.
  /// Race-free under the parallel kernel: each interior module is evaluated
  /// only by its owning domain's thread and frontier modules only by the
  /// sequential phase, so every counter slot has a single writer per settle.
  void enableProfiling();
  bool profilingEnabled() const { return profileBase_ != nullptr; }

  /// Per-module evaluate() counts since enableProfiling(), indexed by
  /// Module::moduleIndex().  Empty when profiling is off.
  const std::vector<std::uint64_t>& profileCounts() const {
    return profileCounts_;
  }

  /// The up-to-n costliest modules as (name, evaluate count), highest
  /// count first; ties break toward the lower module index so the ranking
  /// is deterministic.
  std::vector<std::pair<std::string, std::uint64_t>> hottestModules(
      std::size_t n);

  /// Modules known to the simulator (tops plus transitive children).
  std::size_t moduleCount() {
    ensureCollected();
    return modules_.size();
  }

 private:
  /// Where enqueueDirty routes a woken module while the parallel kernel is
  /// inside a settle phase.  At most one route is active per thread
  /// (thread_local), so concurrent domain sweeps never see each other's
  /// lists; with no route active (between cycles, clock edges) wakes fall
  /// through to the shared pending worklist.
  struct EnqueueRoute {
    Simulator* owner = nullptr;
    std::vector<Module*>* interiorSink = nullptr;  // same-domain interior
    std::vector<Module*>* frontierSink = nullptr;  // frontier wakes
    bool frontierPhase = false;  // interior wakes go to domains_[d].next
  };

  class RouteGuard;

  /// Per-domain working state for one settle of the parallel kernel.
  struct DomainRun {
    std::vector<Module*> run;       // this round's worklist
    std::vector<Module*> next;      // interior wakes from the frontier phase
    std::vector<Module*> deferred;  // frontier wakes from this domain
    std::uint64_t evals = 0;        // this settle only; folded afterwards
    bool overBudget = false;
  };

  void enqueueDirty(Module* m) override;
  void describeChanged() override { compiledStale_ = true; }

  /// Rebuilds the flattened module list (and scheduler backpointers) after
  /// add(); re-seeds the worklist so new modules get an initial evaluation.
  void ensureCollected();
  void seedAll();
  void settleNaive();
  void settleEventDriven();
  void settleParallel();
  void settleCompiled();
  void ensureProgramBuilt();
  void releaseProgram();
  void ensurePartitionBuilt();
  void runParallelRounds();
  void drainDomain(int d);
  void cleanupParallelLists();
  void foldParallelCounters();
#ifndef NDEBUG
  void validateWrites(const Module* m,
                      const std::vector<const WireBase*>& writes) const;
#endif

  static thread_local EnqueueRoute* tlsRoute_;

  std::vector<Module*> tops_;
  std::vector<Module*> modules_;     // flattened: tops + children
  std::vector<int> hints_;           // effective partition hint per module
  std::vector<Module*> sequential_;  // subset re-seeded every tick
  std::vector<Module*> worklist_;    // dirty modules awaiting evaluation
  std::vector<std::function<void()>> tickListeners_;
  Partition partition_;
  std::vector<DomainRun> domains_;
  std::vector<Module*> frontierRun_;
  std::unique_ptr<SettlePool> pool_;
  std::unique_ptr<CompiledProgram> program_;
  ParallelKernelStats parallelStats_;
  std::vector<std::uint64_t> profileCounts_;  // one slot per module index
  /// profileCounts_.data() when profiling, else nullptr - the single flag
  /// the settle loops test.  Re-pointed whenever the table reallocates.
  std::uint64_t* profileBase_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::uint64_t evaluateCalls_ = 0;
  std::uint64_t frontierEvalsThisSettle_ = 0;
  int maxSettleIterations_ = 64;
  int threads_ = 1;
  Kernel kernel_ = Kernel::Naive;
  bool modulesStale_ = true;
  bool partitionStale_ = true;
  bool compiledStale_ = true;
};

}  // namespace rasoc::sim
