// Two-phase clocked simulator.
//
// Each cycle:
//   1. settle(): run every module's evaluate() repeatedly until no Wire
//      changes (combinational fixpoint).  A bounded iteration count guards
//      against combinational loops; exceeding it throws.
//   2. tick(): run every module's clockEdge() once (synchronous state
//      update), then increment the cycle counter.
//
// step() = settle() + tick().  Testbenches that poke inputs between cycles
// should: poke wires -> step() -> observe.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/module.hpp"

namespace rasoc::sim {

class Simulator {
 public:
  Simulator() = default;

  // Registers a top-level module.  Non-owning; the module must outlive the
  // simulator's use of it.
  void add(Module& m) { tops_.push_back(&m); }

  // Resets registered state in every module and restarts the cycle count.
  void reset();

  // Runs evaluate() passes until the combinational network is stable.
  // Throws std::runtime_error if no fixpoint is reached within
  // maxSettleIterations() passes (combinational loop).
  void settle();

  // Commits one clock edge.  Callers normally use step() instead.
  void tick();

  // One full cycle: settle + clock edge.
  void step();

  // Runs n full cycles.
  void run(std::uint64_t n);

  // Steps until pred() is true after a settle phase, or maxCycles elapsed.
  // Returns true if the predicate fired.  The cycle in which the predicate
  // fires is *not* ticked, so registered state is left just before the edge.
  bool runUntil(const std::function<bool()>& pred, std::uint64_t maxCycles);

  // Registers a callback invoked after every committed clock edge (state
  // post-edge, cycle() already advanced).  Samplers - per-cycle telemetry
  // gauges, waveform capture - hook here without becoming modules.
  void addTickListener(std::function<void()> listener) {
    tickListeners_.push_back(std::move(listener));
  }

  std::uint64_t cycle() const { return cycle_; }

  int maxSettleIterations() const { return maxSettleIterations_; }
  void setMaxSettleIterations(int n) { maxSettleIterations_ = n; }

 private:
  std::vector<Module*> tops_;
  std::vector<std::function<void()>> tickListeners_;
  std::uint64_t cycle_ = 0;
  int maxSettleIterations_ = 64;
};

}  // namespace rasoc::sim
