// Fixed-size worker pool for the parallel settle kernel.
//
// run(job) executes job(i) on worker i for every worker and returns once
// all of them have finished - one barrier-delimited parallel phase.
// Exceptions thrown by a job are captured and rethrown on the caller (the
// lowest worker index wins when several throw, keeping the propagated
// error deterministic).  Synchronization is one mutex plus two condvars:
// settle phases are coarse (hundreds to thousands of evaluate() calls per
// handoff), so lock-based signalling costs nothing measurable and keeps
// every cross-thread access visibly synchronized for ThreadSanitizer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rasoc::sim {

class SettlePool {
 public:
  explicit SettlePool(int workers);
  ~SettlePool();

  SettlePool(const SettlePool&) = delete;
  SettlePool& operator=(const SettlePool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  // Runs job(i) on worker i for every i in [0, workers()); blocks until
  // all are done, then rethrows the first captured worker exception, if
  // any.  Not reentrant; one run at a time.
  void run(const std::function<void(int)>& job);

 private:
  void workerLoop(int index);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(int)>* job_ = nullptr;
  std::vector<std::exception_ptr> errors_;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rasoc::sim
