// Lightweight signal tracing.
//
// A Tracer samples named probes once per cycle and renders a textual
// waveform table — enough to debug protocol issues without a full VCD
// stack.  Probes are std::function<uint64_t()> so any wire or registered
// state can be observed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rasoc::sim {

class Tracer {
 public:
  using Probe = std::function<std::uint64_t()>;

  void addProbe(std::string name, Probe probe);

  // Samples every probe; call once per cycle after settle().
  void sample(std::uint64_t cycle);

  std::size_t sampleCount() const { return rows_.size(); }

  // Value of probe `name` at sample index `row` (not cycle number).
  std::uint64_t value(std::size_t row, const std::string& name) const;

  // Renders all samples as an aligned table, one row per cycle.
  std::string render() const;

  void clear() { rows_.clear(); }

 private:
  struct Channel {
    std::string name;
    Probe probe;
  };
  struct Row {
    std::uint64_t cycle;
    std::vector<std::uint64_t> values;
  };

  std::vector<Channel> channels_;
  std::vector<Row> rows_;
};

}  // namespace rasoc::sim
