#include "router/credit.hpp"

// Header-only behaviour; this translation unit anchors the library symbol.
