#include "router/credit.hpp"

#include <stdexcept>

namespace rasoc::router {

void VcCredits::reset(int numVCs, int depth) {
  if (numVCs < 1 || numVCs > kMaxVCs)
    throw std::invalid_argument("VcCredits: numVCs must be in [1,kMaxVCs]");
  numVCs_ = numVCs;
  depth_ = depth;
  credits_.fill(0);
  for (int v = 0; v < numVCs; ++v)
    credits_[static_cast<std::size_t>(v)] = depth;
}

void VcCredits::onSent(int v) {
  int& c = credits_[static_cast<std::size_t>(v)];
  if (c <= 0)
    throw std::logic_error("VcCredits: sent without an available credit");
  --c;
}

void VcCredits::onReturn(int v) { ++credits_[static_cast<std::size_t>(v)]; }

bool VcCredits::conserved() const {
  for (int v = 0; v < numVCs_; ++v) {
    const int c = credits_[static_cast<std::size_t>(v)];
    if (c < 0 || c > depth_) return false;
  }
  return true;
}

}  // namespace rasoc::router
