// ODS - Output Data Switch (paper Figure 6).
//
// A 4:1, (n+2)-bit multiplexer connecting the selected input channel's
// x_dout (data + framing) to the external output channel.  The paper's
// Table 3 shows these switches dominating router area (49% of the logic
// cells for the 32-bit configuration) because each bit costs a LUT tree
// (Figure 8).
#pragma once

#include <array>

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class Ods : public sim::Module {
 public:
  Ods(std::string name, const std::array<CrossbarWires, kNumPorts>& xbar,
      const sim::Wire<bool>& connected, const sim::Wire<int>& sel,
      FlitWires& out)
      : Module(std::move(name)),
        xbar_(&xbar),
        connected_(&connected),
        sel_(&sel),
        out_(&out) {
    sensitive(connected);
    sensitive(sel);
    for (const CrossbarWires& in : xbar) {
      sensitive(in.flit.data);
      sensitive(in.flit.bop);
      sensitive(in.flit.eop);
    }
  }

 protected:
  void evaluate() override {
    if (connected_->get()) {
      const CrossbarWires& src =
          (*xbar_)[static_cast<std::size_t>(sel_->get())];
      out_->data.set(src.flit.data.get());
      out_->bop.set(src.flit.bop.get());
      out_->eop.set(src.flit.eop.get());
    } else {
      out_->data.set(0);
      out_->bop.set(false);
      out_->eop.set(false);
    }
  }

 private:
  const std::array<CrossbarWires, kNumPorts>* xbar_;
  const sim::Wire<bool>* connected_;
  const sim::Wire<int>* sel_;
  FlitWires* out_;
};

// --- VC-aware output data switch (numVCs > 1) ------------------------------
//
// The VC'd output channel (output_channel.hpp) time-multiplexes one
// physical link over its downstream VCs, so the data switch grows a second
// select dimension: it connects the crossbar flit of the (input port,
// input VC) pair scheduled this cycle to the external output and tags it
// with the downstream VC id.  Plain functions rather than a Module — the
// VC channel lowers as one behavioural unit.
void vcOutputDataSwitch(const CrossbarWires& src, int downVc, FlitWires& out,
                        sim::Wire<int>& outVc, sim::Wire<bool>& outVal);

// Idle drive: nothing scheduled on the link this cycle.
void vcOutputDataIdle(FlitWires& out, sim::Wire<int>& outVc,
                      sim::Wire<bool>& outVal);

}  // namespace rasoc::router
