// IC - Input Controller (paper Figure 5): the routing function.
//
// "It detects the presence of a header at the IB block output, analyses the
// Routing Information Bits (RIB) included in the header, runs the routing
// algorithm to select an output channel, emits a request to the selected
// output channel, and, finally, updates the routing information in the
// header to take into account the performed routing."
//
// The block is purely combinational (the paper's Table 3 reports 0% of the
// router's flip-flops in the IC):
//  * while the header flit (bop set) is at the buffer head, the routing
//    decision and the request to the chosen output channel are decoded
//    directly from the RIB, and x_dout carries the header with the RIB
//    already decremented for the hop being taken;
//  * once the header is read out the request drops - the *output
//    controller's* connection register holds the wormhole path until the
//    trailer passes, so payload flits (and buffer-empty bubbles) flow
//    without the IC's involvement.
//
// The own-port request line does not exist in hardware ("it is not allowed
// to an input channel to request the output channel of its own port"); the
// model keeps a sticky misroute flag so tests can assert the situation
// never arises.
#pragma once

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/flit.hpp"
#include "router/params.hpp"

namespace rasoc::router {

// --- VC-allocation stage (numVCs > 1) --------------------------------------
//
// With virtual channels the routing function grows a second output: besides
// the target port, each header names the downstream VCs it can use, as a
// bitmask on the `want` crossbar net.  Escape VCs
// (v < VcGeometry::escapeVCs()) carry deterministic dimension-order traffic
// and request exactly the dateline class of the next link (a one-bit mask);
// adaptive VCs may request any VC of their adaptive set — all adaptive VCs
// by default, or the class's qosVcMask() subset under
// RouterParams::qosClasses — of any minimal productive port, falling back
// to the escape path when starved (Duato's criterion: an adaptive packet
// can always reach the acyclic escape subnetwork, and packets on escape VCs
// never leave it).

// One candidate (output port, downstream-VC-set request) for a header.
struct VcRouteOption {
  Port port = Port::Local;
  unsigned want = 0;  // bitmask of acceptable downstream VCs
};

// Dateline class of the link leaving `out` for a packet at geometry `g`
// whose pre-hop routing offset is `rib`: class 1 while the remaining path
// along that axis still crosses the wrap link, class 0 after (and always 0
// on non-wrapping axes).  Stateless — position plus carried offset fully
// determine the class — so adaptive detours never corrupt it.  Per
// direction the class-1 channels ordered by coordinate, then the class-0
// channels, form a total order every dependency ascends: the escape
// subnetwork is acyclic (DESIGN.md §12).
int escapeClass(const VcGeometry& g, Port out, Rib rib);

// Fills `options` with the candidate bids for a header carrying `rib`, in
// preference order, and returns how many were written.  Escape VCs get
// exactly one option (the DOR port with its dateline class as a one-bit
// mask).  Adaptive VCs get the minimal productive ports west-first style (a
// negative X offset forces West before any adaptivity), each requesting
// `adaptiveMask` (the full adaptive VC set, or the packet class's
// qosVcMask() under QoS), then the escape option last so a starved header
// always converges onto the escape path.
int vcRouteOptions(const VcGeometry& g, Rib rib, bool adaptive,
                   RoutingAlgorithm routing, unsigned adaptiveMask,
                   std::array<VcRouteOption, kNumPorts>& options);

class InputController : public sim::Module {
 public:
  InputController(std::string name, const RouterParams& params, Port ownPort,
                  const FlitWires& ibDout, const sim::Wire<bool>& rok,
                  CrossbarWires& xbar);

  // Observability for tests: the decision made in the last evaluation.
  bool requesting() const { return requesting_; }
  Port requestedTarget() const { return target_; }
  bool misrouteDetected() const { return misroute_; }

  // Compiled-kernel hooks (router/input_channel.cpp): the fused routing op
  // reproduces evaluate() over the arena, so it needs the routing
  // parameters and a way to keep the observability state current.
  int ribBits() const { return m_; }
  std::uint32_t dataMaskValue() const { return mask_; }
  RoutingAlgorithm routingAlgorithm() const { return routing_; }
  void noteDecision(bool requesting, Port target) {
    requesting_ = requesting;
    target_ = target;
    if (requesting && target == ownPort_) misroute_ = true;
  }

 protected:
  void onReset() override;
  void evaluate() override;

 private:
  int m_;
  std::uint32_t mask_;
  RoutingAlgorithm routing_ = RoutingAlgorithm::XY;
  Port ownPort_;

  const FlitWires* ibDout_;
  const sim::Wire<bool>* rok_;
  CrossbarWires* xbar_;

  // Last-evaluation observability (not hardware state).
  bool requesting_ = false;
  Port target_ = Port::Local;
  bool misroute_ = false;  // sticky diagnostic
};

}  // namespace rasoc::router
