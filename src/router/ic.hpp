// IC - Input Controller (paper Figure 5): the routing function.
//
// "It detects the presence of a header at the IB block output, analyses the
// Routing Information Bits (RIB) included in the header, runs the routing
// algorithm to select an output channel, emits a request to the selected
// output channel, and, finally, updates the routing information in the
// header to take into account the performed routing."
//
// The block is purely combinational (the paper's Table 3 reports 0% of the
// router's flip-flops in the IC):
//  * while the header flit (bop set) is at the buffer head, the routing
//    decision and the request to the chosen output channel are decoded
//    directly from the RIB, and x_dout carries the header with the RIB
//    already decremented for the hop being taken;
//  * once the header is read out the request drops - the *output
//    controller's* connection register holds the wormhole path until the
//    trailer passes, so payload flits (and buffer-empty bubbles) flow
//    without the IC's involvement.
//
// The own-port request line does not exist in hardware ("it is not allowed
// to an input channel to request the output channel of its own port"); the
// model keeps a sticky misroute flag so tests can assert the situation
// never arises.
#pragma once

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/flit.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class InputController : public sim::Module {
 public:
  InputController(std::string name, const RouterParams& params, Port ownPort,
                  const FlitWires& ibDout, const sim::Wire<bool>& rok,
                  CrossbarWires& xbar);

  // Observability for tests: the decision made in the last evaluation.
  bool requesting() const { return requesting_; }
  Port requestedTarget() const { return target_; }
  bool misrouteDetected() const { return misroute_; }

  // Compiled-kernel hooks (router/input_channel.cpp): the fused routing op
  // reproduces evaluate() over the arena, so it needs the routing
  // parameters and a way to keep the observability state current.
  int ribBits() const { return m_; }
  std::uint32_t dataMaskValue() const { return mask_; }
  RoutingAlgorithm routingAlgorithm() const { return routing_; }
  void noteDecision(bool requesting, Port target) {
    requesting_ = requesting;
    target_ = target;
    if (requesting && target == ownPort_) misroute_ = true;
  }

 protected:
  void onReset() override;
  void evaluate() override;

 private:
  int m_;
  std::uint32_t mask_;
  RoutingAlgorithm routing_ = RoutingAlgorithm::XY;
  Port ownPort_;

  const FlitWires* ibDout_;
  const sim::Wire<bool>* rok_;
  CrossbarWires* xbar_;

  // Last-evaluation observability (not hardware state).
  bool requesting_ = false;
  Port target_ = Port::Local;
  bool misroute_ = false;  // sticky diagnostic
};

}  // namespace rasoc::router
