#include "router/ors.hpp"

namespace rasoc::router {

int vcArbitrate(
    const std::array<std::array<CrossbarWires, kMaxVCs>, kNumPorts>& xbar,
    int numVCs, Port ownPort, int downVc, int rrStart,
    const std::array<bool, kNumPorts * kMaxVCs>& consumed) {
  const int own = index(ownPort);
  const int slots = kNumPorts * kMaxVCs;
  for (int step = 0; step < slots; ++step) {
    const int slot = (rrStart + step) % slots;
    const int inPort = slot / kMaxVCs;
    const int inVc = slot % kMaxVCs;
    if (inPort == own || inVc >= numVCs) continue;
    if (consumed[static_cast<std::size_t>(slot)]) continue;
    const CrossbarWires& src =
        xbar[static_cast<std::size_t>(inPort)][static_cast<std::size_t>(inVc)];
    if (!src.req[static_cast<std::size_t>(own)].get()) continue;
    const unsigned want = static_cast<unsigned>(src.want.get());
    if ((want >> downVc) & 1u) return slot;
  }
  return -1;
}

}  // namespace rasoc::router
