#include "router/faulty_link.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasoc::router {

FaultyLink::FaultyLink(std::string name, ChannelWires& src, ChannelWires& dst,
                       int dataBits, double flipProbability,
                       std::uint64_t seed, FlowControl flowControl,
                       int numVCs)
    : Link(std::move(name), src, dst, flowControl, numVCs),
      dataBits_(dataBits),
      flipProbability_(flipProbability),
      seed_(seed),
      rng_(seed) {
  if (dataBits_ < 1 || dataBits_ > 32)
    throw std::invalid_argument("FaultyLink: dataBits must be 1..32");
  if (flipProbability_ < 0.0 || flipProbability_ > 1.0)
    throw std::invalid_argument("FaultyLink: probability must be in [0,1]");
  // transformData() mixes in the armed mask, re-drawn at every transfer, and
  // stall/drop windows key off a registered cycle counter, so evaluate()
  // depends on registered state on top of Link's wire inputs.
  declareSequential();
  recomputeActive();
  arm();
}

void FaultyLink::setWindows(std::vector<FaultWindow> windows) {
  for (const auto& w : windows) {
    if (w.rate < 0.0 || w.rate > 1.0)
      throw std::invalid_argument("FaultyLink: window rate must be in [0,1]");
    if (w.kind != FaultWindow::Kind::Corrupt &&
        flowControl() != FlowControl::Handshake && numVCs() == 1)
      throw std::invalid_argument(
          "FaultyLink: stall/drop windows require handshake flow control "
          "(the credit-based ack wire carries credit returns)");
  }
  windows_ = std::move(windows);
  stallActive_ = false;
  downActive_ = false;
  corruptRate_ = 0.0;
  recomputeActive();
}

void FaultyLink::onReset() {
  rng_ = sim::Xoshiro256(seed_);
  flitsCorrupted_ = 0;
  flitsDropped_ = 0;
  stallCycles_ = 0;
  cycle_ = 0;
  droppedThisEdge_ = false;
  stallActive_ = false;
  downActive_ = false;
  corruptRate_ = 0.0;
  recomputeActive();
  arm();
}

void FaultyLink::recomputeActive() {
  stallActive_ = false;
  downActive_ = false;
  double rate = flipProbability_;
  for (const auto& w : windows_) {
    if (cycle_ < w.start || cycle_ - w.start >= w.duration) continue;
    switch (w.kind) {
      case FaultWindow::Kind::Corrupt:
        rate = std::max(rate, w.rate);
        break;
      case FaultWindow::Kind::StuckAck:
        stallActive_ = true;
        break;
      case FaultWindow::Kind::LinkDown:
        downActive_ = true;
        break;
    }
  }
  if (rate != corruptRate_) {
    corruptRate_ = rate;
    // Re-draw the armed mask under the new probability so a window's rate
    // cannot leak past its end via a stale mask.  Only reachable with a
    // schedule present, so window-less links keep the historical RNG stream.
    if (!windows_.empty()) arm();
  }
}

void FaultyLink::arm() {
  if (rng_.chance(corruptRate_)) {
    armedMask_ = 1u << rng_.below(static_cast<std::uint64_t>(dataBits_));
  } else {
    armedMask_ = 0;
  }
}

void FaultyLink::evaluate() {
  if (numVCs() > 1) {
    if (stallActive_ || downActive_) {
      // VC window: present nothing downstream and mask every vcFree level
      // so the sender cannot schedule; vcAck pulses still pass (a swallowed
      // credit return would be lost forever, wedging the VC after the
      // window lifts).  No flit is ever consumed: the sender only raises
      // val when vcFree said so pre-edge, and the window state is
      // registered, so val is low for the whole window.
      dstWires().flit.data.set(0);
      dstWires().flit.bop.set(false);
      dstWires().flit.eop.set(false);
      dstWires().val.set(false);
      dstWires().vc.set(0);
      for (int v = 0; v < numVCs(); ++v) {
        srcWires().vcFree[static_cast<std::size_t>(v)].set(false);
        srcWires().vcAck[static_cast<std::size_t>(v)].set(
            dstWires().vcAck[static_cast<std::size_t>(v)].get());
      }
      return;
    }
    Link::evaluate();
    return;
  }
  if (stallActive_ || downActive_) {
    const bool bop = srcWires().flit.bop.get();
    const bool eop = srcWires().flit.eop.get();
    const bool body = !bop && !eop;
    dstWires().flit.data.set(0);
    dstWires().flit.bop.set(false);
    dstWires().flit.eop.set(false);
    dstWires().val.set(false);
    if (!stallActive_ && body) {
      // Link down: consume the offered body flit without presenting it.
      srcWires().ack.set(srcWires().val.get());
    } else {
      // Full stall: nothing moves; both endpoints wait.
      srcWires().ack.set(false);
    }
    return;
  }
  Link::evaluate();
}

void FaultyLink::clockEdge() {
  const bool val = srcWires().val.get();
  const bool bop = srcWires().flit.bop.get();
  const bool eop = srcWires().flit.eop.get();
  const bool body = !bop && !eop;
  // VC windows never consume flits (see evaluate()); every active-window
  // cycle counts as a stall because all VCs are frozen for its duration.
  droppedThisEdge_ =
      numVCs() == 1 && downActive_ && !stallActive_ && body && val;
  const bool blockedByFault =
      numVCs() == 1 ? (val && (stallActive_ || (downActive_ && !body)))
                    : (stallActive_ || downActive_);
  Link::clockEdge();
  if (droppedThisEdge_) {
    ++flitsDropped_;
    if (metrics_.flitsDropped) metrics_.flitsDropped->inc();
  }
  if (blockedByFault) {
    ++stallCycles_;
    if (metrics_.stallCycles) metrics_.stallCycles->inc();
  }
  droppedThisEdge_ = false;
  ++cycle_;
  recomputeActive();
}

std::uint32_t FaultyLink::transformData(std::uint32_t data, bool bop,
                                        bool eop) {
  (void)eop;
  if (bop) return data;  // headers pass clean (see header comment)
  return data ^ armedMask_;
}

void FaultyLink::onTransfer(bool bop) {
  // Headers pass clean and do not consume the armed mask.
  if (bop) return;
  if (droppedThisEdge_) {
    // The flit never reached the far side; the armed mask was not applied.
    arm();
    return;
  }
  if (armedMask_ != 0) {
    ++flitsCorrupted_;
    if (metrics_.flitsCorrupted) metrics_.flitsCorrupted->inc();
  }
  arm();
}

}  // namespace rasoc::router
