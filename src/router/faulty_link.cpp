#include "router/faulty_link.hpp"

#include <stdexcept>

namespace rasoc::router {

FaultyLink::FaultyLink(std::string name, ChannelWires& src, ChannelWires& dst,
                       int dataBits, double flipProbability,
                       std::uint64_t seed, FlowControl flowControl)
    : Link(std::move(name), src, dst, flowControl),
      dataBits_(dataBits),
      flipProbability_(flipProbability),
      seed_(seed),
      rng_(seed) {
  if (dataBits_ < 1 || dataBits_ > 32)
    throw std::invalid_argument("FaultyLink: dataBits must be 1..32");
  if (flipProbability_ < 0.0 || flipProbability_ > 1.0)
    throw std::invalid_argument("FaultyLink: probability must be in [0,1]");
  // transformData() mixes in the armed mask, re-drawn at every transfer, so
  // evaluate() depends on registered state on top of Link's wire inputs.
  declareSequential();
  arm();
}

void FaultyLink::onReset() {
  rng_ = sim::Xoshiro256(seed_);
  flitsCorrupted_ = 0;
  arm();
}

void FaultyLink::arm() {
  if (rng_.chance(flipProbability_)) {
    armedMask_ = 1u << rng_.below(static_cast<std::uint64_t>(dataBits_));
  } else {
    armedMask_ = 0;
  }
}

std::uint32_t FaultyLink::transformData(std::uint32_t data, bool bop,
                                        bool eop) {
  (void)eop;
  if (bop) return data;  // headers pass clean (see header comment)
  return data ^ armedMask_;
}

void FaultyLink::onTransfer(bool bop) {
  // Headers pass clean and do not consume the armed mask.
  if (bop) return;
  if (armedMask_ != 0) ++flitsCorrupted_;
  arm();
}

}  // namespace rasoc::router
