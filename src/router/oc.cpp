#include "router/oc.hpp"

namespace rasoc::router {

OutputController::OutputController(
    std::string name, Port ownPort, std::array<CrossbarWires, kNumPorts>& xbar,
    const sim::Wire<bool>& outEop, const sim::Wire<bool>& rokSel,
    const sim::Wire<bool>& xRd, sim::Wire<bool>& connected,
    sim::Wire<int>& sel, ArbiterKind arbiter)
    : Module(std::move(name)),
      ownPort_(ownPort),
      xbar_(&xbar),
      outEop_(&outEop),
      rokSel_(&rokSel),
      xRd_(&xRd),
      connectedWire_(&connected),
      selWire_(&sel),
      arbiter_(arbiter) {
  // evaluate() publishes the registered connection state; the request/eop
  // wires are only read at the clock edge.
  declareSequential();
}

void OutputController::onReset() {
  connected_ = false;
  sel_ = 0;
  rrPtr_ = 0;
  grantsIssued_ = 0;
}

void OutputController::evaluate() {
  connectedWire_->set(connected_);
  selWire_->set(sel_);
  const int own = index(ownPort_);
  for (int i = 0; i < kNumPorts; ++i)
    (*xbar_)[static_cast<std::size_t>(i)].gnt[own].set(connected_ &&
                                                       i == sel_);
}

void OutputController::clockEdge() {
  const int own = index(ownPort_);
  bool req[kNumPorts];
  for (int i = 0; i < kNumPorts; ++i)
    req[i] = (*xbar_)[static_cast<std::size_t>(i)].req[own].get();
  edgeStep(req, outEop_->get(), rokSel_->get(), xRd_->get());
}

void OutputController::edgeStep(const bool req[kNumPorts], bool outEop,
                                bool rokSel, bool xRd) {
  const int own = index(ownPort_);
  if (!connected_) {
    // Scan the other input ports starting after the round-robin pointer
    // (fixed priority always restarts at port 0).
    const int start = arbiter_ == ArbiterKind::RoundRobin ? rrPtr_ : -1;
    for (int k = 1; k <= kNumPorts; ++k) {
      const int i = ((start + k) % kNumPorts + kNumPorts) % kNumPorts;
      if (i == own) continue;
      if (req[i]) {
        connected_ = true;
        sel_ = i;
        rrPtr_ = i;
        ++grantsIssued_;
        break;
      }
    }
  } else {
    // Tear the connection down once the trailer flit is actually
    // transferred (present at the head and read toward the link).
    if (outEop && rokSel && xRd) {
      connected_ = false;
    }
  }
}

}  // namespace rasoc::router
