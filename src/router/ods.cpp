#include "router/ods.hpp"

// Header-only behaviour; this translation unit anchors the library symbol.
