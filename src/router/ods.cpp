#include "router/ods.hpp"

namespace rasoc::router {

void vcOutputDataSwitch(const CrossbarWires& src, int downVc, FlitWires& out,
                        sim::Wire<int>& outVc, sim::Wire<bool>& outVal) {
  out.data.set(src.flit.data.get());
  out.bop.set(src.flit.bop.get());
  out.eop.set(src.flit.eop.get());
  outVc.set(downVc);
  outVal.set(true);
}

void vcOutputDataIdle(FlitWires& out, sim::Wire<int>& outVc,
                      sim::Wire<bool>& outVal) {
  out.data.set(0);
  out.bop.set(false);
  out.eop.set(false);
  outVc.set(0);
  outVal.set(false);
}

}  // namespace rasoc::router
