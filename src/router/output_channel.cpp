#include "router/output_channel.hpp"

#include <algorithm>

#include "sim/compile.hpp"

namespace rasoc::router {

OutputChannel::OutputChannel(std::string name, const RouterParams& params,
                             Port ownPort,
                             std::array<CrossbarWires, kNumPorts>& xbar,
                             ChannelWires& out, ArbiterKind arbiter)
    : Module(std::move(name)),
      ownPort_(ownPort),
      oc_(this->name() + ".oc", ownPort, xbar, out.flit.eop, rokSel_, xRd_,
          connected_, sel_, arbiter),
      ods_(this->name() + ".ods", xbar, connected_, sel_, out.flit),
      ors_(this->name() + ".ors", xbar, connected_, sel_, rokSel_),
      out_(&out),
      flowControl_(params.flowControl),
      xbar_(&xbar) {
  addChild(oc_);
  addChild(ods_);
  addChild(ors_);
  if (params.flowControl == FlowControl::Handshake) {
    handshakeOfc_ = std::make_unique<Ofc>(this->name() + ".ofc", ownPort,
                                          rokSel_, out.ack, out.val, xRd_,
                                          xbar);
    addChild(*handshakeOfc_);
  } else {
    creditOfc_ = std::make_unique<CreditOfc>(this->name() + ".ofc", ownPort,
                                             params.p, rokSel_, out.ack,
                                             out.val, xRd_, xbar);
    addChild(*creditOfc_);
  }
}

void OutputChannel::attachMetrics(const OutputChannelMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
  // The compiled edge lowering depends on whether metrics accounting runs.
  noteDescribeChanged();
}

void OutputChannel::clockEdge() {
  const bool transferred =
      flowControl_ == FlowControl::Handshake
          ? (out_->val.get() && out_->ack.get())
          : out_->val.get();
  if (transferred) ++flitsSent_;
  if (!metricsAttached_) return;
  if (transferred) {
    if (metrics_.flitsSent) metrics_.flitsSent->inc();
    if (metrics_.routerFlits) metrics_.routerFlits->inc();
  }
  if (metrics_.busyCycles && out_->val.get()) metrics_.busyCycles->inc();
  // Arbitration accounting, observed pre-edge (this module's clockEdge runs
  // before the OC child's): the OC grants this edge iff it is idle and some
  // input requests; a conflict cycle leaves at least one requester waiting.
  const int own = index(ownPort_);
  int waiting = 0;
  for (int i = 0; i < kNumPorts; ++i) {
    if (i == own) continue;
    const auto& x = (*xbar_)[static_cast<std::size_t>(i)];
    if (x.req[own].get() && !(oc_.isConnected() && oc_.selectedInput() ==
                                  static_cast<Port>(i)))
      ++waiting;
  }
  if (!oc_.isConnected() && waiting > 0) {
    if (metrics_.grants) metrics_.grants->inc();
    --waiting;  // one requester is served by this edge's grant
  }
  if (metrics_.conflictCycles && waiting > 0) metrics_.conflictCycles->inc();
}

// --- compiled-kernel lowering ------------------------------------------
//
// The OC + ODS + ORS + OFC subtree lowers to two combinational arena ops
// plus one edge op:
//
//   publish  - OC evaluate() (registered connection state onto the
//              connected/sel/gnt nets) fused with the ODS flit mux, the
//              ORS rok mux and, under handshake flow control, the OFC's
//              out_val = rok_sel wire.
//   flowRsp  - the flow-control response: under handshake, out_ack fanned
//              out to x_rd and every input's rd line; under credit flow
//              control the credit-gated send driving out_val/x_rd/rd.
//   edge     - flit-sent counting, the OC arbitration step and, in credit
//              mode, the credit counter update - all reading the settled
//              arena exactly as the behavioural clockEdge() chain reads
//              wires, in the same order (channel counters, then OC, then
//              OFC).

// Each op carries exactly the slices it touches: op contexts are the
// interpreter's dominant memory traffic, so smaller structs mean fewer
// cache lines streamed per simulated cycle.

namespace {

struct OutChanPublishCtx {
  OutputController* oc = nullptr;
  bool handshake = true;
  sim::Slice connected, sel, rokSel, outVal;
  std::uint32_t outWord = 0;
  std::uint32_t xWord[kNumPorts] = {};
  sim::Slice xrok[kNumPorts];
  sim::Slice gnt[kNumPorts];
};

struct OutChanFlowHsCtx {
  sim::Slice outAck, xRd;
  sim::Slice rdOut[kNumPorts];
};

struct OutChanFlowCrCtx {
  CreditOfc* credit = nullptr;
  sim::Slice rokSel, outVal, xRd;
  sim::Slice rdOut[kNumPorts];
};

struct OutChanBlocksEdgeCtx {
  OutputController* oc = nullptr;
  CreditOfc* credit = nullptr;  // null under handshake flow control
  sim::Slice rokSel, xRd, outAck;
  std::uint32_t outWord = 0;
  sim::Slice req[kNumPorts];
};

struct OutChanEdgeCtx {
  OutChanBlocksEdgeCtx blocks;
  bool handshake = true;
  sim::Slice outVal;
  std::uint64_t* flitsSent = nullptr;
};

// OC publish + ODS + ORS (+ handshake out_val).
void outChanPublish(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<OutChanPublishCtx*>(vctx);
  const bool connected = c->oc->isConnected();
  const int sel = index(c->oc->selectedInput());
  sim::opPutBit(w, c->connected, connected);
  sim::opPutWord32(w, c->sel, static_cast<std::uint32_t>(sel));
  for (int i = 0; i < kNumPorts; ++i)
    sim::opPutBit(w, c->gnt[i], connected && i == sel);
  if (connected)
    sim::opCopyFlit(w, c->outWord, c->xWord[sel]);
  else
    sim::opPutFlit(w, c->outWord, 0, false, false);
  const bool rokSel = connected && sim::opBit(w, c->xrok[sel]);
  sim::opPutBit(w, c->rokSel, rokSel);
  if (c->handshake) sim::opPutBit(w, c->outVal, rokSel);
}

// Handshake OFC response: out_ack -> x_rd, broadcast to every rd line.
void outChanFlowHandshake(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<OutChanFlowHsCtx*>(vctx);
  const bool rd = sim::opBit(w, c->outAck);
  sim::opPutBit(w, c->xRd, rd);
  for (int i = 0; i < kNumPorts; ++i) sim::opPutBit(w, c->rdOut[i], rd);
}

// Credit OFC: send whenever the selected input is ready and credit remains.
void outChanFlowCredit(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<OutChanFlowCrCtx*>(vctx);
  const bool send = sim::opBit(w, c->rokSel) && c->credit->credits() > 0;
  sim::opPutBit(w, c->outVal, send);
  sim::opPutBit(w, c->xRd, send);
  for (int i = 0; i < kNumPorts; ++i) sim::opPutBit(w, c->rdOut[i], send);
}

// OC arbitration + credit counter only (the metrics path lets clockEdge()
// do the counter/metrics accounting first).
void outChanBlocksEdge(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<OutChanBlocksEdgeCtx*>(vctx);
  bool req[kNumPorts];
  for (int i = 0; i < kNumPorts; ++i) req[i] = sim::opBit(w, c->req[i]);
  c->oc->edgeStep(req, sim::opFlitEop(w, c->outWord),
                  sim::opBit(w, c->rokSel), sim::opBit(w, c->xRd));
  if (c->credit)
    c->credit->creditEdge(sim::opBit(w, c->rokSel),
                          sim::opBit(w, c->outAck));
}

// Sent counting + arbitration + credits, in clockEdgeAll() order.
void outChanEdge(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<OutChanEdgeCtx*>(vctx);
  const bool transferred =
      c->handshake
          ? (sim::opBit(w, c->outVal) && sim::opBit(w, c->blocks.outAck))
          : sim::opBit(w, c->outVal);
  if (transferred) ++*c->flitsSent;
  outChanBlocksEdge(w, &c->blocks);
}

}  // namespace

bool OutputChannel::describe(sim::Lowering& lw) {
  const bool handshake = flowControl_ == FlowControl::Handshake;
  const int own = index(ownPort_);

  OutChanPublishCtx pub;
  pub.oc = &oc_;
  pub.handshake = handshake;
  pub.connected = lw.bit(connected_);
  pub.sel = lw.word32(sel_);
  pub.rokSel = lw.bit(rokSel_);
  pub.outVal = lw.bit(out_->val);
  pub.outWord = lw.flitWord(out_->flit.data, out_->flit.bop, out_->flit.eop);
  for (int i = 0; i < kNumPorts; ++i) {
    CrossbarWires& x = (*xbar_)[static_cast<std::size_t>(i)];
    pub.xWord[i] = lw.flitWord(x.flit.data, x.flit.bop, x.flit.eop);
    pub.xrok[i] = lw.bit(x.rok);
    pub.gnt[i] = lw.bit(x.gnt[static_cast<std::size_t>(own)]);
  }

  std::vector<const sim::WireBase*> pubReads;
  std::vector<const sim::WireBase*> pubWrites = {
      &connected_,      &sel_,           &out_->flit.data,
      &out_->flit.bop,  &out_->flit.eop, &rokSel_};
  std::vector<const sim::WireBase*> rdWrites = {&xRd_};
  for (int i = 0; i < kNumPorts; ++i) {
    CrossbarWires& x = (*xbar_)[static_cast<std::size_t>(i)];
    pubReads.push_back(&x.flit.data);
    pubReads.push_back(&x.flit.bop);
    pubReads.push_back(&x.flit.eop);
    pubReads.push_back(&x.rok);
    pubWrites.push_back(&x.gnt[static_cast<std::size_t>(own)]);
    rdWrites.push_back(&x.rd[static_cast<std::size_t>(own)]);
  }
  if (handshake) pubWrites.push_back(&out_->val);
  lw.op(&outChanPublish, lw.ctx(pub), std::move(pubReads),
        std::move(pubWrites));

  if (handshake) {
    OutChanFlowHsCtx flow;
    flow.outAck = lw.bit(out_->ack);
    flow.xRd = lw.bit(xRd_);
    for (int i = 0; i < kNumPorts; ++i) {
      CrossbarWires& x = (*xbar_)[static_cast<std::size_t>(i)];
      flow.rdOut[i] = lw.bit(x.rd[static_cast<std::size_t>(own)]);
    }
    lw.op(&outChanFlowHandshake, lw.ctx(flow), {&out_->ack},
          std::move(rdWrites));
  } else {
    OutChanFlowCrCtx flow;
    flow.credit = creditOfc_.get();
    flow.rokSel = pub.rokSel;
    flow.outVal = pub.outVal;
    flow.xRd = lw.bit(xRd_);
    for (int i = 0; i < kNumPorts; ++i) {
      CrossbarWires& x = (*xbar_)[static_cast<std::size_t>(i)];
      flow.rdOut[i] = lw.bit(x.rd[static_cast<std::size_t>(own)]);
    }
    rdWrites.push_back(&out_->val);
    lw.op(&outChanFlowCredit, lw.ctx(flow), {&rokSel_}, std::move(rdWrites));
  }

  OutChanBlocksEdgeCtx blocks;
  blocks.oc = &oc_;
  blocks.credit = creditOfc_.get();
  blocks.rokSel = pub.rokSel;
  blocks.xRd = lw.bit(xRd_);
  blocks.outAck = lw.bit(out_->ack);
  blocks.outWord = pub.outWord;
  for (int i = 0; i < kNumPorts; ++i) {
    CrossbarWires& x = (*xbar_)[static_cast<std::size_t>(i)];
    blocks.req[i] = lw.bit(x.req[static_cast<std::size_t>(own)]);
  }

  if (metricsAttached_) {
    lw.edgeCall(*this);  // sent counter + metrics via clockEdge()
    lw.edgeOp(&outChanBlocksEdge, lw.ctx(blocks));
  } else {
    OutChanEdgeCtx edge;
    edge.blocks = blocks;
    edge.handshake = handshake;
    edge.outVal = pub.outVal;
    edge.flitsSent = &flitsSent_;
    lw.edgeOp(&outChanEdge, lw.ctx(edge));
  }
  return true;
}

// --- VcOutputChannel -------------------------------------------------------

VcOutputChannel::VcOutputChannel(
    std::string name, const RouterParams& params, Port ownPort,
    VcGeometry geometry,
    std::array<std::array<CrossbarWires, kMaxVCs>, kNumPorts>& xbar,
    ChannelWires& out)
    : Module(std::move(name)),
      params_(params),
      ownPort_(ownPort),
      flowControl_(params.flowControl),
      numVCs_(params.numVCs),
      escapeVCs_(std::min(geometry.escapeVCs(), params.numVCs)),
      out_(&out),
      xbar_(&xbar) {
  declareSequential();
  if (creditMode()) credits_.reset(numVCs_, params.p);
  for (int i = 0; i < kNumPorts; ++i) {
    for (int v = 0; v < numVCs_; ++v) {
      const CrossbarWires& x =
          xbar[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)];
      sensitive(x.rok);
      sensitive(x.flit.data);
      sensitive(x.flit.bop);
      sensitive(x.flit.eop);
    }
  }
  for (int d = 0; d < numVCs_; ++d)
    sensitive(out.vcFree[static_cast<std::size_t>(d)]);
}

void VcOutputChannel::attachMetrics(const VcOutputChannelMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
}

void VcOutputChannel::onReset() {
  conn_.fill(Conn{});
  rrNext_.fill(0);
  schedRR_ = 0;
  starve_.fill(0);
  if (creditMode()) credits_.reset(numVCs_, params_.p);
  flitsSent_ = 0;
  vcFlitsSent_.fill(0);
}

bool VcOutputChannel::schedulable(int d) const {
  const Conn& c = conn_[static_cast<std::size_t>(d)];
  if (!c.active) return false;
  const CrossbarWires& src = (*xbar_)[static_cast<std::size_t>(c.inPort)]
                                     [static_cast<std::size_t>(c.inVc)];
  if (!src.rok.get()) return false;
  if (!out_->vcFree[static_cast<std::size_t>(d)].get()) return false;
  if (creditMode() && !credits_.available(d)) return false;
  return true;
}

void VcOutputChannel::evaluate() {
  const int own = index(ownPort_);

  // Schedule one connected, ready, non-blocked downstream VC onto the
  // physical link.  vcFree is the receiver's space advertisement (on/off) or
  // the link-up level (credit mode, masked low by a faulted link), so a
  // scheduled flit always lands: the transfer is unconditional.  Chosen
  // before any wire is driven so every wire below is set exactly once per
  // pass — a drive-low-then-raise sequence would trip the settle loop's
  // change flag on every iteration and never reach a fixpoint.
  //
  // Policy: round-robin by default; under qosClasses, strict priority by
  // downstream VC index (descending — the class→VC map puts higher classes
  // on higher VCs) unless some VC's starvation counter crossed
  // kQosStarvationWindow, in which case the lowest-index starved VC wins so
  // escape VCs are always served within a bounded interval.
  int sched = -1;
  if (params_.qosClasses) {
    int starved = -1;
    for (int d = numVCs_ - 1; d >= 0; --d) {
      if (!schedulable(d)) continue;
      if (sched < 0) sched = d;
      if (starve_[static_cast<std::size_t>(d)] >= kQosStarvationWindow)
        starved = d;  // descending loop: the last hit is the lowest index
    }
    if (starved >= 0) sched = starved;
  } else {
    for (int step = 0; step < numVCs_ && sched < 0; ++step) {
      const int d = (schedRR_ + step) % numVCs_;
      if (schedulable(d)) sched = d;
    }
  }
  const Conn* sc =
      sched >= 0 ? &conn_[static_cast<std::size_t>(sched)] : nullptr;

  // Publish grants from the registered connection table and the read strobe
  // of the scheduled source (all other strobes low).
  for (int i = 0; i < kNumPorts; ++i) {
    for (int v = 0; v < numVCs_; ++v) {
      CrossbarWires& x =
          (*xbar_)[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)];
      bool granted = false;
      for (int d = 0; d < numVCs_; ++d) {
        const Conn& c = conn_[static_cast<std::size_t>(d)];
        granted = granted || (c.active && c.inPort == i && c.inVc == v);
      }
      x.gnt[static_cast<std::size_t>(own)].set(granted);
      x.rd[static_cast<std::size_t>(own)].set(sc && sc->inPort == i &&
                                              sc->inVc == v);
    }
  }
  if (sc) {
    const CrossbarWires& src = (*xbar_)[static_cast<std::size_t>(sc->inPort)]
                                       [static_cast<std::size_t>(sc->inVc)];
    vcOutputDataSwitch(src, sched, out_->flit, out_->vc, out_->val);
  } else {
    vcOutputDataIdle(out_->flit, out_->vc, out_->val);
  }
}

void VcOutputChannel::clockEdge() {
  const int own = index(ownPort_);

  // 0. QoS starvation accounting, from pre-commit wire state (credits_ not
  //    yet burned): a VC that could have sent but was not scheduled ages by
  //    one edge; a served or ineligible VC resets.  Bounded so a VC parked
  //    behind a full receiver cannot overflow the counter.
  if (params_.qosClasses) {
    const int servedVc = out_->val.get() ? out_->vc.get() : -1;
    for (int d = 0; d < numVCs_; ++d) {
      auto& age = starve_[static_cast<std::size_t>(d)];
      if (schedulable(d) && d != servedVc) {
        if (age <= kQosStarvationWindow) ++age;
      } else {
        age = 0;
      }
    }
  }

  // 1. Commit the scheduled transfer: count, burn a credit, tear the
  //    connection down on the tail flit and advance the link RR.
  if (out_->val.get()) {
    const int d = out_->vc.get();
    ++flitsSent_;
    ++vcFlitsSent_[static_cast<std::size_t>(d)];
    if (creditMode()) credits_.onSent(d);
    if (out_->flit.eop.get()) conn_[static_cast<std::size_t>(d)].active = false;
    schedRR_ = (d + 1) % numVCs_;
    if (metricsAttached_) {
      if (metrics_.flitsSent) metrics_.flitsSent->inc();
      if (metrics_.routerFlits) metrics_.routerFlits->inc();
      if (metrics_.vcFlits[static_cast<std::size_t>(d)])
        metrics_.vcFlits[static_cast<std::size_t>(d)]->inc();
    }
  }
  if (metricsAttached_ && metrics_.busyCycles && out_->val.get())
    metrics_.busyCycles->inc();

  // 2. Per-VC credit returns (pulses from the receiver; a faulted link
  //    passes these through even while down, so no credit is ever lost).
  if (creditMode()) {
    for (int d = 0; d < numVCs_; ++d) {
      if (out_->vcAck[static_cast<std::size_t>(d)].get()) credits_.onReturn(d);
    }
  }

  // 3. Allocation: hand each idle downstream VC to a matching requester.
  //    consumed[] starts from the surviving connections and accumulates
  //    within this edge so one input VC never acquires two downstream VCs.
  std::array<bool, kNumPorts * kMaxVCs> consumed{};
  for (int d = 0; d < numVCs_; ++d) {
    const Conn& c = conn_[static_cast<std::size_t>(d)];
    if (c.active)
      consumed[static_cast<std::size_t>(c.inPort * kMaxVCs + c.inVc)] = true;
  }
  int grantsIssued = 0;
  const int slots = kNumPorts * kMaxVCs;
  for (int d = 0; d < numVCs_; ++d) {
    if (conn_[static_cast<std::size_t>(d)].active) continue;
    // Duato guard: never hand out a downstream VC that cannot accept a
    // flit right now.  An allocated header is committed — its patience
    // rotation stops, so it can no longer fall back to the escape option —
    // and committing it to a lane still backlogged with a predecessor's
    // flits closes wait cycles the escape layer can never break (a Bulk
    // flood confined to one lane by the QoS class map wedges a ring this
    // way).  Keeping the header unallocated keeps its escape bid alive.
    if (!out_->vcFree[static_cast<std::size_t>(d)].get()) continue;
    if (creditMode() && !credits_.available(d)) continue;
    const int slot = vcArbitrate(*xbar_, numVCs_, ownPort_, d,
                                 rrNext_[static_cast<std::size_t>(d)],
                                 consumed);
    if (slot < 0) continue;
    conn_[static_cast<std::size_t>(d)] = {true, slot / kMaxVCs,
                                          slot % kMaxVCs};
    consumed[static_cast<std::size_t>(slot)] = true;
    rrNext_[static_cast<std::size_t>(d)] = (slot + 1) % slots;
    ++grantsIssued;
  }
  if (metricsAttached_) {
    if (metrics_.grants)
      for (int g = 0; g < grantsIssued; ++g) metrics_.grants->inc();
    if (metrics_.conflictCycles) {
      bool waiting = false;
      for (int i = 0; i < kNumPorts && !waiting; ++i) {
        if (i == own) continue;
        for (int v = 0; v < numVCs_ && !waiting; ++v) {
          const CrossbarWires& x =
              (*xbar_)[static_cast<std::size_t>(i)][static_cast<std::size_t>(
                  v)];
          waiting = x.req[static_cast<std::size_t>(own)].get() &&
                    !consumed[static_cast<std::size_t>(i * kMaxVCs + v)];
        }
      }
      if (waiting) metrics_.conflictCycles->inc();
    }
  }
}

bool VcOutputChannel::describe(sim::Lowering& lw) {
  const int own = index(ownPort_);
  std::vector<const sim::WireBase*> reads;
  std::vector<const sim::WireBase*> writes;
  for (int i = 0; i < kNumPorts; ++i) {
    for (int v = 0; v < numVCs_; ++v) {
      CrossbarWires& x =
          (*xbar_)[static_cast<std::size_t>(i)][static_cast<std::size_t>(v)];
      reads.push_back(&x.rok);
      reads.push_back(&x.flit.data);
      reads.push_back(&x.flit.bop);
      reads.push_back(&x.flit.eop);
      writes.push_back(&x.gnt[static_cast<std::size_t>(own)]);
      writes.push_back(&x.rd[static_cast<std::size_t>(own)]);
    }
  }
  for (int d = 0; d < numVCs_; ++d)
    reads.push_back(&out_->vcFree[static_cast<std::size_t>(d)]);
  writes.push_back(&out_->flit.data);
  writes.push_back(&out_->flit.bop);
  writes.push_back(&out_->flit.eop);
  writes.push_back(&out_->vc);
  writes.push_back(&out_->val);
  lw.thunkDeclared(*this, std::move(reads), std::move(writes));
  lw.edgeCall(*this);
  return true;
}

}  // namespace rasoc::router
