#include "router/output_channel.hpp"

namespace rasoc::router {

OutputChannel::OutputChannel(std::string name, const RouterParams& params,
                             Port ownPort,
                             std::array<CrossbarWires, kNumPorts>& xbar,
                             ChannelWires& out, ArbiterKind arbiter)
    : Module(std::move(name)),
      ownPort_(ownPort),
      oc_(this->name() + ".oc", ownPort, xbar, out.flit.eop, rokSel_, xRd_,
          connected_, sel_, arbiter),
      ods_(this->name() + ".ods", xbar, connected_, sel_, out.flit),
      ors_(this->name() + ".ors", xbar, connected_, sel_, rokSel_),
      out_(&out),
      flowControl_(params.flowControl),
      xbar_(&xbar) {
  addChild(oc_);
  addChild(ods_);
  addChild(ors_);
  if (params.flowControl == FlowControl::Handshake) {
    handshakeOfc_ = std::make_unique<Ofc>(this->name() + ".ofc", ownPort,
                                          rokSel_, out.ack, out.val, xRd_,
                                          xbar);
    addChild(*handshakeOfc_);
  } else {
    creditOfc_ = std::make_unique<CreditOfc>(this->name() + ".ofc", ownPort,
                                             params.p, rokSel_, out.ack,
                                             out.val, xRd_, xbar);
    addChild(*creditOfc_);
  }
}

void OutputChannel::attachMetrics(const OutputChannelMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
}

void OutputChannel::clockEdge() {
  const bool transferred =
      flowControl_ == FlowControl::Handshake
          ? (out_->val.get() && out_->ack.get())
          : out_->val.get();
  if (transferred) ++flitsSent_;
  if (!metricsAttached_) return;
  if (transferred) {
    if (metrics_.flitsSent) metrics_.flitsSent->inc();
    if (metrics_.routerFlits) metrics_.routerFlits->inc();
  }
  if (metrics_.busyCycles && out_->val.get()) metrics_.busyCycles->inc();
  // Arbitration accounting, observed pre-edge (this module's clockEdge runs
  // before the OC child's): the OC grants this edge iff it is idle and some
  // input requests; a conflict cycle leaves at least one requester waiting.
  const int own = index(ownPort_);
  int waiting = 0;
  for (int i = 0; i < kNumPorts; ++i) {
    if (i == own) continue;
    const auto& x = (*xbar_)[static_cast<std::size_t>(i)];
    if (x.req[own].get() && !(oc_.isConnected() && oc_.selectedInput() ==
                                  static_cast<Port>(i)))
      ++waiting;
  }
  if (!oc_.isConnected() && waiting > 0) {
    if (metrics_.grants) metrics_.grants->inc();
    --waiting;  // one requester is served by this edge's grant
  }
  if (metrics_.conflictCycles && waiting > 0) metrics_.conflictCycles->inc();
}

}  // namespace rasoc::router
