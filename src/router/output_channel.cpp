#include "router/output_channel.hpp"

namespace rasoc::router {

OutputChannel::OutputChannel(std::string name, const RouterParams& params,
                             Port ownPort,
                             std::array<CrossbarWires, kNumPorts>& xbar,
                             ChannelWires& out, ArbiterKind arbiter)
    : Module(std::move(name)),
      ownPort_(ownPort),
      oc_(this->name() + ".oc", ownPort, xbar, out.flit.eop, rokSel_, xRd_,
          connected_, sel_, arbiter),
      ods_(this->name() + ".ods", xbar, connected_, sel_, out.flit),
      ors_(this->name() + ".ors", xbar, connected_, sel_, rokSel_),
      out_(&out),
      flowControl_(params.flowControl) {
  addChild(oc_);
  addChild(ods_);
  addChild(ors_);
  if (params.flowControl == FlowControl::Handshake) {
    handshakeOfc_ = std::make_unique<Ofc>(this->name() + ".ofc", ownPort,
                                          rokSel_, out.ack, out.val, xRd_,
                                          xbar);
    addChild(*handshakeOfc_);
  } else {
    creditOfc_ = std::make_unique<CreditOfc>(this->name() + ".ofc", ownPort,
                                             params.p, rokSel_, out.ack,
                                             out.val, xRd_, xbar);
    addChild(*creditOfc_);
  }
}

void OutputChannel::clockEdge() {
  const bool transferred =
      flowControl_ == FlowControl::Handshake
          ? (out_->val.get() && out_->ack.get())
          : out_->val.get();
  if (transferred) ++flitsSent_;
}

}  // namespace rasoc::router
