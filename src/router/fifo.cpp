#include "router/fifo.hpp"

namespace rasoc::router {

InputBuffer::InputBuffer(std::string name, const RouterParams& params,
                         const FlitWires& din, const sim::Wire<bool>& wr,
                         const sim::Wire<bool>& rd, FlitWires& dout,
                         sim::Wire<bool>& wok, sim::Wire<bool>& rok)
    : Module(std::move(name)),
      mask_(dataMask(params.n)),
      depth_(params.p),
      din_(&din),
      wr_(&wr),
      rd_(&rd),
      dout_(&dout),
      wok_(&wok),
      rok_(&rok) {
  // evaluate() publishes registered FIFO state only (din/wr/rd are read at
  // the clock edge), so an after-tick re-seed is the whole sensitivity.
  declareSequential();
}

void InputBuffer::evaluate() {
  wok_->set(!full());
  rok_->set(!empty());
  const Flit h = empty() ? Flit{} : head();
  dout_->data.set(h.data);
  dout_->bop.set(h.bop);
  dout_->eop.set(h.eop);
}

void InputBuffer::clockEdge() {
  // A simultaneous read frees the slot the write needs, so write-while-full
  // is legal exactly when a read drains this edge (as on real FIFOs);
  // commitEdge carries that rule for both the behavioural and compiled
  // kernels.
  commitEdge(wr_->get(), rd_->get(), din_->data.get(), din_->bop.get(),
             din_->eop.get());
}

std::unique_ptr<InputBuffer> InputBuffer::create(
    std::string name, const RouterParams& params, const FlitWires& din,
    const sim::Wire<bool>& wr, const sim::Wire<bool>& rd, FlitWires& dout,
    sim::Wire<bool>& wok, sim::Wire<bool>& rok) {
  if (params.fifoImpl == FifoImpl::FlipFlop) {
    return std::make_unique<FfFifo>(std::move(name), params, din, wr, rd,
                                    dout, wok, rok);
  }
  return std::make_unique<EabFifo>(std::move(name), params, din, wr, rd,
                                   dout, wok, rok);
}

// --- FfFifo -----------------------------------------------------------

void FfFifo::onReset() {
  stages_.assign(static_cast<std::size_t>(depth_), Flit{});
  count_ = 0;
}

Flit FfFifo::head() const {
  return stages_[static_cast<std::size_t>(count_ - 1)];
}

void FfFifo::commit(const Flit* write, bool read) {
  if (write != nullptr) {
    // Shift toward the head; stage 0 takes the incoming flit.
    for (int i = depth_ - 1; i > 0; --i)
      stages_[static_cast<std::size_t>(i)] =
          stages_[static_cast<std::size_t>(i - 1)];
    stages_[0] = *write;
    ++count_;
  }
  if (read) --count_;
}

// --- EabFifo ----------------------------------------------------------

void EabFifo::onReset() {
  mem_.assign(static_cast<std::size_t>(depth_), Flit{});
  rptr_ = 0;
  wptr_ = 0;
  count_ = 0;
}

Flit EabFifo::head() const { return mem_[static_cast<std::size_t>(rptr_)]; }

void EabFifo::commit(const Flit* write, bool read) {
  if (write != nullptr) {
    mem_[static_cast<std::size_t>(wptr_)] = *write;
    wptr_ = (wptr_ + 1) % depth_;
    ++count_;
  }
  if (read) {
    rptr_ = (rptr_ + 1) % depth_;
    --count_;
  }
}

}  // namespace rasoc::router
