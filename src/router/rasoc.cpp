#include "router/rasoc.hpp"

#include <stdexcept>
#include <string>

#include "sim/compile.hpp"

namespace rasoc::router {

Rasoc::Rasoc(std::string name, RouterParams params, ArbiterKind arbiter)
    : Module(std::move(name)), params_(params) {
  params_.validate();
  for (Port p : kAllPorts) {
    if (!params_.hasPort(p)) continue;
    const auto i = static_cast<std::size_t>(index(p));
    inputs_[i] = std::make_unique<InputChannel>(
        this->name() + "." + std::string(router::name(p)) + "in", params_, p,
        params_.flowControl, inWires_[i], xbar_[i]);
    outputs_[i] = std::make_unique<OutputChannel>(
        this->name() + "." + std::string(router::name(p)) + "out", params_, p,
        xbar_, outWires_[i], arbiter);
    addChild(*inputs_[i]);
    addChild(*outputs_[i]);
  }
}

void Rasoc::requirePort(Port p) const {
  if (!params_.hasPort(p))
    throw std::out_of_range("port " + std::string(router::name(p)) +
                            " is not instantiated on router " + name());
}

ChannelWires& Rasoc::in(Port p) {
  requirePort(p);
  return inWires_[static_cast<std::size_t>(index(p))];
}

ChannelWires& Rasoc::out(Port p) {
  requirePort(p);
  return outWires_[static_cast<std::size_t>(index(p))];
}

const ChannelWires& Rasoc::in(Port p) const {
  requirePort(p);
  return inWires_[static_cast<std::size_t>(index(p))];
}

const ChannelWires& Rasoc::out(Port p) const {
  requirePort(p);
  return outWires_[static_cast<std::size_t>(index(p))];
}

const InputChannel& Rasoc::inputChannel(Port p) const {
  requirePort(p);
  return *inputs_[static_cast<std::size_t>(index(p))];
}

const OutputChannel& Rasoc::outputChannel(Port p) const {
  requirePort(p);
  return *outputs_[static_cast<std::size_t>(index(p))];
}

void Rasoc::attachMetrics(telemetry::MetricsRegistry& registry,
                          const std::string& prefix) {
  telemetry::Counter& routerFlits = registry.counter(prefix + ".flits_routed");
  for (Port p : kAllPorts) {
    if (!params_.hasPort(p)) continue;
    const auto i = static_cast<std::size_t>(index(p));
    const std::string in = prefix + "." + std::string(router::name(p)) + "in.";
    InputChannelMetrics im;
    im.flitsAccepted = &registry.counter(in + "flits");
    im.fullCycles = &registry.counter(in + "full_cycles");
    im.stallCycles = &registry.counter(in + "stall_cycles");
    im.occupancy = &registry.histogram(
        in + "occupancy", telemetry::Histogram::linearBounds(params_.p));
    inputs_[i]->attachMetrics(im);

    const std::string out =
        prefix + "." + std::string(router::name(p)) + "out.";
    OutputChannelMetrics om;
    om.flitsSent = &registry.counter(out + "flits");
    om.busyCycles = &registry.counter(out + "busy_cycles");
    om.grants = &registry.counter(out + "grants");
    om.conflictCycles = &registry.counter(out + "conflict_cycles");
    om.routerFlits = &routerFlits;
    outputs_[i]->attachMetrics(om);
  }
}

bool Rasoc::misrouteDetected() const {
  for (const auto& in : inputs_)
    if (in && in->controller().misrouteDetected()) return true;
  return false;
}

bool Rasoc::overflowDetected() const {
  for (const auto& in : inputs_)
    if (in && in->buffer().overflowDetected()) return true;
  return false;
}

bool Rasoc::describe(sim::Lowering& lw) {
  lw.descendChildren();
  return true;
}

}  // namespace rasoc::router
