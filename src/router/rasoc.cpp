#include "router/rasoc.hpp"

#include <stdexcept>
#include <string>

#include "sim/compile.hpp"

namespace rasoc::router {

Rasoc::Rasoc(std::string name, RouterParams params, ArbiterKind arbiter,
             VcGeometry geometry)
    : Module(std::move(name)), params_(params), geometry_(geometry) {
  params_.validate();
  if (vcMode())
    vcXbar_ = std::make_unique<
        std::array<std::array<CrossbarWires, kMaxVCs>, kNumPorts>>();
  for (Port p : kAllPorts) {
    if (!params_.hasPort(p)) continue;
    const auto i = static_cast<std::size_t>(index(p));
    const std::string stem = this->name() + "." + std::string(router::name(p));
    if (vcMode()) {
      vcInputs_[i] = std::make_unique<VcInputChannel>(
          stem + "in", params_, p, geometry_, inWires_[i], (*vcXbar_)[i]);
      vcOutputs_[i] = std::make_unique<VcOutputChannel>(
          stem + "out", params_, p, geometry_, *vcXbar_, outWires_[i]);
      addChild(*vcInputs_[i]);
      addChild(*vcOutputs_[i]);
    } else {
      inputs_[i] = std::make_unique<InputChannel>(
          stem + "in", params_, p, params_.flowControl, inWires_[i], xbar_[i]);
      outputs_[i] = std::make_unique<OutputChannel>(
          stem + "out", params_, p, xbar_, outWires_[i], arbiter);
      addChild(*inputs_[i]);
      addChild(*outputs_[i]);
    }
  }
}

void Rasoc::requirePort(Port p) const {
  if (!params_.hasPort(p))
    throw std::out_of_range("port " + std::string(router::name(p)) +
                            " is not instantiated on router " + name());
}

ChannelWires& Rasoc::in(Port p) {
  requirePort(p);
  return inWires_[static_cast<std::size_t>(index(p))];
}

ChannelWires& Rasoc::out(Port p) {
  requirePort(p);
  return outWires_[static_cast<std::size_t>(index(p))];
}

const ChannelWires& Rasoc::in(Port p) const {
  requirePort(p);
  return inWires_[static_cast<std::size_t>(index(p))];
}

const ChannelWires& Rasoc::out(Port p) const {
  requirePort(p);
  return outWires_[static_cast<std::size_t>(index(p))];
}

const InputChannel& Rasoc::inputChannel(Port p) const {
  requirePort(p);
  if (vcMode())
    throw std::logic_error("inputChannel(): router " + name() +
                           " runs numVCs > 1; use vcInputChannel()");
  return *inputs_[static_cast<std::size_t>(index(p))];
}

const OutputChannel& Rasoc::outputChannel(Port p) const {
  requirePort(p);
  if (vcMode())
    throw std::logic_error("outputChannel(): router " + name() +
                           " runs numVCs > 1; use vcOutputChannel()");
  return *outputs_[static_cast<std::size_t>(index(p))];
}

const VcInputChannel& Rasoc::vcInputChannel(Port p) const {
  requirePort(p);
  if (!vcMode())
    throw std::logic_error("vcInputChannel(): router " + name() +
                           " runs numVCs == 1; use inputChannel()");
  return *vcInputs_[static_cast<std::size_t>(index(p))];
}

const VcOutputChannel& Rasoc::vcOutputChannel(Port p) const {
  requirePort(p);
  if (!vcMode())
    throw std::logic_error("vcOutputChannel(): router " + name() +
                           " runs numVCs == 1; use outputChannel()");
  return *vcOutputs_[static_cast<std::size_t>(index(p))];
}

void Rasoc::attachMetrics(telemetry::MetricsRegistry& registry,
                          const std::string& prefix) {
  telemetry::Counter& routerFlits = registry.counter(prefix + ".flits_routed");
  for (Port p : kAllPorts) {
    if (!params_.hasPort(p)) continue;
    const auto i = static_cast<std::size_t>(index(p));
    const std::string in = prefix + "." + std::string(router::name(p)) + "in.";
    const std::string out =
        prefix + "." + std::string(router::name(p)) + "out.";
    if (vcMode()) {
      VcInputChannelMetrics im;
      im.flitsAccepted = &registry.counter(in + "flits");
      im.fullCycles = &registry.counter(in + "full_cycles");
      im.stallCycles = &registry.counter(in + "stall_cycles");
      for (int v = 0; v < params_.numVCs; ++v)
        im.occupancy[static_cast<std::size_t>(v)] = &registry.histogram(
            in + "vc" + std::to_string(v) + ".occupancy",
            telemetry::Histogram::linearBounds(params_.p));
      vcInputs_[i]->attachMetrics(im);

      VcOutputChannelMetrics om;
      om.flitsSent = &registry.counter(out + "flits");
      om.busyCycles = &registry.counter(out + "busy_cycles");
      om.grants = &registry.counter(out + "grants");
      om.conflictCycles = &registry.counter(out + "conflict_cycles");
      om.routerFlits = &routerFlits;
      for (int v = 0; v < params_.numVCs; ++v)
        om.vcFlits[static_cast<std::size_t>(v)] =
            &registry.counter(out + "vc" + std::to_string(v) + ".flits");
      vcOutputs_[i]->attachMetrics(om);
      continue;
    }
    InputChannelMetrics im;
    im.flitsAccepted = &registry.counter(in + "flits");
    im.fullCycles = &registry.counter(in + "full_cycles");
    im.stallCycles = &registry.counter(in + "stall_cycles");
    im.occupancy = &registry.histogram(
        in + "occupancy", telemetry::Histogram::linearBounds(params_.p));
    inputs_[i]->attachMetrics(im);

    OutputChannelMetrics om;
    om.flitsSent = &registry.counter(out + "flits");
    om.busyCycles = &registry.counter(out + "busy_cycles");
    om.grants = &registry.counter(out + "grants");
    om.conflictCycles = &registry.counter(out + "conflict_cycles");
    om.routerFlits = &routerFlits;
    outputs_[i]->attachMetrics(om);
  }
}

bool Rasoc::misrouteDetected() const {
  for (const auto& in : inputs_)
    if (in && in->controller().misrouteDetected()) return true;
  for (const auto& in : vcInputs_)
    if (in && in->misrouteDetected()) return true;
  return false;
}

bool Rasoc::overflowDetected() const {
  for (const auto& in : inputs_)
    if (in && in->buffer().overflowDetected()) return true;
  for (const auto& in : vcInputs_)
    if (in && in->overflowDetected()) return true;
  return false;
}

bool Rasoc::describe(sim::Lowering& lw) {
  lw.descendChildren();
  return true;
}

}  // namespace rasoc::router
