// Fault-injecting link: a Link that flips one random payload data bit with
// a configurable probability per transferred flit.  Used to exercise the
// paper's HLP extension ("the n data bits can be extended to include
// Higher Level Protocol (HLP) signals, like the ones typically used for
// data integrity control (parity and error)").
//
// The fault model corrupts payload flits only: a corrupted header would
// change the packet's route, which is a different (routing-level) failure
// mode than the link-noise scenario HLP parity addresses.  The flip
// decision for the next flit is drawn at the clock edge so the
// combinational evaluate() stays idempotent.
#pragma once

#include "sim/rng.hpp"

#include "router/link.hpp"

namespace rasoc::router {

class FaultyLink : public Link {
 public:
  FaultyLink(std::string name, ChannelWires& src, ChannelWires& dst,
             int dataBits, double flipProbability, std::uint64_t seed,
             FlowControl flowControl = FlowControl::Handshake);

  std::uint64_t flitsCorrupted() const { return flitsCorrupted_; }

 protected:
  void onReset() override;
  std::uint32_t transformData(std::uint32_t data, bool bop,
                              bool eop) override;
  void onTransfer(bool bop) override;

 private:
  void arm();

  int dataBits_;
  double flipProbability_;
  std::uint64_t seed_;
  sim::Xoshiro256 rng_;
  std::uint32_t armedMask_ = 0;  // XORed into the next payload flit
  std::uint64_t flitsCorrupted_ = 0;
};

}  // namespace rasoc::router
