/// \file
/// Fault-injecting link: a Link that corrupts, stalls, or drops flits
/// according to a baseline flip probability and an optional schedule of
/// fault windows.  Used to exercise the paper's HLP extension ("the n data
/// bits can be extended to include Higher Level Protocol (HLP) signals,
/// like the ones typically used for data integrity control (parity and
/// error)") and the end-to-end reliability protocol layered above it.
///
/// Fault kinds:
///  - Corrupt: flips one random payload data bit per transferred flit with
///    a configurable probability.  Headers (`bop`) pass clean: a corrupted
///    header would change the packet's route, which is a different
///    (routing-level) failure mode than the link noise HLP parity and the
///    NI checksum address.
///  - StuckAck: the link stops completing handshakes for the window — `val`
///    is masked downstream and `ack` upstream, so both endpoints simply
///    wait.  Models a wedged downstream router.
///  - LinkDown: body flits (neither `bop` nor `eop`) are silently consumed
///    (acked upstream but never presented downstream) for the window;
///    framing flits stall as in StuckAck.  Framing is preserved on purpose:
///    dropping a `bop`/`eop` would wedge the wormhole state machines of
///    every router downstream, a failure no end-to-end retransmission
///    protocol could recover from.
///
/// The flip decision for the next flit is drawn at the clock edge so the
/// combinational evaluate() stays idempotent, and window activity is
/// recomputed from a registered cycle counter for the same reason.  Stall
/// and drop windows require handshake flow control: under credit-based
/// flow control the ack wire carries credit returns, and masking or
/// forcing it would corrupt the credit accounting rather than model a
/// link fault.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "telemetry/metrics.hpp"

#include "router/link.hpp"

namespace rasoc::router {

/// One scheduled fault on a link: active on cycles
/// [start, start + duration).  `rate` is the per-flit corruption
/// probability and only meaningful for Kind::Corrupt.
struct FaultWindow {
  enum class Kind { Corrupt, StuckAck, LinkDown };

  Kind kind = Kind::Corrupt;
  std::uint64_t start = 0;
  std::uint64_t duration = 0;
  double rate = 1.0;
};

/// Per-link fault telemetry counters (optional; null pointers are skipped).
struct FaultyLinkMetrics {
  telemetry::Counter* flitsCorrupted = nullptr;
  telemetry::Counter* flitsDropped = nullptr;
  telemetry::Counter* stallCycles = nullptr;
};

class FaultyLink : public Link {
 public:
  /// `flipProbability` is the baseline per-flit corruption probability that
  /// applies outside any window; Corrupt windows raise it to
  /// max(flipProbability, window.rate) while active.
  FaultyLink(std::string name, ChannelWires& src, ChannelWires& dst,
             int dataBits, double flipProbability, std::uint64_t seed,
             FlowControl flowControl = FlowControl::Handshake, int numVCs = 1);

  /// Replaces the fault schedule.  Call before the first cycle.  Stall and
  /// drop windows throw under credit-based flow control at numVCs == 1 (see
  /// file comment); with VCs the per-VC vcFree levels are masked instead of
  /// the ack wire, so every window kind is legal under either flow control.
  /// A VC window never consumes flits: the masked vcFree stops the sender
  /// from scheduling, so both window kinds degrade to a full stall, and the
  /// vcAck credit pulses pass through even while the link is down (masking
  /// a pulse would permanently leak a credit and wedge the VC).
  void setWindows(std::vector<FaultWindow> windows);

  /// Attaches optional telemetry counters, incremented at each clock edge.
  void attachMetrics(const FaultyLinkMetrics& metrics) { metrics_ = metrics; }

  /// Payload flits whose data word was bit-flipped.
  std::uint64_t flitsCorrupted() const { return flitsCorrupted_; }
  /// Body flits silently consumed by LinkDown windows.
  std::uint64_t flitsDropped() const { return flitsDropped_; }
  /// Cycles in which an offered flit was blocked by a StuckAck or LinkDown
  /// window.
  std::uint64_t stallCycles() const { return stallCycles_; }

  /// Fault behaviour (RNG draws, window masking) stays behavioural under
  /// the compiled kernel: the base Link's typeid guard already falls back,
  /// this override just makes the choice explicit.
  bool describe(sim::Lowering&) override { return false; }

 protected:
  void onReset() override;
  void evaluate() override;
  void clockEdge() override;
  std::uint32_t transformData(std::uint32_t data, bool bop,
                              bool eop) override;
  void onTransfer(bool bop) override;

 private:
  void arm();
  void recomputeActive();

  int dataBits_;
  double flipProbability_;
  std::uint64_t seed_;
  sim::Xoshiro256 rng_;
  std::vector<FaultWindow> windows_;

  // Registered state: recomputed at reset and at every clock edge so the
  // combinational evaluate() sees a stable view within each settle.
  std::uint64_t cycle_ = 0;
  bool stallActive_ = false;
  bool downActive_ = false;
  double corruptRate_ = 0.0;   // effective flip probability this cycle
  std::uint32_t armedMask_ = 0;  // XORed into the next payload flit
  bool droppedThisEdge_ = false;

  std::uint64_t flitsCorrupted_ = 0;
  std::uint64_t flitsDropped_ = 0;
  std::uint64_t stallCycles_ = 0;
  FaultyLinkMetrics metrics_;
};

}  // namespace rasoc::router
