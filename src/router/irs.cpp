#include "router/irs.hpp"

// Header-only behaviour; this translation unit anchors the library symbol.
