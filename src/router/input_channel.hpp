/// \file
/// Input channel module (paper Figure 5): IFC + IB + IC + IRS wired
/// together, presenting the external input link on one side and the
/// distributed-crossbar nets (x_*) on the other.
///
/// VcInputChannel is the numVCs > 1 variant: the FIFO + routing (IRS) state
/// is replicated per virtual channel, flits are demultiplexed by the
/// channel's vc wire, and flow control switches to per-VC on/off (vcFree
/// levels) or per-VC credits (vcAck pulses) — see router/channel.hpp.  It
/// is a monolithic behavioural module (compiled-kernel lowering by declared
/// thunk, like the network interface) so the numVCs == 1 fused lowering and
/// its pinned goldens stay byte-identical.
#pragma once

#include <array>
#include <deque>
#include <memory>

#include "sim/module.hpp"
#include "sim/wire.hpp"
#include "telemetry/metrics.hpp"

#include "router/channel.hpp"
#include "router/credit.hpp"
#include "router/fifo.hpp"
#include "router/ic.hpp"
#include "router/ifc.hpp"
#include "router/irs.hpp"
#include "router/params.hpp"

namespace rasoc::router {

/// Opt-in per-channel instrumentation (telemetry subsystem).  All pointers
/// null by default: an unattached channel pays one branch per cycle.
struct InputChannelMetrics {
  telemetry::Counter* flitsAccepted = nullptr;  ///< flits taken off the link
  telemetry::Counter* fullCycles = nullptr;     ///< buffer full at the edge
  telemetry::Counter* stallCycles = nullptr;    ///< head flit present, no read
  telemetry::Histogram* occupancy = nullptr;    ///< per-cycle FIFO occupancy
};

/// Single-VC input channel: the paper's IFC + IB + IC + IRS block stack for
/// one port, bit-exact to the RASoC VHDL at numVCs == 1.
class InputChannel : public sim::Module {
 public:
  InputChannel(std::string name, const RouterParams& params, Port ownPort,
               FlowControl flowControl, ChannelWires& in, CrossbarWires& xbar);

  const InputBuffer& buffer() const { return *ib_; }
  const InputController& controller() const { return ic_; }
  Port port() const { return ownPort_; }

  /// Number of flits accepted from the link since reset.
  std::uint64_t flitsAccepted() const { return flitsAccepted_; }

  // Read-only observation points for the flow tracer, which reconstructs
  // flit movement from settled wires between settle() and tick() instead of
  // instrumenting the channel blocks.  Valid pre-edge only.

  /// True when the buffer head will be read out at the coming edge.
  bool dequeueFired() const { return rd_.get() && rok_.get(); }
  /// The external input link wires this channel samples.
  const ChannelWires& inWires() const { return *in_; }

  /// Enables instrumentation; the metrics must outlive the channel.
  void attachMetrics(const InputChannelMetrics& metrics);

  /// Compiled-kernel lowering: replaces the IFC/IB/IC/IRS subtree with
  /// three fused arena ops (FIFO publish + routing, link-side flow control,
  /// read switch) and a fused edge op (router/input_channel.cpp).
  bool describe(sim::Lowering& lw) override;

 protected:
  void clockEdge() override;

 private:
  Port ownPort_;

  // Internal nets (VHDL signals of the input_channel entity).
  sim::Wire<bool> wr_;
  sim::Wire<bool> wok_;
  sim::Wire<bool> rok_;
  sim::Wire<bool> rd_;
  FlitWires ibDout_;

  // Blocks.  Declaration order matters: wires above are bound into these.
  Ifc ifc_;
  std::unique_ptr<InputBuffer> ib_;
  InputController ic_;
  Irs irs_;
  std::unique_ptr<CreditReturnTap> creditTap_;  // credit mode only

  std::uint64_t flitsAccepted_ = 0;
  const ChannelWires* in_;
  const CrossbarWires* xbar_;
  InputChannelMetrics metrics_;
  bool metricsAttached_ = false;
};

/// Per-VC instrumentation for the VC'd input channel (telemetry subsystem):
/// shared counters plus one occupancy histogram per virtual channel.
struct VcInputChannelMetrics {
  telemetry::Counter* flitsAccepted = nullptr;  ///< flits taken off the link
  telemetry::Counter* fullCycles = nullptr;   ///< any VC full at the edge
  telemetry::Counter* stallCycles = nullptr;  ///< a head flit present, no read
  std::array<telemetry::Histogram*, kMaxVCs> occupancy{};  ///< per-VC depth
};

/// Virtual-channel input channel: per-VC FIFO + routing/read-switch state
/// behind one physical link.  Headers on escape VCs (v < escapeVCs) bid the
/// deterministic dimension-order port with the exact dateline class the next
/// link needs; headers on adaptive VCs bid one minimal productive port at a
/// time (west-first preference), rotating through their options on a
/// registered patience counter and converging on the escape path when
/// starved (ic.hpp, vcRouteOptions).  One bid per input VC per cycle keeps
/// the allocation single-stage.
///
/// With RouterParams::qosClasses the adaptive bid is class-constrained: the
/// header's TrafficClass tag (flit.hpp, decodeTrafficClass) selects the
/// qosVcMask() subset of adaptive downstream VCs the packet may occupy, so
/// classes stay on disjoint channels end to end.  The escape fallback is
/// unchanged — any starved header, of any class, converges onto the shared
/// escape path, which is what keeps the deadlock-freedom argument intact
/// (DESIGN.md §13).
class VcInputChannel : public sim::Module {
 public:
  VcInputChannel(std::string name, const RouterParams& params, Port ownPort,
                 VcGeometry geometry, ChannelWires& in,
                 std::array<CrossbarWires, kMaxVCs>& xbar);

  Port port() const { return ownPort_; }
  int numVCs() const { return numVCs_; }
  int escapeVCs() const { return escapeVCs_; }
  bool misrouteDetected() const { return misroute_; }
  bool overflowDetected() const { return overflow_; }
  std::uint64_t flitsAccepted() const { return flitsAccepted_; }

  /// Registered per-VC occupancy (flits buffered), for credit-conservation
  /// checks and occupancy heatmaps.
  int occupancy(int v) const {
    return static_cast<int>(fifo_[static_cast<std::size_t>(v)].size());
  }
  /// Per-cycle running sum of occupancy(v), for time-averaged depth.
  std::uint64_t occupancySum(int v) const {
    return occupancySum_[static_cast<std::size_t>(v)];
  }

  // Read-only observation points for the flow tracer (pre-edge wires; see
  // InputChannel for the reconstruction contract).

  /// True when the link offers a flit this cycle.
  bool acceptFired() const { return in_->val.get(); }
  /// The VC the offered flit targets (valid while acceptFired()).
  int acceptVc() const { return in_->vc.get(); }
  /// True when VC v's buffer head will be read out at the coming edge.
  bool dequeueFired(int v) const;
  /// The external input link wires this channel samples.
  const ChannelWires& inWires() const { return *in_; }

  /// Enables instrumentation; the metrics must outlive the channel.
  void attachMetrics(const VcInputChannelMetrics& metrics);

  /// Behavioural thunk with declared reads/writes (the per-VC FIFOs are
  /// registered state walked directly), plus a clockEdge() call.
  bool describe(sim::Lowering& lw) override;

 protected:
  void onReset() override;
  void evaluate() override;
  void clockEdge() override;

 private:
  bool creditMode() const {
    return flowControl_ == FlowControl::CreditBased;
  }
  // Pop strobe computed from the settled crossbar wires.
  bool popFired(int v) const;

  RouterParams params_;
  Port ownPort_;
  FlowControl flowControl_;
  VcGeometry geometry_;
  int numVCs_ = 1;
  int escapeVCs_ = 1;

  ChannelWires* in_;
  std::array<CrossbarWires, kMaxVCs>* xbar_;

  // Registered per-VC state.
  std::array<std::deque<Flit>, kMaxVCs> fifo_;
  std::array<int, kMaxVCs> patience_{};

  std::uint64_t flitsAccepted_ = 0;
  std::array<std::uint64_t, kMaxVCs> occupancySum_{};
  bool misroute_ = false;  // sticky diagnostics
  bool overflow_ = false;

  VcInputChannelMetrics metrics_;
  bool metricsAttached_ = false;
};

}  // namespace rasoc::router
