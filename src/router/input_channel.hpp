// Input channel module (paper Figure 5): IFC + IB + IC + IRS wired
// together, presenting the external input link on one side and the
// distributed-crossbar nets (x_*) on the other.
#pragma once

#include <memory>

#include "sim/module.hpp"
#include "sim/wire.hpp"
#include "telemetry/metrics.hpp"

#include "router/channel.hpp"
#include "router/credit.hpp"
#include "router/fifo.hpp"
#include "router/ic.hpp"
#include "router/ifc.hpp"
#include "router/irs.hpp"
#include "router/params.hpp"

namespace rasoc::router {

// Opt-in per-channel instrumentation (telemetry subsystem).  All pointers
// null by default: an unattached channel pays one branch per cycle.
struct InputChannelMetrics {
  telemetry::Counter* flitsAccepted = nullptr;  // flits taken off the link
  telemetry::Counter* fullCycles = nullptr;     // buffer full at the edge
  telemetry::Counter* stallCycles = nullptr;    // head flit present, no read
  telemetry::Histogram* occupancy = nullptr;    // per-cycle FIFO occupancy
};

class InputChannel : public sim::Module {
 public:
  InputChannel(std::string name, const RouterParams& params, Port ownPort,
               FlowControl flowControl, ChannelWires& in, CrossbarWires& xbar);

  const InputBuffer& buffer() const { return *ib_; }
  const InputController& controller() const { return ic_; }
  Port port() const { return ownPort_; }

  // Number of flits accepted from the link since reset.
  std::uint64_t flitsAccepted() const { return flitsAccepted_; }

  // Read-only observation points for the flow tracer, which reconstructs
  // flit movement from settled wires between settle() and tick() instead of
  // instrumenting the channel blocks.  Valid pre-edge only.
  //
  // True when the buffer head will be read out at the coming edge.
  bool dequeueFired() const { return rd_.get() && rok_.get(); }
  // The external input link wires this channel samples.
  const ChannelWires& inWires() const { return *in_; }

  // Enables instrumentation; the metrics must outlive the channel.
  void attachMetrics(const InputChannelMetrics& metrics);

  // Compiled-kernel lowering: replaces the IFC/IB/IC/IRS subtree with
  // three fused arena ops (FIFO publish + routing, link-side flow control,
  // read switch) and a fused edge op (router/input_channel.cpp).
  bool describe(sim::Lowering& lw) override;

 protected:
  void clockEdge() override;

 private:
  Port ownPort_;

  // Internal nets (VHDL signals of the input_channel entity).
  sim::Wire<bool> wr_;
  sim::Wire<bool> wok_;
  sim::Wire<bool> rok_;
  sim::Wire<bool> rd_;
  FlitWires ibDout_;

  // Blocks.  Declaration order matters: wires above are bound into these.
  Ifc ifc_;
  std::unique_ptr<InputBuffer> ib_;
  InputController ic_;
  Irs irs_;
  std::unique_ptr<CreditReturnTap> creditTap_;  // credit mode only

  std::uint64_t flitsAccepted_ = 0;
  const ChannelWires* in_;
  const CrossbarWires* xbar_;
  InputChannelMetrics metrics_;
  bool metricsAttached_ = false;
};

}  // namespace rasoc::router
