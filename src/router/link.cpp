#include "router/link.hpp"

#include <memory>
#include <typeinfo>

#include "sim/compile.hpp"

namespace rasoc::router {

Link::Link(std::string name, ChannelWires& src, ChannelWires& dst,
           FlowControl flowControl)
    : Module(std::move(name)),
      src_(&src),
      dst_(&dst),
      flowControl_(flowControl) {
  sensitive(src.flit.data);
  sensitive(src.flit.bop);
  sensitive(src.flit.eop);
  sensitive(src.val);
  sensitive(dst.ack);
}

void Link::evaluate() {
  const bool bop = src_->flit.bop.get();
  const bool eop = src_->flit.eop.get();
  dst_->flit.data.set(transformData(src_->flit.data.get(), bop, eop));
  dst_->flit.bop.set(bop);
  dst_->flit.eop.set(eop);
  dst_->val.set(src_->val.get());
  src_->ack.set(dst_->ack.get());
}

void Link::clockEdge() {
  const bool transferred = flowControl_ == FlowControl::Handshake
                               ? (src_->val.get() && src_->ack.get())
                               : src_->val.get();
  if (transferred) {
    ++flitsTransferred_;
    onTransfer(src_->flit.bop.get());
  }
}

// --- compiled-kernel lowering ------------------------------------------
//
// Forward (flit + val) and reverse (ack) directions are separate ops:
// fusing them would tie the downstream val driver to the downstream ack
// reader and manufacture a false combinational cycle through the
// receiving router's flow controller.

// Each op carries exactly the slices it touches: op contexts are the
// interpreter's dominant memory traffic, so smaller structs mean fewer
// cache lines streamed per simulated cycle.

namespace {

struct LinkFwdCtx {
  std::uint32_t srcWord = 0, dstWord = 0;
  sim::Slice srcVal, dstVal;
};

struct LinkRevCtx {
  sim::Slice srcAck, dstAck;
};

struct LinkEdgeCtx {
  sim::Slice srcVal, srcAck;
  bool handshake = true;
  std::uint64_t* flits = nullptr;
};

void linkForward(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<LinkFwdCtx*>(vctx);
  sim::opCopyFlit(w, c->dstWord, c->srcWord);
  sim::opPutBit(w, c->dstVal, sim::opBit(w, c->srcVal));
}

void linkReverse(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<LinkRevCtx*>(vctx);
  sim::opPutBit(w, c->srcAck, sim::opBit(w, c->dstAck));
}

void linkEdge(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<LinkEdgeCtx*>(vctx);
  const bool transferred =
      c->handshake ? (sim::opBit(w, c->srcVal) && sim::opBit(w, c->srcAck))
                   : sim::opBit(w, c->srcVal);
  if (transferred) ++*c->flits;
}

}  // namespace

bool Link::describe(sim::Lowering& lw) {
  // Subclasses override transformData/onTransfer/evaluate (fault
  // injection); only an exact Link is pass-through wiring.  They run as
  // behavioural thunks instead.
  if (typeid(*this) != typeid(Link)) return false;

  LinkFwdCtx fwd;
  fwd.srcWord = lw.flitWord(src_->flit.data, src_->flit.bop, src_->flit.eop);
  fwd.dstWord = lw.flitWord(dst_->flit.data, dst_->flit.bop, dst_->flit.eop);
  fwd.srcVal = lw.bit(src_->val);
  fwd.dstVal = lw.bit(dst_->val);
  lw.op(&linkForward, lw.ctx(fwd),
        {&src_->flit.data, &src_->flit.bop, &src_->flit.eop, &src_->val},
        {&dst_->flit.data, &dst_->flit.bop, &dst_->flit.eop, &dst_->val});

  LinkRevCtx rev;
  rev.srcAck = lw.bit(src_->ack);
  rev.dstAck = lw.bit(dst_->ack);
  lw.op(&linkReverse, lw.ctx(rev), {&dst_->ack}, {&src_->ack});

  LinkEdgeCtx edge;
  edge.srcVal = fwd.srcVal;
  edge.srcAck = rev.srcAck;
  edge.handshake = flowControl_ == FlowControl::Handshake;
  edge.flits = &flitsTransferred_;
  lw.edgeOp(&linkEdge, lw.ctx(edge));
  return true;
}

}  // namespace rasoc::router
