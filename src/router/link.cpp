#include "router/link.hpp"

namespace rasoc::router {

Link::Link(std::string name, ChannelWires& src, ChannelWires& dst,
           FlowControl flowControl)
    : Module(std::move(name)),
      src_(&src),
      dst_(&dst),
      flowControl_(flowControl) {
  sensitive(src.flit.data);
  sensitive(src.flit.bop);
  sensitive(src.flit.eop);
  sensitive(src.val);
  sensitive(dst.ack);
}

void Link::evaluate() {
  const bool bop = src_->flit.bop.get();
  const bool eop = src_->flit.eop.get();
  dst_->flit.data.set(transformData(src_->flit.data.get(), bop, eop));
  dst_->flit.bop.set(bop);
  dst_->flit.eop.set(eop);
  dst_->val.set(src_->val.get());
  src_->ack.set(dst_->ack.get());
}

void Link::clockEdge() {
  const bool transferred = flowControl_ == FlowControl::Handshake
                               ? (src_->val.get() && src_->ack.get())
                               : src_->val.get();
  if (transferred) {
    ++flitsTransferred_;
    onTransfer(src_->flit.bop.get());
  }
}

}  // namespace rasoc::router
