#include "router/link.hpp"

#include <memory>
#include <stdexcept>
#include <typeinfo>
#include <vector>

#include "sim/compile.hpp"

namespace rasoc::router {

Link::Link(std::string name, ChannelWires& src, ChannelWires& dst,
           FlowControl flowControl, int numVCs)
    : Module(std::move(name)),
      src_(&src),
      dst_(&dst),
      flowControl_(flowControl),
      numVCs_(numVCs) {
  if (numVCs_ < 1 || numVCs_ > kMaxVCs)
    throw std::invalid_argument("Link: numVCs must be in [1, kMaxVCs]");
  sensitive(src.flit.data);
  sensitive(src.flit.bop);
  sensitive(src.flit.eop);
  sensitive(src.val);
  if (numVCs_ == 1) {
    sensitive(dst.ack);
  } else {
    sensitive(src.vc);
    for (int v = 0; v < numVCs_; ++v) {
      sensitive(dst.vcFree[static_cast<std::size_t>(v)]);
      sensitive(dst.vcAck[static_cast<std::size_t>(v)]);
    }
  }
}

void Link::evaluate() {
  const bool bop = src_->flit.bop.get();
  const bool eop = src_->flit.eop.get();
  dst_->flit.data.set(transformData(src_->flit.data.get(), bop, eop));
  dst_->flit.bop.set(bop);
  dst_->flit.eop.set(eop);
  dst_->val.set(src_->val.get());
  if (numVCs_ == 1) {
    src_->ack.set(dst_->ack.get());
    return;
  }
  // VC mode: vc tag downstream, per-VC space/link-up levels and credit
  // pulses upstream.  The ack wire is unused.
  dst_->vc.set(src_->vc.get());
  for (int v = 0; v < numVCs_; ++v) {
    src_->vcFree[static_cast<std::size_t>(v)].set(
        dst_->vcFree[static_cast<std::size_t>(v)].get());
    src_->vcAck[static_cast<std::size_t>(v)].set(
        dst_->vcAck[static_cast<std::size_t>(v)].get());
  }
}

void Link::clockEdge() {
  // With VCs a scheduled flit always transfers: the sender only raises val
  // toward a VC with advertised space or an in-hand credit.
  const bool transferred =
      (flowControl_ == FlowControl::Handshake && numVCs_ == 1)
          ? (src_->val.get() && src_->ack.get())
          : src_->val.get();
  if (transferred) {
    ++flitsTransferred_;
    onTransfer(src_->flit.bop.get());
  }
}

// --- compiled-kernel lowering ------------------------------------------
//
// Forward (flit + val) and reverse (ack) directions are separate ops:
// fusing them would tie the downstream val driver to the downstream ack
// reader and manufacture a false combinational cycle through the
// receiving router's flow controller.

// Each op carries exactly the slices it touches: op contexts are the
// interpreter's dominant memory traffic, so smaller structs mean fewer
// cache lines streamed per simulated cycle.

namespace {

struct LinkFwdCtx {
  std::uint32_t srcWord = 0, dstWord = 0;
  sim::Slice srcVal, dstVal;
};

struct LinkRevCtx {
  sim::Slice srcAck, dstAck;
};

struct LinkEdgeCtx {
  sim::Slice srcVal, srcAck;
  bool handshake = true;
  std::uint64_t* flits = nullptr;
};

void linkForward(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<LinkFwdCtx*>(vctx);
  sim::opCopyFlit(w, c->dstWord, c->srcWord);
  sim::opPutBit(w, c->dstVal, sim::opBit(w, c->srcVal));
}

void linkReverse(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<LinkRevCtx*>(vctx);
  sim::opPutBit(w, c->srcAck, sim::opBit(w, c->dstAck));
}

void linkEdge(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<LinkEdgeCtx*>(vctx);
  const bool transferred =
      c->handshake ? (sim::opBit(w, c->srcVal) && sim::opBit(w, c->srcAck))
                   : sim::opBit(w, c->srcVal);
  if (transferred) ++*c->flits;
}

}  // namespace

bool Link::describe(sim::Lowering& lw) {
  // Subclasses override transformData/onTransfer/evaluate (fault
  // injection); only an exact Link is pass-through wiring.  They run as
  // behavioural thunks instead.
  if (typeid(*this) != typeid(Link)) return false;

  if (numVCs_ > 1) {
    // VC links lower as a declared behavioural thunk plus an edge call;
    // the numVCs == 1 fused ops below stay byte-identical.
    std::vector<const sim::WireBase*> reads = {
        &src_->flit.data, &src_->flit.bop, &src_->flit.eop, &src_->val,
        &src_->vc};
    std::vector<const sim::WireBase*> writes = {
        &dst_->flit.data, &dst_->flit.bop, &dst_->flit.eop, &dst_->val,
        &dst_->vc};
    for (int v = 0; v < numVCs_; ++v) {
      reads.push_back(&dst_->vcFree[static_cast<std::size_t>(v)]);
      reads.push_back(&dst_->vcAck[static_cast<std::size_t>(v)]);
      writes.push_back(&src_->vcFree[static_cast<std::size_t>(v)]);
      writes.push_back(&src_->vcAck[static_cast<std::size_t>(v)]);
    }
    lw.thunkDeclared(*this, std::move(reads), std::move(writes));
    lw.edgeCall(*this);
    return true;
  }

  LinkFwdCtx fwd;
  fwd.srcWord = lw.flitWord(src_->flit.data, src_->flit.bop, src_->flit.eop);
  fwd.dstWord = lw.flitWord(dst_->flit.data, dst_->flit.bop, dst_->flit.eop);
  fwd.srcVal = lw.bit(src_->val);
  fwd.dstVal = lw.bit(dst_->val);
  lw.op(&linkForward, lw.ctx(fwd),
        {&src_->flit.data, &src_->flit.bop, &src_->flit.eop, &src_->val},
        {&dst_->flit.data, &dst_->flit.bop, &dst_->flit.eop, &dst_->val});

  LinkRevCtx rev;
  rev.srcAck = lw.bit(src_->ack);
  rev.dstAck = lw.bit(dst_->ack);
  lw.op(&linkReverse, lw.ctx(rev), {&dst_->ack}, {&src_->ack});

  LinkEdgeCtx edge;
  edge.srcVal = fwd.srcVal;
  edge.srcAck = rev.srcAck;
  edge.handshake = flowControl_ == FlowControl::Handshake;
  edge.flits = &flitsTransferred_;
  lw.edgeOp(&linkEdge, lw.ctx(edge));
  return true;
}

}  // namespace rasoc::router
