// Wire bundles for RASoC's external channels and internal crossbar nets.
#pragma once

#include <array>
#include <cstdint>

#include "sim/wire.hpp"

#include "router/params.hpp"

namespace rasoc::router {

// The data + framing portion of a channel.
struct FlitWires {
  sim::Wire<std::uint32_t> data;
  sim::Wire<bool> bop;
  sim::Wire<bool> eop;
};

// One unidirectional channel (paper Figure 3): n data bits, bop/eop framing
// and the val/ack handshake pair.  `ack` travels against the data flow.
//
// Virtual channels (numVCs > 1) extend the bundle out-of-band — the
// original wires keep their exact single-VC semantics so a numVCs == 1
// network is bit-identical to the paper's router:
//
//   vc         : which VC the flit on `flit`/`val` belongs to (downstream)
//   vcFree[v]  : receiver has buffer space on VC v (upstream, level).  The
//                sender only schedules a VC whose vcFree is asserted, which
//                replaces the per-flit val/ack round trip with on/off flow
//                control; a fault-injecting link masks the whole array to
//                model an outage.
//   vcAck[v]   : credit-return pulse for VC v (upstream, credit-based flow
//                control only).  Per-VC because two VCs of one input port
//                can each pop a flit in the same cycle through different
//                output ports.
//
// Wires above RouterParams::numVCs are never driven or read.
struct ChannelWires {
  FlitWires flit;
  sim::Wire<bool> val;
  sim::Wire<bool> ack;
  sim::Wire<int> vc;
  std::array<sim::Wire<bool>, kMaxVCs> vcFree;
  std::array<sim::Wire<bool>, kMaxVCs> vcAck;
};

// The nets one input channel publishes to / receives from the distributed
// crossbar (prefix x_ in the paper's terminology).
//
//   data/bop/eop : x_dout - buffered flit, header already RIB-updated
//   rok          : x_rok  - a flit is available at the buffer head
//   req[o]       : x_req  - request to output channel o
//   gnt[o]       : x_gnt  - grant from output channel o
//   rd[o]        : x_rd   - read command from output channel o
//
// req/gnt/rd are indexed by output port; the entry for the input's own port
// is never asserted ("it is not allowed to an input channel to request the
// output channel of its own port").
// With virtual channels the crossbar is replicated per (input port, VC);
// `want` then carries the VC-allocation request alongside req, as a bitmask
// of the downstream VCs the bidding header may take: a one-bit mask naming
// an escape-routed header's dateline class, or the adaptive VC set (the
// packet class's qosVcMask() subset under RouterParams::qosClasses) for
// adaptive headers (see VcOutputChannel).  Unused at numVCs == 1.
struct CrossbarWires {
  FlitWires flit;
  sim::Wire<bool> rok;
  sim::Wire<int> want;
  std::array<sim::Wire<bool>, kNumPorts> req;
  std::array<sim::Wire<bool>, kNumPorts> gnt;
  std::array<sim::Wire<bool>, kNumPorts> rd;
};

}  // namespace rasoc::router
