// Wire bundles for RASoC's external channels and internal crossbar nets.
#pragma once

#include <array>
#include <cstdint>

#include "sim/wire.hpp"

#include "router/params.hpp"

namespace rasoc::router {

// The data + framing portion of a channel.
struct FlitWires {
  sim::Wire<std::uint32_t> data;
  sim::Wire<bool> bop;
  sim::Wire<bool> eop;
};

// One unidirectional channel (paper Figure 3): n data bits, bop/eop framing
// and the val/ack handshake pair.  `ack` travels against the data flow.
struct ChannelWires {
  FlitWires flit;
  sim::Wire<bool> val;
  sim::Wire<bool> ack;
};

// The nets one input channel publishes to / receives from the distributed
// crossbar (prefix x_ in the paper's terminology).
//
//   data/bop/eop : x_dout - buffered flit, header already RIB-updated
//   rok          : x_rok  - a flit is available at the buffer head
//   req[o]       : x_req  - request to output channel o
//   gnt[o]       : x_gnt  - grant from output channel o
//   rd[o]        : x_rd   - read command from output channel o
//
// req/gnt/rd are indexed by output port; the entry for the input's own port
// is never asserted ("it is not allowed to an input channel to request the
// output channel of its own port").
struct CrossbarWires {
  FlitWires flit;
  sim::Wire<bool> rok;
  std::array<sim::Wire<bool>, kNumPorts> req;
  std::array<sim::Wire<bool>, kNumPorts> gnt;
  std::array<sim::Wire<bool>, kNumPorts> rd;
};

}  // namespace rasoc::router
