// Credit-based Output Flow Controller - the replacement OFC the paper
// sketches in Section 2.2 ("an up/down counter in a credit-based strategy").
//
// The sender keeps an up/down counter initialized to the receiver's buffer
// depth.  A flit is sent (out_val asserted, x_rd issued) whenever the
// selected input has a flit ready AND a credit is available; the counter
// decrements per flit sent and increments per credit returned.  The
// channel's ack wire is reinterpreted as the credit-return line: the
// receiving input channel pulses it each cycle a flit leaves its buffer.
//
// Compared to the handshake OFC this removes the round-trip dependency
// (out_val -> receiver ack -> x_rd) from the flit transfer: the sender
// pops eagerly, which keeps the link busy when the receiver pipeline is
// draining.  The bench_ablation_flowctrl harness quantifies the difference.
#pragma once

#include <array>

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class CreditOfc : public sim::Module {
 public:
  // `creditReturn` is the channel ack wire in credit mode; `initialCredits`
  // must equal the downstream buffer depth.
  CreditOfc(std::string name, Port ownPort, int initialCredits,
            const sim::Wire<bool>& rokSel,
            const sim::Wire<bool>& creditReturn, sim::Wire<bool>& outVal,
            sim::Wire<bool>& xRd, std::array<CrossbarWires, kNumPorts>& xbar)
      : Module(std::move(name)),
        ownPort_(ownPort),
        initialCredits_(initialCredits),
        rokSel_(&rokSel),
        creditReturn_(&creditReturn),
        outVal_(&outVal),
        xRd_(&xRd),
        xbar_(&xbar) {
    sensitive(rokSel);
    declareSequential();  // evaluate() reads the credit counter
  }

  int credits() const { return credits_; }

  // The exact clockEdge() body with the wire values passed in: the
  // compiled kernel's fused edge op (router/output_channel.cpp) reads
  // rokSel and the credit-return line from the state arena and steps the
  // counter through here.
  void creditEdge(bool rokSel, bool creditReturn) {
    const bool sent = rokSel && credits_ > 0;
    credits_ += (creditReturn ? 1 : 0) - (sent ? 1 : 0);
  }

 protected:
  void onReset() override { credits_ = initialCredits_; }

  void evaluate() override {
    const bool send = rokSel_->get() && credits_ > 0;
    outVal_->set(send);
    xRd_->set(send);
    const int own = index(ownPort_);
    for (auto& in : *xbar_) in.rd[own].set(send);
  }

  void clockEdge() override {
    creditEdge(rokSel_->get(), creditReturn_->get());
  }

 private:
  Port ownPort_;
  int initialCredits_;
  int credits_ = 0;
  const sim::Wire<bool>* rokSel_;
  const sim::Wire<bool>* creditReturn_;
  sim::Wire<bool>* outVal_;
  sim::Wire<bool>* xRd_;
  std::array<CrossbarWires, kNumPorts>* xbar_;
};

// Per-VC sender-side credit bank (numVCs > 1, credit-based flow control):
// one up/down counter per virtual channel, each initialized to the
// receiver's per-VC buffer depth.  The channel's per-VC vcAck wires carry
// the returning credits (router/channel.hpp); the scalar ack wire is
// unused.  Shared by VcOutputChannel and the VC'd network interface.
class VcCredits {
 public:
  void reset(int numVCs, int depth);
  bool available(int v) const { return credits_[static_cast<std::size_t>(v)] > 0; }
  int credits(int v) const { return credits_[static_cast<std::size_t>(v)]; }
  void onSent(int v);
  void onReturn(int v);
  // Conservation invariant for tests: no counter may exceed its initial
  // depth or go negative.
  bool conserved() const;

 private:
  std::array<int, kMaxVCs> credits_{};
  int numVCs_ = 0;
  int depth_ = 0;
};

// Receiver-side credit return: pulses the channel's ack (credit) wire each
// cycle a flit is read out of the input buffer, freeing a slot.
class CreditReturnTap : public sim::Module {
 public:
  CreditReturnTap(std::string name, const sim::Wire<bool>& rd,
                  const sim::Wire<bool>& rok, sim::Wire<bool>& creditOut)
      : Module(std::move(name)), rd_(&rd), rok_(&rok), creditOut_(&creditOut) {
    sensitive(rd);
    sensitive(rok);
  }

 protected:
  void evaluate() override { creditOut_->set(rd_->get() && rok_->get()); }

 private:
  const sim::Wire<bool>* rd_;
  const sim::Wire<bool>* rok_;
  sim::Wire<bool>* creditOut_;
};

}  // namespace rasoc::router
