// IFC - Input Flow Controller (paper Figure 5).
//
// Translates between the handshake protocol on the external link and the
// FIFO write interface: "It just implements an AND gate in order to set the
// output in_ack when both in_val and wok equal 1."  The same condition
// drives the FIFO write strobe.
//
// In credit-based mode (paper Section 2.2 extension) the sender only emits
// a flit when it holds a credit, so the receiver accepts unconditionally:
// wr = in_val, and in_ack doubles as the credit-return line, pulsed by the
// input channel when a flit leaves the buffer (driven by the input channel
// wiring, not by the IFC).
#pragma once

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/params.hpp"

namespace rasoc::router {

class Ifc : public sim::Module {
 public:
  Ifc(std::string name, FlowControl mode, const sim::Wire<bool>& inVal,
      const sim::Wire<bool>& wok, sim::Wire<bool>* inAck, sim::Wire<bool>& wr)
      : Module(std::move(name)),
        mode_(mode),
        inVal_(&inVal),
        wok_(&wok),
        inAck_(inAck),
        wr_(&wr) {
    sensitive(inVal);
    if (mode_ == FlowControl::Handshake) sensitive(wok);
  }

 protected:
  void evaluate() override {
    if (mode_ == FlowControl::Handshake) {
      const bool accept = inVal_->get() && wok_->get();
      if (inAck_ != nullptr) inAck_->set(accept);
      wr_->set(accept);
    } else {
      // Credit-based: space is guaranteed by the sender's credit counter.
      wr_->set(inVal_->get());
    }
  }

 private:
  FlowControl mode_;
  const sim::Wire<bool>* inVal_;
  const sim::Wire<bool>* wok_;
  sim::Wire<bool>* inAck_;  // null in credit mode (ack is the credit line)
  sim::Wire<bool>* wr_;
};

}  // namespace rasoc::router
