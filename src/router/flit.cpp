#include "router/flit.hpp"

#include <cstdlib>
#include <stdexcept>

namespace rasoc::router {

int ribMaxOffset(int m) {
  const int magnitudeBits = m / 2 - 1;
  return (1 << magnitudeBits) - 1;
}

namespace {

std::uint32_t encodeAxis(int offset, int fieldBits) {
  const int magnitudeBits = fieldBits - 1;
  const std::uint32_t magnitude =
      static_cast<std::uint32_t>(offset < 0 ? -offset : offset);
  const std::uint32_t sign = offset < 0 ? 1u : 0u;
  return (sign << magnitudeBits) | magnitude;
}

int decodeAxis(std::uint32_t field, int fieldBits) {
  const int magnitudeBits = fieldBits - 1;
  const std::uint32_t magnitudeMask = (1u << magnitudeBits) - 1;
  const int magnitude = static_cast<int>(field & magnitudeMask);
  const bool negative = (field >> magnitudeBits) & 1u;
  return negative ? -magnitude : magnitude;
}

}  // namespace

std::uint32_t encodeRib(Rib rib, int m) {
  const int maxOffset = ribMaxOffset(m);
  if (std::abs(rib.dx) > maxOffset || std::abs(rib.dy) > maxOffset)
    throw std::out_of_range("RIB offset does not fit in " +
                            std::to_string(m) + " bits");
  const int fieldBits = m / 2;
  return encodeAxis(rib.dx, fieldBits) |
         (encodeAxis(rib.dy, fieldBits) << fieldBits);
}

Rib decodeRib(std::uint32_t header, int m) {
  const int fieldBits = m / 2;
  const std::uint32_t fieldMask = (1u << fieldBits) - 1;
  return Rib{decodeAxis(header & fieldMask, fieldBits),
             decodeAxis((header >> fieldBits) & fieldMask, fieldBits)};
}

Port routeXY(Rib rib) {
  if (rib.dx > 0) return Port::East;
  if (rib.dx < 0) return Port::West;
  if (rib.dy > 0) return Port::North;
  if (rib.dy < 0) return Port::South;
  return Port::Local;
}

Port routeYX(Rib rib) {
  if (rib.dy > 0) return Port::North;
  if (rib.dy < 0) return Port::South;
  if (rib.dx > 0) return Port::East;
  if (rib.dx < 0) return Port::West;
  return Port::Local;
}

Port route(RoutingAlgorithm algorithm, Rib rib) {
  return algorithm == RoutingAlgorithm::XY ? routeXY(rib) : routeYX(rib);
}

Rib consumeHop(Rib rib, Port out) {
  switch (out) {
    case Port::East: --rib.dx; break;
    case Port::West: ++rib.dx; break;
    case Port::North: --rib.dy; break;
    case Port::South: ++rib.dy; break;
    case Port::Local: break;
  }
  return rib;
}

std::uint32_t updateHeader(std::uint32_t header, Rib rib, int m) {
  const std::uint32_t ribMask = m >= 32 ? 0xffffffffu : ((1u << m) - 1);
  return (header & ~ribMask) | encodeRib(rib, m);
}

std::uint32_t encodeTrafficClass(std::uint32_t header, TrafficClass cls,
                                 int m) {
  const std::uint32_t tagMask = 3u << m;
  return (header & ~tagMask) |
         (static_cast<std::uint32_t>(static_cast<int>(cls)) << m);
}

TrafficClass decodeTrafficClass(std::uint32_t header, int m) {
  return static_cast<TrafficClass>((header >> m) & 3u);
}

std::vector<Flit> makePacket(Rib rib, const std::vector<std::uint32_t>& payload,
                             const RouterParams& params, int vc) {
  if (payload.empty())
    throw std::invalid_argument(
        "a packet needs at least one payload flit (the trailer)");
  std::vector<Flit> flits;
  flits.reserve(payload.size() + 1);
  Flit header;
  header.data = encodeRib(rib, params.m) & dataMask(params.n);
  header.bop = true;
  header.vc = vc;
  flits.push_back(header);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    Flit f;
    f.data = payload[i] & dataMask(params.n);
    f.eop = (i + 1 == payload.size());
    f.vc = vc;
    flits.push_back(f);
  }
  return flits;
}

}  // namespace rasoc::router
