// rasoc - the router top level (paper Figures 2 and 4).
//
// Externally a routing switch with up to five bidirectional ports (L, N, E,
// S, W), each made of two opposite unidirectional channels carrying n data
// bits, bop/eop framing and val/ack flow control (Figure 3).  Internally a
// distributed organization: one input channel and one output channel module
// per instantiated port, connected through the x_* crossbar nets.
//
// The class mirrors the VHDL soft-core's generics: RouterParams carries
// (n, m, p) plus the instantiated-port mask, the FIFO microarchitecture and
// the link flow-control strategy.  Ports absent from the mask are simply
// not constructed, "reducing the network area" exactly as the paper's
// Section 2 describes for edge and corner routers.
#pragma once

#include <array>
#include <memory>

#include "sim/module.hpp"
#include "telemetry/metrics.hpp"

#include "router/channel.hpp"
#include "router/input_channel.hpp"
#include "router/output_channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

// With params.numVCs == 1 the router instantiates the original fused
// channel pair, byte-identical to the pre-VC core.  With numVCs > 1 each
// port gets the virtual-channel pair (VcInputChannel / VcOutputChannel) and
// the crossbar nets are replicated per VC; `geometry` then places the
// router in its topology so escape-VC dateline classes can be computed
// locally (params.hpp, VcGeometry).
class Rasoc : public sim::Module {
 public:
  explicit Rasoc(std::string name, RouterParams params,
                 ArbiterKind arbiter = ArbiterKind::RoundRobin,
                 VcGeometry geometry = {});

  const RouterParams& params() const { return params_; }
  const VcGeometry& geometry() const { return geometry_; }
  bool vcMode() const { return params_.numVCs > 1; }

  // External channel wire bundles.  Throws std::out_of_range for a port not
  // present in params().portMask.
  ChannelWires& in(Port p);
  ChannelWires& out(Port p);
  const ChannelWires& in(Port p) const;
  const ChannelWires& out(Port p) const;

  // numVCs == 1 channel accessors; throw std::logic_error in VC mode.
  const InputChannel& inputChannel(Port p) const;
  const OutputChannel& outputChannel(Port p) const;
  // numVCs > 1 channel accessors; throw std::logic_error otherwise.
  const VcInputChannel& vcInputChannel(Port p) const;
  const VcOutputChannel& vcOutputChannel(Port p) const;

  // Diagnostics aggregated over all channels (sticky since reset).
  bool misrouteDetected() const;
  bool overflowDetected() const;

  // Registers the standard per-channel series under `prefix` (see the
  // naming convention in telemetry/metrics.hpp) and attaches them to every
  // instantiated channel.  The registry must outlive this router.
  void attachMetrics(telemetry::MetricsRegistry& registry,
                     const std::string& prefix);

  // Compiled-kernel lowering: the router top is a structural shell (no
  // evaluate/clockEdge of its own), so lowering just recurses into the
  // channel modules without spending a fallback thunk on the shell.
  bool describe(sim::Lowering& lw) override;

 private:
  void requirePort(Port p) const;

  RouterParams params_;
  VcGeometry geometry_;
  std::array<ChannelWires, kNumPorts> inWires_;
  std::array<ChannelWires, kNumPorts> outWires_;
  std::array<CrossbarWires, kNumPorts> xbar_;
  std::array<std::unique_ptr<InputChannel>, kNumPorts> inputs_;
  std::array<std::unique_ptr<OutputChannel>, kNumPorts> outputs_;
  // numVCs > 1: per-VC crossbar nets (heap: kNumPorts * kMaxVCs wire
  // bundles are only paid for when VCs are enabled) and the VC channels.
  std::unique_ptr<std::array<std::array<CrossbarWires, kMaxVCs>, kNumPorts>>
      vcXbar_;
  std::array<std::unique_ptr<VcInputChannel>, kNumPorts> vcInputs_;
  std::array<std::unique_ptr<VcOutputChannel>, kNumPorts> vcOutputs_;
};

}  // namespace rasoc::router
