// OFC - Output Flow Controller (paper Figure 6).
//
// Handshake mode: "Since there is no functional difference between the
// handshake and the FIFO protocols at the sender side, the OFC block just
// implements wires connecting the selected x_rok to out_val, and out_ack to
// x_rd."  The x_rd command is broadcast to every input channel's rd line
// for this output; the grant lines qualify it inside each IRS.
//
// Credit mode (paper Section 2.2: "this block can be easily replaced to
// implement the required logic (eg. an up/down counter in a credit-based
// strategy)") lives in router/credit.hpp.
#pragma once

#include <array>

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class Ofc : public sim::Module {
 public:
  Ofc(std::string name, Port ownPort, const sim::Wire<bool>& rokSel,
      const sim::Wire<bool>& outAck, sim::Wire<bool>& outVal,
      sim::Wire<bool>& xRd, std::array<CrossbarWires, kNumPorts>& xbar)
      : Module(std::move(name)),
        ownPort_(ownPort),
        rokSel_(&rokSel),
        outAck_(&outAck),
        outVal_(&outVal),
        xRd_(&xRd),
        xbar_(&xbar) {
    sensitive(rokSel);
    sensitive(outAck);
  }

 protected:
  void evaluate() override {
    outVal_->set(rokSel_->get());
    const bool rd = outAck_->get();
    xRd_->set(rd);
    const int own = index(ownPort_);
    for (auto& in : *xbar_) in.rd[own].set(rd);
  }

 private:
  Port ownPort_;
  const sim::Wire<bool>* rokSel_;
  const sim::Wire<bool>* outAck_;
  sim::Wire<bool>* outVal_;
  sim::Wire<bool>* xRd_;
  std::array<CrossbarWires, kNumPorts>* xbar_;
};

}  // namespace rasoc::router
