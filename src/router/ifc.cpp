#include "router/ifc.hpp"

// Header-only behaviour; this translation unit anchors the library symbol.
