/// \file
/// Output channel module (paper Figure 6): OC + ODS + ORS + OFC wired
/// together, presenting the crossbar nets on one side and the external
/// output link on the other.  VcOutputChannel is the numVCs > 1 variant
/// with per-downstream-VC connection state, VC allocation and — under
/// RouterParams::qosClasses — strict-priority link scheduling with a
/// starvation guard.
#pragma once

#include <array>
#include <memory>

#include "sim/module.hpp"
#include "sim/wire.hpp"
#include "telemetry/metrics.hpp"

#include "router/channel.hpp"
#include "router/credit.hpp"
#include "router/oc.hpp"
#include "router/ods.hpp"
#include "router/ofc.hpp"
#include "router/ors.hpp"
#include "router/params.hpp"

namespace rasoc::router {

/// Opt-in per-channel instrumentation (telemetry subsystem).  All pointers
/// null by default: an unattached channel pays one branch per cycle.
struct OutputChannelMetrics {
  telemetry::Counter* flitsSent = nullptr;      ///< flits put on the link
  telemetry::Counter* busyCycles = nullptr;     ///< link val asserted
  telemetry::Counter* grants = nullptr;         ///< arbitration grants issued
  telemetry::Counter* conflictCycles = nullptr; ///< a requester left waiting
  telemetry::Counter* routerFlits = nullptr;    ///< router-aggregate throughput
};

/// Single-VC output channel: the paper's OC + ODS + ORS + OFC block stack,
/// bit-exact to the RASoC VHDL at numVCs == 1.
class OutputChannel : public sim::Module {
 public:
  OutputChannel(std::string name, const RouterParams& params, Port ownPort,
                std::array<CrossbarWires, kNumPorts>& xbar, ChannelWires& out,
                ArbiterKind arbiter = ArbiterKind::RoundRobin);

  const OutputController& controller() const { return oc_; }
  Port port() const { return ownPort_; }

  /// Number of flits sent over the link since reset.
  std::uint64_t flitsSent() const { return flitsSent_; }

  // Read-only observation points for the flow tracer (pre-edge wires; see
  // InputChannel for the reconstruction contract).

  /// The external output link wires this channel drives.
  const ChannelWires& outWires() const { return *out_; }
  /// Combinational connection/selection nets driven by the OC this cycle.
  bool connectedWire() const { return connected_.get(); }
  int selWire() const { return sel_.get(); }
  /// The shared crossbar nets, for replaying request/grant decisions.
  const std::array<CrossbarWires, kNumPorts>& xbarWires() const {
    return *xbar_;
  }

  /// Enables instrumentation; the metrics must outlive the channel.
  void attachMetrics(const OutputChannelMetrics& metrics);

  /// Compiled-kernel lowering: replaces the OC/ODS/ORS/OFC subtree with two
  /// fused arena ops (grant publish + output mux, flow-control response) and
  /// a fused edge op (router/output_channel.cpp).
  bool describe(sim::Lowering& lw) override;

 protected:
  void clockEdge() override;

 private:
  Port ownPort_;

  // Internal nets.
  sim::Wire<bool> connected_;
  sim::Wire<int> sel_;
  sim::Wire<bool> rokSel_;
  sim::Wire<bool> xRd_;

  // Blocks.
  OutputController oc_;
  Ods ods_;
  Ors ors_;
  std::unique_ptr<Ofc> handshakeOfc_;
  std::unique_ptr<CreditOfc> creditOfc_;

  std::uint64_t flitsSent_ = 0;
  const ChannelWires* out_;
  FlowControl flowControl_;
  std::array<CrossbarWires, kNumPorts>* xbar_;
  OutputChannelMetrics metrics_;
  bool metricsAttached_ = false;
};

/// Per-VC instrumentation for the VC'd output channel (telemetry subsystem).
struct VcOutputChannelMetrics {
  telemetry::Counter* flitsSent = nullptr;       ///< flits put on the link
  telemetry::Counter* busyCycles = nullptr;      ///< link val asserted
  telemetry::Counter* grants = nullptr;          ///< downstream-VC allocations
  telemetry::Counter* conflictCycles = nullptr;  ///< a requester left waiting
  telemetry::Counter* routerFlits = nullptr;     ///< router-aggregate flits
  std::array<telemetry::Counter*, kMaxVCs> vcFlits{};  ///< per downstream VC
};

/// Virtual-channel output channel (numVCs > 1): a connection table maps each
/// downstream VC to the (input port, input VC) holding it; allocation runs at
/// the clock edge with vcArbitrate (ors.hpp), and evaluate() schedules one
/// connected, ready, non-blocked downstream VC onto the one physical link —
/// round-robin by default.  Flit transfers are unconditional once scheduled:
/// out_val is only asserted when the receiver advertised space (vcFree level)
/// or a credit was available, so the ack wire is unused at numVCs > 1.
///
/// With RouterParams::qosClasses the link scheduler switches to strict
/// priority by downstream VC index, descending — the class→VC map
/// (params.hpp, qosVcMask) places higher classes on higher VCs, so this is
/// strict priority by TrafficClass — tempered by a starvation guard: a VC
/// that stayed eligible but unscheduled for kQosStarvationWindow consecutive
/// edges preempts the priority order (lowest starved VC first, so escape VCs
/// win ties).  The guard bounds every VC's service interval, which keeps the
/// escape layer's deadlock-freedom argument intact under class mapping
/// (DESIGN.md §13).
class VcOutputChannel : public sim::Module {
 public:
  /// Edges a VC may stay eligible-but-unscheduled under QoS before it
  /// preempts the strict priority order.
  static constexpr int kQosStarvationWindow = 8;

  VcOutputChannel(std::string name, const RouterParams& params, Port ownPort,
                  VcGeometry geometry,
                  std::array<std::array<CrossbarWires, kMaxVCs>, kNumPorts>&
                      xbar,
                  ChannelWires& out);

  Port port() const { return ownPort_; }
  int numVCs() const { return numVCs_; }
  int escapeVCs() const { return escapeVCs_; }
  std::uint64_t flitsSent() const { return flitsSent_; }
  /// Flits sent on downstream VC `v` since reset.
  std::uint64_t flitsSent(int v) const {
    return vcFlitsSent_[static_cast<std::size_t>(v)];
  }
  /// Sender-side credit pool (credit flow control only).
  const VcCredits& credits() const { return credits_; }

  /// QoS starvation-guard counter for downstream VC `v` (always zero when
  /// qosClasses is off); exposed for the starvation-bound tests.
  int starvation(int v) const {
    return starve_[static_cast<std::size_t>(v)];
  }

  // Read-only observation points for the flow tracer (pre-edge wires and
  // registered connection state; see InputChannel for the contract).

  /// The external output link wires this channel drives.
  const ChannelWires& outWires() const { return *out_; }
  /// True when a flit is scheduled onto the link this cycle.
  bool linkScheduled() const { return out_->val.get(); }
  /// The downstream VC of the scheduled flit (valid while linkScheduled()).
  int scheduledVc() const { return out_->vc.get(); }
  /// True when downstream VC `d` holds a wormhole connection.
  bool connActive(int d) const {
    return conn_[static_cast<std::size_t>(d)].active;
  }
  /// Input port of downstream VC `d`'s connection.
  int connInPort(int d) const {
    return conn_[static_cast<std::size_t>(d)].inPort;
  }
  /// Input VC of downstream VC `d`'s connection.
  int connInVc(int d) const { return conn_[static_cast<std::size_t>(d)].inVc; }

  /// Enables instrumentation; the metrics must outlive the channel.
  void attachMetrics(const VcOutputChannelMetrics& metrics);

  /// Behavioural thunk with declared reads/writes plus a clockEdge() call
  /// (same lowering strategy as VcInputChannel and the network interface).
  bool describe(sim::Lowering& lw) override;

 protected:
  void onReset() override;
  void evaluate() override;
  void clockEdge() override;

 private:
  bool creditMode() const {
    return flowControl_ == FlowControl::CreditBased;
  }
  // Downstream VC d is connected, its source has a flit ready, and the
  // receiver can take it — the link scheduler's candidate predicate.
  bool schedulable(int d) const;

  // One downstream VC's registered connection (wormhole: held from header
  // grant to tail send).
  struct Conn {
    bool active = false;
    int inPort = 0;
    int inVc = 0;
  };

  RouterParams params_;
  Port ownPort_;
  FlowControl flowControl_;
  int numVCs_ = 1;
  int escapeVCs_ = 1;

  ChannelWires* out_;
  std::array<std::array<CrossbarWires, kMaxVCs>, kNumPorts>* xbar_;

  // Registered state.
  std::array<Conn, kMaxVCs> conn_{};
  std::array<int, kMaxVCs> rrNext_{};  // per-downstream-VC allocation RR
  int schedRR_ = 0;                    // link-scheduling RR over downstream VCs
  std::array<int, kMaxVCs> starve_{};  // QoS: eligible-but-unscheduled edges
  VcCredits credits_;                  // credit mode only

  std::uint64_t flitsSent_ = 0;
  std::array<std::uint64_t, kMaxVCs> vcFlitsSent_{};
  VcOutputChannelMetrics metrics_;
  bool metricsAttached_ = false;
};

}  // namespace rasoc::router
