// Output channel module (paper Figure 6): OC + ODS + ORS + OFC wired
// together, presenting the crossbar nets on one side and the external
// output link on the other.
#pragma once

#include <array>
#include <memory>

#include "sim/module.hpp"
#include "sim/wire.hpp"
#include "telemetry/metrics.hpp"

#include "router/channel.hpp"
#include "router/credit.hpp"
#include "router/oc.hpp"
#include "router/ods.hpp"
#include "router/ofc.hpp"
#include "router/ors.hpp"
#include "router/params.hpp"

namespace rasoc::router {

// Opt-in per-channel instrumentation (telemetry subsystem).  All pointers
// null by default: an unattached channel pays one branch per cycle.
struct OutputChannelMetrics {
  telemetry::Counter* flitsSent = nullptr;      // flits put on the link
  telemetry::Counter* busyCycles = nullptr;     // link val asserted
  telemetry::Counter* grants = nullptr;         // arbitration grants issued
  telemetry::Counter* conflictCycles = nullptr; // a requester left waiting
  telemetry::Counter* routerFlits = nullptr;    // router-aggregate throughput
};

class OutputChannel : public sim::Module {
 public:
  OutputChannel(std::string name, const RouterParams& params, Port ownPort,
                std::array<CrossbarWires, kNumPorts>& xbar, ChannelWires& out,
                ArbiterKind arbiter = ArbiterKind::RoundRobin);

  const OutputController& controller() const { return oc_; }
  Port port() const { return ownPort_; }

  // Number of flits sent over the link since reset.
  std::uint64_t flitsSent() const { return flitsSent_; }

  // Read-only observation points for the flow tracer (pre-edge wires; see
  // InputChannel for the reconstruction contract).
  const ChannelWires& outWires() const { return *out_; }
  // Combinational connection/selection nets driven by the OC this cycle.
  bool connectedWire() const { return connected_.get(); }
  int selWire() const { return sel_.get(); }
  // The shared crossbar nets, for replaying request/grant decisions.
  const std::array<CrossbarWires, kNumPorts>& xbarWires() const {
    return *xbar_;
  }

  // Enables instrumentation; the metrics must outlive the channel.
  void attachMetrics(const OutputChannelMetrics& metrics);

  // Compiled-kernel lowering: replaces the OC/ODS/ORS/OFC subtree with two
  // fused arena ops (grant publish + output mux, flow-control response) and
  // a fused edge op (router/output_channel.cpp).
  bool describe(sim::Lowering& lw) override;

 protected:
  void clockEdge() override;

 private:
  Port ownPort_;

  // Internal nets.
  sim::Wire<bool> connected_;
  sim::Wire<int> sel_;
  sim::Wire<bool> rokSel_;
  sim::Wire<bool> xRd_;

  // Blocks.
  OutputController oc_;
  Ods ods_;
  Ors ors_;
  std::unique_ptr<Ofc> handshakeOfc_;
  std::unique_ptr<CreditOfc> creditOfc_;

  std::uint64_t flitsSent_ = 0;
  const ChannelWires* out_;
  FlowControl flowControl_;
  std::array<CrossbarWires, kNumPorts>* xbar_;
  OutputChannelMetrics metrics_;
  bool metricsAttached_ = false;
};

}  // namespace rasoc::router
