// Flits, packets, and the Routing Information Bits (RIB) encoding.
//
// In RASoC "a flit equals the physical channel width": n data bits plus two
// framing bits, bop (begin-of-packet, set only in the header) and eop
// (end-of-packet, set only in the trailer).  The header's low m data bits
// carry the RIB used by the XY routing algorithm; the input controller
// decrements the RIB at every hop ("updates the routing information in the
// header to take into account the performed routing").
//
// RIB layout (m bits, m/2 per axis, signed-magnitude):
//   bits [0,       m/2): X field - sign bit at position m/2-1 (1 = West,
//                        i.e. negative X), magnitude below it
//   bits [m/2,     m  ): Y field - sign bit at position m-1 (1 = South,
//                        i.e. negative Y), magnitude below it
#pragma once

#include <cstdint>
#include <vector>

#include "router/params.hpp"

namespace rasoc::router {

struct Flit {
  std::uint32_t data = 0;
  bool bop = false;
  bool eop = false;
  // Virtual-channel id, carried out-of-band next to the bop/eop framing
  // (RouterParams::numVCs > 1 only; always 0 on single-VC networks, so the
  // wire format of the paper's router is unchanged).
  int vc = 0;

  bool operator==(const Flit&) const = default;
};

// Relative offset to the destination: dx > 0 means East, dy > 0 means North.
struct Rib {
  int dx = 0;
  int dy = 0;

  bool operator==(const Rib&) const = default;
};

// Largest representable per-axis magnitude for an m-bit RIB.
int ribMaxOffset(int m);

// Packs a relative offset into the low m bits (throws if out of range).
std::uint32_t encodeRib(Rib rib, int m);

// Extracts the RIB from the low m bits of a header word.
Rib decodeRib(std::uint32_t header, int m);

// XY routing decision for a RIB: route X first (East/West), then Y
// (North/South), and deliver locally when both offsets are zero.
Port routeXY(Rib rib);

// YX routing: Y first, then X.
Port routeYX(Rib rib);

// Dispatches on the algorithm.
Port route(RoutingAlgorithm algorithm, Rib rib);

// The RIB after taking one hop through output `out` (decrements the axis
// the hop progresses along; Local leaves the RIB untouched).
Rib consumeHop(Rib rib, Port out);

// Replaces the low m bits of `header` with the encoding of `rib`,
// preserving any higher payload bits.
std::uint32_t updateHeader(std::uint32_t header, Rib rib, int m);

// QoS class tag (RouterParams::qosClasses): carried in header data bits
// [m, m+2), directly above the RIB.  updateHeader() preserves bits above m,
// so the tag written at the source NI survives every hop's RIB rewrite.
// Headers are HLP-unprotected (their RIB is legitimately rewritten), so the
// tag does not interact with parity.  On non-QoS networks these bits are
// always zero, keeping the wire format unchanged.
std::uint32_t encodeTrafficClass(std::uint32_t header, TrafficClass cls,
                                 int m);
TrafficClass decodeTrafficClass(std::uint32_t header, int m);

// Data-bit mask for an n-bit channel.
constexpr std::uint32_t dataMask(int n) {
  return n >= 32 ? 0xffffffffu
                 : static_cast<std::uint32_t>((1ull << n) - 1);
}

// A packet as injected by a network interface: a header flit carrying the
// RIB followed by payload flits, the last one marked eop.  Every flit is
// tagged with `vc` (0 on single-VC networks).
std::vector<Flit> makePacket(Rib rib, const std::vector<std::uint32_t>& payload,
                             const RouterParams& params, int vc = 0);

}  // namespace rasoc::router
