// IB - Input Buffer (paper Figure 5): a p-deep, (n+2)-bit-wide FIFO.
//
// Two microarchitectures are modelled, matching the paper's Section 3:
//
//  * FfFifo  - "p-deep, (n+2)-wide shift registers with an output
//    multiplexer to select the FIFO head" (Figure 9).  Data always enters
//    at stage 0 and older flits sit at higher stages; a head counter drives
//    the output mux.
//  * EabFifo - ring buffer mapped onto Altera Embedded Array Blocks;
//    read/write pointers plus an occupancy counter, data bits in RAM.
//
// Both implement the same FIFO contract (and a property test asserts their
// behavioural equivalence): wok = not full, rok = not empty, dout = oldest
// flit, synchronous write on wr, synchronous read on rd, simultaneous
// read+write supported at any occupancy in (0, p].
//
// The EAB read is modelled flow-through (the head flit is visible
// combinationally); the extra EAB access delay shows up in the timing
// model (tech::fifoReadLevels), not as a protocol difference.
#pragma once

#include <memory>
#include <vector>

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/flit.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class InputBuffer : public sim::Module {
 public:
  InputBuffer(std::string name, const RouterParams& params,
              const FlitWires& din, const sim::Wire<bool>& wr,
              const sim::Wire<bool>& rd, FlitWires& dout,
              sim::Wire<bool>& wok, sim::Wire<bool>& rok);

  ~InputBuffer() override = default;

  virtual int occupancy() const = 0;
  int depth() const { return depth_; }
  bool full() const { return occupancy() >= depth_; }
  bool empty() const { return occupancy() == 0; }

  // Sticky flag: a write arrived while the buffer was full (protocol
  // violation under credit-based flow control; impossible under handshake).
  bool overflowDetected() const { return overflow_; }

  // Raw view of the backing store for the compiled kernel's fused publish
  // op (router/input_channel.cpp).  The head flit is slots[*rptr] when
  // rptr is non-null (ring buffer), slots[*count - 1] otherwise (shift
  // register).  Pointers are valid until the next onReset(), which may
  // reallocate the store - the simulator recompiles after reset, so a
  // program never outlives its view.
  struct CompiledView {
    const Flit* slots = nullptr;
    const int* count = nullptr;
    const int* rptr = nullptr;
  };
  virtual CompiledView compiledView() const = 0;

  // The exact clockEdge() body with the wire values passed in: the
  // compiled kernel's fused edge op reads wr/rd/din from the state arena
  // and commits through here.
  void commitEdge(bool wr, bool rd, std::uint32_t data, bool bop, bool eop) {
    const bool doRead = rd && !empty();
    const bool doWrite = wr && (!full() || doRead);
    if (wr && full() && !doRead) overflow_ = true;
    Flit incoming;
    if (doWrite) incoming = {data & mask_, bop, eop};
    commit(doWrite ? &incoming : nullptr, doRead);
  }

  // Builds the implementation selected by params.fifoImpl.
  static std::unique_ptr<InputBuffer> create(
      std::string name, const RouterParams& params, const FlitWires& din,
      const sim::Wire<bool>& wr, const sim::Wire<bool>& rd, FlitWires& dout,
      sim::Wire<bool>& wok, sim::Wire<bool>& rok);

 protected:
  void evaluate() override;
  void clockEdge() override;

  // Oldest stored flit; only meaningful when !empty().
  virtual Flit head() const = 0;

  // Commits one edge: push `write` if engaged, pop the head if `read`.
  virtual void commit(const Flit* write, bool read) = 0;

  std::uint32_t mask_;
  int depth_;

 private:
  const FlitWires* din_;
  const sim::Wire<bool>* wr_;
  const sim::Wire<bool>* rd_;
  FlitWires* dout_;
  sim::Wire<bool>* wok_;
  sim::Wire<bool>* rok_;
  bool overflow_ = false;
};

// Shift-register FIFO (Figure 9).
class FfFifo final : public InputBuffer {
 public:
  using InputBuffer::InputBuffer;

  int occupancy() const override { return count_; }
  CompiledView compiledView() const override {
    return {stages_.data(), &count_, nullptr};
  }

 protected:
  void onReset() override;
  Flit head() const override;
  void commit(const Flit* write, bool read) override;

 private:
  std::vector<Flit> stages_;  // stage 0 = newest
  int count_ = 0;
};

// Ring-buffer FIFO mapped onto embedded memory.
class EabFifo final : public InputBuffer {
 public:
  using InputBuffer::InputBuffer;

  int occupancy() const override { return count_; }
  CompiledView compiledView() const override {
    return {mem_.data(), &count_, &rptr_};
  }

 protected:
  void onReset() override;
  Flit head() const override;
  void commit(const Flit* write, bool read) override;

 private:
  std::vector<Flit> mem_;
  int rptr_ = 0;
  int wptr_ = 0;
  int count_ = 0;
};

}  // namespace rasoc::router
