// ORS - Output Rok Switch (paper Figure 6, entity name per Table 3).
//
// A 4:1, 1-bit multiplexer connecting the selected input channel's x_rok
// ("a flit is ready at the buffer head") toward the output flow controller,
// which turns it into out_val.
#pragma once

#include <array>

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class Ors : public sim::Module {
 public:
  Ors(std::string name, const std::array<CrossbarWires, kNumPorts>& xbar,
      const sim::Wire<bool>& connected, const sim::Wire<int>& sel,
      sim::Wire<bool>& rokSel)
      : Module(std::move(name)),
        xbar_(&xbar),
        connected_(&connected),
        sel_(&sel),
        rokSel_(&rokSel) {
    sensitive(connected);
    sensitive(sel);
    for (const CrossbarWires& in : xbar) sensitive(in.rok);
  }

 protected:
  void evaluate() override {
    const bool rok =
        connected_->get() &&
        (*xbar_)[static_cast<std::size_t>(sel_->get())].rok.get();
    rokSel_->set(rok);
  }

 private:
  const std::array<CrossbarWires, kNumPorts>* xbar_;
  const sim::Wire<bool>* connected_;
  const sim::Wire<int>* sel_;
  sim::Wire<bool>* rokSel_;
};

// --- VC-aware round-robin arbitration (numVCs > 1) -------------------------
//
// Allocates one idle downstream VC among the (input port, input VC)
// requesters bidding for this output.  A requester matches downstream VC
// `downVc` when bit `downVc` of its `want` mask is set — a one-bit mask for
// escape traffic requesting its dateline class, the adaptive set (or the
// class's qosVcMask() subset under RouterParams::qosClasses) for adaptive
// headers.  The scan is round-robin over the flattened (port, VC) slot
// space starting at `rrStart`; slots marked in `consumed` (already holding
// a connection, or granted earlier this same edge) are skipped so one input
// VC never acquires two downstream VCs.  Returns the chosen slot
// (inPort * kMaxVCs + inVc) or -1.
int vcArbitrate(
    const std::array<std::array<CrossbarWires, kMaxVCs>, kNumPorts>& xbar,
    int numVCs, Port ownPort, int downVc, int rrStart,
    const std::array<bool, kNumPorts * kMaxVCs>& consumed);

}  // namespace rasoc::router
