/// \file
/// Point-to-point link between two routers (or a router and a network
/// interface): forwards the data/framing/val wires downstream and the
/// ack/credit wire upstream, and counts transferred flits for utilization
/// statistics.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/module.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

/// Combinational point-to-point channel segment.
///
/// A Link is pass-through wiring plus bookkeeping: it copies the sender's
/// flit/val wires downstream and the receiver's ack wire upstream every
/// settle, and counts transferred flits at the clock edge (a transfer is
/// `val && ack` under handshake flow control, `val` under credit-based
/// flow control where `ack` carries returning credits instead).
class Link : public sim::Module {
 public:
  /// `src` is an output channel bundle (val driven by the sender, ack read
  /// by it); `dst` is an input channel bundle (val read by the receiver, ack
  /// driven by it).  With `numVCs` > 1 the link additionally forwards the
  /// flit's vc tag downstream and the per-VC vcFree levels and vcAck credit
  /// pulses upstream; the ack wire is unused (transfers are unconditional
  /// once scheduled — see router/channel.hpp).
  Link(std::string name, ChannelWires& src, ChannelWires& dst,
       FlowControl flowControl = FlowControl::Handshake, int numVCs = 1);

  ~Link() override = default;

  /// Total flits that crossed the link since the last reset.
  std::uint64_t flitsTransferred() const { return flitsTransferred_; }

  /// Cycles in which the link carried a flit / total cycles observed.
  double utilization(std::uint64_t cycles) const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(flitsTransferred_) /
                             static_cast<double>(cycles);
  }

  /// True when the sender is offering a flit that the receiver is not
  /// accepting this cycle.  Only meaningful under handshake flow control
  /// (credit-based links signal backpressure at the sender, not on the
  /// wire), so it reports false there.  Read after settle — e.g. from a
  /// watchdog diagnostics callback — to name wedged links.
  bool blocked() const {
    return flowControl_ == FlowControl::Handshake && numVCs_ == 1 &&
           src_->val.get() && !src_->ack.get();
  }

  /// Compiled-kernel lowering: a plain link is two masked word copies (flit
  /// + val downstream, ack upstream) and a counting edge op.  Subclasses
  /// with fault behaviour fall back to behavioural thunks (link.cpp guards
  /// on the dynamic type).
  bool describe(sim::Lowering& lw) override;

 protected:
  void evaluate() override;
  void clockEdge() override;

  /// Hook for derived links (fault injection): the data word actually
  /// presented downstream.  Must be a pure function of its inputs and the
  /// link's registered state (evaluate() runs to fixpoint).
  virtual std::uint32_t transformData(std::uint32_t data, bool bop,
                                      bool eop) {
    (void)bop;
    (void)eop;
    return data;
  }

  /// Called once per transferred flit, at the clock edge; `bop` marks
  /// header flits.
  virtual void onTransfer(bool bop) { (void)bop; }

  /// Wire bundles, exposed so fault-injecting subclasses can mask the
  /// val/ack handshake (stall and link-down windows).
  ChannelWires& srcWires() { return *src_; }
  ChannelWires& dstWires() { return *dst_; }
  const ChannelWires& srcWires() const { return *src_; }
  FlowControl flowControl() const { return flowControl_; }
  int numVCs() const { return numVCs_; }

 private:
  ChannelWires* src_;
  ChannelWires* dst_;
  FlowControl flowControl_;
  int numVCs_ = 1;
  std::uint64_t flitsTransferred_ = 0;
};

}  // namespace rasoc::router
