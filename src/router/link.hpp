// Point-to-point link between two routers (or a router and a network
// interface): forwards the data/framing/val wires downstream and the
// ack/credit wire upstream, and counts transferred flits for utilization
// statistics.
#pragma once

#include <cstdint>

#include "sim/module.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class Link : public sim::Module {
 public:
  // `src` is an output channel bundle (val driven by the sender, ack read
  // by it); `dst` is an input channel bundle (val read by the receiver, ack
  // driven by it).
  Link(std::string name, ChannelWires& src, ChannelWires& dst,
       FlowControl flowControl = FlowControl::Handshake);

  ~Link() override = default;

  std::uint64_t flitsTransferred() const { return flitsTransferred_; }

  // Cycles in which the link carried a flit / total cycles observed.
  double utilization(std::uint64_t cycles) const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(flitsTransferred_) /
                             static_cast<double>(cycles);
  }

 protected:
  void evaluate() override;
  void clockEdge() override;

  // Hook for derived links (fault injection): the data word actually
  // presented downstream.  Must be a pure function of its inputs and the
  // link's registered state (evaluate() runs to fixpoint).
  virtual std::uint32_t transformData(std::uint32_t data, bool bop,
                                      bool eop) {
    (void)bop;
    (void)eop;
    return data;
  }

  // Called once per transferred flit, at the clock edge; `bop` marks
  // header flits.
  virtual void onTransfer(bool bop) { (void)bop; }

 private:
  ChannelWires* src_;
  ChannelWires* dst_;
  FlowControl flowControl_;
  std::uint64_t flitsTransferred_ = 0;
};

}  // namespace rasoc::router
