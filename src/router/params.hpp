// Router ports and generic parameters.
//
// RASoC exposes three VHDL generics (paper Section 3):
//   n - data channel width in bits (typical: 8, 16, 32),
//   m - width of the Routing Information Bits (RIB) field in the header,
//   p - FIFO depth in flits.
// plus the set of ports actually instantiated ("Depending on the position
// of a RASoC instance on the NoC ... one or two of them need not be
// implemented, reducing the network area", Section 2).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string_view>

namespace rasoc::router {

// The five bidirectional ports (paper Figure 2).
enum class Port : int { Local = 0, North = 1, East = 2, South = 3, West = 4 };

inline constexpr int kNumPorts = 5;

inline constexpr std::array<Port, kNumPorts> kAllPorts = {
    Port::Local, Port::North, Port::East, Port::South, Port::West};

constexpr int index(Port p) { return static_cast<int>(p); }

constexpr std::string_view name(Port p) {
  switch (p) {
    case Port::Local: return "L";
    case Port::North: return "N";
    case Port::East: return "E";
    case Port::South: return "S";
    case Port::West: return "W";
  }
  return "?";
}

// The port a link to a neighbouring router arrives on: a flit leaving East
// enters the neighbour's West port, and so on.  Local has no opposite.
constexpr Port opposite(Port p) {
  switch (p) {
    case Port::North: return Port::South;
    case Port::East: return Port::West;
    case Port::South: return Port::North;
    case Port::West: return Port::East;
    case Port::Local: break;
  }
  throw std::invalid_argument("Local port has no opposite");
}

// Which FIFO microarchitecture the input buffers use (paper Section 3):
// flip-flop shift registers with an output multiplexer, or Altera EAB
// embedded memory.
enum class FifoImpl { FlipFlop, Eab };

constexpr std::string_view name(FifoImpl impl) {
  return impl == FifoImpl::FlipFlop ? "FF-based" : "EAB-based";
}

// Link-level flow control at the output channel (paper Section 2.2: the
// handshake OFC "can be easily replaced to implement the required logic
// (eg. an up/down counter in a credit-based strategy)").
enum class FlowControl { Handshake, CreditBased };

// Deterministic dimension-ordered routing: XY (the paper's choice) routes
// the X offset first; YX routes Y first.  Both are deadlock-free on a
// mesh.
enum class RoutingAlgorithm { XY, YX };

// Upper bound on virtual channels per physical channel.  Wire bundles
// (router/channel.hpp) size their per-VC arrays to this so a router's
// external interface is independent of the configured count; wires beyond
// RouterParams::numVCs are never driven.
inline constexpr int kMaxVCs = 4;

// --- QoS traffic classes (RouterParams::qosClasses) ------------------------
//
// Four service classes, ordered by priority (higher enum value = higher
// priority).  The class is tagged at the source NI, carried in the header
// flit's data bits [m, m+2) — above the RIB, which updateHeader() preserves
// at every hop — and mapped onto disjoint sets of adaptive virtual channels
// (qosVcMask).  Output channels then arbitrate between downstream VCs with
// strict priority plus a starvation guard (output_channel.hpp), which is
// what turns the VC separation into per-class latency isolation.
enum class TrafficClass : int {
  BestEffort = 0,  // unreserved background traffic
  Bulk = 1,        // high-volume transfers; may saturate its channel
  Latency = 2,     // latency-sensitive application traffic
  Control = 3,     // control-plane / protocol traffic; never starves
};

inline constexpr int kNumTrafficClasses = 4;

constexpr std::string_view name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::BestEffort: return "best_effort";
    case TrafficClass::Bulk: return "bulk";
    case TrafficClass::Latency: return "latency";
    case TrafficClass::Control: return "control";
  }
  return "?";
}

// Class -> adaptive-VC-set policy, shared by the NI (injection VC), the
// VC'd input channel (which downstream VCs a header may bid for) and tests.
// Escape VCs [0, escapeVCs) stay class-agnostic: they are the deadlock-
// freedom substrate every starved header can fall back onto (DESIGN.md
// §13).  With a = numVCs - escapeVCs adaptive VCs:
//   a >= 3: Control gets the top VC exclusively, Latency the next one,
//           Bulk and BestEffort share the remaining adaptive VCs.
//   a == 2: Control gets the top VC exclusively, the other three classes
//           share the remaining adaptive VC.
// QoS requires a >= 2 (an exclusive Control channel is the isolation
// claim); the network builder validates this.
constexpr unsigned qosVcMask(TrafficClass cls, int numVCs, int escapeVCs) {
  const unsigned adaptive = ((1u << numVCs) - 1u) & ~((1u << escapeVCs) - 1u);
  const unsigned top = 1u << (numVCs - 1);
  if (numVCs - escapeVCs >= 3) {
    const unsigned second = 1u << (numVCs - 2);
    switch (cls) {
      case TrafficClass::Control: return top;
      case TrafficClass::Latency: return second;
      default: return adaptive & ~(top | second);
    }
  }
  return cls == TrafficClass::Control ? top : adaptive & ~top;
}

// The adaptive VC the NI injects packets of class `cls` on: the lowest VC
// of the class's mask (deterministic, so per-VC send queues stay FIFO per
// class set).
constexpr int qosInjectVc(TrafficClass cls, int numVCs, int escapeVCs) {
  const unsigned mask = qosVcMask(cls, numVCs, escapeVCs);
  for (int v = 0; v < numVCs; ++v)
    if ((mask >> v) & 1u) return v;
  return escapeVCs;  // unreachable for valid configurations
}

// Where a router sits in its network, for the escape-channel routing used
// when numVCs > 1 (see input_channel.hpp, VcInputChannel).  A VC'd router
// needs to know its own coordinates and which axes wrap to classify each
// hop into a dateline class; a default-constructed geometry describes a
// standalone (non-wrapping) router at the origin.
struct VcGeometry {
  int x = 0;
  int y = 0;
  int width = 1;
  int height = 1;
  bool wrapX = false;
  bool wrapY = false;

  // Escape (deterministic) VCs required for deadlock freedom: one on a
  // mesh, two on wrapping topologies (dateline classes 0 and 1).
  int escapeVCs() const { return (wrapX || wrapY) ? 2 : 1; }
};

constexpr std::string_view name(RoutingAlgorithm algorithm) {
  return algorithm == RoutingAlgorithm::XY ? "XY" : "YX";
}

struct RouterParams {
  int n = 8;   // data bits per flit (excluding bop/eop framing)
  int m = 8;   // RIB width; m/2 bits per axis, signed-magnitude
  int p = 4;   // FIFO depth in flits

  FifoImpl fifoImpl = FifoImpl::Eab;
  FlowControl flowControl = FlowControl::Handshake;

  // Dimension order of the deterministic routing function.  RASoC uses XY
  // (paper Section 2); YX is the symmetric alternative the routing
  // ablation compares against.
  RoutingAlgorithm routing = RoutingAlgorithm::XY;

  // Virtual channels per physical channel.  1 (the paper's router) keeps
  // the original single-FIFO channels and wire protocol bit-identical;
  // >1 replicates the input FIFO state per VC and switches the channels to
  // the VC-aware implementations (input_channel.hpp / output_channel.hpp),
  // with VC 0..escapeVCs-1 reserved for deterministic escape routing.
  int numVCs = 1;

  // QoS traffic classes over the VC substrate (numVCs > 1 only).  When set,
  // headers carry a TrafficClass in data bits [m, m+2), adaptive headers
  // may only bid for the downstream VCs of their class (qosVcMask), and
  // output channels schedule downstream VCs with strict priority plus a
  // starvation guard instead of round-robin.  Off (the default) keeps VC
  // behavior exactly as before: the class bits stay zero and every adaptive
  // header may take any adaptive VC.
  bool qosClasses = false;

  // Bitmask of instantiated ports; bit index(Port).  Full routers use all
  // five; mesh corner/edge routers prune the dangling ones.
  unsigned portMask = 0x1f;

  bool hasPort(Port p) const { return (portMask >> index(p)) & 1u; }

  int portCount() const {
    int c = 0;
    for (Port p : kAllPorts) c += hasPort(p) ? 1 : 0;
    return c;
  }

  // Flit width on the wire: n data bits + bop + eop framing.
  int flitBits() const { return n + 2; }

  void validate() const {
    if (n < 2 || n > 32) throw std::invalid_argument("n must be in [2,32]");
    if (m < 2 || m > 16 || m % 2 != 0)
      throw std::invalid_argument("m must be even and in [2,16]");
    if (m > n)
      throw std::invalid_argument("RIB must fit in the header data bits");
    if (p < 1 || p > 64) throw std::invalid_argument("p must be in [1,64]");
    if (numVCs < 1 || numVCs > kMaxVCs)
      throw std::invalid_argument("numVCs must be in [1,kMaxVCs]");
    if (qosClasses) {
      if (numVCs < 2)
        throw std::invalid_argument("qosClasses requires numVCs > 1");
      if (m + 2 > n)
        throw std::invalid_argument(
            "qosClasses needs 2 header bits above the RIB (n >= m + 2)");
    }
    if ((portMask & 0x1fu) == 0 || portMask > 0x1fu)
      throw std::invalid_argument("portMask must select 1..5 of 5 ports");
  }
};

}  // namespace rasoc::router
