#include "router/ofc.hpp"

// Header-only behaviour; this translation unit anchors the library symbol.
