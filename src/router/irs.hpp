// IRS - Input Read Switch (paper Figure 5).
//
// "The IRS block receives four pairs of x_rd - x_gnt signals from each
// output channel module, and connects the granted read command to the rd
// input of the IB block interface."  Logically: rd = OR over outputs of
// (gnt & rd); at most one grant is active at a time, so the OR is a switch.
#pragma once

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

class Irs : public sim::Module {
 public:
  Irs(std::string name, const CrossbarWires& xbar, sim::Wire<bool>& rd)
      : Module(std::move(name)), xbar_(&xbar), rd_(&rd) {
    for (int o = 0; o < kNumPorts; ++o) {
      sensitive(xbar.gnt[o]);
      sensitive(xbar.rd[o]);
    }
  }

 protected:
  void evaluate() override {
    bool read = false;
    for (int o = 0; o < kNumPorts; ++o)
      read = read || (xbar_->gnt[o].get() && xbar_->rd[o].get());
    rd_->set(read);
  }

 private:
  const CrossbarWires* xbar_;
  sim::Wire<bool>* rd_;
};

}  // namespace rasoc::router
