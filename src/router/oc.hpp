// OC - Output Controller (paper Figure 6): round-robin arbitration and
// connection bookkeeping for one output channel.
//
// "The OC block runs a round-robin algorithm to select one of the requests
// emitted by the input channels.  After that, it sets the grant line to the
// selected request, commanding the ODS and ORS blocks to switch. ... The OC
// block also monitors eop and x_rd signals to determine when the last
// packet flit (the trailer) is delivered in order to cancel the established
// connection."
//
// Grants are registered: a request visible in cycle t is granted at the
// edge of cycle t and data flows from cycle t+1 (one-cycle arbitration
// latency, matching the synchronous grant register the paper's Table 3
// attributes to the OC: 56% of the router's flip-flops).
#pragma once

#include <array>

#include "sim/module.hpp"
#include "sim/wire.hpp"

#include "router/channel.hpp"
#include "router/params.hpp"

namespace rasoc::router {

enum class ArbiterKind { RoundRobin, FixedPriority };

class OutputController : public sim::Module {
 public:
  // `xbar` holds one entry per input channel, indexed by port; entries for
  // ports absent from the router are never requested and never granted.
  // `outEop` is the ODS-muxed eop of the selected input; `rokSel` is the
  // ORS-muxed rok; `xRd` is the read command issued by the OFC (the
  // acknowledge in handshake mode, the credit-gated send in credit mode).
  OutputController(std::string name, Port ownPort,
                   std::array<CrossbarWires, kNumPorts>& xbar,
                   const sim::Wire<bool>& outEop,
                   const sim::Wire<bool>& rokSel,
                   const sim::Wire<bool>& xRd,
                   sim::Wire<bool>& connected, sim::Wire<int>& sel,
                   ArbiterKind arbiter = ArbiterKind::RoundRobin);

  bool isConnected() const { return connected_; }
  Port selectedInput() const { return static_cast<Port>(sel_); }
  std::uint64_t grantsIssued() const { return grantsIssued_; }

  // The exact clockEdge() body with the wire values passed in: the
  // compiled kernel's fused edge op (router/output_channel.cpp) reads the
  // request/teardown nets from the state arena and steps the arbiter
  // through here.
  void edgeStep(const bool req[kNumPorts], bool outEop, bool rokSel,
                bool xRd);

 protected:
  void onReset() override;
  void evaluate() override;
  void clockEdge() override;

 private:
  Port ownPort_;
  std::array<CrossbarWires, kNumPorts>* xbar_;
  const sim::Wire<bool>* outEop_;
  const sim::Wire<bool>* rokSel_;
  const sim::Wire<bool>* xRd_;
  sim::Wire<bool>* connectedWire_;
  sim::Wire<int>* selWire_;
  ArbiterKind arbiter_;

  // Registered state.
  bool connected_ = false;
  int sel_ = 0;       // input port index currently granted
  int rrPtr_ = 0;     // last granted input (round-robin pointer)
  std::uint64_t grantsIssued_ = 0;
};

}  // namespace rasoc::router
