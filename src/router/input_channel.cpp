#include "router/input_channel.hpp"

namespace rasoc::router {

InputChannel::InputChannel(std::string name, const RouterParams& params,
                           Port ownPort, FlowControl flowControl,
                           ChannelWires& in, CrossbarWires& xbar)
    : Module(std::move(name)),
      ownPort_(ownPort),
      ifc_(this->name() + ".ifc", flowControl, in.val, wok_,
           flowControl == FlowControl::Handshake ? &in.ack : nullptr, wr_),
      ib_(InputBuffer::create(this->name() + ".ib", params, in.flit, wr_, rd_,
                              ibDout_, wok_, rok_)),
      ic_(this->name() + ".ic", params, ownPort, ibDout_, rok_, xbar),
      irs_(this->name() + ".irs", xbar, rd_),
      in_(&in) {
  addChild(ifc_);
  addChild(*ib_);
  addChild(ic_);
  addChild(irs_);
  if (flowControl == FlowControl::CreditBased) {
    // The channel ack wire becomes the credit-return line, pulsed when a
    // flit leaves the buffer.
    creditTap_ = std::make_unique<CreditReturnTap>(this->name() + ".credit",
                                                   rd_, rok_, in.ack);
    addChild(*creditTap_);
  }
}

void InputChannel::attachMetrics(const InputChannelMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
}

void InputChannel::clockEdge() {
  if (wr_.get() && !ib_->full()) ++flitsAccepted_;
  if (!metricsAttached_) return;
  if (metrics_.flitsAccepted && wr_.get() && !ib_->full())
    metrics_.flitsAccepted->inc();
  if (metrics_.fullCycles && ib_->full()) metrics_.fullCycles->inc();
  if (metrics_.stallCycles && rok_.get() && !rd_.get())
    metrics_.stallCycles->inc();
  if (metrics_.occupancy)
    metrics_.occupancy->observe(static_cast<double>(ib_->occupancy()));
}

}  // namespace rasoc::router
