#include "router/input_channel.hpp"

#include <algorithm>

#include "sim/compile.hpp"

namespace rasoc::router {

namespace {
// Settle cycles an adaptive header tries one route option before the
// patience rotation moves it to the next (the escape option is last and
// sticky, so every starved header eventually bids only its escape path).
constexpr int kVcPatienceWindow = 4;
constexpr int kVcPatienceCap = 1 << 20;

// Under qosClasses the window scales with the header's class: a high class
// owns (or nearly owns) its adaptive lane, so its bid is served quickly in
// the common case and rotating onto the escape layer — a class-blind FIFO
// that a Bulk flood keeps full — would be the dominant source of its tail
// latency.  Low classes keep the base window: their lanes saturate first
// and the escape fallback is how they drain.  Every window stays finite,
// so the Duato escape guarantee (DESIGN.md §12/§13) is unchanged.
constexpr int qosPatienceWindow(TrafficClass cls) {
  return kVcPatienceWindow << (2 * static_cast<int>(cls));
}
}  // namespace

InputChannel::InputChannel(std::string name, const RouterParams& params,
                           Port ownPort, FlowControl flowControl,
                           ChannelWires& in, CrossbarWires& xbar)
    : Module(std::move(name)),
      ownPort_(ownPort),
      ifc_(this->name() + ".ifc", flowControl, in.val, wok_,
           flowControl == FlowControl::Handshake ? &in.ack : nullptr, wr_),
      ib_(InputBuffer::create(this->name() + ".ib", params, in.flit, wr_, rd_,
                              ibDout_, wok_, rok_)),
      ic_(this->name() + ".ic", params, ownPort, ibDout_, rok_, xbar),
      irs_(this->name() + ".irs", xbar, rd_),
      in_(&in),
      xbar_(&xbar) {
  addChild(ifc_);
  addChild(*ib_);
  addChild(ic_);
  addChild(irs_);
  if (flowControl == FlowControl::CreditBased) {
    // The channel ack wire becomes the credit-return line, pulsed when a
    // flit leaves the buffer.
    creditTap_ = std::make_unique<CreditReturnTap>(this->name() + ".credit",
                                                   rd_, rok_, in.ack);
    addChild(*creditTap_);
  }
}

void InputChannel::attachMetrics(const InputChannelMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
  // The compiled edge lowering depends on whether metrics accounting runs.
  noteDescribeChanged();
}

void InputChannel::clockEdge() {
  if (wr_.get() && !ib_->full()) ++flitsAccepted_;
  if (!metricsAttached_) return;
  if (metrics_.flitsAccepted && wr_.get() && !ib_->full())
    metrics_.flitsAccepted->inc();
  if (metrics_.fullCycles && ib_->full()) metrics_.fullCycles->inc();
  if (metrics_.stallCycles && rok_.get() && !rd_.get())
    metrics_.stallCycles->inc();
  if (metrics_.occupancy)
    metrics_.occupancy->observe(static_cast<double>(ib_->occupancy()));
}

// --- compiled-kernel lowering ------------------------------------------
//
// The whole IFC + IB + IC + IRS (+ credit tap) subtree lowers to three
// combinational arena ops plus one edge op:
//
//   publish  - IB evaluate() (wok/rok/dout from registered FIFO state) fused
//              with the IC routing function (x_dout/x_rok/x_req).  Reads
//              nothing combinational, so it levelizes to the front.
//   flowCtl  - the IFC: wr (and, under handshake, in_ack) from in_val/wok.
//   readSw   - the IRS OR-reduce of gnt&rd (plus, under credit flow
//              control, the credit-return pulse on in_ack).  Kept separate
//              from flowCtl: fusing them would tie the in_ack driver to the
//              gnt/rd readers and manufacture a false combinational cycle
//              through the neighbouring router's ack chain.
//   edge     - flit-accept counting plus the FIFO commit, reading wr/rd/din
//              from the settled arena exactly as clockEdge() reads wires.

// Each op carries exactly the slices it touches: op contexts are the
// interpreter's dominant memory traffic, so smaller structs mean fewer
// cache lines streamed per simulated cycle.

namespace {

struct InChanPublishCtx {
  // FIFO view (registered state, read directly).
  const Flit* slots = nullptr;
  const int* count = nullptr;
  const int* rptr = nullptr;  // null: shift register, head = slots[count-1]
  int depth = 0;
  // Routing parameters and observability sink.
  int m = 0;
  std::uint32_t mask = 0;
  RoutingAlgorithm routing = RoutingAlgorithm::XY;
  InputController* ic = nullptr;
  sim::Slice wok, rok, xrok;
  std::uint32_t doutWord = 0, xbarWord = 0;
  sim::Slice req[kNumPorts];
};

struct InChanFlowHsCtx {
  sim::Slice inVal, wok, inAck, wr;
};

struct InChanFlowCrCtx {
  sim::Slice inVal, wr;
};

struct InChanRsCtx {
  sim::Slice gnt[kNumPorts], rdIn[kNumPorts];
  sim::Slice rd;
};

struct InChanRsCrCtx {
  InChanRsCtx rs;
  sim::Slice rok, inAck;
};

struct InChanCommitCtx {
  InputBuffer* ib = nullptr;
  sim::Slice wr, rd;
  std::uint32_t inWord = 0;
};

struct InChanEdgeCtx {
  InChanCommitCtx commit;
  const int* count = nullptr;
  int depth = 0;
  std::uint64_t* flitsAccepted = nullptr;
};

// IB publish + IC routing (ic.cpp InputController::evaluate over the
// arena, with the buffer head read straight from the FIFO store).
void inChanPublish(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<InChanPublishCtx*>(vctx);
  const int count = *c->count;
  const bool empty = count == 0;
  sim::opPutBit(w, c->wok, count < c->depth);
  sim::opPutBit(w, c->rok, !empty);
  Flit h;
  if (!empty) h = c->rptr ? c->slots[*c->rptr] : c->slots[count - 1];
  sim::opPutFlit(w, c->doutWord, h.data, h.bop, h.eop);

  const bool headerVisible = !empty && h.bop;
  Port target = Port::Local;
  std::uint32_t forwarded = h.data;
  if (headerVisible) {
    const Rib rib = decodeRib(h.data, c->m);
    target = route(c->routing, rib);
    forwarded = updateHeader(h.data, consumeHop(rib, target), c->m) & c->mask;
  }
  for (int o = 0; o < kNumPorts; ++o)
    sim::opPutBit(w, c->req[o], headerVisible && o == index(target));
  sim::opPutFlit(w, c->xbarWord, forwarded, h.bop, h.eop);
  sim::opPutBit(w, c->xrok, !empty);
  c->ic->noteDecision(headerVisible, target);
}

// IFC, handshake mode: accept when offered and space is available.
void inChanFlowHandshake(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<InChanFlowHsCtx*>(vctx);
  const bool accept = sim::opBit(w, c->inVal) && sim::opBit(w, c->wok);
  sim::opPutBit(w, c->inAck, accept);
  sim::opPutBit(w, c->wr, accept);
}

// IFC, credit mode: space is guaranteed by the sender's credit counter.
void inChanFlowCredit(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<InChanFlowCrCtx*>(vctx);
  sim::opPutBit(w, c->wr, sim::opBit(w, c->inVal));
}

inline bool irsRead(const std::uint64_t* w, const InChanRsCtx* c) {
  bool read = false;
  for (int o = 0; o < kNumPorts; ++o)
    read = read || (sim::opBit(w, c->gnt[o]) && sim::opBit(w, c->rdIn[o]));
  return read;
}

// IRS: connect the granted output's read command to the buffer.
void inChanReadSwitch(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<InChanRsCtx*>(vctx);
  sim::opPutBit(w, c->rd, irsRead(w, c));
}

// IRS + credit-return tap: the ack wire pulses when a flit leaves.
void inChanReadSwitchCredit(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<InChanRsCrCtx*>(vctx);
  const bool read = irsRead(w, &c->rs);
  sim::opPutBit(w, c->rs.rd, read);
  sim::opPutBit(w, c->inAck, read && sim::opBit(w, c->rok));
}

// FIFO commit only (the metrics path lets clockEdge() do the accounting).
void inChanCommit(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<InChanCommitCtx*>(vctx);
  c->ib->commitEdge(sim::opBit(w, c->wr), sim::opBit(w, c->rd),
                    sim::opFlitData(w, c->inWord),
                    sim::opFlitBop(w, c->inWord),
                    sim::opFlitEop(w, c->inWord));
}

// Accept counting + FIFO commit, in clockEdgeAll() order (channel before
// buffer child, so the occupancy test sees pre-commit state).
void inChanEdge(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<InChanEdgeCtx*>(vctx);
  if (sim::opBit(w, c->commit.wr) && *c->count < c->depth)
    ++*c->flitsAccepted;
  inChanCommit(w, &c->commit);
}

}  // namespace

bool InputChannel::describe(sim::Lowering& lw) {
  const InputBuffer::CompiledView view = ib_->compiledView();

  InChanPublishCtx pub;
  pub.slots = view.slots;
  pub.count = view.count;
  pub.rptr = view.rptr;
  pub.depth = ib_->depth();
  pub.m = ic_.ribBits();
  pub.mask = ic_.dataMaskValue();
  pub.routing = ic_.routingAlgorithm();
  pub.ic = &ic_;
  pub.wok = lw.bit(wok_);
  pub.rok = lw.bit(rok_);
  pub.xrok = lw.bit(xbar_->rok);
  pub.doutWord = lw.flitWord(ibDout_.data, ibDout_.bop, ibDout_.eop);
  pub.xbarWord = lw.flitWord(xbar_->flit.data, xbar_->flit.bop,
                             xbar_->flit.eop);
  for (int o = 0; o < kNumPorts; ++o) pub.req[o] = lw.bit(xbar_->req[o]);

  std::vector<const sim::WireBase*> pubWrites = {
      &wok_,          &rok_,          &ibDout_.data,      &ibDout_.bop,
      &ibDout_.eop,   &xbar_->rok,    &xbar_->flit.data,  &xbar_->flit.bop,
      &xbar_->flit.eop};
  for (int o = 0; o < kNumPorts; ++o) pubWrites.push_back(&xbar_->req[o]);
  lw.op(&inChanPublish, lw.ctx(pub), {}, std::move(pubWrites));

  InChanRsCtx rs;
  for (int o = 0; o < kNumPorts; ++o) {
    rs.gnt[o] = lw.bit(xbar_->gnt[o]);
    rs.rdIn[o] = lw.bit(xbar_->rd[o]);
  }
  rs.rd = lw.bit(rd_);

  std::vector<const sim::WireBase*> irsReads;
  for (int o = 0; o < kNumPorts; ++o) {
    irsReads.push_back(&xbar_->gnt[o]);
    irsReads.push_back(&xbar_->rd[o]);
  }
  if (creditTap_ == nullptr) {
    InChanFlowHsCtx flow;
    flow.inVal = lw.bit(in_->val);
    flow.wok = pub.wok;
    flow.inAck = lw.bit(in_->ack);
    flow.wr = lw.bit(wr_);
    lw.op(&inChanFlowHandshake, lw.ctx(flow), {&in_->val, &wok_},
          {&in_->ack, &wr_});
    lw.op(&inChanReadSwitch, lw.ctx(rs), std::move(irsReads), {&rd_});
  } else {
    InChanFlowCrCtx flow;
    flow.inVal = lw.bit(in_->val);
    flow.wr = lw.bit(wr_);
    lw.op(&inChanFlowCredit, lw.ctx(flow), {&in_->val}, {&wr_});
    InChanRsCrCtx rsc;
    rsc.rs = rs;
    rsc.rok = pub.rok;
    rsc.inAck = lw.bit(in_->ack);
    irsReads.push_back(&rok_);
    lw.op(&inChanReadSwitchCredit, lw.ctx(rsc), std::move(irsReads),
          {&rd_, &in_->ack});
  }

  InChanCommitCtx commit;
  commit.ib = ib_.get();
  commit.wr = lw.bit(wr_);
  commit.rd = rs.rd;
  commit.inWord = lw.flitWord(in_->flit.data, in_->flit.bop, in_->flit.eop);

  if (metricsAttached_) {
    lw.edgeCall(*this);  // accept counter + metrics via clockEdge()
    lw.edgeOp(&inChanCommit, lw.ctx(commit));
  } else {
    InChanEdgeCtx edge;
    edge.commit = commit;
    edge.count = view.count;
    edge.depth = ib_->depth();
    edge.flitsAccepted = &flitsAccepted_;
    lw.edgeOp(&inChanEdge, lw.ctx(edge));
  }
  return true;
}

// --- VcInputChannel --------------------------------------------------------

VcInputChannel::VcInputChannel(std::string name, const RouterParams& params,
                               Port ownPort, VcGeometry geometry,
                               ChannelWires& in,
                               std::array<CrossbarWires, kMaxVCs>& xbar)
    : Module(std::move(name)),
      params_(params),
      ownPort_(ownPort),
      flowControl_(params.flowControl),
      geometry_(geometry),
      numVCs_(params.numVCs),
      escapeVCs_(std::min(geometry.escapeVCs(), params.numVCs)),
      in_(&in),
      xbar_(&xbar) {
  // evaluate() publishes from the registered FIFOs and reacts to the
  // grant/read nets the output channels drive from their (registered)
  // connection tables.
  declareSequential();
  for (int v = 0; v < numVCs_; ++v) {
    CrossbarWires& xb = (*xbar_)[static_cast<std::size_t>(v)];
    for (int o = 0; o < kNumPorts; ++o) {
      sensitive(xb.gnt[static_cast<std::size_t>(o)]);
      sensitive(xb.rd[static_cast<std::size_t>(o)]);
    }
  }
}

void VcInputChannel::attachMetrics(const VcInputChannelMetrics& metrics) {
  metrics_ = metrics;
  metricsAttached_ = true;
}

bool VcInputChannel::popFired(int v) const {
  const CrossbarWires& xb = (*xbar_)[static_cast<std::size_t>(v)];
  for (int o = 0; o < kNumPorts; ++o) {
    if (xb.gnt[static_cast<std::size_t>(o)].get() &&
        xb.rd[static_cast<std::size_t>(o)].get())
      return true;
  }
  return false;
}

bool VcInputChannel::dequeueFired(int v) const {
  return !fifo_[static_cast<std::size_t>(v)].empty() && popFired(v);
}

void VcInputChannel::onReset() {
  for (auto& q : fifo_) q.clear();
  patience_.fill(0);
  occupancySum_.fill(0);
  flitsAccepted_ = 0;
  misroute_ = false;
  overflow_ = false;
}

void VcInputChannel::evaluate() {
  for (int v = 0; v < numVCs_; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    CrossbarWires& xb = (*xbar_)[vi];
    const auto& q = fifo_[vi];
    // Upstream flow control: on/off advertises registered buffer space;
    // credit mode advertises link-up (the sender counts credits) and
    // pulses the per-VC credit return as the flit leaves the buffer.
    const bool space = static_cast<int>(q.size()) < params_.p;
    in_->vcFree[vi].set(creditMode() ? true : space);
    const bool empty = q.empty();
    xb.rok.set(!empty);
    if (creditMode()) in_->vcAck[vi].set(!empty && popFired(v));

    Flit head;
    if (!empty) head = q.front();
    const bool headerVisible = !empty && head.bop;
    Port target = Port::Local;
    unsigned want = 0;
    std::uint32_t forwarded = head.data;
    if (headerVisible) {
      // A granted header forwards the RIB consumed for the hop actually
      // connected — the patience rotation may have moved the bid between
      // allocation and readout.
      int grantedPort = -1;
      for (int o = 0; o < kNumPorts; ++o) {
        if (xb.gnt[static_cast<std::size_t>(o)].get()) grantedPort = o;
      }
      const Rib rib = decodeRib(head.data, params_.m);
      if (grantedPort >= 0) {
        target = static_cast<Port>(grantedPort);
      } else {
        // Adaptive bids request the packet's whole adaptive VC set; under
        // QoS the header's class tag narrows it to the class's channels.
        int window = kVcPatienceWindow;
        unsigned adaptiveMask =
            ((1u << numVCs_) - 1u) & ~((1u << escapeVCs_) - 1u);
        if (params_.qosClasses) {
          const TrafficClass cls =
              decodeTrafficClass(head.data, params_.m);
          adaptiveMask = qosVcMask(cls, numVCs_, escapeVCs_);
          window = qosPatienceWindow(cls);
        }
        std::array<VcRouteOption, kNumPorts> options;
        const int count = vcRouteOptions(geometry_, rib, v >= escapeVCs_,
                                         params_.routing, adaptiveMask,
                                         options);
        const int idx = std::min(patience_[vi] / window, count - 1);
        target = options[static_cast<std::size_t>(idx)].port;
        want = options[static_cast<std::size_t>(idx)].want;
      }
      forwarded = updateHeader(head.data, consumeHop(rib, target), params_.m) &
                  dataMask(params_.n);
      if (target == ownPort_) misroute_ = true;
    }
    for (int o = 0; o < kNumPorts; ++o)
      xb.req[static_cast<std::size_t>(o)].set(headerVisible &&
                                              o == index(target));
    xb.want.set(static_cast<int>(want));
    xb.flit.data.set(forwarded);
    xb.flit.bop.set(head.bop);
    xb.flit.eop.set(head.eop);
  }
}

void VcInputChannel::clockEdge() {
  // Accept: the sender only schedules a VC with advertised space (on/off)
  // or an available credit, so a full target FIFO means broken flow
  // control — recorded sticky, never overwritten silently.
  if (in_->val.get()) {
    const int v = in_->vc.get();
    if (v < 0 || v >= numVCs_ ||
        static_cast<int>(fifo_[static_cast<std::size_t>(v)].size()) >=
            params_.p) {
      overflow_ = true;
    } else {
      Flit f;
      f.data = in_->flit.data.get();
      f.bop = in_->flit.bop.get();
      f.eop = in_->flit.eop.get();
      f.vc = v;
      fifo_[static_cast<std::size_t>(v)].push_back(f);
      ++flitsAccepted_;
      if (metricsAttached_ && metrics_.flitsAccepted)
        metrics_.flitsAccepted->inc();
    }
  }

  bool anyFull = false;
  bool anyStall = false;
  for (int v = 0; v < numVCs_; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    auto& q = fifo_[vi];
    // A pop strobe can only refer to a flit that was at the head pre-edge,
    // so popping after the accept push is safe: the push appended to the
    // back, and an empty pre-edge FIFO never had rd granted.
    if (dequeueFired(v)) q.pop_front();

    bool granted = false;
    for (int o = 0; o < kNumPorts; ++o)
      granted = granted ||
                (*xbar_)[vi].gnt[static_cast<std::size_t>(o)].get();
    if (!q.empty() && q.front().bop && !granted) {
      if (patience_[vi] < kVcPatienceCap) ++patience_[vi];
    } else {
      patience_[vi] = 0;
    }

    occupancySum_[vi] += q.size();
    anyFull = anyFull || static_cast<int>(q.size()) >= params_.p;
    anyStall = anyStall || (!q.empty() && !popFired(v));
    if (metricsAttached_ && metrics_.occupancy[vi])
      metrics_.occupancy[vi]->observe(static_cast<double>(q.size()));
  }
  if (metricsAttached_) {
    if (metrics_.fullCycles && anyFull) metrics_.fullCycles->inc();
    if (metrics_.stallCycles && anyStall) metrics_.stallCycles->inc();
  }
}

bool VcInputChannel::describe(sim::Lowering& lw) {
  std::vector<const sim::WireBase*> reads;
  std::vector<const sim::WireBase*> writes;
  for (int v = 0; v < numVCs_; ++v) {
    CrossbarWires& xb = (*xbar_)[static_cast<std::size_t>(v)];
    for (int o = 0; o < kNumPorts; ++o) {
      reads.push_back(&xb.gnt[static_cast<std::size_t>(o)]);
      reads.push_back(&xb.rd[static_cast<std::size_t>(o)]);
    }
    writes.push_back(&in_->vcFree[static_cast<std::size_t>(v)]);
    if (creditMode()) writes.push_back(&in_->vcAck[static_cast<std::size_t>(v)]);
    writes.push_back(&xb.rok);
    writes.push_back(&xb.want);
    writes.push_back(&xb.flit.data);
    writes.push_back(&xb.flit.bop);
    writes.push_back(&xb.flit.eop);
    for (int o = 0; o < kNumPorts; ++o)
      writes.push_back(&xb.req[static_cast<std::size_t>(o)]);
  }
  lw.thunkDeclared(*this, std::move(reads), std::move(writes));
  lw.edgeCall(*this);
  return true;
}

}  // namespace rasoc::router
