#include "router/ic.hpp"

namespace rasoc::router {

int escapeClass(const VcGeometry& g, Port out, Rib rib) {
  switch (out) {
    case Port::East: return (g.wrapX && g.x + rib.dx >= g.width) ? 1 : 0;
    case Port::West: return (g.wrapX && g.x + rib.dx < 0) ? 1 : 0;
    case Port::North: return (g.wrapY && g.y + rib.dy >= g.height) ? 1 : 0;
    case Port::South: return (g.wrapY && g.y + rib.dy < 0) ? 1 : 0;
    case Port::Local: break;
  }
  return 0;
}

int vcRouteOptions(const VcGeometry& g, Rib rib, bool adaptive,
                   RoutingAlgorithm routing, unsigned adaptiveMask,
                   std::array<VcRouteOption, kNumPorts>& options) {
  int count = 0;
  if (adaptive) {
    if (rib == Rib{0, 0}) {
      options[count++] = {Port::Local, adaptiveMask};
    } else if (rib.dx < 0) {
      // West-first restriction: a westward offset is consumed before any
      // adaptive choice opens up.
      options[count++] = {Port::West, adaptiveMask};
    } else {
      if (rib.dx > 0) options[count++] = {Port::East, adaptiveMask};
      if (rib.dy > 0) options[count++] = {Port::North, adaptiveMask};
      if (rib.dy < 0) options[count++] = {Port::South, adaptiveMask};
    }
  }
  const Port dor = route(routing, rib);
  options[count++] = {dor, 1u << escapeClass(g, dor, rib)};
  return count;
}

InputController::InputController(std::string name, const RouterParams& params,
                                 Port ownPort, const FlitWires& ibDout,
                                 const sim::Wire<bool>& rok,
                                 CrossbarWires& xbar)
    : Module(std::move(name)),
      m_(params.m),
      mask_(dataMask(params.n)),
      routing_(params.routing),
      ownPort_(ownPort),
      ibDout_(&ibDout),
      rok_(&rok),
      xbar_(&xbar) {
  sensitive(ibDout.data);
  sensitive(ibDout.bop);
  sensitive(ibDout.eop);
  sensitive(rok);
}

void InputController::onReset() {
  requesting_ = false;
  target_ = Port::Local;
  misroute_ = false;
}

void InputController::evaluate() {
  const std::uint32_t data = ibDout_->data.get();
  const bool bop = ibDout_->bop.get();
  const bool eop = ibDout_->eop.get();
  const bool headerVisible = rok_->get() && bop;

  Port target = Port::Local;
  std::uint32_t forwarded = data;
  if (headerVisible) {
    const Rib rib = decodeRib(data, m_);
    target = route(routing_, rib);
    // Update the header for the hop being taken before it leaves.
    forwarded = updateHeader(data, consumeHop(rib, target), m_) & mask_;
    if (target == ownPort_) misroute_ = true;
  }

  for (Port o : kAllPorts)
    xbar_->req[index(o)].set(headerVisible && o == target);

  xbar_->flit.data.set(forwarded);
  xbar_->flit.bop.set(bop);
  xbar_->flit.eop.set(eop);
  xbar_->rok.set(rok_->get());

  requesting_ = headerVisible;
  target_ = target;
}

}  // namespace rasoc::router
