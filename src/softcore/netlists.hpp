// Per-entity structural netlists.
//
// Each function returns the primitive netlist of one bottom-level entity as
// a function of the router generics, mirroring what Quartus elaborates from
// the VHDL architecture bodies.  The structures are those described in the
// paper's Sections 2-3 (AND-gate flow controller, shift-register or EAB
// FIFOs, LUT-tree multiplexers per Figure 8, round-robin output
// controller).  Where the paper does not pin the microarchitecture down
// (FSM encodings, megafunction glue), the free constants are calibrated so
// the 32-bit/4-flit/EAB breakdown reproduces Table 3; the calibration is
// documented inline and validated by tests/tech/table_relations_test.
#pragma once

#include "hw/netlist.hpp"

#include "router/params.hpp"

namespace rasoc::softcore {

// IFC: "just implements an AND gate".
hw::Netlist ifcNetlist(const router::RouterParams& params);

// IB: p-deep (n+2)-wide FIFO; microarchitecture per params.fifoImpl.
hw::Netlist ibNetlist(const router::RouterParams& params);

// IC: RIB decode, XY decision, request decode, header RIB update.
hw::Netlist icNetlist(const router::RouterParams& params);

// IRS: OR of four grant-qualified read commands.
hw::Netlist irsNetlist(const router::RouterParams& params);

// OC: round-robin arbiter + connection FSM.
hw::Netlist ocNetlist(const router::RouterParams& params);

// The paper's announced future work ("we are working to develop cheaper
// versions for the router components in order to reduce RASoC costs",
// and Table 3's observation that only the controllers can be optimized):
// a binary-encoded arbiter FSM with shared rotating-priority logic instead
// of the one-hot replicated decode.  Same behaviour, fewer LUTs.
hw::Netlist ocNetlistOptimized(const router::RouterParams& params);

// Full-router netlist cost with the optimized controllers swapped in
// (IC unchanged - it is already combinational minimum logic).
hw::Netlist routerNetlistOptimizedControllers(
    const router::RouterParams& params);

// ODS: 4:1 (n+2)-bit output data switch.
hw::Netlist odsNetlist(const router::RouterParams& params);

// ORS: 4:1 1-bit rok switch.
hw::Netlist orsNetlist(const router::RouterParams& params);

// OFC: wires in handshake mode; up/down credit counter in credit mode.
hw::Netlist ofcNetlist(const router::RouterParams& params);

// VCI: input-side virtual-channel overlay (numVCs > 1 only; empty
// otherwise).  Write-side VC-id demux into the per-VC buffers, per-VC
// patience counter for the adaptive bid rotation, escape-class compare,
// and the read-side VC merge mux that puts flit + VC id on the crossbar.
hw::Netlist vcInputOverlayNetlist(const router::RouterParams& params);

// VCA: output-side virtual-channel allocator (numVCs > 1 only; empty
// otherwise).  Per-VC credit counters, the input-VC -> link-VC allocation
// table, the VC-aware round-robin scheduler over (ports-1) x numVCs
// requests, and the VC-id field driver on the outgoing link.
hw::Netlist vcOutputOverlayNetlist(const router::RouterParams& params);

// Number of bits needed to count 0..values-1.
int bitsFor(int values);

}  // namespace rasoc::softcore
