// Elaboration: resolve the soft-core's generics into the entity hierarchy
// of the paper's Figure 7, ready for technology mapping.
#pragma once

#include "softcore/entity.hpp"

#include "router/params.hpp"

namespace rasoc::softcore {

// One input buffer alone (the paper's Table 1 experiment).
Entity elaborateFifo(const router::RouterParams& params);

// input_channel (n,m,p): IFC + IB + IC + IRS.
Entity elaborateInputChannel(const router::RouterParams& params);

// output_channel (n): OC + ODS + ORS + OFC.
Entity elaborateOutputChannel(const router::RouterParams& params);

// rasoc (n,m,p): one input and one output channel per instantiated port
// (Tables 2-3 use the full 5-port configuration).
Entity elaborateRouter(const router::RouterParams& params);

}  // namespace rasoc::softcore
