// Elaborated entity tree - the C++ counterpart of the VHDL soft-core's
// entity hierarchy (paper Figure 7):
//
//   rasoc (n,m,p)
//     input_channel (n,m,p) x5      output_channel (n) x5
//       IFC  IB (n,p)  IC (n,m)  IRS    OC  ODS (n)  ORS  OFC
//
// "The lower-level entities receive from the higher-level ones the
// parameters they need to generate their architectures with the required
// dimensions."  Elaboration resolves the generics into per-entity primitive
// netlists, which the technology mapper turns into LC/Reg/Mem costs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hw/netlist.hpp"
#include "tech/cost.hpp"
#include "tech/mapper.hpp"

namespace rasoc::softcore {

struct Entity {
  std::string name;      // VHDL entity name, e.g. "input_flow_controller"
  std::string acronym;   // block acronym, e.g. "IFC"
  std::string generics;  // resolved generics, e.g. "(n=32, p=4)"
  hw::Netlist local;     // primitives owned by this entity itself
  std::vector<Entity> children;

  // Cost of this entity including all children.
  tech::Cost totalCost(const tech::Flex10keMapper& mapper) const;

  // Leaf costs grouped by acronym (the paper's Table 3 rows); the cost of
  // an acronym is summed over every instance in the tree.
  std::map<std::string, tech::Cost> costByAcronym(
      const tech::Flex10keMapper& mapper) const;

  // Number of entities in the tree (this one included).
  int entityCount() const;

  // Renders the hierarchy as an indented tree with per-entity costs -
  // regenerates the paper's Figure 7 with resolved generics.
  std::string renderTree(const tech::Flex10keMapper& mapper) const;

  // Graphviz dot rendering of the same hierarchy (one node per entity
  // instance, labelled with generics and mapped costs).
  std::string renderDot(const tech::Flex10keMapper& mapper) const;
};

}  // namespace rasoc::softcore
