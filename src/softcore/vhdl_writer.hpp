// VHDL emitter - regenerates the artifact the paper actually shipped: "a
// soft-core for RASoC was implemented in VHDL using the hierarchy
// represented in Figure 7.  The top-level entity, named rasoc, has three
// generic parameters, n, m and p".
//
// The emitter produces one file per entity (plus a shared package) with
// the same generic propagation as the paper's model: rasoc(n,m,p) ->
// input_channel(n,m,p)/output_channel(n) -> bottom-level blocks.  Port
// pruning for mesh-edge instances is expressed with if-generate statements
// driven by a `ports` generic, and the FIFO microarchitecture is selected
// by an `eab_fifo` boolean generic (shift-register vs inferred-RAM
// architecture, Figures 8-9).
//
// The VHDL is written to be synthesizable in the VHDL-93 subset the era's
// Quartus accepted; this repository validates it structurally (balanced
// design units, port/generic consistency, instantiation counts) since no
// VHDL frontend ships with the reproduction environment.
#pragma once

#include <map>
#include <string>

#include "router/params.hpp"

namespace rasoc::softcore {

class VhdlWriter {
 public:
  explicit VhdlWriter(router::RouterParams params);

  // Shared constants/types package (rasoc_pkg.vhd).
  std::string packageVhdl() const;

  // Bottom-level entities.
  std::string ifcVhdl() const;
  std::string ibVhdl() const;
  std::string icVhdl() const;
  std::string irsVhdl() const;
  std::string ocVhdl() const;
  std::string odsVhdl() const;
  std::string orsVhdl() const;
  std::string ofcVhdl() const;

  // Composites and top level.
  std::string inputChannelVhdl() const;
  std::string outputChannelVhdl() const;
  std::string rasocVhdl() const;

  // A concrete instantiation of the top with this writer's parameter
  // values (the "tuning of the NoC parameters" step).
  std::string instanceVhdl(const std::string& instanceName) const;

  // A full mesh NoC built from rasoc instances (the paper's "building of
  // networks-on-chip" use), with generate-loop wiring and port pruning.
  std::string nocMeshVhdl() const;

  // A concrete cols x rows NoC instance with this writer's parameters.
  std::string nocInstanceVhdl(const std::string& instanceName, int cols,
                              int rows) const;

  // Every file of the soft-core: filename -> content, in compile order
  // when iterated by the returned map's insertion list.
  std::map<std::string, std::string> allFiles() const;

  // Concatenation of every design unit (for single-file inspection).
  std::string fullListing() const;

  const router::RouterParams& params() const { return params_; }

 private:
  router::RouterParams params_;
};

}  // namespace rasoc::softcore
