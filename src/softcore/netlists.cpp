#include "softcore/netlists.hpp"

namespace rasoc::softcore {

using router::FifoImpl;
using router::FlowControl;
using router::RouterParams;

int bitsFor(int values) {
  int bits = 1;
  while ((1 << bits) < values) ++bits;
  return bits;
}

namespace {

// Adds an up/down or wrapping counter: `bits` flip-flops packed with their
// next-state LUTs (one 4-LUT per bit for the increment/borrow chain).
void addCounter(hw::Netlist& nl, int bits) {
  nl.addGate(4, bits);
  nl.addRegister(bits, /*packed=*/true);
}

// Calibration constants.  The paper fixes the datapath structure (Figures
// 8-9) but not the control microarchitecture Quartus produced; these
// constants absorb that gap and are tuned once against Table 3
// (32-bit/4-flit/EAB breakdown: ODS 49%, OC 28%, IB 12%, IC 8% of LCs;
// IB 44% / OC 56% of flip-flops).

// lpm_fifo-style control around the EAB array: flow-through read bypass,
// write/read guard logic and address/enable gating.
constexpr int kEabControlLuts = 14;

// The unoptimized round-robin FSM the paper itself flags as the expensive
// part ("the only blocks that could be optimized in order to reduce the
// router costs are the controllers"): one-hot grant state with replicated
// rotating-priority decode.
constexpr int kOcFsmDecodeLuts = 38;

}  // namespace

hw::Netlist ifcNetlist(const RouterParams&) {
  hw::Netlist nl;
  nl.addGate(2);  // in_ack = in_val AND wok
  return nl;
}

hw::Netlist ibNetlist(const RouterParams& params) {
  hw::Netlist nl;
  const int width = params.flitBits();
  const int p = params.p;
  const int occBits = bitsFor(p + 1);

  if (params.fifoImpl == FifoImpl::FlipFlop) {
    // Figure 9: p stages of (n+2) flip-flops fed Q->D through the cell's
    // cascade path (LUT unused -> unpacked cells), an output multiplexer
    // selecting the head, and a head counter.
    nl.addRegister(width, /*packed=*/false, p);
    if (p >= 2) nl.addMux(p, width);
    addCounter(nl, occBits);       // occupancy / head-select counter
    nl.addGate(3, 2);              // shift / pop enable decode
    nl.addGate(occBits, 2);        // wok (not full), rok (not empty)
  } else {
    // EAB ring buffer: data bits in embedded memory, pointer counters and
    // occupancy in logic.  "Registers are used only for the pointers that
    // select the positions to be read or write, and their costs are
    // independent of the FIFO width."
    nl.addMemory(p, width);
    const int ptrBits = bitsFor(p);
    addCounter(nl, ptrBits);       // write pointer
    addCounter(nl, ptrBits);       // read pointer
    addCounter(nl, occBits);       // occupancy counter
    nl.addGate(occBits, 2);        // wok, rok
    nl.addGate(4, kEabControlLuts);
  }
  return nl;
}

hw::Netlist icNetlist(const RouterParams& params) {
  hw::Netlist nl;
  const int axisBits = params.m / 2;
  // Zero test per axis (magnitude bits only), with the header-visible
  // qualification (rok & bop) folded into the same LUT.
  nl.addGate(axisBits, 2);
  // Magnitude decrementer per axis: borrow chain, one LUT per magnitude
  // bit above the LSB (the LSB inversion packs into the update mux LUT).
  nl.addGate(3, 2 * (axisBits - 2));
  // Request decode: one line per requestable output (own port excluded),
  // each a function of the two zero flags and the two sign bits.
  nl.addGate(4, router::kNumPorts - 1);
  // Header update: substitute the decremented RIB while bop is at the head.
  nl.addMux(2, params.m);
  return nl;
}

hw::Netlist irsNetlist(const RouterParams&) {
  hw::Netlist nl;
  // rd = OR over the four other outputs of (x_gnt AND x_rd): an 8-input
  // function.
  nl.addGate(8);
  return nl;
}

hw::Netlist ocNetlist(const RouterParams&) {
  hw::Netlist nl;
  // Registered state: one-hot grant (4), selected-input encoding (2),
  // connection flag (1), round-robin pointer (2) - 9 flip-flops, matching
  // the 56% register share Table 3 attributes to the five OCs.
  nl.addRegister(4, /*packed=*/true);  // one-hot grant lines
  nl.addRegister(2, /*packed=*/true);  // sel encoding for ODS/ORS
  nl.addRegister(1, /*packed=*/true);  // connected
  nl.addRegister(2, /*packed=*/true);  // round-robin pointer
  // Next-state logic: per-grant rotating-priority decode (req[4], ptr[2],
  // connected, teardown inputs), pointer update, teardown monitor.
  nl.addGate(10, 4);  // grant next-state
  nl.addGate(6, 2);   // pointer next-state
  nl.addGate(7, 1);   // connected next-state
  nl.addGate(3, 1);   // trailer-delivered monitor (eop & rok & rd)
  nl.addGate(4, kOcFsmDecodeLuts);
  return nl;
}

hw::Netlist ocNetlistOptimized(const RouterParams&) {
  hw::Netlist nl;
  // Binary state: sel (2) + connected (1) + pointer (2); grants decoded
  // combinationally from sel/connected inside the switches' select logic.
  nl.addRegister(2, /*packed=*/true);  // sel
  nl.addRegister(1, /*packed=*/true);  // connected
  nl.addRegister(2, /*packed=*/true);  // round-robin pointer
  // Shared rotating-priority encoder: next-sel bits over (req4, ptr2),
  // connected next-state, pointer update, teardown monitor.
  nl.addGate(6, 2);   // next sel
  nl.addGate(7, 1);   // connected next-state
  nl.addGate(6, 2);   // pointer next-state
  nl.addGate(3, 1);   // trailer monitor
  nl.addGate(4, 4);   // grant decode (one line per other input)
  return nl;
}

hw::Netlist routerNetlistOptimizedControllers(const RouterParams& params) {
  hw::Netlist nl;
  const int ports = params.portCount();
  nl.merge(ifcNetlist(params), ports);
  nl.merge(ibNetlist(params), ports);
  nl.merge(icNetlist(params), ports);
  nl.merge(irsNetlist(params), ports);
  nl.merge(ocNetlistOptimized(params), ports);
  nl.merge(odsNetlist(params), ports);
  nl.merge(orsNetlist(params), ports);
  nl.merge(ofcNetlist(params), ports);
  return nl;
}

hw::Netlist odsNetlist(const RouterParams& params) {
  hw::Netlist nl;
  // 4:1 mux over the other inputs' x_dout, (n+2) bits wide (Figure 8 LUT
  // trees: 3 LCs per bit).
  nl.addMux(router::kNumPorts - 1, params.flitBits());
  return nl;
}

hw::Netlist orsNetlist(const RouterParams&) {
  hw::Netlist nl;
  nl.addMux(router::kNumPorts - 1, 1);
  return nl;
}

hw::Netlist ofcNetlist(const RouterParams& params) {
  hw::Netlist nl;
  if (params.flowControl == FlowControl::CreditBased) {
    const int creditBits = bitsFor(params.p + 1);
    addCounter(nl, creditBits);       // up/down credit counter
    nl.addGate(creditBits);           // credits > 0
    nl.addGate(3);                    // send = rok & have-credit
  }
  // Handshake mode "just implements wires": zero logic.
  return nl;
}

hw::Netlist vcInputOverlayNetlist(const RouterParams& params) {
  hw::Netlist nl;
  const int vcs = params.numVCs;
  if (vcs <= 1) return nl;
  const int vcBits = bitsFor(vcs);
  // Write-side demux: decode the link's VC id into one write enable per
  // buffer (vc match AND in_val).
  nl.addGate(vcBits + 1, vcs);
  // Per-VC adaptive-bid rotation: patience counter, the starvation compare
  // that walks the bid onto the escape option, and the escape-class
  // (wrap-axis) compare of the dateline classification.
  {
    hw::Netlist perVc;
    addCounter(perVc, 3);
    perVc.addGate(3);
    perVc.addGate(4);
    nl.merge(perVc, vcs);
  }
  // Read-side merge: VC select mux over the per-VC buffer heads, flit plus
  // the VC id driven onto the crossbar.
  nl.addMux(vcs, params.flitBits() + vcBits);
  // Per-VC rok/free levels toward the output stage and upstream link.
  nl.addGate(2, 2 * vcs);
  return nl;
}

hw::Netlist vcOutputOverlayNetlist(const RouterParams& params) {
  hw::Netlist nl;
  const int vcs = params.numVCs;
  if (vcs <= 1) return nl;
  const int vcBits = bitsFor(vcs);
  const int creditBits = bitsFor(params.p + 1);
  // Per-VC downstream credit counter with its availability compare (the
  // handshake build keeps them too: vcFree is a per-VC level, not the
  // single shared wok wire of the 1-VC router).
  for (int v = 0; v < vcs; ++v) {
    addCounter(nl, creditBits);
    nl.addGate(creditBits);
  }
  // Allocation table: for each link VC, the granted (input port, input VC)
  // and a busy bit, written by the allocator and torn down on eop.
  nl.addRegister(2 + vcBits + 1, /*packed=*/true, vcs);
  // VC-aware round-robin scheduler: pointer over (ports-1) x vcs requests
  // plus one grant-decode cone per request line.
  const int reqs = (router::kNumPorts - 1) * vcs;
  addCounter(nl, bitsFor(reqs));
  nl.addGate(6, reqs);
  // Link VC-id field: select the scheduled entry's VC onto the output.
  nl.addMux(vcs, vcBits);
  return nl;
}

}  // namespace rasoc::softcore
