#include "softcore/entity.hpp"

#include <sstream>

namespace rasoc::softcore {

tech::Cost Entity::totalCost(const tech::Flex10keMapper& mapper) const {
  tech::Cost cost = mapper.map(local);
  for (const Entity& child : children) cost += child.totalCost(mapper);
  return cost;
}

std::map<std::string, tech::Cost> Entity::costByAcronym(
    const tech::Flex10keMapper& mapper) const {
  std::map<std::string, tech::Cost> grouped;
  // Leaf entities always appear, even when their netlist is empty (the
  // handshake OFC "just implements wires" yet still has a Table 3 row).
  if (!local.empty() || children.empty()) grouped[acronym] += mapper.map(local);
  for (const Entity& child : children) {
    for (const auto& [key, cost] : child.costByAcronym(mapper))
      grouped[key] += cost;
  }
  return grouped;
}

int Entity::entityCount() const {
  int count = 1;
  for (const Entity& child : children) count += child.entityCount();
  return count;
}

namespace {

void renderNode(const Entity& entity, const tech::Flex10keMapper& mapper,
                int depth, std::ostringstream& out) {
  const tech::Cost cost = entity.totalCost(mapper);
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << entity.name
      << " " << entity.generics;
  if (!entity.acronym.empty() && entity.children.empty())
    out << "  [" << entity.acronym << "]";
  out << "  LC=" << cost.lc << " Reg=" << cost.reg << " Mem=" << cost.mem
      << '\n';
  for (const Entity& child : entity.children)
    renderNode(child, mapper, depth + 1, out);
}

}  // namespace

std::string Entity::renderTree(const tech::Flex10keMapper& mapper) const {
  std::ostringstream out;
  renderNode(*this, mapper, 0, out);
  return out.str();
}

namespace {

int emitDotNode(const Entity& entity, const tech::Flex10keMapper& mapper,
                int& nextId, std::ostringstream& out) {
  const int id = nextId++;
  const tech::Cost cost = entity.totalCost(mapper);
  out << "  n" << id << " [label=\"" << entity.name << "\\n"
      << entity.generics << "\\nLC=" << cost.lc << " Reg=" << cost.reg
      << " Mem=" << cost.mem << "\"];\n";
  for (const Entity& child : entity.children) {
    const int childId = emitDotNode(child, mapper, nextId, out);
    out << "  n" << id << " -> n" << childId << ";\n";
  }
  return id;
}

}  // namespace

std::string Entity::renderDot(const tech::Flex10keMapper& mapper) const {
  std::ostringstream out;
  out << "digraph rasoc_hierarchy {\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  int nextId = 0;
  emitDotNode(*this, mapper, nextId, out);
  out << "}\n";
  return out.str();
}

}  // namespace rasoc::softcore
