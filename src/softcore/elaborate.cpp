#include "softcore/elaborate.hpp"

#include <sstream>

#include "softcore/netlists.hpp"

namespace rasoc::softcore {

using router::RouterParams;

namespace {

std::string generics(const RouterParams& params, bool n, bool m, bool p) {
  std::ostringstream out;
  out << '(';
  bool first = true;
  auto item = [&](const char* key, int value) {
    if (!first) out << ", ";
    out << key << '=' << value;
    first = false;
  };
  if (n) item("n", params.n);
  if (m) item("m", params.m);
  if (p) item("p", params.p);
  if (params.numVCs > 1) item("vcs", params.numVCs);
  out << ')';
  return out.str();
}

Entity leaf(std::string name, std::string acronym, std::string gen,
            hw::Netlist netlist) {
  Entity e;
  e.name = std::move(name);
  e.acronym = std::move(acronym);
  e.generics = std::move(gen);
  e.local = std::move(netlist);
  return e;
}

}  // namespace

Entity elaborateFifo(const RouterParams& params) {
  params.validate();
  return leaf("input_buffer", "IB", generics(params, true, false, true),
              ibNetlist(params));
}

Entity elaborateInputChannel(const RouterParams& params) {
  params.validate();
  Entity e;
  e.name = "input_channel";
  e.acronym = "IN";
  e.generics = generics(params, true, true, true);
  e.children.push_back(leaf("input_flow_controller", "IFC", "()",
                            ifcNetlist(params)));
  // numVCs > 1 replicates the buffer and routing state per virtual
  // channel (input_channel.hpp: one FIFO and one header/patience state
  // machine per VC, sharing the physical link); the overlay entity holds
  // the demux/merge glue between them.
  for (int v = 0; v < params.numVCs; ++v) {
    e.children.push_back(elaborateFifo(params));
    e.children.push_back(leaf("input_controller", "IC",
                              generics(params, true, true, false),
                              icNetlist(params)));
  }
  e.children.push_back(leaf("input_read_switch", "IRS", "()",
                            irsNetlist(params)));
  if (params.numVCs > 1)
    e.children.push_back(leaf("vc_input_overlay", "VCI",
                              generics(params, true, false, false),
                              vcInputOverlayNetlist(params)));
  return e;
}

Entity elaborateOutputChannel(const RouterParams& params) {
  params.validate();
  Entity e;
  e.name = "output_channel";
  e.acronym = "OUT";
  e.generics = generics(params, true, false, false);
  e.children.push_back(leaf("output_controller", "OC", "()",
                            ocNetlist(params)));
  e.children.push_back(leaf("output_data_switch", "ODS",
                            generics(params, true, false, false),
                            odsNetlist(params)));
  e.children.push_back(leaf("output_rok_switch", "ORS", "()",
                            orsNetlist(params)));
  e.children.push_back(leaf("output_flow_controller", "OFC", "()",
                            ofcNetlist(params)));
  if (params.numVCs > 1)
    e.children.push_back(leaf("vc_allocator", "VCA",
                              generics(params, false, false, true),
                              vcOutputOverlayNetlist(params)));
  return e;
}

Entity elaborateRouter(const RouterParams& params) {
  params.validate();
  Entity e;
  e.name = "rasoc";
  e.acronym = "RASOC";
  e.generics = generics(params, true, true, true);
  for (router::Port p : router::kAllPorts) {
    if (!params.hasPort(p)) continue;
    Entity in = elaborateInputChannel(params);
    in.name += std::string(".") + std::string(router::name(p)) + "in";
    e.children.push_back(std::move(in));
    Entity out = elaborateOutputChannel(params);
    out.name += std::string(".") + std::string(router::name(p)) + "out";
    e.children.push_back(std::move(out));
  }
  return e;
}

}  // namespace rasoc::softcore
