#include "telemetry/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace rasoc::telemetry {

RunReport::RunReport(std::string name) : name_(std::move(name)) {}

RunReport::Value& RunReport::slot(const std::string& section,
                                  const std::string& key) {
  for (Section& s : sections_) {
    if (s.name != section) continue;
    for (Entry& e : s.entries)
      if (e.first == key) return e.second;
    s.entries.emplace_back(key, Value{});
    return s.entries.back().second;
  }
  sections_.push_back({section, {}});
  sections_.back().entries.emplace_back(key, Value{});
  return sections_.back().entries.back().second;
}

void RunReport::set(const std::string& section, const std::string& key,
                    const std::string& value) {
  Value& v = slot(section, key);
  v.kind = Value::Kind::String;
  v.text = value;
}

void RunReport::set(const std::string& section, const std::string& key,
                    const char* value) {
  set(section, key, std::string(value));
}

void RunReport::set(const std::string& section, const std::string& key,
                    std::uint64_t value) {
  Value& v = slot(section, key);
  v.kind = Value::Kind::Unsigned;
  v.u = value;
}

void RunReport::set(const std::string& section, const std::string& key,
                    int value) {
  set(section, key, static_cast<std::uint64_t>(value));
}

void RunReport::set(const std::string& section, const std::string& key,
                    double value) {
  Value& v = slot(section, key);
  v.kind = Value::Kind::Double;
  v.d = value;
}

void RunReport::set(const std::string& section, const std::string& key,
                    bool value) {
  Value& v = slot(section, key);
  v.kind = Value::Kind::Bool;
  v.b = value;
}

std::string RunReport::formatNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string RunReport::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void appendValue(std::ostringstream& out, const std::string& key,
                 const std::string& rendered, bool& first, int indent) {
  if (!first) out << ",";
  out << '\n' << std::string(static_cast<std::size_t>(indent), ' ') << '"'
      << RunReport::escape(key) << "\": " << rendered;
  first = false;
}

}  // namespace

std::string RunReport::toJson() const {
  std::ostringstream out;
  out << "{\n  \"report\": \"" << escape(name_) << '"';
  for (const Section& section : sections_) {
    out << ",\n  \"" << escape(section.name) << "\": {";
    bool first = true;
    for (const Entry& e : section.entries) {
      const Value& v = e.second;
      std::string rendered;
      switch (v.kind) {
        case Value::Kind::String: rendered = '"' + escape(v.text) + '"'; break;
        case Value::Kind::Unsigned: rendered = std::to_string(v.u); break;
        case Value::Kind::Double: rendered = formatNumber(v.d); break;
        case Value::Kind::Bool: rendered = v.b ? "true" : "false"; break;
      }
      appendValue(out, e.first, rendered, first, 4);
    }
    out << "\n  }";
  }
  if (registry_) {
    out << ",\n  \"metrics\": {\n    \"counters\": {";
    bool first = true;
    for (const auto& [name, counter] : registry_->counters())
      appendValue(out, name, std::to_string(counter.value()), first, 6);
    out << "\n    },\n    \"gauges\": {";
    first = true;
    for (const auto& [name, gauge] : registry_->gauges()) {
      std::string rendered = "{\"last\": " + formatNumber(gauge.last()) +
                             ", \"min\": " + formatNumber(gauge.min()) +
                             ", \"max\": " + formatNumber(gauge.max()) +
                             ", \"mean\": " + formatNumber(gauge.mean()) +
                             ", \"samples\": " +
                             std::to_string(gauge.samples()) + "}";
      appendValue(out, name, rendered, first, 6);
    }
    out << "\n    },\n    \"histograms\": {";
    first = true;
    for (const auto& [name, hist] : registry_->histograms()) {
      std::string rendered = "{\"count\": " + std::to_string(hist.count()) +
                             ", \"sum\": " + formatNumber(hist.sum()) +
                             ", \"mean\": " + formatNumber(hist.mean()) +
                             ", \"buckets\": [";
      const auto& bounds = hist.upperBounds();
      const auto& counts = hist.bucketCounts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i) rendered += ", ";
        rendered += "{\"le\": ";
        rendered += i < bounds.size() ? formatNumber(bounds[i]) : "\"inf\"";
        rendered += ", \"count\": " + std::to_string(counts[i]) + "}";
      }
      rendered += "]}";
      appendValue(out, name, rendered, first, 6);
    }
    out << "\n    }\n  }";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace rasoc::telemetry
