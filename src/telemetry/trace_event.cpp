#include "telemetry/trace_event.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "telemetry/report.hpp"

namespace rasoc::telemetry {

std::string_view name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::PacketQueued: return "packet_queued";
    case TraceEventKind::RetransmitQueued: return "retransmit_queued";
    case TraceEventKind::AckQueued: return "ack_queued";
    case TraceEventKind::NackQueued: return "nack_queued";
    case TraceEventKind::FlitInjected: return "flit_injected";
    case TraceEventKind::HeaderInjected: return "header_injected";
    case TraceEventKind::FifoEnqueue: return "fifo_enqueue";
    case TraceEventKind::FifoDequeue: return "fifo_dequeue";
    case TraceEventKind::ArbGrant: return "arb_grant";
    case TraceEventKind::ArbConflict: return "arb_conflict";
    case TraceEventKind::LinkTransfer: return "link_transfer";
    case TraceEventKind::LinkCorrupt: return "link_corrupt";
    case TraceEventKind::LinkDrop: return "link_drop";
    case TraceEventKind::LinkStall: return "link_stall";
    case TraceEventKind::HeaderEjected: return "header_ejected";
    case TraceEventKind::PacketEjected: return "packet_ejected";
  }
  return "unknown";
}

namespace {

// Port index → compass letter, matching the telemetry naming convention
// (router/params.hpp Port order: Local, North, East, South, West).
const char* portLetter(int port) {
  switch (port) {
    case 0: return "L";
    case 1: return "N";
    case 2: return "E";
    case 3: return "S";
    case 4: return "W";
    default: return "?";
  }
}

}  // namespace

std::string describe(const TraceEvent& event) {
  std::ostringstream os;
  os << 'c' << event.cycle << ' ' << name(event.kind);
  if (event.node >= 0) {
    os << " r" << event.node;
    if (event.port >= 0) os << '.' << portLetter(event.port);
  }
  if (event.packet != 0) os << " pkt" << event.packet;
  if (event.src >= 0 && event.dst >= 0)
    os << " flow " << event.src << "->" << event.dst;
  if (event.value != 0) os << " v" << event.value;
  return os.str();
}

TraceSink::TraceSink(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TraceSink::record(const TraceEvent& event) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = event;
    ++size_;
  } else {
    ring_[head_] = event;
    head_ = (head_ + 1) % ring_.size();
  }
  ++recorded_;
}

const TraceEvent& TraceSink::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("TraceSink::at");
  return ring_[(head_ + i) % ring_.size()];
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

void TraceSink::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

// --- PerfettoWriter ---------------------------------------------------------

void PerfettoWriter::processName(int pid, const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":" << pid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\""
     << RunReport::escape(name) << "\"}}";
  events_.push_back(os.str());
}

void PerfettoWriter::threadName(int pid, int tid, const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
     << RunReport::escape(name) << "\"}}";
  events_.push_back(os.str());
}

void PerfettoWriter::complete(
    int pid, int tid, std::uint64_t ts, std::uint64_t dur,
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::ostringstream os;
  os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << ts << ",\"dur\":" << dur << ",\"name\":\""
     << RunReport::escape(name) << '"';
  if (!args.empty()) {
    os << ",\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i) os << ',';
      os << '"' << RunReport::escape(args[i].first) << "\":\""
         << RunReport::escape(args[i].second) << '"';
    }
    os << '}';
  }
  os << '}';
  events_.push_back(os.str());
}

void PerfettoWriter::instant(int pid, int tid, std::uint64_t ts,
                             const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << ts << ",\"name\":\"" << RunReport::escape(name)
     << "\"}";
  events_.push_back(os.str());
}

void PerfettoWriter::counter(
    int pid, std::uint64_t ts, const std::string& name,
    const std::vector<std::pair<std::string, double>>& series) {
  std::ostringstream os;
  os << "{\"ph\":\"C\",\"pid\":" << pid << ",\"ts\":" << ts
     << ",\"name\":\"" << RunReport::escape(name) << "\",\"args\":{";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i) os << ',';
    os << '"' << RunReport::escape(series[i].first)
       << "\":" << RunReport::formatNumber(series[i].second);
  }
  os << "}}";
  events_.push_back(os.str());
}

std::string PerfettoWriter::toJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::size_t total = out.size() + 3;
  for (const std::string& e : events_) total += e.size() + 2;
  out.reserve(total);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i) out += ',';
    out += '\n';
    out += events_[i];
  }
  out += "\n]}\n";
  return out;
}

// --- validatePerfettoJson ---------------------------------------------------

namespace {

// Tiny recursive-descent JSON parser producing just enough structure to
// schema-check a trace: values are tagged variants, objects keep their
// members in a flat vector (traces are small enough that linear lookup is
// fine and it keeps the parser allocation-light).
struct JsonValue;
using JsonMembers = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool b = false;
  double num = 0.0;
  bool numIsIntegral = false;
  std::string str;
  std::vector<JsonValue> items;    // Array
  JsonMembers members;             // Object

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    try {
      skipWs();
      out = value();
      skipWs();
      if (pos_ != text_.size()) fail("trailing data after JSON value");
      return true;
    } catch (const std::runtime_error& e) {
      if (error) *error = e.what();
      return false;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = string();
        return v;
      }
      case 't': return literal("true", [] {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.b = true;
        return v;
      }());
      case 'f': return literal("false", [] {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        return v;
      }());
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue literal(std::string_view word, JsonValue result) {
    for (const char c : word)
      if (take() != c) fail("bad literal");
    return result;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      skipWs();
      v.members.emplace_back(std::move(key), value());
      skipWs();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      v.items.push_back(value());
      skipWs();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Schema checking only needs the string to parse; a lossy
          // substitution keeps the validator free of UTF-8 encoding.
          out += (code < 0x80) ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.num = std::stod(text_.substr(start, pos_ - start));
    v.numIsIntegral = integral;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool schemaFail(std::string* error, std::size_t index,
                const std::string& what) {
  if (error)
    *error = "traceEvents[" + std::to_string(index) + "]: " + what;
  return false;
}

}  // namespace

bool validatePerfettoJson(const std::string& json, std::string* error) {
  JsonValue root;
  if (!JsonParser(json).parse(root, error)) return false;
  if (root.kind != JsonValue::Kind::Object) {
    if (error) *error = "root is not an object";
    return false;
  }
  const JsonValue* events = root.find("traceEvents");
  if (!events || events->kind != JsonValue::Kind::Array) {
    if (error) *error = "missing \"traceEvents\" array";
    return false;
  }
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& e = events->items[i];
    if (e.kind != JsonValue::Kind::Object)
      return schemaFail(error, i, "event is not an object");
    const JsonValue* ph = e.find("ph");
    if (!ph || ph->kind != JsonValue::Kind::String || ph->str.size() != 1)
      return schemaFail(error, i, "missing one-char \"ph\"");
    const char phase = ph->str[0];
    if (phase != 'X' && phase != 'i' && phase != 'C' && phase != 'M')
      return schemaFail(error, i,
                        std::string("unsupported phase '") + phase + "'");
    const JsonValue* pid = e.find("pid");
    if (!pid || pid->kind != JsonValue::Kind::Number || !pid->numIsIntegral)
      return schemaFail(error, i, "missing integer \"pid\"");
    const JsonValue* name = e.find("name");
    if (!name || name->kind != JsonValue::Kind::String || name->str.empty())
      return schemaFail(error, i, "missing non-empty string \"name\"");
    if (phase != 'M') {
      const JsonValue* ts = e.find("ts");
      if (!ts || ts->kind != JsonValue::Kind::Number)
        return schemaFail(error, i, "missing numeric \"ts\"");
    }
    if (phase == 'X') {
      const JsonValue* dur = e.find("dur");
      if (!dur || dur->kind != JsonValue::Kind::Number)
        return schemaFail(error, i, "\"X\" span without numeric \"dur\"");
      const JsonValue* tid = e.find("tid");
      if (!tid || tid->kind != JsonValue::Kind::Number ||
          !tid->numIsIntegral)
        return schemaFail(error, i, "\"X\" span without integer \"tid\"");
    }
    if (phase == 'C') {
      const JsonValue* args = e.find("args");
      if (!args || args->kind != JsonValue::Kind::Object ||
          args->members.empty())
        return schemaFail(error, i, "counter without args series");
      for (const auto& [k, v] : args->members)
        if (v.kind != JsonValue::Kind::Number)
          return schemaFail(error, i,
                            "counter series \"" + k + "\" not numeric");
    }
  }
  if (error) error->clear();
  return true;
}

}  // namespace rasoc::telemetry
