/// \file
/// Flit-level trace primitives: the span-style event record, a bounded
/// deterministic ring sink, and a Chrome/Perfetto `trace_events` JSON
/// writer plus the schema validator CI smoke tests run in-process.
///
/// Design constraints mirror telemetry/metrics.hpp — the trace layer must
/// never distort what it traces:
///  * recording is a bounds check plus a struct copy into a preallocated
///    ring; no allocation on the hot path after construction;
///  * everything is opt-in: an untraced network holds no sink and pays
///    nothing (noc/flow_trace.hpp reconstructs events from settled wires
///    and lifetime counters, so the router blocks are not instrumented at
///    all);
///  * output is deterministic: events are recorded in a fixed scan order
///    and serialized through the RunReport number formatter, so two runs of
///    the same seeded simulation produce byte-identical traces.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rasoc::telemetry {

/// What happened to a flit/packet at one clock edge.  The lifecycle of an
/// unfaulted packet reads: PacketQueued → FlitInjected (HeaderInjected for
/// the first) → per hop {FifoEnqueue → ArbGrant/ArbConflict → FifoDequeue →
/// LinkTransfer} → HeaderEjected → PacketEjected.  Fault and protocol
/// events (Link*, RetransmitQueued, Ack/NackQueued) interleave as they
/// occur.
enum class TraceEventKind : std::uint8_t {
  PacketQueued,      ///< NI accepted a packet for the wire (value = flits)
  RetransmitQueued,  ///< reliable transport re-queued a DATA frame
  AckQueued,         ///< reliable transport queued an ACK control frame
  NackQueued,        ///< reliable transport queued a NACK control frame
  FlitInjected,      ///< a flit crossed the NI→router wire (value = seq)
  HeaderInjected,    ///< the bop flit crossed the NI→router wire
  FifoEnqueue,       ///< input channel accepted a flit off its link
  FifoDequeue,       ///< buffer head read out (value = residency cycles)
  ArbGrant,          ///< output channel granted input port `value`
  ArbConflict,       ///< input port `value` left waiting for this output
  LinkTransfer,      ///< a flit crossed an inter-router link
  LinkCorrupt,       ///< faulty link flipped a payload bit in transit
  LinkDrop,          ///< faulty link silently consumed a body flit
  LinkStall,         ///< faulty link blocked an offered flit this cycle
  HeaderEjected,     ///< bop flit reached the destination NI
  PacketEjected,     ///< eop flit reached the destination NI (span closed)
};

std::string_view name(TraceEventKind kind);

/// One trace record.  `packet` is the flow tracer's per-wire-packet id
/// (1-based; 0 marks an event whose packet was not sampled — such events
/// are never recorded, the zero only appears in scratch state).  `node` /
/// `port` locate the router channel the event touched (-1 when the event
/// is not tied to one); `src`/`dst` are topology node indices of the flow.
struct TraceEvent {
  std::uint64_t cycle = 0;
  std::uint64_t packet = 0;
  std::int32_t node = -1;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t value = 0;
  std::int8_t port = -1;
  TraceEventKind kind = TraceEventKind::PacketQueued;

  bool operator==(const TraceEvent&) const = default;
};

/// Render an event as one human-readable line (watchdog stall dumps and
/// test diagnostics): `c123 fifo_dequeue r5.E pkt7 flow 0->12 v2`.
std::string describe(const TraceEvent& event);

/// Bounded ring of trace events.  Recording overwrites the oldest entry
/// once full; `dropped()` counts the overwrites so reports can say how much
/// history the window kept.
class TraceSink {
 public:
  /// `capacity` is clamped to at least 1.
  explicit TraceSink(std::size_t capacity);

  void record(const TraceEvent& event);

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  /// Lifetime events offered to record().
  std::uint64_t recorded() const { return recorded_; }
  /// Events overwritten by newer ones (recorded() - size()).
  std::uint64_t dropped() const { return recorded_ - size_; }

  /// The i-th retained event, oldest first; i must be < size().
  const TraceEvent& at(std::size_t i) const;

  /// Retained events oldest→newest (copies; for tests and small dumps).
  std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

/// Streaming builder for the Chrome/Perfetto `trace_events` JSON format
/// (the "JSON Array Format" ui.perfetto.dev and chrome://tracing load
/// directly).  Timestamps are in microseconds; the flow tracer maps one
/// simulated cycle to 1 µs.  Events render in emission order, so a caller
/// that emits in a deterministic order gets byte-identical JSON.
class PerfettoWriter {
 public:
  /// Metadata: names the track group ("process") `pid`.
  void processName(int pid, const std::string& name);
  /// Metadata: names track ("thread") `tid` inside group `pid`.
  void threadName(int pid, int tid, const std::string& name);

  /// A complete span ("ph":"X").  `args` values are emitted as JSON
  /// strings.
  void complete(int pid, int tid, std::uint64_t ts, std::uint64_t dur,
                const std::string& name,
                const std::vector<std::pair<std::string, std::string>>&
                    args = {});

  /// A thread-scoped instant event ("ph":"i").
  void instant(int pid, int tid, std::uint64_t ts, const std::string& name);

  /// A counter sample ("ph":"C"); each series becomes one stacked band.
  void counter(int pid, std::uint64_t ts, const std::string& name,
               const std::vector<std::pair<std::string, double>>& series);

  std::size_t events() const { return events_.size(); }

  /// `{"displayTimeUnit":"ms","traceEvents":[...]}`.
  std::string toJson() const;

 private:
  std::vector<std::string> events_;  // pre-rendered JSON objects
};

/// Minimal structural validator for the Perfetto JSON emitted above: full
/// JSON parse (objects, arrays, strings, numbers, literals), then a schema
/// check — root object with a "traceEvents" array whose entries carry a
/// one-char "ph" from {X,i,C,M}, integer "pid", a string "name", a numeric
/// "ts" (except metadata), and a numeric "dur" on every "X" span.  Lives in
/// the library so the CI smoke check needs no Python; returns false and
/// fills `error` (when non-null) on the first violation.
bool validatePerfettoJson(const std::string& json,
                          std::string* error = nullptr);

}  // namespace rasoc::telemetry
