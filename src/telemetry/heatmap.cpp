#include "telemetry/heatmap.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rasoc::telemetry {

namespace {

// Ten intensity levels, dark to bright.
constexpr char kRamp[] = " .:-=+*#%@";

}  // namespace

MeshHeatmap::MeshHeatmap(int width, int height, std::string title)
    : width_(width), height_(height), title_(std::move(title)) {
  if (width < 1 || height < 1)
    throw std::invalid_argument("heatmap needs a positive grid");
  cells_.assign(static_cast<std::size_t>(width) *
                    static_cast<std::size_t>(height),
                0.0);
}

std::size_t MeshHeatmap::indexOf(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_)
    throw std::out_of_range("heatmap cell off grid");
  return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
         static_cast<std::size_t>(x);
}

void MeshHeatmap::set(int x, int y, double v) { cells_[indexOf(x, y)] = v; }

double MeshHeatmap::at(int x, int y) const { return cells_[indexOf(x, y)]; }

double MeshHeatmap::maxValue() const {
  return *std::max_element(cells_.begin(), cells_.end());
}

std::string MeshHeatmap::ascii() const {
  const double peak = maxValue();
  std::ostringstream out;
  out << title_ << " (max " << [&] {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g", peak);
    return std::string(buf);
  }() << ", cells 0-99 of max)\n";
  for (int y = height_ - 1; y >= 0; --y) {
    out << "  y=" << y << " |";
    for (int x = 0; x < width_; ++x) {
      const double v = at(x, y);
      const int scaled =
          peak > 0.0 ? static_cast<int>(v / peak * 99.0 + 0.5) : 0;
      const auto level = static_cast<std::size_t>(
          peak > 0.0 ? std::min(9, static_cast<int>(v / peak * 10.0)) : 0);
      char cell[16];
      std::snprintf(cell, sizeof cell, " %c%02d", kRamp[level], scaled);
      out << cell;
    }
    out << " |\n";
  }
  out << "       ";
  for (int x = 0; x < width_; ++x) {
    char label[16];
    std::snprintf(label, sizeof label, " x%-2d", x);
    out << label;
  }
  out << '\n';
  return out.str();
}

std::string MeshHeatmap::csv() const {
  std::ostringstream out;
  out << "x,y," << title_ << '\n';
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%d,%d,%.6g", x, y, at(x, y));
      out << buf << '\n';
    }
  }
  return out.str();
}

}  // namespace rasoc::telemetry
