#include "telemetry/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace rasoc::telemetry {

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("histogram needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("histogram bounds must be sorted");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += v;
}

std::vector<double> Histogram::linearBounds(int n) {
  if (n < 1) throw std::invalid_argument("linearBounds needs n >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  for (int i = 1; i <= n; ++i) bounds.push_back(static_cast<double>(i));
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  } else if (it->second.upperBounds() != bounds) {
    throw std::invalid_argument("histogram '" + name +
                                "' re-registered with different bounds");
  }
  return it->second;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::findGauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t MetricsRegistry::counterValue(const std::string& name,
                                            std::uint64_t absent) const {
  const Counter* c = findCounter(name);
  return c ? c->value() : absent;
}

}  // namespace rasoc::telemetry
