// Run-time metrics primitives: counters, sampled gauges and fixed-bucket
// histograms, collected in a name-keyed registry.
//
// Design constraints (the measurement layer must never distort what it
// measures):
//  * recording is a pointer-chase plus an integer add - cheap enough to
//    leave compiled into the router blocks;
//  * instrumentation is opt-in per run: modules hold null metric pointers
//    until a registry is attached, so un-instrumented runs pay only one
//    branch per cycle;
//  * iteration order is the lexicographic name order (std::map), so every
//    serialization of the same run is byte-identical - reports are
//    machine-diffable across runs and commits.
//
// Naming convention used by the NoC layer: `r<x>,<y>.<port><dir>.<metric>`
// for per-channel series (e.g. "r1,2.Ein.full_cycles") and
// `r<x>,<y>.<metric>` / `ni<x>,<y>.<metric>` / `mesh.<metric>` for
// aggregates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rasoc::telemetry {

// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Sampled instantaneous value; keeps last/min/max/sum so a per-cycle
// sampler costs O(1) memory regardless of run length.
class Gauge {
 public:
  void sample(double v) {
    last_ = v;
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    sum_ += v;
    ++count_;
  }

  std::uint64_t samples() const { return count_; }
  double last() const { return last_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

// Fixed-bucket histogram: one bucket per upper bound (inclusive) plus an
// implicit overflow bucket.  Bounds are fixed at creation so observing a
// sample is a linear scan over a handful of doubles.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  const std::vector<double>& upperBounds() const { return bounds_; }
  // bucketCounts().size() == upperBounds().size() + 1; the last entry is
  // the overflow bucket.
  const std::vector<std::uint64_t>& bucketCounts() const { return counts_; }

  // Evenly spaced integer bounds [1, 2, ..., n]: the natural buckets for a
  // FIFO-occupancy series with depth n.
  static std::vector<double> linearBounds(int n);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Name-keyed collection of the three metric kinds.  Accessors create the
// metric on first use and return a stable reference (std::map nodes never
// move), so modules can hold raw pointers for the lifetime of the registry.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Throws std::invalid_argument if the histogram exists with different
  // bounds (two instruments disagreeing about one series is a bug).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // Lookup without creation; nullptr when absent.
  const Counter* findCounter(const std::string& name) const;
  const Gauge* findGauge(const std::string& name) const;
  const Histogram* findHistogram(const std::string& name) const;

  // Value of a counter, or `absent` when it was never created (pruned-port
  // channels never register their series).
  std::uint64_t counterValue(const std::string& name,
                             std::uint64_t absent = 0) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rasoc::telemetry
