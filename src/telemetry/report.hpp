// Structured run reports: a named set of ordered sections of key/value
// pairs plus an optional metrics-registry dump, serialized to JSON.
//
// The output is deterministic by construction: sections and keys render in
// insertion order, registry series in name order, and numbers through one
// fixed formatting routine - two runs of the same seeded simulation produce
// byte-identical reports, so bench output can be diffed across commits.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace rasoc::telemetry {

class RunReport {
 public:
  explicit RunReport(std::string name);

  const std::string& name() const { return name_; }

  // Scalar setters; a repeated (section, key) overwrites in place, keeping
  // the original position.
  void set(const std::string& section, const std::string& key,
           const std::string& value);
  void set(const std::string& section, const std::string& key,
           const char* value);
  void set(const std::string& section, const std::string& key,
           std::uint64_t value);
  void set(const std::string& section, const std::string& key, int value);
  void set(const std::string& section, const std::string& key, double value);
  void set(const std::string& section, const std::string& key, bool value);

  // Serializes the registry under a "metrics" key (counters, gauges and
  // histograms in name order).  Non-owning; the registry must outlive
  // toJson().
  void attachRegistry(const MetricsRegistry& registry) {
    registry_ = &registry;
  }

  std::string toJson() const;

  // Fixed JSON number/string formatting shared with tests.
  static std::string formatNumber(double v);
  static std::string escape(const std::string& s);

 private:
  struct Value {
    enum class Kind { String, Unsigned, Double, Bool } kind;
    std::string text;      // String
    std::uint64_t u = 0;   // Unsigned
    double d = 0.0;        // Double
    bool b = false;        // Bool
  };
  using Entry = std::pair<std::string, Value>;
  struct Section {
    std::string name;
    std::vector<Entry> entries;
  };

  Value& slot(const std::string& section, const std::string& key);

  std::string name_;
  std::vector<Section> sections_;
  const MetricsRegistry* registry_ = nullptr;
};

}  // namespace rasoc::telemetry
