// Per-router heatmap rendering: a W x H grid of doubles (one cell per
// router position) rendered as an ASCII intensity map for terminals and as
// CSV for tooling.  The NoC layer fills cells from the metrics registry
// (noc/observe.hpp); this class is pure presentation.
#pragma once

#include <string>
#include <vector>

namespace rasoc::telemetry {

class MeshHeatmap {
 public:
  // `title` is printed above the ASCII grid and used as the value column
  // header in the CSV output.
  MeshHeatmap(int width, int height, std::string title = "value");

  int width() const { return width_; }
  int height() const { return height_; }
  const std::string& title() const { return title_; }

  void set(int x, int y, double v);
  double at(int x, int y) const;
  double maxValue() const;

  // Terminal rendering, mesh orientation (y grows North, so row y=H-1
  // prints first).  Each cell shows the value scaled to 0..99 against the
  // grid maximum plus an intensity glyph from ` .:-=+*#%@`; the legend line
  // records the absolute maximum so cells stay comparable across maps.
  std::string ascii() const;

  // "x,y,<title>" header plus one row per cell in row-major (y, then x)
  // order - deterministic for diffing.
  std::string csv() const;

 private:
  std::size_t indexOf(int x, int y) const;

  int width_;
  int height_;
  std::string title_;
  std::vector<double> cells_;
};

}  // namespace rasoc::telemetry
