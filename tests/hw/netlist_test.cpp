#include "hw/netlist.hpp"

#include <gtest/gtest.h>

namespace rasoc::hw {
namespace {

TEST(NetlistTest, StartsEmpty) {
  Netlist nl;
  EXPECT_TRUE(nl.empty());
  EXPECT_EQ(nl.totalFlipFlops(), 0);
  EXPECT_EQ(nl.totalMemoryBits(), 0);
}

TEST(NetlistTest, BuildersAppendPrimitives) {
  Netlist nl;
  nl.addMux(4, 8);
  nl.addRegister(16, /*packed=*/false);
  nl.addGate(3, 2);
  nl.addMemory(4, 34);
  EXPECT_EQ(nl.items().size(), 4u);
}

TEST(NetlistTest, InvalidBuilderArgumentsAreIgnored) {
  Netlist nl;
  nl.addMux(1, 8);        // a 1:1 "mux" is a wire
  nl.addMux(4, 0);        // zero width
  nl.addRegister(0, false);
  nl.addGate(1);          // single-input gate is a wire
  nl.addMemory(0, 8);
  EXPECT_TRUE(nl.empty());
}

TEST(NetlistTest, TotalFlipFlopsSumsWidthTimesCount) {
  Netlist nl;
  nl.addRegister(10, false, 2);  // 20 FFs
  nl.addRegister(3, true);       // 3 FFs
  nl.addMux(4, 8);               // no FFs
  EXPECT_EQ(nl.totalFlipFlops(), 23);
}

TEST(NetlistTest, TotalMemoryBitsSumsWordsTimesWidthTimesCount) {
  Netlist nl;
  nl.addMemory(4, 34);      // 136 bits
  nl.addMemory(2, 10, 3);   // 60 bits
  EXPECT_EQ(nl.totalMemoryBits(), 196);
}

TEST(NetlistTest, MergeAppendsScaled) {
  Netlist a;
  a.addRegister(4, false);
  Netlist b;
  b.merge(a, 5);
  EXPECT_EQ(b.totalFlipFlops(), 20);
  EXPECT_EQ(b.items().size(), 5u);
}

TEST(NetlistTest, MergeZeroTimesIsNoop) {
  Netlist a;
  a.addGate(2);
  Netlist b;
  b.merge(a, 0);
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace rasoc::hw
