#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace rasoc::sim {
namespace {

TEST(TracerTest, SamplesProbesPerCycle) {
  Tracer tracer;
  std::uint64_t a = 1, b = 2;
  tracer.addProbe("a", [&] { return a; });
  tracer.addProbe("b", [&] { return b; });
  tracer.sample(0);
  a = 10;
  b = 20;
  tracer.sample(1);
  ASSERT_EQ(tracer.sampleCount(), 2u);
  EXPECT_EQ(tracer.value(0, "a"), 1u);
  EXPECT_EQ(tracer.value(0, "b"), 2u);
  EXPECT_EQ(tracer.value(1, "a"), 10u);
  EXPECT_EQ(tracer.value(1, "b"), 20u);
}

TEST(TracerTest, UnknownProbeThrows) {
  Tracer tracer;
  tracer.addProbe("a", [] { return 0u; });
  tracer.sample(0);
  EXPECT_THROW(tracer.value(0, "nope"), std::out_of_range);
}

TEST(TracerTest, RenderContainsHeaderAndValues) {
  Tracer tracer;
  tracer.addProbe("sig", [] { return 7u; });
  tracer.sample(3);
  const std::string text = tracer.render();
  EXPECT_NE(text.find("cycle"), std::string::npos);
  EXPECT_NE(text.find("sig"), std::string::npos);
  EXPECT_NE(text.find('7'), std::string::npos);
  EXPECT_NE(text.find('3'), std::string::npos);
}

TEST(TracerTest, ClearDropsSamplesButKeepsProbes) {
  Tracer tracer;
  tracer.addProbe("a", [] { return 1u; });
  tracer.sample(0);
  tracer.clear();
  EXPECT_EQ(tracer.sampleCount(), 0u);
  tracer.sample(1);
  EXPECT_EQ(tracer.sampleCount(), 1u);
}

}  // namespace
}  // namespace rasoc::sim
