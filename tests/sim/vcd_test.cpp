#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace rasoc::sim {
namespace {

TEST(VcdTest, HeaderContainsDefinitions) {
  VcdWriter vcd("top");
  std::uint64_t a = 0;
  vcd.addSignal("clk", 1, [&] { return a; });
  vcd.sample(0);
  const std::string text = vcd.render();
  EXPECT_NE(text.find("$timescale 1 ns $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTest, ScalarChangesUseCompactForm) {
  VcdWriter vcd("top");
  std::uint64_t v = 0;
  vcd.addSignal("sig", 1, [&] { return v; });
  vcd.sample(0);
  v = 1;
  vcd.sample(1);
  const std::string text = vcd.render();
  EXPECT_NE(text.find("#0\n0!"), std::string::npos);
  EXPECT_NE(text.find("#1\n1!"), std::string::npos);
}

TEST(VcdTest, VectorsUseBinaryForm) {
  VcdWriter vcd("top");
  std::uint64_t v = 0xa;
  vcd.addSignal("bus", 4, [&] { return v; });
  vcd.sample(0);
  const std::string text = vcd.render();
  EXPECT_NE(text.find("b1010 !"), std::string::npos);
}

TEST(VcdTest, UnchangedValuesAreNotReemitted) {
  VcdWriter vcd("top");
  std::uint64_t v = 1;
  vcd.addSignal("sig", 1, [&] { return v; });
  vcd.sample(0);
  vcd.sample(1);  // unchanged: no #1 section at all
  v = 0;
  vcd.sample(2);
  const std::string text = vcd.render();
  EXPECT_NE(text.find("#0\n"), std::string::npos);
  EXPECT_EQ(text.find("#1\n"), std::string::npos);
  EXPECT_NE(text.find("#2\n"), std::string::npos);
}

TEST(VcdTest, DottedNamesBecomeScopes) {
  VcdWriter vcd("router");
  vcd.addSignal("Lin.val", 1, [] { return 0u; });
  vcd.addSignal("Lin.ack", 1, [] { return 0u; });
  vcd.addSignal("Eout.val", 1, [] { return 0u; });
  vcd.sample(0);
  const std::string text = vcd.render();
  EXPECT_NE(text.find("$scope module Lin $end"), std::string::npos);
  EXPECT_NE(text.find("$scope module Eout $end"), std::string::npos);
  // Member names are emitted without the scope prefix.
  EXPECT_NE(text.find(" val $end"), std::string::npos);
  EXPECT_NE(text.find(" ack $end"), std::string::npos);
}

TEST(VcdTest, ManySignalsGetUniqueIds) {
  VcdWriter vcd("top");
  std::vector<std::string> ids;
  for (int i = 0; i < 200; ++i)
    ids.push_back(vcd.addSignal("s" + std::to_string(i), 1, [] {
      return 0u;
    }));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(VcdTest, Signal95UsesTwoCharacterId) {
  // Ids are base-94 over '!'..'~', least-significant digit first: index 94
  // rolls over from the single char '~' (index 93) to the two-char "!\"".
  VcdWriter vcd("top");
  std::string id93, id94;
  std::uint64_t v = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string id =
        vcd.addSignal("s" + std::to_string(i), 1, [&] { return v; });
    if (i == 93) id93 = id;
    if (i == 94) id94 = id;
  }
  EXPECT_EQ(id93, "~");
  EXPECT_EQ(id94, "!\"");

  vcd.sample(0);
  v = 1;
  vcd.sample(1);
  const std::string text = vcd.render();
  // Both definition and value-change lines carry the multi-char id intact.
  EXPECT_NE(text.find("$var wire 1 !\" s94 $end"), std::string::npos);
  EXPECT_NE(text.find("0!\"\n"), std::string::npos);
  EXPECT_NE(text.find("1!\"\n"), std::string::npos);
}

TEST(VcdTest, AddAfterSampleThrows) {
  VcdWriter vcd("top");
  vcd.addSignal("a", 1, [] { return 0u; });
  vcd.sample(0);
  EXPECT_THROW(vcd.addSignal("b", 1, [] { return 0u; }),
               std::logic_error);
}

TEST(VcdTest, WidthBoundsChecked) {
  VcdWriter vcd("top");
  EXPECT_THROW(vcd.addSignal("w0", 0, [] { return 0u; }),
               std::invalid_argument);
  EXPECT_THROW(vcd.addSignal("w65", 65, [] { return 0u; }),
               std::invalid_argument);
  EXPECT_NO_THROW(vcd.addSignal("w64", 64, [] { return 0u; }));
}

}  // namespace
}  // namespace rasoc::sim
