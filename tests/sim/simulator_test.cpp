#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/module.hpp"
#include "sim/wire.hpp"

namespace rasoc::sim {
namespace {

// y = x + 1 combinationally.
class Increment : public Module {
 public:
  Increment(std::string name, const Wire<int>& x, Wire<int>& y)
      : Module(std::move(name)), x_(&x), y_(&y) {}

 protected:
  void evaluate() override { y_->set(x_->get() + 1); }

 private:
  const Wire<int>* x_;
  Wire<int>* y_;
};

// Registered counter with combinational output wire.
class Counter : public Module {
 public:
  Counter(std::string name, Wire<int>& out)
      : Module(std::move(name)), out_(&out) {}

 protected:
  void onReset() override { value_ = 0; }
  void evaluate() override { out_->set(value_); }
  void clockEdge() override { ++value_; }

 private:
  int value_ = 0;
  Wire<int>* out_;
};

// Oscillating combinational loop: y = !y.
class Inverter : public Module {
 public:
  Inverter(std::string name, Wire<bool>& y)
      : Module(std::move(name)), y_(&y) {}

 protected:
  void evaluate() override { y_->set(!y_->get()); }

 private:
  Wire<bool>* y_;
};

TEST(SimulatorTest, SettleReachesFixpointThroughChainedModules) {
  // A chain x -> +1 -> +1 -> +1 settles regardless of evaluation order.
  Wire<int> a{0}, b, c, d;
  Increment m3("m3", c, d);  // deliberately registered in reverse order
  Increment m2("m2", b, c);
  Increment m1("m1", a, b);
  Simulator sim;
  sim.add(m3);
  sim.add(m2);
  sim.add(m1);
  sim.settle();
  EXPECT_EQ(d.get(), 3);
  a.force(10);
  sim.settle();
  EXPECT_EQ(d.get(), 13);
}

TEST(SimulatorTest, StepAdvancesRegisteredState) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  EXPECT_EQ(out.get(), 0);
  sim.step();
  sim.settle();
  EXPECT_EQ(out.get(), 1);
  sim.run(4);
  sim.settle();
  EXPECT_EQ(out.get(), 5);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(SimulatorTest, ResetRestartsCycleCountAndState) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  sim.run(7);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  EXPECT_EQ(out.get(), 0);
}

TEST(SimulatorTest, CombinationalLoopThrows) {
  Wire<bool> y;
  Inverter inv("inv", y);
  Simulator sim;
  sim.add(inv);
  EXPECT_THROW(sim.settle(), std::runtime_error);
}

TEST(SimulatorTest, RunUntilStopsWhenPredicateFires) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  const bool fired = sim.runUntil([&] { return out.get() == 5; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(out.get(), 5);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(SimulatorTest, RunUntilGivesUpAfterMaxCycles) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  EXPECT_FALSE(sim.runUntil([&] { return out.get() == 1000; }, 10));
}

TEST(SimulatorTest, ChildModulesAreDriven) {
  // A composite whose child is the counter: reset/evaluate/clockEdge must
  // reach it through the parent.
  class Composite : public Module {
   public:
    Composite(std::string name, Wire<int>& out)
        : Module(std::move(name)), child_("child", out) {
      addChild(child_);
    }

   private:
    Counter child_;
  };
  Wire<int> out;
  Composite top("top", out);
  Simulator sim;
  sim.add(top);
  sim.reset();
  sim.run(3);
  sim.settle();
  EXPECT_EQ(out.get(), 3);
}

TEST(SimulatorTest, TickListenersFireOncePerCommittedEdge) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  std::vector<std::uint64_t> seenCycles;
  std::vector<int> seenValues;
  sim.addTickListener([&] { seenCycles.push_back(sim.cycle()); });
  sim.addTickListener([&] { seenValues.push_back(out.get()); });
  sim.reset();
  sim.run(3);
  // Listeners observe post-edge state with the cycle count already advanced.
  EXPECT_EQ(seenCycles, (std::vector<std::uint64_t>{1, 2, 3}));
  ASSERT_EQ(seenValues.size(), 3u);
}

TEST(SimulatorTest, MaxSettleIterationsIsConfigurable) {
  Simulator sim;
  sim.setMaxSettleIterations(7);
  EXPECT_EQ(sim.maxSettleIterations(), 7);
}

}  // namespace
}  // namespace rasoc::sim
