#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/module.hpp"
#include "sim/wire.hpp"

namespace rasoc::sim {
namespace {

// y = x + 1 combinationally.
class Increment : public Module {
 public:
  Increment(std::string name, const Wire<int>& x, Wire<int>& y)
      : Module(std::move(name)), x_(&x), y_(&y) {
    sensitive(x);
  }

  std::uint64_t evaluations() const { return evaluations_; }

 protected:
  void evaluate() override {
    ++evaluations_;
    y_->set(x_->get() + 1);
  }

 private:
  const Wire<int>* x_;
  Wire<int>* y_;
  std::uint64_t evaluations_ = 0;
};

// Registered counter with combinational output wire.
class Counter : public Module {
 public:
  Counter(std::string name, Wire<int>& out)
      : Module(std::move(name)), out_(&out) {
    declareSequential();
  }

 protected:
  void onReset() override { value_ = 0; }
  void evaluate() override { out_->set(value_); }
  void clockEdge() override { ++value_; }

 private:
  int value_ = 0;
  Wire<int>* out_;
};

// Oscillating combinational loop: y = !y.
class Inverter : public Module {
 public:
  Inverter(std::string name, Wire<bool>& y)
      : Module(std::move(name)), y_(&y) {
    sensitive(y);
  }

 protected:
  void evaluate() override { y_->set(!y_->get()); }

 private:
  Wire<bool>* y_;
};

TEST(SimulatorTest, SettleReachesFixpointThroughChainedModules) {
  // A chain x -> +1 -> +1 -> +1 settles regardless of evaluation order.
  Wire<int> a{0}, b, c, d;
  Increment m3("m3", c, d);  // deliberately registered in reverse order
  Increment m2("m2", b, c);
  Increment m1("m1", a, b);
  Simulator sim;
  sim.add(m3);
  sim.add(m2);
  sim.add(m1);
  sim.settle();
  EXPECT_EQ(d.get(), 3);
  a.force(10);
  sim.settle();
  EXPECT_EQ(d.get(), 13);
}

TEST(SimulatorTest, StepAdvancesRegisteredState) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  EXPECT_EQ(out.get(), 0);
  sim.step();
  sim.settle();
  EXPECT_EQ(out.get(), 1);
  sim.run(4);
  sim.settle();
  EXPECT_EQ(out.get(), 5);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(SimulatorTest, ResetRestartsCycleCountAndState) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  sim.run(7);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  EXPECT_EQ(out.get(), 0);
}

TEST(SimulatorTest, CombinationalLoopThrows) {
  Wire<bool> y;
  Inverter inv("inv", y);
  Simulator sim;
  sim.add(inv);
  EXPECT_THROW(sim.settle(), std::runtime_error);
}

TEST(SimulatorTest, RunUntilStopsWhenPredicateFires) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  const bool fired = sim.runUntil([&] { return out.get() == 5; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(out.get(), 5);
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(SimulatorTest, RunUntilGivesUpAfterMaxCycles) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  EXPECT_FALSE(sim.runUntil([&] { return out.get() == 1000; }, 10));
}

TEST(SimulatorTest, RunUntilChecksThePredicateExactlyMaxCyclesTimes) {
  // The counter reaches 5 only after 5 ticks, i.e. in the 6th settle
  // phase.  A budget of 5 cycles must NOT report success (the predicate is
  // checked at cycles 0..4), and must not over-run the cycle bound.
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  sim.reset();
  std::uint64_t checks = 0;
  EXPECT_FALSE(sim.runUntil(
      [&] {
        ++checks;
        return out.get() == 5;
      },
      5));
  EXPECT_EQ(checks, 5u);
  EXPECT_EQ(sim.cycle(), 5u);
  // The timed-out state is left settled for observation.
  EXPECT_EQ(out.get(), 5);

  // One more cycle of budget catches it, without ticking the firing cycle.
  sim.reset();
  EXPECT_TRUE(sim.runUntil([&] { return out.get() == 5; }, 6));
  EXPECT_EQ(sim.cycle(), 5u);
}

TEST(SimulatorTest, ForceDuringSettleThrows) {
  // A module that pokes a foreign wire from evaluate() via force() would
  // bypass change tracking and corrupt the fixpoint; the wire rejects it.
  Wire<int> victim{0};
  class Poker : public Module {
   public:
    Poker(std::string name, Wire<int>& victim)
        : Module(std::move(name)), victim_(&victim) {}

   protected:
    void evaluate() override { victim_->force(1); }

   private:
    Wire<int>* victim_;
  };
  Poker poker("poker", victim);
  Simulator sim;
  sim.add(poker);
  EXPECT_THROW(sim.settle(), std::logic_error);
  // Outside the settle phase the poke window is open again.
  EXPECT_NO_THROW(victim.force(2));
  EXPECT_EQ(victim.get(), 2);
}

TEST(SimulatorTest, ChildModulesAreDriven) {
  // A composite whose child is the counter: reset/evaluate/clockEdge must
  // reach it through the parent.
  class Composite : public Module {
   public:
    Composite(std::string name, Wire<int>& out)
        : Module(std::move(name)), child_("child", out) {
      addChild(child_);
    }

   private:
    Counter child_;
  };
  Wire<int> out;
  Composite top("top", out);
  Simulator sim;
  sim.add(top);
  sim.reset();
  sim.run(3);
  sim.settle();
  EXPECT_EQ(out.get(), 3);
}

TEST(SimulatorTest, TickListenersFireOncePerCommittedEdge) {
  Wire<int> out;
  Counter counter("counter", out);
  Simulator sim;
  sim.add(counter);
  std::vector<std::uint64_t> seenCycles;
  std::vector<int> seenValues;
  sim.addTickListener([&] { seenCycles.push_back(sim.cycle()); });
  sim.addTickListener([&] { seenValues.push_back(out.get()); });
  sim.reset();
  sim.run(3);
  // Listeners observe post-edge state with the cycle count already advanced.
  EXPECT_EQ(seenCycles, (std::vector<std::uint64_t>{1, 2, 3}));
  ASSERT_EQ(seenValues.size(), 3u);
}

TEST(SimulatorTest, MaxSettleIterationsIsConfigurable) {
  Simulator sim;
  sim.setMaxSettleIterations(7);
  EXPECT_EQ(sim.maxSettleIterations(), 7);
}

// --- event-driven kernel ------------------------------------------------

TEST(EventDrivenKernelTest, SettlesChainedModulesAndTracksPokes) {
  Wire<int> a{0}, b, c, d;
  Increment m3("m3", c, d);  // deliberately registered in reverse order
  Increment m2("m2", b, c);
  Increment m1("m1", a, b);
  Simulator sim;
  sim.setKernel(Simulator::Kernel::EventDriven);
  sim.add(m3);
  sim.add(m2);
  sim.add(m1);
  sim.settle();
  EXPECT_EQ(d.get(), 3);
  // Both poke flavours wake the fanout for the next settle.
  a.force(10);
  sim.settle();
  EXPECT_EQ(d.get(), 13);
  a.set(20);
  sim.settle();
  EXPECT_EQ(d.get(), 23);
}

TEST(EventDrivenKernelTest, OnlyModulesWhoseInputsChangedAreReEvaluated) {
  // Two independent chains; poking chain A must not re-evaluate chain B.
  Wire<int> a{0}, aOut, b{0}, bOut;
  Increment incA("incA", a, aOut);
  Increment incB("incB", b, bOut);
  Simulator sim;
  sim.setKernel(Simulator::Kernel::EventDriven);
  sim.add(incA);
  sim.add(incB);
  sim.settle();  // initial seed evaluates everything once
  const std::uint64_t evalsB = incB.evaluations();
  a.force(5);
  sim.settle();
  EXPECT_EQ(aOut.get(), 6);
  EXPECT_EQ(incB.evaluations(), evalsB) << "untouched chain re-evaluated";
  EXPECT_GT(incA.evaluations(), 1u);
}

TEST(EventDrivenKernelTest, SequentialModulesReSeedAfterEveryEdge) {
  Wire<int> out, plusOne;
  Counter counter("counter", out);
  Increment inc("inc", out, plusOne);
  Simulator sim;
  sim.setKernel(Simulator::Kernel::EventDriven);
  sim.add(counter);
  sim.add(inc);
  sim.reset();
  sim.run(4);
  sim.settle();
  EXPECT_EQ(out.get(), 4);
  EXPECT_EQ(plusOne.get(), 5);
  EXPECT_EQ(sim.cycle(), 4u);
}

TEST(EventDrivenKernelTest, CombinationalLoopThrows) {
  Wire<bool> y;
  Inverter inv("inv", y);
  Simulator sim;
  sim.setKernel(Simulator::Kernel::EventDriven);
  sim.add(inv);
  EXPECT_THROW(sim.settle(), std::runtime_error);
  // The failed settle drains its worklist (no stale dirty state), so the
  // simulator stays usable; poking the loop again re-detects it instead of
  // hanging.
  EXPECT_NO_THROW(sim.settle());
  y.force(!y.get());
  EXPECT_THROW(sim.settle(), std::runtime_error);
}

TEST(EventDrivenKernelTest, KernelSwitchMidRunIsRejected) {
  // Regression: setKernel used to allow switching mid-run, handing the new
  // kernel a stale worklist.  It must throw once a cycle has committed;
  // reset() reopens the selection window.
  Wire<int> out, plusOne;
  Counter counter("counter", out);
  Increment inc("inc", out, plusOne);
  Simulator sim;
  sim.add(counter);
  sim.add(inc);
  sim.reset();
  sim.run(3);  // naive
  EXPECT_THROW(sim.setKernel(Simulator::Kernel::EventDriven),
               std::logic_error);
  EXPECT_EQ(sim.kernel(), Simulator::Kernel::Naive);  // switch not applied
  EXPECT_THROW(sim.setKernel(Simulator::Kernel::ParallelEventDriven),
               std::logic_error);
  sim.settle();
  EXPECT_EQ(plusOne.get(), 4);  // the rejected switch did not disturb state
  // Re-selecting the current kernel is a no-op, not an error.
  EXPECT_NO_THROW(sim.setKernel(Simulator::Kernel::Naive));
  sim.reset();
  EXPECT_NO_THROW(sim.setKernel(Simulator::Kernel::EventDriven));
  sim.run(3);
  sim.settle();
  EXPECT_EQ(out.get(), 3);  // reset restarted the counter
  EXPECT_EQ(plusOne.get(), 4);
}

TEST(EventDrivenKernelTest, ModulesAddedMidRunAreSeeded) {
  Wire<int> a{1}, aOut;
  Increment inc("inc", a, aOut);
  Simulator sim;
  sim.setKernel(Simulator::Kernel::EventDriven);
  sim.add(inc);
  sim.settle();
  EXPECT_EQ(aOut.get(), 2);
  Wire<int> lateOut;
  Increment inc2("inc2", aOut, lateOut);
  sim.add(inc2);
  sim.settle();  // collection re-seeds: the new module evaluates
  EXPECT_EQ(lateOut.get(), 3);
}

TEST(EventDrivenKernelTest, MatchesNaiveKernelOnARandomizedCircuit) {
  // Same circuit built twice, one simulator per kernel; identical stimulus
  // must produce identical wire trajectories.
  struct Rig {
    Wire<int> in;
    Wire<int> stage1, stage2, counterOut;
    Counter counter;
    Increment inc1, inc2;
    Simulator sim;
    explicit Rig(Simulator::Kernel kernel)
        : counter("counter", counterOut),
          inc1("inc1", in, stage1),
          inc2("inc2", stage1, stage2) {
      sim.setKernel(kernel);
      sim.add(counter);
      sim.add(inc1);
      sim.add(inc2);
      sim.reset();
    }
  };
  Rig naive(Simulator::Kernel::Naive);
  Rig event(Simulator::Kernel::EventDriven);
  std::uint64_t lcg = 42;
  for (int cycleNo = 0; cycleNo < 200; ++cycleNo) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const int stimulus = static_cast<int>(lcg >> 60);
    naive.in.force(stimulus);
    event.in.force(stimulus);
    naive.sim.step();
    event.sim.step();
    naive.sim.settle();
    event.sim.settle();
    ASSERT_EQ(naive.stage2.get(), event.stage2.get()) << "cycle " << cycleNo;
    ASSERT_EQ(naive.counterOut.get(), event.counterOut.get());
    ASSERT_EQ(naive.sim.cycle(), event.sim.cycle());
  }
}

}  // namespace
}  // namespace rasoc::sim
