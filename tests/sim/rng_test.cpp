#include "sim/rng.hpp"

#include <gtest/gtest.h>

namespace rasoc::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceMatchesProbabilityRoughly) {
  Xoshiro256 rng(42);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.25) ? 1 : 0;
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace rasoc::sim
