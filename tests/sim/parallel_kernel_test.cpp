// Unit tests for Simulator::Kernel::ParallelEventDriven: partition
// construction (every module in exactly one domain, frontier edges
// symmetric for bidirectional cuts), barrier-round settle semantics,
// evaluateCalls() monotonicity across thread counts, combinational-loop
// detection per domain and on the frontier, and the poke-window /
// reconfiguration guards.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/module.hpp"
#include "sim/simulator.hpp"
#include "sim/wire.hpp"

namespace rasoc::sim {
namespace {

// y = x + 1 combinationally.
class Increment : public Module {
 public:
  Increment(std::string name, const Wire<int>& x, Wire<int>& y)
      : Module(std::move(name)), x_(&x), y_(&y) {
    sensitive(x);
  }

 protected:
  void evaluate() override { y_->set(x_->get() + 1); }

 private:
  const Wire<int>* x_;
  Wire<int>* y_;
};

// Registered counter with combinational output wire.
class Counter : public Module {
 public:
  Counter(std::string name, Wire<int>& out)
      : Module(std::move(name)), out_(&out) {
    declareSequential();
  }

 protected:
  void onReset() override { value_ = 0; }
  void evaluate() override { out_->set(value_); }
  void clockEdge() override { ++value_; }

 private:
  int value_ = 0;
  Wire<int>* out_;
};

// Oscillating combinational loop: y = !y.
class Inverter : public Module {
 public:
  Inverter(std::string name, Wire<bool>& y) : Module(std::move(name)), y_(&y) {
    sensitive(y);
  }

 protected:
  void evaluate() override { y_->set(!y_->get()); }

 private:
  Wire<bool>* y_;
};

// Calls Wire::force from inside evaluate() once armed - used to prove the
// poke-window guard also fires on pool worker threads.
class TriggeredPoker : public Module {
 public:
  TriggeredPoker(std::string name, const Wire<int>& trigger,
                 Wire<int>& victim)
      : Module(std::move(name)), trigger_(&trigger), victim_(&victim) {
    sensitive(trigger);
  }

 protected:
  void evaluate() override {
    if (trigger_->get() != 0) victim_->force(1);
  }

 private:
  const Wire<int>* trigger_;
  Wire<int>* victim_;
};

// A chain of `length` Increments w[0] -> w[1] -> ... -> w[length], spread
// over `threads` domains in contiguous blocks like Topology::partition.
struct ChainRig {
  std::vector<std::unique_ptr<Wire<int>>> wires;
  std::vector<std::unique_ptr<Increment>> mods;
  Simulator sim;

  ChainRig(int length, Simulator::Kernel kernel, int threads) {
    for (int i = 0; i <= length; ++i)
      wires.push_back(std::make_unique<Wire<int>>(0));
    for (int i = 0; i < length; ++i) {
      mods.push_back(std::make_unique<Increment>(
          "inc" + std::to_string(i), *wires[static_cast<std::size_t>(i)],
          *wires[static_cast<std::size_t>(i) + 1]));
      mods.back()->setPartitionHint(i * threads / length);
      sim.add(*mods.back());
    }
    sim.setThreads(threads);
    sim.setKernel(kernel);
    sim.settle();
  }

  int out() const { return wires.back()->get(); }
};

TEST(ParallelPartitionTest, EveryModuleInExactlyOneDomain) {
  ChainRig rig(6, Simulator::Kernel::ParallelEventDriven, 3);
  const Partition& part = rig.sim.partition();
  ASSERT_EQ(part.domains, 3);
  ASSERT_EQ(part.domainOf.size(), 6u);
  ASSERT_EQ(part.isFrontier.size(), 6u);
  std::vector<std::size_t> counted(3, 0);
  for (const int d : part.domainOf) {
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 3);
    ++counted[static_cast<std::size_t>(d)];
  }
  EXPECT_EQ(counted, part.domainModules);
  EXPECT_EQ(std::accumulate(part.domainModules.begin(),
                            part.domainModules.end(), std::size_t{0}),
            6u);
  std::size_t frontier = 0;
  for (const char f : part.isFrontier) frontier += f != 0 ? 1 : 0;
  EXPECT_EQ(frontier, part.frontierModules);
  // Chain 0,0,1,1,2,2: the two writers/readers at each cut are frontier,
  // the chain ends are interior.
  EXPECT_EQ(part.isFrontier[0], 0);
  EXPECT_EQ(part.isFrontier[1], 1);  // writes into domain 1
  EXPECT_EQ(part.isFrontier[2], 1);  // reads from domain 0
  EXPECT_EQ(part.isFrontier[3], 1);
  EXPECT_EQ(part.isFrontier[4], 1);
  EXPECT_EQ(part.isFrontier[5], 0);
  using Edge = std::pair<int, int>;
  EXPECT_EQ(part.frontierEdges, (std::vector<Edge>{{0, 1}, {1, 2}}));
}

TEST(ParallelPartitionTest, FrontierEdgesSymmetricOnBidirectionalCut) {
  // Two independent chains crossing the same cut in opposite directions:
  // the edge list must contain both (0,1) and (1,0).
  Wire<int> a0, a1, a2, b0, b1, b2;
  Increment fwd1("fwd1", a0, a1), fwd2("fwd2", a1, a2);
  Increment rev1("rev1", b0, b1), rev2("rev2", b1, b2);
  fwd1.setPartitionHint(0);
  fwd2.setPartitionHint(1);
  rev1.setPartitionHint(1);
  rev2.setPartitionHint(0);
  Simulator sim;
  sim.add(fwd1);
  sim.add(fwd2);
  sim.add(rev1);
  sim.add(rev2);
  sim.setThreads(2);
  sim.setKernel(Simulator::Kernel::ParallelEventDriven);
  using Edge = std::pair<int, int>;
  EXPECT_EQ(sim.partition().frontierEdges,
            (std::vector<Edge>{{0, 1}, {1, 0}}));
}

TEST(ParallelPartitionTest, UnhintedModulesLandInDomainZero) {
  Wire<int> a, b;
  Increment inc("inc", a, b);  // no hint
  Simulator sim;
  sim.add(inc);
  sim.setThreads(4);
  sim.setKernel(Simulator::Kernel::ParallelEventDriven);
  const Partition& part = sim.partition();
  EXPECT_EQ(part.domainOf[0], 0);
  EXPECT_EQ(part.domainModules,
            (std::vector<std::size_t>{1, 0, 0, 0}));
  EXPECT_EQ(part.frontierModules, 0u);
  EXPECT_TRUE(part.frontierEdges.empty());
}

TEST(ParallelPartitionTest, AccessorRequiresParallelKernel) {
  Simulator sim;
  EXPECT_THROW(sim.partition(), std::logic_error);
  sim.setKernel(Simulator::Kernel::EventDriven);
  EXPECT_THROW(sim.partition(), std::logic_error);
}

TEST(ParallelKernelTest, BarrierRoundsPropagateAcrossDomainsInOneSettle) {
  // A value poked into domain 0 must traverse all three domains - several
  // barrier-separated rounds - within a single settle() call.
  ChainRig rig(6, Simulator::Kernel::ParallelEventDriven, 3);
  EXPECT_EQ(rig.out(), 6);
  rig.wires[0]->force(10);
  rig.sim.settle();
  EXPECT_EQ(rig.out(), 16);
  for (int i = 0; i <= 6; ++i)
    EXPECT_EQ(rig.wires[static_cast<std::size_t>(i)]->get(), 10 + i)
        << "wire " << i;
  EXPECT_GT(rig.sim.parallelStats().rounds, 0u);
}

TEST(ParallelKernelTest, MatchesEventDrivenOnAPokedChainForAllThreadCounts) {
  // Identical stimulus against an EventDriven reference: every wire value
  // must match after every operation, for 1, 2, 3 and 4 threads.
  const int length = 24;
  for (const int threads : {1, 2, 3, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ChainRig reference(length, Simulator::Kernel::EventDriven, 1);
    ChainRig parallel(length, Simulator::Kernel::ParallelEventDriven,
                      threads);
    const auto compareAll = [&] {
      for (int i = 0; i <= length; ++i)
        ASSERT_EQ(parallel.wires[static_cast<std::size_t>(i)]->get(),
                  reference.wires[static_cast<std::size_t>(i)]->get())
            << "wire " << i;
    };
    compareAll();
    for (int round = 0; round < 8; ++round) {
      const int pokeAt = (round * 7) % (length / 2);
      const int value = round * 13 + 5;
      reference.wires[static_cast<std::size_t>(pokeAt)]->force(value);
      parallel.wires[static_cast<std::size_t>(pokeAt)]->force(value);
      reference.sim.settle();
      parallel.sim.settle();
      compareAll();
    }
  }
}

TEST(ParallelKernelTest, SequentialModulesReSeedEveryCycle) {
  // Counter (domain 0) -> two increments (domain 1): registered state must
  // propagate across the cut after every tick, matching EventDriven.
  struct CounterRig {
    Wire<int> c0, c1, c2;
    Counter counter{"counter", c0};
    Increment inc1{"inc1", c0, c1};
    Increment inc2{"inc2", c1, c2};
    Simulator sim;

    explicit CounterRig(Simulator::Kernel kernel, int threads) {
      counter.setPartitionHint(0);
      inc1.setPartitionHint(1);
      inc2.setPartitionHint(1);
      sim.add(counter);
      sim.add(inc1);
      sim.add(inc2);
      sim.setThreads(threads);
      sim.setKernel(kernel);
      sim.reset();
    }
  };
  CounterRig reference(Simulator::Kernel::EventDriven, 1);
  CounterRig parallel(Simulator::Kernel::ParallelEventDriven, 2);
  for (int cycle = 0; cycle < 5; ++cycle) {
    reference.sim.step();
    parallel.sim.step();
    reference.sim.settle();
    parallel.sim.settle();
    ASSERT_EQ(parallel.c2.get(), reference.c2.get()) << "cycle " << cycle;
    ASSERT_EQ(parallel.c2.get(), cycle + 3);
  }
}

TEST(ParallelKernelTest, EvaluateCallsMonotonicUnderAllThreadCounts) {
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ChainRig rig(12, Simulator::Kernel::ParallelEventDriven, threads);
    std::uint64_t last = rig.sim.evaluateCalls();
    EXPECT_GT(last, 0u);  // discovery + initial settle did work
    const auto expectMonotonic = [&] {
      const std::uint64_t now = rig.sim.evaluateCalls();
      EXPECT_GE(now, last);
      last = now;
    };
    rig.sim.settle();  // already settled: no new work required, no decrease
    expectMonotonic();
    rig.wires[0]->force(5);
    rig.sim.settle();
    expectMonotonic();
    rig.sim.step();
    expectMonotonic();
    rig.sim.run(3);
    expectMonotonic();
    EXPECT_GT(rig.sim.evaluateCalls(), 0u);
    // The fold is deterministic: per-domain counters sum to the total the
    // stats report.
    const auto& stats = rig.sim.parallelStats();
    const std::uint64_t domainTotal =
        std::accumulate(stats.domainEvaluations.begin(),
                        stats.domainEvaluations.end(), std::uint64_t{0});
    EXPECT_EQ(domainTotal + stats.frontierEvaluations +
                  rig.sim.moduleCount(),  // the discovery pass
              rig.sim.evaluateCalls());
  }
}

TEST(ParallelKernelTest, InteriorCombinationalLoopThrowsAndStaysUsable) {
  Wire<bool> osc;
  Wire<int> a, b;
  Inverter inv("inv", osc);
  Increment inc("inc", a, b);
  inv.setPartitionHint(0);
  inc.setPartitionHint(1);
  Simulator sim;
  sim.add(inv);
  sim.add(inc);
  sim.setThreads(2);
  sim.setKernel(Simulator::Kernel::ParallelEventDriven);
  EXPECT_THROW(sim.settle(), std::runtime_error);
  // The throw cleaned every queued dirty flag: the simulator stays usable
  // and a quiescent settle succeeds.
  EXPECT_NO_THROW(sim.settle());
  // Re-waking the oscillator finds the loop again.
  osc.force(true);
  EXPECT_THROW(sim.settle(), std::runtime_error);
}

TEST(ParallelKernelTest, CrossDomainCombinationalLoopThrows) {
  // b = a + 1 in domain 0, a = b + 1 in domain 1: both modules are
  // frontier, so the loop must trip the frontier-phase bound.
  Wire<int> a, b;
  Increment fwd("fwd", a, b);
  Increment back("back", b, a);
  fwd.setPartitionHint(0);
  back.setPartitionHint(1);
  Simulator sim;
  sim.add(fwd);
  sim.add(back);
  sim.setThreads(2);
  sim.setKernel(Simulator::Kernel::ParallelEventDriven);
  EXPECT_THROW(sim.settle(), std::runtime_error);
  EXPECT_NO_THROW(sim.settle());
}

TEST(ParallelKernelTest, ForceDuringParallelSettleThrows) {
  // The poker stays quiet during the partition's discovery pass (trigger
  // still 0) and fires inside the parallel phase, where Wire::force must
  // throw - also on pool worker threads.
  Wire<int> trigger, victim, a, b;
  TriggeredPoker poker("poker", trigger, victim);
  Increment inc("inc", a, b);
  poker.setPartitionHint(0);
  inc.setPartitionHint(1);
  Simulator sim;
  sim.add(poker);
  sim.add(inc);
  sim.setThreads(2);
  sim.setKernel(Simulator::Kernel::ParallelEventDriven);
  sim.settle();
  trigger.force(1);
  a.force(7);  // keeps domain 1 busy too, exercising the pool path
  EXPECT_THROW(sim.settle(), std::logic_error);
}

TEST(ParallelKernelTest, ThreadAndKernelReconfigurationGuards) {
  ChainRig rig(6, Simulator::Kernel::ParallelEventDriven, 2);
  EXPECT_THROW(rig.sim.setThreads(0), std::invalid_argument);
  rig.sim.run(1);
  EXPECT_THROW(rig.sim.setThreads(4), std::logic_error);
  EXPECT_THROW(rig.sim.setKernel(Simulator::Kernel::EventDriven),
               std::logic_error);
  EXPECT_NO_THROW(rig.sim.setThreads(2));  // unchanged count: no-op
  EXPECT_EQ(rig.sim.threads(), 2);
  rig.sim.reset();
  EXPECT_NO_THROW(rig.sim.setThreads(4));  // reset reopens the window
  rig.sim.settle();
  EXPECT_EQ(rig.out(), 6);
}

TEST(ParallelKernelTest, CompiledKernelIsSingleThreadedBothWays) {
  // The compiled kernel's op tape runs on the calling thread, so the
  // validation must be symmetric: selecting it with workers configured
  // throws, and raising the worker count under it throws.
  {
    Simulator sim;
    sim.setThreads(2);
    EXPECT_THROW(sim.setKernel(Simulator::Kernel::Compiled),
                 std::logic_error);
  }
  {
    Simulator sim;
    sim.setKernel(Simulator::Kernel::Compiled);
    EXPECT_THROW(sim.setThreads(2), std::logic_error);
    EXPECT_NO_THROW(sim.setThreads(1));  // unchanged count: no-op
    EXPECT_EQ(sim.threads(), 1);
    // Switching away from the compiled kernel reopens multi-threading.
    sim.setKernel(Simulator::Kernel::ParallelEventDriven);
    EXPECT_NO_THROW(sim.setThreads(2));
  }
}

TEST(ParallelKernelTest, ModulesAddedBetweenSettlesTriggerRepartition) {
  Wire<int> a{1}, aOut, lateOut;
  Increment inc("inc", a, aOut);
  inc.setPartitionHint(0);
  Simulator sim;
  sim.add(inc);
  sim.setThreads(2);
  sim.setKernel(Simulator::Kernel::ParallelEventDriven);
  sim.settle();
  EXPECT_EQ(aOut.get(), 2);
  Increment inc2("inc2", aOut, lateOut);
  inc2.setPartitionHint(1);
  sim.add(inc2);
  sim.settle();  // re-collection rebuilds the partition and re-seeds
  EXPECT_EQ(lateOut.get(), 3);
  EXPECT_EQ(sim.partition().domainOf.size(), 2u);
}

}  // namespace
}  // namespace rasoc::sim
