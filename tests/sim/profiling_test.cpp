// Per-module evaluate() profiling (Simulator::enableProfiling): counts
// attribute every evaluation, stay empty while disabled, survive reset()
// and rank deterministically, under all three settle kernels.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "sim/module.hpp"
#include "sim/simulator.hpp"
#include "sim/wire.hpp"

namespace rasoc::sim {
namespace {

// y = x + 1 combinationally.
class Increment : public Module {
 public:
  Increment(std::string name, const Wire<int>& x, Wire<int>& y)
      : Module(std::move(name)), x_(&x), y_(&y) {
    sensitive(x);
  }

 protected:
  void evaluate() override { y_->set(x_->get() + 1); }

 private:
  const Wire<int>* x_;
  Wire<int>* y_;
};

// Registered counter driving the chain input.
class Counter : public Module {
 public:
  Counter(std::string name, Wire<int>& out)
      : Module(std::move(name)), out_(&out) {
    declareSequential();
  }

 protected:
  void onReset() override { value_ = 0; }
  void evaluate() override { out_->set(value_); }
  void clockEdge() override { ++value_; }

 private:
  int value_ = 0;
  Wire<int>* out_;
};

struct Chain {
  Wire<int> w0, w1, w2, w3;
  Counter counter{"counter", w0};
  Increment a{"a", w0, w1};
  Increment b{"b", w1, w2};
  Increment c{"c", w2, w3};

  void addTo(Simulator& sim) {
    sim.add(counter);
    sim.add(a);
    sim.add(b);
    sim.add(c);
  }
};

std::uint64_t sum(const std::vector<std::uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
}

TEST(ProfilingTest, DisabledByDefaultAndCountsNothing) {
  Simulator sim;
  Chain chain;
  chain.addTo(sim);
  sim.reset();
  sim.run(10);
  EXPECT_FALSE(sim.profilingEnabled());
  EXPECT_TRUE(sim.profileCounts().empty());
  EXPECT_TRUE(sim.hottestModules(3).empty());
  EXPECT_GT(sim.evaluateCalls(), 0u) << "the run itself must have settled";
}

TEST(ProfilingTest, CountsAccountForEveryEvaluation) {
  for (const auto kernel :
       {Simulator::Kernel::Naive, Simulator::Kernel::EventDriven}) {
    SCOPED_TRACE(static_cast<int>(kernel));
    Simulator sim;
    sim.setKernel(kernel);
    Chain chain;
    chain.addTo(sim);
    sim.enableProfiling();
    ASSERT_TRUE(sim.profilingEnabled());
    sim.reset();
    sim.run(25);
    // Every evaluate() the kernel issued is attributed to exactly one
    // module.
    EXPECT_EQ(sum(sim.profileCounts()), sim.evaluateCalls());
    for (const std::uint64_t c : sim.profileCounts()) EXPECT_GT(c, 0u);
  }
}

TEST(ProfilingTest, ParallelKernelAttributesAcrossDomains) {
  Simulator sim;
  sim.setKernel(Simulator::Kernel::ParallelEventDriven);
  sim.setThreads(2);
  Chain chain;
  chain.addTo(sim);
  sim.enableProfiling();
  sim.reset();
  sim.run(25);
  EXPECT_EQ(sum(sim.profileCounts()), sim.evaluateCalls());
}

TEST(ProfilingTest, HottestModulesRanksDeterministically) {
  Simulator sim;
  Chain chain;
  chain.addTo(sim);
  sim.enableProfiling();
  sim.reset();
  sim.run(20);
  const auto top = sim.hottestModules(10);
  ASSERT_EQ(top.size(), 4u) << "four modules registered";
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].second, top[i].second) << "sorted by count desc";
  // Ties break toward the lower module index, so repeated queries agree.
  EXPECT_EQ(top, sim.hottestModules(10));
  EXPECT_EQ(sim.hottestModules(2).size(), 2u);
}

TEST(ProfilingTest, CountsSurviveReset) {
  Simulator sim;
  Chain chain;
  chain.addTo(sim);
  sim.enableProfiling();
  sim.reset();
  sim.run(10);
  const std::uint64_t afterFirst = sum(sim.profileCounts());
  ASSERT_GT(afterFirst, 0u);
  sim.reset();
  sim.run(10);
  EXPECT_GT(sum(sim.profileCounts()), afterFirst)
      << "profiling accumulates across reset()";
}

}  // namespace
}  // namespace rasoc::sim
