#include "sim/wire.hpp"

#include <gtest/gtest.h>

namespace rasoc::sim {
namespace {

TEST(WireTest, DefaultConstructedHoldsValueInitialized) {
  Wire<bool> b;
  Wire<int> i;
  EXPECT_FALSE(b.get());
  EXPECT_EQ(i.get(), 0);
}

TEST(WireTest, InitialValueIsVisible) {
  Wire<int> w{42};
  EXPECT_EQ(w.get(), 42);
}

TEST(WireTest, SetChangesValueAndMarksContext) {
  Wire<int> w{0};
  SettleContext::clearChanged();
  w.set(7);
  EXPECT_EQ(w.get(), 7);
  EXPECT_TRUE(SettleContext::changed());
}

TEST(WireTest, SettingSameValueDoesNotMarkContext) {
  Wire<int> w{7};
  SettleContext::clearChanged();
  w.set(7);
  EXPECT_FALSE(SettleContext::changed());
}

TEST(WireTest, ForceDoesNotMarkContext) {
  Wire<int> w{0};
  SettleContext::clearChanged();
  w.force(9);
  EXPECT_EQ(w.get(), 9);
  EXPECT_FALSE(SettleContext::changed());
}

TEST(WireTest, ClearChangedResetsFlag) {
  Wire<int> w{0};
  w.set(1);
  SettleContext::clearChanged();
  EXPECT_FALSE(SettleContext::changed());
}

TEST(WireTest, RepeatedTogglesEachMarkContext) {
  Wire<bool> w;
  for (int i = 0; i < 4; ++i) {
    SettleContext::clearChanged();
    w.set(i % 2 == 0);
    EXPECT_TRUE(SettleContext::changed()) << "iteration " << i;
  }
}

}  // namespace
}  // namespace rasoc::sim
