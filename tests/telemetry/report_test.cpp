#include "telemetry/report.hpp"

#include <gtest/gtest.h>

namespace rasoc::telemetry {
namespace {

TEST(ReportTest, SectionsAndKeysRenderInInsertionOrder) {
  RunReport report("demo");
  report.set("zrun", "cycles", std::uint64_t{100});
  report.set("zrun", "load", 0.25);
  report.set("alpha", "ok", true);
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"report\": \"demo\""), std::string::npos);
  // Insertion order wins over lexicographic order.
  EXPECT_LT(json.find("\"zrun\""), json.find("\"alpha\""));
  EXPECT_LT(json.find("\"cycles\": 100"), json.find("\"load\": 0.25"));
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

TEST(ReportTest, RepeatedKeyOverwritesInPlace) {
  RunReport report("demo");
  report.set("run", "seed", std::uint64_t{1});
  report.set("run", "mode", "fast");
  report.set("run", "seed", std::uint64_t{2});
  const std::string json = report.toJson();
  EXPECT_EQ(json.find("\"seed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 2"), std::string::npos);
  EXPECT_LT(json.find("\"seed\""), json.find("\"mode\""));
}

TEST(ReportTest, EscapesStringsAndRejectsNonFiniteNumbers) {
  RunReport report("q\"uote");
  report.set("s", "newline", "a\nb");
  report.set("s", "tab\tkey", "v");
  report.set("s", "inf", 1.0 / 0.0);
  const std::string json = report.toJson();
  EXPECT_NE(json.find("q\\\"uote"), std::string::npos);
  EXPECT_NE(json.find("a\\nb"), std::string::npos);
  EXPECT_NE(json.find("tab\\tkey"), std::string::npos);
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
}

TEST(ReportTest, SerializesRegistryInNameOrder) {
  MetricsRegistry registry;
  registry.counter("r0,0.flits_routed").inc(7);
  registry.counter("a.counter").inc(1);
  registry.gauge("mesh.in_flight").sample(3.0);
  registry.histogram("occ", {1.0, 2.0}).observe(1.5);

  RunReport report("run");
  report.attachRegistry(registry);
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_LT(json.find("\"a.counter\": 1"),
            json.find("\"r0,0.flits_routed\": 7"));
  EXPECT_NE(json.find("\"mesh.in_flight\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\": 1"), std::string::npos);
  // Histogram: one count in the (1,2] bucket, overflow bucket labelled inf.
  EXPECT_NE(json.find("{\"le\": 2, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

TEST(ReportTest, IdenticalInputsProduceByteIdenticalJson) {
  const auto build = [] {
    MetricsRegistry registry;
    registry.counter("c").inc(5);
    registry.gauge("g").sample(2.5);
    RunReport report("same");
    report.set("run", "cycles", std::uint64_t{10});
    report.set("run", "load", 0.1);
    report.attachRegistry(registry);
    return report.toJson();
  };
  EXPECT_EQ(build(), build());
}

TEST(ReportTest, NumberFormattingIsStable) {
  EXPECT_EQ(RunReport::formatNumber(0.25), "0.25");
  EXPECT_EQ(RunReport::formatNumber(3.0), "3");
  EXPECT_EQ(RunReport::formatNumber(-0.0), "-0");
}

}  // namespace
}  // namespace rasoc::telemetry
