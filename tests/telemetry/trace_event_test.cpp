// Unit tests for the trace primitives: the bounded ring sink, the event
// describe() renderer, the Perfetto trace_events JSON writer, and the
// in-process schema validator the CI smoke check relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/trace_event.hpp"

namespace rasoc::telemetry {
namespace {

TraceEvent makeEvent(std::uint64_t cycle, std::uint64_t packet,
                     TraceEventKind kind) {
  TraceEvent e;
  e.cycle = cycle;
  e.packet = packet;
  e.kind = kind;
  return e;
}

// --- TraceSink -------------------------------------------------------------

TEST(TraceSinkTest, RecordsInOrderBelowCapacity) {
  TraceSink sink(8);
  EXPECT_EQ(sink.capacity(), 8u);
  EXPECT_EQ(sink.size(), 0u);
  for (std::uint64_t i = 0; i < 5; ++i)
    sink.record(makeEvent(i, i + 1, TraceEventKind::LinkTransfer));
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  for (std::size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(sink.at(i).cycle, i);
    EXPECT_EQ(sink.at(i).packet, i + 1);
  }
}

TEST(TraceSinkTest, OverwritesOldestWhenFull) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 10; ++i)
    sink.record(makeEvent(i, i, TraceEventKind::FifoEnqueue));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  // Retained window is the newest four, oldest first.
  const std::vector<TraceEvent> events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].cycle, 6 + i);
}

TEST(TraceSinkTest, CapacityClampedToOne) {
  TraceSink sink(0);
  EXPECT_EQ(sink.capacity(), 1u);
  sink.record(makeEvent(1, 1, TraceEventKind::PacketQueued));
  sink.record(makeEvent(2, 2, TraceEventKind::PacketEjected));
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).cycle, 2u);
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(TraceSinkTest, ClearForgetsEverything) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 6; ++i)
    sink.record(makeEvent(i, i, TraceEventKind::ArbGrant));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  sink.record(makeEvent(42, 7, TraceEventKind::ArbGrant));
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).cycle, 42u);
}

// --- describe --------------------------------------------------------------

TEST(TraceEventTest, DescribeRendersLocationFlowAndValue) {
  TraceEvent e;
  e.cycle = 123;
  e.packet = 7;
  e.node = 5;
  e.port = 2;  // East in router/params.hpp Port order
  e.src = 0;
  e.dst = 12;
  e.value = 2;
  e.kind = TraceEventKind::FifoDequeue;
  const std::string line = describe(e);
  EXPECT_NE(line.find("c123"), std::string::npos) << line;
  EXPECT_NE(line.find("fifo_dequeue"), std::string::npos) << line;
  EXPECT_NE(line.find("r5.E"), std::string::npos) << line;
  EXPECT_NE(line.find("pkt7"), std::string::npos) << line;
  EXPECT_NE(line.find("0->12"), std::string::npos) << line;
}

TEST(TraceEventTest, PortLettersFollowParamsOrder) {
  // Port enum order is Local, North, East, South, West.
  const char* expected[] = {"L", "N", "E", "S", "W"};
  for (int p = 0; p < 5; ++p) {
    TraceEvent e;
    e.node = 1;
    e.port = static_cast<std::int8_t>(p);
    e.kind = TraceEventKind::LinkTransfer;
    EXPECT_NE(describe(e).find(std::string("r1.") + expected[p]),
              std::string::npos)
        << describe(e);
  }
}

TEST(TraceEventTest, KindNamesAreDistinct) {
  std::vector<std::string> names;
  for (int k = 0; k <= static_cast<int>(TraceEventKind::PacketEjected); ++k)
    names.emplace_back(name(static_cast<TraceEventKind>(k)));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_FALSE(names[i].empty());
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_NE(names[i], names[j]);
  }
}

// --- PerfettoWriter --------------------------------------------------------

TEST(PerfettoWriterTest, EmitsValidJsonWithAllPhases) {
  PerfettoWriter writer;
  writer.processName(100, "r0 (0,0)");
  writer.threadName(100, 1, "in.N");
  writer.complete(100, 1, 10, 3, "pkt1",
                  {{"kind", "packet"}, {"hops", "2"}});
  writer.instant(100, 1, 15, "eject");
  writer.counter(0, 5, "evals/cycle", {{"evals", 12.5}, {"frontier", 3.0}});
  EXPECT_EQ(writer.events(), 5u);
  const std::string json = writer.toJson();
  std::string error;
  EXPECT_TRUE(validatePerfettoJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(PerfettoWriterTest, OutputIsDeterministic) {
  auto build = [] {
    PerfettoWriter writer;
    writer.processName(1, "flow 0->3");
    writer.complete(1, 4, 7, 9, "pkt2", {{"blocked", "1"}});
    writer.instant(1, 4, 16, "eject");
    return writer.toJson();
  };
  EXPECT_EQ(build(), build());
}

TEST(PerfettoWriterTest, EscapesStringsInNamesAndArgs) {
  PerfettoWriter writer;
  writer.complete(1, 1, 0, 1, "quote\"back\\slash",
                  {{"k", "line\nbreak\ttab"}});
  const std::string json = writer.toJson();
  std::string error;
  EXPECT_TRUE(validatePerfettoJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos) << json;
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos) << json;
}

TEST(PerfettoWriterTest, EmptyWriterStillValidates) {
  PerfettoWriter writer;
  std::string error;
  EXPECT_TRUE(validatePerfettoJson(writer.toJson(), &error)) << error;
}

// --- validatePerfettoJson --------------------------------------------------

TEST(PerfettoValidatorTest, AcceptsMinimalTrace) {
  EXPECT_TRUE(validatePerfettoJson(
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"ph":"X","pid":1,"tid":2,"ts":0,"dur":3,"name":"a"}]})"));
}

TEST(PerfettoValidatorTest, RejectsMalformedInput) {
  std::string error;
  // Truncated JSON.
  EXPECT_FALSE(validatePerfettoJson(R"({"traceEvents":[)", &error));
  EXPECT_FALSE(error.empty());
  // Root is not an object.
  EXPECT_FALSE(validatePerfettoJson(R"([1,2,3])"));
  // Missing traceEvents.
  EXPECT_FALSE(validatePerfettoJson(R"({"foo":[]})"));
  // traceEvents not an array.
  EXPECT_FALSE(validatePerfettoJson(R"({"traceEvents":{}})"));
  // Unknown phase.
  EXPECT_FALSE(validatePerfettoJson(
      R"({"traceEvents":[{"ph":"Z","pid":1,"ts":0,"name":"a"}]})"));
  // X span without dur.
  EXPECT_FALSE(validatePerfettoJson(
      R"({"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0,"name":"a"}]})"));
  // Missing name.
  EXPECT_FALSE(validatePerfettoJson(
      R"({"traceEvents":[{"ph":"i","pid":1,"tid":1,"ts":0}]})"));
  // Trailing garbage after the root object.
  EXPECT_FALSE(validatePerfettoJson(R"({"traceEvents":[]} trailing)"));
}

}  // namespace
}  // namespace rasoc::telemetry
