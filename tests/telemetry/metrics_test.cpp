#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

namespace rasoc::telemetry {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, TracksLastMinMaxMean) {
  Gauge g;
  EXPECT_EQ(g.samples(), 0u);
  EXPECT_EQ(g.mean(), 0.0);
  g.sample(4.0);
  g.sample(-2.0);
  g.sample(1.0);
  EXPECT_EQ(g.samples(), 3u);
  EXPECT_DOUBLE_EQ(g.last(), 1.0);
  EXPECT_DOUBLE_EQ(g.min(), -2.0);
  EXPECT_DOUBLE_EQ(g.max(), 4.0);
  EXPECT_DOUBLE_EQ(g.mean(), 1.0);
}

TEST(HistogramTest, BucketsByInclusiveUpperBound) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.0, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0}) h.observe(v);
  ASSERT_EQ(h.bucketCounts().size(), 4u);
  EXPECT_EQ(h.bucketCounts()[0], 2u);  // 0, 1
  EXPECT_EQ(h.bucketCounts()[1], 2u);  // 1.5, 2
  EXPECT_EQ(h.bucketCounts()[2], 2u);  // 3, 4
  EXPECT_EQ(h.bucketCounts()[3], 1u);  // 100 -> overflow
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 111.5);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, LinearBoundsMatchFifoDepth) {
  const auto bounds = Histogram::linearBounds(4);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_THROW(Histogram::linearBounds(0), std::invalid_argument);
}

TEST(RegistryTest, AccessorsCreateOnFirstUseAndReturnStableRefs) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  a.inc(3);
  // Creating more metrics must not move the first one.
  for (int i = 0; i < 100; ++i)
    registry.counter("c" + std::to_string(i)).inc();
  EXPECT_EQ(&registry.counter("a"), &a);
  EXPECT_EQ(registry.counter("a").value(), 3u);
  EXPECT_EQ(registry.size(), 101u);
}

TEST(RegistryTest, FindDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.findCounter("missing"), nullptr);
  EXPECT_EQ(registry.findGauge("missing"), nullptr);
  EXPECT_EQ(registry.findHistogram("missing"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.counterValue("missing"), 0u);
  EXPECT_EQ(registry.counterValue("missing", 7), 7u);
}

TEST(RegistryTest, HistogramReRegistrationChecksBounds) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("occ", {1.0, 2.0});
  h.observe(1.0);
  // Same bounds: same object.
  EXPECT_EQ(&registry.histogram("occ", {1.0, 2.0}), &h);
  EXPECT_THROW(registry.histogram("occ", {1.0, 3.0}), std::invalid_argument);
}

TEST(RegistryTest, IterationIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.counter("mid");
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters())
    names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace rasoc::telemetry
