#include "telemetry/heatmap.hpp"

#include <gtest/gtest.h>

namespace rasoc::telemetry {
namespace {

TEST(HeatmapTest, CellsDefaultToZeroAndRoundTrip) {
  MeshHeatmap map(3, 2);
  EXPECT_EQ(map.at(2, 1), 0.0);
  map.set(2, 1, 0.5);
  EXPECT_DOUBLE_EQ(map.at(2, 1), 0.5);
  EXPECT_DOUBLE_EQ(map.maxValue(), 0.5);
  EXPECT_THROW(map.at(3, 0), std::out_of_range);
  EXPECT_THROW(map.set(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(MeshHeatmap(0, 1), std::invalid_argument);
}

TEST(HeatmapTest, AsciiScalesAgainstMax) {
  MeshHeatmap map(2, 1, "util");
  map.set(0, 0, 1.0);
  map.set(1, 0, 0.5);
  const std::string ascii = map.ascii();
  // Max cell renders 99/99 with the brightest glyph, half-max 50 of 99.
  EXPECT_NE(ascii.find("@99"), std::string::npos);
  EXPECT_NE(ascii.find("50"), std::string::npos);
  EXPECT_NE(ascii.find("util"), std::string::npos);
  EXPECT_NE(ascii.find("max 1"), std::string::npos);
}

TEST(HeatmapTest, AllZeroGridRendersWithoutDividingByZero) {
  MeshHeatmap map(2, 2);
  const std::string ascii = map.ascii();
  EXPECT_NE(ascii.find("00"), std::string::npos);
  EXPECT_EQ(ascii.find("nan"), std::string::npos);
}

TEST(HeatmapTest, MeshOrientationPutsHighYFirst) {
  MeshHeatmap map(1, 2);
  map.set(0, 1, 1.0);
  const std::string ascii = map.ascii();
  // Row y=1 (the set cell) must print before row y=0.
  EXPECT_LT(ascii.find("y=1"), ascii.find("y=0"));
}

TEST(HeatmapTest, CsvIsRowMajorAndDeterministic) {
  MeshHeatmap map(2, 2, "congestion");
  map.set(0, 0, 0.25);
  map.set(1, 1, 0.75);
  EXPECT_EQ(map.csv(),
            "x,y,congestion\n"
            "0,0,0.25\n"
            "1,0,0\n"
            "0,1,0\n"
            "1,1,0.75\n");
}

}  // namespace
}  // namespace rasoc::telemetry
