// Gate-level builder tests, including the LUT-count cross-checks against
// the technology mapper (the Figure 8 law, counter sizes).
#include "gates/blocks.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "tech/mapper.hpp"

namespace rasoc::gates {
namespace {

TEST(MuxTreeTest, FourToOneSelectsEveryInput) {
  GateNetlist nl;
  std::vector<std::vector<NodeId>> in;
  std::vector<NodeId> pins;
  for (int i = 0; i < 4; ++i) {
    pins.push_back(nl.addInput("i" + std::to_string(i)));
    in.push_back({pins.back()});
  }
  const auto s0 = nl.addInput("s0");
  const auto s1 = nl.addInput("s1");
  const auto out = buildMuxTree(nl, in, {s0, s1});
  ASSERT_EQ(out.size(), 1u);
  for (int sel = 0; sel < 4; ++sel) {
    for (int i = 0; i < 4; ++i) nl.setInput(pins[i], i == sel);
    nl.setInput(s0, sel & 1);
    nl.setInput(s1, sel & 2);
    nl.evaluate();
    EXPECT_TRUE(nl.value(out[0])) << "sel " << sel;
    nl.setInput(pins[sel], false);
    nl.evaluate();
    EXPECT_FALSE(nl.value(out[0])) << "sel " << sel;
  }
}

TEST(MuxTreeTest, LutCountMatchesTheMapperLaw) {
  // Figure 8 / Flex10keMapper: a k:1 mux costs (k-1) LUTs per bit.
  for (int k : {2, 4, 8}) {
    for (int width : {1, 8, 34}) {
      GateNetlist nl;
      std::vector<std::vector<NodeId>> in(static_cast<std::size_t>(k));
      for (auto& bus : in)
        for (int b = 0; b < width; ++b) bus.push_back(nl.addConst(false));
      std::vector<NodeId> sel;
      for (int s = 0; (1 << s) < k; ++s) sel.push_back(nl.addConst(false));
      buildMuxTree(nl, in, sel);
      EXPECT_EQ(nl.lutCount(),
                tech::Flex10keMapper::muxLutsPerBit(k) * width)
          << "k=" << k << " width=" << width;
    }
  }
}

TEST(UpDownCounterTest, CountsCorrectlyThroughRandomStrobes) {
  GateNetlist nl;
  const auto inc = nl.addInput("inc");
  const auto dec = nl.addInput("dec");
  const auto counter = buildUpDownCounter(nl, 4, inc, dec);
  nl.reset();
  sim::Xoshiro256 rng(21);
  unsigned expected = 0;
  for (int step = 0; step < 2000; ++step) {
    const bool i = rng.chance(0.5);
    const bool d = rng.chance(0.5);
    nl.setInput(inc, i);
    nl.setInput(dec, d);
    nl.step();
    nl.evaluate();
    if (i && !d) expected = (expected + 1) & 0xf;
    if (d && !i) expected = (expected + 15) & 0xf;  // wrap-around -1
    unsigned got = 0;
    for (std::size_t b = 0; b < counter.bits.size(); ++b)
      got |= (nl.value(counter.bits[b]) ? 1u : 0u) << b;
    ASSERT_EQ(got, expected) << "step " << step;
  }
}

TEST(EqualsConstTest, MatchesOverAllValues) {
  GateNetlist nl;
  std::vector<NodeId> bus;
  for (int i = 0; i < 5; ++i) bus.push_back(nl.addInput("b" + std::to_string(i)));
  const auto eq19 = buildEqualsConst(nl, bus, 19);
  for (unsigned value = 0; value < 32; ++value) {
    for (int i = 0; i < 5; ++i)
      nl.setInput(bus[static_cast<std::size_t>(i)], (value >> i) & 1u);
    nl.evaluate();
    EXPECT_EQ(nl.value(eq19), value == 19) << value;
  }
}

TEST(FifoControlTest, TracksOccupancyAndStatus) {
  GateNetlist nl;
  const auto wr = nl.addInput("wr");
  const auto rd = nl.addInput("rd");
  const auto control = buildFifoControl(nl, 4, wr, rd);
  nl.reset();
  EXPECT_TRUE(nl.value(control.wok));
  EXPECT_FALSE(nl.value(control.rok));

  auto occupancy = [&] {
    unsigned got = 0;
    for (std::size_t b = 0; b < control.occupancy.size(); ++b)
      got |= (nl.value(control.occupancy[b]) ? 1u : 0u) << b;
    return got;
  };

  // Fill to depth.
  nl.setInput(wr, true);
  nl.setInput(rd, false);
  for (int i = 0; i < 4; ++i) {
    nl.step();
    nl.evaluate();
  }
  EXPECT_EQ(occupancy(), 4u);
  EXPECT_FALSE(nl.value(control.wok));
  // Fifth write is rejected by the guard.
  nl.step();
  nl.evaluate();
  EXPECT_EQ(occupancy(), 4u);
  // Simultaneous read+write at full keeps occupancy.
  nl.setInput(rd, true);
  nl.step();
  nl.evaluate();
  EXPECT_EQ(occupancy(), 4u);
  // Drain.
  nl.setInput(wr, false);
  for (int i = 0; i < 4; ++i) {
    nl.step();
    nl.evaluate();
  }
  EXPECT_EQ(occupancy(), 0u);
  EXPECT_FALSE(nl.value(control.rok));
  // Read-on-empty is ignored.
  nl.step();
  nl.evaluate();
  EXPECT_EQ(occupancy(), 0u);
}

TEST(ArbiterBuilderTest, LutBudgetIsWithinTheCostModelBallpark) {
  GateNetlist nl;
  std::array<NodeId, 4> req{};
  for (auto& r : req) r = nl.addInput("r");
  const auto eop = nl.addInput("eop");
  const auto rok = nl.addInput("rok");
  const auto rd = nl.addInput("rd");
  buildRoundRobinArbiter(nl, req, eop, rok, rd);
  // The cost model charges the OC ~57 LCs for this structure.  The literal
  // construction here uses explicit inverter LUTs that real LUT packing
  // absorbs into their consumers, so it lands somewhat above that; the
  // point of the check is the regime - far above the optimized binary
  // variant (~15 LUTs), same order as the Table 3 charge.
  EXPECT_GE(nl.lutCount(), 30);
  EXPECT_LE(nl.lutCount(), 95);
  EXPECT_EQ(nl.dffCount(), 7);  // gnt(4) + connected + ptr(2)
}

}  // namespace
}  // namespace rasoc::gates
