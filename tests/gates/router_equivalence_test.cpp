// The capstone cross-check: a complete five-port RASoC router built from
// 4-LUTs and flip-flops, run in lockstep against the behavioural
// router::Rasoc under randomized well-formed traffic with random output
// stalls.  Every external signal must match cycle for cycle (output data
// is compared while valid; it is a don't-care when val is low, where the
// behavioural model idealizes empty-buffer reads to zero).
#include <gtest/gtest.h>

#include <array>
#include <deque>

#include "gates/blocks.hpp"
#include "router/rasoc.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rasoc::gates {
namespace {

using router::Flit;
using router::Port;
using router::Rib;

struct LockstepRig {
  explicit LockstepRig(int n = 8, int p = 2)
      : n_(n), behavioural("dut", params(n, p)) {
    sim.add(behavioural);
    sim.reset();
    gate = buildGateRouter(nl, n, 8, p);
    nl.reset();
  }

  static router::RouterParams params(int n = 8, int p = 2) {
    router::RouterParams rp;
    rp.n = n;
    rp.m = 8;
    rp.p = p;
    rp.fifoImpl = router::FifoImpl::Eab;
    return rp;
  }

  int n_;

  // Applies identical external inputs to both sides.
  void driveInput(int port, bool val, const Flit& flit) {
    auto& in = behavioural.in(static_cast<Port>(port));
    in.val.force(val);
    in.flit.data.force(flit.data);
    in.flit.bop.force(flit.bop);
    in.flit.eop.force(flit.eop);
    auto& gin = gate.in[static_cast<std::size_t>(port)];
    nl.setInput(gin.val, val);
    nl.setInput(gin.bop, flit.bop);
    nl.setInput(gin.eop, flit.eop);
    for (int b = 0; b < n_; ++b)
      nl.setInput(gin.data[static_cast<std::size_t>(b)],
                  (flit.data >> b) & 1u);
  }

  void driveOutAck(int port, bool ack) {
    behavioural.out(static_cast<Port>(port)).ack.force(ack);
    nl.setInput(gate.out[static_cast<std::size_t>(port)].ack, ack);
  }

  std::uint32_t gateOutData(int port) const {
    std::uint32_t word = 0;
    for (int b = 0; b < n_; ++b)
      word |= (nl.value(gate.out[static_cast<std::size_t>(port)]
                            .data[static_cast<std::size_t>(b)])
                   ? 1u
                   : 0u)
              << b;
    return word;
  }

  router::Rasoc behavioural;
  sim::Simulator sim;
  GateNetlist nl;
  GateRouter gate;
};

// Per-port packet generator producing a stream of well-formed flits.
struct PortGenerator {
  PortGenerator(int ownPort, std::uint64_t seed,
                router::RouterParams params)
      : own(ownPort), rng(seed), params_(params) {}

  Flit current;
  bool presenting = false;

  void refill() {
    if (presenting || !pending.empty()) return;
    if (!rng.chance(0.4)) return;
    // A target port other than our own (Local sources avoid Local).
    static const Rib kRibFor[5] = {{0, 0}, {0, 1}, {1, 0}, {0, -1},
                                   {-1, 0}};
    int target = own;
    while (target == own)
      target = static_cast<int>(rng.below(5));
    const auto packet = router::makePacket(
        kRibFor[target],
        {static_cast<std::uint32_t>(rng.next()),
         static_cast<std::uint32_t>(rng.next())},
        params_);
    for (const Flit& f : packet) pending.push_back(f);
  }

  void advance(bool fired) {
    if (fired) presenting = false;
    if (!presenting) {
      refill();
      if (!pending.empty() && rng.chance(0.85)) {
        current = pending.front();
        pending.pop_front();
        presenting = true;
      }
    }
  }

  int own;
  sim::Xoshiro256 rng;
  router::RouterParams params_;
  std::deque<Flit> pending;
};

class GateRouterLockstep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GateRouterLockstep, EquivalenceUnderRandomTraffic) {
  const auto [n, p] = GetParam();
  LockstepRig rig(n, p);
  const router::RouterParams params = LockstepRig::params(n, p);
  std::array<PortGenerator, 5> generators{
      PortGenerator{0, 11, params}, PortGenerator{1, 22, params},
      PortGenerator{2, 33, params}, PortGenerator{3, 44, params},
      PortGenerator{4, 55, params}};
  sim::Xoshiro256 stallRng(99);

  for (auto& g : generators) g.advance(false);

  for (int cycle = 0; cycle < 6000; ++cycle) {
    // Drive inputs.
    for (int i = 0; i < 5; ++i) {
      const PortGenerator& g = generators[static_cast<std::size_t>(i)];
      rig.driveInput(i, g.presenting, g.current);
    }
    // Random output readiness; ack = ready & val requires val first, so
    // settle the behavioural side, read its val, and assert equality with
    // the gate side before completing the handshake.
    rig.sim.settle();
    rig.nl.evaluate();
    std::array<bool, 5> ready{};
    for (int o = 0; o < 5; ++o)
      ready[static_cast<std::size_t>(o)] = stallRng.chance(0.8);
    for (int o = 0; o < 5; ++o) {
      const bool bVal = rig.behavioural.out(static_cast<Port>(o)).val.get();
      const bool gVal =
          rig.nl.value(rig.gate.out[static_cast<std::size_t>(o)].val);
      ASSERT_EQ(gVal, bVal) << "out val, port " << o << " cycle " << cycle;
      rig.driveOutAck(o, ready[static_cast<std::size_t>(o)] && bVal);
    }
    rig.sim.settle();
    rig.nl.evaluate();

    // Compare every external signal.
    for (int o = 0; o < 5; ++o) {
      const auto& bOut = rig.behavioural.out(static_cast<Port>(o));
      if (bOut.val.get()) {
        ASSERT_EQ(rig.gateOutData(o), bOut.flit.data.get())
            << "out data, port " << o << " cycle " << cycle;
        ASSERT_EQ(rig.nl.value(rig.gate.out[static_cast<std::size_t>(o)].bop),
                  bOut.flit.bop.get())
            << "out bop, port " << o << " cycle " << cycle;
        ASSERT_EQ(rig.nl.value(rig.gate.out[static_cast<std::size_t>(o)].eop),
                  bOut.flit.eop.get())
            << "out eop, port " << o << " cycle " << cycle;
      }
    }
    for (int i = 0; i < 5; ++i) {
      const bool bAck = rig.behavioural.in(static_cast<Port>(i)).ack.get();
      const bool gAck =
          rig.nl.value(rig.gate.in[static_cast<std::size_t>(i)].ack);
      ASSERT_EQ(gAck, bAck) << "in ack, port " << i << " cycle " << cycle;
    }

    // Advance generators on fired handshakes, then clock both sides.
    for (int i = 0; i < 5; ++i) {
      PortGenerator& g = generators[static_cast<std::size_t>(i)];
      const bool fired =
          g.presenting &&
          rig.behavioural.in(static_cast<Port>(i)).ack.get();
      g.advance(fired);
    }
    rig.sim.tick();
    rig.nl.clockEdge();
  }
  EXPECT_FALSE(rig.behavioural.misrouteDetected());
}

INSTANTIATE_TEST_SUITE_P(Configurations, GateRouterLockstep,
                         ::testing::Values(std::pair{8, 2}, std::pair{8, 4},
                                           std::pair{16, 2},
                                           std::pair{16, 4}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.first) +
                                  "p" + std::to_string(info.param.second);
                         });

TEST(GateRouterTest, ResourceFootprintIsReported) {
  GateNetlist nl;
  buildGateRouter(nl, 8, 8, 2);
  // 5 x (2 slots x 10 bits) storage + pointers/occupancy + 5 x arbiter
  // state: the DFF census must match the structural expectation exactly.
  const int fifoBits = 5 * (2 * 10);
  const int pointers = 5 * (1 + 1 + 2);
  const int arbiters = 5 * (4 + 1 + 2);
  EXPECT_EQ(nl.dffCount(), fifoBits + pointers + arbiters);
  EXPECT_GT(nl.lutCount(), 400);  // a real router's worth of logic
}

TEST(GateRouterTest, ValidatesParameters) {
  GateNetlist nl;
  EXPECT_THROW(buildGateRouter(nl, 8, 8, 3), std::invalid_argument);
  EXPECT_THROW(buildGateRouter(nl, 8, 8, 1), std::invalid_argument);
  EXPECT_THROW(buildGateRouter(nl, 4, 8, 2), std::invalid_argument);
  EXPECT_THROW(buildGateRouter(nl, 8, 7, 2), std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::gates
