// Gate-level vs behavioural equivalence: the LUT/FF constructions must be
// cycle-for-cycle indistinguishable from the behavioural blocks the NoC
// simulations use - the reproduction's substitute for RTL-vs-netlist
// verification in the original synthesis flow.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "gates/blocks.hpp"
#include "router/fifo.hpp"
#include "router/ic.hpp"
#include "router/oc.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rasoc::gates {
namespace {

using router::Port;

TEST(EquivalenceTest, RoundRobinArbiterMatchesOutputController) {
  // Behavioural side (own port = East; candidates L, N, S, W).
  std::array<router::CrossbarWires, router::kNumPorts> xbar;
  sim::Wire<bool> outEop, rokSel, xRd, connected;
  sim::Wire<int> sel;
  router::OutputController oc("oc", Port::East, xbar, outEop, rokSel, xRd,
                              connected, sel);
  sim::Simulator sim;
  sim.add(oc);
  sim.reset();

  // Gate side.
  GateNetlist nl;
  std::array<NodeId, 4> req{};
  for (int i = 0; i < 4; ++i)
    req[static_cast<std::size_t>(i)] = nl.addInput("r" + std::to_string(i));
  const auto eopIn = nl.addInput("eop");
  const auto rokIn = nl.addInput("rok");
  const auto rdIn = nl.addInput("rd");
  const RoundRobinArbiter arbiter =
      buildRoundRobinArbiter(nl, req, eopIn, rokIn, rdIn);
  nl.reset();

  // Candidate order must mirror the behavioural cyclic port order with
  // East excluded.
  const std::array<Port, 4> candidates = {Port::Local, Port::North,
                                          Port::South, Port::West};

  sim::Xoshiro256 rng(606);
  for (int step = 0; step < 8000; ++step) {
    const bool eop = rng.chance(0.25);
    const bool rok = rng.chance(0.7);
    const bool rd = rng.chance(0.7);
    bool reqs[4];
    for (int i = 0; i < 4; ++i) reqs[i] = rng.chance(0.35);

    for (int i = 0; i < 4; ++i) {
      xbar[static_cast<std::size_t>(router::index(candidates[
              static_cast<std::size_t>(i)]))]
          .req[router::index(Port::East)]
          .force(reqs[i]);
      nl.setInput(req[static_cast<std::size_t>(i)], reqs[i]);
    }
    outEop.force(eop);
    rokSel.force(rok);
    xRd.force(rd);
    nl.setInput(eopIn, eop);
    nl.setInput(rokIn, rok);
    nl.setInput(rdIn, rd);

    sim.settle();
    nl.evaluate();

    ASSERT_EQ(nl.value(arbiter.connected), connected.get())
        << "step " << step;
    for (int i = 0; i < 4; ++i) {
      const bool behavioural =
          xbar[static_cast<std::size_t>(router::index(candidates[
                  static_cast<std::size_t>(i)]))]
              .gnt[router::index(Port::East)]
              .get();
      ASSERT_EQ(nl.value(arbiter.gnt[static_cast<std::size_t>(i)]),
                behavioural)
          << "step " << step << " candidate " << i;
    }

    sim.tick();
    nl.clockEdge();
  }
}

TEST(EquivalenceTest, BinaryArbiterMatchesOneHotArbiter) {
  // The "optimized controller" must be externally indistinguishable from
  // the one-hot arbiter while holding two fewer flip-flops.
  GateNetlist oneHotNl, binaryNl;
  std::array<NodeId, 4> reqA{}, reqB{};
  for (int i = 0; i < 4; ++i) {
    reqA[static_cast<std::size_t>(i)] = oneHotNl.addInput("r");
    reqB[static_cast<std::size_t>(i)] = binaryNl.addInput("r");
  }
  const auto eopA = oneHotNl.addInput("eop");
  const auto rokA = oneHotNl.addInput("rok");
  const auto rdA = oneHotNl.addInput("rd");
  const auto eopB = binaryNl.addInput("eop");
  const auto rokB = binaryNl.addInput("rok");
  const auto rdB = binaryNl.addInput("rd");
  const RoundRobinArbiter oneHot =
      buildRoundRobinArbiter(oneHotNl, reqA, eopA, rokA, rdA);
  const RoundRobinArbiter binary =
      buildBinaryArbiter(binaryNl, reqB, eopB, rokB, rdB);
  EXPECT_EQ(oneHotNl.dffCount() - binaryNl.dffCount(), 2);
  oneHotNl.reset();
  binaryNl.reset();

  sim::Xoshiro256 rng(808);
  for (int step = 0; step < 8000; ++step) {
    const bool eop = rng.chance(0.25);
    const bool rok = rng.chance(0.7);
    const bool rd = rng.chance(0.7);
    for (int i = 0; i < 4; ++i) {
      const bool r = rng.chance(0.35);
      oneHotNl.setInput(reqA[static_cast<std::size_t>(i)], r);
      binaryNl.setInput(reqB[static_cast<std::size_t>(i)], r);
    }
    oneHotNl.setInput(eopA, eop);
    oneHotNl.setInput(rokA, rok);
    oneHotNl.setInput(rdA, rd);
    binaryNl.setInput(eopB, eop);
    binaryNl.setInput(rokB, rok);
    binaryNl.setInput(rdB, rd);
    oneHotNl.evaluate();
    binaryNl.evaluate();
    ASSERT_EQ(binaryNl.value(binary.connected),
              oneHotNl.value(oneHot.connected))
        << "step " << step;
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(binaryNl.value(binary.gnt[static_cast<std::size_t>(i)]),
                oneHotNl.value(oneHot.gnt[static_cast<std::size_t>(i)]))
          << "step " << step << " line " << i;
    }
    oneHotNl.clockEdge();
    binaryNl.clockEdge();
  }
}

TEST(EquivalenceTest, RouteLogicMatchesInputController) {
  router::RouterParams params;
  params.n = 16;
  params.m = 8;

  // Behavioural IC.
  router::FlitWires ibDout;
  sim::Wire<bool> rok;
  router::CrossbarWires xbar;
  router::InputController ic("ic", params, Port::West, ibDout, rok, xbar);
  sim::Simulator sim;
  sim.add(ic);
  sim.reset();

  // Gate-level routing cone.
  GateNetlist nl;
  std::vector<NodeId> rib;
  for (int i = 0; i < params.m; ++i)
    rib.push_back(nl.addInput("rib" + std::to_string(i)));
  const auto bopIn = nl.addInput("bop");
  const auto rokIn = nl.addInput("rok");
  const RouteLogic logic = buildXYRouteLogic(nl, rib, bopIn, rokIn);

  for (int value = 0; value < 256; ++value) {
    for (const bool bop : {true, false}) {
      for (const bool rokNow : {true, false}) {
        ibDout.data.force(static_cast<std::uint32_t>(value));
        ibDout.bop.force(bop);
        rok.force(rokNow);
        sim.settle();
        for (int i = 0; i < params.m; ++i)
          nl.setInput(rib[static_cast<std::size_t>(i)],
                      (value >> i) & 1);
        nl.setInput(bopIn, bop);
        nl.setInput(rokIn, rokNow);
        nl.evaluate();

        for (Port p : router::kAllPorts) {
          ASSERT_EQ(nl.value(logic.req[static_cast<std::size_t>(
                        router::index(p))]),
                    xbar.req[router::index(p)].get())
              << "value " << value << " bop " << bop << " port "
              << router::name(p);
        }
        // Updated RIB must match the behavioural header rewrite for every
        // canonical encoding.  Non-canonical "negative zero" axis fields
        // (sign set, magnitude zero) are unreachable - encodeRib never
        // produces them - and the behavioural rewrite normalizes them
        // while the gate datapath passes them through, so they are
        // excluded as don't-cares.
        const router::Rib decoded =
            router::decodeRib(static_cast<std::uint32_t>(value), params.m);
        const bool canonical =
            router::encodeRib(decoded, params.m) ==
            static_cast<std::uint32_t>(value);
        if (bop && rokNow && canonical) {
          unsigned gateRib = 0;
          for (int i = 0; i < params.m; ++i)
            gateRib |=
                (nl.value(logic.updatedRib[static_cast<std::size_t>(i)])
                     ? 1u
                     : 0u)
                << i;
          ASSERT_EQ(gateRib, xbar.flit.data.get() & 0xffu)
              << "value " << value;
        }
      }
    }
  }
}

TEST(EquivalenceTest, FifoControlMatchesInputBufferStatus) {
  router::RouterParams params;
  params.n = 8;
  params.p = 4;
  params.fifoImpl = router::FifoImpl::Eab;

  router::FlitWires din, dout;
  sim::Wire<bool> wr, rd, wok, rok;
  auto fifo = router::InputBuffer::create("fifo", params, din, wr, rd, dout,
                                          wok, rok);
  sim::Simulator sim;
  sim.add(*fifo);
  sim.reset();

  GateNetlist nl;
  const auto wrIn = nl.addInput("wr");
  const auto rdIn = nl.addInput("rd");
  const FifoControl control = buildFifoControl(nl, params.p, wrIn, rdIn);
  nl.reset();

  sim::Xoshiro256 rng(707);
  for (int step = 0; step < 5000; ++step) {
    const bool w = rng.chance(0.5);
    const bool r = rng.chance(0.5);
    wr.force(w);
    rd.force(r);
    nl.setInput(wrIn, w);
    nl.setInput(rdIn, r);
    sim.settle();
    nl.evaluate();

    ASSERT_EQ(nl.value(control.wok), wok.get()) << "step " << step;
    ASSERT_EQ(nl.value(control.rok), rok.get()) << "step " << step;
    unsigned occupancy = 0;
    for (std::size_t b = 0; b < control.occupancy.size(); ++b)
      occupancy |= (nl.value(control.occupancy[b]) ? 1u : 0u) << b;
    ASSERT_EQ(static_cast<int>(occupancy), fifo->occupancy())
        << "step " << step;

    sim.tick();
    nl.clockEdge();
  }
}

}  // namespace
}  // namespace rasoc::gates
