#include "gates/netlist.hpp"

#include <gtest/gtest.h>

namespace rasoc::gates {
namespace {

TEST(GateNetlistTest, ConstAndInputValues) {
  GateNetlist nl;
  const auto one = nl.addConst(true);
  const auto zero = nl.addConst(false);
  const auto in = nl.addInput("a");
  nl.setInput(in, true);
  nl.evaluate();
  EXPECT_TRUE(nl.value(one));
  EXPECT_FALSE(nl.value(zero));
  EXPECT_TRUE(nl.value(in));
}

TEST(GateNetlistTest, BasicGatesTruthTables) {
  GateNetlist nl;
  const auto a = nl.addInput("a");
  const auto b = nl.addInput("b");
  const auto andN = nl.andGate(a, b);
  const auto orN = nl.orGate(a, b);
  const auto xorN = nl.xorGate(a, b);
  const auto notN = nl.notGate(a);
  for (int pattern = 0; pattern < 4; ++pattern) {
    const bool av = pattern & 1;
    const bool bv = pattern & 2;
    nl.setInput(a, av);
    nl.setInput(b, bv);
    nl.evaluate();
    EXPECT_EQ(nl.value(andN), av && bv) << pattern;
    EXPECT_EQ(nl.value(orN), av || bv) << pattern;
    EXPECT_EQ(nl.value(xorN), av != bv) << pattern;
    EXPECT_EQ(nl.value(notN), !av) << pattern;
  }
}

TEST(GateNetlistTest, Mux2SelectsCorrectly) {
  GateNetlist nl;
  const auto sel = nl.addInput("sel");
  const auto a = nl.addInput("a");
  const auto b = nl.addInput("b");
  const auto y = nl.mux2(sel, a, b);
  for (int pattern = 0; pattern < 8; ++pattern) {
    nl.setInput(sel, pattern & 1);
    nl.setInput(a, pattern & 2);
    nl.setInput(b, pattern & 4);
    nl.evaluate();
    const bool expected = (pattern & 1) ? (pattern & 4) : (pattern & 2);
    EXPECT_EQ(nl.value(y), expected != 0) << pattern;
  }
}

TEST(GateNetlistTest, DffLatchesOnClockEdgeOnly) {
  GateNetlist nl;
  const auto d = nl.addInput("d");
  const auto q = nl.addDff(false);
  nl.connectDff(q, d);
  nl.reset();
  nl.setInput(d, true);
  nl.evaluate();
  EXPECT_FALSE(nl.value(q)) << "value must not pass through combinationally";
  nl.clockEdge();
  EXPECT_TRUE(nl.value(q));
  nl.setInput(d, false);
  nl.step();
  EXPECT_FALSE(nl.value(q));
}

TEST(GateNetlistTest, ResetRestoresDffInitValues) {
  GateNetlist nl;
  const auto d = nl.addInput("d");
  const auto q0 = nl.addDff(false);
  const auto q1 = nl.addDff(true);
  nl.connectDff(q0, d);
  nl.connectDff(q1, d);
  nl.setInput(d, true);
  nl.step();
  EXPECT_TRUE(nl.value(q0));
  nl.reset();
  EXPECT_FALSE(nl.value(q0));
  EXPECT_TRUE(nl.value(q1));
}

TEST(GateNetlistTest, RegisteredToggleCounts) {
  // q <= not q: a divide-by-two toggle built from one LUT + one DFF.
  GateNetlist nl;
  const auto q = nl.addDff(false);
  nl.connectDff(q, nl.notGate(q));
  nl.reset();
  bool expected = false;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(nl.value(q), expected) << "cycle " << i;
    nl.step();
    nl.evaluate();
    expected = !expected;
  }
  EXPECT_EQ(nl.lutCount(), 1);
  EXPECT_EQ(nl.dffCount(), 1);
}

TEST(GateNetlistTest, ErrorsOnMisuse) {
  GateNetlist nl;
  const auto q = nl.addDff();
  EXPECT_THROW(nl.value(99), std::out_of_range);
  EXPECT_THROW(nl.setInput(q, true), std::invalid_argument);
  EXPECT_THROW(nl.connectDff(nl.addConst(false), q), std::invalid_argument);
  EXPECT_THROW(nl.clockEdge(), std::logic_error);  // unconnected D
  EXPECT_THROW(nl.output("nope"), std::out_of_range);
}

TEST(GateNetlistTest, NamedOutputs) {
  GateNetlist nl;
  const auto a = nl.addInput("a");
  nl.markOutput("y", nl.notGate(a));
  nl.setInput(a, false);
  nl.evaluate();
  EXPECT_TRUE(nl.output("y"));
}

}  // namespace
}  // namespace rasoc::gates
