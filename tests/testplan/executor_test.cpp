// Schedule execution on the cycle-accurate mesh: the measured makespan
// must track the planner's analytical estimate.
#include "testplan/executor.hpp"

#include <gtest/gtest.h>

namespace rasoc::testplan {
namespace {

using noc::NodeId;

TestPlanConfig config(std::vector<NodeId> ports,
                      double power = std::numeric_limits<double>::infinity()) {
  TestPlanConfig cfg;
  cfg.accessPorts = std::move(ports);
  cfg.powerBudget = power;
  cfg.params.n = 16;
  cfg.params.p = 4;
  return cfg;
}

noc::Mesh makeMesh(const TestPlanConfig& cfg) {
  noc::MeshConfig meshCfg;
  meshCfg.shape = noc::MeshShape{4, 4};
  meshCfg.params = cfg.params;
  return noc::Mesh(meshCfg);
}

CoreTestSpec core(const char* name, NodeId at, int packets, int bist = 0) {
  CoreTestSpec spec;
  spec.name = name;
  spec.location = at;
  spec.testPackets = packets;
  spec.payloadFlits = 8;
  spec.bistCycles = bist;
  return spec;
}

TEST(ExecutorTest, SingleCoreCompletesNearTheEstimate) {
  const TestPlanConfig cfg = config({NodeId{0, 0}});
  TestPlanner planner(cfg);
  const std::vector<CoreTestSpec> cores = {core("c", NodeId{3, 2}, 4, 100)};
  const TestSchedule schedule = planner.plan(cores);
  noc::Mesh mesh = makeMesh(cfg);
  const ExecutionResult result =
      runSchedule(mesh, cores, schedule, cfg, 20000);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.healthy);
  const auto estimate = static_cast<double>(schedule.makespan);
  EXPECT_NEAR(static_cast<double>(result.measuredMakespan), estimate,
              0.25 * estimate + 10.0);
}

TEST(ExecutorTest, MultiCoreMultiPortScheduleExecutes) {
  const TestPlanConfig cfg = config({NodeId{0, 0}, NodeId{3, 3}});
  TestPlanner planner(cfg);
  const std::vector<CoreTestSpec> cores = {
      core("a", NodeId{1, 0}, 3, 50), core("b", NodeId{2, 1}, 5, 120),
      core("c", NodeId{0, 2}, 2, 30), core("d", NodeId{3, 1}, 4, 80),
      core("e", NodeId{1, 3}, 6, 200)};
  const TestSchedule schedule = planner.plan(cores);
  noc::Mesh mesh = makeMesh(cfg);
  const ExecutionResult result =
      runSchedule(mesh, cores, schedule, cfg, 50000);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(result.healthy);
  ASSERT_EQ(result.coreDoneCycle.size(), cores.size());
  const auto estimate = static_cast<double>(schedule.makespan);
  EXPECT_NEAR(static_cast<double>(result.measuredMakespan), estimate,
              0.30 * estimate + 20.0);
}

TEST(ExecutorTest, MorePortsFinishFasterInSimulationToo) {
  const std::vector<CoreTestSpec> cores = {
      core("a", NodeId{1, 0}, 6), core("b", NodeId{2, 0}, 6),
      core("c", NodeId{1, 2}, 6), core("d", NodeId{2, 2}, 6)};
  auto measure = [&](std::vector<NodeId> ports) {
    const TestPlanConfig cfg = config(std::move(ports));
    TestPlanner planner(cfg);
    const TestSchedule schedule = planner.plan(cores);
    noc::Mesh mesh = makeMesh(cfg);
    const ExecutionResult result =
        runSchedule(mesh, cores, schedule, cfg, 50000);
    EXPECT_TRUE(result.completed);
    return result.measuredMakespan;
  };
  const std::uint64_t one = measure({NodeId{0, 0}});
  const std::uint64_t two = measure({NodeId{0, 0}, NodeId{3, 3}});
  EXPECT_LT(two, one);
}

TEST(ExecutorTest, MismatchedScheduleThrows) {
  const TestPlanConfig cfg = config({NodeId{0, 0}});
  noc::Mesh mesh = makeMesh(cfg);
  const std::vector<CoreTestSpec> cores = {core("a", NodeId{1, 0}, 1)};
  TestSchedule empty;
  EXPECT_THROW(runSchedule(mesh, cores, empty, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::testplan
