#include "testplan/testplan.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rasoc::testplan {
namespace {

using noc::NodeId;

TestPlanConfig config(std::vector<NodeId> ports,
                      double power = std::numeric_limits<double>::infinity()) {
  TestPlanConfig cfg;
  cfg.accessPorts = std::move(ports);
  cfg.powerBudget = power;
  cfg.params.n = 16;
  return cfg;
}

CoreTestSpec core(const char* name, NodeId at, int packets, int bist = 0,
                  double power = 1.0) {
  CoreTestSpec spec;
  spec.name = name;
  spec.location = at;
  spec.testPackets = packets;
  spec.payloadFlits = 8;
  spec.bistCycles = bist;
  spec.power = power;
  return spec;
}

TEST(PlannerTest, SessionArithmetic) {
  TestPlanner planner(config({NodeId{0, 0}}));
  const CoreTestSpec spec = core("c", NodeId{2, 1}, 3, 50);
  EXPECT_EQ(planner.deliveryCycles(spec), 3u * 10u);
  EXPECT_EQ(planner.transitCycles(spec, 0), 3u * 4u);  // 4 XY hops
  EXPECT_EQ(planner.sessionCycles(spec, 0), 30u + 12u + 50u);
}

TEST(PlannerTest, ConstructionValidation) {
  EXPECT_THROW(TestPlanner(config({})), std::invalid_argument);
  EXPECT_THROW(TestPlanner(config({NodeId{0, 0}}, 0.0)),
               std::invalid_argument);
}

TEST(PlannerTest, SpecValidation) {
  TestPlanner planner(config({NodeId{0, 0}}, 2.0));
  EXPECT_THROW(planner.plan({core("p", NodeId{0, 0}, 1)}),
               std::invalid_argument);  // core on the port node
  EXPECT_THROW(planner.plan({core("big", NodeId{1, 0}, 1, 0, 3.0)}),
               std::invalid_argument);  // exceeds the budget alone
  EXPECT_THROW(
      planner.plan({core("a", NodeId{1, 0}, 1), core("b", NodeId{1, 0}, 1)}),
      std::invalid_argument);  // shared node
  CoreTestSpec bad = core("z", NodeId{1, 0}, 0);
  EXPECT_THROW(planner.plan({bad}), std::invalid_argument);
}

TEST(PlannerTest, SinglePortSerializesDeliveries) {
  TestPlanner planner(config({NodeId{0, 0}}));
  const std::vector<CoreTestSpec> cores = {
      core("a", NodeId{1, 0}, 2), core("b", NodeId{2, 0}, 2),
      core("c", NodeId{3, 0}, 2)};
  const TestSchedule schedule = planner.plan(cores);
  ASSERT_EQ(schedule.entries.size(), 3u);
  // Port intervals must not overlap.
  for (const auto& a : schedule.entries) {
    for (const auto& b : schedule.entries) {
      if (a.core == b.core) continue;
      EXPECT_TRUE(a.portBusyUntil <= b.start || b.portBusyUntil <= a.start)
          << a.core << " vs " << b.core;
    }
  }
}

TEST(PlannerTest, TwoPortsRoughlyHalveTheMakespan) {
  const std::vector<CoreTestSpec> cores = {
      core("a", NodeId{1, 0}, 4), core("b", NodeId{2, 0}, 4),
      core("c", NodeId{1, 1}, 4), core("d", NodeId{2, 1}, 4)};
  TestPlanner one(config({NodeId{0, 0}}));
  TestPlanner two(config({NodeId{0, 0}, NodeId{3, 1}}));
  const std::uint64_t m1 = one.plan(cores).makespan;
  const std::uint64_t m2 = two.plan(cores).makespan;
  EXPECT_LT(m2, m1);
  EXPECT_LE(m2, m1 * 2 / 3);
}

TEST(PlannerTest, BistTailsOverlapWithNextDelivery) {
  // One port: while core A runs its long BIST, the port is already
  // streaming core B - the NoC's advantage over a serial TAM.
  TestPlanner planner(config({NodeId{0, 0}}));
  const std::vector<CoreTestSpec> cores = {
      core("a", NodeId{1, 0}, 2, /*bist=*/500),
      core("b", NodeId{2, 0}, 2, /*bist=*/500)};
  const TestSchedule parallelish = planner.plan(cores);
  const TestSchedule serial = planner.sequentialBaseline(cores);
  EXPECT_LT(parallelish.makespan, serial.makespan);
  // Serial: ~2 x (20 + transit + 500).  Overlapped: ~20 + 20 + 500ish.
  EXPECT_LT(parallelish.makespan, 600u);
  EXPECT_GT(serial.makespan, 1000u);
}

TEST(PlannerTest, PowerBudgetForcesStaggering) {
  const std::vector<CoreTestSpec> cores = {
      core("a", NodeId{1, 0}, 2, 300, 1.0),
      core("b", NodeId{2, 0}, 2, 300, 1.0)};
  TestPlanner unconstrained(config({NodeId{0, 0}, NodeId{3, 0}}));
  TestPlanner constrained(config({NodeId{0, 0}, NodeId{3, 0}}, 1.0));
  const TestSchedule fast = unconstrained.plan(cores);
  const TestSchedule slow = constrained.plan(cores);
  EXPECT_GT(slow.makespan, fast.makespan);
  // Under a 1.0 budget the two unit-power tests may never overlap.
  const auto& a = slow.entryForCore(0);
  const auto& b = slow.entryForCore(1);
  EXPECT_TRUE(a.done <= b.start || b.done <= a.start);
}

TEST(PlannerTest, EveryCoreScheduledExactlyOnce) {
  TestPlanner planner(config({NodeId{0, 0}, NodeId{3, 3}}));
  std::vector<CoreTestSpec> cores;
  for (int i = 0; i < 6; ++i)
    cores.push_back(core(("c" + std::to_string(i)).c_str(),
                         NodeId{1 + i % 3, 1 + i / 3}, 1 + i, 10 * i));
  const TestSchedule schedule = planner.plan(cores);
  std::set<int> seen;
  for (const auto& entry : schedule.entries) seen.insert(entry.core);
  EXPECT_EQ(seen.size(), cores.size());
  EXPECT_EQ(schedule.makespan,
            std::max_element(schedule.entries.begin(),
                             schedule.entries.end(),
                             [](const auto& x, const auto& y) {
                               return x.done < y.done;
                             })
                ->done);
}

}  // namespace
}  // namespace rasoc::testplan
