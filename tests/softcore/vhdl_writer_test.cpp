// Structural validation of the emitted VHDL soft-core.  No VHDL frontend
// ships with the reproduction environment, so these tests enforce the
// lexical invariants a compiler would: every design unit is opened and
// closed, parentheses balance, instantiations resolve to emitted entities,
// and the generics of the paper (n, m, p) appear and propagate.
#include "softcore/vhdl_writer.hpp"

#include <gtest/gtest.h>

#include <regex>

namespace rasoc::softcore {
namespace {

using router::FifoImpl;
using router::RouterParams;

RouterParams params(int n = 16, int m = 8, int p = 4,
                    FifoImpl impl = FifoImpl::Eab) {
  RouterParams rp;
  rp.n = n;
  rp.m = m;
  rp.p = p;
  rp.fifoImpl = impl;
  return rp;
}

int countOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

bool parensBalanced(const std::string& text) {
  int depth = 0;
  for (char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(VhdlWriterTest, EmitsOneFilePerEntityPlusPackageAndInstances) {
  const VhdlWriter writer(params());
  const auto files = writer.allFiles();
  EXPECT_EQ(files.size(), 15u);  // package + 8 blocks + 2 channels + top +
                                 // instance + noc mesh + noc instance
  for (const char* name :
       {"rasoc_pkg.vhd", "input_flow_controller.vhd", "input_buffer.vhd",
        "input_controller.vhd", "input_read_switch.vhd",
        "output_controller.vhd", "output_data_switch.vhd",
        "output_rok_switch.vhd", "output_flow_controller.vhd",
        "input_channel.vhd", "output_channel.vhd", "rasoc.vhd",
        "rasoc_instance.vhd", "noc_mesh.vhd", "noc_instance.vhd"})
    EXPECT_TRUE(files.contains(name)) << name;
}

TEST(VhdlWriterTest, NocMeshWiresNeighboursAndTiesEdges) {
  const VhdlWriter writer(params());
  const std::string noc = writer.nocMeshVhdl();
  EXPECT_NE(noc.find("entity noc_mesh is"), std::string::npos);
  EXPECT_NE(noc.find("ports => ports_for(x, y, cols, rows)"),
            std::string::npos);
  for (const char* label :
       {"east_link", "north_link", "east_edge", "west_edge", "north_edge",
        "south_edge"})
    EXPECT_NE(noc.find(label), std::string::npos) << label;
  // Opposite-port pairing: East out feeds the neighbour's West in.
  EXPECT_NE(noc.find("rin_val(i + 1)(PORT_W) <= rout_val(i)(PORT_E);"),
            std::string::npos);
  EXPECT_NE(noc.find("rin_val(i + cols)(PORT_S) <= rout_val(i)(PORT_N);"),
            std::string::npos);
}

TEST(VhdlWriterTest, PackagePortsForFunctionExists) {
  const VhdlWriter writer(params());
  const std::string pkg = writer.packageVhdl();
  EXPECT_NE(pkg.find("function ports_for"), std::string::npos);
  EXPECT_NE(pkg.find("package body rasoc_pkg"), std::string::npos);
}

TEST(VhdlWriterTest, NocInstanceBakesShapeAndParameters) {
  const VhdlWriter writer(params(8, 8, 2, FifoImpl::Eab));
  const std::string instance = writer.nocInstanceVhdl("soc_noc", 3, 2);
  EXPECT_NE(instance.find("entity soc_noc is"), std::string::npos);
  EXPECT_NE(instance.find("cols => 3, rows => 2, n => 8"),
            std::string::npos);
  EXPECT_THROW(writer.nocInstanceVhdl("bad", 0, 2), std::invalid_argument);
}

TEST(VhdlWriterTest, EveryDesignUnitIsOpenedAndClosed) {
  const VhdlWriter writer(params());
  for (const auto& [name, content] : writer.allFiles()) {
    const int entities = countOccurrences(content, "\nentity ");
    const int entityEnds = countOccurrences(content, "end entity ");
    EXPECT_EQ(entities, entityEnds) << name;
    const int architectures = countOccurrences(content, "\narchitecture ");
    const int architectureEnds =
        countOccurrences(content, "end architecture ");
    EXPECT_EQ(architectures, architectureEnds) << name;
    const int processes = countOccurrences(content, " process (");
    const int processEnds = countOccurrences(content, "end process");
    EXPECT_EQ(processes, processEnds) << name;
    EXPECT_TRUE(parensBalanced(content)) << name;
  }
}

TEST(VhdlWriterTest, TopLevelHasThePaperGenerics) {
  const VhdlWriter writer(params());
  const std::string top = writer.rasocVhdl();
  // "The top-level entity, named rasoc, has three generic parameters,
  // n, m and p".
  EXPECT_NE(top.find("entity rasoc is"), std::string::npos);
  EXPECT_NE(top.find("n        : integer"), std::string::npos);
  EXPECT_NE(top.find("m        : integer"), std::string::npos);
  EXPECT_NE(top.find("p        : integer"), std::string::npos);
  EXPECT_NE(top.find("ports    : std_logic_vector"), std::string::npos);
}

TEST(VhdlWriterTest, GenericsPropagateDownTheHierarchy) {
  const VhdlWriter writer(params());
  const std::string inputChannel = writer.inputChannelVhdl();
  EXPECT_NE(inputChannel.find("generic map (n => n, p => p, eab_fifo"),
            std::string::npos)
      << "IB receives (n, p) from input_channel";
  EXPECT_NE(inputChannel.find("generic map (n => n, m => m, own_port"),
            std::string::npos)
      << "IC receives (n, m) from input_channel";
  const std::string top = writer.rasocVhdl();
  EXPECT_NE(top.find("generic map (n => n, m => m, p => p, own_port => i"),
            std::string::npos)
      << "input_channel receives (n, m, p) from rasoc";
}

TEST(VhdlWriterTest, EveryInstantiatedEntityIsEmitted) {
  const VhdlWriter writer(params());
  const auto files = writer.allFiles();
  std::string everything;
  for (const auto& [name, content] : files) everything += content;

  const std::regex instantiation(R"(entity work\.([a-z_]+))");
  for (auto it = std::sregex_iterator(everything.begin(), everything.end(),
                                      instantiation);
       it != std::sregex_iterator(); ++it) {
    const std::string target = (*it)[1];
    EXPECT_NE(everything.find("entity " + target + " is"),
              std::string::npos)
        << "instantiated but never emitted: " << target;
  }
}

TEST(VhdlWriterTest, InstanceBakesInTheChosenParameters) {
  const VhdlWriter writer(params(32, 8, 2, FifoImpl::FlipFlop));
  const std::string instance = writer.instanceVhdl("corner_router");
  EXPECT_NE(instance.find("entity corner_router is"), std::string::npos);
  EXPECT_NE(instance.find("n => 32"), std::string::npos);
  EXPECT_NE(instance.find("m => 8"), std::string::npos);
  EXPECT_NE(instance.find("p => 2"), std::string::npos);
  EXPECT_NE(instance.find("eab_fifo => false"), std::string::npos);
  EXPECT_NE(instance.find("ports => \"11111\""), std::string::npos);
}

TEST(VhdlWriterTest, PortMaskBecomesThePortsGeneric) {
  RouterParams corner = params();
  corner.portMask = (1u << router::index(router::Port::Local)) |
                    (1u << router::index(router::Port::North)) |
                    (1u << router::index(router::Port::East));
  const VhdlWriter writer(corner);
  // Bit order "WSENL" left to right: L=bit0 rightmost.
  EXPECT_NE(writer.instanceVhdl("corner").find("ports => \"00111\""),
            std::string::npos);
}

TEST(VhdlWriterTest, FifoArchitecturesMatchFigures8And9) {
  const VhdlWriter writer(params());
  const std::string ib = writer.ibVhdl();
  EXPECT_NE(ib.find("ff_arch : if not eab_fifo generate"),
            std::string::npos);
  EXPECT_NE(ib.find("eab_arch : if eab_fifo generate"), std::string::npos);
  EXPECT_NE(ib.find("for i in p - 1 downto 1 loop"), std::string::npos)
      << "shift-register data path (Figure 9)";
  EXPECT_NE(ib.find("ram(wptr) <= din"), std::string::npos)
      << "inferred-RAM data path";
}

TEST(VhdlWriterTest, IfcIsTheAndGateOfThePaper) {
  const VhdlWriter writer(params());
  const std::string ifc = writer.ifcVhdl();
  EXPECT_NE(ifc.find("in_ack <= in_val and wok;"), std::string::npos);
}

TEST(VhdlWriterTest, PrunedChannelsAreTiedOff) {
  const VhdlWriter writer(params());
  const std::string top = writer.rasocVhdl();
  EXPECT_NE(top.find("absent : if ports(i) = '0' generate"),
            std::string::npos);
  EXPECT_NE(top.find("present : if ports(i) = '1' generate"),
            std::string::npos);
}

TEST(VhdlWriterTest, FullListingContainsAllFiles) {
  const VhdlWriter writer(params());
  const std::string listing = writer.fullListing();
  for (const auto& [name, content] : writer.allFiles())
    EXPECT_NE(listing.find("-- ======== " + name + " ========"),
              std::string::npos);
}

TEST(VhdlWriterTest, InvalidParamsThrow) {
  RouterParams bad = params();
  bad.p = 0;
  EXPECT_THROW(VhdlWriter{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::softcore
