#include "softcore/elaborate.hpp"

#include <gtest/gtest.h>

#include "tech/mapper.hpp"

namespace rasoc::softcore {
namespace {

using router::FifoImpl;
using router::Port;
using router::RouterParams;

RouterParams params(int n = 32, int p = 4, FifoImpl impl = FifoImpl::Eab) {
  RouterParams rp;
  rp.n = n;
  rp.p = p;
  rp.fifoImpl = impl;
  return rp;
}

TEST(ElaborateTest, RouterHierarchyMatchesFigure7) {
  const Entity router = elaborateRouter(params());
  EXPECT_EQ(router.name, "rasoc");
  // Five input channels + five output channels.
  EXPECT_EQ(router.children.size(), 10u);
  // Each input channel has IFC, IB, IC, IRS; each output OC, ODS, ORS, OFC.
  // Total entities: 1 + 10 + 10*4.
  EXPECT_EQ(router.entityCount(), 1 + 10 + 40);
}

TEST(ElaborateTest, GenericsPropagateToLowerEntities) {
  const Entity router = elaborateRouter(params(16, 2));
  EXPECT_NE(router.generics.find("n=16"), std::string::npos);
  EXPECT_NE(router.generics.find("p=2"), std::string::npos);
  const Entity& inputChannel = router.children.front();
  EXPECT_NE(inputChannel.generics.find("n=16"), std::string::npos);
  EXPECT_NE(inputChannel.generics.find("m=8"), std::string::npos);
  EXPECT_NE(inputChannel.generics.find("p=2"), std::string::npos);
}

TEST(ElaborateTest, PortPruningReducesCost) {
  const tech::Flex10keMapper mapper;
  RouterParams full = params();
  RouterParams corner = params();
  corner.portMask = (1u << router::index(Port::Local)) |
                    (1u << router::index(Port::North)) |
                    (1u << router::index(Port::East));
  const tech::Cost fullCost = elaborateRouter(full).totalCost(mapper);
  const tech::Cost cornerCost = elaborateRouter(corner).totalCost(mapper);
  EXPECT_LT(cornerCost.lc, fullCost.lc);
  EXPECT_LT(cornerCost.reg, fullCost.reg);
  EXPECT_LT(cornerCost.mem, fullCost.mem);
  // A corner router keeps 3 of 5 channel pairs.
  EXPECT_EQ(cornerCost.mem, fullCost.mem * 3 / 5);
}

TEST(ElaborateTest, CostMonotonicInWidthAndDepth) {
  const tech::Flex10keMapper mapper;
  for (FifoImpl impl : {FifoImpl::FlipFlop, FifoImpl::Eab}) {
    const int lc8 = elaborateRouter(params(8, 2, impl)).totalCost(mapper).lc;
    const int lc16 = elaborateRouter(params(16, 2, impl)).totalCost(mapper).lc;
    const int lc32 = elaborateRouter(params(32, 2, impl)).totalCost(mapper).lc;
    EXPECT_LT(lc8, lc16);
    EXPECT_LT(lc16, lc32);
    const int p2 = elaborateRouter(params(8, 2, impl)).totalCost(mapper).lc;
    const int p4 = elaborateRouter(params(8, 4, impl)).totalCost(mapper).lc;
    EXPECT_LE(p2, p4);
  }
}

TEST(ElaborateTest, CostByAcronymCoversAllLeafBlocks) {
  const tech::Flex10keMapper mapper;
  const auto grouped = elaborateRouter(params()).costByAcronym(mapper);
  for (const char* acronym : {"IFC", "IB", "IC", "IRS", "OC", "ODS", "ORS"})
    EXPECT_TRUE(grouped.contains(acronym)) << acronym;
  // OFC has an empty netlist in handshake mode - it may be absent or zero.
  if (grouped.contains("OFC")) {
    EXPECT_EQ(grouped.at("OFC").lc, 0);
  }
}

TEST(ElaborateTest, AcronymGroupTotalsEqualTreeTotal) {
  const tech::Flex10keMapper mapper;
  const Entity router = elaborateRouter(params());
  const tech::Cost total = router.totalCost(mapper);
  tech::Cost sum;
  for (const auto& [acronym, cost] : router.costByAcronym(mapper)) sum += cost;
  EXPECT_EQ(sum, total);
}

TEST(ElaborateTest, FifoElaborationMatchesInputBufferOfRouter) {
  const tech::Flex10keMapper mapper;
  const tech::Cost fifo = elaborateFifo(params()).totalCost(mapper);
  const auto grouped = elaborateRouter(params()).costByAcronym(mapper);
  EXPECT_EQ(grouped.at("IB"), fifo * 5);
}

TEST(ElaborateTest, VirtualChannelsReplicateBuffersAndAddOverlays) {
  // numVCs == 1 must elaborate to exactly the paper's hierarchy (no VC
  // entities anywhere); numVCs > 1 replicates IB/IC per VC and adds the
  // input overlay and output allocator entities.
  RouterParams vc1 = params();
  RouterParams vc2 = params();
  vc2.numVCs = 2;
  const Entity base = elaborateRouter(vc1);
  const Entity vcd = elaborateRouter(vc2);
  EXPECT_EQ(base.renderTree(tech::Flex10keMapper{})
                .find("vc_input_overlay"),
            std::string::npos);
  // Per input channel: IFC + 2x(IB, IC) + IRS + VCI = 7 children; per
  // output channel: OC, ODS, ORS, OFC, VCA = 5.
  EXPECT_EQ(vcd.children.front().children.size(), 7u);
  EXPECT_EQ(vcd.children[1].children.size(), 5u);
  EXPECT_NE(vcd.children.front().generics.find("vcs=2"), std::string::npos);

  const tech::Flex10keMapper mapper;
  const auto grouped = vcd.costByAcronym(mapper);
  EXPECT_TRUE(grouped.contains("VCI"));
  EXPECT_TRUE(grouped.contains("VCA"));
  // Buffer memory scales with the VC count (one p-deep FIFO per VC).
  EXPECT_EQ(grouped.at("IB").mem, base.costByAcronym(mapper).at("IB").mem * 2);
}

TEST(ElaborateTest, CostMonotonicInVcCount) {
  const tech::Flex10keMapper mapper;
  tech::Cost prev;
  for (int vcs : {1, 2, 4}) {
    RouterParams rp = params();
    rp.numVCs = vcs;
    const tech::Cost cost = elaborateRouter(rp).totalCost(mapper);
    if (vcs > 1) {
      EXPECT_GT(cost.lc, prev.lc) << vcs;
      EXPECT_GT(cost.reg, prev.reg) << vcs;
      EXPECT_GT(cost.mem, prev.mem) << vcs;
    }
    prev = cost;
  }
}

TEST(ElaborateTest, RenderTreeShowsEntitiesAndCosts) {
  const tech::Flex10keMapper mapper;
  const std::string tree = elaborateRouter(params()).renderTree(mapper);
  EXPECT_NE(tree.find("rasoc"), std::string::npos);
  EXPECT_NE(tree.find("input_channel"), std::string::npos);
  EXPECT_NE(tree.find("output_data_switch"), std::string::npos);
  EXPECT_NE(tree.find("LC="), std::string::npos);
}

TEST(ElaborateTest, RenderDotIsWellFormedGraphviz) {
  const tech::Flex10keMapper mapper;
  const std::string dot = elaborateRouter(params()).renderDot(mapper);
  EXPECT_EQ(dot.find("digraph rasoc_hierarchy {"), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("rasoc"), std::string::npos);
  EXPECT_NE(dot.find("input_buffer"), std::string::npos);
  // 51 entities -> 51 nodes and 50 edges.
  int nodes = 0, edges = 0;
  std::size_t pos = 0;
  while ((pos = dot.find("[label=", pos)) != std::string::npos) {
    ++nodes;
    ++pos;
  }
  pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(nodes, 51);
  EXPECT_EQ(edges, 50);
}

TEST(ElaborateTest, CreditOfcAddsLogic) {
  const tech::Flex10keMapper mapper;
  RouterParams handshake = params();
  RouterParams credit = params();
  credit.flowControl = router::FlowControl::CreditBased;
  const int hs = elaborateRouter(handshake).totalCost(mapper).lc;
  const int cr = elaborateRouter(credit).totalCost(mapper).lc;
  EXPECT_GT(cr, hs);
}

TEST(ElaborateTest, InvalidParamsThrow) {
  RouterParams bad = params();
  bad.n = 0;
  EXPECT_THROW(elaborateRouter(bad), std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::softcore
