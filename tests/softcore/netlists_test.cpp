#include "softcore/netlists.hpp"

#include <gtest/gtest.h>

#include "tech/mapper.hpp"

namespace rasoc::softcore {
namespace {

using router::FifoImpl;
using router::RouterParams;

RouterParams params(int n = 8, int p = 4, FifoImpl impl = FifoImpl::Eab) {
  RouterParams rp;
  rp.n = n;
  rp.p = p;
  rp.fifoImpl = impl;
  return rp;
}

TEST(BitsForTest, CountsStateBits) {
  EXPECT_EQ(bitsFor(2), 1);
  EXPECT_EQ(bitsFor(3), 2);
  EXPECT_EQ(bitsFor(4), 2);
  EXPECT_EQ(bitsFor(5), 3);
  EXPECT_EQ(bitsFor(16), 4);
  EXPECT_EQ(bitsFor(17), 5);
}

TEST(NetlistsTest, IfcIsASingleAndGate) {
  const tech::Flex10keMapper mapper;
  const tech::Cost cost = mapper.map(ifcNetlist(params()));
  EXPECT_EQ(cost.lc, 1);
  EXPECT_EQ(cost.reg, 0);
  EXPECT_EQ(cost.mem, 0);
}

TEST(NetlistsTest, FfFifoStorageIsFlipFlops) {
  const hw::Netlist nl = ibNetlist(params(8, 4, FifoImpl::FlipFlop));
  // p stages of (n+2) bits plus a small occupancy counter.
  EXPECT_GE(nl.totalFlipFlops(), 40);
  EXPECT_EQ(nl.totalMemoryBits(), 0);
}

TEST(NetlistsTest, EabFifoStorageIsMemoryBits) {
  const hw::Netlist nl = ibNetlist(params(8, 4, FifoImpl::Eab));
  EXPECT_EQ(nl.totalMemoryBits(), 10 * 4);
  // Pointer + occupancy registers only: 2+2+3 bits at p=4.
  EXPECT_EQ(nl.totalFlipFlops(), 7);
}

TEST(NetlistsTest, SingleEntryFfFifoHasNoOutputMux) {
  const tech::Flex10keMapper mapper;
  const int lc1 = mapper.map(ibNetlist(params(8, 1, FifoImpl::FlipFlop))).lc;
  const int lc2 = mapper.map(ibNetlist(params(8, 2, FifoImpl::FlipFlop))).lc;
  EXPECT_LT(lc1, lc2);
}

TEST(NetlistsTest, IcHasNoState) {
  // Table 3: the input controller holds 0% of the router's flip-flops.
  EXPECT_EQ(icNetlist(params()).totalFlipFlops(), 0);
}

TEST(NetlistsTest, IcCostGrowsWithRibWidth) {
  const tech::Flex10keMapper mapper;
  RouterParams narrow = params(16, 4);
  narrow.m = 4;
  RouterParams wide = params(16, 4);
  wide.m = 12;
  EXPECT_LT(mapper.map(icNetlist(narrow)).lc, mapper.map(icNetlist(wide)).lc);
}

TEST(NetlistsTest, OcHasNineStateBits) {
  EXPECT_EQ(ocNetlist(params()).totalFlipFlops(), 9);
}

TEST(NetlistsTest, OdsScalesLinearlyWithFlitWidth) {
  const tech::Flex10keMapper mapper;
  const int lc8 = mapper.map(odsNetlist(params(8))).lc;
  const int lc16 = mapper.map(odsNetlist(params(16))).lc;
  const int lc32 = mapper.map(odsNetlist(params(32))).lc;
  // 4:1 mux = 3 LC per bit of (n+2).
  EXPECT_EQ(lc8, 3 * 10);
  EXPECT_EQ(lc16, 3 * 18);
  EXPECT_EQ(lc32, 3 * 34);
}

TEST(NetlistsTest, OrsIsAOneBitMux) {
  const tech::Flex10keMapper mapper;
  EXPECT_EQ(mapper.map(orsNetlist(params())).lc, 3);
}

TEST(NetlistsTest, HandshakeOfcIsFree) {
  const tech::Flex10keMapper mapper;
  const tech::Cost cost = mapper.map(ofcNetlist(params()));
  EXPECT_EQ(cost.lc, 0);
  EXPECT_EQ(cost.reg, 0);
}

TEST(NetlistsTest, CreditOfcAddsCounter) {
  const tech::Flex10keMapper mapper;
  RouterParams credit = params();
  credit.flowControl = router::FlowControl::CreditBased;
  const tech::Cost cost = mapper.map(ofcNetlist(credit));
  EXPECT_GT(cost.lc, 0);
  EXPECT_EQ(cost.reg, bitsFor(credit.p + 1));
}

TEST(NetlistsTest, OptimizedOcIsCheaperWithSameBehaviouralState) {
  const tech::Flex10keMapper mapper;
  const tech::Cost baseline = mapper.map(ocNetlist(params()));
  const tech::Cost optimized = mapper.map(ocNetlistOptimized(params()));
  EXPECT_LT(optimized.lc, baseline.lc / 2);
  EXPECT_LT(optimized.reg, baseline.reg);  // binary vs one-hot encoding
  EXPECT_EQ(optimized.mem, 0);
}

TEST(NetlistsTest, OptimizedControllersShrinkTheRouterNotTheSwitches) {
  const tech::Flex10keMapper mapper;
  RouterParams cfg = params(32, 4);
  const tech::Cost baseline =
      mapper.map(routerNetlistOptimizedControllers(cfg));
  // The ODS share is untouched: 5 x 3 x 34 LCs in both variants.
  EXPECT_GE(baseline.lc, 5 * 3 * 34);
  // Against the paper configuration the saving is double-digit percent.
  hw::Netlist full;
  full.merge(ocNetlist(cfg), 5);
  const int ocBaselineLc = mapper.map(full).lc;
  hw::Netlist opt;
  opt.merge(ocNetlistOptimized(cfg), 5);
  const int ocOptimizedLc = mapper.map(opt).lc;
  EXPECT_GT(ocBaselineLc - ocOptimizedLc, 150);
}

TEST(NetlistsTest, IrsIsAThreeLutOrOfAndPairs) {
  const tech::Flex10keMapper mapper;
  EXPECT_EQ(mapper.map(irsNetlist(params())).lc, 3);
}

}  // namespace
}  // namespace rasoc::softcore
