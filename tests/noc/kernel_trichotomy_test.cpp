// Four-kernel differential harness: Naive, EventDriven,
// ParallelEventDriven and Compiled networks built from identical
// configurations must stay cycle-for-cycle identical.  The parallel
// kernel's claim is strong - bit-identical results regardless of thread
// count - and the compiled kernel's claim is stronger still (a whole
// different execution substrate: word-packed arena + levelized op tape),
// so this suite pins the matrix four ways:
//
//  1. The golden cycle fingerprints recorded for the event-driven kernel in
//     network_topology_test.cpp must reproduce exactly under the parallel
//     kernel at 2 and 4 threads and under the compiled kernel (same
//     queued/delivered/flit counts and the same latency means to the last
//     ulp).
//  2. Lockstep runs on mesh, torus and ring topologies compare all four
//     kernels per cycle against the naive reference.
//  3. A saturated flood-and-drain must complete in the same cycle with the
//     same delivery count under every kernel.
//  4. A fault campaign (background corruption + scheduled stall/outage
//     windows) must produce identical recovery behaviour under the
//     compiled kernel, whose fault links run as behavioural thunks inside
//     iterated segments.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "sim/compile.hpp"

namespace rasoc::noc {
namespace {

using sim::Simulator;

std::unique_ptr<Network> makeNet(const std::shared_ptr<const Topology>& topo,
                                 Simulator::Kernel kernel, int threads,
                                 const TrafficConfig& traffic,
                                 int numVCs = 1) {
  NetworkConfig cfg;
  cfg.params.n = 16;
  cfg.params.p = 4;
  cfg.params.numVCs = numVCs;
  cfg.kernel = kernel;
  cfg.threads = threads;
  auto net = std::make_unique<Network>(topo, cfg);
  net->attachTraffic(traffic);
  return net;
}

// Steps every network one cycle at a time and asserts the externally
// observable state stays identical to nets[0] (the reference).  Cheap
// ledger counters every cycle, heavier link/NI sweeps every auditPeriod.
void runLockstep(std::vector<std::unique_ptr<Network>>& nets,
                 std::uint64_t cycles, std::uint64_t auditPeriod) {
  ASSERT_GE(nets.size(), 2u);
  Network& ref = *nets[0];
  const Topology& topo = ref.topology();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (auto& net : nets) net->run(1);
    for (std::size_t k = 1; k < nets.size(); ++k) {
      Network& net = *nets[k];
      ASSERT_EQ(ref.ledger().queued(), net.ledger().queued())
          << "net " << k << " cycle " << c;
      ASSERT_EQ(ref.ledger().delivered(), net.ledger().delivered())
          << "net " << k << " cycle " << c;
      ASSERT_EQ(ref.ledger().inFlight(), net.ledger().inFlight())
          << "net " << k << " cycle " << c;
      if ((c + 1) % auditPeriod == 0) {
        ASSERT_EQ(ref.healthy(), net.healthy())
            << "net " << k << " cycle " << c;
        ASSERT_DOUBLE_EQ(ref.meanLinkUtilization(), net.meanLinkUtilization())
            << "net " << k << " cycle " << c;
        ASSERT_DOUBLE_EQ(ref.maxLinkUtilization(), net.maxLinkUtilization())
            << "net " << k << " cycle " << c;
        for (int i = 0; i < topo.nodes(); ++i) {
          const NodeId n = topo.nodeAt(i);
          ASSERT_EQ(ref.ni(n).packetsSent(), net.ni(n).packetsSent())
              << "net " << k << " cycle " << c << " node " << i;
          ASSERT_EQ(ref.ni(n).packetsReceived(), net.ni(n).packetsReceived())
              << "net " << k << " cycle " << c << " node " << i;
        }
      }
    }
  }
  // Final deep audit: the delivered payload streams themselves.
  EXPECT_GT(ref.ledger().delivered(), 0u) << "vacuous run";
  for (std::size_t k = 0; k < nets.size(); ++k)
    EXPECT_TRUE(nets[k]->healthy()) << "net " << k;
  for (std::size_t k = 1; k < nets.size(); ++k) {
    for (int i = 0; i < topo.nodes(); ++i) {
      const NodeId n = topo.nodeAt(i);
      ASSERT_EQ(ref.ni(n).received(), nets[k]->ni(n).received())
          << "net " << k << " node " << i;
    }
    EXPECT_DOUBLE_EQ(ref.ledger().packetLatency().mean(),
                     nets[k]->ledger().packetLatency().mean())
        << "net " << k;
    EXPECT_DOUBLE_EQ(ref.ledger().networkLatency().mean(),
                     nets[k]->ledger().networkLatency().mean())
        << "net " << k;
  }
}

// --- golden fingerprints ---------------------------------------------------

// The exact constants network_topology_test.cpp records for the 8x8 mesh
// under the naive and event-driven kernels.  The parallel kernel must
// reproduce them bit-for-bit at every thread count.
struct Golden {
  TrafficPattern pattern;
  double load;
  std::uint64_t queued;
  std::uint64_t delivered;
  std::uint64_t flits;
  double latMean;
  double netMean;
};

const Golden kMeshGoldens[] = {
    {TrafficPattern::UniformRandom, 0.05, 1031, 1023, 6138,
     19.066471163245357, 18.885630498533725},
    {TrafficPattern::UniformRandom, 0.20, 4302, 4244, 25464,
     36.793826578699338, 31.726672950047124},
    {TrafficPattern::UniformRandom, 0.50, 5109, 4805, 28830,
     115.77023933402705, 56.147138397502601},
    {TrafficPattern::Transpose, 0.05, 881, 875, 5250, 20.017142857142858,
     19.850285714285715},
    {TrafficPattern::Transpose, 0.20, 3227, 3098, 18588, 69.399935442220794,
     42.611039380245316},
    {TrafficPattern::Transpose, 0.50, 3936, 3707, 22242, 106.40814674939304,
     48.710008092797409},
};

class ParallelGoldenTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelGoldenTest, MeshFingerprintsMatchEventDrivenGoldens) {
  const int threads = GetParam();
  for (const Golden& g : kMeshGoldens) {
    SCOPED_TRACE("pattern " + std::string(name(g.pattern)) + " load " +
                 std::to_string(g.load));
    TrafficConfig traffic;
    traffic.pattern = g.pattern;
    traffic.offeredLoad = g.load;
    traffic.payloadFlits = 4;
    traffic.seed = 2026;
    auto net = makeNet(std::make_shared<MeshTopology>(MeshShape{8, 8}),
                       Simulator::Kernel::ParallelEventDriven, threads,
                       traffic);
    net->run(2000);
    EXPECT_EQ(net->ledger().queued(), g.queued);
    EXPECT_EQ(net->ledger().delivered(), g.delivered);
    EXPECT_EQ(net->ledger().flitsDelivered(), g.flits);
    EXPECT_DOUBLE_EQ(net->ledger().packetLatency().mean(), g.latMean);
    EXPECT_DOUBLE_EQ(net->ledger().networkLatency().mean(), g.netMean);
    EXPECT_TRUE(net->healthy());
    // The run must actually have exercised the parallel machinery.
    const auto& stats = net->simulator().parallelStats();
    EXPECT_EQ(stats.domains, static_cast<std::size_t>(threads));
    EXPECT_GT(stats.rounds, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelGoldenTest, ::testing::Values(2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(CompiledGoldenTest, MeshFingerprintsMatchEventDrivenGoldens) {
  for (const Golden& g : kMeshGoldens) {
    SCOPED_TRACE("pattern " + std::string(name(g.pattern)) + " load " +
                 std::to_string(g.load));
    TrafficConfig traffic;
    traffic.pattern = g.pattern;
    traffic.offeredLoad = g.load;
    traffic.payloadFlits = 4;
    traffic.seed = 2026;
    auto net = makeNet(std::make_shared<MeshTopology>(MeshShape{8, 8}),
                       Simulator::Kernel::Compiled, 1, traffic);
    net->run(2000);
    EXPECT_EQ(net->ledger().queued(), g.queued);
    EXPECT_EQ(net->ledger().delivered(), g.delivered);
    EXPECT_EQ(net->ledger().flitsDelivered(), g.flits);
    EXPECT_DOUBLE_EQ(net->ledger().packetLatency().mean(), g.latMean);
    EXPECT_DOUBLE_EQ(net->ledger().networkLatency().mean(), g.netMean);
    EXPECT_TRUE(net->healthy());
    // The run must actually have executed a lowered program, with the
    // router subtrees as word-level ops (thunks cover only the NIs) and no
    // iterated segments (a fault-free network is acyclic at op granularity).
    const sim::CompiledProgram* prog = net->simulator().compiledProgram();
    ASSERT_NE(prog, nullptr);
    EXPECT_GT(prog->opCount(), 0u);
    EXPECT_GT(prog->thunkCount(), 0u);
    EXPECT_LT(prog->thunkCount(), prog->opCount() / 4);
    EXPECT_EQ(prog->iterateSegmentCount(), 0u);
  }
}

// --- lockstep trichotomy ---------------------------------------------------

TEST(KernelTrichotomyTest, TorusUniformRandomLockstep) {
  const auto topo = makeTopology("torus", 4, 4);
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::UniformRandom;
  traffic.offeredLoad = 0.30;
  traffic.payloadFlits = 3;
  traffic.seed = 1234;
  std::vector<std::unique_ptr<Network>> nets;
  nets.push_back(makeNet(topo, Simulator::Kernel::Naive, 1, traffic));
  nets.push_back(makeNet(topo, Simulator::Kernel::EventDriven, 1, traffic));
  nets.push_back(
      makeNet(topo, Simulator::Kernel::ParallelEventDriven, 2, traffic));
  nets.push_back(
      makeNet(topo, Simulator::Kernel::ParallelEventDriven, 4, traffic));
  nets.push_back(makeNet(topo, Simulator::Kernel::Compiled, 1, traffic));
  runLockstep(nets, 1200, 300);
}

TEST(KernelTrichotomyTest, RingBitComplementLockstep) {
  // Transpose cannot exist on a ring; BitComplement is the long-haul
  // pattern, pairing node i with node N-1-i across the ring's full span.
  const auto topo = makeTopology("ring", 8, 1);
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::BitComplement;
  traffic.offeredLoad = 0.25;
  traffic.payloadFlits = 4;
  traffic.seed = 77;
  std::vector<std::unique_ptr<Network>> nets;
  nets.push_back(makeNet(topo, Simulator::Kernel::Naive, 1, traffic));
  nets.push_back(makeNet(topo, Simulator::Kernel::EventDriven, 1, traffic));
  nets.push_back(
      makeNet(topo, Simulator::Kernel::ParallelEventDriven, 3, traffic));
  nets.push_back(makeNet(topo, Simulator::Kernel::Compiled, 1, traffic));
  runLockstep(nets, 1500, 300);
}

TEST(KernelTrichotomyTest, MeshSaturatedTransposeLockstep) {
  // High load stresses arbitration and backpressure where a frontier race
  // or a lost cross-domain wake-up would stall only the parallel kernel.
  const auto topo = makeTopology("mesh", 4, 4);
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::Transpose;
  traffic.offeredLoad = 0.80;
  traffic.payloadFlits = 3;
  traffic.seed = 41;
  std::vector<std::unique_ptr<Network>> nets;
  nets.push_back(makeNet(topo, Simulator::Kernel::Naive, 1, traffic));
  nets.push_back(makeNet(topo, Simulator::Kernel::EventDriven, 1, traffic));
  nets.push_back(
      makeNet(topo, Simulator::Kernel::ParallelEventDriven, 2, traffic));
  nets.push_back(
      makeNet(topo, Simulator::Kernel::ParallelEventDriven, 4, traffic));
  nets.push_back(makeNet(topo, Simulator::Kernel::Compiled, 1, traffic));
  runLockstep(nets, 1000, 250);
}

TEST(KernelTrichotomyTest, VirtualChannelLockstepAtTwoAndFourVCs) {
  // The VC'd channels (VcInputChannel / VcOutputChannel) are a different
  // state machine from the 1-VC router, with their own compiled-kernel
  // lowerings; the four-kernel bit-identity claim must hold for them too.
  // Torus and ring exercise wrap (escape dateline-class) routes, mesh the
  // adaptive-over-one-escape configuration.
  for (const auto& topo :
       {makeTopology("mesh", 4, 4), makeTopology("torus", 4, 4),
        makeTopology("ring", 8, 1)}) {
    for (int vcs : {2, 4}) {
      SCOPED_TRACE(topo->describe() + " vc" + std::to_string(vcs));
      TrafficConfig traffic;
      traffic.pattern = TrafficPattern::UniformRandom;
      traffic.offeredLoad = 0.30;
      traffic.payloadFlits = 3;
      traffic.seed = 555;
      std::vector<std::unique_ptr<Network>> nets;
      nets.push_back(makeNet(topo, Simulator::Kernel::Naive, 1, traffic, vcs));
      nets.push_back(
          makeNet(topo, Simulator::Kernel::EventDriven, 1, traffic, vcs));
      nets.push_back(makeNet(topo, Simulator::Kernel::ParallelEventDriven, 2,
                             traffic, vcs));
      nets.push_back(
          makeNet(topo, Simulator::Kernel::Compiled, 1, traffic, vcs));
      runLockstep(nets, 800, 200);
    }
  }
}

TEST(KernelTrichotomyTest, QosMixedClassLockstepAtFourVCs) {
  // QoS adds class-tagged headers, the class->VC bid mask, the NI's per-VC
  // inject queues and the output channels' strict-priority-with-starvation
  // scheduler; all of it must stay bit-identical across every kernel (the
  // modules lower as declared thunks, so this pins the shared behavioural
  // code under both substrates and the parallel kernel's domain cuts).
  for (const auto& topo :
       {makeTopology("mesh", 4, 4), makeTopology("torus", 4, 4),
        makeTopology("ring", 8, 1)}) {
    SCOPED_TRACE(topo->describe());
    FlowSpec control;
    control.trafficClass = router::TrafficClass::Control;
    control.traffic.offeredLoad = 0.05;
    control.traffic.payloadFlits = 2;
    control.traffic.seed = 31;
    FlowSpec bulk;
    bulk.trafficClass = router::TrafficClass::Bulk;
    bulk.traffic.offeredLoad = 0.45;
    bulk.traffic.payloadFlits = 4;
    bulk.traffic.seed = 32;
    std::vector<std::unique_ptr<Network>> nets;
    struct Pick {
      Simulator::Kernel kernel;
      int threads;
    };
    for (const Pick pick :
         {Pick{Simulator::Kernel::Naive, 1},
          Pick{Simulator::Kernel::EventDriven, 1},
          Pick{Simulator::Kernel::ParallelEventDriven, 2},
          Pick{Simulator::Kernel::Compiled, 1}}) {
      NetworkConfig cfg;
      cfg.params.n = 16;
      cfg.params.p = 4;
      cfg.params.numVCs = 4;
      cfg.params.qosClasses = true;
      cfg.kernel = pick.kernel;
      cfg.threads = pick.threads;
      auto net = std::make_unique<Network>(topo, cfg);
      net->attachTraffic(std::vector<FlowSpec>{control, bulk});
      nets.push_back(std::move(net));
    }
    runLockstep(nets, 800, 200);
    // The classes must both have flowed for the lockstep to mean anything.
    EXPECT_GT(nets[0]->ledger().delivered(router::TrafficClass::Control), 0u);
    EXPECT_GT(nets[0]->ledger().delivered(router::TrafficClass::Bulk), 0u);
  }
}

// --- fault-campaign agreement ----------------------------------------------

TEST(KernelTrichotomyTest, FaultCampaignLockstepCompiledVsEventDriven) {
  // Under a fault campaign every link is a FaultyLink, so the compiled
  // program is mostly behavioural thunks handshaking with lowered channel
  // ops - the configuration that exercises iterated (cyclic) segments and
  // the thunk pre-flush path hardest.
  const auto topo = makeTopology("mesh", 4, 4);
  CampaignConfig campaign;
  campaign.horizon = 1500;
  campaign.corruptRate = 0.02;
  campaign.corruptLinkFraction = 0.5;
  campaign.stallEvents = 2;
  campaign.dropEvents = 2;
  campaign.minDuration = 16;
  campaign.maxDuration = 48;
  campaign.seed = 0xc0ffee;
  ReliabilityConfig reliability;
  reliability.enabled = true;
  reliability.seqBits = 6;
  reliability.window = 8;
  reliability.rtoInitial = 64;
  reliability.rtoMax = 1024;
  reliability.nackMinInterval = 16;
  std::vector<std::unique_ptr<Network>> nets;
  for (const Simulator::Kernel kernel :
       {Simulator::Kernel::EventDriven, Simulator::Kernel::Compiled}) {
    NetworkConfig cfg;
    cfg.params.n = 16;
    cfg.params.p = 4;
    cfg.kernel = kernel;
    cfg.reliability = reliability;
    cfg.faultPlan = makeFaultPlan(*topo, campaign);
    auto net = std::make_unique<Network>(topo, cfg);
    TrafficConfig traffic;
    traffic.offeredLoad = 0.1;
    traffic.payloadFlits = 4;
    traffic.seed = 11;
    net->attachTraffic(traffic);
    nets.push_back(std::move(net));
  }
  Network& ref = *nets[0];
  Network& compiled = *nets[1];
  for (std::uint64_t c = 0; c < 1500; ++c) {
    ref.run(1);
    compiled.run(1);
    ASSERT_EQ(ref.ledger().queued(), compiled.ledger().queued())
        << "cycle " << c;
    ASSERT_EQ(ref.ledger().delivered(), compiled.ledger().delivered())
        << "cycle " << c;
    ASSERT_EQ(ref.flitsCorrupted(), compiled.flitsCorrupted())
        << "cycle " << c;
    ASSERT_EQ(ref.flitsDropped(), compiled.flitsDropped()) << "cycle " << c;
    ASSERT_EQ(ref.faultStallCycles(), compiled.faultStallCycles())
        << "cycle " << c;
  }
  EXPECT_GT(ref.flitsCorrupted() + ref.flitsDropped() + ref.faultStallCycles(),
            0u)
      << "the campaign must actually have perturbed the run";
  for (int i = 0; i < topo->nodes(); ++i) {
    const NodeId n = topo->nodeAt(i);
    ASSERT_EQ(ref.ni(n).received(), compiled.ni(n).received())
        << "node " << i;
  }
  // The stalled handshakes must have been settled through iterated
  // segments, proving the cyclic path is actually exercised.
  const sim::CompiledProgram* prog = compiled.simulator().compiledProgram();
  ASSERT_NE(prog, nullptr);
  EXPECT_GT(prog->iterateSegmentCount(), 0u);
}

// --- drain agreement -------------------------------------------------------

TEST(KernelTrichotomyTest, FloodDrainCompletesIdenticallyUnderAllKernels) {
  // Explicit sends (no generators) so the network can fully drain; every
  // kernel must deliver the same packet count and report drain completion
  // at the same simulator cycle.
  for (const auto& topo :
       {makeTopology("mesh", 3, 3), makeTopology("torus", 4, 4),
        makeTopology("ring", 6, 1)}) {
    SCOPED_TRACE(topo->describe());
    struct Run {
      std::uint64_t cycle = 0;
      std::uint64_t delivered = 0;
    };
    std::vector<Run> runs;
    struct KernelPick {
      Simulator::Kernel kernel;
      int threads;
    };
    const KernelPick picks[] = {{Simulator::Kernel::Naive, 1},
                                {Simulator::Kernel::EventDriven, 1},
                                {Simulator::Kernel::ParallelEventDriven, 2},
                                {Simulator::Kernel::ParallelEventDriven, 3},
                                {Simulator::Kernel::Compiled, 1}};
    for (const KernelPick& pick : picks) {
      NetworkConfig cfg;
      cfg.kernel = pick.kernel;
      cfg.threads = pick.threads;
      Network net(topo, cfg);
      std::uint64_t sent = 0;
      for (int round = 0; round < 4; ++round) {
        for (int s = 0; s < topo->nodes(); ++s) {
          const NodeId src = topo->nodeAt(s);
          const NodeId dst = topo->nodeAt((s + 1 + round) % topo->nodes());
          if (dst == src) continue;
          net.ni(src).send(dst, {1u, 2u, 3u, static_cast<std::uint32_t>(s)});
          ++sent;
        }
      }
      ASSERT_TRUE(net.drain(20000));
      EXPECT_TRUE(net.healthy());
      EXPECT_EQ(net.ledger().delivered(), sent);
      runs.push_back({net.simulator().cycle(), net.ledger().delivered()});
    }
    for (std::size_t k = 1; k < runs.size(); ++k) {
      EXPECT_EQ(runs[0].cycle, runs[k].cycle) << "kernel " << k;
      EXPECT_EQ(runs[0].delivered, runs[k].delivered) << "kernel " << k;
    }
  }
}

}  // namespace
}  // namespace rasoc::noc
