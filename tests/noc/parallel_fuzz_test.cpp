// Randomized differential fuzzing of the parallel settle kernel.  Every
// scenario is seeded and fully reproducible: a random small topology
// (mesh / torus / ring, 2-16 nodes), a random traffic pattern valid for
// that topology, and a random thread count are run flit-for-flit against
// an event-driven reference network built from the identical
// configuration.  A second family fuzzes the raw simulator: random module
// chains with random partition hints, poked through the Wire::force
// between-cycle window and stepped through runUntil boundary cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "sim/module.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/wire.hpp"

namespace rasoc::noc {
namespace {

using sim::Simulator;
using sim::Wire;
using sim::Xoshiro256;

// --- network-level fuzz ----------------------------------------------------

struct Scenario {
  std::shared_ptr<const Topology> topo;
  TrafficConfig traffic;
  int threads = 2;
  std::uint64_t cycles = 400;

  std::string describe() const {
    return topo->describe() + " " + std::string(name(traffic.pattern)) +
           " load " + std::to_string(traffic.offeredLoad) + " threads " +
           std::to_string(threads) + " seed " +
           std::to_string(traffic.seed);
  }
};

Scenario randomScenario(std::uint64_t seed, int index) {
  Xoshiro256 rng(seed);
  Scenario s;
  switch (rng.below(3)) {
    case 0:
      s.topo = makeTopology("mesh", 2 + static_cast<int>(rng.below(3)),
                            2 + static_cast<int>(rng.below(3)));
      break;
    case 1:
      s.topo = makeTopology("torus", 2 + static_cast<int>(rng.below(3)),
                            2 + static_cast<int>(rng.below(3)));
      break;
    default:
      s.topo = makeTopology("ring", 2 + static_cast<int>(rng.below(15)), 1);
      break;
  }
  // Patterns valid on this topology (validatePattern's rules): Transpose
  // needs a square extent, HotSpot needs an existing target node.
  const Extent extent = s.topo->extent();
  std::vector<TrafficPattern> patterns = {TrafficPattern::UniformRandom,
                                          TrafficPattern::BitComplement,
                                          TrafficPattern::NearestNeighbor,
                                          TrafficPattern::HotSpot};
  if (extent.width == extent.height)
    patterns.push_back(TrafficPattern::Transpose);
  s.traffic.pattern = patterns[rng.below(patterns.size())];
  s.traffic.hotspot =
      s.topo->nodeAt(static_cast<int>(rng.below(s.topo->nodes())));
  s.traffic.offeredLoad = 0.05 + 0.75 * rng.uniform();
  s.traffic.payloadFlits = 1 + static_cast<int>(rng.below(6));
  s.traffic.seed = rng.next();
  s.threads = 2 + index % 3;  // 2, 3, 4
  s.cycles = 300 + rng.below(400);
  return s;
}

std::unique_ptr<Network> buildNet(const Scenario& s, Simulator::Kernel kernel,
                                  int threads) {
  NetworkConfig cfg;
  cfg.params.n = 16;  // room for the wider RIB in the header flit
  cfg.params.m = 12;  // 6 bits per RIB axis: covers a 16-node ring's offsets
  cfg.kernel = kernel;
  cfg.threads = threads;
  auto net = std::make_unique<Network>(s.topo, cfg);
  net->attachTraffic(s.traffic);
  return net;
}

TEST(ParallelFuzzTest, RandomTopologiesMatchEventDrivenFlitForFlit) {
  for (int i = 0; i < 10; ++i) {
    const Scenario s = randomScenario(0xf02d2026u + 977u * i, i);
    SCOPED_TRACE("scenario " + std::to_string(i) + ": " + s.describe());
    auto ref = buildNet(s, Simulator::Kernel::EventDriven, 1);
    auto par = buildNet(s, Simulator::Kernel::ParallelEventDriven, s.threads);
    for (std::uint64_t c = 0; c < s.cycles; ++c) {
      ref->run(1);
      par->run(1);
      ASSERT_EQ(ref->ledger().queued(), par->ledger().queued())
          << "cycle " << c;
      ASSERT_EQ(ref->ledger().delivered(), par->ledger().delivered())
          << "cycle " << c;
      ASSERT_EQ(ref->ledger().inFlight(), par->ledger().inFlight())
          << "cycle " << c;
    }
    EXPECT_EQ(ref->healthy(), par->healthy());
    for (int n = 0; n < s.topo->nodes(); ++n) {
      const NodeId node = s.topo->nodeAt(n);
      ASSERT_EQ(ref->ni(node).received(), par->ni(node).received())
          << "node " << n;
    }
    EXPECT_DOUBLE_EQ(ref->ledger().packetLatency().mean(),
                     par->ledger().packetLatency().mean());
  }
}

TEST(ParallelFuzzTest, RunUntilBoundariesAgreeWithEventDriven) {
  // runUntil must return the same verdict at the same cycle under both
  // kernels: predicate met within budget, met exactly at the budget, and
  // missed by one cycle.
  for (int i = 0; i < 6; ++i) {
    const Scenario s = randomScenario(0xb07de2e5u + 131u * i, i);
    SCOPED_TRACE("scenario " + std::to_string(i) + ": " + s.describe());
    auto ref = buildNet(s, Simulator::Kernel::EventDriven, 1);
    auto par = buildNet(s, Simulator::Kernel::ParallelEventDriven, s.threads);

    const std::uint64_t goal = 5 + static_cast<std::uint64_t>(i);
    const bool refMet = ref->simulator().runUntil(
        [&] { return ref->ledger().delivered() >= goal; }, s.cycles);
    const bool parMet = par->simulator().runUntil(
        [&] { return par->ledger().delivered() >= goal; }, s.cycles);
    ASSERT_EQ(refMet, parMet);
    ASSERT_EQ(ref->simulator().cycle(), par->simulator().cycle());
    ASSERT_EQ(ref->ledger().delivered(), par->ledger().delivered());

    if (refMet) {
      // The predicate first held at cycle() == exact, i.e. on runUntil's
      // (exact+1)-th check.  Re-run fresh networks with the budget cut to
      // exactly that check, then one short of it: met / not met.
      const std::uint64_t exact = ref->simulator().cycle();
      for (const std::uint64_t budget : {exact + 1, exact}) {
        auto ref2 = buildNet(s, Simulator::Kernel::EventDriven, 1);
        auto par2 =
            buildNet(s, Simulator::Kernel::ParallelEventDriven, s.threads);
        const bool ref2Met = ref2->simulator().runUntil(
            [&] { return ref2->ledger().delivered() >= goal; }, budget);
        const bool par2Met = par2->simulator().runUntil(
            [&] { return par2->ledger().delivered() >= goal; }, budget);
        ASSERT_EQ(ref2Met, par2Met) << "budget " << budget;
        ASSERT_EQ(ref2Met, budget == exact + 1) << "budget " << budget;
        ASSERT_EQ(ref2->simulator().cycle(), par2->simulator().cycle())
            << "budget " << budget;
      }
    }
  }
}

TEST(ParallelFuzzTest, ZeroCycleRunUntilAgrees) {
  // maxCycles == 0 never advances and never satisfies the predicate.
  const Scenario s = randomScenario(0x5eed, 0);
  auto ref = buildNet(s, Simulator::Kernel::EventDriven, 1);
  auto par = buildNet(s, Simulator::Kernel::ParallelEventDriven, s.threads);
  EXPECT_FALSE(ref->simulator().runUntil([] { return true; }, 0));
  EXPECT_FALSE(par->simulator().runUntil([] { return true; }, 0));
  EXPECT_EQ(ref->simulator().cycle(), par->simulator().cycle());
}

// --- simulator-level poke fuzz ---------------------------------------------

// y = x + 1; the combinational unit the random chains are built from.
class Increment : public sim::Module {
 public:
  Increment(std::string name, Wire<std::uint32_t>& x, Wire<std::uint32_t>& y)
      : Module(std::move(name)), x_(x), y_(y) {
    sensitive(x_);
  }
  void evaluate() override { y_.set(x_.get() + 1); }

 private:
  Wire<std::uint32_t>& x_;
  Wire<std::uint32_t>& y_;
};

// A chain w[0] -> w[1] -> ... -> w[length] of Increments with randomized
// partition hints, mirrored across an event-driven reference and a
// parallel simulator.  Random hints (not contiguous blocks) maximize
// frontier modules - the hardest case for cross-domain wake-ups.
struct ChainPair {
  std::vector<std::unique_ptr<Wire<std::uint32_t>>> refWires, parWires;
  std::vector<std::unique_ptr<Increment>> refMods, parMods;
  Simulator ref, par;

  ChainPair(int length, int threads, Xoshiro256& rng) {
    for (int i = 0; i <= length; ++i) {
      refWires.push_back(std::make_unique<Wire<std::uint32_t>>(0u));
      parWires.push_back(std::make_unique<Wire<std::uint32_t>>(0u));
    }
    for (int i = 0; i < length; ++i) {
      const int hint = static_cast<int>(rng.below(threads));
      refMods.push_back(std::make_unique<Increment>(
          "ref" + std::to_string(i), *refWires[i], *refWires[i + 1]));
      parMods.push_back(std::make_unique<Increment>(
          "par" + std::to_string(i), *parWires[i], *parWires[i + 1]));
      parMods.back()->setPartitionHint(hint);
      ref.add(*refMods.back());
      par.add(*parMods.back());
    }
    ref.setKernel(Simulator::Kernel::EventDriven);
    par.setThreads(threads);
    par.setKernel(Simulator::Kernel::ParallelEventDriven);
    ref.settle();
    par.settle();
  }

  void compare(const std::string& where) const {
    for (std::size_t i = 0; i < refWires.size(); ++i)
      ASSERT_EQ(refWires[i]->get(), parWires[i]->get())
          << where << " wire " << i;
    ASSERT_EQ(ref.cycle(), par.cycle()) << where;
  }
};

TEST(ParallelFuzzTest, RandomPokesThroughForceWindowMatchEventDriven) {
  // Interleave force pokes (legal only between cycles - the "poke window"
  // the kernels must honour identically), settles, single steps and short
  // runs, in a random order, on randomly partitioned chains.
  for (int trial = 0; trial < 8; ++trial) {
    Xoshiro256 rng(0xca11ab1eu + 6151u * trial);
    const int length = 4 + static_cast<int>(rng.below(21));
    const int threads = 2 + trial % 3;
    SCOPED_TRACE("trial " + std::to_string(trial) + " length " +
                 std::to_string(length) + " threads " +
                 std::to_string(threads));
    ChainPair chains(length, threads, rng);
    chains.compare("initial");
    for (int op = 0; op < 40; ++op) {
      const std::string where = "op " + std::to_string(op);
      switch (rng.below(4)) {
        case 0: {  // poke a random wire, identical on both sides
          const std::size_t w = rng.below(chains.refWires.size());
          const auto v = static_cast<std::uint32_t>(rng.below(1000));
          chains.refWires[w]->force(v);
          chains.parWires[w]->force(v);
          chains.ref.settle();
          chains.par.settle();
          break;
        }
        case 1:
          chains.ref.settle();
          chains.par.settle();
          break;
        case 2:
          chains.ref.step();
          chains.par.step();
          break;
        default: {
          const std::uint64_t n = 1 + rng.below(3);
          chains.ref.run(n);
          chains.par.run(n);
          break;
        }
      }
      chains.compare(where);
    }
    // The parallel run must have exercised frontier traffic: random hints
    // on a chain guarantee cross-domain edges.
    EXPECT_FALSE(chains.par.partition().frontierEdges.empty());
  }
}

}  // namespace
}  // namespace rasoc::noc
