// ReliableTransport protocol engine: sequence arithmetic, exactly-once
// ordering across sequence wraparound, loss recovery, NACK fast
// retransmit, bounded exponential backoff and abandonment.  The engine is
// exercised without a network — an in-memory wire shuttles frames between
// two transports, optionally dropping or corrupting them.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "noc/reliable.hpp"
#include "noc/topology.hpp"

namespace rasoc::noc {
namespace {

constexpr int kPayloadBits = 16;

ReliabilityConfig makeConfig(int seqBits, int window) {
  ReliabilityConfig c;
  c.enabled = true;
  c.seqBits = seqBits;
  c.window = window;
  c.rtoInitial = 16;
  c.rtoMax = 256;
  c.nackMinInterval = 8;
  return c;
}

TEST(SequenceArithmeticTest, DistanceAndOrderWrapAround) {
  EXPECT_EQ(seqMask(4), 0xfu);
  EXPECT_EQ(seqDistance(0, 3, 8), 3u);
  EXPECT_EQ(seqDistance(250, 3, 8), 9u);   // wraps through 255 -> 0
  EXPECT_EQ(seqDistance(3, 250, 8), 247u);
  EXPECT_TRUE(seqLess(255, 0, 8));   // 0 is one ahead of 255
  EXPECT_FALSE(seqLess(0, 255, 8));  // ...not 255 ahead of 0
  EXPECT_TRUE(seqLess(14, 1, 4));    // same at 4 bits
  EXPECT_FALSE(seqLess(7, 7, 4));
  EXPECT_TRUE(seqLessEq(7, 7, 4));
  EXPECT_TRUE(seqLessEq(6, 7, 4));
}

TEST(ReliabilityConfigTest, ValidateRejectsInconsistentKnobs) {
  // Window larger than half the sequence space breaks selective repeat.
  ReliabilityConfig c = makeConfig(4, 9);
  EXPECT_THROW(c.validate(kPayloadBits), std::invalid_argument);
  c = makeConfig(4, 8);
  EXPECT_NO_THROW(c.validate(kPayloadBits));
  // Control word (seqBits + 2 type bits) must fit a payload word.
  c = makeConfig(15, 8);
  EXPECT_THROW(c.validate(kPayloadBits), std::invalid_argument);
  // Backoff ceiling below the initial RTO is nonsense.
  c = makeConfig(8, 8);
  c.rtoMax = c.rtoInitial - 1;
  EXPECT_THROW(c.validate(kPayloadBits), std::invalid_argument);
  // Degenerate window.
  c = makeConfig(8, 0);
  EXPECT_THROW(c.validate(kPayloadBits), std::invalid_argument);
}

// In-memory wire between two transports on a 2x1 mesh.  Frames cross with
// a fixed latency; `filter` may mutate the words in flight or return false
// to drop the message entirely.  onFrameSent fires at the cycle the frame
// is handed to the wire, mirroring the NI's last-flit-out arming point.
class Harness {
 public:
  // (sender index, wire words incl. leading source index) -> keep?
  using Filter = std::function<bool(int, std::vector<std::uint32_t>&)>;

  explicit Harness(const ReliabilityConfig& config, std::uint64_t latency = 4)
      : topology_(makeTopology("mesh", 2, 1)), latency_(latency) {
    for (int i = 0; i < 2; ++i) {
      transports_.push_back(std::make_unique<ReliableTransport>(
          config, topology_, topology_->nodeAt(i), kPayloadBits));
      transports_.back()->reset();
    }
  }

  ReliableTransport& at(int i) { return *transports_[i]; }
  NodeId node(int i) const { return topology_->nodeAt(i); }
  std::uint64_t cycle() const { return cycle_; }
  void setFilter(Filter f) { filter_ = std::move(f); }

  const std::vector<std::vector<std::uint32_t>>& deliveredAt(int i) const {
    return delivered_[i];
  }

  void step() {
    for (int i = 0; i < 2; ++i) {
      for (auto& frame : transports_[i]->takeFrames()) {
        if (frame.frameId != 0)
          transports_[i]->onFrameSent(frame.frameId, cycle_);
        std::vector<std::uint32_t> words;
        words.push_back(static_cast<std::uint32_t>(i));
        words.insert(words.end(), frame.words.begin(), frame.words.end());
        if (filter_ && !filter_(i, words)) continue;
        inFlight_.push_back({topology_->indexOf(frame.dst), std::move(words),
                             cycle_ + latency_});
      }
    }
    for (auto it = inFlight_.begin(); it != inFlight_.end();) {
      if (it->deliverAt <= cycle_) {
        transports_[it->to]->onWireWords(it->words, cycle_);
        it = inFlight_.erase(it);
      } else {
        ++it;
      }
    }
    for (int i = 0; i < 2; ++i) {
      transports_[i]->onCycle(cycle_);
      for (auto& d : transports_[i]->takeDeliveries())
        delivered_[i].push_back(std::move(d.payload));
    }
    ++cycle_;
  }

  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) step();
  }

  // Steps until both transports are idle (everything acknowledged and
  // delivered); returns false if `cap` cycles pass first.
  bool runUntilIdle(int cap) {
    for (int i = 0; i < cap; ++i) {
      if (at(0).idle() && at(1).idle() && inFlight_.empty()) return true;
      step();
    }
    return at(0).idle() && at(1).idle() && inFlight_.empty();
  }

 private:
  struct Message {
    int to;
    std::vector<std::uint32_t> words;
    std::uint64_t deliverAt;
  };

  std::shared_ptr<const Topology> topology_;
  std::uint64_t latency_;
  std::vector<std::unique_ptr<ReliableTransport>> transports_;
  std::deque<Message> inFlight_;
  std::vector<std::vector<std::uint32_t>> delivered_[2];
  Filter filter_;
  std::uint64_t cycle_ = 0;
};

TEST(ReliableTransportTest, ExactlyOnceInOrderAcrossSeqWraparound) {
  // 100 frames through a 4-bit sequence space (16 values) forces several
  // wraparounds; a perfect wire must need no retransmissions.
  Harness h(makeConfig(/*seqBits=*/4, /*window=*/8));
  const int kFrames = 100;
  for (int i = 0; i < kFrames; ++i)
    h.at(0).submit(h.node(1), {static_cast<std::uint32_t>(i)});
  ASSERT_TRUE(h.runUntilIdle(20000));
  const auto& rx = h.deliveredAt(1);
  ASSERT_EQ(rx.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(rx[i].size(), 1u);
    EXPECT_EQ(rx[i][0], static_cast<std::uint32_t>(i)) << "frame " << i;
  }
  EXPECT_EQ(h.at(0).stats().retransmissions, 0u);
  EXPECT_EQ(h.at(0).stats().timeouts, 0u);
  EXPECT_EQ(h.at(1).stats().duplicatesDropped, 0u);
  EXPECT_EQ(h.at(1).stats().payloadsDelivered,
            static_cast<std::uint64_t>(kFrames));
}

TEST(ReliableTransportTest, WindowLimitsOutstandingFramesAndBacklogs) {
  Harness h(makeConfig(6, /*window=*/2));
  for (int i = 0; i < 5; ++i)
    h.at(0).submit(h.node(1), {static_cast<std::uint32_t>(0x100 + i)});
  EXPECT_EQ(h.at(0).unackedFrames(), 2u);
  EXPECT_EQ(h.at(0).backlogFrames(), 3u);
  ASSERT_TRUE(h.runUntilIdle(5000));
  ASSERT_EQ(h.deliveredAt(1).size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(h.deliveredAt(1)[i][0], static_cast<std::uint32_t>(0x100 + i));
}

TEST(ReliableTransportTest, LossyWireStillDeliversExactlyOnceInOrder) {
  Harness h(makeConfig(6, 4));
  int count = 0;
  // Drop every third wire message, DATA and control frames alike.
  h.setFilter([&count](int, std::vector<std::uint32_t>&) {
    return ++count % 3 != 0;
  });
  const int kFrames = 40;
  for (int i = 0; i < kFrames; ++i)
    h.at(0).submit(h.node(1), {static_cast<std::uint32_t>(0x200 + i)});
  ASSERT_TRUE(h.runUntilIdle(50000));
  const auto& rx = h.deliveredAt(1);
  ASSERT_EQ(rx.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i)
    EXPECT_EQ(rx[i][0], static_cast<std::uint32_t>(0x200 + i));
  EXPECT_GT(h.at(0).stats().retransmissions, 0u);
  EXPECT_EQ(h.at(1).stats().payloadsDelivered,
            static_cast<std::uint64_t>(kFrames));
}

TEST(ReliableTransportTest, BackoffDoublesPerTimeoutAndCapsAtRtoMax) {
  ReliabilityConfig c = makeConfig(8, 8);
  c.rtoInitial = 16;
  c.rtoMax = 64;
  Harness h(c);
  h.setFilter([](int, std::vector<std::uint32_t>&) { return false; });
  h.at(0).submit(h.node(1), {0x42});
  EXPECT_EQ(h.at(0).currentRto(h.node(1)), 16u);
  auto runToTimeouts = [&h](std::uint64_t n) {
    for (int i = 0; i < 5000 && h.at(0).stats().timeouts < n; ++i) h.step();
    ASSERT_EQ(h.at(0).stats().timeouts, n);
  };
  runToTimeouts(1);
  EXPECT_EQ(h.at(0).currentRto(h.node(1)), 32u);
  runToTimeouts(2);
  EXPECT_EQ(h.at(0).currentRto(h.node(1)), 64u);
  runToTimeouts(4);
  EXPECT_EQ(h.at(0).currentRto(h.node(1)), 64u);  // capped
  EXPECT_EQ(h.at(0).stats().abandoned, 0u);       // retries forever
}

TEST(ReliableTransportTest, MaxRetriesAbandonsAndReportsTheLoss) {
  ReliabilityConfig c = makeConfig(8, 8);
  c.rtoInitial = 8;
  c.rtoMax = 16;
  c.maxRetries = 2;
  Harness h(c);
  h.setFilter([](int, std::vector<std::uint32_t>&) { return false; });
  h.at(0).submit(h.node(1), {0x7});
  h.run(2000);
  EXPECT_EQ(h.at(0).stats().abandoned, 1u);
  EXPECT_TRUE(h.at(0).idle());
  EXPECT_TRUE(h.deliveredAt(1).empty());
}

TEST(ReliableTransportTest, NackFromGapTriggersFastRetransmit) {
  ReliabilityConfig c = makeConfig(8, 8);
  c.rtoInitial = 500;  // far beyond the test horizon: only a NACK recovers
  c.rtoMax = 500;
  c.nackMinInterval = 8;
  Harness h(c);
  bool droppedFirst = false;
  h.setFilter([&droppedFirst](int src, std::vector<std::uint32_t>&) {
    if (src == 0 && !droppedFirst) {
      droppedFirst = true;  // lose only the very first DATA frame
      return false;
    }
    return true;
  });
  h.at(0).submit(h.node(1), {0xa});
  h.at(0).submit(h.node(1), {0xb});
  ASSERT_TRUE(h.runUntilIdle(400));
  const auto& rx = h.deliveredAt(1);
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_EQ(rx[0][0], 0xau);
  EXPECT_EQ(rx[1][0], 0xbu);
  EXPECT_GE(h.at(1).stats().nacksSent, 1u);
  EXPECT_GE(h.at(0).stats().nacksReceived, 1u);
  EXPECT_EQ(h.at(0).stats().retransmissions, 1u);
  EXPECT_EQ(h.at(0).stats().timeouts, 0u);  // recovered before the RTO
  EXPECT_GT(h.at(1).stats().outOfOrderBuffered, 0u);
}

TEST(ReliableTransportTest, DuplicateDataFrameDroppedAndReAcked) {
  auto topology = makeTopology("mesh", 2, 1);
  ReliableTransport a(makeConfig(4, 8), topology, topology->nodeAt(0),
                      kPayloadBits);
  ReliableTransport b(makeConfig(4, 8), topology, topology->nodeAt(1),
                      kPayloadBits);
  a.reset();
  b.reset();
  a.submit(topology->nodeAt(1), {0x33});
  auto frames = a.takeFrames();
  ASSERT_EQ(frames.size(), 1u);
  std::vector<std::uint32_t> words{0};  // source index prepended by the NI
  words.insert(words.end(), frames[0].words.begin(), frames[0].words.end());
  b.onWireWords(words, 0);
  b.onWireWords(words, 1);  // the same frame again (spurious retransmit)
  EXPECT_EQ(b.takeDeliveries().size(), 1u);
  EXPECT_EQ(b.stats().payloadsDelivered, 1u);
  EXPECT_EQ(b.stats().duplicatesDropped, 1u);
  // Both copies are acknowledged, so a sender whose ACK was lost re-syncs.
  EXPECT_EQ(b.stats().acksSent, 2u);
}

TEST(ReliableTransportTest, CorruptedFrameIsCountedAndDiscarded) {
  auto topology = makeTopology("mesh", 2, 1);
  ReliableTransport a(makeConfig(4, 8), topology, topology->nodeAt(0),
                      kPayloadBits);
  ReliableTransport b(makeConfig(4, 8), topology, topology->nodeAt(1),
                      kPayloadBits);
  a.reset();
  b.reset();
  a.submit(topology->nodeAt(1), {0x55, 0x66});
  auto frames = a.takeFrames();
  ASSERT_EQ(frames.size(), 1u);
  std::vector<std::uint32_t> words{0};
  words.insert(words.end(), frames[0].words.begin(), frames[0].words.end());
  words[2] ^= 1u;  // single-bit payload corruption, as FaultyLink injects
  b.onWireWords(words, 0);
  EXPECT_TRUE(b.takeDeliveries().empty());
  EXPECT_EQ(b.stats().malformedFrames, 1u);
  EXPECT_EQ(b.stats().acksSent, 0u);  // no ACK for garbage
  // A truncated frame (body flits lost to a link-down window) is also
  // malformed rather than misparsed.
  b.onWireWords({0, frames[0].words.back()}, 1);
  EXPECT_EQ(b.stats().malformedFrames, 2u);
  EXPECT_TRUE(b.takeDeliveries().empty());
}

TEST(ReliableTransportTest, BidirectionalTrafficKeepsFlowsIndependent) {
  Harness h(makeConfig(5, 4));
  const int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) {
    h.at(0).submit(h.node(1), {static_cast<std::uint32_t>(0x300 + i)});
    h.at(1).submit(h.node(0), {static_cast<std::uint32_t>(0x400 + i)});
  }
  ASSERT_TRUE(h.runUntilIdle(20000));
  ASSERT_EQ(h.deliveredAt(1).size(), static_cast<std::size_t>(kFrames));
  ASSERT_EQ(h.deliveredAt(0).size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(h.deliveredAt(1)[i][0], static_cast<std::uint32_t>(0x300 + i));
    EXPECT_EQ(h.deliveredAt(0)[i][0], static_cast<std::uint32_t>(0x400 + i));
  }
}

}  // namespace
}  // namespace rasoc::noc
