// Randomized differential fuzzing of the compiled settle kernel.  Every
// scenario is seeded and fully reproducible, mirroring
// parallel_fuzz_test.cpp: a random small topology (mesh / torus / ring),
// a random traffic pattern valid for that topology, run flit-for-flit
// against an event-driven reference network built from the identical
// configuration.  On top of the lockstep sweep, two compile-pass edge
// cases get dedicated coverage: Wire::force poke-window writes landing in
// the word-packed arena (via describing modules whose wires are
// arena-bound), and mid-run reset() recompiling the op tape cleanly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "sim/compile.hpp"
#include "sim/module.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/wire.hpp"

namespace rasoc::noc {
namespace {

using sim::Simulator;
using sim::Wire;
using sim::Xoshiro256;

// --- network-level fuzz ----------------------------------------------------

struct Scenario {
  std::shared_ptr<const Topology> topo;
  TrafficConfig traffic;
  std::uint64_t cycles = 400;

  std::string describe() const {
    return topo->describe() + " " + std::string(name(traffic.pattern)) +
           " load " + std::to_string(traffic.offeredLoad) + " seed " +
           std::to_string(traffic.seed);
  }
};

Scenario randomScenario(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Scenario s;
  switch (rng.below(3)) {
    case 0:
      s.topo = makeTopology("mesh", 2 + static_cast<int>(rng.below(3)),
                            2 + static_cast<int>(rng.below(3)));
      break;
    case 1:
      s.topo = makeTopology("torus", 2 + static_cast<int>(rng.below(3)),
                            2 + static_cast<int>(rng.below(3)));
      break;
    default:
      s.topo = makeTopology("ring", 2 + static_cast<int>(rng.below(15)), 1);
      break;
  }
  const Extent extent = s.topo->extent();
  std::vector<TrafficPattern> patterns = {TrafficPattern::UniformRandom,
                                          TrafficPattern::BitComplement,
                                          TrafficPattern::NearestNeighbor,
                                          TrafficPattern::HotSpot};
  if (extent.width == extent.height)
    patterns.push_back(TrafficPattern::Transpose);
  s.traffic.pattern = patterns[rng.below(patterns.size())];
  s.traffic.hotspot =
      s.topo->nodeAt(static_cast<int>(rng.below(s.topo->nodes())));
  s.traffic.offeredLoad = 0.05 + 0.75 * rng.uniform();
  s.traffic.payloadFlits = 1 + static_cast<int>(rng.below(6));
  s.traffic.seed = rng.next();
  s.cycles = 300 + rng.below(400);
  return s;
}

std::unique_ptr<Network> buildNet(const Scenario& s,
                                  Simulator::Kernel kernel) {
  NetworkConfig cfg;
  cfg.params.n = 16;  // room for the wider RIB in the header flit
  cfg.params.m = 12;  // 6 bits per RIB axis: covers a 16-node ring's offsets
  cfg.kernel = kernel;
  auto net = std::make_unique<Network>(s.topo, cfg);
  net->attachTraffic(s.traffic);
  return net;
}

void compareNets(const Scenario& s, Network& ref, Network& cmp,
                 const std::string& where) {
  ASSERT_EQ(ref.ledger().queued(), cmp.ledger().queued()) << where;
  ASSERT_EQ(ref.ledger().delivered(), cmp.ledger().delivered()) << where;
  ASSERT_EQ(ref.ledger().inFlight(), cmp.ledger().inFlight()) << where;
  for (int n = 0; n < s.topo->nodes(); ++n) {
    const NodeId node = s.topo->nodeAt(n);
    ASSERT_EQ(ref.ni(node).received(), cmp.ni(node).received())
        << where << " node " << n;
  }
}

TEST(CompiledFuzzTest, RandomTopologiesMatchEventDrivenFlitForFlit) {
  for (int i = 0; i < 10; ++i) {
    const Scenario s = randomScenario(0xc03b11edu + 977u * i);
    SCOPED_TRACE("scenario " + std::to_string(i) + ": " + s.describe());
    auto ref = buildNet(s, Simulator::Kernel::EventDriven);
    auto com = buildNet(s, Simulator::Kernel::Compiled);
    for (std::uint64_t c = 0; c < s.cycles; ++c) {
      ref->run(1);
      com->run(1);
      ASSERT_EQ(ref->ledger().queued(), com->ledger().queued())
          << "cycle " << c;
      ASSERT_EQ(ref->ledger().delivered(), com->ledger().delivered())
          << "cycle " << c;
      ASSERT_EQ(ref->ledger().inFlight(), com->ledger().inFlight())
          << "cycle " << c;
    }
    EXPECT_EQ(ref->healthy(), com->healthy());
    compareNets(s, *ref, *com, "final");
    EXPECT_DOUBLE_EQ(ref->ledger().packetLatency().mean(),
                     com->ledger().packetLatency().mean());
  }
}

TEST(CompiledFuzzTest, MidRunResetRecompilesCleanly) {
  // reset() under the compiled kernel must discard the stale program, and
  // the recompiled tape must reproduce the event-driven reference exactly
  // — including a third leg against a freshly constructed network, which
  // pins that the recompile starts from the same blank state a first
  // compile does.
  for (int i = 0; i < 4; ++i) {
    const Scenario s = randomScenario(0x2e5e7000u + 131u * i);
    SCOPED_TRACE("scenario " + std::to_string(i) + ": " + s.describe());
    auto ref = buildNet(s, Simulator::Kernel::EventDriven);
    auto com = buildNet(s, Simulator::Kernel::Compiled);
    const std::uint64_t firstLeg = s.cycles / 2;
    ref->run(firstLeg);
    com->run(firstLeg);
    compareNets(s, *ref, *com, "pre-reset");

    ref->reset();
    com->reset();
    ref->run(s.cycles);
    com->run(s.cycles);
    compareNets(s, *ref, *com, "post-reset");

    // The ledger accumulates across reset() by design, so the fresh-network
    // leg compares the replayed machine state (per-node deliveries), not
    // the lifetime totals.
    auto fresh = buildNet(s, Simulator::Kernel::Compiled);
    fresh->run(s.cycles);
    for (int n = 0; n < s.topo->nodes(); ++n) {
      const NodeId node = s.topo->nodeAt(n);
      ASSERT_EQ(com->ni(node).received(), fresh->ni(node).received())
          << "fresh-vs-recompiled node " << n;
    }
    EXPECT_EQ(com->healthy(), fresh->healthy());
  }
}

// --- poke-window fuzz on arena-bound wires ---------------------------------

// y = x + k as a compiled arena op, so the chain's wires are genuinely
// bound into the word-packed arena (thunk-only programs bind nothing).
struct AddKCtx {
  sim::Slice in, out;
  std::uint32_t k = 0;
};

void addKOp(std::uint64_t* w, void* vctx) {
  auto* c = static_cast<AddKCtx*>(vctx);
  sim::opPutWord32(w, c->out, sim::opWord32(w, c->in) + c->k);
}

class AddConst : public sim::Module {
 public:
  AddConst(std::string name, Wire<std::uint32_t>& x, Wire<std::uint32_t>& y,
           std::uint32_t k)
      : Module(std::move(name)), x_(x), y_(y), k_(k) {
    sensitive(x_);
  }
  void evaluate() override { y_.set(x_.get() + k_); }
  bool describe(sim::Lowering& lw) override {
    AddKCtx c;
    c.in = lw.word32(x_);
    c.out = lw.word32(y_);
    c.k = k_;
    lw.op(&addKOp, lw.ctx(c), {&x_}, {&y_});
    return true;
  }

 private:
  Wire<std::uint32_t>& x_;
  Wire<std::uint32_t>& y_;
  std::uint32_t k_;
};

// An event-driven and a compiled simulator over identical AddConst chains.
// Only the head wire is undriven, so it is the only legal force target
// shared by full-sweep and event-driven semantics (forcing a driven wire
// survives an event-driven settle but is recomputed by a full tape pass).
struct ChainPair {
  std::vector<std::unique_ptr<Wire<std::uint32_t>>> refWires, comWires;
  std::vector<std::unique_ptr<AddConst>> refMods, comMods;
  Simulator ref, com;

  ChainPair(int length, Xoshiro256& rng) {
    for (int i = 0; i <= length; ++i) {
      refWires.push_back(std::make_unique<Wire<std::uint32_t>>(0u));
      comWires.push_back(std::make_unique<Wire<std::uint32_t>>(0u));
    }
    for (int i = 0; i < length; ++i) {
      const auto k = static_cast<std::uint32_t>(1 + rng.below(997));
      refMods.push_back(std::make_unique<AddConst>(
          "ref" + std::to_string(i), *refWires[i], *refWires[i + 1], k));
      comMods.push_back(std::make_unique<AddConst>(
          "com" + std::to_string(i), *comWires[i], *comWires[i + 1], k));
      ref.add(*refMods.back());
      com.add(*comMods.back());
    }
    ref.setKernel(Simulator::Kernel::EventDriven);
    com.setKernel(Simulator::Kernel::Compiled);
    ref.settle();
    com.settle();
  }

  void compare(const std::string& where) const {
    for (std::size_t i = 0; i < refWires.size(); ++i)
      ASSERT_EQ(refWires[i]->get(), comWires[i]->get())
          << where << " wire " << i;
    ASSERT_EQ(ref.cycle(), com.cycle()) << where;
  }
};

TEST(CompiledFuzzTest, ForcedArenaWritesMatchEventDriven) {
  // Interleave head-wire force pokes (the poke window: force writes
  // through the wire's arena binding, and the next tape pass must read
  // the forced bits back out of the arena), settles, single steps and
  // short runs, in a random order.
  for (int trial = 0; trial < 8; ++trial) {
    Xoshiro256 rng(0xf0ecedau + 6151u * trial);
    const int length = 4 + static_cast<int>(rng.below(21));
    SCOPED_TRACE("trial " + std::to_string(trial) + " length " +
                 std::to_string(length));
    ChainPair chains(length, rng);
    chains.compare("initial");
    for (int op = 0; op < 40; ++op) {
      const std::string where = "op " + std::to_string(op);
      switch (rng.below(4)) {
        case 0: {  // poke the undriven head, identical on both sides
          const auto v = static_cast<std::uint32_t>(rng.below(100000));
          chains.refWires[0]->force(v);
          chains.comWires[0]->force(v);
          chains.ref.settle();
          chains.com.settle();
          break;
        }
        case 1:
          chains.ref.settle();
          chains.com.settle();
          break;
        case 2:
          chains.ref.step();
          chains.com.step();
          break;
        default: {
          const std::uint64_t n = 1 + rng.below(3);
          chains.ref.run(n);
          chains.com.run(n);
          break;
        }
      }
      chains.compare(where);
    }
  }
}

TEST(CompiledFuzzTest, ForceInsideCompiledSettleThrows) {
  // The poke window closes during settle for every kernel; the compiled
  // tape inherits the guard through Wire::force's SettleContext check.
  Wire<std::uint32_t> a, b;
  struct Poker : sim::Module {
    Wire<std::uint32_t>& in;
    Wire<std::uint32_t>& out;
    Poker(Wire<std::uint32_t>& x, Wire<std::uint32_t>& y)
        : Module("poker"), in(x), out(y) {
      sensitive(in);
    }
    void evaluate() override {
      if (in.get() == 7) in.force(9);  // illegal: force mid-settle
      out.set(in.get() + 1);
    }
  } poker(a, b);
  Simulator sim;
  sim.add(poker);
  sim.setKernel(Simulator::Kernel::Compiled);
  sim.settle();
  a.force(7);
  EXPECT_THROW(sim.settle(), std::logic_error);
}

}  // namespace
}  // namespace rasoc::noc
