// Flow tracer validation, in three tiers:
//
//  1. Non-interference: with tracing enabled, the 8x8 mesh golden
//     fingerprints (network_topology_test.cpp / kernel_trichotomy_test.cpp)
//     reproduce bit-identically under every settle kernel (naive,
//     event-driven, parallel, compiled), and a traced run matches an
//     untraced twin counter for counter.
//  2. Determinism: the reconstructed event stream, the Perfetto JSON and
//     the latency decomposition are byte/value-identical across kernels
//     and thread counts for a fixed seed — including with kernel
//     profiling enabled, since profile data lives strictly outside the
//     traced event stream (kernelProfileJson / kernel_profile section).
//  3. Semantics: the per-flow decomposition sums exactly to the traced
//     end-to-end latency; a fault + reliability scenario shows the full
//     retransmission lifecycle (drop at the faulted hop, NACK/retransmit
//     frames, exactly-once ejection); watchdog stall snapshots carry the
//     blocked link's recent events.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "noc/watchdog.hpp"
#include "telemetry/trace_event.hpp"

namespace rasoc::noc {
namespace {

using router::Port;
using sim::Simulator;
using telemetry::TraceEvent;
using telemetry::TraceEventKind;

struct KernelPick {
  Simulator::Kernel kernel;
  int threads;
  const char* label;
};

const KernelPick kAllKernels[] = {
    {Simulator::Kernel::Naive, 1, "naive"},
    {Simulator::Kernel::EventDriven, 1, "event"},
    {Simulator::Kernel::ParallelEventDriven, 2, "parallel2"},
    {Simulator::Kernel::ParallelEventDriven, 4, "parallel4"},
    {Simulator::Kernel::Compiled, 1, "compiled"},
};

std::unique_ptr<Network> makeNet(const std::shared_ptr<const Topology>& topo,
                                 const KernelPick& pick,
                                 const TrafficConfig& traffic) {
  NetworkConfig cfg;
  cfg.params.n = 16;
  cfg.params.p = 4;
  cfg.kernel = pick.kernel;
  cfg.threads = pick.threads;
  auto net = std::make_unique<Network>(topo, cfg);
  net->attachTraffic(traffic);
  return net;
}

TrafficConfig smallTraffic() {
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::UniformRandom;
  traffic.offeredLoad = 0.30;
  traffic.payloadFlits = 3;
  traffic.seed = 99;
  return traffic;
}

ReliabilityConfig reliabilityOn() {
  ReliabilityConfig r;
  r.enabled = true;
  r.seqBits = 6;
  r.window = 8;
  r.rtoInitial = 64;
  r.rtoMax = 1024;
  r.nackMinInterval = 16;
  return r;
}

// --- tier 1: non-interference ----------------------------------------------

// The exact 8x8 mesh constants pinned by network_topology_test.cpp.  A
// traced network must reproduce them bit for bit under every kernel: the
// tracer only *observes* settled wires and lifetime counters.
struct Golden {
  TrafficPattern pattern;
  double load;
  std::uint64_t queued;
  std::uint64_t delivered;
  std::uint64_t flits;
  double latMean;
  double netMean;
};

const Golden kTracedGoldens[] = {
    {TrafficPattern::UniformRandom, 0.05, 1031, 1023, 6138,
     19.066471163245357, 18.885630498533725},
    {TrafficPattern::Transpose, 0.20, 3227, 3098, 18588, 69.399935442220794,
     42.611039380245316},
};

TEST(FlowTraceGoldenTest, TracedRunsReproduceGoldenFingerprints) {
  for (const KernelPick& pick :
       {kAllKernels[0], kAllKernels[1], kAllKernels[2], kAllKernels[4]}) {
    for (const Golden& g : kTracedGoldens) {
      SCOPED_TRACE(std::string(pick.label) + " " +
                   std::string(name(g.pattern)));
      TrafficConfig traffic;
      traffic.pattern = g.pattern;
      traffic.offeredLoad = g.load;
      traffic.payloadFlits = 4;
      traffic.seed = 2026;
      auto net = makeNet(std::make_shared<MeshTopology>(MeshShape{8, 8}),
                         pick, traffic);
      FlowTracer& tracer = net->enableTracing();
      net->run(2000);
      EXPECT_EQ(net->ledger().queued(), g.queued);
      EXPECT_EQ(net->ledger().delivered(), g.delivered);
      EXPECT_EQ(net->ledger().flitsDelivered(), g.flits);
      EXPECT_DOUBLE_EQ(net->ledger().packetLatency().mean(), g.latMean);
      EXPECT_DOUBLE_EQ(net->ledger().networkLatency().mean(), g.netMean);
      EXPECT_TRUE(net->healthy());
      // ...and it must actually have traced the traffic.
      EXPECT_EQ(tracer.packetsTraced(), g.queued);
      EXPECT_EQ(tracer.packetsCompleted(), g.delivered);
    }
  }
}

TEST(FlowTraceTest, TracedAndUntracedTwinsAgreeOnEveryCounter) {
  const auto topo = makeTopology("torus", 4, 4);
  auto traced = makeNet(topo, kAllKernels[1], smallTraffic());
  auto plain = makeNet(topo, kAllKernels[1], smallTraffic());
  EXPECT_EQ(plain->tracer(), nullptr);
  traced->enableTracing();
  traced->run(800);
  plain->run(800);
  EXPECT_EQ(traced->ledger().queued(), plain->ledger().queued());
  EXPECT_EQ(traced->ledger().delivered(), plain->ledger().delivered());
  EXPECT_EQ(traced->ledger().flitsDelivered(),
            plain->ledger().flitsDelivered());
  EXPECT_DOUBLE_EQ(traced->ledger().packetLatency().mean(),
                   plain->ledger().packetLatency().mean());
  for (int i = 0; i < topo->nodes(); ++i) {
    const NodeId n = topo->nodeAt(i);
    ASSERT_EQ(traced->ni(n).received(), plain->ni(n).received())
        << "node " << i;
  }
}

TEST(FlowTraceTest, EnableTracingGuardsAgainstLateAttachment) {
  const auto topo = makeTopology("mesh", 2, 2);
  {
    Network net(topo, NetworkConfig{});
    net.enableTracing();
    EXPECT_THROW(net.enableTracing(), std::logic_error);
  }
  {
    Network net(topo, NetworkConfig{});
    net.run(1);
    EXPECT_THROW(net.enableTracing(), std::logic_error);
  }
  {
    Network net(topo, NetworkConfig{});
    net.ni(topo->nodeAt(0)).send(topo->nodeAt(1), {0x1});
    EXPECT_THROW(net.enableTracing(), std::logic_error);
  }
}

TEST(FlowTraceTest, EnableTracingRejectsVirtualChannelConfigs) {
  // Documented gate: the tracer's link-walk reconstruction assumes one
  // wormhole per physical channel, which numVCs > 1 breaks (packets
  // interleave flit-by-flit).  The network must refuse loudly rather than
  // emit a silently wrong trace; VC'd runs are covered by the lockstep
  // differential suites instead.
  const auto topo = makeTopology("mesh", 2, 2);
  for (int vcs : {2, 4}) {
    NetworkConfig cfg;
    cfg.params.numVCs = vcs;
    Network net(topo, cfg);
    EXPECT_THROW(net.enableTracing(), std::logic_error) << "vc" << vcs;
  }
}

// --- tier 2: determinism ---------------------------------------------------

struct TracedRun {
  std::vector<TraceEvent> events;
  std::string json;
  std::string kernelJson;
  std::uint64_t traced = 0;
  std::uint64_t completed = 0;
  std::vector<FlowTracer::FlowSpan> spans;
};

TracedRun runTraced(const KernelPick& pick, TraceConfig config = {}) {
  auto net = makeNet(makeTopology("mesh", 4, 4), pick, smallTraffic());
  FlowTracer& tracer = net->enableTracing(config);
  net->run(600);
  TracedRun out;
  out.events = tracer.sink().snapshot();
  out.json = tracer.perfettoJson();
  out.kernelJson = tracer.kernelProfileJson();
  out.traced = tracer.packetsTraced();
  out.completed = tracer.packetsCompleted();
  out.spans = tracer.flowSpans();
  return out;
}

TEST(FlowTraceTest, EventStreamIsIdenticalAcrossKernelsAndThreadCounts) {
  // Profiling stays ON here on purpose: kernel-profile data (which *is*
  // kernel-specific — a naive settle evaluates every module, an
  // event-driven one only the poked set) records outside the traced event
  // stream, so the machine trace must be byte-identical across kernels
  // even with profiling enabled.
  const TracedRun ref = runTraced(kAllKernels[0]);
  EXPECT_GT(ref.events.size(), 0u);
  EXPECT_GT(ref.completed, 0u);
  for (std::size_t k = 1; k < std::size(kAllKernels); ++k) {
    SCOPED_TRACE(kAllKernels[k].label);
    const TracedRun run = runTraced(kAllKernels[k]);
    ASSERT_EQ(ref.events.size(), run.events.size());
    for (std::size_t i = 0; i < ref.events.size(); ++i)
      ASSERT_EQ(ref.events[i], run.events[i])
          << "event " << i << ": " << telemetry::describe(ref.events[i])
          << " vs " << telemetry::describe(run.events[i]);
    EXPECT_EQ(ref.json, run.json) << "Perfetto JSON must be byte-identical";
    EXPECT_EQ(ref.traced, run.traced);
    EXPECT_EQ(ref.completed, run.completed);
  }
}

TEST(FlowTraceTest, PerfettoJsonValidatesAndNamesTracks) {
  const TracedRun run = runTraced(kAllKernels[1]);
  std::string error;
  ASSERT_TRUE(telemetry::validatePerfettoJson(run.json, &error)) << error;
  // One track group per router, one per flow.  Kernel counters must NOT
  // appear here — they live in the kernelProfileJson() sidecar.
  EXPECT_NE(run.json.find("\"r0 (0,0)\""), std::string::npos);
  EXPECT_NE(run.json.find("flows from "), std::string::npos);
  EXPECT_EQ(run.json.find("evals/cycle"), std::string::npos);
  ASSERT_TRUE(telemetry::validatePerfettoJson(run.kernelJson, &error))
      << error;
  EXPECT_NE(run.kernelJson.find("settle kernel"), std::string::npos);
  EXPECT_NE(run.kernelJson.find("evals/cycle"), std::string::npos);
  EXPECT_NE(run.kernelJson.find("\"ph\":\"C\""), std::string::npos);
}

TEST(FlowTraceTest, KernelProfileSidecarIsKernelSpecificButDeterministic) {
  // The sidecar is the one artifact allowed to differ per kernel; per
  // kernel it must still be reproducible, and it must be empty-trace JSON
  // with profiling off.
  const TracedRun event = runTraced(kAllKernels[1]);
  EXPECT_EQ(event.kernelJson, runTraced(kAllKernels[1]).kernelJson);
  const TracedRun naive = runTraced(kAllKernels[0]);
  EXPECT_NE(event.kernelJson, naive.kernelJson)
      << "naive evaluates everything, event-driven only the woken set";
  TraceConfig noProfile;
  noProfile.profileKernel = false;
  const TracedRun off = runTraced(kAllKernels[1], noProfile);
  EXPECT_EQ(off.kernelJson.find("evals/cycle"), std::string::npos);
}

TEST(FlowTraceTest, SamplingThinsTheTraceWithoutPerturbingResults) {
  TraceConfig sampled;
  sampled.sampleEvery = 4;
  const TracedRun full = runTraced(kAllKernels[1]);
  const TracedRun thin = runTraced(kAllKernels[1], sampled);
  EXPECT_GT(full.traced, thin.traced);
  EXPECT_GT(thin.traced, 0u);
  EXPECT_LT(thin.events.size(), full.events.size());
  // The simulation itself is untouched by the sampling decision: the
  // golden/twin tests above pin counters, here we pin the traced subset —
  // every thinned flow's spans exist identically in the full trace.
  std::map<std::pair<std::int32_t, std::int32_t>, std::size_t> fullFlows;
  for (const auto& s : full.spans) fullFlows[{s.src, s.dst}]++;
  for (const auto& s : thin.spans) {
    ASSERT_TRUE(fullFlows.count({s.src, s.dst}))
        << "sampled flow " << s.src << "->" << s.dst
        << " missing from the full trace";
  }
}

TEST(FlowTraceTest, ResetClearsTraceStateAndReproducesTheRun) {
  // Profiling on: the evaluation timeline's first sample depends on
  // whether the seed settle ran at construction or at reset(), but that
  // only perturbs the sidecar — perfettoJson() no longer contains any
  // kernel-profile data, so it must reproduce exactly.
  auto net = makeNet(makeTopology("mesh", 4, 4), kAllKernels[1],
                     smallTraffic());
  FlowTracer& tracer = net->enableTracing();
  net->run(400);
  const std::uint64_t firstTraced = tracer.packetsTraced();
  const std::string firstJson = tracer.perfettoJson();
  ASSERT_GT(firstTraced, 0u);
  net->reset();
  EXPECT_EQ(tracer.sink().size(), 0u);
  EXPECT_EQ(tracer.packetsTraced(), 0u);
  EXPECT_TRUE(tracer.flowSpans().empty());
  net->run(400);
  EXPECT_EQ(tracer.packetsTraced(), firstTraced);
  const std::string secondJson = tracer.perfettoJson();
  if (secondJson != firstJson) {
    std::size_t i = 0;
    while (i < firstJson.size() && i < secondJson.size() &&
           firstJson[i] == secondJson[i])
      ++i;
    const std::size_t from = i > 120 ? i - 120 : 0;
    ADD_FAILURE() << "a reset run must reproduce the identical trace; "
                  << "first divergence at offset " << i << "\n  first:  ..."
                  << firstJson.substr(from, 240) << "\n  second: ..."
                  << secondJson.substr(from, 240);
  }
}

// --- tier 3: semantics -----------------------------------------------------

TEST(FlowTraceTest, DecompositionComponentsSumExactlyPerPacket) {
  const TracedRun run = runTraced(kAllKernels[1]);
  ASSERT_GT(run.spans.size(), 0u);
  for (const auto& s : run.spans) {
    SCOPED_TRACE("pkt " + std::to_string(s.id));
    ASSERT_GE(s.injectCycle, s.queuedCycle);
    ASSERT_GE(s.headerEjectCycle, s.injectCycle);
    ASSERT_GE(s.ejectCycle, s.headerEjectCycle);
    ASSERT_GT(s.hops, 0u);
    // The decomposition identity: the header leaves the source, spends one
    // cycle minimum plus its blocked cycles per hop, then the tail drains.
    EXPECT_EQ(s.headerEjectCycle,
              s.injectCycle + s.hops + s.blockedCycles);
    const std::uint64_t endToEnd = s.ejectCycle - s.queuedCycle;
    EXPECT_EQ(endToEnd, (s.injectCycle - s.queuedCycle) + s.hops +
                            s.blockedCycles +
                            (s.ejectCycle - s.headerEjectCycle));
  }
}

TEST(FlowTraceTest, DecompositionStatsAggregateAllCompletedPackets) {
  auto net = makeNet(makeTopology("mesh", 4, 4), kAllKernels[1],
                     smallTraffic());
  FlowTracer& tracer = net->enableTracing();
  net->run(600);
  const FlowTracer::Decomposition& d = tracer.decomposition();
  ASSERT_EQ(d.endToEnd.count(), tracer.packetsCompleted());
  ASSERT_EQ(d.sourceQueue.count(), d.endToEnd.count());
  ASSERT_EQ(d.hopMin.count(), d.endToEnd.count());
  ASSERT_EQ(d.hopBlocked.count(), d.endToEnd.count());
  ASSERT_EQ(d.drain.count(), d.endToEnd.count());
  // Exact-sum holds in aggregate too (sums of integer-valued samples).
  auto total = [](const LatencyStats& s) {
    double t = 0;
    for (double v : s.samples()) t += v;
    return t;
  };
  EXPECT_DOUBLE_EQ(total(d.endToEnd),
                   total(d.sourceQueue) + total(d.hopMin) +
                       total(d.hopBlocked) + total(d.drain));
  const std::string table = tracer.decompositionTable();
  EXPECT_NE(table.find("end_to_end"), std::string::npos) << table;
  EXPECT_NE(table.find("source_queue"), std::string::npos) << table;
}

TEST(FlowTraceTest, ReportGainsDeterministicTraceSection) {
  auto run = [] {
    auto net = makeNet(makeTopology("mesh", 4, 4), kAllKernels[1],
                       smallTraffic());
    FlowTracer& tracer = net->enableTracing();
    net->run(500);
    telemetry::RunReport report("traced");
    tracer.writeReport(report);
    return report.toJson();
  };
  const std::string json = run();
  EXPECT_EQ(json, run());
  EXPECT_NE(json.find("\"trace\""), std::string::npos) << json;
  EXPECT_NE(json.find("packets_traced"), std::string::npos);
  EXPECT_NE(json.find("end_to_end_p99"), std::string::npos);
  // Kernel-dependent numbers live in their own section, not in `trace`.
  EXPECT_NE(json.find("\"kernel_profile\""), std::string::npos) << json;
  EXPECT_NE(json.find("hot_module_0"), std::string::npos);
}

// The acceptance scenario: a link-down window under the reliable transport.
// The trace must show the original injection, the drop at the faulted hop,
// the NACK / retransmission frames, and exactly one ejection per wire
// packet id.
TEST(FlowTraceTest, RetransmissionLifecycleIsVisibleInTheTrace) {
  auto topology = makeTopology("mesh", 2, 1);
  NetworkConfig cfg;
  cfg.reliability = reliabilityOn();
  cfg.faultPlan.events.push_back(
      {LinkId{NodeId{0, 0}, Port::East}, FaultKind::LinkDown, 20, 280, 1.0});
  Network net(topology, cfg);
  FlowTracer& tracer = net.enableTracing();
  for (std::uint32_t k = 0; k < 5; ++k) {
    std::vector<std::uint32_t> payload;
    for (std::uint32_t i = 0; i < 20; ++i)
      payload.push_back(0x10 * (k + 1) + i);
    net.ni(NodeId{0, 0}).send(NodeId{1, 0}, payload);
  }
  net.run(300);
  ASSERT_TRUE(net.drain(20000));
  ASSERT_EQ(net.ni(NodeId{1, 0}).received().size(), 5u);

  std::map<TraceEventKind, std::uint64_t> byKind;
  std::map<std::uint64_t, std::uint64_t> ejectsPerPacket;
  bool dropAtFaultedHop = false;
  for (const TraceEvent& e : tracer.sink().snapshot()) {
    ++byKind[e.kind];
    if (e.kind == TraceEventKind::PacketEjected) ++ejectsPerPacket[e.packet];
    if (e.kind == TraceEventKind::LinkDrop && e.node == 0 &&
        e.port == static_cast<std::int8_t>(router::index(Port::East)))
      dropAtFaultedHop = true;
  }
  EXPECT_GT(byKind[TraceEventKind::PacketQueued], 0u);
  EXPECT_GT(byKind[TraceEventKind::HeaderInjected], 0u);
  EXPECT_GT(byKind[TraceEventKind::LinkDrop], 0u);
  EXPECT_TRUE(dropAtFaultedHop) << "drop must be attributed to link(0,0)E";
  EXPECT_GT(byKind[TraceEventKind::RetransmitQueued], 0u)
      << "the outage must have forced retransmissions";
  EXPECT_GT(byKind[TraceEventKind::AckQueued], 0u);
  EXPECT_GT(byKind[TraceEventKind::PacketEjected], 0u);
  for (const auto& [pkt, count] : ejectsPerPacket)
    EXPECT_EQ(count, 1u) << "packet " << pkt << " ejected more than once";
  // Retransmitted data frames complete as their own spans.
  const auto& spans = tracer.flowSpans();
  EXPECT_TRUE(std::any_of(spans.begin(), spans.end(), [](const auto& s) {
    return s.kind == TraceEventKind::RetransmitQueued;
  })) << "a retransmission span must have completed";
  // The whole story exports as loadable Perfetto JSON.
  std::string error;
  EXPECT_TRUE(telemetry::validatePerfettoJson(tracer.perfettoJson(), &error))
      << error;
}

TEST(FlowTraceTest, WatchdogStallSnapshotCarriesRecentLinkEvents) {
  auto topology = makeTopology("mesh", 2, 1);
  NetworkConfig cfg;
  cfg.faultPlan.events.push_back({LinkId{NodeId{0, 0}, Port::East},
                                  FaultKind::StuckAck, 0, 1000000, 1.0});
  Network net(topology, cfg);
  net.enableTracing();
  Watchdog dog("dog", net.ledger(), 100,
               [&net] { return net.blockedLinkNames(); },
               [&net] { return net.blockedLinkTraceDump(); });
  net.simulator().add(dog);
  net.ni(NodeId{0, 0}).send(NodeId{1, 0}, {0x5, 0x6, 0x7});
  net.run(400);
  ASSERT_TRUE(dog.stallDetected());
  const WatchdogSnapshot& snapshot = dog.snapshot();
  ASSERT_FALSE(snapshot.recentEvents.empty());
  EXPECT_NE(snapshot.recentEvents[0].find("link(0,0)E"), std::string::npos)
      << snapshot.recentEvents[0];
  // At least one rendered event line follows the link header.
  const bool hasEventLine = std::any_of(
      snapshot.recentEvents.begin(), snapshot.recentEvents.end(),
      [](const std::string& line) {
        return line.find("pkt") != std::string::npos;
      });
  EXPECT_TRUE(hasEventLine) << "dump must show the wedged flit's history";
}

TEST(FlowTraceTest, RingOverflowKeepsNewestEventsAndCounts) {
  TraceConfig tiny;
  tiny.capacity = 64;
  auto net = makeNet(makeTopology("mesh", 4, 4), kAllKernels[1],
                     smallTraffic());
  FlowTracer& tracer = net->enableTracing(tiny);
  net->run(600);
  EXPECT_EQ(tracer.sink().size(), 64u);
  EXPECT_GT(tracer.sink().dropped(), 0u);
  // Retained events are the newest window, still in nondecreasing cycle
  // order.
  const auto events = tracer.sink().snapshot();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].cycle, events[i - 1].cycle);
  // Overflow must not damage the reconstruction: latency stats still
  // accumulate (they come from shadow state, not the ring).
  EXPECT_GT(tracer.decomposition().endToEnd.count(), 0u);
}

}  // namespace
}  // namespace rasoc::noc
