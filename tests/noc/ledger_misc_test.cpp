// Edge cases for the non-throwing ledger path and the flow bookkeeping the
// fault-injection NIs depend on.
#include <gtest/gtest.h>

#include "noc/stats.hpp"

namespace rasoc::noc {
namespace {

TEST(TryDeliverTest, SucceedsExactlyLikeOnDelivered) {
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{2, 1};
  PacketRecord r;
  r.src = a;
  r.dst = b;
  r.createdCycle = 3;
  r.flits = 4;
  ledger.onQueued(r);
  ledger.onHeaderInjected(a, b, 5);
  EXPECT_TRUE(ledger.tryDeliver(a, b, 12));
  EXPECT_EQ(ledger.delivered(), 1u);
  EXPECT_DOUBLE_EQ(ledger.packetLatency().mean(), 9.0);
}

TEST(TryDeliverTest, FailsQuietlyForUnknownFlows) {
  DeliveryLedger ledger;
  EXPECT_FALSE(ledger.tryDeliver(NodeId{0, 0}, NodeId{1, 1}, 10));
  EXPECT_EQ(ledger.delivered(), 0u);
}

TEST(TryDeliverTest, FailsForUninjectedPackets) {
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{1, 0};
  PacketRecord r;
  r.src = a;
  r.dst = b;
  r.flits = 2;
  ledger.onQueued(r);
  // Queued but its header never entered the network: a "delivery" with
  // this attribution must be a corruption artefact, not a match.
  EXPECT_FALSE(ledger.tryDeliver(a, b, 10));
  EXPECT_EQ(ledger.inFlight(), 1u);
}

TEST(TryDeliverTest, WrongSourceDoesNotStealAnotherFlowsPacket) {
  DeliveryLedger ledger;
  const NodeId realSrc{0, 0}, fakeSrc{2, 2}, dst{1, 0};
  PacketRecord r;
  r.src = realSrc;
  r.dst = dst;
  r.flits = 2;
  ledger.onQueued(r);
  ledger.onHeaderInjected(realSrc, dst, 1);
  EXPECT_FALSE(ledger.tryDeliver(fakeSrc, dst, 5));
  EXPECT_TRUE(ledger.tryDeliver(realSrc, dst, 6));
}

TEST(LedgerTest, InterleavedFlowsStayIndependent) {
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{1, 0}, c{2, 0};
  for (int i = 0; i < 3; ++i) {
    PacketRecord r;
    r.src = a;
    r.dst = (i % 2 == 0) ? b : c;
    r.createdCycle = static_cast<std::uint64_t>(i);
    r.flits = 1;
    ledger.onQueued(r);
  }
  ledger.onHeaderInjected(a, b, 10);
  ledger.onHeaderInjected(a, c, 11);
  ledger.onHeaderInjected(a, b, 12);
  // Deliver out of global order but in per-flow order.
  EXPECT_EQ(ledger.onDelivered(a, c, 20).createdCycle, 1u);
  EXPECT_EQ(ledger.onDelivered(a, b, 21).createdCycle, 0u);
  EXPECT_EQ(ledger.onDelivered(a, b, 22).createdCycle, 2u);
  EXPECT_EQ(ledger.inFlight(), 0u);
}

}  // namespace
}  // namespace rasoc::noc
