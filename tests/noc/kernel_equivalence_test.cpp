// A/B harness for the two settle kernels: a naive-fixpoint mesh and an
// event-driven mesh built from identical configs must stay cycle-for-cycle
// identical under random traffic.  This is the strongest correctness check
// we have for the event-driven scheduler: any module missing a sensitivity
// annotation, any stale dirty flag, any wake-up lost between cycles shows
// up here as a ledger or health divergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "noc/mesh.hpp"

namespace rasoc::noc {
namespace {

using router::FifoImpl;
using router::FlowControl;
using sim::Simulator;

struct Rig {
  std::unique_ptr<Mesh> mesh;

  Rig(const MeshConfig& base, Simulator::Kernel kernel,
      const TrafficConfig& traffic) {
    MeshConfig cfg = base;
    cfg.kernel = kernel;
    mesh = std::make_unique<Mesh>(cfg);
    mesh->attachTraffic(traffic);
  }
};

// Steps both meshes one cycle at a time and asserts the externally
// observable state stays identical.  Cheap ledger counters are compared
// every cycle; the heavier link/NI sweeps every `auditPeriod` cycles.
void runLockstep(Rig& naive, Rig& event, std::uint64_t cycles,
                 std::uint64_t auditPeriod) {
  const MeshShape shape = naive.mesh->shape();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    naive.mesh->run(1);
    event.mesh->run(1);
    ASSERT_EQ(naive.mesh->ledger().queued(), event.mesh->ledger().queued())
        << "cycle " << c;
    ASSERT_EQ(naive.mesh->ledger().delivered(),
              event.mesh->ledger().delivered())
        << "cycle " << c;
    ASSERT_EQ(naive.mesh->ledger().inFlight(), event.mesh->ledger().inFlight())
        << "cycle " << c;
    if ((c + 1) % auditPeriod == 0) {
      ASSERT_EQ(naive.mesh->healthy(), event.mesh->healthy()) << "cycle " << c;
      ASSERT_DOUBLE_EQ(naive.mesh->meanLinkUtilization(),
                       event.mesh->meanLinkUtilization())
          << "cycle " << c;
      ASSERT_DOUBLE_EQ(naive.mesh->maxLinkUtilization(),
                       event.mesh->maxLinkUtilization())
          << "cycle " << c;
      for (int i = 0; i < shape.nodes(); ++i) {
        const NodeId n = shape.nodeAt(i);
        ASSERT_EQ(naive.mesh->ni(n).packetsSent(),
                  event.mesh->ni(n).packetsSent())
            << "cycle " << c << " node " << i;
        ASSERT_EQ(naive.mesh->ni(n).packetsReceived(),
                  event.mesh->ni(n).packetsReceived())
            << "cycle " << c << " node " << i;
      }
    }
  }
  // Final deep audit: the delivered payload streams themselves.
  EXPECT_TRUE(naive.mesh->healthy());
  EXPECT_TRUE(event.mesh->healthy());
  EXPECT_GT(naive.mesh->ledger().delivered(), 0u) << "vacuous run";
  for (int i = 0; i < shape.nodes(); ++i) {
    const NodeId n = shape.nodeAt(i);
    ASSERT_EQ(naive.mesh->ni(n).received(), event.mesh->ni(n).received())
        << "node " << i;
  }
  EXPECT_DOUBLE_EQ(naive.mesh->ledger().packetLatency().mean(),
                   event.mesh->ledger().packetLatency().mean());
}

TEST(KernelEquivalenceTest, EightByEightUniformRandomMultipleSeeds) {
  MeshConfig base;
  base.shape = MeshShape{8, 8};
  base.params.n = 16;
  base.params.p = 4;
  for (const std::uint64_t seed : {3u, 17u, 9001u}) {
    TrafficConfig traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.offeredLoad = 0.15;
    traffic.payloadFlits = 4;
    traffic.seed = seed;
    Rig naive(base, Simulator::Kernel::Naive, traffic);
    Rig event(base, Simulator::Kernel::EventDriven, traffic);
    SCOPED_TRACE("seed " + std::to_string(seed));
    runLockstep(naive, event, 3500, 500);
  }
}

TEST(KernelEquivalenceTest, EightByEightSaturatedTranspose) {
  // High load + deterministic hotspot pattern stresses arbitration and
  // backpressure paths where a lost wake-up would stall only one kernel.
  MeshConfig base;
  base.shape = MeshShape{8, 8};
  base.params.n = 16;
  base.params.p = 2;
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::Transpose;
  traffic.offeredLoad = 0.8;
  traffic.payloadFlits = 3;
  traffic.seed = 41;
  Rig naive(base, Simulator::Kernel::Naive, traffic);
  Rig event(base, Simulator::Kernel::EventDriven, traffic);
  runLockstep(naive, event, 2000, 400);
}

TEST(KernelEquivalenceTest, CreditFlowControlAndFlipFlopFifos) {
  // The other microarchitectural corner: credit-based flow control with
  // flip-flop FIFOs on a smaller mesh.
  MeshConfig base;
  base.shape = MeshShape{4, 4};
  base.params.n = 16;
  base.params.p = 4;
  base.params.flowControl = FlowControl::CreditBased;
  base.params.fifoImpl = FifoImpl::FlipFlop;
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::UniformRandom;
  traffic.offeredLoad = 0.25;
  traffic.payloadFlits = 2;
  traffic.seed = 7;
  Rig naive(base, Simulator::Kernel::Naive, traffic);
  Rig event(base, Simulator::Kernel::EventDriven, traffic);
  runLockstep(naive, event, 2500, 250);
}

TEST(KernelEquivalenceTest, FaultyLinksAndParityStayDeterministic) {
  // Fault injection draws from per-link RNG state at clock edges, so both
  // kernels must corrupt exactly the same flits.
  MeshConfig base;
  base.shape = MeshShape{4, 4};
  base.params.n = 16;
  base.params.p = 4;
  base.hlpParity = true;
  base.linkFaultRate = 0.01;
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::UniformRandom;
  traffic.offeredLoad = 0.2;
  traffic.payloadFlits = 3;
  traffic.seed = 13;
  Rig naive(base, Simulator::Kernel::Naive, traffic);
  Rig event(base, Simulator::Kernel::EventDriven, traffic);
  for (int chunk = 0; chunk < 10; ++chunk) {
    naive.mesh->run(200);
    event.mesh->run(200);
    ASSERT_EQ(naive.mesh->flitsCorrupted(), event.mesh->flitsCorrupted())
        << "chunk " << chunk;
    ASSERT_EQ(naive.mesh->parityErrorsDetected(),
              event.mesh->parityErrorsDetected())
        << "chunk " << chunk;
    ASSERT_EQ(naive.mesh->unattributedPackets(),
              event.mesh->unattributedPackets())
        << "chunk " << chunk;
    ASSERT_EQ(naive.mesh->ledger().delivered(),
              event.mesh->ledger().delivered())
        << "chunk " << chunk;
  }
}

TEST(KernelEquivalenceTest, DrainAgreesOnCompletionCycle) {
  // runUntil boundary semantics must match across kernels too: both meshes
  // drain the same hand-crafted workload at exactly the same cycle.
  MeshConfig base;
  base.shape = MeshShape{4, 4};
  base.params.n = 16;
  base.params.p = 4;
  auto build = [&](Simulator::Kernel kernel) {
    MeshConfig cfg = base;
    cfg.kernel = kernel;
    auto mesh = std::make_unique<Mesh>(cfg);
    const MeshShape shape = mesh->shape();
    for (int s = 0; s < shape.nodes(); ++s) {
      for (int d = 0; d < shape.nodes(); ++d) {
        if (s == d) continue;
        mesh->ni(shape.nodeAt(s))
            .send(shape.nodeAt(d), {static_cast<std::uint32_t>(s * 16 + d)});
      }
    }
    return mesh;
  };
  auto naive = build(Simulator::Kernel::Naive);
  auto event = build(Simulator::Kernel::EventDriven);
  ASSERT_TRUE(naive->drain(20000));
  ASSERT_TRUE(event->drain(20000));
  EXPECT_EQ(naive->simulator().cycle(), event->simulator().cycle());
  EXPECT_EQ(naive->ledger().delivered(), event->ledger().delivered());
  EXPECT_TRUE(naive->healthy());
  EXPECT_TRUE(event->healthy());
}

}  // namespace
}  // namespace rasoc::noc
