// QoS traffic classes over virtual channels (DESIGN.md §13): the per-class
// isolation story, tested end to end.
//
//  1. Tagging round-trip — a packet sent with a TrafficClass closes a
//     per-class ledger flow at the destination, on the unprotected wire
//     format and through the reliable transport (where retransmissions and
//     ACKs ride the reliability class but deliveries keep the submitter's).
//  2. Configuration validation — qosClasses demands two adaptive VCs above
//     the escape layer, and the builder knows wrapping topologies reserve
//     one more escape VC than meshes.
//  3. Isolation — the acceptance claim: with a Bulk flood driven past
//     saturation on every node, Control p99 latency stays within a small
//     factor of its unloaded baseline, on mesh, torus and ring.
//  4. Starvation guard — strict priority is bounded: a saturating Control
//     flood must not halt Bulk progress (kQosStarvationWindow).
//  5. Reporting — buildRunReport grows a "qos" section with per-class
//     latency percentiles.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "noc/observe.hpp"
#include "noc/topology.hpp"
#include "router/params.hpp"

namespace rasoc::noc {
namespace {

using router::TrafficClass;

constexpr TrafficClass kAllClasses[] = {
    TrafficClass::BestEffort, TrafficClass::Bulk, TrafficClass::Latency,
    TrafficClass::Control};

NetworkConfig qosConfig(int numVCs = 4) {
  NetworkConfig cfg;
  cfg.params.n = 16;
  cfg.params.numVCs = numVCs;
  cfg.params.qosClasses = true;
  return cfg;
}

TEST(QosTest, ClassTagRoundTripsOnEveryTopology) {
  for (const auto& topo :
       {makeTopology("mesh", 3, 3), makeTopology("torus", 4, 4),
        makeTopology("ring", 8, 1)}) {
    SCOPED_TRACE(topo->describe());
    Network net(topo, qosConfig());
    const NodeId src = topo->nodeAt(0);
    const NodeId dst = topo->nodeAt(topo->nodes() - 1);
    for (TrafficClass cls : kAllClasses)
      net.ni(src).send(dst, {0xc0du, static_cast<std::uint32_t>(cls)}, cls);
    ASSERT_TRUE(net.drain(4000));
    EXPECT_TRUE(net.healthy());
    for (TrafficClass cls : kAllClasses) {
      EXPECT_EQ(net.ledger().queued(cls), 1u) << name(cls);
      EXPECT_EQ(net.ledger().delivered(cls), 1u) << name(cls);
    }
    ASSERT_EQ(net.ni(dst).received().size(), 4u);
  }
}

TEST(QosTest, ClassTagRoundTripsThroughReliableTransport) {
  // The delivery's class must be the submitter's even when the payload is
  // recovered by a retransmission riding the reliability class (Control by
  // default) — the class travels in-band in the DATA control word.
  const auto topo = makeTopology("mesh", 3, 3);
  NetworkConfig cfg = qosConfig();
  cfg.reliability.enabled = true;
  cfg.reliability.seqBits = 6;
  cfg.reliability.window = 4;
  cfg.reliability.rtoInitial = 64;
  cfg.reliability.rtoMax = 512;
  Network net(topo, cfg);
  const NodeId src = topo->nodeAt(0);
  const NodeId dst = topo->nodeAt(topo->nodes() - 1);
  std::vector<std::vector<std::uint32_t>> payloads;
  for (TrafficClass cls : kAllClasses) {
    payloads.push_back({0xabcu, static_cast<std::uint32_t>(cls), 0x123u});
    net.ni(src).send(dst, payloads.back(), cls);
  }
  ASSERT_TRUE(net.drain(8000));
  EXPECT_TRUE(net.healthy());
  for (TrafficClass cls : kAllClasses)
    EXPECT_EQ(net.ledger().delivered(cls), 1u) << name(cls);
  ASSERT_EQ(net.ni(dst).received().size(), payloads.size());
  // In-order release: the transport delivers in submit order per source.
  EXPECT_EQ(net.ni(dst).received(), payloads);
}

TEST(QosTest, BuilderRejectsTooFewAdaptiveVcs) {
  // Meshes reserve 1 escape VC, wrapping topologies 2; QoS needs two
  // adaptive VCs on top.
  EXPECT_THROW(Network(makeTopology("mesh", 3, 3), qosConfig(2)),
               std::invalid_argument);
  EXPECT_THROW(Network(makeTopology("torus", 4, 4), qosConfig(3)),
               std::invalid_argument);
  EXPECT_THROW(Network(makeTopology("ring", 8, 1), qosConfig(3)),
               std::invalid_argument);
  EXPECT_NO_THROW(Network(makeTopology("mesh", 3, 3), qosConfig(3)));
  EXPECT_NO_THROW(Network(makeTopology("torus", 4, 4), qosConfig(4)));
}

// Control p99 under a saturating Bulk flood, relative to an unloaded
// baseline.  The bench sweeps report the acceptance bound (2x); the test
// allows 3x so scheduler-neutral changes do not flake it, and additionally
// pins the ordering Bulk p99 > Control p99 — without QoS both classes
// collapse to the same saturated distribution.
TEST(QosTest, ControlP99StaysBoundedUnderBulkFloodOnEveryTopology) {
  constexpr double kControlLoad = 0.02;
  constexpr double kBulkLoad = 0.60;  // far past saturation everywhere
  constexpr std::uint64_t kWarmup = 500;
  constexpr std::uint64_t kMeasure = 3000;

  for (const char* kind : {"mesh", "torus", "ring"}) {
    const auto topo = kind == std::string("ring")
                          ? makeTopology("ring", 8, 1)
                          : makeTopology(kind, 4, 4);
    SCOPED_TRACE(topo->describe());

    FlowSpec control;
    control.trafficClass = TrafficClass::Control;
    control.traffic.pattern = TrafficPattern::UniformRandom;
    control.traffic.offeredLoad = kControlLoad;
    control.traffic.payloadFlits = 2;
    control.traffic.seed = 99;

    // Baseline: the Control flow alone.
    Network base(topo, qosConfig());
    base.ledger().setWarmupCycles(kWarmup);
    base.attachTraffic(std::vector<FlowSpec>{control});
    base.run(kWarmup + kMeasure);
    base.pauseTraffic(true);
    ASSERT_TRUE(base.drain(60000));
    const LatencyStats& baseLat =
        base.ledger().packetLatency(TrafficClass::Control);
    ASSERT_GT(baseLat.count(), 20u) << "baseline too sparse to trust";
    const double baselineP99 = baseLat.percentile(0.99);

    // Loaded: same Control flow plus a Bulk flood on every node.
    FlowSpec bulk;
    bulk.trafficClass = TrafficClass::Bulk;
    bulk.traffic.pattern = TrafficPattern::UniformRandom;
    bulk.traffic.offeredLoad = kBulkLoad;
    bulk.traffic.payloadFlits = 6;
    bulk.traffic.seed = 7;

    Network loaded(topo, qosConfig());
    loaded.ledger().setWarmupCycles(kWarmup);
    loaded.attachTraffic(std::vector<FlowSpec>{control, bulk});
    loaded.run(kWarmup + kMeasure);
    loaded.pauseTraffic(true);
    ASSERT_TRUE(loaded.drain(120000));
    EXPECT_TRUE(loaded.healthy());

    const LatencyStats& ctrlLat =
        loaded.ledger().packetLatency(TrafficClass::Control);
    const LatencyStats& bulkLat =
        loaded.ledger().packetLatency(TrafficClass::Bulk);
    ASSERT_GT(ctrlLat.count(), 20u);
    ASSERT_GT(bulkLat.count(), 50u);
    const double loadedP99 = ctrlLat.percentile(0.99);

    EXPECT_LE(loadedP99, 3.0 * baselineP99)
        << "control p99 " << loadedP99 << " vs unloaded " << baselineP99;
    EXPECT_GT(bulkLat.percentile(0.99), loadedP99)
        << "bulk should absorb the queueing, not control";
  }
}

TEST(QosTest, StarvationGuardKeepsBulkMovingUnderControlFlood) {
  // Strict priority alone would let a saturating Control flood halt Bulk
  // forever; the per-VC starvation guard (VcOutputChannel's
  // kQosStarvationWindow) bounds the wait.  Bulk must make steady progress
  // during the flood, not just after it.
  const auto topo = makeTopology("mesh", 4, 4);
  FlowSpec control;
  control.trafficClass = TrafficClass::Control;
  control.traffic.offeredLoad = 0.70;
  control.traffic.payloadFlits = 4;
  control.traffic.seed = 5;
  FlowSpec bulk;
  bulk.trafficClass = TrafficClass::Bulk;
  bulk.traffic.offeredLoad = 0.10;
  bulk.traffic.payloadFlits = 4;
  bulk.traffic.seed = 6;

  Network net(topo, qosConfig());
  net.attachTraffic(std::vector<FlowSpec>{control, bulk});
  net.run(3000);
  const std::uint64_t bulkMidway = net.ledger().delivered(TrafficClass::Bulk);
  EXPECT_GT(bulkMidway, 50u) << "bulk starved under the control flood";
  net.run(3000);
  EXPECT_GT(net.ledger().delivered(TrafficClass::Bulk), bulkMidway)
      << "bulk stopped making progress";
  net.pauseTraffic(true);
  ASSERT_TRUE(net.drain(120000));
  EXPECT_TRUE(net.healthy());
}

TEST(QosTest, RunReportCarriesPerClassSection) {
  const auto topo = makeTopology("mesh", 3, 3);
  Network net(topo, qosConfig());
  telemetry::MetricsRegistry registry;
  net.enableTelemetry(registry);
  const NodeId src = topo->nodeAt(0);
  const NodeId dst = topo->nodeAt(topo->nodes() - 1);
  for (int i = 0; i < 5; ++i) {
    net.ni(src).send(dst, {1u, 2u}, TrafficClass::Control);
    net.ni(src).send(dst, {3u, 4u}, TrafficClass::Bulk);
  }
  ASSERT_TRUE(net.drain(4000));
  const std::string json = buildRunReport("qos_test", net).toJson();
  EXPECT_NE(json.find("\"qos\""), std::string::npos);
  EXPECT_NE(json.find("control_latency_p99"), std::string::npos);
  EXPECT_NE(json.find("bulk_delivered"), std::string::npos);
  // The telemetry gauges exist and saw the run.
  EXPECT_NE(json.find("net.qos.control.delivered_packets"), std::string::npos);
}

}  // namespace
}  // namespace rasoc::noc
