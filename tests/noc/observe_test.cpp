// Integration tests for the telemetry subsystem wired into a live mesh:
// instrumented counters, heatmap extraction, report serialization and the
// determinism guarantee bench output depends on.
#include "noc/observe.hpp"

#include <gtest/gtest.h>

#include "noc/mesh.hpp"
#include "noc/watchdog.hpp"

namespace rasoc::noc {
namespace {

struct InstrumentedRun {
  InstrumentedRun(std::uint64_t seed, std::uint64_t cycles) : mesh(config()) {
    mesh.enableTelemetry(registry);
    TrafficConfig traffic;
    traffic.offeredLoad = 0.3;
    traffic.payloadFlits = 4;
    traffic.seed = seed;
    mesh.attachTraffic(traffic);
    mesh.run(cycles);
  }

  static MeshConfig config() {
    MeshConfig cfg;
    cfg.shape = MeshShape{3, 3};
    cfg.params.n = 16;
    cfg.params.p = 4;
    return cfg;
  }

  telemetry::MetricsRegistry registry;
  Mesh mesh;
};

TEST(MeshTelemetryTest, ChannelAndNiCountersAccumulate) {
  InstrumentedRun run(5, 1500);
  ASSERT_TRUE(run.mesh.healthy());
  ASSERT_GT(run.mesh.ledger().delivered(), 0u);

  // Traffic flowed, so the NIs injected flits and the routers routed them.
  std::uint64_t injected = 0, routed = 0;
  for (int i = 0; i < run.mesh.shape().nodes(); ++i) {
    const NodeId n = run.mesh.shape().nodeAt(i);
    injected +=
        run.registry.counterValue(niMetricPrefix(n) + ".flits_injected");
    routed +=
        run.registry.counterValue(routerMetricPrefix(n) + ".flits_routed");
  }
  EXPECT_GT(injected, 0u);
  // Every injected flit crosses at least its source router.
  EXPECT_GE(routed, injected);

  // The instrumented per-channel count agrees with the channel's own tally.
  const NodeId center{1, 1};
  const auto& local = run.mesh.router(center).inputChannel(router::Port::Local);
  EXPECT_EQ(run.registry.counterValue(routerMetricPrefix(center) + ".Lin.flits"),
            local.flitsAccepted());

  // Pruned ports register no series: the corner router has no West input.
  EXPECT_EQ(run.registry.findCounter("r0,0.Win.flits"), nullptr);

  // Occupancy histograms sampled one observation per cycle.
  const telemetry::Histogram* occupancy =
      run.registry.findHistogram("r1,1.Lin.occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_EQ(occupancy->count(), run.mesh.simulator().cycle());

  // Mesh-level gauges sampled through the simulator tick hook.
  const telemetry::Gauge* inFlight =
      run.registry.findGauge("mesh.in_flight_packets");
  ASSERT_NE(inFlight, nullptr);
  EXPECT_EQ(inFlight->samples(), run.mesh.simulator().cycle());
}

TEST(MeshTelemetryTest, EnableTwiceThrows) {
  InstrumentedRun run(1, 10);
  telemetry::MetricsRegistry other;
  EXPECT_THROW(run.mesh.enableTelemetry(other), std::logic_error);
}

TEST(MeshTelemetryTest, HeatmapsReflectTraffic) {
  InstrumentedRun run(5, 1500);
  const auto cycles = run.mesh.simulator().cycle();
  const auto throughput =
      throughputHeatmap(run.registry, run.mesh.shape(), cycles);
  EXPECT_GT(throughput.maxValue(), 0.0);
  // The center router carries XY through-traffic: it must be at least as
  // busy as the minimum corner.
  EXPECT_GE(throughput.at(1, 1), 0.0);

  const auto congestion =
      congestionHeatmap(run.registry, run.mesh.shape(), cycles);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 3; ++x) {
      EXPECT_GE(congestion.at(x, y), 0.0);
      EXPECT_LE(congestion.at(x, y), 1.0);
    }

  const auto backpressure =
      backpressureHeatmap(run.registry, run.mesh.shape(), cycles);
  EXPECT_GE(backpressure.maxValue(), 0.0);

  // Renderers run on extracted maps.
  EXPECT_NE(throughput.ascii().find("flits_per_cycle"), std::string::npos);
  EXPECT_NE(congestion.csv().find("x,y,congestion"), std::string::npos);
}

TEST(MeshTelemetryTest, RunReportCarriesLedgerAndMetrics) {
  InstrumentedRun run(5, 1500);
  Watchdog dog("dog", run.mesh.ledger(), 500);  // never ran: quiet snapshot
  const telemetry::RunReport report =
      buildRunReport("observe_test", run.mesh, &dog);
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"report\": \"observe_test\""), std::string::npos);
  EXPECT_NE(json.find("\"mesh\": \"3x3\""), std::string::npos);
  EXPECT_NE(json.find("\"healthy\": true"), std::string::npos);
  EXPECT_NE(json.find("\"delivered\": "), std::string::npos);
  EXPECT_NE(json.find("\"packet_latency_p99\": "), std::string::npos);
  EXPECT_NE(json.find("\"watchdog\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("flits_routed"), std::string::npos);
}

TEST(MeshTelemetryTest, SameSeedProducesByteIdenticalReports) {
  const auto runJson = [] {
    InstrumentedRun run(21, 1200);
    return buildRunReport("determinism", run.mesh).toJson();
  };
  const std::string a = runJson();
  const std::string b = runJson();
  EXPECT_EQ(a, b);

  InstrumentedRun other(22, 1200);
  EXPECT_NE(buildRunReport("determinism", other.mesh).toJson(), a);
}

}  // namespace
}  // namespace rasoc::noc
