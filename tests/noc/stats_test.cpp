#include "noc/stats.hpp"

#include <gtest/gtest.h>

namespace rasoc::noc {
namespace {

TEST(LatencyStatsTest, EmptyStatsAreZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(LatencyStatsTest, SummaryStatistics) {
  LatencyStats stats;
  for (double v : {4.0, 8.0, 6.0, 2.0}) stats.record(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
}

TEST(LatencyStatsTest, Percentiles) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 100.0);
  EXPECT_THROW(stats.percentile(1.5), std::invalid_argument);
}

TEST(LatencyStatsTest, EmptyStatsPercentileIsZero) {
  LatencyStats stats;
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 0.0);
}

TEST(LatencyStatsTest, SingleSamplePercentileIsThatSample) {
  LatencyStats stats;
  stats.record(7.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 7.0);
}

TEST(LatencyStatsTest, PercentileTracksLateRecords) {
  LatencyStats stats;
  stats.record(1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 1.0);
  stats.record(10.0);  // sorted cache must invalidate
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 10.0);
}

TEST(LatencyStatsTest, InterleavedRecordsAndQueriesStayConsistent) {
  // Exercises the incremental sorted-view maintenance: every query after a
  // burst of records must see the full sample set, including values that
  // sort below the existing minimum.
  LatencyStats stats;
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 5; ++i)
      stats.record(static_cast<double>((7 * burst + 3 * i) % 50));
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), stats.min());
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), stats.max());
  }
  EXPECT_EQ(stats.count(), 50u);
}

TEST(DeliveryLedgerTest, MatchesInjectionsToDeliveriesPerFlow) {
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{1, 0};
  PacketRecord r;
  r.src = a;
  r.dst = b;
  r.createdCycle = 10;
  r.flits = 4;
  ledger.onQueued(r);
  ledger.onHeaderInjected(a, b, 12);
  const PacketRecord closed = ledger.onDelivered(a, b, 20);
  EXPECT_EQ(closed.createdCycle, 10u);
  EXPECT_EQ(closed.injectedCycle, 12u);
  EXPECT_EQ(ledger.delivered(), 1u);
  EXPECT_EQ(ledger.flitsDelivered(), 4u);
  EXPECT_EQ(ledger.inFlight(), 0u);
  ASSERT_EQ(ledger.packetLatency().count(), 1u);
  EXPECT_DOUBLE_EQ(ledger.packetLatency().mean(), 10.0);
  EXPECT_DOUBLE_EQ(ledger.networkLatency().mean(), 8.0);
}

TEST(DeliveryLedgerTest, FifoOrderWithinAFlow) {
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{1, 1};
  for (int i = 0; i < 3; ++i) {
    PacketRecord r;
    r.src = a;
    r.dst = b;
    r.createdCycle = static_cast<std::uint64_t>(i);
    r.flits = 1;
    ledger.onQueued(r);
  }
  ledger.onHeaderInjected(a, b, 5);
  ledger.onHeaderInjected(a, b, 6);
  EXPECT_EQ(ledger.onDelivered(a, b, 9).createdCycle, 0u);
  EXPECT_EQ(ledger.onDelivered(a, b, 10).createdCycle, 1u);
}

TEST(DeliveryLedgerTest, WarmupExcludesEarlyPackets) {
  DeliveryLedger ledger;
  ledger.setWarmupCycles(100);
  const NodeId a{0, 0}, b{1, 0};
  PacketRecord early;
  early.src = a;
  early.dst = b;
  early.createdCycle = 50;
  early.flits = 2;
  ledger.onQueued(early);
  ledger.onHeaderInjected(a, b, 51);
  ledger.onDelivered(a, b, 60);
  EXPECT_EQ(ledger.packetLatency().count(), 0u);
  EXPECT_EQ(ledger.delivered(), 1u);

  PacketRecord late = early;
  late.createdCycle = 200;
  ledger.onQueued(late);
  ledger.onHeaderInjected(a, b, 201);
  ledger.onDelivered(a, b, 215);
  EXPECT_EQ(ledger.packetLatency().count(), 1u);
}

TEST(DeliveryLedgerTest, ErrorsOnProtocolViolations) {
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{1, 0};
  EXPECT_THROW(ledger.onDelivered(a, b, 1), std::logic_error);
  EXPECT_THROW(ledger.onHeaderInjected(a, b, 1), std::logic_error);
  PacketRecord r;
  r.src = a;
  r.dst = b;
  r.flits = 1;
  ledger.onQueued(r);
  // Delivered before its header was ever injected.
  EXPECT_THROW(ledger.onDelivered(a, b, 2), std::logic_error);
}

TEST(DeliveryLedgerTest, ThroughputAccounting) {
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{1, 0};
  for (int i = 0; i < 10; ++i) {
    PacketRecord r;
    r.src = a;
    r.dst = b;
    r.createdCycle = static_cast<std::uint64_t>(i);
    r.flits = 8;
    ledger.onQueued(r);
    ledger.onHeaderInjected(a, b, static_cast<std::uint64_t>(i));
    ledger.onDelivered(a, b, static_cast<std::uint64_t>(i + 20));
  }
  // 80 flits over 100 cycles across 2 nodes = 0.4 flits/cycle/node.
  EXPECT_DOUBLE_EQ(ledger.throughputFlitsPerCyclePerNode(100, 2), 0.4);
  EXPECT_EQ(ledger.throughputFlitsPerCyclePerNode(0, 2), 0.0);
}

}  // namespace
}  // namespace rasoc::noc
