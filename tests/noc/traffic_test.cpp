#include "noc/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

#include "noc/ni.hpp"
#include "router/rasoc.hpp"

namespace rasoc::noc {
namespace {

TEST(DestinationTest, UniformCoversAllOtherNodesAndNeverSelf) {
  const MeshShape shape{3, 3};
  const NodeId src{1, 1};
  sim::Xoshiro256 rng(3);
  TrafficConfig config;
  std::map<int, int> histogram;
  for (int i = 0; i < 8000; ++i) {
    const NodeId dst = destinationFor(TrafficPattern::UniformRandom, src,
                                      shape, rng, config);
    ASSERT_NE(dst, src);
    ASSERT_TRUE(shape.contains(dst));
    ++histogram[shape.indexOf(dst)];
  }
  EXPECT_EQ(histogram.size(), 8u);  // all other nodes hit
  for (const auto& [node, hits] : histogram)
    EXPECT_NEAR(hits, 1000, 200) << "node " << node;
}

TEST(DestinationTest, TransposeSwapsCoordinates) {
  const MeshShape shape{4, 4};
  sim::Xoshiro256 rng(1);
  TrafficConfig config;
  EXPECT_EQ(destinationFor(TrafficPattern::Transpose, NodeId{3, 1}, shape,
                           rng, config),
            (NodeId{1, 3}));
  // Diagonal nodes are fixed points (the generator skips them).
  EXPECT_EQ(destinationFor(TrafficPattern::Transpose, NodeId{2, 2}, shape,
                           rng, config),
            (NodeId{2, 2}));
}

TEST(DestinationTest, TransposeRequiresSquareMesh) {
  const MeshShape shape{4, 2};
  sim::Xoshiro256 rng(1);
  TrafficConfig config;
  EXPECT_THROW(destinationFor(TrafficPattern::Transpose, NodeId{0, 0}, shape,
                              rng, config),
               std::invalid_argument);
}

TEST(DestinationTest, BitComplementMirrorsBothAxes) {
  const MeshShape shape{4, 4};
  sim::Xoshiro256 rng(1);
  TrafficConfig config;
  EXPECT_EQ(destinationFor(TrafficPattern::BitComplement, NodeId{0, 0}, shape,
                           rng, config),
            (NodeId{3, 3}));
  EXPECT_EQ(destinationFor(TrafficPattern::BitComplement, NodeId{1, 2}, shape,
                           rng, config),
            (NodeId{2, 1}));
}

TEST(DestinationTest, HotSpotBiasesTowardTheHotNode) {
  const MeshShape shape{4, 4};
  sim::Xoshiro256 rng(9);
  TrafficConfig config;
  config.hotspot = NodeId{3, 3};
  config.hotspotFraction = 0.5;
  int hot = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (destinationFor(TrafficPattern::HotSpot, NodeId{0, 0}, shape, rng,
                       config) == config.hotspot)
      ++hot;
  }
  // 50% direct + uniform residue also occasionally hits the hot node.
  EXPECT_GT(hot, trials / 2 - 200);
}

TEST(DestinationTest, NearestNeighborWraps) {
  const MeshShape shape{4, 4};
  sim::Xoshiro256 rng(1);
  TrafficConfig config;
  EXPECT_EQ(destinationFor(TrafficPattern::NearestNeighbor, NodeId{3, 2},
                           shape, rng, config),
            (NodeId{0, 2}));
}

TEST(TrafficConfigTest, PacketFlitsIncludesHeaderAndSourceIndex) {
  TrafficConfig config;
  config.payloadFlits = 6;
  EXPECT_EQ(config.packetFlits(), 8);
}

TEST(PatternNamesTest, AllNamed) {
  EXPECT_EQ(name(TrafficPattern::UniformRandom), "uniform");
  EXPECT_EQ(name(TrafficPattern::Transpose), "transpose");
  EXPECT_EQ(name(TrafficPattern::BitComplement), "complement");
  EXPECT_EQ(name(TrafficPattern::HotSpot), "hotspot");
  EXPECT_EQ(name(TrafficPattern::NearestNeighbor), "neighbor");
}

TEST(PatternValidationTest, TransposeRejectsNonSquareTopologies) {
  TrafficConfig config;
  config.pattern = TrafficPattern::Transpose;
  EXPECT_NO_THROW(
      validatePattern(config.pattern, MeshTopology(4, 4), config));
  EXPECT_NO_THROW(
      validatePattern(config.pattern, TorusTopology(3, 3), config));
  EXPECT_THROW(validatePattern(config.pattern, MeshTopology(4, 2), config),
               std::invalid_argument);
  EXPECT_THROW(validatePattern(config.pattern, TorusTopology(2, 4), config),
               std::invalid_argument);
  // A ring's extent is Nx1: transpose is inexpressible, and the message
  // should steer callers to the ring-capable pattern.
  const RingTopology ring(8);
  try {
    validatePattern(config.pattern, ring, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("square"), std::string::npos) << what;
    EXPECT_NE(what.find("ring8"), std::string::npos) << what;
  }
}

TEST(PatternValidationTest, HotSpotTargetMustBeANode) {
  TrafficConfig config;
  config.pattern = TrafficPattern::HotSpot;
  config.hotspot = NodeId{3, 3};
  EXPECT_NO_THROW(
      validatePattern(config.pattern, MeshTopology(4, 4), config));
  EXPECT_THROW(validatePattern(config.pattern, RingTopology(8), config),
               std::invalid_argument);
  config.hotspot = NodeId{5, 0};
  EXPECT_NO_THROW(validatePattern(config.pattern, RingTopology(8), config));
}

TEST(PatternValidationTest, RingFriendlyPatternsPass) {
  TrafficConfig config;
  const RingTopology ring(8);
  EXPECT_NO_THROW(
      validatePattern(TrafficPattern::UniformRandom, ring, config));
  EXPECT_NO_THROW(
      validatePattern(TrafficPattern::BitComplement, ring, config));
  EXPECT_NO_THROW(
      validatePattern(TrafficPattern::NearestNeighbor, ring, config));
  sim::Xoshiro256 rng(4);
  EXPECT_EQ(destinationFor(TrafficPattern::BitComplement, NodeId{1, 0}, ring,
                           rng, config),
            (NodeId{6, 0}));
  EXPECT_EQ(destinationFor(TrafficPattern::NearestNeighbor, NodeId{7, 0},
                           ring, rng, config),
            (NodeId{0, 0}));
}

TEST(TrafficGeneratorTest, ConstructorValidatesThePattern) {
  const MeshShape shape{4, 2};
  router::RouterParams params;
  router::Rasoc router("r", params);
  DeliveryLedger ledger;
  NetworkInterface ni("ni", params, shape, NodeId{0, 0},
                      router.in(router::Port::Local),
                      router.out(router::Port::Local), ledger);
  TrafficConfig config;
  config.pattern = TrafficPattern::Transpose;  // 4x2 is not square
  EXPECT_THROW(TrafficGenerator("tg", shape, NodeId{0, 0}, ni, config),
               std::invalid_argument);
}

TEST(TrafficGeneratorTest, RejectsInvalidConfigs) {
  const MeshShape shape{2, 2};
  router::RouterParams params;
  router::Rasoc router("r", params);
  DeliveryLedger ledger;
  NetworkInterface ni("ni", params, shape, NodeId{0, 0},
                      router.in(router::Port::Local),
                      router.out(router::Port::Local), ledger);
  TrafficConfig config;
  config.offeredLoad = 1.5;
  EXPECT_THROW(TrafficGenerator("tg", shape, NodeId{0, 0}, ni, config),
               std::invalid_argument);
  config.offeredLoad = 0.5;
  config.payloadFlits = 0;
  EXPECT_THROW(TrafficGenerator("tg", shape, NodeId{0, 0}, ni, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::noc
