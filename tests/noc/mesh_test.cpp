// Integration tests: full meshes of RASoC routers with NIs and traffic.
#include "noc/mesh.hpp"

#include <gtest/gtest.h>

namespace rasoc::noc {
namespace {

using router::FifoImpl;

MeshConfig config(int w, int h, FifoImpl impl = FifoImpl::Eab, int p = 4) {
  MeshConfig cfg;
  cfg.shape = MeshShape{w, h};
  cfg.params.n = 16;
  cfg.params.p = p;
  cfg.params.fifoImpl = impl;
  return cfg;
}

TEST(MeshTest, SinglePacketCrossesTheMesh) {
  Mesh mesh(config(3, 3));
  mesh.ni(NodeId{0, 0}).send(NodeId{2, 2}, {0xaaa, 0xbbb});
  ASSERT_TRUE(mesh.drain(500));
  EXPECT_TRUE(mesh.healthy());
  const auto& rx = mesh.ni(NodeId{2, 2}).received();
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0], (std::vector<std::uint32_t>{0xaaa, 0xbbb}));
  EXPECT_EQ(mesh.ledger().delivered(), 1u);
}

TEST(MeshTest, AllPairsDeliverOnThreeByThree) {
  Mesh mesh(config(3, 3));
  const MeshShape shape = mesh.shape();
  int sent = 0;
  for (int s = 0; s < shape.nodes(); ++s) {
    for (int d = 0; d < shape.nodes(); ++d) {
      if (s == d) continue;
      mesh.ni(shape.nodeAt(s))
          .send(shape.nodeAt(d), {static_cast<std::uint32_t>(s * 16 + d)});
      ++sent;
    }
  }
  ASSERT_TRUE(mesh.drain(5000));
  EXPECT_TRUE(mesh.healthy());
  EXPECT_EQ(mesh.ledger().delivered(), static_cast<std::uint64_t>(sent));
  // Every node received exactly nodes-1 packets with its own id marker.
  for (int d = 0; d < shape.nodes(); ++d) {
    const auto& rx = mesh.ni(shape.nodeAt(d)).received();
    EXPECT_EQ(rx.size(), static_cast<std::size_t>(shape.nodes() - 1));
    for (const auto& payload : rx) {
      ASSERT_EQ(payload.size(), 1u);
      EXPECT_EQ(payload[0] & 0xfu, static_cast<std::uint32_t>(d));
    }
  }
}

TEST(MeshTest, PayloadIntegrityUnderConcurrentTraffic) {
  Mesh mesh(config(4, 4));
  const MeshShape shape = mesh.shape();
  // Every node sends a distinctive pattern to its bit-complement partner.
  for (int s = 0; s < shape.nodes(); ++s) {
    const NodeId src = shape.nodeAt(s);
    const NodeId dst{shape.width - 1 - src.x, shape.height - 1 - src.y};
    std::vector<std::uint32_t> payload;
    for (int i = 0; i < 6; ++i)
      payload.push_back(static_cast<std::uint32_t>((s << 8) | i));
    mesh.ni(src).send(dst, payload);
  }
  ASSERT_TRUE(mesh.drain(5000));
  EXPECT_TRUE(mesh.healthy());
  for (int d = 0; d < shape.nodes(); ++d) {
    const NodeId dst = shape.nodeAt(d);
    const NodeId src{shape.width - 1 - dst.x, shape.height - 1 - dst.y};
    const auto& rx = mesh.ni(dst).received();
    ASSERT_EQ(rx.size(), 1u);
    ASSERT_EQ(rx[0].size(), 6u);
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(rx[0][static_cast<std::size_t>(i)],
                static_cast<std::uint32_t>((shape.indexOf(src) << 8) | i));
    }
  }
}

TEST(MeshTest, FlowsAreDeliveredInOrder) {
  Mesh mesh(config(3, 2));
  const NodeId src{0, 0}, dst{2, 1};
  for (std::uint32_t i = 0; i < 20; ++i) mesh.ni(src).send(dst, {100 + i});
  ASSERT_TRUE(mesh.drain(5000));
  const auto& rx = mesh.ni(dst).received();
  ASSERT_EQ(rx.size(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(rx[i][0], 100 + i);
}

TEST(MeshTest, UniformTrafficIsDeliveredHealthily) {
  Mesh mesh(config(4, 4));
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::UniformRandom;
  traffic.offeredLoad = 0.1;
  traffic.payloadFlits = 4;
  traffic.seed = 77;
  mesh.attachTraffic(traffic);
  mesh.run(3000);
  EXPECT_TRUE(mesh.healthy());
  EXPECT_GT(mesh.ledger().delivered(), 100u);
  ASSERT_TRUE(mesh.drain(20000));
  EXPECT_EQ(mesh.ledger().delivered(), mesh.ledger().queued());
}

TEST(MeshTest, SaturationMakesProgressWithoutDeadlock) {
  // XY routing on a mesh is deadlock-free; under saturating load the
  // network must keep delivering packets (progress property).
  Mesh mesh(config(4, 4, FifoImpl::Eab, 2));
  TrafficConfig traffic;
  traffic.pattern = TrafficPattern::UniformRandom;
  traffic.offeredLoad = 1.0;
  traffic.payloadFlits = 4;
  traffic.seed = 5;
  mesh.attachTraffic(traffic);
  mesh.run(1500);
  const std::uint64_t mid = mesh.ledger().delivered();
  mesh.run(1500);
  const std::uint64_t end = mesh.ledger().delivered();
  EXPECT_TRUE(mesh.healthy());
  EXPECT_GT(mid, 50u);
  EXPECT_GT(end, mid + 50u);  // still flowing in the second half
}

TEST(MeshTest, FfAndEabMeshesBehaveIdentically) {
  // The FIFO microarchitecture must be behaviourally invisible.
  auto runOne = [](FifoImpl impl) {
    Mesh mesh(config(3, 3, impl));
    TrafficConfig traffic;
    traffic.offeredLoad = 0.15;
    traffic.payloadFlits = 3;
    traffic.seed = 11;
    mesh.attachTraffic(traffic);
    mesh.run(1200);
    return std::pair{mesh.ledger().delivered(),
                     mesh.ledger().packetLatency().mean()};
  };
  const auto ff = runOne(FifoImpl::FlipFlop);
  const auto eab = runOne(FifoImpl::Eab);
  EXPECT_EQ(ff.first, eab.first);
  EXPECT_DOUBLE_EQ(ff.second, eab.second);
}

TEST(MeshTest, NetworkLatencyMatchesHopCountAtLowLoad) {
  Mesh mesh(config(4, 4));
  const NodeId src{0, 0}, dst{3, 0};
  mesh.ni(src).send(dst, {1, 2});
  ASSERT_TRUE(mesh.drain(500));
  // 4 routers x ~3 cycles each + 4 flits serialization; just bound sanity.
  const double latency = mesh.ledger().networkLatency().mean();
  EXPECT_GT(latency, 8.0);
  EXPECT_LT(latency, 40.0);
}

TEST(MeshTest, CreditModeMeshDeliversTraffic) {
  MeshConfig cfg = config(3, 3);
  cfg.params.flowControl = router::FlowControl::CreditBased;
  Mesh mesh(cfg);
  TrafficConfig traffic;
  traffic.offeredLoad = 0.1;
  traffic.payloadFlits = 3;
  traffic.seed = 23;
  mesh.attachTraffic(traffic);
  mesh.run(1500);
  EXPECT_TRUE(mesh.healthy());
  EXPECT_GT(mesh.ledger().delivered(), 50u);
}

TEST(MeshTest, OneByTwoMinimalMesh) {
  Mesh mesh(config(2, 1));
  mesh.ni(NodeId{0, 0}).send(NodeId{1, 0}, {7});
  mesh.ni(NodeId{1, 0}).send(NodeId{0, 0}, {8});
  ASSERT_TRUE(mesh.drain(200));
  EXPECT_EQ(mesh.ni(NodeId{1, 0}).received()[0][0], 7u);
  EXPECT_EQ(mesh.ni(NodeId{0, 0}).received()[0][0], 8u);
}

TEST(MeshTest, RejectsMeshWiderThanRibRange) {
  MeshConfig cfg = config(9, 1);  // max offset 8 > 7 at m=8
  EXPECT_THROW(Mesh{cfg}, std::invalid_argument);
}

TEST(MeshTest, LinkUtilizationIsTrackedAndBounded) {
  Mesh mesh(config(3, 3));
  TrafficConfig traffic;
  traffic.offeredLoad = 0.3;
  traffic.seed = 31;
  mesh.attachTraffic(traffic);
  mesh.run(2000);
  EXPECT_GT(mesh.meanLinkUtilization(), 0.0);
  EXPECT_LE(mesh.maxLinkUtilization(), 1.0);
  EXPECT_EQ(mesh.linkCount(), 2u * (2 * 3 + 3 * 2));
}

TEST(MeshTest, LinkUtilizationIsZeroBeforeAnyCycleRuns) {
  // Regression: utilization queries on a freshly built mesh (cycle 0) must
  // return 0.0 instead of dividing by zero cycles.
  Mesh mesh(config(3, 3));
  EXPECT_EQ(mesh.simulator().cycle(), 0u);
  EXPECT_DOUBLE_EQ(mesh.meanLinkUtilization(), 0.0);
  EXPECT_DOUBLE_EQ(mesh.maxLinkUtilization(), 0.0);
  EXPECT_DOUBLE_EQ(mesh.linkUtilization(NodeId{0, 0}, router::Port::East),
                   0.0);
  // After one cycle the denominators are live again.
  mesh.run(1);
  EXPECT_LE(mesh.maxLinkUtilization(), 1.0);
}

TEST(MeshTest, SelfSendThrows) {
  Mesh mesh(config(2, 2));
  EXPECT_THROW(mesh.ni(NodeId{0, 0}).send(NodeId{0, 0}, {1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::noc
