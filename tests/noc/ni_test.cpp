// Unit tests for the network interface, driven against a single router so
// the send and receive paths are exercised end to end.
#include "noc/ni.hpp"

#include <gtest/gtest.h>

#include "router/rasoc.hpp"
#include "sim/simulator.hpp"

namespace rasoc::noc {
namespace {

// Two NIs on one router: one on Local, one impersonating the East
// neighbour (connected to the East port wires directly).
struct NiHarness {
  explicit NiHarness(router::RouterParams params = {}, NiOptions options = {})
      : router("r", params),
        local("niL", params, shape, NodeId{0, 0}, router.in(router::Port::Local),
              router.out(router::Port::Local), ledger, options),
        east("niE", params, shape, NodeId{1, 0}, router.in(router::Port::East),
             router.out(router::Port::East), ledger, options) {
    sim.add(router);
    sim.add(local);
    sim.add(east);
    sim.reset();
  }

  MeshShape shape{2, 1};
  DeliveryLedger ledger;
  router::Rasoc router;
  NetworkInterface local;
  NetworkInterface east;
  sim::Simulator sim;
};

TEST(NiTest, SendsAndReceivesAPacket) {
  NiHarness h;
  h.local.send(NodeId{1, 0}, {0x11, 0x22});
  h.sim.run(50);
  ASSERT_EQ(h.east.packetsReceived(), 1u);
  ASSERT_EQ(h.east.received().size(), 1u);
  EXPECT_EQ(h.east.received()[0], (std::vector<std::uint32_t>{0x11, 0x22}));
  EXPECT_EQ(h.local.packetsSent(), 1u);
  EXPECT_EQ(h.ledger.delivered(), 1u);
}

TEST(NiTest, QueueDrainsInOrder) {
  NiHarness h;
  for (std::uint32_t i = 0; i < 5; ++i) h.local.send(NodeId{1, 0}, {i});
  EXPECT_EQ(h.local.sendQueuePackets(), 5u);
  EXPECT_EQ(h.local.sendQueueFlits(), 5u * 3u);
  h.sim.run(100);
  EXPECT_TRUE(h.local.idle());
  ASSERT_EQ(h.east.received().size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i)
    EXPECT_EQ(h.east.received()[i][0], i);
}

TEST(NiTest, LedgerTimestampsAreOrdered) {
  NiHarness h;
  h.sim.run(10);
  h.local.send(NodeId{1, 0}, {0x7});
  h.sim.run(50);
  ASSERT_EQ(h.ledger.packetLatency().count(), 1u);
  const double endToEnd = h.ledger.packetLatency().mean();
  const double network = h.ledger.networkLatency().mean();
  EXPECT_GE(endToEnd, network);
  EXPECT_GT(network, 0.0);
}

TEST(NiTest, RejectsSelfAndOffMeshDestinations) {
  NiHarness h;
  EXPECT_THROW(h.local.send(NodeId{0, 0}, {1}), std::invalid_argument);
  EXPECT_THROW(h.local.send(NodeId{5, 5}, {1}), std::invalid_argument);
}

TEST(NiTest, MisdeliveryFlagStartsClear) {
  NiHarness h;
  h.local.send(NodeId{1, 0}, {1, 2, 3});
  h.sim.run(50);
  EXPECT_FALSE(h.east.misdeliveryDetected());
  EXPECT_FALSE(h.local.misdeliveryDetected());
}

TEST(NiTest, ResetClearsAllState) {
  NiHarness h;
  h.local.send(NodeId{1, 0}, {1});
  h.sim.run(50);
  EXPECT_EQ(h.east.packetsReceived(), 1u);
  h.sim.reset();
  EXPECT_EQ(h.east.packetsReceived(), 0u);
  EXPECT_EQ(h.local.packetsSent(), 0u);
  EXPECT_TRUE(h.local.idle());
  EXPECT_EQ(h.east.received().size(), 0u);
}

TEST(NiTest, ParityOptionProtectsAndStrips) {
  router::RouterParams params;
  params.n = 16;
  NiOptions options;
  options.hlpParity = true;
  NiHarness h(params, options);
  h.local.send(NodeId{1, 0}, {0x1234, 0x7fff});
  h.sim.run(50);
  ASSERT_EQ(h.east.received().size(), 1u);
  EXPECT_EQ(h.east.received()[0][0], 0x1234u);
  EXPECT_EQ(h.east.received()[0][1], 0x7fffu);
  EXPECT_EQ(h.east.parityErrors(), 0u);
  EXPECT_EQ(h.local.payloadBits(), 15);
}

TEST(NiTest, MeshTooLargeForIndexFlitThrows) {
  router::RouterParams params;
  params.n = 4;  // 16 node indices max
  params.m = 4;
  router::Rasoc router("r", params);
  DeliveryLedger ledger;
  // 5x4 = 20 nodes > 16: the source-index flit cannot address them.
  EXPECT_THROW(NetworkInterface("ni", params, MeshShape{5, 4}, NodeId{0, 0},
                                router.in(router::Port::Local),
                                router.out(router::Port::Local), ledger),
               std::invalid_argument);
}

TEST(NiTest, CreditModeNiRespectsBufferDepth) {
  router::RouterParams params;
  params.flowControl = router::FlowControl::CreditBased;
  params.p = 2;
  NiHarness h(params);
  std::vector<std::uint32_t> payload(12, 0xab);
  h.local.send(NodeId{1, 0}, payload);
  h.sim.run(120);
  ASSERT_EQ(h.east.received().size(), 1u);
  EXPECT_EQ(h.east.received()[0].size(), payload.size());
  EXPECT_FALSE(h.router.overflowDetected());
}

}  // namespace
}  // namespace rasoc::noc
