// Virtual-channel deadlock battery: adversarial cyclic traffic run to full
// drain on the wrapping topologies at every supported VC count, under every
// settle kernel.
//
// The deadlock-freedom claim under test (DESIGN.md §12): numVCs == 1 routes
// never wrap (the network is its own mesh/line sub-network, dimension-order
// safe); numVCs >= 2 routes are minimal and may wrap, but VC0/VC1 form a
// dimension-ordered escape layer whose wrap (dateline) classes order every
// ring's channels acyclically, and adaptive VCs always keep the escape path
// as a fallback bid (Duato's criterion).  A cyclic channel-dependency bug
// does not fail an assertion by itself - it wedges the network - so every
// scenario runs under a Watchdog that trips after a bounded delivery gap
// and fails the test naming the blocked links instead of timing out ctest.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "noc/watchdog.hpp"

namespace rasoc::noc {
namespace {

using router::FlowControl;
using sim::Simulator;

struct KernelPick {
  Simulator::Kernel kernel;
  int threads;
  const char* label;
};

const KernelPick kAllKernels[] = {
    {Simulator::Kernel::Naive, 1, "naive"},
    {Simulator::Kernel::EventDriven, 1, "event"},
    {Simulator::Kernel::ParallelEventDriven, 2, "parallel2"},
    {Simulator::Kernel::Compiled, 1, "compiled"},
};

// The cheap pair that still covers both execution substrates (behavioural
// fixpoint and compiled tape); the heavier sweeps use it so the whole
// battery stays inside the tier-1 time budget.
const KernelPick kFastKernels[] = {
    {Simulator::Kernel::EventDriven, 1, "event"},
    {Simulator::Kernel::Compiled, 1, "compiled"},
};

std::unique_ptr<Network> makeNet(const std::shared_ptr<const Topology>& topo,
                                 int numVCs, const KernelPick& pick,
                                 FlowControl flowControl) {
  NetworkConfig cfg;
  cfg.params.numVCs = numVCs;
  cfg.params.flowControl = flowControl;
  cfg.kernel = pick.kernel;
  cfg.threads = pick.threads;
  return std::make_unique<Network>(topo, cfg);
}

// Runs until every queued packet delivers, with a watchdog failing fast on
// a delivery stall: a deadlock surfaces as a named-blocked-links assertion
// within ~watchdog-timeout cycles, not as a ctest timeout.
void drainGuarded(Network& net, Watchdog& dog, std::uint64_t sent,
                  const std::string& what) {
  const std::uint64_t budget = 120000;
  std::uint64_t cycles = 0;
  while (cycles < budget) {
    net.run(200);
    cycles += 200;
    if (dog.stallDetected()) break;
    if (net.ledger().delivered() == sent) break;
  }
  std::string blocked;
  for (const std::string& link : dog.snapshot().blockedLinks)
    blocked += " " + link;
  ASSERT_FALSE(dog.stallDetected())
      << what << ": delivery stalled with " << dog.snapshot().inFlightAtStall
      << " packets in flight; blocked links:" << blocked;
  ASSERT_EQ(net.ledger().delivered(), sent) << what;
  EXPECT_TRUE(net.healthy()) << what;
}

// --- adversarial send patterns ---------------------------------------------

// Every node sends to every other node: on a wrapping topology with minimal
// routing this closes every ring dependency cycle there is.
std::uint64_t sendAllToAll(Network& net, const Topology& topo) {
  std::uint64_t sent = 0;
  for (int s = 0; s < topo.nodes(); ++s)
    for (int d = 0; d < topo.nodes(); ++d) {
      if (s == d) continue;
      net.ni(topo.nodeAt(s))
          .send(topo.nodeAt(d),
                {static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(d),
                 0xabcu});
      ++sent;
    }
  return sent;
}

// (x, y) -> (y, x), several rounds: long straight paths that all turn at
// the diagonal, the classic torus adversary.
std::uint64_t sendTranspose(Network& net, const Topology& topo, int rounds) {
  std::uint64_t sent = 0;
  for (int r = 0; r < rounds; ++r)
    for (int i = 0; i < topo.nodes(); ++i) {
      const NodeId src = topo.nodeAt(i);
      const NodeId dst{src.y, src.x};
      if (dst == src || !topo.contains(dst)) continue;
      net.ni(src).send(dst, {1u, 2u, static_cast<std::uint32_t>(r)});
      ++sent;
    }
  return sent;
}

// Everyone floods one corner: maximal contention on the victim's input,
// which starves adaptive bids and forces the patience escape path.
std::uint64_t sendHotspot(Network& net, const Topology& topo, int rounds) {
  const NodeId victim = topo.nodeAt(0);
  std::uint64_t sent = 0;
  for (int r = 0; r < rounds; ++r)
    for (int i = 1; i < topo.nodes(); ++i) {
      net.ni(topo.nodeAt(i))
          .send(victim, {static_cast<std::uint32_t>(i), 7u});
      ++sent;
    }
  return sent;
}

// node i -> node N-1-i: on a ring with minimal routing, half the flows take
// the wrap hop in each direction simultaneously.
std::uint64_t sendComplement(Network& net, const Topology& topo, int rounds) {
  std::uint64_t sent = 0;
  for (int r = 0; r < rounds; ++r)
    for (int i = 0; i < topo.nodes(); ++i) {
      const NodeId dst = topo.nodeAt(topo.nodes() - 1 - i);
      const NodeId src = topo.nodeAt(i);
      if (dst == src) continue;
      net.ni(src).send(dst, {0xdeadu, static_cast<std::uint32_t>(i)});
      ++sent;
    }
  return sent;
}

using SendFn = std::uint64_t (*)(Network&, const Topology&);

void runScenario(const std::shared_ptr<const Topology>& topo, int numVCs,
                 const KernelPick& pick, FlowControl flowControl,
                 SendFn send, const std::string& what) {
  SCOPED_TRACE(what);
  auto net = makeNet(topo, numVCs, pick, flowControl);
  Watchdog dog("dog", net->ledger(), 1500,
               [&net] { return net->blockedLinkNames(); });
  net->simulator().add(dog);
  const std::uint64_t sent = send(*net, *topo);
  drainGuarded(*net, dog, sent, what);
}

std::string label(const std::shared_ptr<const Topology>& topo, int vcs,
                  const KernelPick& pick) {
  return topo->describe() + " vc" + std::to_string(vcs) + " " + pick.label;
}

// --- the battery -----------------------------------------------------------

TEST(VcDeadlockTest, RingAllToAllDrainsAtEveryVcCountOnEveryKernel) {
  const auto ring = makeTopology("ring", 8, 1);
  for (int vcs : {1, 2, 4})
    for (const KernelPick& pick : kAllKernels)
      runScenario(ring, vcs, pick, FlowControl::Handshake, &sendAllToAll,
                  label(ring, vcs, pick) + " all-to-all");
}

TEST(VcDeadlockTest, TorusAllToAllDrainsAtEveryVcCountOnEveryKernel) {
  const auto torus = makeTopology("torus", 4, 4);
  for (int vcs : {1, 2, 4})
    for (const KernelPick& pick : kAllKernels)
      runScenario(torus, vcs, pick, FlowControl::Handshake, &sendAllToAll,
                  label(torus, vcs, pick) + " all-to-all");
}

TEST(VcDeadlockTest, TorusTransposeDrainsWithWrapRoutes) {
  const auto torus = makeTopology("torus", 4, 4);
  for (int vcs : {1, 2, 4})
    for (const KernelPick& pick : kFastKernels)
      runScenario(torus, vcs, pick, FlowControl::Handshake,
                  [](Network& n, const Topology& t) {
                    return sendTranspose(n, t, 6);
                  },
                  label(torus, vcs, pick) + " transpose");
}

TEST(VcDeadlockTest, HotspotStarvationResolvesThroughTheEscapePath) {
  // Saturating one corner starves adaptive bids; the patience rotation must
  // walk every starved header onto its escape option instead of livelocking.
  for (const auto& topo :
       {makeTopology("mesh", 4, 4), makeTopology("torus", 4, 4),
        makeTopology("ring", 8, 1)}) {
    for (int vcs : {2, 4})
      for (const KernelPick& pick : kFastKernels)
        runScenario(topo, vcs, pick, FlowControl::Handshake,
                    [](Network& n, const Topology& t) {
                      return sendHotspot(n, t, 5);
                    },
                    label(topo, vcs, pick) + " hotspot");
  }
}

TEST(VcDeadlockTest, RingComplementCrossesBothWrapDirectionsAtOnce) {
  const auto ring = makeTopology("ring", 8, 1);
  for (int vcs : {2, 4})
    for (const KernelPick& pick : kAllKernels)
      runScenario(ring, vcs, pick, FlowControl::Handshake,
                  [](Network& n, const Topology& t) {
                    return sendComplement(n, t, 8);
                  },
                  label(ring, vcs, pick) + " complement");
}

TEST(VcDeadlockTest, CreditFlowControlDrainsTheSameBattery) {
  // The per-VC credit path replaces the on/off vcFree levels with counter
  // state on the sender: the same cyclic patterns must drain.
  for (const auto& topo :
       {makeTopology("torus", 4, 4), makeTopology("ring", 8, 1)}) {
    for (int vcs : {2, 4})
      for (const KernelPick& pick : kFastKernels)
        runScenario(topo, vcs, pick, FlowControl::CreditBased, &sendAllToAll,
                    label(topo, vcs, pick) + " credit all-to-all");
  }
}

TEST(VcDeadlockTest, QosClassMappedAllToAllDrainsOnEveryTopology) {
  // QoS narrows adaptive bids to per-class VC masks and replaces the output
  // round-robin with strict priority + starvation guard; Duato's criterion
  // still holds (the escape layer is class-blind and the guard bounds every
  // VC's wait), so the same adversarial cycles must drain.  Classes rotate
  // per packet so every class's lane carries wrap traffic at once.
  for (const auto& topo :
       {makeTopology("mesh", 4, 4), makeTopology("torus", 4, 4),
        makeTopology("ring", 8, 1)}) {
    for (const KernelPick& pick : kFastKernels) {
      for (FlowControl fc :
           {FlowControl::Handshake, FlowControl::CreditBased}) {
        const std::string what =
            label(topo, 4, pick) +
            (fc == FlowControl::CreditBased ? " credit" : " handshake") +
            " qos all-to-all";
        SCOPED_TRACE(what);
        NetworkConfig cfg;
        cfg.params.n = 16;  // room for the class tag above the RIB
        cfg.params.numVCs = 4;
        cfg.params.qosClasses = true;
        cfg.params.flowControl = fc;
        cfg.kernel = pick.kernel;
        cfg.threads = pick.threads;
        auto net = std::make_unique<Network>(topo, cfg);
        Watchdog dog("dog", net->ledger(), 1500,
                     [&net] { return net->blockedLinkNames(); });
        net->simulator().add(dog);
        std::uint64_t sent = 0;
        for (int s = 0; s < topo->nodes(); ++s)
          for (int d = 0; d < topo->nodes(); ++d) {
            if (s == d) continue;
            const auto cls = static_cast<router::TrafficClass>(
                (s + d) % router::kNumTrafficClasses);
            net->ni(topo->nodeAt(s))
                .send(topo->nodeAt(d),
                      {static_cast<std::uint32_t>(s),
                       static_cast<std::uint32_t>(d)},
                      cls);
            ++sent;
          }
        drainGuarded(*net, dog, sent, what);
      }
    }
  }
}

TEST(VcDeadlockTest, GeneratorSaturationDrainsAfterTrafficPauses) {
  // Sustained generator load beyond saturation, then pause and drain: the
  // steady-state wormhole backpressure configuration, not just a burst.
  for (int vcs : {1, 2, 4}) {
    for (const auto& topo :
         {makeTopology("torus", 4, 4), makeTopology("ring", 8, 1)}) {
      SCOPED_TRACE(topo->describe() + " vc" + std::to_string(vcs));
      NetworkConfig cfg;
      cfg.params.numVCs = vcs;
      Network net(topo, cfg);
      Watchdog dog("dog", net.ledger(), 1500,
                   [&net] { return net.blockedLinkNames(); });
      net.simulator().add(dog);
      TrafficConfig traffic;
      traffic.pattern = TrafficPattern::UniformRandom;
      traffic.offeredLoad = 0.9;
      traffic.payloadFlits = 3;
      traffic.seed = 2026;
      net.attachTraffic(traffic);
      net.run(2000);
      net.pauseTraffic(true);
      ASSERT_TRUE(net.drain(60000)) << "drain hung";
      ASSERT_FALSE(dog.stallDetected());
      EXPECT_TRUE(net.healthy());
      EXPECT_EQ(net.ledger().delivered(), net.ledger().queued());
      EXPECT_GT(net.ledger().delivered(), 100u);
    }
  }
}

}  // namespace
}  // namespace rasoc::noc
