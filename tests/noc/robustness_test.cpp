// Robustness and scale: progress watchdog, 8x8 meshes (the largest the
// 8-bit RIB addresses), histogram rendering.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"
#include "noc/observe.hpp"
#include "noc/watchdog.hpp"

namespace rasoc::noc {
namespace {

TEST(WatchdogTest, QuietNetworkNeverTrips) {
  MeshConfig cfg;
  cfg.shape = MeshShape{2, 2};
  Mesh mesh(cfg);
  Watchdog dog("dog", mesh.ledger(), 50);
  mesh.simulator().add(dog);
  mesh.run(500);  // nothing in flight: idle is not a stall
  EXPECT_FALSE(dog.stallDetected());
}

TEST(WatchdogTest, DetectsAnArtificialStall) {
  // Queue a packet into the ledger that nobody will ever deliver.
  DeliveryLedger ledger;
  PacketRecord r;
  r.src = NodeId{0, 0};
  r.dst = NodeId{1, 0};
  r.flits = 2;
  ledger.onQueued(r);
  Watchdog dog("dog", ledger, 20);
  sim::Simulator sim;
  sim.add(dog);
  sim.reset();
  sim.run(100);
  EXPECT_TRUE(dog.stallDetected());
  EXPECT_GE(dog.longestStall(), 20u);
}

TEST(WatchdogTest, SnapshotCapturesStallForensics) {
  // One delivery at a known watchdog cycle, then a packet that never
  // completes: the snapshot must pin down when progress stopped and how
  // much was stuck.
  DeliveryLedger ledger;
  const NodeId a{0, 0}, b{1, 0};
  PacketRecord r;
  r.src = a;
  r.dst = b;
  r.flits = 1;
  ledger.onQueued(r);
  ledger.onHeaderInjected(a, b, 0);
  Watchdog dog("dog", ledger, 20);
  sim::Simulator sim;
  sim.add(dog);
  sim.reset();
  sim.run(5);
  ledger.onDelivered(a, b, 5);  // observed on watchdog cycle 6
  ledger.onQueued(r);           // and this one is stuck forever
  sim.run(100);
  const WatchdogSnapshot& snapshot = dog.snapshot();
  EXPECT_TRUE(snapshot.stalled);
  EXPECT_EQ(snapshot.lastDeliveryCycle, 6u);
  EXPECT_EQ(snapshot.stallCycle, 26u);  // last delivery + timeout
  EXPECT_EQ(snapshot.inFlightAtStall, 1u);
  EXPECT_GE(snapshot.longestStall, 20u);
}

TEST(WatchdogTest, ForcedStallSnapshotReachesTheRunReport) {
  MeshConfig cfg;
  cfg.shape = MeshShape{2, 2};
  Mesh mesh(cfg);
  Watchdog dog("dog", mesh.ledger(), 30);
  mesh.simulator().add(dog);
  mesh.ni(NodeId{0, 0}).send(NodeId{1, 1}, {0x1});
  ASSERT_TRUE(mesh.drain(500));
  // Force a stall: ledger sees a packet that no NI will ever deliver.
  PacketRecord phantom;
  phantom.src = NodeId{0, 0};
  phantom.dst = NodeId{1, 1};
  phantom.flits = 1;
  mesh.ledger().onQueued(phantom);
  mesh.run(200);
  ASSERT_TRUE(dog.stallDetected());
  const std::string json = buildRunReport("stall", mesh, &dog).toJson();
  EXPECT_NE(json.find("\"stalled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight_at_stall\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"stall_cycle\": "), std::string::npos);
  EXPECT_NE(json.find("\"last_delivery_cycle\": "), std::string::npos);
  EXPECT_NE(json.find("\"longest_stall\": "), std::string::npos);
}

TEST(WatchdogTest, DeliveriesKeepResettingTheTimer) {
  MeshConfig cfg;
  cfg.shape = MeshShape{3, 3};
  cfg.params.n = 16;
  Mesh mesh(cfg);
  Watchdog dog("dog", mesh.ledger(), 200);
  mesh.simulator().add(dog);
  TrafficConfig traffic;
  traffic.offeredLoad = 0.2;
  traffic.seed = 21;
  mesh.attachTraffic(traffic);
  mesh.run(3000);
  EXPECT_FALSE(dog.stallDetected());
  EXPECT_LT(dog.longestStall(), 100u);
}

TEST(ScaleTest, EightByEightSaturatedMeshStaysDeadlockFree) {
  // 8x8 is the largest mesh an 8-bit RIB can address (offsets up to 7).
  MeshConfig cfg;
  cfg.shape = MeshShape{8, 8};
  cfg.params.n = 16;
  cfg.params.p = 2;
  Mesh mesh(cfg);
  Watchdog dog("dog", mesh.ledger(), 500);
  mesh.simulator().add(dog);
  TrafficConfig traffic;
  traffic.offeredLoad = 1.0;  // saturating
  traffic.payloadFlits = 4;
  traffic.seed = 8;
  mesh.attachTraffic(traffic);
  mesh.run(1200);
  EXPECT_TRUE(mesh.healthy());
  EXPECT_FALSE(dog.stallDetected()) << "longest stall "
                                    << dog.longestStall();
  EXPECT_GT(mesh.ledger().delivered(), 200u);
}

TEST(ScaleTest, AsymmetricMeshesWork) {
  for (auto [w, h] : {std::pair{8, 1}, std::pair{1, 8}, std::pair{5, 2}}) {
    MeshConfig cfg;
    cfg.shape = MeshShape{w, h};
    cfg.params.n = 16;
    Mesh mesh(cfg);
    mesh.ni(NodeId{0, 0}).send(NodeId{w - 1, h - 1}, {0xab});
    ASSERT_TRUE(mesh.drain(1000)) << w << "x" << h;
    EXPECT_TRUE(mesh.healthy());
    EXPECT_EQ(mesh.ni(NodeId{w - 1, h - 1}).received().size(), 1u);
  }
}

TEST(HistogramTest, RendersBinsAndBars) {
  LatencyStats stats;
  for (int i = 0; i < 90; ++i) stats.record(10.0);
  for (int i = 0; i < 10; ++i) stats.record(100.0);
  const std::string histogram = stats.histogram(9, 20);
  EXPECT_NE(histogram.find("####################"), std::string::npos);
  // The sparse bin still gets a labelled row.
  EXPECT_NE(histogram.find("10 "), std::string::npos);
}

TEST(HistogramTest, EmptyAndDegenerateInputs) {
  LatencyStats stats;
  EXPECT_NE(stats.histogram().find("(no samples)"), std::string::npos);
  stats.record(5.0);
  EXPECT_NO_THROW(stats.histogram());  // single value: zero range
  EXPECT_THROW(stats.histogram(0), std::invalid_argument);
}

}  // namespace
}  // namespace rasoc::noc
