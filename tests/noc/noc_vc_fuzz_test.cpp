// Virtual-channel differential fuzz: seeded random topology x pattern x VC
// configurations run in lockstep on the Naive (reference fixpoint) and
// Compiled (word-packed tape) kernels, with three families of oracle:
//
//  1. Kernel differential — the per-cycle ledger counters, per-VC occupancy
//     vectors, and the final per-node received() payload streams must be
//     exactly equal between kernels.  Any divergence in the VC lowering
//     (arbitration order, credit timing, wrap-class bookkeeping) shows up
//     here long before it produces a user-visible bug.
//  2. Delivery semantics — every packet arrives exactly once with its
//     payload intact.  Configurations whose VCs are all escape channels
//     (numVCs <= escapeVCs) are deterministic and additionally guarantee
//     per-flow in-order delivery; adaptive configurations only promise the
//     multiset.  Payload word 0 encodes (source index, sequence number) so
//     both properties are checked from the received data alone.
//  3. Credit conservation — under credit flow control every (link, VC)
//     pair obeys  sender credits + receiver occupancy == FIFO depth  after
//     every settled cycle, including the NI-to-router local link.  A credit
//     leaked or duplicated anywhere trips this within one cycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "noc/network.hpp"
#include "noc/topology.hpp"
#include "router/params.hpp"
#include "sim/rng.hpp"

namespace rasoc::noc {
namespace {

using router::FlowControl;
using router::Port;
using sim::Simulator;
using sim::Xoshiro256;

constexpr std::uint64_t kCycleBudget = 8000;

struct FuzzConfig {
  std::shared_ptr<const Topology> topo;
  int numVCs = 1;
  FlowControl flowControl = FlowControl::Handshake;
  bool wraps = false;
  bool qos = false;

  int escapeVCs() const { return wraps ? 2 : 1; }
  // All VCs deterministic dimension-order escape channels: per-flow FIFO
  // delivery is guaranteed.  With adaptive VCs only exactly-once holds.
  bool deterministic() const { return numVCs <= escapeVCs(); }

  std::string describe() const {
    return topo->describe() + " vc" + std::to_string(numVCs) +
           (flowControl == FlowControl::CreditBased ? " credit"
                                                    : " handshake") +
           (qos ? " qos" : "");
  }
};

FuzzConfig drawConfig(Xoshiro256& rng) {
  FuzzConfig cfg;
  switch (rng.below(3)) {
    case 0:
      cfg.topo = makeTopology("mesh", 2 + static_cast<int>(rng.below(3)),
                              2 + static_cast<int>(rng.below(2)));
      cfg.wraps = false;
      break;
    case 1:
      cfg.topo = makeTopology("torus", 3 + static_cast<int>(rng.below(2)),
                              3 + static_cast<int>(rng.below(2)));
      cfg.wraps = true;
      break;
    default:
      cfg.topo = makeTopology("ring", 4 + static_cast<int>(rng.below(5)), 1);
      cfg.wraps = true;
      break;
  }
  const int vcChoices[] = {1, 2, 4};
  cfg.numVCs = vcChoices[rng.below(3)];
  cfg.flowControl =
      rng.chance(0.5) ? FlowControl::CreditBased : FlowControl::Handshake;
  // Class-mapped configurations need two adaptive VCs above the escape
  // layer, so only the vc4 draws are eligible.
  cfg.qos = cfg.numVCs - cfg.escapeVCs() >= 2 && rng.chance(0.5);
  return cfg;
}

std::unique_ptr<Network> makeNet(const FuzzConfig& cfg,
                                 Simulator::Kernel kernel) {
  NetworkConfig nc;
  nc.params.n = 16;  // payload word 0 carries (src << 8) | seq
  nc.params.numVCs = cfg.numVCs;
  nc.params.flowControl = cfg.flowControl;
  nc.params.qosClasses = cfg.qos;
  nc.kernel = kernel;
  return std::make_unique<Network>(cfg.topo, nc);
}

// One fuzzed packet: payload word 0 is (source index << 8) | per-source
// sequence number, the rest random 16-bit filler.
struct SentPacket {
  int src = 0;
  int dst = 0;
  router::TrafficClass cls = router::TrafficClass::BestEffort;
  std::vector<std::uint32_t> payload;
};

std::vector<SentPacket> drawTraffic(Xoshiro256& rng, const Topology& topo,
                                    bool qos) {
  const int nodes = topo.nodes();
  const int count = 20 + static_cast<int>(rng.below(21));
  std::vector<int> seqBySrc(static_cast<std::size_t>(nodes), 0);
  std::vector<SentPacket> sent;
  sent.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    SentPacket p;
    p.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));
    do {
      p.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));
    } while (p.dst == p.src);
    if (qos)
      p.cls = static_cast<router::TrafficClass>(
          rng.below(router::kNumTrafficClasses));
    const int seq = seqBySrc[static_cast<std::size_t>(p.src)]++;
    p.payload.push_back(static_cast<std::uint32_t>((p.src << 8) | seq));
    const int filler = static_cast<int>(rng.below(3));
    for (int w = 0; w < filler; ++w)
      p.payload.push_back(static_cast<std::uint32_t>(rng.next() & 0xffffu));
    sent.push_back(std::move(p));
  }
  return sent;
}

// Sender credits plus receiver occupancy must equal the FIFO depth for
// every (link, VC) after every settled cycle — on the inter-router links
// (output channel credit counter vs the neighbour's input FIFO) and on the
// NI-to-router local link (NI send credits vs the local input FIFO).
void expectCreditConservation(Network& net, const FuzzConfig& cfg,
                              std::uint64_t cycle, const char* kernel) {
  const int depth = net.config().params.p;
  const Topology& topo = *cfg.topo;
  for (int i = 0; i < topo.nodes(); ++i) {
    const NodeId n = topo.nodeAt(i);
    const router::Rasoc& r = net.router(n);
    for (int v = 0; v < cfg.numVCs; ++v)
      ASSERT_EQ(net.ni(n).vcSendCredits(v) +
                    r.vcInputChannel(Port::Local).occupancy(v),
                depth)
          << kernel << " cycle " << cycle << " ni(" << i << ") vc" << v;
    for (Port p : router::kAllPorts) {
      if (p == Port::Local) continue;
      const auto nb = topo.neighbor(n, p);
      if (!nb) continue;
      const auto& out = r.vcOutputChannel(p);
      const auto& in = net.router(*nb).vcInputChannel(router::opposite(p));
      ASSERT_TRUE(out.credits().conserved())
          << kernel << " cycle " << cycle << " node " << i;
      for (int v = 0; v < cfg.numVCs; ++v)
        ASSERT_EQ(out.credits().credits(v) + in.occupancy(v), depth)
            << kernel << " cycle " << cycle << " link(" << n.x << "," << n.y
            << ")" << router::name(p) << " vc" << v;
    }
  }
}

// Delivery-semantics oracle over one drained network: exactly-once with
// intact payloads (multiset per destination), plus strict per-flow sequence
// order when the configuration is deterministic.
void expectDeliverySemantics(Network& net, const FuzzConfig& cfg,
                             const std::vector<SentPacket>& sent) {
  const Topology& topo = *cfg.topo;
  std::map<int, std::vector<std::vector<std::uint32_t>>> expectedByDst;
  for (const SentPacket& p : sent)
    expectedByDst[p.dst].push_back(p.payload);

  for (int i = 0; i < topo.nodes(); ++i) {
    auto got = net.ni(topo.nodeAt(i)).received();
    auto want = expectedByDst.count(i)
                    ? expectedByDst[i]
                    : std::vector<std::vector<std::uint32_t>>{};
    ASSERT_EQ(got.size(), want.size()) << "node " << i << " packet count";
    if (cfg.deterministic()) {
      // Per-flow FIFO: at each destination the sequence numbers from any
      // one source must appear in send order.
      std::map<int, int> lastSeq;
      for (const auto& payload : got) {
        ASSERT_FALSE(payload.empty());
        const int src = static_cast<int>(payload[0] >> 8);
        const int seq = static_cast<int>(payload[0] & 0xffu);
        auto it = lastSeq.find(src);
        if (it != lastSeq.end())
          EXPECT_GT(seq, it->second)
              << "flow " << src << "->" << i << " reordered";
        lastSeq[src] = seq;
      }
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "node " << i << " payload multiset";
  }
}

void runFuzzConfig(const FuzzConfig& cfg, Xoshiro256& rng,
                   std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed) + ": " + cfg.describe());

  const std::vector<SentPacket> sent = drawTraffic(rng, *cfg.topo, cfg.qos);
  auto naive = makeNet(cfg, Simulator::Kernel::Naive);
  auto compiled = makeNet(cfg, Simulator::Kernel::Compiled);
  for (const SentPacket& p : sent)
    for (Network* net : {naive.get(), compiled.get()})
      net->ni(cfg.topo->nodeAt(p.src))
          .send(cfg.topo->nodeAt(p.dst), p.payload, p.cls);

  const auto total = static_cast<std::uint64_t>(sent.size());
  const bool checkCredits =
      cfg.flowControl == FlowControl::CreditBased && cfg.numVCs > 1;
  std::uint64_t cycle = 0;
  for (; cycle < kCycleBudget; ++cycle) {
    naive->run(1);
    compiled->run(1);
    ASSERT_EQ(naive->ledger().delivered(), compiled->ledger().delivered())
        << "kernel divergence at cycle " << cycle;
    if (cfg.numVCs > 1)
      for (int v = 0; v < cfg.numVCs; ++v)
        ASSERT_EQ(naive->vcOccupancy(v), compiled->vcOccupancy(v))
            << "vc" << v << " occupancy divergence at cycle " << cycle;
    if (checkCredits) {
      expectCreditConservation(*naive, cfg, cycle, "naive");
      expectCreditConservation(*compiled, cfg, cycle, "compiled");
    }
    if (naive->ledger().delivered() == total &&
        compiled->ledger().delivered() == total)
      break;
  }
  ASSERT_LT(cycle, kCycleBudget) << "failed to drain " << total << " packets";
  for (Network* net : {naive.get(), compiled.get()})
    EXPECT_TRUE(net->healthy());

  // The two kernels must agree on the exact arrival streams, order
  // included, even for adaptive configurations.
  for (int i = 0; i < cfg.topo->nodes(); ++i) {
    const NodeId n = cfg.topo->nodeAt(i);
    ASSERT_EQ(naive->ni(n).received(), compiled->ni(n).received())
        << "node " << i << " arrival stream diverged between kernels";
  }
  expectDeliverySemantics(*compiled, cfg, sent);
}

void runFuzzIteration(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const FuzzConfig cfg = drawConfig(rng);
  runFuzzConfig(cfg, rng, seed);
}

TEST(VcFuzzTest, DifferentialLockstepAcrossRandomConfigs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) runFuzzIteration(seed);
}

TEST(VcFuzzTest, DifferentialLockstepAtForcedQosConfigs) {
  // The random draw only sometimes lands on class-mapped configurations;
  // this pass pins them: every topology family and both flow controls at
  // vc4 with qosClasses, random per-packet classes.
  std::uint64_t seed = 0x905;
  for (const char* kind : {"mesh", "torus", "ring"}) {
    for (FlowControl fc : {FlowControl::Handshake, FlowControl::CreditBased}) {
      FuzzConfig cfg;
      cfg.topo = kind == std::string("ring") ? makeTopology("ring", 6, 1)
                                             : makeTopology(kind, 3, 3);
      cfg.wraps = kind != std::string("mesh");
      cfg.numVCs = 4;
      cfg.flowControl = fc;
      cfg.qos = true;
      Xoshiro256 rng(++seed);
      runFuzzConfig(cfg, rng, seed);
    }
  }
}

TEST(VcFuzzTest, CreditConservationSurvivesSaturatingLoad) {
  // Dedicated credit-mode soak: a generator-driven overload (rather than a
  // finite packet list) keeps every FIFO churning while the invariant is
  // checked after every settled cycle.
  for (const char* kind : {"torus", "ring"}) {
    for (int vcs : {2, 4}) {
      FuzzConfig cfg;
      cfg.topo = kind == std::string("ring") ? makeTopology("ring", 6, 1)
                                             : makeTopology("torus", 3, 3);
      cfg.wraps = true;
      cfg.numVCs = vcs;
      cfg.flowControl = FlowControl::CreditBased;
      SCOPED_TRACE(cfg.describe());

      NetworkConfig nc;
      nc.params.numVCs = vcs;
      nc.params.flowControl = FlowControl::CreditBased;
      Network net(cfg.topo, nc);
      TrafficConfig traffic;
      traffic.pattern = TrafficPattern::UniformRandom;
      traffic.offeredLoad = 0.8;
      traffic.payloadFlits = 3;
      traffic.seed = 77;
      net.attachTraffic(traffic);
      for (std::uint64_t cycle = 0; cycle < 600; ++cycle) {
        net.run(1);
        expectCreditConservation(net, cfg, cycle, "compiled");
      }
      net.pauseTraffic(true);
      ASSERT_TRUE(net.drain(60000));
      expectCreditConservation(net, cfg, 600, "drained");
      EXPECT_TRUE(net.healthy());
    }
  }
}

// Regression for FaultPlan link-down windows under per-VC framing: a
// LinkDown window opens mid-packet while two packets from different sources
// interleave flit-by-flit on distinct adaptive VCs of the same physical
// link (the ring-5 wrap link).  The window must freeze both VCs without
// dropping flits or credits, and both packets must complete intact once it
// closes.
TEST(VcFuzzTest, LinkDownMidPacketFreezesBothVcsWithoutCorruption) {
  for (FlowControl fc : {FlowControl::Handshake, FlowControl::CreditBased}) {
    SCOPED_TRACE(fc == FlowControl::CreditBased ? "credit" : "handshake");
    const auto ring = makeTopology("ring", 5, 1);
    NetworkConfig nc;
    nc.params.n = 16;
    nc.params.numVCs = 4;
    nc.params.flowControl = fc;
    // The ring-5 wrap link: minimal eastbound wrap routes from nodes 3 and
    // 4 both cross it.
    nc.faultPlan.events.push_back(
        {LinkId{NodeId{4, 0}, Port::East}, FaultKind::LinkDown, 8, 40, 1.0});
    Network net(ring, nc);

    // 3 -> 0 (wraps 3,4,0) and 4 -> 1 (wraps 4,0,1): long payloads so both
    // packets are still streaming across link(4,0)E when the window opens.
    std::vector<std::uint32_t> a, b;
    for (std::uint32_t w = 0; w < 12; ++w) {
      a.push_back(0x100u + w);
      b.push_back(0x200u + w);
    }
    net.ni(NodeId{3, 0}).send(NodeId{0, 0}, a);
    net.ni(NodeId{4, 0}).send(NodeId{1, 0}, b);

    ASSERT_TRUE(net.drain(4000));
    EXPECT_TRUE(net.healthy());
    EXPECT_GT(net.faultStallCycles(), 0u) << "window never bit";
    EXPECT_EQ(net.flitsDropped(), 0u);
    ASSERT_EQ(net.ni(NodeId{0, 0}).received().size(), 1u);
    ASSERT_EQ(net.ni(NodeId{1, 0}).received().size(), 1u);
    EXPECT_EQ(net.ni(NodeId{0, 0}).received()[0], a);
    EXPECT_EQ(net.ni(NodeId{1, 0}).received()[0], b);

    // Both packets crossed the wrap link, and the adaptive allocator put
    // them on distinct VCs — the interleave the window had to freeze.
    int vcsUsed = 0;
    const auto& wrapOut = net.router(NodeId{4, 0}).vcOutputChannel(Port::East);
    for (int v = 0; v < 4; ++v)
      if (wrapOut.flitsSent(v) > 0) ++vcsUsed;
    EXPECT_GE(vcsUsed, 2) << "packets never interleaved on the wrap link";
  }
}

}  // namespace
}  // namespace rasoc::noc
